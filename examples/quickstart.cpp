// Quickstart: solve an Abelian hidden subgroup problem end to end.
//
// This is the smallest complete tour of the public API:
//   1. pick a group and plant a hidden subgroup,
//   2. wrap it in a black-box instance (oracles + hiding function),
//   3. run the standard quantum circuit on the statevector simulator,
//   4. decode the measured characters and print the recovered subgroup.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/instance.h"

int main() {
  using namespace nahsp;

  // 1. The group A = Z_12 x Z_8 with hidden subgroup H = <(3, 2)>.
  const std::vector<std::uint64_t> moduli{12, 8};
  const std::vector<la::AbVec> hidden{{3, 2}};
  std::printf("group      : Z_12 x Z_8  (|A| = 96)\n");
  std::printf("planted H  : <(3, 2)>  (order %llu)\n",
              static_cast<unsigned long long>(
                  la::abelian_subgroup_order(hidden, moduli)));

  // 2. A hiding oracle: canonical labels of the cosets x + H.
  const auto h_elems = la::abelian_enumerate(hidden, moduli);
  qs::LabelFn f = [&](const la::AbVec& x) -> std::uint64_t {
    std::uint64_t best = ~std::uint64_t{0};
    for (const la::AbVec& h : h_elems) {
      std::uint64_t idx = 0;
      for (std::size_t i = 0; i < moduli.size(); ++i)
        idx = idx * moduli[i] + (x[i] + h[i]) % moduli[i];
      best = std::min(best, idx);
    }
    return best;
  };

  // 3. The quantum part: the coset-state + QFT circuit, simulated
  //    exactly on the mixed-radix statevector backend.
  bb::QueryCounter counter;
  qs::MixedRadixCosetSampler sampler(moduli, f, &counter);
  Rng rng(2026);
  const hsp::AbelianHspResult result =
      hsp::solve_abelian_hsp(sampler, rng);

  // 4. Report.
  std::printf("\nrecovered generators:\n");
  for (const la::AbVec& g : result.generators) {
    std::printf("  (%llu, %llu)\n", static_cast<unsigned long long>(g[0]),
                static_cast<unsigned long long>(g[1]));
  }
  std::printf("subgroup order : %llu\n",
              static_cast<unsigned long long>(result.subgroup_order));
  std::printf("circuit runs   : %d\n", result.samples_used);
  std::printf("quantum queries: %llu (one oracle call per run)\n",
              static_cast<unsigned long long>(counter.quantum_queries));
  const bool ok = la::abelian_subgroup_equal(result.generators, hidden, moduli);
  std::printf("matches planted subgroup: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
