// Batch solving: many independent HSP instances through one call.
//
// solve_hsp_batch is the multi-tenant entry point: it fans instances
// out across the thread pool (one task per instance, kernels serial
// inside each task), gives every instance its own SplitRng stream, and
// reports per-instance success/failure plus aggregate query accounting.
// Because streams are a pure function of (base_seed, instance index),
// the report is bit-identical at every fan-out width — this example
// runs the same batch at widths 1 and 4 and checks exactly that.
//
// The fleet itself is declared as scenario specs and constructed by the
// scenario registry (hsp/scenario.h) — the same specs work verbatim
// with `nahsp batch` (see examples/fleet.scn) — plus one deliberately
// broken entry (no oracles) to show per-instance failure isolation.
//
// Build & run:
//   cmake -B build -S . -DNAHSP_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/examples/batch_solve
#include <cstdio>
#include <utility>
#include <vector>

#include "nahsp/hsp/scenario.h"

int main() {
  using namespace nahsp;

  const std::vector<const char*> fleet = {
      "heisenberg p=3", "heisenberg p=5", "heisenberg p=7",
      "quaternion order=16", "quaternion order=16 hidden=1",
  };

  const auto make_batch = [&fleet] {
    std::pair<std::vector<bb::HspInstance>, hsp::BatchOptions> batch;
    auto& [instances, opts] = batch;
    for (const char* spec : fleet) {
      hsp::BuiltScenario built = hsp::build_scenario(spec);
      instances.push_back(std::move(built.instance));
      opts.per_instance.push_back(std::move(built.options));
    }
    instances.push_back(bb::HspInstance{});  // the broken tenant
    opts.per_instance.push_back(hsp::AutoOptions{});
    opts.base_seed = 20260730;
    return batch;
  };

  // Solve the same batch at two fan-out widths.
  hsp::BatchReport reports[2];
  const int widths[2] = {1, 4};
  for (int w = 0; w < 2; ++w) {
    auto [instances, opts] = make_batch();
    opts.threads = widths[w];
    reports[w] = hsp::solve_hsp_batch(instances, opts);
  }

  const hsp::BatchReport& r = reports[1];
  std::printf("batch of %zu instances, %zu solved (width 4, %.0f ms)\n\n",
              r.items.size(), r.solved, r.seconds * 1e3);
  for (std::size_t i = 0; i < r.items.size(); ++i) {
    const auto& item = r.items[i];
    const char* what = i < fleet.size() ? fleet[i] : "(broken tenant)";
    if (item.success) {
      std::printf("  [%zu] ok    %-28s %-45s %llu quantum queries\n", i,
                  what, hsp::method_name(item.solution.method),
                  static_cast<unsigned long long>(
                      item.queries.quantum_queries));
    } else {
      std::printf("  [%zu] FAIL  %-28s %s\n", i, what, item.error.c_str());
    }
  }
  std::printf("\naggregate: %llu quantum / %llu classical queries, %llu group ops\n",
              static_cast<unsigned long long>(
                  r.total_queries.quantum_queries),
              static_cast<unsigned long long>(
                  r.total_queries.classical_queries),
              static_cast<unsigned long long>(r.total_queries.group_ops));

  // Width invariance: identical solutions and counters at width 1 and 4.
  bool agree = reports[0].solved == reports[1].solved;
  for (std::size_t i = 0; agree && i < r.items.size(); ++i) {
    const auto &a = reports[0].items[i], &b = reports[1].items[i];
    agree = a.success == b.success &&
            a.queries.quantum_queries == b.queries.quantum_queries &&
            (!a.success || (a.solution.method == b.solution.method &&
                            a.solution.generators == b.solution.generators));
  }
  std::printf("widths agree: %s\n", agree ? "YES" : "NO");

  const bool ok = agree && r.solved == r.items.size() - 1 &&
                  !r.items.back().success;
  return ok ? 0 : 1;
}
