// Shor order finding on the gate-level simulator.
//
// Order finding is the workhorse oracle the paper assumes (Theorem 4
// hypotheses) and the engine behind constructive membership: this
// example runs the full circuit — Hadamards, oracle, QFT ladder,
// measurement, continued fractions — for elements of Z_N^* and of a
// dihedral group, including the approximate-QFT variant.
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/hsp/order.h"
#include "nahsp/numtheory/arith.h"

int main() {
  using namespace nahsp;
  Rng rng(17);
  bool all_ok = true;

  std::printf("=== multiplicative orders mod 33 (gate-level circuit) ===\n");
  // Z_33^* has order phi(33) = 20; realise it inside the additive
  // black-box by exponent arithmetic: order of a mod 33 == order of the
  // map k -> a^k, labelled by a^k mod 33.
  for (const std::uint64_t a : {2ULL, 4ULL, 5ULL, 7ULL, 10ULL}) {
    auto power_label = [a](std::uint64_t k) {
      return nt::powmod(a, k, 33);
    };
    auto verify = [a](std::uint64_t r) { return nt::powmod(a, r, 33) == 1; };
    hsp::ShorOptions opts;
    opts.use_qubit_circuit = true;
    const std::uint64_t r =
        hsp::find_order_shor(power_label, verify, 33, rng, nullptr, opts);
    const std::uint64_t expect = nt::multiplicative_order(a, 33);
    all_ok &= (r == expect);
    std::printf("  ord_33(%llu) = %2llu (expected %2llu) %s\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(expect),
                r == expect ? "OK" : "FAIL");
  }

  std::printf("\n=== black-box group elements (D_30) ===\n");
  auto d = std::make_shared<grp::DihedralGroup>(30);
  const auto inst = bb::make_instance(d, {});
  struct Case {
    grp::Code x;
    const char* what;
  } cases[] = {
      {d->make(1, false), "x      "},
      {d->make(4, false), "x^4    "},
      {d->make(9, false), "x^9    "},
      {d->make(7, true), "x^7 y  "},
  };
  for (const auto& c : cases) {
    const std::uint64_t r = hsp::find_order_shor(*inst.bb, c.x, 60, rng);
    const std::uint64_t expect = d->element_order_bruteforce(c.x);
    all_ok &= (r == expect);
    std::printf("  ord(%s) = %2llu (expected %2llu) %s\n", c.what,
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(expect),
                r == expect ? "OK" : "FAIL");
  }

  std::printf("\n=== approximate QFT (cutoff 4) ===\n");
  hsp::ShorOptions approx;
  approx.use_qubit_circuit = true;
  approx.approx_cutoff = 4;
  const std::uint64_t r =
      hsp::find_order_shor(*inst.bb, d->make(1, false), 60, rng, approx);
  all_ok &= (r == 30);
  std::printf("  ord(x) with approximate QFT = %llu %s\n",
              static_cast<unsigned long long>(r), r == 30 ? "OK" : "FAIL");

  std::printf("\n%s\n", all_ok ? "all orders correct" : "FAILURES");
  return all_ok ? 0 : 1;
}
