// Hidden normal subgroups of permutation and solvable groups
// (paper Theorem 8) — no Fourier transform on G required.
//
// Walks the normal subgroup lattices of S_4 and D_12 plus the hidden
// centre of a Heisenberg group, recovering each planted subgroup from
// its hiding oracle alone, and reports which presentation route the
// solver took (Abelian relators vs Schreier transversal).
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"

int main() {
  using namespace nahsp;
  Rng rng(3);
  bool all_ok = true;

  std::printf("=== S_4 (all four normal subgroups) ===\n");
  auto s4 = grp::symmetric_group(4);
  struct PermCase {
    const char* what;
    std::vector<grp::Code> gens;
  };
  std::vector<PermCase> cases;
  cases.push_back({"1   ", {}});
  cases.push_back(
      {"V_4 ",
       {s4->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}})),
        s4->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}))}});
  {
    std::vector<grp::Code> a4;
    for (int i = 2; i < 4; ++i)
      a4.push_back(s4->encode(grp::perm_from_cycles(4, {{0, 1, i}})));
    cases.push_back({"A_4 ", a4});
  }
  cases.push_back({"S_4 ", s4->generators()});
  for (const auto& c : cases) {
    const auto inst = bb::make_perm_instance(s4, c.gens);
    hsp::NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    const bool ok = hsp::verify_same_subgroup(*s4, res.generators, c.gens);
    all_ok &= ok;
    std::printf("  N = %s |N| = %2zu  route: %-8s  -> %s\n", c.what,
                grp::enumerate_subgroup(*s4, c.gens).size(),
                res.abelian_factor ? "abelian" : "schreier",
                ok ? "OK" : "FAIL");
  }

  std::printf("\n=== D_12 (hidden rotation subgroups) ===\n");
  auto d = std::make_shared<grp::DihedralGroup>(12);
  for (const std::uint64_t k : {1ULL, 2ULL, 3ULL, 4ULL, 6ULL}) {
    const auto inst = bb::make_instance(d, {d->make(k, false)});
    hsp::NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    const bool ok = hsp::verify_same_subgroup(*d, res.generators,
                                              {d->make(k, false)});
    all_ok &= ok;
    std::printf("  N = <x^%llu> |N| = %2llu  route: %-8s  -> %s\n",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(12 / k),
                res.abelian_factor ? "abelian" : "schreier",
                ok ? "OK" : "FAIL");
  }

  std::printf("\n=== Heisenberg p = 7 (hidden centre, solvable) ===\n");
  auto h = std::make_shared<grp::HeisenbergGroup>(7, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  hsp::NormalHspOptions opts;
  opts.order_bound = 7;
  const auto res =
      hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  const bool ok = hsp::verify_same_subgroup(*h, res.generators,
                                            {h->central_generator()});
  all_ok &= ok;
  std::printf(
      "  |G| = 343, recovered Z(G): %s with %llu classical + %llu quantum "
      "queries\n",
      ok ? "OK" : "FAIL",
      static_cast<unsigned long long>(inst.counter->classical_queries),
      static_cast<unsigned long long>(inst.counter->quantum_queries));

  std::printf("\n%s\n", all_ok ? "all instances recovered" : "FAILURES");
  return all_ok ? 0 : 1;
}
