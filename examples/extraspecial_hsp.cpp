// Hidden subgroups of extra-special p-groups (paper Theorem 11 +
// Corollary 12).
//
// The Heisenberg group Heis(p) = p^{1+2} is the paper's flagship
// small-commutator instance: G' = Z(G) has order p, so the HSP is
// solvable in time polynomial in input + p. This example plants several
// hidden subgroups — central, non-normal, and mixed — and recovers each
// with the Theorem 11 pipeline, printing the query accounting that
// separates the quantum algorithm from the |G|-query classical scan.
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/small_commutator.h"

int main() {
  using namespace nahsp;
  Rng rng(7);
  const std::uint64_t p = 5;
  auto g = std::make_shared<grp::HeisenbergGroup>(p, 1);
  std::printf("group: %s, |G| = %llu, |G'| = |Z(G)| = %llu\n\n",
              g->name().c_str(),
              static_cast<unsigned long long>(g->order()),
              static_cast<unsigned long long>(p));

  struct Case {
    const char* what;
    std::vector<grp::Code> gens;
  };
  const Case cases[] = {
      {"centre Z(G)            ", {g->central_generator()}},
      {"non-normal <(1,0,0)>   ", {g->make({1}, {0}, 0)}},
      {"non-normal <(2,3,0)>   ", {g->make({2}, {3}, 0)}},
      {"normal <(1,0,0), Z(G)> ",
       {g->make({1}, {0}, 0), g->central_generator()}},
      {"trivial {1}            ", {}},
  };

  bool all_ok = true;
  for (const Case& c : cases) {
    const auto inst = bb::make_instance(g, c.gens);
    hsp::SmallCommutatorOptions opts;
    opts.order_bound = g->order();
    const auto res =
        hsp::solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
    const bool ok =
        hsp::verify_same_subgroup(*g, res.generators, c.gens);
    all_ok &= ok;
    const auto h_size = grp::enumerate_subgroup(*g, c.gens).size();
    std::printf(
        "H = %s |H| = %3zu  -> recovered %s  "
        "(classical f-queries: %llu, quantum queries: %llu)\n",
        c.what, h_size, ok ? "OK " : "FAIL",
        static_cast<unsigned long long>(inst.counter->classical_queries),
        static_cast<unsigned long long>(inst.counter->quantum_queries));
  }

  // Contrast with the classical baseline on one instance.
  const auto inst = bb::make_instance(g, {g->make({1}, {2}, 3)});
  (void)hsp::classical_bruteforce_hsp(*inst.bb, *inst.f);
  std::printf(
      "\nclassical brute force on the same group: %llu f-queries "
      "(= |G|)\n",
      static_cast<unsigned long long>(inst.counter->classical_queries));
  return all_ok ? 0 : 1;
}
