// Hidden subgroups of extra-special p-groups (paper Theorem 11 +
// Corollary 12).
//
// The Heisenberg group Heis(p) = p^{1+2} is the paper's flagship
// small-commutator instance: G' = Z(G) has order p, so the HSP is
// solvable in time polynomial in input + p. This example runs several
// planted subgroups — central, non-normal, and mixed — each declared as
// a scenario spec and constructed by the scenario registry
// (hsp/scenario.h): the same specs run from the command line as
// `nahsp solve "<spec>"`. It finishes with the query accounting that
// separates the quantum algorithm from the |G|-query classical scan.
#include <cstdio>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"

int main() {
  using namespace nahsp;
  Rng rng(7);

  // All five instances live in Heis(5); the centre is its own family
  // ("heisenberg") because the planted subgroup is normal there.
  const struct {
    const char* what;
    const char* spec;
  } cases[] = {
      {"centre Z(G)            ", "heisenberg p=5"},
      {"non-normal <(1,0,0)>   ", "extraspecial p=5 ha=1 hb=0"},
      {"non-normal <(2,3,0)>   ", "extraspecial p=5 ha=2 hb=3"},
      {"normal <(1,0,0), Z(G)> ", "extraspecial p=5 ha=1 hb=0 with_centre=1"},
      {"trivial {1}            ", "extraspecial p=5 ha=0 hb=0"},
  };

  std::printf("group: Heis(5), |G| = 125, |G'| = |Z(G)| = 5\n\n");
  bool all_ok = true;
  for (const auto& c : cases) {
    const auto built = hsp::build_scenario(c.spec);
    const auto sol =
        hsp::solve_hsp(*built.instance.bb, *built.instance.f, rng,
                       built.options);
    const bool ok = hsp::verify_same_subgroup(
        *built.instance.group, sol.generators,
        built.instance.planted_generators);
    all_ok &= ok;
    const auto h_size =
        grp::enumerate_subgroup(*built.instance.group,
                                built.instance.planted_generators)
            .size();
    std::printf(
        "H = %s |H| = %3zu  -> recovered %s  "
        "(classical f-queries: %llu, quantum queries: %llu)\n",
        c.what, h_size, ok ? "OK " : "FAIL",
        static_cast<unsigned long long>(
            built.instance.counter->classical_queries),
        static_cast<unsigned long long>(
            built.instance.counter->quantum_queries));
  }

  // Contrast with the classical baseline on one instance.
  const auto built = hsp::build_scenario("extraspecial p=5 ha=1 hb=2");
  (void)hsp::classical_bruteforce_hsp(*built.instance.bb, *built.instance.f);
  std::printf(
      "\nclassical brute force on the same group: %llu f-queries "
      "(= |G|)\n",
      static_cast<unsigned long long>(
          built.instance.counter->classical_queries));
  return all_ok ? 0 : 1;
}
