// HSP in wreath products Z_2^k wr Z_2 and the paper's Section 6 matrix
// groups (Theorem 13, cyclic-factor route).
//
// These are the groups with an elementary Abelian normal 2-subgroup N
// and cyclic factor group. The wreath products are the Rötteler–Beth
// family the paper generalises; the matrix groups are the motivating
// example drawn in Section 6 (one type-(a) generator with invertible
// upper-left block M, plus type-(b) translations).
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"

namespace {

using namespace nahsp;

bool run(const std::shared_ptr<const grp::GF2SemidirectCyclic>& g,
         const std::vector<grp::Code>& hidden, Rng& rng) {
  const auto inst = bb::make_instance(g, hidden);
  hsp::ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = g->m();
  // Structure-aware oracles for N (see DESIGN.md: substitution for the
  // Watrous |N>-state machinery; the generic quantum fallback is also
  // implemented and exercised in the tests).
  opts.n_membership = [g](grp::Code c) { return g->rot_of(c) == 0; };
  opts.coset_label = [g](grp::Code c) { return g->rot_of(c); };
  const auto res = hsp::solve_hsp_elem_abelian2(
      *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
  const bool ok = hsp::verify_same_subgroup(*g, res.generators, hidden);
  std::printf(
      "  |H| = %3zu  -> %s  (coset reps |V| = %zu, quantum queries %llu)\n",
      grp::enumerate_subgroup(*g, hidden).size(), ok ? "OK " : "FAIL",
      res.coset_reps_used,
      static_cast<unsigned long long>(inst.counter->quantum_queries));
  return ok;
}

}  // namespace

int main() {
  Rng rng(11);
  bool all_ok = true;

  std::printf("Wreath product Z_2^3 wr Z_2 (order %u):\n", 1u << 7);
  auto w = grp::wreath_z2k_z2(3);
  all_ok &= run(w, {w->make(0b000111, 0)}, rng);       // inside N
  all_ok &= run(w, {w->make(0, 1)}, rng);              // the swap
  all_ok &= run(w, {w->make(0b011011, 1)}, rng);       // shifted swap
  all_ok &= run(w, {w->make(0b101101, 1), w->make(0b111111, 0)}, rng);

  std::printf(
      "\nPaper Section 6 matrix group: N = Z_2^4, G/N = <M> ~= Z_15\n");
  auto g = grp::paper_matrix_group(grp::GF2Mat::companion(4, 0b0011));
  all_ok &= run(g, {g->make(0b1010, 0)}, rng);
  all_ok &= run(g, {g->make(0, 5)}, rng);   // order-3 complement part
  all_ok &= run(g, {g->make(0, 3)}, rng);   // order-5 complement part
  all_ok &= run(g, {g->make(0b1111, 5), g->make(0b0110, 0)}, rng);

  std::printf("\n%s\n", all_ok ? "all instances recovered" : "FAILURES");
  return all_ok ? 0 : 1;
}
