// HSP in wreath products Z_2^k wr Z_2 and the paper's Section 6 matrix
// groups (Theorem 13, cyclic-factor route).
//
// These are the groups with an elementary Abelian normal 2-subgroup N
// and cyclic factor group. The wreath products are the Rötteler–Beth
// family the paper generalises; the matrix groups are the motivating
// example drawn in Section 6 (one type-(a) generator with invertible
// upper-left block M, plus type-(b) translations).
//
// Each instance is declared as a scenario spec and constructed by the
// scenario registry (hsp/scenario.h), which attaches the
// structure-aware N-membership and coset-label oracles the cyclic
// route needs (see DESIGN.md: substitution for the Watrous |N>-state
// machinery). The same specs run as `nahsp solve "<spec>"`.
#include <cstdio>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"

namespace {

using namespace nahsp;

bool run(const char* spec, Rng& rng) {
  const auto built = hsp::build_scenario(spec);
  const auto sol = hsp::solve_hsp(*built.instance.bb, *built.instance.f,
                                  rng, built.options);
  const bool ok = hsp::verify_same_subgroup(
      *built.instance.group, sol.generators,
      built.instance.planted_generators);
  std::printf(
      "  %-28s |H| = %3zu  -> %s  (%s, quantum queries %llu)\n", spec,
      grp::enumerate_subgroup(*built.instance.group,
                              built.instance.planted_generators)
          .size(),
      ok ? "OK " : "FAIL", hsp::method_name(sol.method),
      static_cast<unsigned long long>(
          built.instance.counter->quantum_queries));
  return ok;
}

}  // namespace

int main() {
  Rng rng(11);
  bool all_ok = true;

  std::printf("Wreath product Z_2^3 wr Z_2 (order %u):\n", 1u << 7);
  all_ok &= run("wreath k=3 hidden=0", rng);  // inside N
  all_ok &= run("wreath k=3 hidden=1", rng);  // the swap
  all_ok &= run("wreath k=3 hidden=2", rng);  // shifted swap
  all_ok &= run("wreath k=3 hidden=3", rng);  // rank-2 mixed

  std::printf(
      "\nPaper Section 6 matrix group: N = Z_2^4, G/N = <M> ~= Z_15\n");
  all_ok &= run("gf2affine k=4 coeffs=3 hidden=0", rng);  // inside N
  all_ok &= run("gf2affine k=4 coeffs=3 hidden=1", rng);  // full complement
  all_ok &= run("gf2affine k=4 coeffs=3 hidden=2", rng);  // proper complement
  all_ok &= run("gf2affine k=4 coeffs=3 hidden=3", rng);  // rank-2 mixed

  std::printf("\n%s\n", all_ok ? "all instances recovered" : "FAILURES");
  return all_ok ? 0 : 1;
}
