// Decomposing an Abelian black-box group into cyclic factors
// (paper Theorem 1, Cheung–Mosca) — the structural primitive behind the
// constructive membership tests.
//
// The group is handed over as an opaque black box (generators +
// multiplication oracle only); quantum order finding and the relation
// lattice in Smith normal form recover its invariant-factor and
// primary decompositions.
#include <cstdio>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/decompose.h"

namespace {

void show(const char* what,
          std::shared_ptr<const nahsp::grp::Group> g,
          std::uint64_t order_bound, nahsp::Rng& rng) {
  using namespace nahsp;
  const auto inst = bb::make_instance(std::move(g), {});
  hsp::DecomposeOptions opts;
  opts.order_bound = order_bound;  // element orders divide exp(G)
  const auto dec = hsp::decompose_abelian(*inst.bb, rng, opts);
  std::printf("%s\n  |G| = %llu\n  invariant factors: ", what,
              static_cast<unsigned long long>(dec.order));
  for (const auto d : dec.invariant_factors)
    std::printf("Z_%llu ", static_cast<unsigned long long>(d));
  std::printf("\n  primary decomposition: ");
  for (const auto d : dec.primary_orders)
    std::printf("Z_%llu ", static_cast<unsigned long long>(d));
  std::printf("\n  quantum queries: %llu\n\n",
              static_cast<unsigned long long>(
                  inst.counter->quantum_queries));
}

}  // namespace

int main() {
  using namespace nahsp;
  Rng rng(23);
  // The black box hides the isomorphism type: Z_4 x Z_6 presents two
  // generators but is really Z_2 x Z_12; Z_3 x Z_5 is secretly cyclic.
  show("Z_4 x Z_6 (as given)", grp::product_of_cyclics({4, 6}), 12, rng);
  show("Z_3 x Z_5 (as given)", grp::product_of_cyclics({3, 5}), 15, rng);
  show("Z_8 x Z_12 x Z_18 (as given)",
       grp::product_of_cyclics({8, 12, 18}), 72, rng);
  show("Z_2^4 (as given)", grp::elementary_abelian(2, 4), 2, rng);
  return 0;
}
