// E7 — Theorem 13, cyclic-factor route: fully polynomial HSP for
// Z_2^k x| Z_m with cyclic factor, including the Rötteler–Beth wreath
// products. The headline comparison: on the same instance the general
// route scans |G/N| coset representatives while the cyclic route uses
// O(log |G/N|).
#include "bench_common.h"

#include "nahsp/groups/gf2group.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"

namespace {

using namespace nahsp;

void run_route(benchmark::State& state,
               const std::shared_ptr<const grp::GF2SemidirectCyclic>& g,
               const std::vector<grp::Code>& hidden, bool cyclic) {
  const auto inst = bb::make_instance(g, hidden);
  Rng rng(1);
  hsp::ElemAbelian2Options opts;
  opts.assume_cyclic_factor = cyclic;
  opts.factor_order_bound = g->m();
  opts.n_membership = [g](grp::Code c) { return g->rot_of(c) == 0; };
  opts.coset_label = [g](grp::Code c) { return g->rot_of(c); };
  bool ok = true;
  std::size_t reps = 0;
  for (auto _ : state) {
    const auto res = hsp::solve_hsp_elem_abelian2(
        *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*g, res.generators,
                                    inst.planted_generators);
    reps = res.coset_reps_used;
  }
  state.counters["|G/N|"] = static_cast<double>(g->m());
  state.counters["k"] = g->k();
  state.counters["coset_reps"] = static_cast<double>(reps);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}

void BM_E7_WreathSweepK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto w = grp::wreath_z2k_z2(k);
  const std::uint64_t diag = (1ULL << k) | 1ULL;
  run_route(state, w, {w->make(diag, 1)}, /*cyclic=*/true);
}
BENCHMARK(BM_E7_WreathSweepK)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

// Paper Section 6 matrix groups: companion matrix of a primitive
// polynomial of degree k gives |G/N| = 2^k - 1 (exponentially large
// factor — only the cyclic route stays polynomial).
std::shared_ptr<const grp::GF2SemidirectCyclic> companion_group(int k) {
  // Primitive polynomials over GF(2): x^3+x+1, x^4+x+1, x^5+x^2+1,
  // x^6+x+1, x^7+x+1 (coefficient masks below exclude the leading term).
  static const std::uint64_t masks[] = {0, 0, 0, 0b011, 0b0011, 0b00101,
                                        0b000011, 0b0000011};
  return grp::paper_matrix_group(grp::GF2Mat::companion(k, masks[k]));
}

void BM_E7_MatrixGroupCyclicRoute(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto g = companion_group(k);
  run_route(state, g, {g->make(1, 0), g->make(0, 3)}, /*cyclic=*/true);
}
BENCHMARK(BM_E7_MatrixGroupCyclicRoute)
    ->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_E7_MatrixGroupGeneralRouteBaseline(benchmark::State& state) {
  // Same instances through the general route: pays |G/N| = 2^k - 1
  // coset representatives — the crossover the theorem is about.
  const int k = static_cast<int>(state.range(0));
  auto g = companion_group(k);
  run_route(state, g, {g->make(1, 0), g->make(0, 3)}, /*cyclic=*/false);
}
BENCHMARK(BM_E7_MatrixGroupGeneralRouteBaseline)
    ->DenseRange(3, 6, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
