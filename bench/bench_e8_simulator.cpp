// E8 — Simulator substrate scaling: gate throughput vs qubit count,
// ThreadPool kernel scaling, exact vs approximate QFT, and the
// mixed-radix FFT fast path.
#include <benchmark/benchmark.h>

#include "nahsp/common/parallel.h"
#include "nahsp/common/rng.h"
#include "nahsp/qsim/mixedradix.h"
#include "nahsp/qsim/qft.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/statevector.h"

namespace {

using namespace nahsp;

void BM_E8_QftCircuit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qs::StateVector sv = qs::StateVector::uniform(n);
  for (auto _ : state) {
    qs::apply_qft(sv, 0, n);
    benchmark::ClobberMemory();
  }
  // QFT ladder = n Hadamards + n(n-1)/2 controlled phases + swaps.
  state.counters["qubits"] = n;
  state.counters["amps"] = static_cast<double>(1u << n);
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << n) * n * (n + 1) / 2);
}
BENCHMARK(BM_E8_QftCircuit)->DenseRange(10, 22, 2)->Unit(benchmark::kMillisecond);

// Per-gate kernel microbenchmarks of the strided pair/quad kernels at
// 2^20 amplitudes. Items processed = state amplitudes (2^20) for every
// gate, so items/s inverts to ns per *state* amplitude per gate — a
// like-for-like cost unit across gates even though the pair kernels
// touch 2^(n-1) pairs and CNOT/CPhase only act on 2^(n-2) quads.
constexpr int kGateBenchQubits = 20;

void BM_E8_GateH(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  for (auto _ : state) {
    sv.apply_h(static_cast<int>(state.range(0)));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_GateH)->Arg(0)->Arg(19)->Unit(benchmark::kMillisecond);

void BM_E8_GateX(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  for (auto _ : state) {
    sv.apply_x(static_cast<int>(state.range(0)));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_GateX)->Arg(0)->Arg(19)->Unit(benchmark::kMillisecond);

void BM_E8_GateCnot(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  for (auto _ : state) {
    sv.apply_cnot(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_GateCnot)
    ->Args({0, 1})->Args({0, 19})->Unit(benchmark::kMillisecond);

void BM_E8_GateCphase(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  for (auto _ : state) {
    sv.apply_cphase(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)), 0.123);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_GateCphase)
    ->Args({0, 1})->Args({0, 19})->Unit(benchmark::kMillisecond);

// Fused engine vs the legacy gate ladder on the same register widths
// as BM_E8_QftCircuit's acceptance window.
void BM_E8_QftFused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qs::StateVector sv = qs::StateVector::uniform(n);
  for (auto _ : state) {
    qs::apply_qft_fused(sv, 0, n);
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_E8_QftFused)->DenseRange(16, 20, 2)->Unit(benchmark::kMillisecond);

void BM_E8_QftGates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  qs::StateVector sv = qs::StateVector::uniform(n);
  for (auto _ : state) {
    qs::apply_qft_gates(sv, 0, n);
    benchmark::ClobberMemory();
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_E8_QftGates)->DenseRange(16, 20, 2)->Unit(benchmark::kMillisecond);

// Oracle dispatch cost: dense lookup table vs std::function indirect
// call per amplitude, same 12-in/8-out XOR oracle.
void BM_E8_OracleXorFunction(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  for (auto _ : state) {
    sv.apply_xor_function(0, 12, 12, 8,
                          [](std::uint64_t x) { return x % 251; });
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_OracleXorFunction)->Unit(benchmark::kMillisecond);

void BM_E8_OracleXorTable(benchmark::State& state) {
  qs::StateVector sv = qs::StateVector::uniform(kGateBenchQubits);
  std::vector<std::uint64_t> table(std::size_t{1} << 12);
  for (std::uint64_t x = 0; x < table.size(); ++x) table[x] = x % 251;
  for (auto _ : state) {
    sv.apply_xor_function(0, 12, 12, 8, table);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          (std::int64_t{1} << kGateBenchQubits));
}
BENCHMARK(BM_E8_OracleXorTable)->Unit(benchmark::kMillisecond);

void BM_E8_QftThreadScaling(benchmark::State& state) {
  // Kernel scaling over the ThreadPool: same QFT, pool width swept.
  // Results are bit-identical at every width (fixed chunk layout); only
  // the wall clock moves.
  const int threads = static_cast<int>(state.range(0));
  const int n = 21;
  const int before = parallelism();
  set_parallelism(threads);
  qs::StateVector sv = qs::StateVector::uniform(n);
  for (auto _ : state) {
    qs::apply_qft(sv, 0, n);
    benchmark::ClobberMemory();
  }
  set_parallelism(before);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_E8_QftThreadScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_E8_MixedRadixThreadScaling(benchmark::State& state) {
  // The mixed-radix Abelian QFT over Z_{2^21} under the same sweep.
  const int threads = static_cast<int>(state.range(0));
  const int before = parallelism();
  set_parallelism(threads);
  qs::MixedRadixState st =
      qs::MixedRadixState::uniform({std::uint64_t{1} << 21});
  for (auto _ : state) {
    st.qft_all();
    benchmark::ClobberMemory();
  }
  set_parallelism(before);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_E8_MixedRadixThreadScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_E8_ApproxQftCutoff(benchmark::State& state) {
  // Gate-count savings of the approximate QFT (paper: approximate QFT
  // suffices for the HSP) — time per transform vs cutoff at 20 qubits.
  const int cutoff = static_cast<int>(state.range(0));
  qs::StateVector sv = qs::StateVector::uniform(20);
  for (auto _ : state) {
    qs::apply_qft(sv, 0, 20, cutoff);
    benchmark::ClobberMemory();
  }
  state.counters["cutoff"] = cutoff;
}
BENCHMARK(BM_E8_ApproxQftCutoff)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(0 /* exact */)
    ->Unit(benchmark::kMillisecond);

void BM_E8_MixedRadixFftPath(benchmark::State& state) {
  // Power-of-two cells ride the radix-2 FFT (O(D log d)); this measures
  // the full Abelian QFT over Z_{2^a}.
  const int a = static_cast<int>(state.range(0));
  qs::MixedRadixState st =
      qs::MixedRadixState::uniform({std::uint64_t{1} << a});
  for (auto _ : state) {
    st.qft_all();
    benchmark::ClobberMemory();
  }
  state.counters["log2_dim"] = a;
}
BENCHMARK(BM_E8_MixedRadixFftPath)
    ->DenseRange(10, 22, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E8_MixedRadixDensePath(benchmark::State& state) {
  // Non-power-of-two cells use the dense per-cell DFT (O(D d)).
  const std::uint64_t d = state.range(0);
  qs::MixedRadixState st = qs::MixedRadixState::uniform({d, 1024});
  for (auto _ : state) {
    st.qft_cell(0);
    benchmark::ClobberMemory();
  }
  state.counters["cell_dim"] = static_cast<double>(d);
}
BENCHMARK(BM_E8_MixedRadixDensePath)
    ->Arg(3)->Arg(7)->Arg(15)->Arg(31)->Arg(63)
    ->Unit(benchmark::kMillisecond);

// Full-circuit round throughput of the coset samplers: one scalar round
// is prepare + collapse + QFT + sample, one batched round is an alias
// draw from the cached outcome distribution (built on the first batch).
// Domain Z_{2^a}, hidden subgroup <2^{a-3}> (order 8) via
// f(x) = x mod 2^{a-3}: small label classes keep the cache build at
// about one round's cost.
constexpr int kSamplerRounds = 16;

void BM_E8_CosetSamplerScalarRounds(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const std::uint64_t s = std::uint64_t{1} << (a - 3);
  qs::MixedRadixCosetSampler sampler(
      {std::uint64_t{1} << a},
      [s](const la::AbVec& x) { return x[0] % s; }, nullptr);
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < kSamplerRounds; ++i)
      benchmark::DoNotOptimize(sampler.sample_character(rng));
  }
  state.counters["log2_dim"] = a;
  state.SetItemsProcessed(state.iterations() * kSamplerRounds);
}
BENCHMARK(BM_E8_CosetSamplerScalarRounds)
    ->DenseRange(10, 18, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E8_CosetSamplerBatchedRounds(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const std::uint64_t s = std::uint64_t{1} << (a - 3);
  qs::MixedRadixCosetSampler sampler(
      {std::uint64_t{1} << a},
      [s](const la::AbVec& x) { return x[0] % s; }, nullptr);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_characters(rng, kSamplerRounds));
  }
  state.counters["log2_dim"] = a;
  state.SetItemsProcessed(state.iterations() * kSamplerRounds);
}
BENCHMARK(BM_E8_CosetSamplerBatchedRounds)
    ->DenseRange(10, 18, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E8_QubitSamplerBatchedRounds(benchmark::State& state) {
  // Gate-level backend: the cache costs one deferred-measurement run,
  // after which rounds are O(1) (compare BM_E2_ShorQubitCircuit, which
  // pays the full gate ladder per scalar round).
  const int a = static_cast<int>(state.range(0));
  const std::uint64_t s = std::uint64_t{1} << (a - 3);
  qs::QubitCosetSampler sampler(
      {std::uint64_t{1} << a},
      [s](const la::AbVec& x) { return x[0] % s; }, nullptr);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_characters(rng, kSamplerRounds));
  }
  state.counters["log2_dim"] = a;
  state.SetItemsProcessed(state.iterations() * kSamplerRounds);
}
BENCHMARK(BM_E8_QubitSamplerBatchedRounds)
    ->DenseRange(8, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E8_OracleCollapse(benchmark::State& state) {
  // The oracle + ancilla-measurement step of the HSP circuit.
  const int a = static_cast<int>(state.range(0));
  const std::size_t dim = std::size_t{1} << a;
  std::vector<std::uint64_t> labels(dim);
  for (std::size_t i = 0; i < dim; ++i) labels[i] = i % 64;
  Rng rng(1);
  for (auto _ : state) {
    qs::MixedRadixState st =
        qs::MixedRadixState::uniform({std::uint64_t{1} << a});
    benchmark::DoNotOptimize(st.collapse_by_label(labels, rng));
  }
  state.counters["log2_dim"] = a;
}
BENCHMARK(BM_E8_OracleCollapse)
    ->DenseRange(10, 22, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
