// E1 — Abelian HSP scaling (paper Theorem 3 / Lemma 9).
//
// Claim reproduced: the quantum algorithm solves the Abelian HSP with
// O(log|A|) circuit runs; a classical algorithm must scan Omega(|A|).
// Series:
//   - Statevector: full circuit simulation (cost is simulation-bound,
//     ~linear in |A| per run — the *query* counter is the algorithmic
//     cost, O(log|A|) runs of one superposition query each);
//   - Analytic: distribution-exact sampler, polylog work per run —
//     shows the algorithm-side scaling without simulator overhead;
//   - ClassicalBruteForce: |A| classical queries.
#include "bench_common.h"

#include "nahsp/hsp/abelian.h"

namespace {

using namespace nahsp;

// Domain Z_{2^a} x Z_12 x Z_5 with planted <(2^{a-3}, 3, 0)>, |A| grows
// with the benchmark argument a.
std::vector<std::uint64_t> domain_mods(int a) {
  return {std::uint64_t{1} << a, 12, 5};
}
std::vector<la::AbVec> planted(int a) {
  return {{std::uint64_t{1} << (a - 3), 3, 0}};
}

void BM_E1_Statevector(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const auto mods = domain_mods(a);
  const auto h = planted(a);
  bb::QueryCounter counter;
  qs::MixedRadixCosetSampler sampler(
      mods, benchutil::abelian_coset_label(mods, h), &counter);
  Rng rng(1);
  bool ok = true;
  for (auto _ : state) {
    const auto res = hsp::solve_abelian_hsp(sampler, rng);
    ok &= la::abelian_subgroup_equal(res.generators, h, mods);
    state.counters["samples"] = static_cast<double>(res.samples_used);
  }
  state.counters["log2_A"] = a + 6;  // |A| = 2^a * 60
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, counter,
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E1_Statevector)->DenseRange(4, 12, 2)->Unit(benchmark::kMillisecond);

void BM_E1_Analytic(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const auto mods = domain_mods(a);
  const auto h = planted(a);
  bb::QueryCounter counter;
  qs::AnalyticCosetSampler sampler(mods, h, &counter);
  Rng rng(2);
  bool ok = true;
  for (auto _ : state) {
    const auto res = hsp::solve_abelian_hsp(sampler, rng);
    ok &= la::abelian_subgroup_equal(res.generators, h, mods);
  }
  state.counters["log2_A"] = a + 6;
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, counter,
                            static_cast<double>(state.iterations()));
}
// The analytic backend has no statevector, so it scales far past
// simulator memory: |A| up to 2^46.
BENCHMARK(BM_E1_Analytic)->DenseRange(4, 40, 6)->Unit(benchmark::kMillisecond);

// Round throughput of the statevector backend, scalar circuit runs vs
// the batched cached-distribution engine (the tentpole metric: batched
// must be >= 2x; in practice it is orders of magnitude once the cache
// amortises). Items processed = sampling rounds.
constexpr int kRoundsPerIter = 16;

void BM_E1_StatevectorScalarRounds(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const auto mods = domain_mods(a);
  const auto h = planted(a);
  qs::MixedRadixCosetSampler sampler(
      mods, benchutil::abelian_coset_label(mods, h), nullptr);
  Rng rng(4);
  for (auto _ : state) {
    for (int i = 0; i < kRoundsPerIter; ++i)
      benchmark::DoNotOptimize(sampler.sample_character(rng));
  }
  state.counters["log2_A"] = a + 6;
  state.SetItemsProcessed(state.iterations() * kRoundsPerIter);
}
BENCHMARK(BM_E1_StatevectorScalarRounds)
    ->DenseRange(4, 12, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E1_StatevectorBatchedRounds(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const auto mods = domain_mods(a);
  const auto h = planted(a);
  qs::MixedRadixCosetSampler sampler(
      mods, benchutil::abelian_coset_label(mods, h), nullptr);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_characters(rng, kRoundsPerIter));
  }
  state.counters["log2_A"] = a + 6;
  state.SetItemsProcessed(state.iterations() * kRoundsPerIter);
}
BENCHMARK(BM_E1_StatevectorBatchedRounds)
    ->DenseRange(4, 12, 4)
    ->Unit(benchmark::kMillisecond);

void BM_E1_ClassicalBruteForce(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  const auto mods = domain_mods(a);
  const auto h = planted(a);
  const auto label = benchutil::abelian_coset_label(mods, h);
  const auto id_label = label(la::AbVec(mods.size(), 0));
  std::uint64_t total = 1;
  for (const auto m : mods) total *= m;
  for (auto _ : state) {
    // Classical scan: query every element, keep those matching f(0).
    std::uint64_t members = 0;
    for (std::uint64_t idx = 0; idx < total; ++idx) {
      la::AbVec x(mods.size());
      std::uint64_t rest = idx;
      for (std::size_t i = mods.size(); i-- > 0;) {
        x[i] = rest % mods[i];
        rest /= mods[i];
      }
      if (label(x) == id_label) ++members;
    }
    benchmark::DoNotOptimize(members);
  }
  state.counters["log2_A"] = a + 6;
  state.counters["classical_queries"] = static_cast<double>(total);
}
BENCHMARK(BM_E1_ClassicalBruteForce)
    ->DenseRange(4, 12, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
