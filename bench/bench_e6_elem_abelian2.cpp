// E6 — Theorem 13, general route: elementary Abelian normal 2-subgroup
// with small factor group. Sweeps |G/N| at fixed N and |N| = 2^k at
// fixed factor; cost must be linear-ish in |G/N| and polynomial in k.
#include "bench_common.h"

#include "nahsp/groups/gf2group.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"

namespace {

using namespace nahsp;

// Z_2^m x| Z_m via the cyclic coordinate shift (order m).
std::shared_ptr<const grp::GF2SemidirectCyclic> shift_group(int m) {
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = (i + 1) % m;
  return std::make_shared<grp::GF2SemidirectCyclic>(
      m, grp::GF2Mat::permutation(perm), m);
}

void run_general(benchmark::State& state,
                 const std::shared_ptr<const grp::GF2SemidirectCyclic>& g,
                 const std::vector<grp::Code>& hidden) {
  const auto inst = bb::make_instance(g, hidden);
  Rng rng(1);
  hsp::ElemAbelian2Options opts;
  opts.n_membership = [g](grp::Code c) { return g->rot_of(c) == 0; };
  bool ok = true;
  std::size_t reps = 0;
  for (auto _ : state) {
    const auto res = hsp::solve_hsp_elem_abelian2(
        *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*g, res.generators,
                                    inst.planted_generators);
    reps = res.coset_reps_used;
  }
  state.counters["|G/N|"] = static_cast<double>(g->m());
  state.counters["k"] = g->k();
  state.counters["coset_reps"] = static_cast<double>(reps);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}

void BM_E6_FactorSizeSweep(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  auto g = shift_group(m);
  // Hidden subgroup mixing N and the complement.
  run_general(state, g, {g->make(0b11, 0), g->make(0, 2 % g->m())});
}
BENCHMARK(BM_E6_FactorSizeSweep)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E6_SubgroupRankSweep(benchmark::State& state) {
  // Wreath products Z_2^k wr Z_2: |G/N| = 2 fixed, |N| = 2^{2k} grows.
  const int k = static_cast<int>(state.range(0));
  auto w = grp::wreath_z2k_z2(k);
  // Hidden: shifted swap + one diagonal vector.
  const std::uint64_t diag = (1ULL << k) | 1ULL;
  run_general(state, w, {w->make(diag, 1)});
}
BENCHMARK(BM_E6_SubgroupRankSweep)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

void BM_E6_QuantumNMembership(benchmark::State& state) {
  // Ablation: the generic quantum membership test for N instead of the
  // structure-aware oracle (costs one constructive-membership HSP per
  // BFS edge).
  const int m = static_cast<int>(state.range(0));
  auto g = shift_group(m);
  const auto inst = bb::make_instance(g, {g->make(0b11, 0)});
  Rng rng(2);
  hsp::ElemAbelian2Options opts;  // no fast oracle
  bool ok = true;
  for (auto _ : state) {
    const auto res = hsp::solve_hsp_elem_abelian2(
        *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*g, res.generators,
                                    inst.planted_generators);
  }
  state.counters["|G/N|"] = static_cast<double>(g->m());
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E6_QuantumNMembership)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
