// E3 — Constructive membership in Abelian subgroups (Theorem 6).
//
// Claim reproduced: poly(input) time / O(r log) circuit runs, for r
// commuting generators; sweeps the generator count and the component
// orders.
#include "bench_common.h"

#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/membership.h"

namespace {

using namespace nahsp;

void BM_E3_GeneratorCountSweep(benchmark::State& state) {
  // <2 e_1, ..., 2 e_r> inside Z_4^r; target the all-twos vector.
  const int r = static_cast<int>(state.range(0));
  auto p = grp::product_of_cyclics(std::vector<std::uint64_t>(r, 4));
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  std::vector<grp::Code> hs;
  std::vector<grp::Code> target_parts(r, 2);
  for (int i = 0; i < r; ++i) {
    std::vector<grp::Code> comps(r, 0);
    comps[i] = 2;
    hs.push_back(p->pack(comps));
  }
  const grp::Code target = p->pack(target_parts);
  Rng rng(1);
  hsp::MembershipOptions opts;
  opts.order_bound = 4;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::constructive_membership(*inst.bb, hs, target, rng, opts);
    ok &= res.representable;
  }
  state.counters["r"] = r;
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E3_GeneratorCountSweep)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E3_ComponentOrderSweep(benchmark::State& state) {
  // <g> inside Z_n x Z_n with g = (2, n/2); positive instance.
  const std::uint64_t n = state.range(0);
  auto p = grp::product_of_cyclics({n, n});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const grp::Code h = p->pack({2, n / 2});
  const grp::Code target = p->mul(h, p->mul(h, h));  // h^3
  Rng rng(2);
  hsp::MembershipOptions opts;
  opts.order_bound = n;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::constructive_membership(*inst.bb, {h}, target, rng, opts);
    ok &= res.representable;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E3_ComponentOrderSweep)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond);

void BM_E3_NegativeInstances(benchmark::State& state) {
  // Rejection cost: target outside the subgroup.
  const std::uint64_t n = state.range(0);
  auto p = grp::product_of_cyclics({n, n});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const grp::Code h = p->pack({2, 0});
  const grp::Code target = p->pack({1, 1});
  Rng rng(3);
  hsp::MembershipOptions opts;
  opts.order_bound = n;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::constructive_membership(*inst.bb, {h}, target, rng, opts);
    ok &= !res.representable;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["correct"] = ok ? 1 : 0;
}
BENCHMARK(BM_E3_NegativeInstances)
    ->RangeMultiplier(4)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
