// E10 — Ablations of the library's design knobs (DESIGN.md §6):
// sampler backends, Las Vegas stability rounds, and the classical
// normal-closure substrate.
#include "bench_common.h"

#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/hsp/abelian.h"

namespace {

using namespace nahsp;

// Same HSP instance through all three circuit backends.
void BM_E10_SamplerBackends(benchmark::State& state) {
  const int backend = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mods{16, 16};
  const std::vector<la::AbVec> h{{4, 8}};
  const auto label = benchutil::abelian_coset_label(mods, h);
  Rng rng(1);
  std::unique_ptr<qs::CosetSampler> sampler;
  switch (backend) {
    case 0:
      sampler =
          std::make_unique<qs::MixedRadixCosetSampler>(mods, label, nullptr);
      break;
    case 1:
      sampler =
          std::make_unique<qs::QubitCosetSampler>(mods, label, nullptr);
      break;
    default:
      sampler = std::make_unique<qs::AnalyticCosetSampler>(mods, h, nullptr);
      break;
  }
  bool ok = true;
  for (auto _ : state) {
    const auto res = hsp::solve_abelian_hsp(*sampler, rng);
    ok &= la::abelian_subgroup_equal(res.generators, h, mods);
  }
  state.SetLabel(sampler->backend_name());
  state.counters["correct"] = ok ? 1 : 0;
}
BENCHMARK(BM_E10_SamplerBackends)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Residual error rate vs the stability_rounds knob (cheap analytic
// backend, trivial hidden subgroup of Z_2^10, deliberately tiny base).
void BM_E10_StabilityRounds(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mods(10, 2);
  Rng rng(2);
  qs::AnalyticCosetSampler sampler(mods, {}, nullptr);
  std::uint64_t wrong = 0, total = 0, samples = 0;
  for (auto _ : state) {
    hsp::AbelianHspOptions opts;
    opts.base_samples = 2;
    opts.stability_rounds = rounds;
    const auto res = hsp::solve_abelian_hsp(sampler, rng, opts);
    wrong += (res.subgroup_order != 1) ? 1 : 0;
    samples += res.samples_used;
    ++total;
  }
  state.counters["rounds"] = rounds;
  state.counters["error_rate"] =
      static_cast<double>(wrong) / static_cast<double>(total);
  state.counters["avg_samples"] =
      static_cast<double>(samples) / static_cast<double>(total);
}
BENCHMARK(BM_E10_StabilityRounds)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// Normal-closure substrate (the Theorem 8 / [1] classical step):
// closure of a single reflection in D_n as n grows.
void BM_E10_NormalClosure(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  grp::DihedralGroup d(n);
  const grp::Code y = d.make(0, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grp::normal_closure(d, {y}));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["closure_size"] = static_cast<double>(
      grp::enumerate_subgroup(d, grp::normal_closure(d, {y})).size());
}
BENCHMARK(BM_E10_NormalClosure)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Unit(benchmark::kMillisecond);

// Memoised hider amortisation: repeated solves on one instance reuse the
// oracle cache — the first-solve / later-solve gap quantifies it.
void BM_E10_HiderMemoisation(benchmark::State& state) {
  const bool fresh_each_time = state.range(0) != 0;
  const std::vector<std::uint64_t> mods{12, 12};
  const std::vector<la::AbVec> h{{3, 6}};
  Rng rng(3);
  auto label = benchutil::abelian_coset_label(mods, h);
  auto sampler =
      std::make_unique<qs::MixedRadixCosetSampler>(mods, label, nullptr);
  for (auto _ : state) {
    if (fresh_each_time) {
      sampler = std::make_unique<qs::MixedRadixCosetSampler>(mods, label,
                                                             nullptr);
    }
    benchmark::DoNotOptimize(hsp::solve_abelian_hsp(*sampler, rng));
  }
  state.counters["fresh_oracle_cache"] = fresh_each_time ? 1 : 0;
}
BENCHMARK(BM_E10_HiderMemoisation)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
