// E4 — Hidden normal subgroup (Theorem 8) across instance families:
// solvable groups (Heisenberg, dihedral) and permutation groups (S_n),
// with the classical brute-force baseline for the query gap.
#include "bench_common.h"

#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"

namespace {

using namespace nahsp;

void BM_E4_HeisenbergCentre(benchmark::State& state) {
  const std::uint64_t p = state.range(0);
  auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  Rng rng(1);
  hsp::NormalHspOptions opts;
  opts.order_bound = p;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*h, res.generators,
                                    inst.planted_generators);
  }
  state.counters["|G|"] = static_cast<double>(p * p * p);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E4_HeisenbergCentre)
    ->Arg(3)->Arg(5)->Arg(7)->Arg(11)->Arg(13)
    ->Unit(benchmark::kMillisecond);

void BM_E4_DihedralRotations(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  auto d = std::make_shared<grp::DihedralGroup>(n);
  const auto inst = bb::make_instance(d, {d->make(1, false)});
  Rng rng(2);
  hsp::NormalHspOptions opts;
  opts.order_bound = 2 * n;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*d, res.generators,
                                    inst.planted_generators);
  }
  state.counters["|G|"] = static_cast<double>(2 * n);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E4_DihedralRotations)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond);

void BM_E4_SymmetricGroupAn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sn = grp::symmetric_group(n);
  std::vector<grp::Code> an;
  for (int i = 2; i < n; ++i)
    an.push_back(sn->encode(grp::perm_from_cycles(n, {{0, 1, i}})));
  const auto inst = bb::make_perm_instance(sn, an);
  Rng rng(3);
  hsp::NormalHspOptions opts;
  opts.order_bound = 2 * n;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*sn, res.generators,
                                    inst.planted_generators);
  }
  state.counters["degree"] = n;
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E4_SymmetricGroupAn)
    ->DenseRange(4, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_E4_ClassicalBaselineHeisenberg(benchmark::State& state) {
  const std::uint64_t p = state.range(0);
  auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsp::classical_bruteforce_hsp(*inst.bb, *inst.f));
  }
  state.counters["|G|"] = static_cast<double>(p * p * p);
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E4_ClassicalBaselineHeisenberg)
    ->Arg(3)->Arg(5)->Arg(7)->Arg(11)->Arg(13)
    ->Unit(benchmark::kMillisecond);

}  // namespace
