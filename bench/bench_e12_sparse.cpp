// E12 — sparse coset-support engine vs the dense statevector backends.
// Sweeps the domain size for a fixed hidden-subgroup structure: the
// dense mixed-radix build is O(|A|) memory and superlinear time, the
// sparse build is one O(|A|) label sweep plus O(|H| * |A|/|H|) DFT
// work on O(|H| + |A|/|H|) memory — and keeps going past the dense
// 2^26 amplitude budget (the qubit backend rejects these widths long
// before: input + label register > 26 qubits).
#include "bench_common.h"

#include "nahsp/hsp/abelian.h"
#include "nahsp/qsim/sparse.h"

namespace {

using namespace nahsp;

// f(x) = x mod q hides <q> in Z_{2^k}; q = 2^(k/2) balances |H| and
// |H^perp| so neither side of the sparse build degenerates.
qs::LabelFn mod_label(std::uint64_t q) {
  return [q](const la::AbVec& x) { return x[0] % q; };
}

void BM_E12_SparseDistributionBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::uint64_t d = std::uint64_t{1} << k;
  const std::uint64_t q = std::uint64_t{1} << (k / 2);
  Rng rng(1);
  std::size_t support = 0;
  for (auto _ : state) {
    qs::SparseCosetSampler s({d}, mod_label(q), nullptr);
    benchmark::DoNotOptimize(s.sample_character(rng));  // forces the build
    support = s.support_size();
  }
  state.counters["domain"] = static_cast<double>(d);
  state.counters["support"] = static_cast<double>(support);
}
BENCHMARK(BM_E12_SparseDistributionBuild)
    ->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E12_MixedRadixDistributionBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::uint64_t d = std::uint64_t{1} << k;
  const std::uint64_t q = std::uint64_t{1} << (k / 2);
  Rng rng(1);
  for (auto _ : state) {
    qs::MixedRadixCosetSampler s({d}, mod_label(q), nullptr);
    // A large batch forces the adaptive cache build immediately.
    benchmark::DoNotOptimize(s.sample_characters(rng, 64));
  }
  state.counters["domain"] = static_cast<double>(d);
}
BENCHMARK(BM_E12_MixedRadixDistributionBuild)
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

// End-to-end Abelian-HSP solve through the sparse engine on Z_2^k with
// |H| = 2 — the elem_abelian2-shaped instance whose k = 16 width the
// qubit backend rejects (tests/test_sparse.cpp pins that boundary).
void BM_E12_SparseSolveZ2k(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mods(static_cast<std::size_t>(k), 2);
  const auto flat = [](const la::AbVec& x) {
    std::uint64_t idx = 0;
    for (const std::uint64_t xi : x) idx = idx * 2 + xi;
    return idx;
  };
  qs::LabelFn coset_id = [flat](const la::AbVec& x) {
    la::AbVec comp(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) comp[i] = 1 - x[i];
    return std::min(flat(x), flat(comp));
  };
  Rng rng(1);
  bool ok = true;
  for (auto _ : state) {
    qs::SparseCosetSampler s(mods, coset_id, nullptr);
    const auto res = hsp::solve_abelian_hsp(s, rng);
    ok &= (res.subgroup_order == 2);
  }
  state.counters["k"] = k;
  state.counters["correct"] = ok ? 1 : 0;
}
BENCHMARK(BM_E12_SparseSolveZ2k)
    ->DenseRange(10, 16, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
