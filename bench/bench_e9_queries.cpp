// E9 — Query complexity across solvers, and the Ettinger–Høyer shape
// (few quantum queries, exponential classical post-processing) from the
// paper's Introduction. Time is secondary here; the counters are the
// result.
#include "bench_common.h"

#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"

namespace {

using namespace nahsp;

void BM_E9_AbelianHspQueries(benchmark::State& state) {
  // Quantum queries per solve vs log |A| — expected linear in log|A|.
  const int a = static_cast<int>(state.range(0));
  const std::vector<std::uint64_t> mods{std::uint64_t{1} << a};
  const std::vector<la::AbVec> h{{std::uint64_t{1} << (a / 2)}};
  bb::QueryCounter counter;
  qs::AnalyticCosetSampler sampler(mods, h, &counter);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsp::solve_abelian_hsp(sampler, rng));
  }
  state.counters["log2_A"] = a;
  benchutil::report_queries(state, counter,
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E9_AbelianHspQueries)
    ->DenseRange(8, 40, 8)
    ->Unit(benchmark::kMillisecond);

void BM_E9_EttingerHoyerDihedral(benchmark::State& state) {
  // O(log n) quantum samples, Theta(n) classical scan: both reported.
  const std::uint64_t n = state.range(0);
  auto d = std::make_shared<grp::DihedralGroup>(n);
  const auto inst = bb::make_instance(d, {d->make(n / 3, true)});
  Rng rng(2);
  double samples = 0, scanned = 0;
  bool ok = true;
  for (auto _ : state) {
    const auto res = hsp::dihedral_ettinger_hoyer(*d, *inst.f, rng);
    samples = res.quantum_samples;
    scanned = static_cast<double>(res.candidates_scanned);
    ok &= hsp::verify_same_subgroup(*d, res.generators,
                                    {d->make(n / 3, true)});
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["quantum_samples"] = samples;
  state.counters["classical_scan"] = scanned;
  state.counters["correct"] = ok ? 1 : 0;
}
BENCHMARK(BM_E9_EttingerHoyerDihedral)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_E9_CosetLabellingStrategies(benchmark::State& state) {
  // Hiding-oracle realisation cost: enumeration labelling (min over H,
  // O(|H|) per point) vs Schreier–Sims minimal coset representatives
  // (poly in the degree) for the same subgroup of S_n.
  const int degree = static_cast<int>(state.range(0));
  auto sn = grp::symmetric_group(degree);
  std::vector<grp::Code> an;
  for (int i = 2; i < degree; ++i)
    an.push_back(sn->encode(grp::perm_from_cycles(degree, {{0, 1, i}})));
  const bool use_bsgs = state.range(1) != 0;
  const auto inst = use_bsgs
                        ? bb::make_perm_instance(sn, an)
                        : bb::make_instance(
                              std::static_pointer_cast<const grp::Group>(sn),
                              an);
  Rng rng(3);
  std::uint64_t fact = 1;
  for (int i = 2; i <= degree; ++i) fact *= i;
  for (auto _ : state) {
    // Label 64 fresh random elements (memoisation defeated by sampling
    // across the whole group).
    std::uint64_t acc = 0;
    for (int i = 0; i < 64; ++i) {
      acc ^= inst.f->eval_uncounted(rng.below(fact));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["degree"] = degree;
  state.counters["bsgs"] = use_bsgs ? 1 : 0;
}
BENCHMARK(BM_E9_CosetLabellingStrategies)
    ->Args({5, 0})->Args({5, 1})->Args({6, 0})->Args({6, 1})
    ->Args({7, 0})->Args({7, 1})
    ->Unit(benchmark::kMillisecond);

void BM_E9_NormalHspQuantumVsClassical(benchmark::State& state) {
  const std::uint64_t p = state.range(0);
  auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
  const bool classical = state.range(1) != 0;
  const auto inst = bb::make_instance(h, {h->central_generator()});
  Rng rng(4);
  hsp::NormalHspOptions opts;
  opts.order_bound = p;
  for (auto _ : state) {
    if (classical) {
      benchmark::DoNotOptimize(
          hsp::classical_bruteforce_hsp(*inst.bb, *inst.f));
    } else {
      benchmark::DoNotOptimize(
          hsp::find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts));
    }
  }
  state.counters["p"] = static_cast<double>(p);
  state.counters["classical_mode"] = classical ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E9_NormalHspQuantumVsClassical)
    ->Args({5, 0})->Args({5, 1})->Args({11, 0})->Args({11, 1})
    ->Args({17, 0})->Args({17, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
