// E2 — Quantum order finding (Shor) scaling and success behaviour.
//
// Claim reproduced: order finding runs in poly(log bound) circuit
// runs; the classical baseline iterates Theta(order) group operations.
// Also measures the gate-level circuit against the mixed-radix backend
// and the approximate-QFT variant.
#include "bench_common.h"

#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/order.h"

namespace {

using namespace nahsp;

void BM_E2_ShorMixedRadix(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  auto z = std::make_shared<grp::CyclicGroup>(n);
  const auto inst = bb::make_instance(z, {});
  Rng rng(1);
  bool ok = true;
  for (auto _ : state) {
    // Element 1 generates Z_n: order n (worst case for the bound).
    ok &= (hsp::find_order_shor(*inst.bb, 1, n, rng) == n);
  }
  state.counters["order"] = static_cast<double>(n);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E2_ShorMixedRadix)
    ->RangeMultiplier(4)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond);

void BM_E2_ShorQubitCircuit(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  auto z = std::make_shared<grp::CyclicGroup>(n);
  const auto inst = bb::make_instance(z, {});
  Rng rng(2);
  hsp::ShorOptions opts;
  opts.use_qubit_circuit = true;
  bool ok = true;
  for (auto _ : state) {
    ok &= (hsp::find_order_shor(*inst.bb, 1, n, rng, opts) == n);
  }
  state.counters["order"] = static_cast<double>(n);
  state.counters["correct"] = ok ? 1 : 0;
}
BENCHMARK(BM_E2_ShorQubitCircuit)
    ->RangeMultiplier(4)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

void BM_E2_ShorApproxQft(benchmark::State& state) {
  // Cutoff sweep at fixed modulus: how aggressive can the approximate
  // QFT be before retries climb? (paper: approximate QFT suffices)
  const int cutoff = static_cast<int>(state.range(0));
  auto z = std::make_shared<grp::CyclicGroup>(64);
  const auto inst = bb::make_instance(z, {});
  Rng rng(3);
  hsp::ShorOptions opts;
  opts.use_qubit_circuit = true;
  opts.approx_cutoff = cutoff;
  bool ok = true;
  for (auto _ : state) {
    ok &= (hsp::find_order_shor(*inst.bb, 1, 64, rng, opts) == 64);
  }
  state.counters["cutoff"] = cutoff;
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E2_ShorApproxQft)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

void BM_E2_ClassicalIteration(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  auto z = std::make_shared<grp::CyclicGroup>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z->element_order_bruteforce(1));
  }
  state.counters["order"] = static_cast<double>(n);
  state.counters["group_ops"] = static_cast<double>(n);
}
BENCHMARK(BM_E2_ClassicalIteration)
    ->RangeMultiplier(4)
    ->Range(8, 1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
