// E11 — Batch-solve throughput: many independent planted HSP instances
// through solve_hsp_batch, swept over the instance-level fan-out width.
//
// This is the multi-tenant workload: per-instance work is untouched (the
// kernels run serially inside each task via the nested-region guard), so
// the sweep isolates the cross-instance scaling of the batch driver.
// Reports are bit-identical at every width (per-instance SplitRng
// streams); instances_per_sec is the headline number.
#include "bench_common.h"

#include "nahsp/hsp/scenario.h"

namespace {

using namespace nahsp;

// A mixed batch: Heisenberg H(p,1) centre instances (Theorem 11 route)
// and quaternion instances, declared as scenario specs and built by the
// registry — rebuilt fresh each iteration so hider memos and counters
// never leak across timed runs.
struct Workload {
  std::vector<bb::HspInstance> instances;
  hsp::BatchOptions opts;
};

Workload make_workload(int n_instances) {
  static const char* const kSpecs[4] = {
      "heisenberg p=3", "heisenberg p=5", "heisenberg p=7",
      "quaternion order=16"};
  Workload w;
  for (int i = 0; i < n_instances; ++i) {
    hsp::BuiltScenario built = hsp::build_scenario(kSpecs[i % 4]);
    w.instances.push_back(std::move(built.instance));
    w.opts.per_instance.push_back(std::move(built.options));
  }
  w.opts.base_seed = 0xe11;
  return w;
}

constexpr int kBatchSize = 24;

void BM_E11_BatchSolveThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t solved = 0, total = 0;
  std::uint64_t quantum = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Workload w = make_workload(kBatchSize);
    w.opts.threads = threads;
    state.ResumeTiming();
    const auto report = hsp::solve_hsp_batch(w.instances, w.opts);
    solved += report.solved;
    total += report.items.size();
    quantum += report.total_queries.quantum_queries;
  }
  state.counters["threads"] = threads;
  state.counters["batch"] = kBatchSize;
  state.counters["solved_frac"] =
      total ? static_cast<double>(solved) / static_cast<double>(total) : 0.0;
  state.counters["quantum_queries_per_batch"] =
      state.iterations()
          ? static_cast<double>(quantum) /
                static_cast<double>(state.iterations())
          : 0.0;
  state.counters["instances_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_E11_BatchSolveThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_E11_BatchVsSequentialLoop(benchmark::State& state) {
  // The pre-batch-driver baseline: the same workload solved one
  // instance at a time in a plain loop (what callers had before
  // solve_hsp_batch existed). threads is irrelevant here; recorded for
  // easy comparison against BM_E11_BatchSolveThroughput.
  std::size_t solved = 0, total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Workload w = make_workload(kBatchSize);
    SplitRng streams(w.opts.base_seed);
    state.ResumeTiming();
    for (std::size_t i = 0; i < w.instances.size(); ++i) {
      Rng rng = streams.stream(i);
      try {
        (void)hsp::solve_hsp(*w.instances[i].bb, *w.instances[i].f, rng,
                             w.opts.per_instance[i]);
        ++solved;
      } catch (const std::exception&) {
      }
      ++total;
    }
  }
  state.counters["batch"] = kBatchSize;
  state.counters["solved_frac"] =
      total ? static_cast<double>(solved) / static_cast<double>(total) : 0.0;
  state.counters["instances_per_sec"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_E11_BatchVsSequentialLoop)->Unit(benchmark::kMillisecond);

}  // namespace
