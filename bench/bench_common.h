// Shared helpers for the experiment benchmarks (see DESIGN.md §4 and
// EXPERIMENTS.md for the experiment index).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::benchutil {

/// Canonical coset-label function for a planted subgroup of an Abelian
/// product group (enumerates H once; labels are minimal coset indices).
inline qs::LabelFn abelian_coset_label(const std::vector<std::uint64_t>& mods,
                                       const std::vector<la::AbVec>& h_gens) {
  const auto h_elems = la::abelian_enumerate(h_gens, mods);
  return [mods, h_elems](const la::AbVec& x) -> std::uint64_t {
    std::uint64_t best = ~std::uint64_t{0};
    for (const la::AbVec& h : h_elems) {
      std::uint64_t idx = 0;
      for (std::size_t i = 0; i < mods.size(); ++i)
        idx = idx * mods[i] + (x[i] + h[i]) % mods[i];
      best = std::min(best, idx);
    }
    return best;
  };
}

/// Publishes the instance's query counters on the benchmark state.
/// sim_basis_evals makes the batched-sampler amortisation visible: the
/// one-time label sweep divides across every iteration of the run while
/// quantum_queries stays at one per round.
inline void report_queries(benchmark::State& state,
                           const bb::QueryCounter& c, double iters) {
  state.counters["quantum_queries"] =
      benchmark::Counter(static_cast<double>(c.quantum_queries) / iters);
  state.counters["classical_queries"] =
      benchmark::Counter(static_cast<double>(c.classical_queries) / iters);
  state.counters["group_ops"] =
      benchmark::Counter(static_cast<double>(c.group_ops) / iters);
  state.counters["sim_basis_evals"] =
      benchmark::Counter(static_cast<double>(c.sim_basis_evals) / iters);
}

}  // namespace nahsp::benchutil
