// E5 — HSP with small commutator subgroup (Theorem 11 / Corollary 12).
//
// Claim reproduced: running time polynomial in input + |G'|. The
// extra-special sweep varies p (=|G'|) with a non-normal hidden
// subgroup; the classical baseline pays |G| = p^3.
#include "bench_common.h"

#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/small_commutator.h"

namespace {

using namespace nahsp;

void BM_E5_ExtraspecialSweepP(benchmark::State& state) {
  const std::uint64_t p = state.range(0);
  auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
  // Non-normal hidden subgroup <(1, 1, 0)> — the hard case for naive
  // Fourier sampling, routine for Theorem 11.
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  Rng rng(1);
  hsp::SmallCommutatorOptions opts;
  opts.order_bound = p;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*h, res.generators,
                                    inst.planted_generators);
  }
  state.counters["p=|G'|"] = static_cast<double>(p);
  state.counters["|G|"] = static_cast<double>(p * p * p);
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E5_ExtraspecialSweepP)
    ->Arg(3)->Arg(5)->Arg(7)->Arg(11)->Arg(13)->Arg(17)
    ->Unit(benchmark::kMillisecond);

void BM_E5_HigherRankExtraspecial(benchmark::State& state) {
  // Heis(2, n): |G| = 2^{2n+1}, |G'| = 2 fixed — runtime should grow
  // with the input size, not with |G| (until simulation costs bite).
  const int n = static_cast<int>(state.range(0));
  auto h = std::make_shared<grp::HeisenbergGroup>(2, n);
  std::vector<std::uint64_t> a(n, 0), b(n, 0);
  a[0] = 1;
  b[n - 1] = 1;
  const auto inst = bb::make_instance(h, {h->make(a, b, 0)});
  Rng rng(2);
  hsp::SmallCommutatorOptions opts;
  opts.order_bound = 4;
  bool ok = true;
  for (auto _ : state) {
    const auto res =
        hsp::solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
    ok &= hsp::verify_same_subgroup(*h, res.generators,
                                    inst.planted_generators);
  }
  state.counters["n"] = n;
  state.counters["|G|"] = static_cast<double>(1u << (2 * n + 1));
  state.counters["correct"] = ok ? 1 : 0;
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E5_HigherRankExtraspecial)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_E5_ClassicalBaseline(benchmark::State& state) {
  const std::uint64_t p = state.range(0);
  auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsp::classical_bruteforce_hsp(*inst.bb, *inst.f));
  }
  state.counters["p=|G'|"] = static_cast<double>(p);
  benchutil::report_queries(state, inst.bb->counter(),
                            static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E5_ClassicalBaseline)
    ->Arg(3)->Arg(5)->Arg(7)->Arg(11)->Arg(13)->Arg(17)
    ->Unit(benchmark::kMillisecond);

}  // namespace
