// Statistical properties of the Las Vegas solvers: success rates,
// sample-count concentration, and the coupon-collector behaviour of
// character sampling — the quantitative side of "polynomially many
// repetitions suffice".
#include <gtest/gtest.h>

#include <cmath>

#include "nahsp/common/bits.h"
#include "nahsp/common/rng.h"
#include "nahsp/hsp/abelian.h"

namespace nahsp::hsp {
namespace {

TEST(SuccessProbability, SingleSampleCutsCandidateInHalfOnAverage) {
  // For H = {0} in Z_2^n, each character halves the candidate subgroup
  // with probability 1/2 per dimension: after n + t samples the
  // candidate is {0} except with probability ~2^{-t}.
  const int n = 8;
  const std::vector<u64> mods(n, 2);
  Rng rng(1);
  qs::AnalyticCosetSampler sampler(mods, {}, nullptr);
  int exact_at_n_plus_4 = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<la::AbVec> samples;
    for (int i = 0; i < n + 4; ++i)
      samples.push_back(sampler.sample_character(rng));
    const auto cand = la::congruence_kernel(samples, mods);
    if (la::abelian_subgroup_order(cand, mods) == 1) ++exact_at_n_plus_4;
  }
  // P(fail) <= 2^{-4} per trial; allow generous slack.
  EXPECT_GE(exact_at_n_plus_4, kTrials * 85 / 100);
}

TEST(SuccessProbability, SampleCountConcentratesNearLogA) {
  // The solver's sample count should be Theta(log|A| + stability).
  const std::vector<u64> mods{16, 16, 16};
  const std::vector<la::AbVec> h{{4, 8, 0}};
  Rng rng(2);
  qs::AnalyticCosetSampler sampler(mods, h, nullptr);
  int total_bits = 0;
  for (const u64 m : mods) total_bits += bits_for(m);
  double mean = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    const auto res = solve_abelian_hsp(sampler, rng);
    EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, h, mods));
    mean += res.samples_used;
  }
  mean /= kTrials;
  // Auto base = 8 + total_bits; stability adds 6. Should sit near that,
  // far below the max budget.
  EXPECT_LE(mean, 8 + total_bits + 6 + 8);
  EXPECT_GE(mean, 8 + total_bits);
}

TEST(SuccessProbability, StabilityRoundsControlResidualError) {
  // With stability_rounds = 1 (accept as soon as the candidate repeats
  // once) some runs will stop early with a too-large subgroup; with the
  // default 6 rounds, errors should be essentially absent. This measures
  // the Las Vegas knob the solver exposes.
  const std::vector<u64> mods(10, 2);
  Rng rng(3);
  auto run_with = [&](int rounds) {
    qs::AnalyticCosetSampler sampler(mods, {}, nullptr);
    int wrong = 0;
    constexpr int kTrials = 120;
    for (int t = 0; t < kTrials; ++t) {
      AbelianHspOptions opts;
      opts.base_samples = 2;  // pathologically few to expose the knob
      opts.stability_rounds = rounds;
      const auto res = solve_abelian_hsp(sampler, rng, opts);
      if (res.subgroup_order != 1) ++wrong;
    }
    return wrong;
  };
  const int wrong_loose = run_with(1);
  const int wrong_tight = run_with(16);
  EXPECT_GT(wrong_loose, wrong_tight + 2);  // the knob matters
  EXPECT_LE(wrong_tight, 2);                // and (nearly always) suffices
}

TEST(SuccessProbability, CharactersCoverPerpUniformly) {
  // Coupon-collector sanity: for |H^perp| = 16, ~16 H_16 ~= 54 samples
  // collect every character; 200 samples should essentially always.
  const std::vector<u64> mods{16};
  const std::vector<la::AbVec> h{{4}};  // H^perp = <1*4...> order 4
  Rng rng(4);
  qs::AnalyticCosetSampler sampler(mods, h, nullptr);
  std::set<u64> seen;
  for (int i = 0; i < 200; ++i) seen.insert(sampler.sample_character(rng)[0]);
  // H = <4> has order 4, so H^perp = {0, 4, 8, 12} has order 4.
  EXPECT_EQ(seen.size(), 4u);
  for (const u64 y : seen) EXPECT_EQ(y % 4, 0u);
}

TEST(SuccessProbability, MembershipCheckEliminatesResidualError) {
  // Even with stability_rounds = 0ish, the certified mode cannot return
  // a wrong answer — it keeps sampling until the candidate verifies.
  const std::vector<u64> mods(8, 2);
  Rng rng(5);
  qs::AnalyticCosetSampler sampler(mods, {}, nullptr);
  for (int t = 0; t < 40; ++t) {
    AbelianHspOptions opts;
    opts.base_samples = 1;
    opts.stability_rounds = 1;
    opts.membership_check = [](const la::AbVec& x) {
      for (const u64 v : x)
        if (v != 0) return false;
      return true;
    };
    const auto res = solve_abelian_hsp(sampler, rng, opts);
    EXPECT_EQ(res.subgroup_order, 1u);
  }
}

}  // namespace
}  // namespace nahsp::hsp
