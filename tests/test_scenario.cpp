// Scenario registry: metadata hygiene, strict spec handling, and the
// completeness guarantee — every registered family builds at defaults
// and solves to its planted subgroup under a pinned seed.
#include <gtest/gtest.h>

#include <set>

#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "test_seeds.h"

namespace nahsp::hsp {
namespace {

TEST(ScenarioRegistry, HasAtLeastEightFamiliesSortedAndUnique) {
  const auto& registry = scenario_registry();
  EXPECT_GE(registry.size(), 8u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    names.insert(registry[i].name);
    if (i > 0) {
      EXPECT_LT(registry[i - 1].name, registry[i].name);
    }
  }
  EXPECT_EQ(names.size(), registry.size());
}

TEST(ScenarioRegistry, MetadataIsComplete) {
  for (const ScenarioFamily& fam : scenario_registry()) {
    SCOPED_TRACE(fam.name);
    EXPECT_FALSE(fam.summary.empty());
    EXPECT_NE(fam.theorem.find("Theorem"), std::string::npos);
    EXPECT_TRUE(fam.build != nullptr);
    for (const ScenarioParam& p : fam.params) {
      SCOPED_TRACE(p.key);
      EXPECT_FALSE(p.doc.empty());
      EXPECT_LE(p.min, p.max);
      EXPECT_GE(p.def, p.min);
      EXPECT_LE(p.def, p.max);
    }
  }
}

TEST(ScenarioRegistry, LookupAndSuggestions) {
  EXPECT_NE(find_scenario_family("wreath"), nullptr);
  EXPECT_EQ(find_scenario_family("nope"), nullptr);
  try {
    (void)scenario_family_or_throw("nope");
    FAIL() << "expected unknown-scenario error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'nope'"), std::string::npos);
    EXPECT_NE(msg.find("wreath"), std::string::npos);  // lists the registry
  }
}

TEST(ScenarioRegistry, UnknownNamesGetNearestMatchSuggestions) {
  // Table of typo -> expected "did you mean" target. A near miss (small
  // edit distance) must name the intended family; garbage gets the
  // plain listing with no suggestion.
  struct Case {
    const char* typo;
    const char* suggested;  // nullptr = no suggestion expected
  } cases[] = {
      {"dihedrall", "dihedral"},        // insertion
      {"wreathe", "wreath"},            // insertion
      {"sheor", "shor"},                // insertion mid-word
      {"quaterion", "quaternion"},      // deletion
      {"random_abelain", "random_abelian"},  // transposition (2 edits)
      {"towers", "tower"},              // plural
      {"adverserial", "adversarial"},   // common misspelling
      {"random_norma", "random_normal"},
      {"zzzzzzzzzz", nullptr},          // nothing close
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.typo);
    try {
      (void)scenario_family_or_throw(c.typo);
      FAIL() << "expected unknown-scenario error";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown scenario '" + std::string(c.typo) + "'"),
                std::string::npos)
          << msg;
      if (c.suggested != nullptr) {
        EXPECT_NE(
            msg.find("did you mean '" + std::string(c.suggested) + "'?"),
            std::string::npos)
            << msg;
      } else {
        EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
      }
    }
  }
}

TEST(ScenarioBuild, DefaultsRecordResolvedParams) {
  const BuiltScenario b = build_scenario("dihedral");
  EXPECT_EQ(b.family, "dihedral");
  EXPECT_EQ(b.group_name, "D_12");
  EXPECT_EQ(b.group_order, 24u);
  ASSERT_EQ(b.params.size(), 2u);
  EXPECT_EQ(b.params[0], (std::pair<std::string, u64>{"n", 12}));
  EXPECT_EQ(b.params[1], (std::pair<std::string, u64>{"k", 3}));
  ASSERT_NE(b.instance.bb, nullptr);
  ASSERT_NE(b.instance.f, nullptr);
}

TEST(ScenarioBuild, OverridesAndCommonSolverKeys) {
  const BuiltScenario b =
      build_scenario("heisenberg p=7 gprime_cap=4096 order_bound=343");
  EXPECT_EQ(b.group_order, 343u);
  EXPECT_EQ(b.options.gprime_cap, 4096u);
  EXPECT_EQ(b.options.order_bound, 343u);
}

TEST(ScenarioBuild, UnknownKeysListTheAcceptedOnes) {
  try {
    (void)build_scenario("wreath bogus=1");
    FAIL() << "expected unknown-key error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'bogus'"), std::string::npos);
    EXPECT_NE(msg.find("k"), std::string::npos);
    EXPECT_NE(msg.find("gprime_cap"), std::string::npos);
  }
}

TEST(ScenarioBuild, CrossParamValidation) {
  // Declared-range violations and family-specific constraints both fail
  // with std::invalid_argument.
  EXPECT_THROW((void)build_scenario("heisenberg p=9"),
               std::invalid_argument);  // 9 in range but not prime
  EXPECT_THROW((void)build_scenario("quaternion order=24"),
               std::invalid_argument);  // not a power of two
  EXPECT_THROW((void)build_scenario("symmetric d=5 hidden=3"),
               std::invalid_argument);  // V_4 needs d=4
  EXPECT_THROW((void)build_scenario("extraspecial p=3 ha=7"),
               std::invalid_argument);  // digit must be < p
  EXPECT_THROW((void)build_scenario("abelian m1=4 h1=9"),
               std::invalid_argument);  // coordinate must be < modulus
  EXPECT_THROW((void)build_scenario("gf2affine coeffs=2"),
               std::invalid_argument);  // even mask -> singular M
  EXPECT_THROW((void)build_scenario("shor modulus=33 base=3"),
               std::invalid_argument);  // gcd(3, 33) != 1
}

TEST(ScenarioBuild, ConstructionIsDeterministic) {
  const BuiltScenario a = build_scenario("wreath k=3 hidden=2");
  const BuiltScenario b = build_scenario("wreath k=3 hidden=2");
  EXPECT_EQ(a.group_name, b.group_name);
  EXPECT_EQ(a.group_order, b.group_order);
  EXPECT_EQ(a.instance.planted_generators, b.instance.planted_generators);
}

// The completeness guarantee behind `nahsp selftest` and the CI golden
// reports: every family, built at its defaults, solves to the planted
// subgroup under a pinned seed.
TEST(ScenarioSolve, EveryRegisteredFamilySolvesAtDefaults) {
  for (const ScenarioFamily& fam : scenario_registry()) {
    SCOPED_TRACE(fam.name);
    BuiltScenario built = build_scenario(fam.name);
    Rng rng(test_seeds::kScenarioRegistry);
    const HspSolution sol =
        solve_hsp(*built.instance.bb, *built.instance.f, rng, built.options);
    EXPECT_TRUE(verify_same_subgroup(*built.instance.group, sol.generators,
                                     built.instance.planted_generators));
  }
}

// The hiding promise of a few structurally distinct constructions,
// checked on the full group (small instances only).
TEST(ScenarioSolve, PlantedInstancesSatisfyTheHidingPromise) {
  for (const char* spec : {"dihedral", "quaternion", "shor",
                           "wreath k=2 hidden=2", "symmetric d=4 hidden=3"}) {
    SCOPED_TRACE(spec);
    const BuiltScenario built = build_scenario(spec);
    EXPECT_TRUE(validate_hiding_promise(*built.instance.group,
                                        *built.instance.f,
                                        built.instance.planted_generators));
  }
}

}  // namespace
}  // namespace nahsp::hsp
