// Tests for the automatic method dispatcher and the batch driver's
// failure taxonomy.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/cancel.h"
#include "nahsp/common/check.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/solve.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(AutoSolve, PicksTheorem13WhenNIsKnown) {
  Rng rng(1);
  auto w = grp::wreath_z2k_z2(2);
  const auto inst = bb::make_instance(w, {w->make(0b0110, 1)});
  AutoOptions opts;
  opts.elem_abelian_2_subgroup = w->normal_subgroup_generators();
  opts.elem_abelian_2_options.n_membership = [w](Code c) {
    return w->rot_of(c) == 0;
  };
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kElemAbelian2);
  EXPECT_TRUE(verify_same_subgroup(*w, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, PicksTheorem11ForSmallCommutator) {
  Rng rng(2);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  AutoOptions opts;
  opts.order_bound = 27;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kSmallCommutator);
  EXPECT_TRUE(verify_same_subgroup(*h, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, FallsBackToTheorem8) {
  Rng rng(3);
  // S_5: G' = A_5 (order 60) exceeds a tiny gprime cap, so the
  // dispatcher falls through to the hidden-normal route.
  auto s5 = grp::symmetric_group(5);
  std::vector<Code> a5;
  for (int i = 2; i < 5; ++i)
    a5.push_back(s5->encode(grp::perm_from_cycles(5, {{0, 1, i}})));
  const auto inst = bb::make_perm_instance(s5, a5);
  AutoOptions opts;
  opts.gprime_cap = 16;
  opts.order_bound = 10;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kHiddenNormal);
  EXPECT_TRUE(verify_same_subgroup(*s5, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, QuaternionGoesThroughTheorem11) {
  Rng rng(4);
  auto q = std::make_shared<grp::QuaternionGroup>(16);
  const auto inst = bb::make_instance(q, {q->make(0, true)});
  AutoOptions opts;
  opts.order_bound = 16;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kSmallCommutator);
  EXPECT_TRUE(verify_same_subgroup(*q, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, PreCancelledTokenAbortsBeforeAnyRound) {
  Rng rng(5);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  AutoOptions opts;
  opts.order_bound = 27;
  auto token = std::make_shared<CancelToken>();
  token->cancel();
  opts.cancel = token;
  EXPECT_THROW(solve_hsp(*inst.bb, *inst.f, rng, opts),
               OperationCancelled);
}

TEST(AutoSolve, ExpiredDeadlineCancelsTheSolve) {
  Rng rng(6);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  AutoOptions opts;
  opts.order_bound = 27;
  auto token = std::make_shared<CancelToken>();
  token->set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  opts.cancel = token;
  try {
    solve_hsp(*inst.bb, *inst.f, rng, opts);
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
    EXPECT_EQ(token->reason(), CancelToken::Reason::kDeadline);
  }
}

TEST(AutoSolve, MethodNamesAreStable) {
  EXPECT_NE(std::string(method_name(Method::kElemAbelian2)).find("13"),
            std::string::npos);
  EXPECT_NE(std::string(method_name(Method::kSmallCommutator)).find("11"),
            std::string::npos);
  EXPECT_NE(std::string(method_name(Method::kHiddenNormal)).find("8"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Batch driver: failure taxonomy and per-instance RNG override.
// ---------------------------------------------------------------------

bb::HspInstance healthy_heisenberg() {
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  return bb::make_instance(h, {h->make({1}, {1}, 0)});
}

AutoOptions heisenberg_options() {
  AutoOptions o;
  o.order_bound = 27;
  return o;
}

// A black box that detects its own hiding-promise violation after a
// few warm-up queries and reports it with the same oracle_error type
// the solver-side NAHSP_ORACLE_CHECK guards use. Deterministic: the
// instance runs serially on one worker, so the failing query is always
// the same one.
bb::HspInstance promise_reporting_dihedral() {
  bb::HspInstance inst;
  auto d = std::make_shared<grp::DihedralGroup>(6);
  inst.group = d;
  inst.counter = std::make_shared<bb::QueryCounter>();
  inst.bb = std::make_shared<bb::BlackBoxGroup>(d, inst.counter);
  auto calls = std::make_shared<int>(0);
  inst.f = std::make_shared<bb::LambdaHider>(
      [calls](Code) -> u64 {
        if (++*calls > 5)
          throw oracle_error("labels are not constant on cosets");
        return 0;
      },
      inst.counter);
  return inst;
}

TEST(BatchSolve, MixedFailureAggregation) {
  // One batch holding every outcome class at once: healthy instances,
  // a promise-breaking oracle, a backend the group cannot satisfy
  // (qubit needs power-of-two moduli, Heisenberg's are 3s), and a
  // pre-cancelled request. Each failure stays typed and in its slot;
  // the healthy siblings are untouched.
  std::vector<bb::HspInstance> instances;
  BatchOptions opts;
  opts.base_seed = 0xfeedbeefULL;

  instances.push_back(healthy_heisenberg());          // 0: ok
  opts.per_instance.push_back(heisenberg_options());

  instances.push_back(promise_reporting_dihedral());  // 1: bad oracle
  opts.per_instance.push_back(AutoOptions{});

  instances.push_back(healthy_heisenberg());          // 2: bad backend
  {
    AutoOptions o = heisenberg_options();
    o.sampler.backend = qs::SamplerBackend::kQubit;
    opts.per_instance.push_back(o);
  }

  instances.push_back(healthy_heisenberg());          // 3: cancelled
  {
    AutoOptions o = heisenberg_options();
    auto token = std::make_shared<CancelToken>();
    token->cancel(CancelToken::Reason::kShutdown);
    o.cancel = token;
    opts.per_instance.push_back(o);
  }

  instances.push_back(healthy_heisenberg());          // 4: ok
  opts.per_instance.push_back(heisenberg_options());

  opts.threads = 4;
  const auto report = solve_hsp_batch(instances, opts);
  ASSERT_EQ(report.items.size(), 5u);
  EXPECT_EQ(report.solved, 2u);

  EXPECT_TRUE(report.items[0].success);
  EXPECT_TRUE(report.items[0].error_kind.empty());
  EXPECT_TRUE(verify_same_subgroup(*instances[0].group,
                                   report.items[0].solution.generators,
                                   instances[0].planted_generators));

  EXPECT_FALSE(report.items[1].success);
  EXPECT_EQ(report.items[1].error_kind, "oracle_error")
      << report.items[1].error;
  EXPECT_NE(report.items[1].error.find("cosets"), std::string::npos);

  EXPECT_FALSE(report.items[2].success);
  EXPECT_EQ(report.items[2].error_kind, "invalid_argument");
  EXPECT_NE(report.items[2].error.find("power-of-two"),
            std::string::npos);

  EXPECT_FALSE(report.items[3].success);
  EXPECT_EQ(report.items[3].error_kind, "cancelled");
  EXPECT_NE(report.items[3].error.find("shutdown"), std::string::npos);

  EXPECT_TRUE(report.items[4].success);
  EXPECT_TRUE(verify_same_subgroup(*instances[4].group,
                                   report.items[4].solution.generators,
                                   instances[4].planted_generators));
}

TEST(BatchSolve, PerInstanceRngReproducesADirectSolve) {
  // The per_instance_rng override is the `nahsp serve` seed contract:
  // a batch instance handed Rng(seed) must reproduce the direct
  // solve_hsp(..., Rng(seed)) run bit for bit, regardless of how the
  // request was grouped into a batch.
  const std::uint64_t seed = 99;
  const auto direct_inst = healthy_heisenberg();
  Rng direct_rng(seed);
  const auto direct = solve_hsp(*direct_inst.bb, *direct_inst.f,
                                direct_rng, heisenberg_options());

  std::vector<bb::HspInstance> instances;
  instances.push_back(healthy_heisenberg());
  BatchOptions opts;
  opts.solver = heisenberg_options();
  opts.base_seed = 0xdeadULL;  // must be ignored
  opts.per_instance_rng.push_back(Rng(seed));
  opts.threads = 2;
  const auto report = solve_hsp_batch(instances, opts);
  ASSERT_EQ(report.items.size(), 1u);
  ASSERT_TRUE(report.items[0].success);
  EXPECT_EQ(report.items[0].solution.generators, direct.generators);
  EXPECT_EQ(report.items[0].solution.method, direct.method);
  EXPECT_EQ(report.items[0].queries.quantum_queries,
            direct_inst.counter->quantum_queries);
}

TEST(BatchSolve, PerInstanceRngSizeMismatchThrows) {
  std::vector<bb::HspInstance> instances;
  instances.push_back(healthy_heisenberg());
  instances.push_back(healthy_heisenberg());
  BatchOptions opts;
  opts.solver = heisenberg_options();
  opts.per_instance_rng.push_back(Rng(1));
  EXPECT_THROW(solve_hsp_batch(instances, opts), std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::hsp
