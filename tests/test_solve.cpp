// Tests for the automatic method dispatcher.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/solve.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(AutoSolve, PicksTheorem13WhenNIsKnown) {
  Rng rng(1);
  auto w = grp::wreath_z2k_z2(2);
  const auto inst = bb::make_instance(w, {w->make(0b0110, 1)});
  AutoOptions opts;
  opts.elem_abelian_2_subgroup = w->normal_subgroup_generators();
  opts.elem_abelian_2_options.n_membership = [w](Code c) {
    return w->rot_of(c) == 0;
  };
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kElemAbelian2);
  EXPECT_TRUE(verify_same_subgroup(*w, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, PicksTheorem11ForSmallCommutator) {
  Rng rng(2);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
  AutoOptions opts;
  opts.order_bound = 27;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kSmallCommutator);
  EXPECT_TRUE(verify_same_subgroup(*h, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, FallsBackToTheorem8) {
  Rng rng(3);
  // S_5: G' = A_5 (order 60) exceeds a tiny gprime cap, so the
  // dispatcher falls through to the hidden-normal route.
  auto s5 = grp::symmetric_group(5);
  std::vector<Code> a5;
  for (int i = 2; i < 5; ++i)
    a5.push_back(s5->encode(grp::perm_from_cycles(5, {{0, 1, i}})));
  const auto inst = bb::make_perm_instance(s5, a5);
  AutoOptions opts;
  opts.gprime_cap = 16;
  opts.order_bound = 10;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kHiddenNormal);
  EXPECT_TRUE(verify_same_subgroup(*s5, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, QuaternionGoesThroughTheorem11) {
  Rng rng(4);
  auto q = std::make_shared<grp::QuaternionGroup>(16);
  const auto inst = bb::make_instance(q, {q->make(0, true)});
  AutoOptions opts;
  opts.order_bound = 16;
  const auto sol = solve_hsp(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(sol.method, Method::kSmallCommutator);
  EXPECT_TRUE(verify_same_subgroup(*q, sol.generators,
                                   inst.planted_generators));
}

TEST(AutoSolve, MethodNamesAreStable) {
  EXPECT_NE(std::string(method_name(Method::kElemAbelian2)).find("13"),
            std::string::npos);
  EXPECT_NE(std::string(method_name(Method::kSmallCommutator)).find("11"),
            std::string::npos);
  EXPECT_NE(std::string(method_name(Method::kHiddenNormal)).find("8"),
            std::string::npos);
}

}  // namespace
}  // namespace nahsp::hsp
