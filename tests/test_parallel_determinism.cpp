// Determinism contract of the parallel execution subsystem.
//
// Two guarantees are locked here:
//  1. Serial fidelity: at parallelism 1 every kernel, sampler path, and
//     end-to-end solve reproduces the observable outputs (sampled
//     characters, measurement outcomes, recovered generators, query
//     counts) of the pre-threading serial code path exactly. The
//     expected values below were captured from the last OpenMP-era
//     revision running single-threaded, under the pinned seeds in
//     tests/test_seeds.h. (Chunked floating-point reductions keep a
//     fixed width-independent summation tree whose association differs
//     from the old single-accumulator loop in the last ulps — the
//     integer outputs locked here are unaffected.)
//  2. Thread-count invariance: the same outputs are produced at
//     parallelism 4 (chunk layout and reduction trees depend only on
//     the range and grain, never on the worker count), and
//     solve_hsp_batch reports are identical at any fan-out width.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/parallel.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/solve.h"
#include "nahsp/qsim/qft.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/sparse.h"
#include "nahsp/qsim/statevector.h"
#include "test_seeds.h"

namespace nahsp {
namespace {

using la::AbVec;

// Runs `scenario` at parallelism 1 and 4 and returns both outputs;
// restores the ambient pool width afterwards.
template <typename Fn>
auto at_widths(Fn scenario) {
  const int before = parallelism();
  set_parallelism(1);
  auto serial = scenario();
  set_parallelism(4);
  auto threaded = scenario();
  set_parallelism(before);
  return std::pair(serial, threaded);
}

TEST(SerialFidelity, MixedRadixScalarSampler) {
  const std::vector<AbVec> expected{{0}, {8}, {4}, {20}, {4}, {8}, {0}, {20}};
  const auto [serial, threaded] = at_widths([] {
    qs::MixedRadixCosetSampler s(
        {24}, [](const AbVec& x) { return x[0] % 6; }, nullptr);
    Rng rng(test_seeds::kParMrScalar);
    std::vector<AbVec> out;
    for (int i = 0; i < 8; ++i) out.push_back(s.sample_character(rng));
    return out;
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

TEST(SerialFidelity, MixedRadixBatchedSampler) {
  const std::vector<AbVec> expected{
      {0, 2}, {4, 2}, {2, 0}, {4, 0}, {4, 2}, {4, 2}, {2, 2}, {4, 0},
      {4, 0}, {2, 2}, {2, 2}, {0, 0}, {2, 2}, {2, 2}, {4, 0}, {0, 0}};
  const auto [serial, threaded] = at_widths([] {
    qs::MixedRadixCosetSampler s(
        {6, 4}, [](const AbVec& x) { return (x[0] % 3) * 4 + (x[1] % 2); },
        nullptr);
    Rng rng(test_seeds::kParMrBatched);
    return s.sample_characters(rng, 16);
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

TEST(SerialFidelity, QubitScalarSampler) {
  const std::vector<AbVec> expected{{48}, {0}, {24}, {32}, {24}, {24}};
  const auto [serial, threaded] = at_widths([] {
    qs::QubitCosetSampler s(
        {64}, [](const AbVec& x) { return x[0] % 8; }, nullptr);
    Rng rng(test_seeds::kParQubitScalar);
    std::vector<AbVec> out;
    for (int i = 0; i < 6; ++i) out.push_back(s.sample_character(rng));
    return out;
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

TEST(SerialFidelity, QubitBatchedSampler) {
  const std::vector<AbVec> expected{{40}, {0},  {0},  {16}, {0},  {32},
                                    {48}, {48}, {24}, {40}, {56}, {40}};
  const auto [serial, threaded] = at_widths([] {
    qs::QubitCosetSampler s(
        {64}, [](const AbVec& x) { return x[0] % 8; }, nullptr);
    Rng rng(test_seeds::kParQubitBatched);
    return s.sample_characters(rng, 12);
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

// The sparse backend is new in this revision, so its expectations pin
// the initial implementation rather than a pre-threading path: the
// values were captured at parallelism 1 and the support-DFT's chunk
// layout depends only on (support size, grain), so parallelism 4 must
// reproduce them bit-identically.
TEST(SerialFidelity, SparseScalarSampler) {
  const std::vector<AbVec> expected{{8}, {4}, {0}, {8}, {20}, {12}, {4}, {16}};
  const auto [serial, threaded] = at_widths([] {
    qs::SparseCosetSampler s(
        {24}, [](const AbVec& x) { return x[0] % 6; }, nullptr);
    Rng rng(test_seeds::kParSparseScalar);
    std::vector<AbVec> out;
    for (int i = 0; i < 8; ++i) out.push_back(s.sample_character(rng));
    return out;
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

TEST(SerialFidelity, SparseBatchedSampler) {
  const std::vector<AbVec> expected{
      {0, 2}, {3, 2}, {3, 2}, {0, 2}, {3, 0}, {0, 0}, {0, 0}, {0, 0},
      {0, 2}, {3, 2}, {3, 0}, {0, 2}, {3, 0}, {0, 2}, {0, 2}, {3, 2}};
  const auto [serial, threaded] = at_widths([] {
    qs::SparseCosetSampler s(
        {6, 4}, [](const AbVec& x) { return (x[0] % 2) * 4 + (x[1] % 2); },
        nullptr);
    Rng rng(test_seeds::kParSparseBatched);
    return s.sample_characters(rng, 16);
  });
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(threaded, expected);
}

TEST(SerialFidelity, StateVectorCircuitMeasurements) {
  // 16 qubits = 2^16 amplitudes: four grain-sized chunks, so this
  // exercises the genuinely chunked kernel and reduction paths.
  const auto [serial, threaded] = at_widths([] {
    qs::StateVector sv(16);
    for (int q = 0; q < 8; ++q) sv.apply_h(q);
    sv.apply_xor_function(0, 8, 8, 8, [](qs::u64 x) { return x % 12; });
    Rng rng(test_seeds::kParStateVector);
    const qs::u64 m1 = sv.measure_range(8, 8, rng);
    qs::apply_qft(sv, 0, 8, 3);
    const qs::u64 m2 = sv.measure_range(0, 8, rng);
    return std::pair(m1, m2);
  });
  EXPECT_EQ(serial.first, 8u);
  EXPECT_EQ(serial.second, 86u);
  EXPECT_EQ(threaded, serial);
}

TEST(SerialFidelity, EndToEndSolve) {
  const auto [serial, threaded] = at_widths([] {
    auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
    const auto inst = bb::make_instance(h, {h->make({1}, {1}, 0)});
    Rng rng(test_seeds::kParSolve);
    hsp::AutoOptions opts;
    opts.order_bound = 27;
    const auto sol = hsp::solve_hsp(*inst.bb, *inst.f, rng, opts);
    return std::tuple(sol.method, sol.generators,
                      inst.counter->quantum_queries);
  });
  EXPECT_EQ(std::get<0>(serial), hsp::Method::kSmallCommutator);
  EXPECT_EQ(std::get<1>(serial), std::vector<grp::Code>{5});
  EXPECT_EQ(std::get<2>(serial), 23u);
  EXPECT_EQ(threaded, serial);
}

// ---------------------------------------------------------------------
// solve_hsp_batch: identical reports at every fan-out width.
// ---------------------------------------------------------------------

struct BatchFixture {
  std::vector<bb::HspInstance> instances;
  hsp::BatchOptions opts;
};

// Instances must be rebuilt per run: hiders memoise and counters
// accumulate, so reusing them across widths would conflate state.
BatchFixture make_batch() {
  BatchFixture fx;
  for (int i = 0; i < 3; ++i) {
    auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
    fx.instances.push_back(bb::make_instance(h, {h->make({1}, {1}, 0)}));
    hsp::AutoOptions o;
    o.order_bound = 27;
    fx.opts.per_instance.push_back(o);
  }
  for (int i = 0; i < 3; ++i) {
    auto q = std::make_shared<grp::QuaternionGroup>(16);
    fx.instances.push_back(bb::make_instance(q, {q->make(0, true)}));
    hsp::AutoOptions o;
    o.order_bound = 16;
    fx.opts.per_instance.push_back(o);
  }
  fx.opts.base_seed = test_seeds::kParBatchBase;
  return fx;
}

// Strips the timing fields (the only legitimately nondeterministic part
// of a report) so reports compare exactly.
struct ComparableItem {
  bool success;
  hsp::Method method;
  std::vector<grp::Code> generators;
  std::string error;
  std::string error_kind;
  std::uint64_t group_ops, classical_queries, quantum_queries,
      sim_basis_evals;
  bool operator==(const ComparableItem&) const = default;
};

std::vector<ComparableItem> comparable(const hsp::BatchReport& r) {
  std::vector<ComparableItem> out;
  for (const auto& item : r.items) {
    out.push_back({item.success, item.solution.method,
                   item.solution.generators, item.error, item.error_kind,
                   item.queries.group_ops, item.queries.classical_queries,
                   item.queries.quantum_queries,
                   item.queries.sim_basis_evals});
  }
  return out;
}

TEST(BatchSolve, ReportsAreIdenticalAcrossWidths) {
  std::vector<std::vector<ComparableItem>> runs;
  for (const int width : {1, 4, 8}) {
    BatchFixture fx = make_batch();
    fx.opts.threads = width;
    const auto report = hsp::solve_hsp_batch(fx.instances, fx.opts);
    EXPECT_EQ(report.solved, fx.instances.size()) << "width " << width;
    runs.push_back(comparable(report));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(BatchSolve, AggregatesQueriesAndSolved) {
  BatchFixture fx = make_batch();
  fx.opts.threads = 4;
  const auto report = hsp::solve_hsp_batch(fx.instances, fx.opts);
  ASSERT_EQ(report.items.size(), fx.instances.size());
  EXPECT_EQ(report.solved, fx.instances.size());
  bb::QueryCounter sum;
  for (const auto& item : report.items) {
    EXPECT_TRUE(item.success);
    EXPECT_TRUE(item.error.empty());
    EXPECT_GE(item.seconds, 0.0);
    sum.group_ops += item.queries.group_ops;
    sum.classical_queries += item.queries.classical_queries;
    sum.quantum_queries += item.queries.quantum_queries;
    sum.sim_basis_evals += item.queries.sim_basis_evals;
  }
  EXPECT_EQ(report.total_queries.group_ops, sum.group_ops);
  EXPECT_EQ(report.total_queries.quantum_queries, sum.quantum_queries);
  EXPECT_GT(report.total_queries.quantum_queries, 0u);
}

TEST(BatchSolve, FailureIsolatesToTheBadInstance) {
  BatchFixture fx = make_batch();
  fx.instances.insert(fx.instances.begin() + 2, bb::HspInstance{});
  fx.opts.per_instance.insert(fx.opts.per_instance.begin() + 2,
                              hsp::AutoOptions{});
  fx.opts.threads = 4;
  const auto report = hsp::solve_hsp_batch(fx.instances, fx.opts);
  ASSERT_EQ(report.items.size(), fx.instances.size());
  EXPECT_EQ(report.solved, fx.instances.size() - 1);
  EXPECT_FALSE(report.items[2].success);
  EXPECT_FALSE(report.items[2].error.empty());
  for (std::size_t i = 0; i < report.items.size(); ++i) {
    if (i != 2) {
      EXPECT_TRUE(report.items[i].success) << i;
    }
  }
}

// A batch mixing healthy, promise-breaking, and misconfigured
// instances: the full reports — including the failure texts and the
// error_kind taxonomy — must be bit-identical at widths 1 and 4. This
// is the contract the `nahsp serve` daemon leans on: a request's
// response may not depend on which requests it was co-batched with.
BatchFixture make_mixed_batch() {
  BatchFixture fx = make_batch();
  {
    // A black box that reports its own hiding-promise violation after
    // five queries (the oracle_error aggregation path). The instance
    // runs serially on one worker, so the failing query — and with it
    // the error text and counter snapshot — is width-invariant.
    bb::HspInstance inst;
    auto d = std::make_shared<grp::DihedralGroup>(6);
    inst.group = d;
    inst.counter = std::make_shared<bb::QueryCounter>();
    inst.bb = std::make_shared<bb::BlackBoxGroup>(d, inst.counter);
    auto calls = std::make_shared<int>(0);
    inst.f = std::make_shared<bb::LambdaHider>(
        [calls](grp::Code) -> std::uint64_t {
          if (++*calls > 5)
            throw oracle_error("labels are not constant on cosets");
          return 0;
        },
        inst.counter);
    fx.instances.insert(fx.instances.begin() + 1, std::move(inst));
    fx.opts.per_instance.insert(fx.opts.per_instance.begin() + 1,
                                hsp::AutoOptions{});
  }
  {
    // Backend the group cannot satisfy: qubit needs power-of-two
    // moduli, Heisenberg's are 3s -> invalid_argument.
    auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
    fx.instances.insert(fx.instances.begin() + 4,
                        bb::make_instance(h, {h->make({1}, {1}, 0)}));
    hsp::AutoOptions o;
    o.order_bound = 27;
    o.sampler.backend = qs::SamplerBackend::kQubit;
    fx.opts.per_instance.insert(fx.opts.per_instance.begin() + 4, o);
  }
  return fx;
}

TEST(BatchSolve, MixedFailureReportsAreWidthInvariant) {
  std::vector<std::vector<ComparableItem>> runs;
  for (const int width : {1, 4}) {
    BatchFixture fx = make_mixed_batch();
    fx.opts.threads = width;
    const auto report = hsp::solve_hsp_batch(fx.instances, fx.opts);
    ASSERT_EQ(report.items.size(), fx.instances.size());
    EXPECT_EQ(report.solved, fx.instances.size() - 2) << "width " << width;
    EXPECT_FALSE(report.items[1].success) << "width " << width;
    EXPECT_EQ(report.items[1].error_kind, "oracle_error")
        << "width " << width;
    EXPECT_FALSE(report.items[4].success) << "width " << width;
    EXPECT_EQ(report.items[4].error_kind, "invalid_argument")
        << "width " << width;
    runs.push_back(comparable(report));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(BatchSolve, KernelsStayInsideTheTaskAtEveryWidth) {
  // The contract: inside a batch task the simulator kernels run
  // serially, at EVERY fan-out width — including the pool's serial
  // fast paths (width 1, single instance), where no worker guard would
  // otherwise be active. Observable through the hiding function, which
  // the sampler's label sweep evaluates from within the solve: it must
  // always see ThreadPool::in_worker() == true.
  const int before = parallelism();
  set_parallelism(4);  // a wide global pool kernels could escape onto
  for (const int width : {1, 4}) {
    for (const std::size_t n_instances : {std::size_t{1}, std::size_t{3}}) {
      std::atomic<bool> escaped{false};
      std::vector<bb::HspInstance> instances;
      for (std::size_t k = 0; k < n_instances; ++k) {
        bb::HspInstance inst;
        inst.group = std::make_shared<grp::CyclicGroup>(8);
        inst.counter = std::make_shared<bb::QueryCounter>();
        inst.bb = std::make_shared<bb::BlackBoxGroup>(inst.group,
                                                      inst.counter);
        // f(x) = x mod 4 hides <4> = {0, 4} in Z_8.
        inst.f = std::make_shared<bb::LambdaHider>(
            [&escaped](grp::Code c) {
              if (!ThreadPool::in_worker()) escaped.store(true);
              return c % 4;
            },
            inst.counter);
        instances.push_back(std::move(inst));
      }
      hsp::BatchOptions opts;
      opts.base_seed = test_seeds::kParBatchBase;
      opts.threads = width;
      const auto report = hsp::solve_hsp_batch(instances, opts);
      EXPECT_EQ(report.solved, n_instances)
          << "width " << width << " n " << n_instances;
      EXPECT_FALSE(escaped.load())
          << "kernels escaped the batch task at width " << width
          << " with " << n_instances << " instance(s)";
    }
  }
  set_parallelism(before);
}

TEST(BatchSolve, NonStdExceptionIsIsolatedToo) {
  // User oracles can throw anything; "captured per item, never thrown"
  // must hold even for non-std exceptions.
  BatchFixture fx = make_batch();
  bb::HspInstance bomb;
  bomb.group = std::make_shared<grp::CyclicGroup>(8);
  bomb.counter = std::make_shared<bb::QueryCounter>();
  bomb.bb = std::make_shared<bb::BlackBoxGroup>(bomb.group, bomb.counter);
  bomb.f = std::make_shared<bb::LambdaHider>(
      [](grp::Code) -> std::uint64_t { throw 42; }, bomb.counter);
  fx.instances.push_back(std::move(bomb));
  fx.opts.per_instance.push_back(hsp::AutoOptions{});
  fx.opts.threads = 4;
  const auto report = hsp::solve_hsp_batch(fx.instances, fx.opts);
  EXPECT_EQ(report.solved, fx.instances.size() - 1);
  EXPECT_FALSE(report.items.back().success);
  EXPECT_FALSE(report.items.back().error.empty());
}

TEST(BatchSolve, PerInstanceOptionSizeMismatchThrows) {
  BatchFixture fx = make_batch();
  fx.opts.per_instance.pop_back();
  EXPECT_THROW(hsp::solve_hsp_batch(fx.instances, fx.opts),
               std::invalid_argument);
}

TEST(BatchSolve, EmptyBatchReturnsEmptyReport) {
  const auto report = hsp::solve_hsp_batch({}, {});
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.solved, 0u);
  EXPECT_EQ(report.total_queries.quantum_queries, 0u);
}

}  // namespace
}  // namespace nahsp
