// Tests for hiding functions (coset labelling) and query accounting.
#include <gtest/gtest.h>

#include "nahsp/groups/algorithms.h"

#include "nahsp/common/check.h"

#include "nahsp/bbox/hiding.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/instance.h"

namespace nahsp::bb {
namespace {

TEST(EnumerationHider, HidesExactly) {
  auto d = std::make_shared<grp::DihedralGroup>(6);
  // H = {1, x^2, x^4}.
  const auto inst = make_instance(d, {d->make(2, false)});
  EXPECT_TRUE(hsp::validate_hiding_promise(*d, *inst.f,
                                           inst.planted_generators));
}

TEST(EnumerationHider, NonNormalSubgroupStillHidden) {
  auto d = std::make_shared<grp::DihedralGroup>(6);
  // H = {1, y}: not normal; f must still separate left cosets.
  const auto inst = make_instance(d, {d->make(0, true)});
  EXPECT_TRUE(hsp::validate_hiding_promise(*d, *inst.f,
                                           inst.planted_generators));
}

TEST(EnumerationHider, TrivialAndFullSubgroups) {
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  {
    const auto inst = make_instance(h, {});
    EXPECT_TRUE(hsp::validate_hiding_promise(*h, *inst.f, {}));
  }
  {
    const auto inst = make_instance(h, h->generators());
    EXPECT_TRUE(hsp::validate_hiding_promise(*h, *inst.f, h->generators()));
  }
}

TEST(PermCosetHider, MatchesEnumerationHider) {
  auto s4 = grp::symmetric_group(4);
  const grp::Code v1 = s4->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}}));
  const grp::Code v2 = s4->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}));
  const auto inst_bsgs = make_perm_instance(s4, {v1, v2});
  const auto inst_enum = make_instance(
      std::static_pointer_cast<const grp::Group>(s4), {v1, v2});
  EXPECT_TRUE(
      hsp::validate_hiding_promise(*s4, *inst_bsgs.f, {v1, v2}));
  // Label partitions agree even if raw label values differ.
  const auto elems = grp::enumerate_group(*s4);
  for (const grp::Code x : elems)
    for (const grp::Code y : elems) {
      const bool same_a = inst_bsgs.f->eval_uncounted(x) ==
                          inst_bsgs.f->eval_uncounted(y);
      const bool same_b = inst_enum.f->eval_uncounted(x) ==
                          inst_enum.f->eval_uncounted(y);
      EXPECT_EQ(same_a, same_b);
    }
}

TEST(QueryCounter, CountsClassicalQueriesAndGroupOps) {
  auto d = std::make_shared<grp::DihedralGroup>(5);
  const auto inst = make_instance(d, {d->make(0, true)});
  inst.counter->reset();
  (void)inst.f->eval(d->make(1, false));
  (void)inst.f->eval(d->make(2, false));
  EXPECT_EQ(inst.counter->classical_queries, 2u);
  (void)inst.bb->mul(0, 0);
  (void)inst.bb->inv(0);
  EXPECT_EQ(inst.counter->group_ops, 2u);
}

TEST(QueryCounter, EvalUncountedDoesNotCount) {
  auto d = std::make_shared<grp::DihedralGroup>(5);
  const auto inst = make_instance(d, {d->make(0, true)});
  inst.counter->reset();
  (void)inst.f->eval_uncounted(d->make(1, false));
  EXPECT_EQ(inst.counter->classical_queries, 0u);
}

TEST(BlackBoxGroup, OrderUnavailable) {
  auto d = std::make_shared<grp::DihedralGroup>(5);
  const auto inst = make_instance(d, {});
  EXPECT_THROW(inst.bb->order(), nahsp::internal_error);
}

TEST(LambdaHider, WrapsArbitraryFunction) {
  auto counter = std::make_shared<QueryCounter>();
  LambdaHider f([](Code c) { return c / 3; }, counter);
  EXPECT_EQ(f.eval(7), 2u);
  EXPECT_EQ(counter->classical_queries, 1u);
}

}  // namespace
}  // namespace nahsp::bb
