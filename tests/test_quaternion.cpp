// Tests for generalized quaternion groups and their HSP instances.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/small_commutator.h"

namespace nahsp::grp {
namespace {

TEST(Quaternion, DefiningRelations) {
  for (const std::uint64_t order : {8ULL, 16ULL, 32ULL, 64ULL}) {
    QuaternionGroup q(order);
    const Code a = q.make(1, false);
    const Code b = q.make(0, true);
    const std::uint64_t n = order / 2;
    EXPECT_TRUE(q.is_id(q.pow(a, n)));
    EXPECT_FALSE(q.is_id(q.pow(a, n / 2)));
    // b^2 = a^{n/2}.
    EXPECT_EQ(q.mul(b, b), q.pow(a, n / 2));
    // b a b^{-1} = a^{-1}.
    EXPECT_EQ(q.conj(a, b), q.inv(a));
    EXPECT_EQ(q.order(), order);
  }
}

TEST(Quaternion, GroupAxiomsExhaustive) {
  QuaternionGroup q(16);
  const auto elems = enumerate_group(q);
  ASSERT_EQ(elems.size(), 16u);
  for (const Code x : elems) {
    EXPECT_TRUE(q.is_id(q.mul(x, q.inv(x))));
    for (const Code y : elems) {
      for (const Code z : elems) {
        EXPECT_EQ(q.mul(q.mul(x, y), z), q.mul(x, q.mul(y, z)));
      }
    }
  }
}

TEST(Quaternion, Q8ElementOrders) {
  QuaternionGroup q(8);
  // Q_8: one identity, one involution (-1), six elements of order 4.
  int order2 = 0, order4 = 0;
  for (const Code x : enumerate_group(q)) {
    const auto o = q.element_order_bruteforce(x);
    if (o == 2) ++order2;
    if (o == 4) ++order4;
  }
  EXPECT_EQ(order2, 1);
  EXPECT_EQ(order4, 6);
}

TEST(Quaternion, UniqueInvolutionIsCentral) {
  for (const std::uint64_t order : {8ULL, 16ULL, 32ULL}) {
    QuaternionGroup q(order);
    const Code z = q.central_involution();
    EXPECT_EQ(q.element_order_bruteforce(z), 2u);
    const auto centre = center_elements(q);
    EXPECT_EQ(centre.size(), 2u);
    EXPECT_TRUE(std::find(centre.begin(), centre.end(), z) != centre.end());
  }
}

TEST(Quaternion, CommutatorSubgroup) {
  // Q_{2^k}' = <a^2>, order 2^{k-2}.
  for (const std::uint64_t order : {8ULL, 16ULL, 32ULL}) {
    QuaternionGroup q(order);
    const auto gp = enumerate_subgroup(q, commutator_subgroup(q));
    EXPECT_EQ(gp.size(), order / 4);
  }
}

TEST(Quaternion, HspViaTheorem11) {
  Rng rng(1);
  QuaternionGroup* raw = nullptr;
  auto q = std::make_shared<QuaternionGroup>(8);
  raw = q.get();
  // All subgroups of Q_8: 1, <-1>, <a>, <b>, <ab>, Q_8.
  const std::vector<std::vector<Code>> subgroups = {
      {},
      {raw->central_involution()},
      {raw->make(1, false)},
      {raw->make(0, true)},
      {raw->make(1, true)},
      raw->generators(),
  };
  for (const auto& planted : subgroups) {
    const auto inst = bb::make_instance(q, planted);
    ASSERT_TRUE(hsp::validate_hiding_promise(*q, *inst.f, planted));
    hsp::SmallCommutatorOptions opts;
    opts.order_bound = 8;
    const auto res =
        hsp::solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(hsp::verify_same_subgroup(*q, res.generators, planted));
  }
}

TEST(Quaternion, HspOnQ16AndQ32) {
  Rng rng(2);
  for (const std::uint64_t order : {16ULL, 32ULL}) {
    auto q = std::make_shared<QuaternionGroup>(order);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<Code> planted{
          random_word_element(*q, q->generators(), rng)};
      const auto inst = bb::make_instance(q, planted);
      hsp::SmallCommutatorOptions opts;
      opts.order_bound = order;
      const auto res =
          hsp::solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
      EXPECT_TRUE(hsp::verify_same_subgroup(*q, res.generators, planted));
    }
  }
}

TEST(Quaternion, RejectsInvalidOrders) {
  EXPECT_THROW(QuaternionGroup(4), std::invalid_argument);
  EXPECT_THROW(QuaternionGroup(12), std::invalid_argument);
  EXPECT_THROW(QuaternionGroup(7), std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::grp
