// Cross-module build sanity.
//
// Two properties are enforced at build time by tests/CMakeLists.txt:
//   1. every public header under src/*/include/nahsp/** compiles as a
//      standalone TU (the nahsp_header_sanity object library, whose
//      objects are linked into this binary), and
//   2. each module static library links against only its declared
//      dependencies (the link_check_<module> executables).
// This file adds the runtime half: one smoke call per module, so a
// module whose archive linked but is broken at runtime fails here first.
#include <gtest/gtest.h>

#include <memory>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/solve.h"
#include "nahsp/linalg/imat.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/qsim/mixedradix.h"

namespace nahsp {
namespace {

TEST(BuildSanity, CommonRngIsDeterministic) {
  Rng a(42), b(42);
  EXPECT_EQ(a(), b());
}

TEST(BuildSanity, NumtheoryLinks) {
  EXPECT_EQ(nt::gcd(12, 18), 6u);
  EXPECT_EQ(nt::ext_gcd(12, 18).g, 6u);
}

TEST(BuildSanity, LinalgLinks) {
  EXPECT_EQ(la::IMat::identity(3).at(2, 2), 1);
}

TEST(BuildSanity, GroupsLinks) {
  grp::CyclicGroup c5(5);
  EXPECT_EQ(c5.order(), 5u);
}

TEST(BuildSanity, BboxCountsGroupOps) {
  auto g = std::make_shared<grp::CyclicGroup>(3);
  auto counter = std::make_shared<bb::QueryCounter>();
  bb::BlackBoxGroup bbg(g, counter);
  EXPECT_TRUE(bbg.is_element(bbg.mul(1, 2)));
  EXPECT_EQ(counter->group_ops, 1u);
}

TEST(BuildSanity, QsimLinks) {
  qs::MixedRadixState st({2, 3});
  EXPECT_EQ(st.dim(), 6u);
}

TEST(BuildSanity, HspMethodNames) {
  EXPECT_STRNE(hsp::method_name(hsp::Method::kHiddenNormal), nullptr);
  EXPECT_STRNE(hsp::method_name(hsp::Method::kElemAbelian2), nullptr);
  EXPECT_STRNE(hsp::method_name(hsp::Method::kSmallCommutator), nullptr);
}

}  // namespace
}  // namespace nahsp
