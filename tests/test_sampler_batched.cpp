// Statistical equivalence suite for the batched coset-sampling engine
// (ctest label: stat — run by a plain `ctest` and re-run by
// scripts/check.sh under a pinned NAHSP_STAT_SEED).
//
// sampler.h claims the cached outcome distribution served by
// sample_characters is identical to the distribution of the simulated
// circuit. This file pins that claim with chi-square tests:
//  - batched draws vs the exact uniform-on-H^perp law, per backend;
//  - batched vs scalar draws on NON-hiding label functions (where no
//    closed form exists, the scalar circuit is the reference);
//  - all four backends against each other on shared instances
//    (identical cached supports, chi-square-equivalent draws);
// plus the accounting regression (a batch of k counts exactly k quantum
// queries on every backend) and the seed-determinism contract.
//
// Seeds come from test_seeds.h; override with NAHSP_STAT_SEED to replay
// a flake (scripts/check.sh pins the default).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <map>
#include <string>

#include "nahsp/common/rng.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/sparse.h"
#include "test_seeds.h"

namespace nahsp::qs {
namespace {

// A hiding label function for subgroup H of Z_mods: canonical coset id.
LabelFn coset_label_fn(const std::vector<u64>& mods,
                       const std::vector<la::AbVec>& h_gens) {
  const auto h_elems = la::abelian_enumerate(h_gens, mods);
  return [mods, h_elems](const la::AbVec& x) -> u64 {
    u64 best = ~u64{0};
    for (const la::AbVec& h : h_elems) {
      u64 idx = 0;
      for (std::size_t i = 0; i < mods.size(); ++i)
        idx = idx * mods[i] + (x[i] + h[i]) % mods[i];
      best = std::min(best, idx);
    }
    return best;
  };
}

// 0.999 quantile of chi-square with df degrees of freedom
// (Wilson–Hilferty approximation; z = Phi^{-1}(0.999)).
double chi2_crit_999(int df) {
  const double z = 3.0902;
  const double t = 2.0 / (9.0 * static_cast<double>(df));
  const double c = 1.0 - t + z * std::sqrt(t);
  return static_cast<double>(df) * c * c * c;
}

// Draws n characters through the batch API and chi-square-tests them
// against the exact law: uniform over H^perp.
void expect_batched_uniform_on_perp(CosetSampler& s, Rng& rng,
                                    const std::vector<u64>& mods,
                                    const std::vector<la::AbVec>& h_gens,
                                    int n, const std::string& what) {
  const auto perp =
      la::abelian_enumerate(la::congruence_kernel(h_gens, mods), mods);
  std::map<la::AbVec, int> counts;
  for (const la::AbVec& y : perp) counts[y] = 0;
  const auto batch = s.sample_characters(rng, static_cast<std::size_t>(n));
  ASSERT_EQ(batch.size(), static_cast<std::size_t>(n)) << what;
  for (const la::AbVec& y : batch) {
    const auto it = counts.find(y);
    ASSERT_NE(it, counts.end()) << what << ": sample outside H^perp";
    ++it->second;
  }
  if (perp.size() < 2) return;  // point mass: membership above is the test
  const double expected = static_cast<double>(n) / perp.size();
  double chi2 = 0.0;
  for (const auto& [y, c] : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, chi2_crit_999(static_cast<int>(perp.size()) - 1)) << what;
}

// Two-sample chi-square (equal sample sizes): are the two empirical
// distributions draws from the same law?
void expect_same_distribution(const std::map<la::AbVec, int>& a,
                              const std::map<la::AbVec, int>& b,
                              const std::string& what) {
  std::map<la::AbVec, std::pair<int, int>> merged;
  for (const auto& [y, c] : a) merged[y].first = c;
  for (const auto& [y, c] : b) merged[y].second = c;
  double chi2 = 0.0;
  int cats = 0;
  for (const auto& [y, cs] : merged) {
    const double n1 = cs.first, n2 = cs.second;
    if (n1 + n2 == 0) continue;
    ++cats;
    const double d = n1 - n2;
    chi2 += d * d / (n1 + n2);
  }
  ASSERT_GE(cats, 2) << what;
  EXPECT_LT(chi2, chi2_crit_999(cats - 1)) << what;
}

struct BatchCase {
  std::string label;
  std::vector<u64> mods;
  std::vector<la::AbVec> h_gens;
  bool pow2;  // qubit backend applicable
};

std::vector<BatchCase> batch_cases() {
  return {
      {"Z8_sub4", {8}, {{4}}, true},
      {"Z12_sub3", {12}, {{3}}, false},
      {"Z4xZ4_diag", {4, 4}, {{1, 1}}, true},
      {"Z2x2x2_plane", {2, 2, 2}, {{1, 1, 0}, {0, 1, 1}}, true},
      {"Z6xZ4_mixed", {6, 4}, {{2, 0}, {0, 2}}, false},
      {"Z9_trivial", {9}, {}, false},
      {"Z4xZ2_sub", {4, 2}, {{2, 1}}, true},
  };
}

u64 case_seed(const BatchCase& c, u64 salt) {
  return test_seeds::stat_seed() + salt * 1000003 +
         std::hash<std::string>{}(c.label);
}

constexpr int kDraws = 4000;

class BatchedBackends : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchedBackends, MixedRadixBatchedUniformOnPerp) {
  const auto& c = GetParam();
  Rng rng(case_seed(c, 1));
  MixedRadixCosetSampler s(c.mods, coset_label_fn(c.mods, c.h_gens), nullptr);
  expect_batched_uniform_on_perp(s, rng, c.mods, c.h_gens, kDraws,
                                 c.label + "/mixed-radix");
}

TEST_P(BatchedBackends, AnalyticBatchedUniformOnPerp) {
  const auto& c = GetParam();
  Rng rng(case_seed(c, 2));
  AnalyticCosetSampler s(c.mods, c.h_gens, nullptr);
  expect_batched_uniform_on_perp(s, rng, c.mods, c.h_gens, kDraws,
                                 c.label + "/analytic");
}

TEST_P(BatchedBackends, QubitBatchedUniformOnPerp) {
  const auto& c = GetParam();
  if (!c.pow2) GTEST_SKIP() << "qubit backend needs power-of-two moduli";
  Rng rng(case_seed(c, 3));
  QubitCosetSampler s(c.mods, coset_label_fn(c.mods, c.h_gens), nullptr);
  expect_batched_uniform_on_perp(s, rng, c.mods, c.h_gens, kDraws,
                                 c.label + "/qubit");
}

TEST_P(BatchedBackends, SparseBatchedUniformOnPerp) {
  // The sparse engine has no moduli restriction — every case runs,
  // including the degenerate Z9_trivial (|H| = 1 uniform mode).
  const auto& c = GetParam();
  Rng rng(case_seed(c, 6));
  SparseCosetSampler s(c.mods, coset_label_fn(c.mods, c.h_gens), nullptr);
  expect_batched_uniform_on_perp(s, rng, c.mods, c.h_gens, kDraws,
                                 c.label + "/sparse");
}

// Batched vs scalar on the SAME backend, same instance: the cached
// distribution must reproduce the simulated circuit, not just the ideal
// uniform law (two independent samplers so the scalar one never caches).
TEST_P(BatchedBackends, MixedRadixBatchedMatchesScalar) {
  const auto& c = GetParam();
  Rng rng1(case_seed(c, 4)), rng2(case_seed(c, 5));
  MixedRadixCosetSampler scalar(c.mods, coset_label_fn(c.mods, c.h_gens),
                                nullptr);
  MixedRadixCosetSampler batched(c.mods, coset_label_fn(c.mods, c.h_gens),
                                 nullptr);
  std::map<la::AbVec, int> f_scalar, f_batched;
  for (int t = 0; t < kDraws; ++t) ++f_scalar[scalar.sample_character(rng1)];
  for (const la::AbVec& y : batched.sample_characters(rng2, kDraws))
    ++f_batched[y];
  EXPECT_TRUE(batched.distribution_cached()) << c.label;
  expect_same_distribution(f_scalar, f_batched, c.label + "/scalar-vs-batched");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchedBackends, ::testing::ValuesIn(batch_cases()),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      return info.param.label;
    });

// All four backends on one shared power-of-two instance: every one
// draws chi-square-equivalently from the same uniform-on-H^perp law.
TEST(BatchedBackendEquivalence, FourBackendsAgreeOnSharedInstance) {
  const std::vector<u64> mods{4, 2};
  const std::vector<la::AbVec> h{{2, 1}};
  Rng r1(test_seeds::stat_seed() + 11), r2(test_seeds::stat_seed() + 12),
      r3(test_seeds::stat_seed() + 13), r4(test_seeds::stat_seed() + 14);
  MixedRadixCosetSampler mr(mods, coset_label_fn(mods, h), nullptr);
  QubitCosetSampler qb(mods, coset_label_fn(mods, h), nullptr);
  AnalyticCosetSampler an(mods, h, nullptr);
  SparseCosetSampler sp(mods, coset_label_fn(mods, h), nullptr);
  expect_batched_uniform_on_perp(mr, r1, mods, h, kDraws, "shared/mixed");
  expect_batched_uniform_on_perp(qb, r2, mods, h, kDraws, "shared/qubit");
  expect_batched_uniform_on_perp(an, r3, mods, h, kDraws, "shared/analytic");
  expect_batched_uniform_on_perp(sp, r4, mods, h, kDraws, "shared/sparse");
}

// The statevector backends must agree not just in law but in cached
// support: after a batch, each exposes exactly H^perp (compared as
// sorted sets — the backends' canonical orders differ).
TEST(BatchedBackendEquivalence, CachedSupportsMatchAcrossBackends) {
  const std::vector<u64> mods{4, 2, 2};
  const std::vector<la::AbVec> h{{2, 1, 0}, {0, 0, 1}};
  auto perp = la::abelian_enumerate(la::congruence_kernel(h, mods), mods);
  std::sort(perp.begin(), perp.end());

  MixedRadixCosetSampler mr(mods, coset_label_fn(mods, h), nullptr);
  QubitCosetSampler qb(mods, coset_label_fn(mods, h), nullptr);
  SparseCosetSampler sp(mods, coset_label_fn(mods, h), nullptr);
  Rng rng(test_seeds::stat_seed() + 15);
  for (CosetSampler* s :
       std::initializer_list<CosetSampler*>{&mr, &qb, &sp}) {
    (void)s->sample_characters(rng, 64);  // force the cache
    auto support = s->cached_support();
    std::sort(support.begin(), support.end());
    EXPECT_EQ(support, perp) << s->backend_name();
  }
}

// Non-hiding label functions: no closed-form law exists, so the scalar
// circuit is the reference. Exercises the collision route (small label
// classes)...
TEST(BatchedNonHiding, MixedRadixCollisionRouteMatchesScalar) {
  const std::vector<u64> mods{8};
  LabelFn f = [](const la::AbVec& x) { return x[0] % 3; };  // not a coset fn
  Rng rng1(test_seeds::stat_seed() + 21), rng2(test_seeds::stat_seed() + 22);
  MixedRadixCosetSampler scalar(mods, f, nullptr);
  MixedRadixCosetSampler batched(mods, f, nullptr);
  std::map<la::AbVec, int> fs, fb;
  for (int t = 0; t < kDraws; ++t) ++fs[scalar.sample_character(rng1)];
  for (const la::AbVec& y : batched.sample_characters(rng2, kDraws)) ++fb[y];
  expect_same_distribution(fs, fb, "nonhiding/collision-route");
}

// ...and the indicator-DFT route (one class with |S|^2 > |A|).
TEST(BatchedNonHiding, MixedRadixDftRouteMatchesScalar) {
  const std::vector<u64> mods{16};
  LabelFn f = [](const la::AbVec& x) {
    return x[0] < 12 ? u64{0} : x[0];  // class sizes 12, 1, 1, 1, 1
  };
  Rng rng1(test_seeds::stat_seed() + 23), rng2(test_seeds::stat_seed() + 24);
  MixedRadixCosetSampler scalar(mods, f, nullptr);
  MixedRadixCosetSampler batched(mods, f, nullptr);
  std::map<la::AbVec, int> fs, fb;
  for (int t = 0; t < kDraws; ++t) ++fs[scalar.sample_character(rng1)];
  for (const la::AbVec& y : batched.sample_characters(rng2, kDraws)) ++fb[y];
  expect_same_distribution(fs, fb, "nonhiding/dft-route");
}

TEST(BatchedNonHiding, QubitDeferredMeasurementMatchesScalar) {
  const std::vector<u64> mods{8};
  LabelFn f = [](const la::AbVec& x) { return x[0] % 3; };
  Rng rng1(test_seeds::stat_seed() + 25), rng2(test_seeds::stat_seed() + 26);
  QubitCosetSampler scalar(mods, f, nullptr);
  QubitCosetSampler batched(mods, f, nullptr);
  std::map<la::AbVec, int> fs, fb;
  for (int t = 0; t < kDraws; ++t) ++fs[scalar.sample_character(rng1)];
  for (const la::AbVec& y : batched.sample_characters(rng2, kDraws)) ++fb[y];
  expect_same_distribution(fs, fb, "nonhiding/qubit-deferred");
}

// The cached distribution must track the gate-level circuit including
// the approximate QFT, not the ideal transform.
TEST(BatchedApproxQft, CachedDistributionMatchesApproximateCircuit) {
  const std::vector<u64> mods{16};
  const std::vector<la::AbVec> h{{4}};
  Rng rng1(test_seeds::stat_seed() + 31), rng2(test_seeds::stat_seed() + 32);
  QubitCosetSampler scalar(mods, coset_label_fn(mods, h), nullptr,
                           /*approx_cutoff=*/2);
  QubitCosetSampler batched(mods, coset_label_fn(mods, h), nullptr,
                            /*approx_cutoff=*/2);
  std::map<la::AbVec, int> fs, fb;
  for (int t = 0; t < kDraws; ++t) ++fs[scalar.sample_character(rng1)];
  for (const la::AbVec& y : batched.sample_characters(rng2, kDraws)) ++fb[y];
  expect_same_distribution(fs, fb, "approx-qft/scalar-vs-batched");
}

// ---- Query accounting regression -------------------------------------
// A batch of k draws increments quantum_queries by exactly k on every
// backend; sim_basis_evals only counts the one-time label sweep (the
// bug class PR 1 fixed in src/hsp/src/order.cpp).

TEST(BatchedQueryAccounting, MixedRadixCountsKPerBatch) {
  bb::QueryCounter counter;
  const std::vector<u64> mods{12};
  MixedRadixCosetSampler s(mods, coset_label_fn(mods, {{3}}), &counter);
  Rng rng(test_seeds::stat_seed() + 41);
  (void)s.sample_characters(rng, 17);
  EXPECT_EQ(counter.quantum_queries, 17u);
  EXPECT_EQ(counter.sim_basis_evals, 12u);  // label cache built once
  (void)s.sample_characters(rng, 5);
  EXPECT_EQ(counter.quantum_queries, 22u);
  EXPECT_EQ(counter.sim_basis_evals, 12u);  // no re-evaluation
  (void)s.sample_character(rng);            // scalar draw still counts one
  EXPECT_EQ(counter.quantum_queries, 23u);
}

TEST(BatchedQueryAccounting, QubitCountsKPerBatch) {
  bb::QueryCounter counter;
  const std::vector<u64> mods{4, 2};
  QubitCosetSampler s(mods, coset_label_fn(mods, {{2, 1}}), &counter);
  Rng rng(test_seeds::stat_seed() + 42);
  (void)s.sample_characters(rng, 9);
  EXPECT_EQ(counter.quantum_queries, 9u);
  EXPECT_EQ(counter.sim_basis_evals, 8u);
  (void)s.sample_characters(rng, 1);
  EXPECT_EQ(counter.quantum_queries, 10u);
  EXPECT_EQ(counter.sim_basis_evals, 8u);
}

TEST(BatchedQueryAccounting, SparseCountsKPerBatch) {
  bb::QueryCounter counter;
  const std::vector<u64> mods{12};
  SparseCosetSampler s(mods, coset_label_fn(mods, {{3}}), &counter);
  Rng rng(test_seeds::stat_seed() + 46);
  (void)s.sample_characters(rng, 17);
  EXPECT_EQ(counter.quantum_queries, 17u);
  EXPECT_EQ(counter.sim_basis_evals, 12u);  // one serial label sweep
  (void)s.sample_characters(rng, 5);
  EXPECT_EQ(counter.quantum_queries, 22u);
  EXPECT_EQ(counter.sim_basis_evals, 12u);  // no re-sweep
}

TEST(BatchedQueryAccounting, AnalyticCountsKPerBatch) {
  bb::QueryCounter counter;
  AnalyticCosetSampler s({8}, {{4}}, &counter);
  Rng rng(test_seeds::stat_seed() + 43);
  (void)s.sample_characters(rng, 13);
  EXPECT_EQ(counter.quantum_queries, 13u);
  EXPECT_EQ(counter.sim_basis_evals, 0u);  // no simulator involved
}

TEST(BatchedQueryAccounting, AdaptiveUncachedBatchesStillCountPerDraw) {
  // Z_289 with 17 classes of 17: the cache costs more than one round, so
  // the first 1-draw batch stays on the scalar circuit; the cumulative
  // demand of the second batch tips the estimate and builds the cache.
  bb::QueryCounter counter;
  const std::vector<u64> mods{289};
  LabelFn f = [](const la::AbVec& x) { return x[0] % 17; };
  MixedRadixCosetSampler s(mods, f, &counter);
  Rng rng(test_seeds::stat_seed() + 44);
  (void)s.sample_characters(rng, 1);
  EXPECT_FALSE(s.distribution_cached());
  EXPECT_EQ(counter.quantum_queries, 1u);
  (void)s.sample_characters(rng, 4);
  EXPECT_TRUE(s.distribution_cached());
  EXPECT_EQ(counter.quantum_queries, 5u);
  EXPECT_EQ(counter.sim_basis_evals, 289u);
}

TEST(BatchedQueryAccounting, EmptyBatchCountsNothing) {
  bb::QueryCounter counter;
  const std::vector<u64> mods{8};
  MixedRadixCosetSampler s(mods, coset_label_fn(mods, {{4}}), &counter);
  Rng rng(test_seeds::stat_seed() + 45);
  EXPECT_TRUE(s.sample_characters(rng, 0).empty());
  EXPECT_EQ(counter.quantum_queries, 0u);
}

// ---- Seed determinism -------------------------------------------------
// Same seed + same call pattern => identical character sequences, so a
// fuzz/integration failure replays exactly.

TEST(BatchedSeedDeterminism, MixedRadixReplaysExactly) {
  const std::vector<u64> mods{6, 4};
  const std::vector<la::AbVec> h{{2, 0}, {0, 2}};
  MixedRadixCosetSampler a(mods, coset_label_fn(mods, h), nullptr);
  MixedRadixCosetSampler b(mods, coset_label_fn(mods, h), nullptr);
  Rng ra(test_seeds::stat_seed() + 51), rb(test_seeds::stat_seed() + 51);
  EXPECT_EQ(a.sample_characters(ra, 12), b.sample_characters(rb, 12));
  EXPECT_EQ(a.sample_character(ra), b.sample_character(rb));
  EXPECT_EQ(a.sample_characters(ra, 5), b.sample_characters(rb, 5));
}

TEST(BatchedSeedDeterminism, QubitReplaysExactly) {
  const std::vector<u64> mods{4, 2};
  const std::vector<la::AbVec> h{{2, 1}};
  QubitCosetSampler a(mods, coset_label_fn(mods, h), nullptr);
  QubitCosetSampler b(mods, coset_label_fn(mods, h), nullptr);
  Rng ra(test_seeds::stat_seed() + 52), rb(test_seeds::stat_seed() + 52);
  EXPECT_EQ(a.sample_characters(ra, 12), b.sample_characters(rb, 12));
  EXPECT_EQ(a.sample_characters(ra, 3), b.sample_characters(rb, 3));
}

TEST(BatchedSeedDeterminism, AnalyticReplaysExactly) {
  AnalyticCosetSampler a({8}, {{2}}, nullptr);
  AnalyticCosetSampler b({8}, {{2}}, nullptr);
  Rng ra(test_seeds::stat_seed() + 53), rb(test_seeds::stat_seed() + 53);
  EXPECT_EQ(a.sample_characters(ra, 20), b.sample_characters(rb, 20));
}

TEST(BatchedSeedDeterminism, SparseReplaysExactly) {
  const std::vector<u64> mods{6, 4};
  const std::vector<la::AbVec> h{{2, 0}, {0, 2}};
  SparseCosetSampler a(mods, coset_label_fn(mods, h), nullptr);
  SparseCosetSampler b(mods, coset_label_fn(mods, h), nullptr);
  Rng ra(test_seeds::stat_seed() + 54), rb(test_seeds::stat_seed() + 54);
  EXPECT_EQ(a.sample_characters(ra, 12), b.sample_characters(rb, 12));
  EXPECT_EQ(a.sample_character(ra), b.sample_character(rb));
  EXPECT_EQ(a.sample_characters(ra, 5), b.sample_characters(rb, 5));
}

}  // namespace
}  // namespace nahsp::qs
