// Tests for constructive membership in Abelian subgroups (Theorem 6) and
// its secondary-encoding variant (Theorem 7).
#include <gtest/gtest.h>

#include "nahsp/groups/algorithms.h"

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/membership.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

void expect_expression_valid(const grp::Group& g,
                             const std::vector<Code>& hs, Code target,
                             const MembershipResult& res) {
  ASSERT_TRUE(res.representable);
  Code acc = g.id();
  for (std::size_t i = 0; i < hs.size(); ++i)
    acc = g.mul(acc, g.pow(hs[i], res.exponents[i]));
  EXPECT_EQ(acc, target);
}

TEST(Membership, InsideCyclicGroup) {
  Rng rng(1);
  auto z = std::make_shared<grp::CyclicGroup>(36);
  const auto inst = bb::make_instance(z, {});
  // 30 in <12, 9>? 12a + 9b ≡ 30 (mod 36): yes (a=1, b=2).
  const auto res = constructive_membership(*inst.bb, {12, 9}, 30, rng);
  expect_expression_valid(*z, {12, 9}, 30, res);
}

TEST(Membership, NegativeCase) {
  Rng rng(2);
  auto z = std::make_shared<grp::CyclicGroup>(36);
  const auto inst = bb::make_instance(z, {});
  // <12, 9> = <3>; 10 is not a multiple of 3.
  const auto res = constructive_membership(*inst.bb, {12, 9}, 10, rng);
  EXPECT_FALSE(res.representable);
}

TEST(Membership, ProductGroupSweep) {
  Rng rng(3);
  auto p = grp::product_of_cyclics({8, 6});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const std::vector<Code> hs{p->pack({2, 0}), p->pack({0, 3})};
  const auto elems = grp::enumerate_subgroup(*p, hs);
  int in_count = 0;
  for (u64 a = 0; a < 8; ++a) {
    for (u64 b = 0; b < 6; ++b) {
      const Code target = p->pack({a, b});
      const bool expected =
          std::binary_search(elems.begin(), elems.end(), target);
      const auto res = constructive_membership(*inst.bb, hs, target, rng);
      EXPECT_EQ(res.representable, expected) << a << "," << b;
      if (expected) {
        expect_expression_valid(*p, hs, target, res);
        ++in_count;
      }
    }
  }
  EXPECT_EQ(in_count, static_cast<int>(elems.size()));
}

TEST(Membership, CommutingElementsInsideNonAbelianGroup) {
  Rng rng(4);
  // Rotations inside a dihedral group commute.
  auto d = std::make_shared<grp::DihedralGroup>(16);
  const auto inst = bb::make_instance(d, {});
  const std::vector<Code> hs{d->make(4, false)};
  {
    const auto res =
        constructive_membership(*inst.bb, hs, d->make(12, false), rng);
    expect_expression_valid(*d, hs, d->make(12, false), res);
  }
  {
    const auto res =
        constructive_membership(*inst.bb, hs, d->make(2, false), rng);
    EXPECT_FALSE(res.representable);
  }
}

TEST(Membership, CentreOfHeisenberg) {
  Rng rng(5);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {});
  const Code z = h->central_generator();
  const auto res =
      constructive_membership(*inst.bb, {z}, h->pow(z, 2), rng);
  expect_expression_valid(*h, {z}, h->pow(z, 2), res);
  // A non-central element is not in <z>.
  const auto neg =
      constructive_membership(*inst.bb, {z}, h->make({1}, {0}, 0), rng);
  EXPECT_FALSE(neg.representable);
}

TEST(Membership, IdentityAlwaysRepresentable) {
  Rng rng(6);
  auto z = std::make_shared<grp::CyclicGroup>(20);
  const auto inst = bb::make_instance(z, {});
  const auto res = constructive_membership(*inst.bb, {4}, 0, rng);
  EXPECT_TRUE(res.representable);
}

TEST(Membership, SecondaryEncodingModuloSubgroup) {
  Rng rng(7);
  // Work in Z_24 / <8> ~= Z_8: labels are cosets of <8>.
  auto z = std::make_shared<grp::CyclicGroup>(24);
  const auto inst = bb::make_instance(z, {});
  auto label = [](Code c) -> u64 { return c % 8; };
  // In the factor group, 6 in <4>? 4a ≡ 6 mod 8: no.
  MembershipOptions opts;
  opts.order_bound = 24;
  {
    const auto res =
        constructive_membership(*inst.bb, {4}, 6, label, rng, opts);
    EXPECT_FALSE(res.representable);
  }
  // 6 in <2> mod 8: yes (a = 3).
  {
    const auto res =
        constructive_membership(*inst.bb, {2}, 6, label, rng, opts);
    ASSERT_TRUE(res.representable);
    EXPECT_EQ((2 * res.exponents[0]) % 8, 6u);
  }
}

TEST(Membership, OrdersReported) {
  Rng rng(8);
  auto p = grp::product_of_cyclics({4, 5});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const auto res = constructive_membership(
      *inst.bb, {p->pack({1, 0}), p->pack({0, 1})}, p->pack({3, 2}), rng);
  ASSERT_TRUE(res.representable);
  ASSERT_EQ(res.orders.size(), 3u);
  EXPECT_EQ(res.orders[0], 4u);
  EXPECT_EQ(res.orders[1], 5u);
}

}  // namespace
}  // namespace nahsp::hsp
