// Tests for enumeration, normal closure, commutator subgroup, derived
// series and centre.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"

namespace nahsp::grp {
namespace {

TEST(Enumerate, SubgroupOfCyclic) {
  CyclicGroup z12(12);
  const auto sub = enumerate_subgroup(z12, {4});
  EXPECT_EQ(sub, (std::vector<Code>{0, 4, 8}));
  EXPECT_TRUE(subgroup_contains(z12, {4}, 8));
  EXPECT_FALSE(subgroup_contains(z12, {4}, 2));
}

TEST(Enumerate, CapEnforced) {
  CyclicGroup big(1 << 20);
  EXPECT_THROW(enumerate_group(big, 1024), std::invalid_argument);
}

TEST(Enumerate, EmptyGeneratorsGiveTrivial) {
  DihedralGroup d(6);
  EXPECT_EQ(enumerate_subgroup(d, {}).size(), 1u);
}

TEST(SameSubgroup, DifferentGeneratorsSameGroup) {
  CyclicGroup z12(12);
  EXPECT_TRUE(same_subgroup(z12, {4}, {8}));
  EXPECT_FALSE(same_subgroup(z12, {4}, {6}));
  EXPECT_TRUE(same_subgroup(z12, {2, 3}, {1}));
}

TEST(NormalClosure, ReflectionInDihedral) {
  // <y>^D_n contains all reflections with slopes in <1>... precisely:
  // conjugates x^k y x^-k = x^{2k} y, so closure = <x^2, y>.
  DihedralGroup d(6);
  const Code y = d.make(0, true);
  const auto closure = normal_closure(d, {y});
  const auto elems = enumerate_subgroup(d, closure);
  EXPECT_EQ(elems.size(), 6u);  // {1, x^2, x^4} + three reflections
  EXPECT_TRUE(subgroup_contains(d, closure, d.make(2, false)));
  EXPECT_FALSE(subgroup_contains(d, closure, d.make(1, false)));
}

TEST(NormalClosure, AlreadyNormalIsNoop) {
  DihedralGroup d(8);
  const Code x2 = d.make(2, false);
  const auto closure = normal_closure(d, {x2});
  EXPECT_TRUE(same_subgroup(d, closure, {x2}));
}

TEST(CommutatorSubgroup, Dihedral) {
  // D_n' = <x^2>: order n/2 for even n, n for odd n.
  {
    DihedralGroup d(8);
    const auto gp = enumerate_subgroup(d, commutator_subgroup(d));
    EXPECT_EQ(gp.size(), 4u);
  }
  {
    DihedralGroup d(9);
    const auto gp = enumerate_subgroup(d, commutator_subgroup(d));
    EXPECT_EQ(gp.size(), 9u);
  }
}

TEST(CommutatorSubgroup, HeisenbergIsCentre) {
  HeisenbergGroup h(7, 1);
  const auto gp = enumerate_subgroup(h, commutator_subgroup(h));
  EXPECT_EQ(gp.size(), 7u);
  EXPECT_TRUE(subgroup_contains(h, commutator_subgroup(h),
                                h.central_generator()));
}

TEST(CommutatorSubgroup, AbelianIsTrivial) {
  auto p = product_of_cyclics({4, 9});
  const auto gp = commutator_subgroup(*p);
  EXPECT_TRUE(gp.empty());
}

TEST(CommutatorSubgroup, S4IsA4) {
  auto s4 = symmetric_group(4);
  const auto gp = enumerate_subgroup(*s4, commutator_subgroup(*s4));
  EXPECT_EQ(gp.size(), 12u);
}

TEST(DerivedSeries, HeisenbergLengthTwo) {
  HeisenbergGroup h(3, 1);
  const auto series = derived_series_elements(h);
  ASSERT_EQ(series.size(), 3u);  // G > Z(G) > 1
  EXPECT_EQ(series[0].size(), 27u);
  EXPECT_EQ(series[1].size(), 3u);
  EXPECT_EQ(series[2].size(), 1u);
}

TEST(DerivedSeries, S4Solvable) {
  auto s4 = symmetric_group(4);
  const auto series = derived_series_elements(*s4);
  // S4 > A4 > V4 > 1
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[1].size(), 12u);
  EXPECT_EQ(series[2].size(), 4u);
  EXPECT_EQ(series[3].size(), 1u);
}

TEST(IsAbelian, Families) {
  EXPECT_TRUE(is_abelian(*product_of_cyclics({3, 5})));
  EXPECT_FALSE(is_abelian(DihedralGroup(5)));
  EXPECT_FALSE(is_abelian(HeisenbergGroup(3, 1)));
  EXPECT_TRUE(is_abelian(CyclicGroup(17)));
}

TEST(IsNormal, Cases) {
  DihedralGroup d(6);
  EXPECT_TRUE(is_normal_subgroup(d, {d.make(1, false)}));   // rotations
  EXPECT_FALSE(is_normal_subgroup(d, {d.make(0, true)}));   // a reflection
  auto s4 = symmetric_group(4);
  const Code v1 = s4->encode(perm_from_cycles(4, {{0, 1}, {2, 3}}));
  const Code v2 = s4->encode(perm_from_cycles(4, {{0, 2}, {1, 3}}));
  EXPECT_TRUE(is_normal_subgroup(*s4, {v1, v2}));  // V_4
  EXPECT_FALSE(is_normal_subgroup(*s4, {v1}));
}

TEST(Center, KnownCentres) {
  EXPECT_EQ(center_elements(HeisenbergGroup(5, 1)).size(), 5u);
  EXPECT_EQ(center_elements(DihedralGroup(5)).size(), 1u);
  EXPECT_EQ(center_elements(DihedralGroup(6)).size(), 2u);  // {1, x^3}
  EXPECT_EQ(center_elements(*symmetric_group(4)).size(), 1u);
  EXPECT_EQ(center_elements(CyclicGroup(9)).size(), 9u);
}

TEST(RandomWordElement, StaysInGroup) {
  auto w = wreath_z2k_z2(2);
  Rng rng(5);
  const auto elems = enumerate_group(*w);
  for (int i = 0; i < 50; ++i) {
    const Code x = random_word_element(*w, w->generators(), rng);
    EXPECT_TRUE(std::binary_search(elems.begin(), elems.end(), x));
  }
}

TEST(RandomWordElement, EmptyGensGiveIdentity) {
  CyclicGroup z5(5);
  Rng rng(6);
  EXPECT_EQ(random_word_element(z5, {}, rng), z5.id());
}

}  // namespace
}  // namespace nahsp::grp
