// Tests for the Cheung–Mosca Abelian decomposition (paper Theorem 1).
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/hsp/decompose.h"

namespace nahsp::hsp {
namespace {

TEST(Decompose, CyclicGroup) {
  Rng rng(1);
  auto z = std::make_shared<grp::CyclicGroup>(12);
  const auto inst = bb::make_instance(z, {});
  const auto dec = decompose_abelian(*inst.bb, rng);
  EXPECT_EQ(dec.order, 12u);
  EXPECT_EQ(dec.invariant_factors, (std::vector<u64>{12}));
  EXPECT_EQ(dec.primary_orders, (std::vector<u64>{3, 4}));
}

TEST(Decompose, ProductWithRedundantGenerators) {
  Rng rng(2);
  // Z_4 x Z_6 ~= Z_2 x Z_12.
  auto p = grp::product_of_cyclics({4, 6});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const auto dec = decompose_abelian(*inst.bb, rng);
  EXPECT_EQ(dec.order, 24u);
  EXPECT_EQ(dec.invariant_factors, (std::vector<u64>{2, 12}));
  EXPECT_EQ(dec.primary_orders, (std::vector<u64>{2, 3, 4}));
}

TEST(Decompose, ElementaryAbelian) {
  Rng rng(3);
  auto p = grp::elementary_abelian(2, 4);
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const auto dec = decompose_abelian(*inst.bb, rng);
  EXPECT_EQ(dec.order, 16u);
  EXPECT_EQ(dec.invariant_factors, (std::vector<u64>{2, 2, 2, 2}));
}

TEST(Decompose, CoprimeProductIsCyclic) {
  Rng rng(4);
  auto p = grp::product_of_cyclics({3, 5});
  const auto inst =
      bb::make_instance(std::static_pointer_cast<const grp::Group>(p), {});
  const auto dec = decompose_abelian(*inst.bb, rng);
  EXPECT_EQ(dec.invariant_factors, (std::vector<u64>{15}));
  EXPECT_EQ(dec.primary_orders, (std::vector<u64>{3, 5}));
}

TEST(Decompose, TrivialGroup) {
  Rng rng(5);
  auto z = std::make_shared<grp::CyclicGroup>(1);
  const auto inst = bb::make_instance(z, {});
  // Z_1 has no generators; decompose requires at least one — use Z_2
  // with its generator instead to cover the smallest nontrivial case.
  auto z2 = std::make_shared<grp::CyclicGroup>(2);
  const auto inst2 = bb::make_instance(z2, {});
  const auto dec = decompose_abelian(*inst2.bb, rng);
  EXPECT_EQ(dec.order, 2u);
}

}  // namespace
}  // namespace nahsp::hsp
