// Tests for the gate-level qubit statevector simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "nahsp/common/rng.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {
namespace {

constexpr double kTol = 1e-10;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amp(0)), 1.0, kTol);
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
}

TEST(StateVector, UniformState) {
  StateVector sv = StateVector::uniform(4);
  for (u64 i = 0; i < 16; ++i)
    EXPECT_NEAR(std::abs(sv.amp(i)), 0.25, kTol);
}

TEST(StateVector, HadamardInvolution) {
  Rng rng(1);
  StateVector sv = StateVector::basis(3, 5);
  sv.apply_h(1);
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
  sv.apply_h(1);
  EXPECT_NEAR(std::abs(sv.amp(5)), 1.0, kTol);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv = StateVector::basis(3, 0b010);
  sv.apply_x(0);
  EXPECT_NEAR(std::abs(sv.amp(0b011)), 1.0, kTol);
  sv.apply_x(1);
  EXPECT_NEAR(std::abs(sv.amp(0b001)), 1.0, kTol);
}

TEST(StateVector, PhaseOnlyAffectsSetBit) {
  StateVector sv = StateVector::uniform(2);
  sv.apply_phase(0, 1.234);
  EXPECT_NEAR(std::arg(sv.amp(0b01)), 1.234, kTol);
  EXPECT_NEAR(std::arg(sv.amp(0b00)), 0.0, kTol);
}

TEST(StateVector, CPhaseNeedsBothBits) {
  StateVector sv = StateVector::uniform(2);
  sv.apply_cphase(0, 1, 0.7);
  EXPECT_NEAR(std::arg(sv.amp(0b11)), 0.7, kTol);
  EXPECT_NEAR(std::arg(sv.amp(0b01)), 0.0, kTol);
  EXPECT_NEAR(std::arg(sv.amp(0b10)), 0.0, kTol);
}

TEST(StateVector, CnotTruthTable) {
  for (u64 in = 0; in < 4; ++in) {
    StateVector sv = StateVector::basis(2, in);
    sv.apply_cnot(0, 1);  // control qubit 0, target qubit 1
    const u64 expect = (in & 1) ? in ^ 2 : in;
    EXPECT_NEAR(std::abs(sv.amp(expect)), 1.0, kTol) << in;
  }
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv = StateVector::basis(3, 0b001);
  sv.apply_swap(0, 2);
  EXPECT_NEAR(std::abs(sv.amp(0b100)), 1.0, kTol);
  sv.apply_swap(0, 2);
  EXPECT_NEAR(std::abs(sv.amp(0b001)), 1.0, kTol);
}

TEST(StateVector, GatesPreserveNorm) {
  Rng rng(3);
  StateVector sv = StateVector::uniform(6);
  sv.apply_h(2);
  sv.apply_x(0);
  sv.apply_phase(4, 0.3);
  sv.apply_cphase(1, 3, 2.1);
  sv.apply_cnot(2, 5);
  sv.apply_swap(1, 4);
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
}

TEST(StateVector, PermutationOracle) {
  StateVector sv = StateVector::basis(3, 2);
  sv.apply_permutation([](u64 s) { return (s + 3) % 8; });
  EXPECT_NEAR(std::abs(sv.amp(5)), 1.0, kTol);
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
}

TEST(StateVector, XorFunctionOracle) {
  // |x>|0> -> |x>|f(x)> with f(x) = x^2 mod 4 on a 2-bit input.
  StateVector sv(4);
  for (int q = 0; q < 2; ++q) sv.apply_h(q);
  sv.apply_xor_function(0, 2, 2, 2, [](u64 x) { return (x * x) % 4; });
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
  for (u64 x = 0; x < 4; ++x) {
    const u64 idx = x | (((x * x) % 4) << 2);
    EXPECT_NEAR(std::abs(sv.amp(idx)), 0.5, kTol);
  }
}

TEST(StateVector, XorFunctionIsItsOwnInverse) {
  StateVector sv(4);
  for (int q = 0; q < 2; ++q) sv.apply_h(q);
  auto f = [](u64 x) { return x ^ 1; };
  sv.apply_xor_function(0, 2, 2, 2, f);
  sv.apply_xor_function(0, 2, 2, 2, f);
  for (u64 x = 0; x < 4; ++x) EXPECT_NEAR(std::abs(sv.amp(x)), 0.5, kTol);
}

TEST(StateVector, MeasureRangeCollapses) {
  Rng rng(5);
  StateVector sv(4);
  for (int q = 0; q < 2; ++q) sv.apply_h(q);
  sv.apply_xor_function(0, 2, 2, 2, [](u64 x) { return x; });  // copy
  const u64 out = sv.measure_range(2, 2, rng);
  // After measuring the copy register, the input collapses to match.
  EXPECT_NEAR(std::abs(sv.amp(out | (out << 2))), 1.0, kTol);
  EXPECT_NEAR(sv.norm2(), 1.0, kTol);
}

TEST(StateVector, MeasurementStatisticsMatchAmplitudes) {
  Rng rng(7);
  StateVector sv(2);
  sv.apply_h(0);  // |0>+|1> on qubit 0
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    StateVector copy = sv;
    ones += static_cast<int>(copy.measure_range(0, 1, rng));
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.5, 0.02);
}

TEST(StateVector, RangeProbability) {
  StateVector sv(3);
  sv.apply_h(0);
  sv.apply_h(1);
  EXPECT_NEAR(sv.range_probability(0, 2, 3), 0.25, kTol);
  EXPECT_NEAR(sv.range_probability(2, 1, 0), 1.0, kTol);
}

TEST(StateVector, SampleRespectsSupport) {
  Rng rng(9);
  StateVector sv = StateVector::basis(4, 11);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sv.sample(rng), 11u);
}

TEST(StateVector, InvalidArgsRejected) {
  StateVector sv(3);
  EXPECT_THROW(sv.apply_h(3), std::invalid_argument);
  EXPECT_THROW(sv.apply_cnot(1, 1), std::invalid_argument);
  EXPECT_THROW(sv.apply_xor_function(0, 2, 1, 2, [](u64 x) { return x; }),
               std::invalid_argument);
  EXPECT_THROW(StateVector(0), std::invalid_argument);
  EXPECT_THROW(StateVector(40), std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::qs
