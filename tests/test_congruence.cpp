// Tests for the congruence-kernel solver and Abelian subgroup utilities —
// the decoding half of the Abelian HSP.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/linalg/congruence.h"

namespace nahsp::la {
namespace {

TEST(CharacterAnnihilates, Definition) {
  const std::vector<u64> mods{4, 6};
  // y=(2,3), x=(2,2): 2*2*(12/4) + 3*2*(12/6) = 12 + 12 = 24 ≡ 0 mod 12.
  EXPECT_TRUE(character_annihilates({2, 3}, {2, 2}, mods));
  // y=(1,0), x=(1,0): 1*3 = 3 mod 12 != 0.
  EXPECT_FALSE(character_annihilates({1, 0}, {1, 0}, mods));
}

TEST(CongruenceKernel, NoSamplesGivesWholeGroup) {
  const std::vector<u64> mods{4, 3};
  const auto gens = congruence_kernel({}, mods);
  EXPECT_EQ(abelian_subgroup_order(gens, mods), 12u);
}

TEST(CongruenceKernel, SingleCharacterCutsIndex) {
  const std::vector<u64> mods{8};
  // y = 4 over Z_8: kernel {x : 4x ≡ 0 mod 8} = {0,2,4,6}.
  const auto gens = congruence_kernel({{4}}, mods);
  EXPECT_EQ(abelian_subgroup_order(gens, mods), 4u);
  EXPECT_TRUE(abelian_contains(gens, mods, {2}));
  EXPECT_FALSE(abelian_contains(gens, mods, {1}));
}

TEST(CongruenceKernel, SolutionsAnnihilateAllSamples) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u64> mods;
    const int r = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < r; ++i) {
      const u64 choices[] = {2, 3, 4, 5, 6, 8, 9};
      mods.push_back(choices[rng.below(7)]);
    }
    std::vector<AbVec> samples;
    const int m = static_cast<int>(rng.below(5));
    for (int j = 0; j < m; ++j) {
      AbVec y(mods.size());
      for (std::size_t i = 0; i < mods.size(); ++i)
        y[i] = rng.below(mods[i]);
      samples.push_back(y);
    }
    const auto gens = congruence_kernel(samples, mods);
    for (const AbVec& g : gens)
      for (const AbVec& y : samples)
        EXPECT_TRUE(character_annihilates(y, g, mods));
    // And every annihilated element is generated (completeness):
    // enumerate the full kernel by brute force and compare orders.
    u64 brute = 0;
    u64 total = 1;
    for (const u64 s : mods) total *= s;
    for (u64 idx = 0; idx < total; ++idx) {
      AbVec x(mods.size());
      u64 rest = idx;
      for (std::size_t i = mods.size(); i-- > 0;) {
        x[i] = rest % mods[i];
        rest /= mods[i];
      }
      bool ok = true;
      for (const AbVec& y : samples)
        if (!character_annihilates(y, x, mods)) ok = false;
      if (ok) ++brute;
    }
    EXPECT_EQ(abelian_subgroup_order(gens, mods), brute);
  }
}

TEST(AbelianSubgroup, OrderAndMembership) {
  const std::vector<u64> mods{4, 4};
  const std::vector<AbVec> gens{{2, 0}, {0, 2}};
  EXPECT_EQ(abelian_subgroup_order(gens, mods), 4u);
  EXPECT_TRUE(abelian_contains(gens, mods, {2, 2}));
  EXPECT_TRUE(abelian_contains(gens, mods, {0, 0}));
  EXPECT_FALSE(abelian_contains(gens, mods, {1, 0}));
}

TEST(AbelianSubgroup, EqualityCanonical) {
  const std::vector<u64> mods{6};
  EXPECT_TRUE(abelian_subgroup_equal({{2}}, {{4}}, mods));
  EXPECT_FALSE(abelian_subgroup_equal({{2}}, {{3}}, mods));
  EXPECT_TRUE(abelian_subgroup_equal({{2}, {4}}, {{2}}, mods));
}

TEST(AbelianSubgroup, EnumerateMatchesOrder) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<u64> mods;
    const int r = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < r; ++i) mods.push_back(2 + rng.below(7));
    std::vector<AbVec> gens;
    const int k = static_cast<int>(rng.below(3));
    for (int j = 0; j < k; ++j) {
      AbVec g(mods.size());
      for (std::size_t i = 0; i < mods.size(); ++i) g[i] = rng.below(mods[i]);
      gens.push_back(g);
    }
    const auto elems = abelian_enumerate(gens, mods);
    EXPECT_EQ(elems.size(), abelian_subgroup_order(gens, mods));
    for (const AbVec& e : elems)
      EXPECT_TRUE(abelian_contains(gens, mods, e));
  }
}

TEST(AbelianSubgroup, TrivialAndFull) {
  const std::vector<u64> mods{5, 3};
  EXPECT_EQ(abelian_subgroup_order({}, mods), 1u);
  EXPECT_EQ(abelian_subgroup_order({{1, 0}, {0, 1}}, mods), 15u);
}

TEST(CongruenceKernel, PerpOfPerpRecoversSubgroup) {
  // H^perp-perp == H for subgroups of a finite Abelian group.
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<u64> mods{4, 6, 5};
    std::vector<AbVec> gens;
    for (int j = 0; j < 2; ++j) {
      AbVec g(mods.size());
      for (std::size_t i = 0; i < mods.size(); ++i) g[i] = rng.below(mods[i]);
      gens.push_back(g);
    }
    const auto perp = congruence_kernel(gens, mods);
    const auto perp_perp = congruence_kernel(perp, mods);
    EXPECT_TRUE(abelian_subgroup_equal(gens, perp_perp, mods));
  }
}

}  // namespace
}  // namespace nahsp::la
