// The checkpoint substrate of the sharded batch driver: JSONL
// durability semantics (torn-tail tolerance, append-only reload),
// the nahsp-checkpoint/v1 record codec, the fingerprint partition
// primitives, the shard manifest round-trip, and in-process resume
// through run_shard's stop_after hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nahsp/common/fingerprint.h"
#include "nahsp/common/jsonl.h"
#include "nahsp/hsp/checkpoint.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/shard.h"

namespace nahsp::hsp {
namespace {

// Fresh empty directory per test, under the gtest-provided temp root.
std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "nahsp_ckpt_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CheckpointRecord sample_success() {
  CheckpointRecord rec;
  rec.index = 7;
  rec.fingerprint = "dihedral|n=12|backend=auto";
  rec.success = true;
  rec.method = static_cast<std::uint64_t>(Method::kHiddenNormal);
  rec.verified = true;
  rec.generators = {3, 19, 4};
  rec.queries.group_ops = 1234;
  rec.queries.classical_queries = 56;
  rec.queries.quantum_queries = 78;
  rec.queries.sim_basis_evals = 90;
  rec.seconds = 0.125;
  return rec;
}

CheckpointRecord sample_failure() {
  CheckpointRecord rec;
  rec.index = 2;
  rec.fingerprint = "abelian|k=3|backend=qubit";
  rec.error = "precondition failed: (is_pow2(m)) somewhere";
  rec.error_kind = "invalid_argument";
  rec.seconds = 0.5;
  return rec;
}

// ------------------------------------------------------------- the codec

TEST(CheckpointCodec, SuccessRecordRoundTrips) {
  const CheckpointRecord rec = sample_success();
  const std::string line = checkpoint_line(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const CheckpointRecord back = parse_checkpoint_line(line);
  EXPECT_EQ(back.index, rec.index);
  EXPECT_EQ(back.fingerprint, rec.fingerprint);
  EXPECT_EQ(back.success, rec.success);
  EXPECT_EQ(back.method, rec.method);
  EXPECT_EQ(back.error, rec.error);
  EXPECT_EQ(back.error_kind, rec.error_kind);
  EXPECT_EQ(back.verified, rec.verified);
  EXPECT_EQ(back.generators, rec.generators);
  EXPECT_EQ(back.queries.group_ops, rec.queries.group_ops);
  EXPECT_EQ(back.queries.classical_queries, rec.queries.classical_queries);
  EXPECT_EQ(back.queries.quantum_queries, rec.queries.quantum_queries);
  EXPECT_EQ(back.queries.sim_basis_evals, rec.queries.sim_basis_evals);
  EXPECT_DOUBLE_EQ(back.seconds, rec.seconds);
}

TEST(CheckpointCodec, FailureRecordRoundTrips) {
  const CheckpointRecord rec = sample_failure();
  const CheckpointRecord back = parse_checkpoint_line(checkpoint_line(rec));
  EXPECT_FALSE(back.success);
  EXPECT_FALSE(back.verified);
  EXPECT_EQ(back.error, rec.error);
  EXPECT_EQ(back.error_kind, rec.error_kind);
  EXPECT_TRUE(back.generators.empty());
}

TEST(CheckpointCodec, BatchItemReconstruction) {
  const BatchItemReport ok = batch_item_from_record(sample_success());
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(ok.solution.method, Method::kHiddenNormal);
  EXPECT_EQ(ok.solution.generators, (std::vector<grp::Code>{3, 19, 4}));
  EXPECT_EQ(ok.queries.group_ops, 1234u);

  const BatchItemReport fail = batch_item_from_record(sample_failure());
  EXPECT_FALSE(fail.success);
  EXPECT_EQ(fail.error_kind, "invalid_argument");
  EXPECT_TRUE(fail.solution.generators.empty());
}

TEST(CheckpointCodec, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_checkpoint_line("not json"), std::invalid_argument);
  EXPECT_THROW(parse_checkpoint_line("[1,2]"), std::invalid_argument);
  EXPECT_THROW(parse_checkpoint_line(R"({"schema":"bogus/v9"})"),
               std::invalid_argument);
  // Drop one required field from a valid line: must be rejected, and
  // the diagnostic must name it.
  std::string line = checkpoint_line(sample_success());
  const auto pos = line.find("\"verified\"");
  ASSERT_NE(pos, std::string::npos);
  line.erase(pos, line.find("\"generators\"") - pos);
  try {
    parse_checkpoint_line(line);
    FAIL() << "missing field accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("verified"), std::string::npos);
  }
}

// ----------------------------------------------------- the JSONL substrate

TEST(Jsonl, AppendReloadAndMissingFile) {
  const std::string dir = temp_dir("jsonl");
  const std::string path = dir + "/a.jsonl";
  EXPECT_TRUE(read_jsonl(path).lines.empty());  // absent = no records
  {
    JsonlWriter w(path);
    w.append("{\"x\":1}");
    w.append("{\"x\":2}");
    EXPECT_THROW(w.append("evil\nline"), std::invalid_argument);
  }
  {
    JsonlWriter again(path);  // reopen appends; complete lines survive
    again.append("{\"x\":3}");
  }
  const JsonlFile file = read_jsonl(path);
  EXPECT_EQ(file.lines.size(), 3u);
  EXPECT_EQ(file.lines[2], "{\"x\":3}");
  EXPECT_FALSE(file.torn_tail);
}

TEST(Jsonl, TornTailIsReportedSeparately) {
  const std::string dir = temp_dir("torn");
  const std::string path = dir + "/t.jsonl";
  std::ofstream(path) << "{\"x\":1}\n{\"x\":2}\n{\"half";  // no newline
  const JsonlFile file = read_jsonl(path);
  EXPECT_EQ(file.lines.size(), 2u);
  EXPECT_TRUE(file.torn_tail);
  EXPECT_EQ(file.torn_text, "{\"half");
}

TEST(Jsonl, ReopenDiscardsTornTailBeforeAppending) {
  const std::string dir = temp_dir("torn_reopen");
  const std::string path = dir + "/t.jsonl";
  std::ofstream(path) << "{\"x\":1}\n{\"half";  // killed mid-append
  {
    // Opening for append must seal the file at the last complete line;
    // otherwise the next record would concatenate onto the torn bytes
    // and turn one skippable tail into an unparseable mid-file line.
    JsonlWriter w(path);
    w.append("{\"x\":2}");
  }
  const JsonlFile file = read_jsonl(path);
  ASSERT_EQ(file.lines.size(), 2u);
  EXPECT_EQ(file.lines[0], "{\"x\":1}");
  EXPECT_EQ(file.lines[1], "{\"x\":2}");
  EXPECT_FALSE(file.torn_tail);
}

TEST(Jsonl, ReopenOfAllTornFileStartsEmpty) {
  const std::string dir = temp_dir("torn_only");
  const std::string path = dir + "/t.jsonl";
  std::ofstream(path) << "{\"never-finished";  // no newline anywhere
  {
    JsonlWriter w(path);
    w.append("{\"x\":1}");
  }
  const JsonlFile file = read_jsonl(path);
  ASSERT_EQ(file.lines.size(), 1u);
  EXPECT_EQ(file.lines[0], "{\"x\":1}");
  EXPECT_FALSE(file.torn_tail);
}

TEST(CheckpointLoad, TornFinalLineSkippedWithWarning) {
  const std::string dir = temp_dir("load_torn");
  const std::string path = dir + "/s.jsonl";
  const std::string good = checkpoint_line(sample_success());
  std::ofstream(path) << good << "\n" << good.substr(0, good.size() / 2);
  std::ostringstream warnings;
  const ShardCheckpoint ckpt = load_checkpoint_file(path, &warnings);
  EXPECT_EQ(ckpt.records.size(), 1u);
  EXPECT_TRUE(ckpt.skipped_torn_tail);
  EXPECT_NE(warnings.str().find("torn final line"), std::string::npos);
}

TEST(CheckpointLoad, MalformedMidFileLineIsCorruptionNotTolerated) {
  const std::string dir = temp_dir("load_corrupt");
  const std::string path = dir + "/s.jsonl";
  std::ofstream(path) << "garbage\n"
                      << checkpoint_line(sample_success()) << "\n";
  try {
    load_checkpoint_file(path, nullptr);
    FAIL() << "corrupt line accepted";
  } catch (const std::invalid_argument& e) {
    // Diagnostic names the file and the 1-based line.
    EXPECT_NE(std::string(e.what()).find(path + ":1"), std::string::npos);
  }
}

// ---------------------------------------------------------- fingerprints

TEST(Fingerprint, BuilderRendersHeadAndKeyValuePairs) {
  Fingerprint fp("dihedral");
  fp.add("n", std::uint64_t{12});
  fp.add("backend", "auto");
  EXPECT_EQ(fp.str(), "dihedral|n=12|backend=auto");
}

TEST(Fingerprint, Fnv1a64IsFrozen) {
  // The partition hash is part of the checkpoint compatibility surface:
  // these values changing would reshuffle every existing checkpoint
  // directory. Pinned against the FNV-1a reference values.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ULL);
  const std::uint64_t h = fnv1a64("dihedral|n=12");
  EXPECT_EQ(fnv1a64("dihedral|n=12"), h);  // stable across calls
  EXPECT_NE(fnv1a64("dihedral|n=13"), h);
}

TEST(Fingerprint, ShardOfPartitionsAndRejectsZero) {
  EXPECT_THROW(shard_of("x", 0), std::invalid_argument);
  for (const char* name : {"a", "b", "c", "dihedral|n=12"}) {
    const std::size_t s = shard_of(name, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(shard_of(name, 4), s);
    EXPECT_EQ(shard_of(name, 1), 0u);
  }
}

TEST(Fingerprint, ScenarioFingerprintExcludesSeedIncludesBackend) {
  const std::string base = scenario_fingerprint(build_scenario("dihedral"));
  EXPECT_EQ(base, scenario_fingerprint(build_scenario("dihedral")));
  EXPECT_NE(base, scenario_fingerprint(build_scenario("dihedral n=16")));
  EXPECT_NE(base, scenario_fingerprint(
                      build_scenario("dihedral backend=sparse")));
  EXPECT_NE(base, scenario_fingerprint(build_scenario("symmetric")));
}

// ------------------------------------------------------------- manifests

TEST(ShardManifest, RoundTripsAndRejectsAbsence) {
  const std::string dir = temp_dir("manifest");
  ShardManifest m;
  m.num_shards = 4;
  m.base_seed = 0xfeedbeef;
  m.source = "examples/fleet.scn";
  m.spec_lines = {"dihedral n=12", "elem_abelian2"};
  write_shard_manifest(dir, m);
  const ShardManifest back = load_shard_manifest(dir);
  EXPECT_EQ(back.num_shards, m.num_shards);
  EXPECT_EQ(back.base_seed, m.base_seed);
  EXPECT_EQ(back.source, m.source);
  EXPECT_EQ(back.spec_lines, m.spec_lines);

  const std::string empty = temp_dir("manifest_none");
  EXPECT_THROW(load_shard_manifest(empty), std::invalid_argument);
}

// -------------------------------------------------- in-process resume

std::vector<BuiltScenario> small_fleet() {
  std::vector<BuiltScenario> fleet;
  fleet.push_back(build_scenario("dihedral n=8"));
  fleet.push_back(build_scenario("elem_abelian2"));
  fleet.push_back(build_scenario("quaternion"));
  fleet.push_back(build_scenario("gf2affine"));
  return fleet;
}

TEST(ShardResume, StopAfterCheckpointsPrefixThenResumeSkipsIt) {
  const std::vector<BuiltScenario> fleet = small_fleet();
  const std::string dir = temp_dir("resume");
  ShardRunOptions opts;
  opts.shard = 0;
  opts.num_shards = 1;  // the whole fleet in one shard
  opts.base_seed = 5;
  opts.checkpoint_dir = dir;

  opts.stop_after = 2;
  const ShardRunResult first = run_shard(fleet, opts);
  EXPECT_EQ(first.ran, 2u);
  EXPECT_EQ(first.reused, 0u);
  const std::string path = dir + "/" + shard_checkpoint_filename(0, 1);
  EXPECT_EQ(load_checkpoint_file(path, nullptr).records.size(), 2u);
  // Snapshot the first two durable lines: the resume run must append,
  // never rewrite.
  const std::vector<std::string> before = read_jsonl(path).lines;

  opts.stop_after = 0;
  const ShardRunResult second = run_shard(fleet, opts);
  EXPECT_EQ(second.ran, 2u);
  EXPECT_EQ(second.reused, 2u);
  const std::vector<std::string> after = read_jsonl(path).lines;
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after[0], before[0]);
  EXPECT_EQ(after[1], before[1]);

  // Fully checkpointed: a third run executes nothing.
  const ShardRunResult third = run_shard(fleet, opts);
  EXPECT_EQ(third.ran, 0u);
  EXPECT_EQ(third.reused, 4u);
  EXPECT_EQ(read_jsonl(path).lines.size(), 4u);

  // And the merged view is complete, fully solved, fully verified.
  const ShardPlan plan = plan_shards(fleet, 1);
  const MergedBatch merged = merge_checkpoints(fleet, plan, dir, nullptr);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.report.solved, fleet.size());
  EXPECT_EQ(merged.verified_count, fleet.size());
}

TEST(ShardResume, StaleFingerprintRecordsAreIgnoredWithWarning) {
  const std::vector<BuiltScenario> fleet = small_fleet();
  const std::string dir = temp_dir("stale");
  // Forge a record at index 0 whose fingerprint names a different
  // instance — as if the fleet file was edited after a partial run.
  CheckpointRecord rec = sample_success();
  rec.index = 0;
  rec.fingerprint = "not|the|same|instance";
  {
    JsonlWriter w(dir + "/" + shard_checkpoint_filename(0, 1));
    w.append(checkpoint_line(rec));
  }
  std::ostringstream warnings;
  const ShardPlan plan = plan_shards(fleet, 1);
  const MergedBatch merged = merge_checkpoints(fleet, plan, dir, &warnings);
  EXPECT_EQ(merged.missing.size(), fleet.size());  // nothing usable
  EXPECT_NE(warnings.str().find("stale"), std::string::npos);
}

}  // namespace
}  // namespace nahsp::hsp
