// Property tests for integer matrices, Hermite and Smith normal forms.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/linalg/hermite.h"
#include "nahsp/linalg/imat.h"
#include "nahsp/linalg/smith.h"

namespace nahsp::la {
namespace {

IMat random_matrix(Rng& rng, std::size_t rows, std::size_t cols, int span) {
  IMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m.at(r, c) = static_cast<i64>(rng.between(0, 2 * span)) - span;
  return m;
}

TEST(IMat, IdentityAndMul) {
  const IMat id = IMat::identity(3);
  IMat m = IMat::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(m.mul(id), m);
  EXPECT_EQ(id.mul(m), m);
}

TEST(IMat, TransposeInvolution) {
  Rng rng(1);
  const IMat m = random_matrix(rng, 4, 6, 10);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(IMat, UnimodularDetection) {
  EXPECT_TRUE(is_unimodular(IMat::identity(4)));
  IMat shear = IMat::identity(3);
  shear.at(0, 2) = 5;
  EXPECT_TRUE(is_unimodular(shear));
  IMat scaled = IMat::identity(2);
  scaled.at(1, 1) = 2;
  EXPECT_FALSE(is_unimodular(scaled));
  EXPECT_FALSE(is_unimodular(IMat(2, 3)));  // non-square
  EXPECT_FALSE(is_unimodular(IMat(2, 2)));  // singular (zero)
  EXPECT_TRUE(is_unimodular(IMat(0, 0)));   // empty
}

class HnfSweep : public ::testing::TestWithParam<int> {};

TEST_P(HnfSweep, InvariantsHoldOnRandomMatrices) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.below(6);
    const std::size_t cols = 1 + rng.below(6);
    const IMat a = random_matrix(rng, rows, cols, 12);
    const RowHnf h = row_hnf(a);
    // U*A == H and U unimodular.
    EXPECT_EQ(h.u.mul(a), h.h);
    EXPECT_TRUE(is_unimodular(h.u));
    // Echelon shape: pivots strictly to the right, rows below rank zero.
    std::size_t last_col = 0;
    bool first = true;
    for (std::size_t r = 0; r < h.rank; ++r) {
      std::size_t c = 0;
      while (c < cols && h.h.at(r, c) == 0) ++c;
      ASSERT_LT(c, cols);
      EXPECT_GT(h.h.at(r, c), 0);
      if (!first) {
        EXPECT_GT(c, last_col);
      }
      last_col = c;
      first = false;
      // Entries above a pivot are reduced into [0, pivot).
      for (std::size_t rr = 0; rr < r; ++rr) {
        EXPECT_GE(h.h.at(rr, c), 0);
        EXPECT_LT(h.h.at(rr, c), h.h.at(r, c));
      }
    }
    for (std::size_t r = h.rank; r < rows; ++r)
      EXPECT_TRUE(h.h.row_is_zero(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HnfSweep, ::testing::Range(1, 9));

TEST(Kernel, VectorsAnnihilate) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 1 + rng.below(5);
    const std::size_t cols = 1 + rng.below(5);
    const IMat a = random_matrix(rng, rows, cols, 9);
    const IMat k = kernel(a);
    for (std::size_t i = 0; i < k.rows(); ++i) {
      for (std::size_t r = 0; r < rows; ++r) {
        i128 dot = 0;
        for (std::size_t c = 0; c < cols; ++c)
          dot += a.at(r, c) * k.at(i, c);
        EXPECT_EQ(dot, 0);
      }
    }
  }
}

TEST(Kernel, DimensionMatchesRankNullity) {
  const IMat a = IMat::from_rows({{1, 2, 3}, {2, 4, 6}});  // rank 1
  EXPECT_EQ(kernel(a).rows(), 2u);
  const IMat b = IMat::from_rows({{1, 0}, {0, 1}});
  EXPECT_EQ(kernel(b).rows(), 0u);
}

TEST(LeftKernel, Annihilates) {
  const IMat a = IMat::from_rows({{1, 2}, {2, 4}, {0, 1}});
  const IMat k = left_kernel(a);
  ASSERT_EQ(k.rows(), 1u);
  for (std::size_t c = 0; c < 2; ++c) {
    i128 dot = 0;
    for (std::size_t r = 0; r < 3; ++r) dot += k.at(0, r) * a.at(r, c);
    EXPECT_EQ(dot, 0);
  }
}

class SnfSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnfSweep, InvariantsHoldOnRandomMatrices) {
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t rows = 1 + rng.below(5);
    const std::size_t cols = 1 + rng.below(5);
    const IMat a = random_matrix(rng, rows, cols, 10);
    const Snf s = smith_normal_form(a);
    // U*A*V == D.
    EXPECT_EQ(s.u.mul(a).mul(s.v), s.d);
    EXPECT_TRUE(is_unimodular(s.u));
    EXPECT_TRUE(is_unimodular(s.v));
    // D diagonal, nonnegative, divisibility chain.
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        if (r != c) {
          EXPECT_EQ(s.d.at(r, c), 0);
        }
    const std::size_t k = std::min(rows, cols);
    for (std::size_t i = 0; i < k; ++i) EXPECT_GE(s.d.at(i, i), 0);
    for (std::size_t i = 0; i + 1 < k; ++i) {
      if (s.d.at(i + 1, i + 1) != 0) {
        ASSERT_NE(s.d.at(i, i), 0);
        EXPECT_EQ(s.d.at(i + 1, i + 1) % s.d.at(i, i), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnfSweep, ::testing::Range(1, 9));

TEST(Snf, KnownInvariantFactors) {
  // Z^2 / <(2,0),(0,4)> ~= Z_2 x Z_4.
  const IMat a = IMat::from_rows({{2, 0}, {0, 4}});
  const auto inv = invariant_factors(a);
  ASSERT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv[0], 2);
  EXPECT_EQ(inv[1], 4);
}

TEST(Snf, OffDiagonalExample) {
  // <(2,4),(6,8)>: det = -8, invariant factors 2, 4.
  const IMat a = IMat::from_rows({{2, 4}, {6, 8}});
  const auto inv = invariant_factors(a);
  ASSERT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv[0], 2);
  EXPECT_EQ(inv[1], 4);
}

}  // namespace
}  // namespace nahsp::la
