// Tests for the classical baselines.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(BruteForce, RecoversSubgroups) {
  Rng rng(1);
  auto d = std::make_shared<grp::DihedralGroup>(10);
  for (const auto& hidden :
       std::vector<std::vector<Code>>{{d->make(2, false)},
                                      {d->make(0, true)},
                                      {d->make(5, false), d->make(0, true)},
                                      {}}) {
    const auto inst = bb::make_instance(d, hidden);
    const auto found = classical_bruteforce_hsp(*inst.bb, *inst.f);
    EXPECT_TRUE(
        verify_same_subgroup(*d, found, inst.planted_generators));
  }
}

TEST(BruteForce, UsesLinearlyManyQueries) {
  Rng rng(2);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);  // |G| = 27
  const auto inst = bb::make_instance(h, {h->central_generator()});
  inst.counter->reset();
  (void)classical_bruteforce_hsp(*inst.bb, *inst.f);
  EXPECT_GE(inst.counter->classical_queries, 27u);
}

TEST(EttingerHoyer, RecoversHiddenReflection) {
  Rng rng(3);
  for (const u64 n : {8ULL, 15ULL, 32ULL, 51ULL}) {
    auto d = std::make_shared<grp::DihedralGroup>(n);
    for (int trial = 0; trial < 3; ++trial) {
      const u64 slope = rng.below(n);
      const auto inst = bb::make_instance(d, {d->make(slope, true)});
      const auto res = dihedral_ettinger_hoyer(*d, *inst.f, rng);
      ASSERT_EQ(res.generators.size(), 1u);
      EXPECT_TRUE(verify_same_subgroup(*d, res.generators,
                                       inst.planted_generators))
          << "n=" << n << " slope=" << slope;
    }
  }
}

TEST(EttingerHoyer, QuerySampleShapeMatchesPaper) {
  // O(log n) samples, Theta(n) candidates scanned.
  Rng rng(4);
  auto d = std::make_shared<grp::DihedralGroup>(64);
  const auto inst = bb::make_instance(d, {d->make(17, true)});
  const auto res = dihedral_ettinger_hoyer(*d, *inst.f, rng);
  EXPECT_LE(res.quantum_samples, 8 * 6 + 16);
  EXPECT_EQ(res.candidates_scanned, 64u);
}

TEST(EttingerHoyer, RejectsRotationOnlySubgroup) {
  Rng rng(5);
  auto d = std::make_shared<grp::DihedralGroup>(8);
  const auto inst = bb::make_instance(d, {d->make(4, false)});
  EXPECT_THROW(dihedral_ettinger_hoyer(*d, *inst.f, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::hsp
