// End-to-end tests for Theorem 8: hidden normal subgroups in solvable
// and permutation groups.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(NormalHsp, HiddenCentreOfHeisenberg) {
  Rng rng(1);
  for (const u64 p : {3ULL, 5ULL, 7ULL}) {
    auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
    const auto inst = bb::make_instance(h, {h->central_generator()});
    NormalHspOptions opts;
    opts.order_bound = p;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(res.abelian_factor);
    EXPECT_TRUE(verify_same_subgroup(*h, res.generators,
                                     inst.planted_generators))
        << "p=" << p;
  }
}

TEST(NormalHsp, RotationSubgroupsOfDihedral) {
  Rng rng(2);
  auto d = std::make_shared<grp::DihedralGroup>(12);
  // Hidden <x^k> for various k: all normal, factor D_12/<x^k> non-Abelian
  // for k >= 3 (handled by the Schreier route) and Abelian for k <= 2.
  for (const u64 k : {1ULL, 2ULL, 3ULL, 4ULL, 6ULL}) {
    const auto inst = bb::make_instance(d, {d->make(k, false)});
    NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(verify_same_subgroup(*d, res.generators,
                                     inst.planted_generators))
        << "k=" << k;
    EXPECT_EQ(res.abelian_factor, k <= 2) << "k=" << k;
  }
}

TEST(NormalHsp, TrivialHiddenSubgroup) {
  Rng rng(3);
  auto d = std::make_shared<grp::DihedralGroup>(5);
  const auto inst = bb::make_instance(d, {});
  NormalHspOptions opts;
  opts.order_bound = 10;
  const auto res = find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  EXPECT_TRUE(res.generators.empty());
}

TEST(NormalHsp, WholeGroupHidden) {
  Rng rng(4);
  auto d = std::make_shared<grp::DihedralGroup>(6);
  const auto inst = bb::make_instance(d, d->generators());
  NormalHspOptions opts;
  opts.order_bound = 12;
  const auto res = find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  EXPECT_TRUE(
      verify_same_subgroup(*d, res.generators, inst.planted_generators));
}

TEST(NormalHsp, PermutationGroupsV4AndA4) {
  Rng rng(5);
  auto s4 = grp::symmetric_group(4);
  {
    const Code v1 = s4->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}}));
    const Code v2 = s4->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}));
    const auto inst = bb::make_perm_instance(s4, {v1, v2});
    NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_FALSE(res.abelian_factor);  // S4/V4 ~= S3
    EXPECT_TRUE(
        verify_same_subgroup(*s4, res.generators, inst.planted_generators));
  }
  {
    std::vector<Code> a4;
    for (int i = 2; i < 4; ++i)
      a4.push_back(s4->encode(grp::perm_from_cycles(4, {{0, 1, i}})));
    const auto inst = bb::make_perm_instance(s4, a4);
    NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(res.abelian_factor);  // S4/A4 ~= Z2
    EXPECT_TRUE(
        verify_same_subgroup(*s4, res.generators, inst.planted_generators));
  }
}

TEST(NormalHsp, HiddenAnInSn) {
  Rng rng(6);
  for (const int n : {4, 5}) {
    auto sn = grp::symmetric_group(n);
    std::vector<Code> an;
    for (int i = 2; i < n; ++i)
      an.push_back(sn->encode(grp::perm_from_cycles(n, {{0, 1, i}})));
    const auto inst = bb::make_perm_instance(sn, an);
    NormalHspOptions opts;
    opts.order_bound = 2 * n;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(
        verify_same_subgroup(*sn, res.generators, inst.planted_generators))
        << "n=" << n;
  }
}

TEST(NormalHsp, WreathProductNormalN) {
  Rng rng(7);
  auto w = grp::wreath_z2k_z2(2);
  const auto inst = bb::make_instance(w, w->normal_subgroup_generators());
  NormalHspOptions opts;
  opts.order_bound = 4;
  const auto res = find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  EXPECT_TRUE(res.abelian_factor);  // G/N ~= Z_2
  EXPECT_TRUE(
      verify_same_subgroup(*w, res.generators, inst.planted_generators));
}

TEST(NormalHsp, DiagonalSubgroupOfWreath) {
  Rng rng(8);
  auto w = grp::wreath_z2k_z2(2);
  // Diagonal {(u,u)}: normal (swap-invariant, inside Abelian N).
  std::vector<Code> diag{w->make(0b0101, 0), w->make(0b1010, 0)};
  const auto inst = bb::make_instance(w, diag);
  NormalHspOptions opts;
  opts.order_bound = 8;
  const auto res = find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  EXPECT_TRUE(
      verify_same_subgroup(*w, res.generators, inst.planted_generators));
}

TEST(NormalHsp, QueryCountsAreLogarithmicNotLinear) {
  // The quantum algorithm must not classically probe all of G: classical
  // f-queries stay far below |G| (here |G| = p^3 = 343).
  Rng rng(9);
  auto h = std::make_shared<grp::HeisenbergGroup>(7, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  inst.counter->reset();
  NormalHspOptions opts;
  opts.order_bound = 7;
  (void)find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
  EXPECT_LT(inst.counter->classical_queries, 343u / 2);
  EXPECT_GT(inst.counter->quantum_queries, 0u);
}

}  // namespace
}  // namespace nahsp::hsp
