// Non-unique encodings: the paper's Theorems 7/8 explicitly allow
// black-box groups where an element has many codes (factor groups
// G/N0). These tests run the hidden-normal-subgroup pipeline on
// QuotientView groups, where is_id is an oracle rather than code
// equality.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/quotient.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

// Builds an instance over the quotient view Q = D/N0 where the hidden
// subgroup of Q is H/N0; the hiding function labels cosets of the
// pullback H in D (constant exactly on the cosets of H/N0 in Q).
struct QuotientInstance {
  std::shared_ptr<const grp::QuotientView> view;
  std::shared_ptr<bb::QueryCounter> counter;
  std::shared_ptr<bb::BlackBoxGroup> bbox;
  std::shared_ptr<bb::EnumerationHider> f;
};

QuotientInstance make_quotient_instance(
    std::shared_ptr<const grp::Group> ambient,
    std::function<bool(Code)> in_n0, std::vector<Code> pullback_gens,
    std::string name) {
  QuotientInstance qi;
  qi.view = std::make_shared<grp::QuotientView>(ambient, std::move(in_n0),
                                                std::move(name));
  qi.counter = std::make_shared<bb::QueryCounter>();
  qi.bbox = std::make_shared<bb::BlackBoxGroup>(qi.view, qi.counter);
  // The hider enumerates the pullback subgroup of the *ambient* group:
  // labels are constant exactly on pullback cosets = cosets of H/N0.
  qi.f = std::make_shared<bb::EnumerationHider>(ambient, pullback_gens,
                                                qi.counter);
  return qi;
}

TEST(NonUnique, HiddenSubgroupOfDihedralQuotient) {
  Rng rng(1);
  // Ambient D_12, N0 = <x^6> (order 2, central). Q = D_12/N0 ~= D_6.
  auto d = std::make_shared<grp::DihedralGroup>(12);
  auto in_n0 = [d](Code c) {
    return !d->reflection_of(c) && d->rotation_of(c) % 6 == 0;
  };
  // Hidden normal subgroup of Q: <x^2 N0> (rotations of order 3 in Q);
  // pullback in D_12: <x^2>.
  const std::vector<Code> pullback{d->make(2, false)};
  auto qi = make_quotient_instance(d, in_n0, pullback, "D12/<x^6>");
  EXPECT_EQ(qi.view->order(), 12u);

  NormalHspOptions opts;
  opts.order_bound = 12;
  const auto res =
      find_hidden_normal_subgroup(*qi.bbox, *qi.f, rng, opts);
  // The found generators (codes in the ambient) together with N0 must
  // generate the pullback subgroup.
  std::vector<Code> with_n0 = res.generators;
  with_n0.push_back(d->make(6, false));
  EXPECT_TRUE(grp::same_subgroup(*d, with_n0, pullback));
}

TEST(NonUnique, HiddenCentreModuloCentralSubgroup) {
  Rng rng(2);
  // Ambient Heis(3,1) with N0 = trivial-on-view twist: quotient by the
  // centre itself; hidden subgroup of Q = G/Z is a non-trivial subgroup
  // <(1,0) Z>. Pullback: <(1,0,0), centre>.
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  auto in_n0 = [h](Code c) {
    return h->a_digit(c, 0) == 0 && h->b_digit(c, 0) == 0;
  };
  const std::vector<Code> pullback{h->make({1}, {0}, 0),
                                   h->central_generator()};
  auto qi = make_quotient_instance(h, in_n0, pullback, "Heis/Z");
  EXPECT_EQ(qi.view->order(), 9u);

  NormalHspOptions opts;
  opts.order_bound = 9;
  const auto res =
      find_hidden_normal_subgroup(*qi.bbox, *qi.f, rng, opts);
  std::vector<Code> with_n0 = res.generators;
  with_n0.push_back(h->central_generator());
  EXPECT_TRUE(grp::same_subgroup(*h, with_n0, pullback));
}

TEST(NonUnique, OrderFindingSeesTheFactorOrder) {
  Rng rng(3);
  // In D_12/<x^6>, the rotation x has order 6, not 12 — order finding
  // through the non-unique encoding must report the factor order.
  auto d = std::make_shared<grp::DihedralGroup>(12);
  auto in_n0 = [d](Code c) {
    return !d->reflection_of(c) && d->rotation_of(c) % 6 == 0;
  };
  auto view = std::make_shared<grp::QuotientView>(d, in_n0);
  EXPECT_EQ(view->element_order_bruteforce(d->make(1, false)), 6u);
  EXPECT_EQ(view->element_order_bruteforce(d->make(2, false)), 3u);
}

TEST(NonUnique, IdentityTestOracleSemantics) {
  auto d = std::make_shared<grp::DihedralGroup>(12);
  auto in_n0 = [d](Code c) {
    return !d->reflection_of(c) && d->rotation_of(c) % 6 == 0;
  };
  auto view = std::make_shared<grp::QuotientView>(d, in_n0);
  // Distinct codes, equal elements of the factor group.
  const Code a = d->make(1, false);
  const Code b = d->make(7, false);
  EXPECT_NE(a, b);
  EXPECT_TRUE(view->is_id(view->mul(a, view->inv(b))));
}

}  // namespace
}  // namespace nahsp::hsp
