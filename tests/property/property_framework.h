// Property-based checks shared by the tests/property/ suite: group
// axioms, subgroup invariants, and hiding-function well-definedness,
// phrased against the abstract Group interface so they run unchanged
// over every implementation (including generator-drawn groups).
//
// Equality discipline: some Group implementations (QuotientView) have
// non-unique element encodings, so properties never compare codes with
// ==; they ask the group itself via is_id(inv(a) * b).
#pragma once

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/group.h"

namespace nahsp::property {

/// Group-level equality: a == b iff a^-1 b is the identity.
inline bool group_eq(const grp::Group& g, grp::Code a, grp::Code b) {
  return g.is_id(g.mul(g.inv(a), b));
}

/// Draws a pool of sample elements: the generators, their inverses, the
/// identity, and `extra` random words — enough variety to exercise the
/// axioms without enumerating the group.
inline std::vector<grp::Code> sample_elements(const grp::Group& g, Rng& rng,
                                              int extra) {
  std::vector<grp::Code> pool{g.id()};
  for (grp::Code c : g.generators()) {
    pool.push_back(c);
    pool.push_back(g.inv(c));
  }
  for (int i = 0; i < extra; ++i)
    pool.push_back(grp::random_word_element(g, g.generators(), rng));
  return pool;
}

/// Closure, associativity, identity, inverses, pow consistency, and the
/// commutator identity, over random triples from the sample pool.
inline void check_group_axioms(const grp::Group& g, Rng& rng,
                               int trials = 48) {
  const auto pool = sample_elements(g, rng, 12);
  ASSERT_FALSE(pool.empty());
  const grp::Code e = g.id();
  ASSERT_TRUE(g.is_id(e)) << g.name();
  for (int t = 0; t < trials; ++t) {
    const grp::Code a = pool[rng.below(pool.size())];
    const grp::Code b = pool[rng.below(pool.size())];
    const grp::Code c = pool[rng.below(pool.size())];
    // Closure.
    ASSERT_TRUE(g.is_element(g.mul(a, b))) << g.name();
    ASSERT_TRUE(g.is_element(g.inv(a))) << g.name();
    // Associativity: (ab)c = a(bc).
    ASSERT_TRUE(group_eq(g, g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c))))
        << g.name();
    // Two-sided identity.
    ASSERT_TRUE(group_eq(g, g.mul(a, e), a)) << g.name();
    ASSERT_TRUE(group_eq(g, g.mul(e, a), a)) << g.name();
    // Two-sided inverse, and involution of inversion.
    ASSERT_TRUE(g.is_id(g.mul(a, g.inv(a)))) << g.name();
    ASSERT_TRUE(g.is_id(g.mul(g.inv(a), a))) << g.name();
    ASSERT_TRUE(group_eq(g, g.inv(g.inv(a)), a)) << g.name();
    // pow agrees with repeated multiplication.
    ASSERT_TRUE(group_eq(g, g.pow(a, 3), g.mul(a, g.mul(a, a)))) << g.name();
    ASSERT_TRUE(g.is_id(g.pow(a, 0))) << g.name();
    // [a, b] = a b a^-1 b^-1 (the repo's convention), and it vanishes
    // exactly when a and b commute.
    ASSERT_TRUE(group_eq(g, g.commutator(a, b),
                         g.mul(g.mul(a, b), g.mul(g.inv(a), g.inv(b)))))
        << g.name();
    ASSERT_EQ(g.is_id(g.commutator(a, b)),
              group_eq(g, g.mul(a, b), g.mul(b, a)))
        << g.name();
  }
}

/// Subgroup invariants of the planted generators: the generated set is
/// closed under products and inverses, contains the identity, and obeys
/// Lagrange (|H| divides |G|). Enumeration-bounded; callers gate on
/// group order.
inline void check_subgroup_invariants(const grp::Group& g,
                                      const std::vector<grp::Code>& gens,
                                      std::size_t cap = 1u << 16) {
  const std::vector<grp::Code> elems = grp::enumerate_subgroup(g, gens, cap);
  ASSERT_FALSE(elems.empty()) << g.name();
  std::unordered_set<grp::Code> in(elems.begin(), elems.end());
  EXPECT_TRUE(in.count(g.id()) == 1) << g.name();
  const std::uint64_t order = g.order();
  EXPECT_EQ(order % elems.size(), 0u)
      << g.name() << ": |H| = " << elems.size() << " must divide |G|";
  for (grp::Code a : elems) {
    EXPECT_TRUE(in.count(g.inv(a)) == 1) << g.name();
    for (grp::Code b : elems)
      EXPECT_TRUE(in.count(g.mul(a, b)) == 1) << g.name();
  }
}

}  // namespace nahsp::property
