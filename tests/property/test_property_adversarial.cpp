// Property suite, part 3: the adversarial near-miss scenarios. Broken
// hiding promises must surface as typed `oracle_error` failures — never
// as wrong answers — on every sampler backend and at thread widths 1
// and 4; the degenerate-but-honest endpoints (|H| = 1, |H| = |G|) must
// keep solving everywhere.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nahsp/groups/algorithms.h"
#include "nahsp/hsp/generator.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/solve.h"
#include "property_framework.h"
#include "test_seeds.h"

namespace nahsp::hsp {
namespace {

constexpr const char* kBackends[] = {"qubit", "mixed-radix", "sparse"};
constexpr int kWidths[] = {1, 4};

BatchReport run_specs(const std::vector<std::string>& specs, int threads) {
  std::vector<bb::HspInstance> instances;
  std::vector<AutoOptions> options;
  for (const std::string& spec : specs) {
    BuiltScenario built = build_scenario(spec);
    instances.push_back(std::move(built.instance));
    options.push_back(std::move(built.options));
  }
  BatchOptions opts;
  opts.per_instance = std::move(options);
  opts.base_seed = test_seeds::kGenAdversarial;
  opts.threads = threads;
  return solve_hsp_batch(instances, opts);
}

// Mode 3 (almost-hidden): a single lying label on the generator x makes
// the Theorem 8 Schreier walk derive a coset element whose honest label
// contradicts the lie, so the coset-constancy oracle check fires — on
// every backend (the walk is classical) and at every width.
TEST(PropertyAdversarial, AlmostHiddenRaisesOracleErrorOnAllBackends) {
  for (const char* backend : kBackends) {
    for (int width : kWidths) {
      SCOPED_TRACE(std::string(backend) + " width=" + std::to_string(width));
      std::vector<std::string> specs;
      for (int s = 1; s <= 4; ++s) {
        specs.push_back("adversarial mode=3 n=8 gen_seed=" +
                        std::to_string(s) + " backend=" + backend);
        specs.push_back("adversarial mode=3 n=12 corrupt=4 gen_seed=" +
                        std::to_string(s) + " backend=" + backend);
      }
      const BatchReport r = run_specs(specs, width);
      for (std::size_t i = 0; i < r.items.size(); ++i) {
        SCOPED_TRACE(specs[i]);
        ASSERT_FALSE(r.items[i].success);
        EXPECT_EQ(r.items[i].error_kind, "oracle_error")
            << r.items[i].error;
      }
    }
  }
}

// Mode 2 (non-hiding): pseudo-random labels hide no subgroup at all.
// The Schreier walk's pigeonhole collisions trip the same oracle check.
TEST(PropertyAdversarial, NonHidingRaisesOracleErrorOnAllBackends) {
  for (const char* backend : kBackends) {
    for (int width : kWidths) {
      SCOPED_TRACE(std::string(backend) + " width=" + std::to_string(width));
      std::vector<std::string> specs;
      for (int s = 1; s <= 6; ++s)
        specs.push_back("adversarial mode=2 n=8 gen_seed=" +
                        std::to_string(s) + " backend=" + backend);
      const BatchReport r = run_specs(specs, width);
      for (std::size_t i = 0; i < r.items.size(); ++i) {
        SCOPED_TRACE(specs[i]);
        ASSERT_FALSE(r.items[i].success);
        EXPECT_EQ(r.items[i].error_kind, "oracle_error")
            << r.items[i].error;
      }
    }
  }
}

// The Z_n variant drives corrupted labels through the Fourier-sampling
// pipeline: the sparse backend's structural hiding checks reject the
// label classes at sampler build, with a diagnostic naming the broken
// promise.
TEST(PropertyAdversarial, CyclicVariantTripsSparseStructuralChecks) {
  for (int mode : {2, 3}) {
    for (int width : kWidths) {
      SCOPED_TRACE("mode=" + std::to_string(mode) +
                   " width=" + std::to_string(width));
      std::vector<std::string> specs;
      for (int s = 1; s <= 4; ++s)
        specs.push_back("adversarial mode=" + std::to_string(mode) +
                        " n=8 abelian=1 gen_seed=" + std::to_string(s) +
                        " backend=sparse");
      const BatchReport r = run_specs(specs, width);
      for (std::size_t i = 0; i < r.items.size(); ++i) {
        SCOPED_TRACE(specs[i]);
        ASSERT_FALSE(r.items[i].success);
        EXPECT_EQ(r.items[i].error_kind, "oracle_error")
            << r.items[i].error;
        EXPECT_NE(r.items[i].error.find("label class"), std::string::npos)
            << r.items[i].error;
      }
    }
  }
}

// Degenerate honest endpoints: |H| = 1 and |H| = |G| keep solving and
// verifying on every backend at both widths (the point-mass and
// injective-label extremes of each sampler).
TEST(PropertyAdversarial, DegenerateEndpointsSolveOnAllBackends) {
  for (const char* backend : kBackends) {
    for (int width : kWidths) {
      SCOPED_TRACE(std::string(backend) + " width=" + std::to_string(width));
      std::vector<std::string> specs;
      std::vector<std::vector<grp::Code>> planted;
      for (int mode : {0, 1}) {
        for (int abelian : {0, 1}) {
          std::string spec = "adversarial mode=" + std::to_string(mode) +
                             " n=8 abelian=" + std::to_string(abelian) +
                             " backend=" + backend;
          planted.push_back(
              build_scenario(spec).instance.planted_generators);
          specs.push_back(std::move(spec));
        }
      }
      const BatchReport r = run_specs(specs, width);
      for (std::size_t i = 0; i < r.items.size(); ++i) {
        SCOPED_TRACE(specs[i]);
        ASSERT_TRUE(r.items[i].success) << r.items[i].error;
        BuiltScenario rebuilt = build_scenario(specs[i]);
        EXPECT_TRUE(verify_same_subgroup(*rebuilt.instance.group,
                                         r.items[i].solution.generators,
                                         planted[i]));
      }
    }
  }
}

// Chi-square sanity of the non-hiding label draw: past the pinned head
// (codes 0-2, which make the failure deterministic), the mode-2 labels
// must be close to uniform over their 8-value range — scattered level
// sets are exactly what makes the instance non-hiding, and a biased
// draw would quietly weaken the adversary.
TEST(PropertyAdversarial, NonHidingLabelsAreNearUniform) {
  for (u64 s = 1; s <= 3; ++s) {
    const auto adv =
        make_adversarial(AdversaryMode::kNonHiding, 256, 1, s, true);
    EXPECT_EQ(adv.instance.f->eval_uncounted(0), 0x100u);
    EXPECT_EQ(adv.instance.f->eval_uncounted(1), 0x101u);
    EXPECT_EQ(adv.instance.f->eval_uncounted(2), 0x101u);
    double counts[8] = {0};
    for (grp::Code c = 3; c < 256; ++c) {
      const u64 label = adv.instance.f->eval_uncounted(c);
      ASSERT_GE(label, 0x102u);
      ASSERT_LT(label, 0x10au);
      counts[label - 0x102] += 1.0;
    }
    const double expected = 253.0 / 8.0;
    double chi2 = 0;
    for (double c : counts)
      chi2 += (c - expected) * (c - expected) / expected;
    // 7 degrees of freedom: p = 0.001 cutoff is 24.32.
    EXPECT_LT(chi2, 24.32) << "gen_seed=" << s;
  }
}

// The never-wrong contract, swept over gen_seeds on the auto backend:
// a broken promise may fail (typed) or — when the corruption is
// invisible to the route taken — still solve, but a success must always
// be the planted truth. No third outcome exists.
TEST(PropertyAdversarial, BrokenPromisesNeverYieldWrongAnswers) {
  std::vector<std::string> specs;
  for (int mode : {2, 3}) {
    for (int abelian : {0, 1}) {
      for (int s = 1; s <= 6; ++s) {
        specs.push_back("adversarial mode=" + std::to_string(mode) +
                        " n=8 abelian=" + std::to_string(abelian) +
                        " corrupt=" + std::to_string(1 + s % 4) +
                        " gen_seed=" + std::to_string(s));
      }
    }
  }
  const BatchReport r = run_specs(specs, 4);
  for (std::size_t i = 0; i < r.items.size(); ++i) {
    SCOPED_TRACE(specs[i]);
    if (r.items[i].success) {
      BuiltScenario rebuilt = build_scenario(specs[i]);
      EXPECT_TRUE(verify_same_subgroup(
          *rebuilt.instance.group, r.items[i].solution.generators,
          rebuilt.instance.planted_generators))
          << "solver accepted a wrong subgroup";
    } else {
      EXPECT_TRUE(r.items[i].error_kind == "oracle_error" ||
                  r.items[i].error_kind == "retry_exhausted")
          << r.items[i].error_kind << ": " << r.items[i].error;
    }
  }
}

}  // namespace
}  // namespace nahsp::hsp
