// Dispatch-ladder coverage: one sweep that proves every branch of the
// solver dispatch (Theorem 8 / 11 / 13 routes) is exercised under every
// coset-sampler backend (auto, mixed-radix, qubit, sparse), through the
// scenario registry exactly as `nahsp solve` drives it. Each sweep
// entry must solve AND verify; the suite then asserts the 12-cell
// route × backend matrix is fully covered and prints the matrix with
// the missing cells marked when it is not — so a dispatch or backend
// regression reads as a coverage table, not a bare assertion failure.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/solve.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::hsp {
namespace {

// The sweep: every (route, backend) cell gets at least one scenario,
// several get two so backend coverage is not hostage to a single
// family. "auto" rows use the family's default backend selection.
// Known-impossible combinations are deliberately absent — e.g. the
// qubit backend rejects groups with non-power-of-two factor dimensions
// (abelian 3^k, heisenberg), which is covered as a rejection elsewhere
// (tests/test_sampler.cpp); coverage here is about the cells that must
// work.
struct SweepEntry {
  const char* spec;     ///< scenario spec, without the backend key
  const char* backend;  ///< "auto" | "mixed-radix" | "qubit" | "sparse"
};

const std::vector<SweepEntry>& sweep() {
  static const std::vector<SweepEntry> entries = {
      // Theorem 8 (hidden normal subgroup) row.
      {"dihedral n=8", "auto"},
      {"dihedral n=8", "mixed-radix"},
      {"dihedral n=8", "qubit"},
      {"dihedral n=8", "sparse"},
      {"symmetric", "auto"},
      {"tower", "sparse"},
      // Theorem 11 (small commutator subgroup) row.
      {"quaternion", "auto"},
      {"quaternion", "mixed-radix"},
      {"quaternion", "qubit"},
      {"quaternion", "sparse"},
      {"abelian", "mixed-radix"},
      {"extraspecial", "sparse"},
      // Theorem 13 (elementary Abelian normal 2-subgroup) row.
      {"elem_abelian2", "auto"},
      {"elem_abelian2", "mixed-radix"},
      {"elem_abelian2", "qubit"},
      {"elem_abelian2", "sparse"},
      {"gf2affine", "qubit"},
      {"wreath", "sparse"},
  };
  return entries;
}

const std::vector<const char*>& backend_columns() {
  static const std::vector<const char*> cols = {"auto", "mixed-radix",
                                                "qubit", "sparse"};
  return cols;
}

const std::vector<Method>& route_rows() {
  static const std::vector<Method> rows = {
      Method::kHiddenNormal, Method::kSmallCommutator,
      Method::kElemAbelian2};
  return rows;
}

const char* route_label(Method m) {
  switch (m) {
    case Method::kHiddenNormal:
      return "theorem-8 ";
    case Method::kSmallCommutator:
      return "theorem-11";
    case Method::kElemAbelian2:
      return "theorem-13";
  }
  return "?";
}

std::string render_coverage_table(
    const std::map<std::pair<Method, std::string>, std::vector<std::string>>&
        covered) {
  std::string out = "dispatch coverage (route x backend):\n";
  out += "             ";
  for (const char* col : backend_columns())
    out += std::string(" | ") + col;
  out += "\n";
  for (const Method row : route_rows()) {
    out += "  " + std::string(route_label(row));
    for (const char* col : backend_columns()) {
      const auto it = covered.find({row, col});
      out += " | ";
      out += (it == covered.end())
                 ? "MISSING"
                 : std::to_string(it->second.size()) + " spec(s)";
    }
    out += "\n";
  }
  return out;
}

TEST(DispatchCoverage, EveryRouteTimesEveryBackendIsExercised) {
  std::map<std::pair<Method, std::string>, std::vector<std::string>> covered;
  std::set<std::string> families_seen;

  for (const SweepEntry& entry : sweep()) {
    const std::string spec =
        std::string(entry.spec) +
        (std::string(entry.backend) == "auto"
             ? ""
             : std::string(" backend=") + entry.backend);
    SCOPED_TRACE(spec);
    BuiltScenario built = build_scenario(spec);
    families_seen.insert(built.family);

    Rng rng(3);
    HspSolution solution;
    ASSERT_NO_THROW(solution = solve_hsp(*built.instance.bb,
                                         *built.instance.f, rng,
                                         built.options))
        << "sweep entry failed to solve";
    EXPECT_TRUE(verify_same_subgroup(*built.instance.group,
                                     solution.generators,
                                     built.instance.planted_generators))
        << "sweep entry solved to the wrong subgroup";
    covered[{solution.method, entry.backend}].push_back(spec);

    // Non-auto entries must actually pin the backend they claim to
    // cover — a registry default silently overriding the spec key would
    // hollow out the whole matrix.
    if (std::string(entry.backend) != "auto") {
      EXPECT_EQ(qs::sampler_backend_name(built.options.sampler.backend),
                std::string(entry.backend));
    }
  }

  // The matrix must be full; on failure, print it whole.
  bool complete = true;
  for (const Method row : route_rows())
    for (const char* col : backend_columns())
      complete = complete && covered.count({row, col}) > 0;
  EXPECT_TRUE(complete) << render_coverage_table(covered);

  // Route diversity sanity: all three routes distinct in the sweep.
  std::set<Method> routes;
  for (const auto& [key, specs] : covered) routes.insert(key.first);
  EXPECT_EQ(routes.size(), route_rows().size())
      << render_coverage_table(covered);
}

// The dispatcher's route choice must be a function of the group's
// structure alone — never of the backend. Locks the ladder itself:
// same scenario, all four backends, one route.
TEST(DispatchCoverage, RouteChoiceIsBackendInvariant) {
  const std::vector<std::pair<const char*, Method>> expectations = {
      {"dihedral n=8", Method::kHiddenNormal},
      {"quaternion", Method::kSmallCommutator},
      {"elem_abelian2", Method::kElemAbelian2},
  };
  for (const auto& [family_spec, expected] : expectations) {
    for (const char* backend : backend_columns()) {
      const std::string spec =
          std::string(family_spec) +
          (std::string(backend) == "auto"
               ? ""
               : std::string(" backend=") + backend);
      SCOPED_TRACE(spec);
      BuiltScenario built = build_scenario(spec);
      Rng rng(3);
      const HspSolution solution = solve_hsp(
          *built.instance.bb, *built.instance.f, rng, built.options);
      EXPECT_EQ(solution.method, expected)
          << "route flipped under backend " << backend;
    }
  }
}

}  // namespace
}  // namespace nahsp::hsp
