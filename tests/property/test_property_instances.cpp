// Property suite, part 2: planted-truth recovery over generator-drawn
// instance populations. Each generated family is swept over
// stress_seed_count() gen_seeds (>= 50 by default; the CI stress job
// raises it via NAHSP_STRESS_SEEDS), solved through the batch driver at
// thread widths 1 and 4, and every instance must recover exactly the
// planted subgroup with bit-identical generators at both widths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nahsp/groups/algorithms.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/solve.h"
#include "property_framework.h"
#include "test_seeds.h"

namespace nahsp::hsp {
namespace {

// Builds one instance per gen_seed from a spec pattern ("<family> ...
// gen_seed=%" with % substituted), returning instances + per-instance
// options + the spec strings for diagnostics.
struct Population {
  std::vector<bb::HspInstance> instances;
  std::vector<AutoOptions> options;
  std::vector<std::string> specs;
  std::vector<std::vector<grp::Code>> planted;
};

Population build_population(const std::string& family,
                            const std::string& extra, std::size_t count) {
  Population pop;
  for (std::size_t s = 1; s <= count; ++s) {
    std::string spec =
        family + " gen_seed=" + std::to_string(s) +
        (extra.empty() ? "" : " " + extra);
    BuiltScenario built = build_scenario(spec);
    pop.planted.push_back(built.instance.planted_generators);
    pop.instances.push_back(std::move(built.instance));
    pop.options.push_back(std::move(built.options));
    pop.specs.push_back(std::move(spec));
  }
  return pop;
}

void solve_and_check(const std::string& family, const std::string& extra) {
  const std::size_t count = test_seeds::stress_seed_count();
  Population pop = build_population(family, extra, count);

  BatchOptions w1;
  w1.per_instance = pop.options;
  w1.base_seed = test_seeds::kGenPropertyBase;
  w1.threads = 1;
  BatchOptions w4 = w1;
  w4.threads = 4;

  const BatchReport r1 = solve_hsp_batch(pop.instances, w1);
  // The batch mutates per-instance counters only; rebuilding gives the
  // width-4 run an identical, untouched population.
  Population pop4 = build_population(family, extra, count);
  const BatchReport r4 = solve_hsp_batch(pop4.instances, w4);

  ASSERT_EQ(r1.items.size(), count);
  ASSERT_EQ(r4.items.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    SCOPED_TRACE(pop.specs[i]);
    ASSERT_TRUE(r1.items[i].success) << r1.items[i].error;
    ASSERT_TRUE(r4.items[i].success) << r4.items[i].error;
    // Planted-truth recovery at width 1...
    EXPECT_TRUE(verify_same_subgroup(*pop.instances[i].group,
                                     r1.items[i].solution.generators,
                                     pop.planted[i]));
    // ...and bit-identical output across widths (not merely the same
    // subgroup: the same generator codes in the same order).
    EXPECT_EQ(r1.items[i].solution.generators,
              r4.items[i].solution.generators);
    EXPECT_EQ(static_cast<int>(r1.items[i].solution.method),
              static_cast<int>(r4.items[i].solution.method));
  }
}

TEST(PropertyInstances, RandomAbelianPopulationSolvesAtBothWidths) {
  solve_and_check("random_abelian", "");
}

TEST(PropertyInstances, RandomNormalDihedralPopulationSolvesAtBothWidths) {
  solve_and_check("random_normal", "base=0");
}

TEST(PropertyInstances, RandomNormalZooPopulationSolvesAtBothWidths) {
  // Rotate through the quaternion / Heisenberg / symmetric bases so the
  // sweep covers the whole zoo even at the default seed count.
  const std::size_t count = test_seeds::stress_seed_count();
  for (u64 base = 1; base <= 3; ++base) {
    SCOPED_TRACE("base=" + std::to_string(base));
    Population pop = build_population(
        "random_normal", "base=" + std::to_string(base), (count + 2) / 3);
    BatchOptions opts;
    opts.per_instance = pop.options;
    opts.base_seed = test_seeds::kGenPropertyBase + base;
    opts.threads = 4;
    const BatchReport r = solve_hsp_batch(pop.instances, opts);
    for (std::size_t i = 0; i < r.items.size(); ++i) {
      SCOPED_TRACE(pop.specs[i]);
      ASSERT_TRUE(r.items[i].success) << r.items[i].error;
      EXPECT_TRUE(verify_same_subgroup(*pop.instances[i].group,
                                       r.items[i].solution.generators,
                                       pop.planted[i]));
    }
  }
}

TEST(PropertyInstances, TowerWreathPopulationSolvesAtBothWidths) {
  solve_and_check("tower", "shape=0");
}

TEST(PropertyInstances, TowerGf2PopulationSolvesAtBothWidths) {
  solve_and_check("tower", "shape=1 k=5");
}

}  // namespace
}  // namespace nahsp::hsp
