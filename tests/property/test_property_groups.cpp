// Property suite, part 1: group axioms and instance invariants over
// every Group implementation in the repo — the hand-built zoo, the
// generator-drawn groups, and every registered scenario family at its
// defaults (hand-built and generated alike).
#include <gtest/gtest.h>

#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/hsp/generator.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "property_framework.h"
#include "test_seeds.h"

namespace nahsp::hsp {
namespace {

using grp::Code;
using property::check_group_axioms;
using property::check_subgroup_invariants;

struct GroupCase {
  std::string label;
  std::shared_ptr<const grp::Group> group;
};

std::vector<GroupCase> group_zoo() {
  std::vector<GroupCase> zoo;
  zoo.push_back({"Z_12", std::make_shared<grp::CyclicGroup>(12)});
  zoo.push_back({"Z4xZ6", grp::product_of_cyclics({4, 6})});
  zoo.push_back({"Z2_4", grp::elementary_abelian(2, 4)});
  zoo.push_back({"D_10", std::make_shared<grp::DihedralGroup>(10)});
  zoo.push_back({"Q_16", std::make_shared<grp::QuaternionGroup>(16)});
  zoo.push_back({"Heis_3_1", std::make_shared<grp::HeisenbergGroup>(3, 1)});
  zoo.push_back({"Heis_2_2", std::make_shared<grp::HeisenbergGroup>(2, 2)});
  zoo.push_back({"Wreath_3", grp::wreath_z2k_z2(3)});
  zoo.push_back({"PaperMat_4",
                 grp::paper_matrix_group(grp::GF2Mat::companion(4, 0b0011))});
  zoo.push_back({"S_4", grp::symmetric_group(4)});
  zoo.push_back({"A_5", grp::alternating_group(5)});
  zoo.push_back({"W2_2", grp::iterated_wreath_z2(2)});
  zoo.push_back({"W2_3", grp::iterated_wreath_z2(3)});
  // Generator-drawn groups: the axioms must hold for arbitrary draws,
  // not just the hand-picked constructions above.
  for (u64 s = 1; s <= 4; ++s) {
    zoo.push_back({"gen_abelian_" + std::to_string(s),
                   draw_random_abelian(s, 96, 3, 1).group});
    zoo.push_back({"gen_normal_" + std::to_string(s),
                   draw_random_normal(s, s % 4, 2, 1).group});
    zoo.push_back({"gen_tower_" + std::to_string(s),
                   draw_tower(s, 3, s % 2, 4, 1).group});
  }
  return zoo;
}

class PropertyGroups : public ::testing::TestWithParam<GroupCase> {};

TEST_P(PropertyGroups, SatisfiesGroupAxioms) {
  const GroupCase& c = GetParam();
  Rng rng(test_seeds::kGenPropertyBase +
          std::hash<std::string>{}(c.label));
  check_group_axioms(*c.group, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PropertyGroups, ::testing::ValuesIn(group_zoo()),
    [](const ::testing::TestParamInfo<GroupCase>& info) {
      return info.param.label;
    });

// Every registered scenario family at its defaults: the underlying
// group satisfies the axioms, the planted subgroup is an actual
// subgroup obeying Lagrange, and (for enumerable groups) the hiding
// function is well defined — constant on exactly the planted cosets.
TEST(PropertyRegistry, EveryFamilySatisfiesInstanceInvariants) {
  for (const ScenarioFamily& fam : scenario_registry()) {
    SCOPED_TRACE(fam.name);
    BuiltScenario built = build_scenario(fam.name);
    const grp::Group& g = *built.instance.group;
    Rng rng(test_seeds::kGenPropertyBase +
            std::hash<std::string>{}(fam.name));
    check_group_axioms(g, rng);
    for (Code h : built.instance.planted_generators)
      ASSERT_TRUE(g.is_element(h));
    check_subgroup_invariants(g, built.instance.planted_generators);
    if (built.group_order <= 4096) {
      EXPECT_TRUE(validate_hiding_promise(g, *built.instance.f,
                                          built.instance.planted_generators))
          << fam.name;
    }
  }
}

// Planted subgroups of the Theorem 8 generator families must be normal
// (that is the promise the route runs on); the generator constructs them
// as normal closures, and this pins the invariant.
TEST(PropertyRegistry, GeneratedNormalFamiliesPlantNormalSubgroups) {
  for (u64 s = 1; s <= 8; ++s) {
    for (u64 base = 0; base <= 3; ++base) {
      const auto gs = draw_random_normal(s, base, 2, 2);
      SCOPED_TRACE("random_normal gen_seed=" + std::to_string(s) +
                   " base=" + std::to_string(base));
      EXPECT_TRUE(grp::is_normal_subgroup(*gs.group, gs.hidden));
    }
    const auto tw = draw_tower(s, 3, 0, 4, 1);
    SCOPED_TRACE("tower gen_seed=" + std::to_string(s));
    EXPECT_TRUE(grp::is_normal_subgroup(*tw.group, tw.hidden));
  }
}

// Construction determinism: the same gen_seed yields the same group and
// the same planted subgroup, draw after draw — the contract that makes
// a one-u64 failure report reproducible.
TEST(PropertyRegistry, GeneratorDrawsAreDeterministic) {
  for (u64 s = 1; s <= 8; ++s) {
    const auto a1 = draw_random_abelian(s, 96, 3, 2);
    const auto a2 = draw_random_abelian(s, 96, 3, 2);
    EXPECT_EQ(a1.group->order(), a2.group->order());
    EXPECT_EQ(a1.hidden, a2.hidden);
    const auto n1 = draw_random_normal(s, s % 4, 2, 1);
    const auto n2 = draw_random_normal(s, s % 4, 2, 1);
    EXPECT_EQ(n1.group->order(), n2.group->order());
    EXPECT_EQ(n1.hidden, n2.hidden);
    const auto t1 = draw_tower(s, 3, s % 2, 5, 1);
    const auto t2 = draw_tower(s, 3, s % 2, 5, 1);
    EXPECT_EQ(t1.group->order(), t2.group->order());
    EXPECT_EQ(t1.hidden, t2.hidden);
  }
}

}  // namespace
}  // namespace nahsp::hsp
