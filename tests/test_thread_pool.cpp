// Unit tests for the common parallel execution layer: chunk coverage,
// grain edge cases, exception propagation, the nested-region guard, and
// deterministic reductions across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nahsp/common/parallel.h"
#include "nahsp/common/rng.h"

namespace nahsp {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), grain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i)
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                      });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPool, RespectsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(40, 90, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 90) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(0, 10, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroGrainIsAContractViolation) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10, 0, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPool, SingleThreadPoolRunsOnTheCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(0, 100000, 64, [&](std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 10,
                        [&](std::size_t lo, std::size_t) {
                          if (lo >= 500) throw std::runtime_error("chunk boom");
                        }),
      std::runtime_error);
  // The pool must stay fully usable after a failed region.
  std::atomic<int> count{0};
  pool.parallel_for(0, 1000, 10, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ExceptionMessageIsPreserved) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 100, 1, [](std::size_t lo, std::size_t) {
      if (lo == 42) throw std::runtime_error("index 42 refused");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 42 refused");
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineOnTheWorker) {
  ThreadPool pool(4);
  std::atomic<int> outer_chunks{0};
  std::atomic<int> total{0};
  EXPECT_FALSE(ThreadPool::in_worker());
  pool.parallel_for(0, 16, 1, [&](std::size_t, std::size_t) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(ThreadPool::in_worker());
    const std::thread::id me = std::this_thread::get_id();
    // The inner region must not re-enter the pool: every inner chunk
    // runs on the same thread as its outer task, as one inline call.
    int inner_calls = 0;
    pool.parallel_for(0, 1000, 10, [&](std::size_t lo, std::size_t hi) {
      ++inner_calls;
      EXPECT_EQ(std::this_thread::get_id(), me);
      total.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(inner_calls, 1);
  });
  EXPECT_FALSE(ThreadPool::in_worker());
  EXPECT_EQ(outer_chunks.load(), 16);
  EXPECT_EQ(total.load(), 16000);
}

TEST(ThreadPool, NestedExceptionStillPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 8, 1,
                                 [&](std::size_t lo, std::size_t) {
                                   pool.parallel_for(
                                       0, 10, 1,
                                       [&](std::size_t ilo, std::size_t) {
                                         if (lo == 3 && ilo == 0)
                                           throw std::logic_error("inner");
                                       });
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossThreadCounts) {
  // The chunk layout depends only on (range, grain), so the summation
  // tree — and the floating-point result — is identical at any width.
  std::vector<double> values(100000);
  Rng rng(7);
  for (double& v : values) v = rng.uniform01() - 0.5;
  const auto chunk_sum = [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  ThreadPool p1(1), p2(2), p4(4), p8(8);
  const double r1 = p1.reduce(0, values.size(), 4096, chunk_sum);
  const double r2 = p2.reduce(0, values.size(), 4096, chunk_sum);
  const double r4 = p4.reduce(0, values.size(), 4096, chunk_sum);
  const double r8 = p8.reduce(0, values.size(), 4096, chunk_sum);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(r1, r8);
}

TEST(ThreadPool, ReduceSingleChunkEqualsPlainLoop) {
  ThreadPool pool(4);
  std::vector<double> values(1000);
  Rng rng(8);
  for (double& v : values) v = rng.uniform01();
  double plain = 0.0;
  for (const double v : values) plain += v;
  // grain >= range: one chunk, summed exactly like the plain serial loop.
  const double pooled =
      pool.reduce(0, values.size(), values.size(),
                  [&](std::size_t lo, std::size_t hi) {
                    double s = 0.0;
                    for (std::size_t i = lo; i < hi; ++i) s += values[i];
                    return s;
                  });
  EXPECT_EQ(plain, pooled);
}

TEST(ThreadPool, TaskScopeForcesInlineExecution) {
  EXPECT_FALSE(ThreadPool::in_worker());
  {
    ThreadPool::TaskScope scope;
    EXPECT_TRUE(ThreadPool::in_worker());
    // Any parallel region opened under the scope runs inline, as one
    // chunk on this thread — even on a multi-worker pool.
    ThreadPool pool(4);
    const std::thread::id me = std::this_thread::get_id();
    int calls = 0;
    pool.parallel_for(0, 100000, 16, [&](std::size_t lo, std::size_t hi) {
      ++calls;
      EXPECT_EQ(lo, 0u);
      EXPECT_EQ(hi, 100000u);
      EXPECT_EQ(std::this_thread::get_id(), me);
    });
    EXPECT_EQ(calls, 1);
  }
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, ManySmallRegionsBackToBack) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, 64, 4, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<long>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(GlobalPool, SetParallelismResizesAndValidates) {
  const int before = parallelism();
  set_parallelism(3);
  EXPECT_EQ(parallelism(), 3);
  set_parallelism(1);
  EXPECT_EQ(parallelism(), 1);
  EXPECT_THROW(set_parallelism(0), std::invalid_argument);
  EXPECT_THROW(set_parallelism(100000), std::invalid_argument);
  std::atomic<int> count{0};
  set_parallelism(4);
  parallel_for(0, 256, 16, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 256);
  set_parallelism(before);
}

TEST(SplitRng, StreamsAreDeterministicAndOrderIndependent) {
  SplitRng a(123);
  SplitRng b(123);
  // Access in different orders; stream i must be a function of (seed, i).
  Rng a2 = a.stream(2);
  Rng a0 = a.stream(0);
  Rng b0 = b.stream(0);
  Rng b2 = b.stream(2);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a0(), b0());
    EXPECT_EQ(a2(), b2());
  }
  // Distinct streams differ (2^128 steps apart).
  Rng c0 = SplitRng(123).stream(0);
  Rng c1 = SplitRng(123).stream(1);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (c0() != c1());
  EXPECT_TRUE(any_diff);
}

TEST(SplitRng, JumpMatchesManualAdvanceStructure) {
  // jump() is a pure function of state: two equal generators jump to
  // equal states regardless of prior stream access patterns.
  Rng x(42), y(42);
  x.jump();
  y.jump();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(x(), y());
  // Jumping differs from not jumping.
  Rng z(42);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (x() != z());
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace nahsp
