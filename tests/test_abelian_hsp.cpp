// End-to-end tests for the Abelian HSP solver (paper Theorem 3/Lemma 9):
// random planted subgroups across a sweep of Abelian groups, solved
// through both circuit backends.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/hsp/abelian.h"

namespace nahsp::hsp {
namespace {

qs::LabelFn coset_label_fn(const std::vector<u64>& mods,
                           const std::vector<AbVec>& h_gens) {
  const auto h_elems = la::abelian_enumerate(h_gens, mods);
  return [mods, h_elems](const AbVec& x) -> u64 {
    u64 best = ~u64{0};
    for (const AbVec& h : h_elems) {
      u64 idx = 0;
      for (std::size_t i = 0; i < mods.size(); ++i)
        idx = idx * mods[i] + (x[i] + h[i]) % mods[i];
      best = std::min(best, idx);
    }
    return best;
  };
}

std::vector<AbVec> random_subgroup(const std::vector<u64>& mods, Rng& rng,
                                   int num_gens) {
  std::vector<AbVec> gens;
  for (int i = 0; i < num_gens; ++i) {
    AbVec g(mods.size());
    for (std::size_t j = 0; j < mods.size(); ++j) g[j] = rng.below(mods[j]);
    gens.push_back(g);
  }
  return gens;
}

struct DomainCase {
  std::string label;
  std::vector<u64> mods;
};

std::vector<DomainCase> domains() {
  return {
      {"Z16", {16}},        {"Z12", {12}},
      {"Z2pow6", {2, 2, 2, 2, 2, 2}}, {"Z4xZ6", {4, 6}},
      {"Z3xZ9", {3, 9}},    {"Z5xZ7", {5, 7}},
      {"Z8xZ3xZ2", {8, 3, 2}},
  };
}

class AbelianHspSweep : public ::testing::TestWithParam<DomainCase> {};

TEST_P(AbelianHspSweep, RecoversRandomPlantedSubgroups) {
  const auto& c = GetParam();
  Rng rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    const auto planted = random_subgroup(c.mods, rng, 1 + trial % 3);
    qs::MixedRadixCosetSampler sampler(
        c.mods, coset_label_fn(c.mods, planted), nullptr);
    const AbelianHspResult res = solve_abelian_hsp(sampler, rng);
    EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, planted, c.mods))
        << c.label << " trial " << trial;
    EXPECT_EQ(res.subgroup_order,
              la::abelian_subgroup_order(planted, c.mods));
  }
}

TEST_P(AbelianHspSweep, AnalyticBackendAgrees) {
  const auto& c = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    const auto planted = random_subgroup(c.mods, rng, 1 + trial % 2);
    qs::AnalyticCosetSampler sampler(c.mods, planted, nullptr);
    const AbelianHspResult res = solve_abelian_hsp(sampler, rng);
    EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, planted, c.mods));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, AbelianHspSweep, ::testing::ValuesIn(domains()),
    [](const ::testing::TestParamInfo<DomainCase>& info) {
      return info.param.label;
    });

TEST(AbelianHsp, TrivialSubgroup) {
  const std::vector<u64> mods{6, 4};
  Rng rng(1);
  qs::MixedRadixCosetSampler sampler(mods, coset_label_fn(mods, {}),
                                     nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_EQ(res.subgroup_order, 1u);
  EXPECT_TRUE(res.generators.empty());
}

TEST(AbelianHsp, FullGroup) {
  const std::vector<u64> mods{6, 4};
  Rng rng(2);
  qs::MixedRadixCosetSampler sampler(
      mods, coset_label_fn(mods, {{1, 0}, {0, 1}}), nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_EQ(res.subgroup_order, 24u);
}

TEST(AbelianHsp, MembershipCheckCertifies) {
  const std::vector<u64> mods{8, 8};
  Rng rng(3);
  const std::vector<AbVec> planted{{2, 4}};
  const auto label = coset_label_fn(mods, planted);
  const u64 id_label = label(AbVec{0, 0});
  qs::MixedRadixCosetSampler sampler(mods, label, nullptr);
  AbelianHspOptions opts;
  opts.membership_check = [&](const AbVec& x) { return label(x) == id_label; };
  const auto res = solve_abelian_hsp(sampler, rng, opts);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, planted, mods));
}

TEST(AbelianHsp, QubitBackendSolves) {
  const std::vector<u64> mods{4, 4, 2};
  Rng rng(4);
  const std::vector<AbVec> planted{{2, 0, 1}, {0, 2, 0}};
  qs::QubitCosetSampler sampler(mods, coset_label_fn(mods, planted),
                                nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, planted, mods));
}

TEST(AbelianHsp, SimonProblem) {
  // Simon's problem = HSP over Z_2^n with |H| = 2.
  const std::vector<u64> mods(8, 2);
  Rng rng(5);
  const std::vector<AbVec> planted{{1, 0, 1, 1, 0, 0, 1, 0}};
  qs::MixedRadixCosetSampler sampler(mods, coset_label_fn(mods, planted),
                                     nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, planted, mods));
  EXPECT_EQ(res.subgroup_order, 2u);
}

TEST(AbelianHsp, SampleBudgetRespected) {
  const std::vector<u64> mods{4};
  Rng rng(6);
  qs::MixedRadixCosetSampler sampler(mods, coset_label_fn(mods, {}),
                                     nullptr);
  AbelianHspOptions opts;
  opts.max_samples = 3;
  opts.base_samples = 1;
  opts.stability_rounds = 1000;  // force budget exhaustion
  EXPECT_THROW(solve_abelian_hsp(sampler, rng, opts), std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::hsp
