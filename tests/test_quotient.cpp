// Tests for the non-unique-encoding quotient view G/N.
#include <gtest/gtest.h>

#include "nahsp/common/check.h"

#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/quotient.h"

namespace nahsp::grp {
namespace {

TEST(QuotientView, DihedralModRotations) {
  auto d = std::make_shared<DihedralGroup>(6);
  // N = <x> (all rotations); G/N ~= Z_2.
  auto in_n = [d](Code c) { return !d->reflection_of(c); };
  QuotientView q(d, in_n);
  EXPECT_EQ(q.order(), 2u);
  // Non-unique encoding: distinct codes, same factor element.
  EXPECT_TRUE(q.is_id(d->make(3, false)));
  EXPECT_FALSE(q.is_id(d->make(0, true)));
  // x*y and y encode the same coset.
  const Code a = q.mul(d->make(1, false), d->make(0, true));
  EXPECT_TRUE(q.is_id(q.mul(a, q.inv(d->make(0, true)))));
}

TEST(QuotientView, HeisenbergModCentre) {
  auto h = std::make_shared<HeisenbergGroup>(3, 1);
  auto in_n = [h](Code c) {
    // Centre: a = b = 0.
    return h->a_digit(c, 0) == 0 && h->b_digit(c, 0) == 0;
  };
  QuotientView q(h, in_n, "Heis/Z");
  EXPECT_EQ(q.order(), 9u);
  EXPECT_EQ(q.name(), "Heis/Z");
  // The factor is Abelian even though G is not: commutators land in N.
  const auto gens = q.generators();
  for (const Code x : gens)
    for (const Code y : gens)
      EXPECT_TRUE(q.is_id(q.commutator(x, y)));
}

TEST(QuotientView, RejectsOracleWithoutIdentity) {
  auto d = std::make_shared<DihedralGroup>(4);
  auto bad = [](Code) { return false; };
  EXPECT_THROW(QuotientView(d, bad), internal_error);
}

TEST(QuotientView, ElementOrderInFactor) {
  auto d = std::make_shared<DihedralGroup>(8);
  // N = <x^2>: G/N ~= Z_2 x Z_2.
  auto in_n = [d](Code c) {
    return !d->reflection_of(c) && d->rotation_of(c) % 2 == 0;
  };
  QuotientView q(d, in_n);
  EXPECT_EQ(q.order(), 4u);
  EXPECT_EQ(q.element_order_bruteforce(d->make(1, false)), 2u);
  EXPECT_EQ(q.element_order_bruteforce(d->make(0, true)), 2u);
}

}  // namespace
}  // namespace nahsp::grp
