// Tests for the QFT circuits: gate ladder vs dense reference DFT,
// inverse round-trips, approximate QFT behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nahsp/common/rng.h"
#include "nahsp/qsim/qft.h"

namespace nahsp::qs {
namespace {

double state_distance(const StateVector& a, const StateVector& b) {
  double d = 0.0;
  for (u64 i = 0; i < a.dim(); ++i) d += std::norm(a.amp(i) - b.amp(i));
  return std::sqrt(d);
}

TEST(Qft, MatchesDenseDftOnBasisStates) {
  for (int bits = 1; bits <= 5; ++bits) {
    for (u64 x = 0; x < (u64{1} << bits); ++x) {
      StateVector gate = StateVector::basis(bits, x);
      StateVector ref = StateVector::basis(bits, x);
      apply_qft(gate, 0, bits);
      apply_dft_reference(ref, 0, bits);
      EXPECT_LT(state_distance(gate, ref), 1e-9)
          << "bits=" << bits << " x=" << x;
    }
  }
}

TEST(Qft, MatchesDenseDftOnRandomStates) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    StateVector gate(6);
    // Random-ish state via random gates.
    for (int q = 0; q < 6; ++q) gate.apply_h(q);
    for (int q = 0; q < 6; ++q)
      gate.apply_phase(q, rng.uniform01() * 2 * std::numbers::pi);
    gate.apply_cnot(0, 3);
    StateVector ref = gate;
    apply_qft(gate, 1, 4);  // sub-register
    apply_dft_reference(ref, 1, 4);
    EXPECT_LT(state_distance(gate, ref), 1e-9);
  }
}

TEST(Qft, InverseRoundTrip) {
  Rng rng(13);
  StateVector sv(7);
  for (int q = 0; q < 7; ++q) sv.apply_h(q);
  for (int q = 0; q < 7; ++q)
    sv.apply_phase(q, rng.uniform01() * 2 * std::numbers::pi);
  const StateVector before = sv;
  apply_qft(sv, 0, 7);
  apply_inverse_qft(sv, 0, 7);
  EXPECT_LT(state_distance(sv, before), 1e-9);
}

TEST(Qft, InverseRoundTripOnSubRegister) {
  StateVector sv = StateVector::basis(6, 0b101101);
  apply_qft(sv, 2, 3);
  apply_inverse_qft(sv, 2, 3);
  EXPECT_NEAR(std::abs(sv.amp(0b101101)), 1.0, 1e-9);
}

TEST(Qft, QftOfZeroIsUniform) {
  StateVector sv(5);
  apply_qft(sv, 0, 5);
  for (u64 i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(sv.amp(i)), 1.0 / std::sqrt(32.0), 1e-9);
}

TEST(Qft, FrequencyPeak) {
  // QFT of a period-4 comb over Z_16 concentrates on multiples of 4.
  StateVector sv(4);
  for (u64 i = 0; i < 16; ++i) sv.set_amp(i, i % 4 == 0 ? 0.5 : 0.0);
  apply_qft(sv, 0, 4);
  for (u64 y = 0; y < 16; ++y) {
    const double p = std::norm(sv.amp(y));
    if (y % 4 == 0)
      EXPECT_NEAR(p, 0.25, 1e-9) << y;
    else
      EXPECT_NEAR(p, 0.0, 1e-9) << y;
  }
}

TEST(ApproxQft, CutoffConvergesToExact) {
  StateVector exact = StateVector::basis(8, 137);
  apply_qft(exact, 0, 8);
  double prev_dist = 1e9;
  for (int cutoff : {2, 4, 6, 7}) {
    StateVector approx = StateVector::basis(8, 137);
    apply_qft(approx, 0, 8, cutoff);
    const double d = state_distance(approx, exact);
    EXPECT_LE(d, prev_dist + 1e-12);
    prev_dist = d;
  }
  // Cutoff >= bits-1 is exact.
  StateVector full = StateVector::basis(8, 137);
  apply_qft(full, 0, 8, 7);
  EXPECT_LT(state_distance(full, exact), 1e-9);
}

TEST(ApproxQft, LogCutoffIsClose) {
  // The classic result: O(log n) cutoff gives distance o(1).
  StateVector exact = StateVector::basis(10, 731);
  apply_qft(exact, 0, 10);
  StateVector approx = StateVector::basis(10, 731);
  apply_qft(approx, 0, 10, 5);
  // Theory: distance O(n 2^{-cutoff}) ~ 10/32; observed ~0.13.
  EXPECT_LT(state_distance(approx, exact), 0.2);
}

TEST(ApproxQft, InverseWithCutoffRoundTripsApproximately) {
  StateVector sv = StateVector::basis(8, 99);
  apply_qft(sv, 0, 8, 4);
  apply_inverse_qft(sv, 0, 8, 4);
  EXPECT_GT(std::norm(sv.amp(99)), 0.98);
}

}  // namespace
}  // namespace nahsp::qs
