// End-to-end tests for Theorem 11 (small commutator subgroup) and
// Corollary 12 (extra-special p-groups).
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/small_commutator.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

void run_case(std::shared_ptr<const grp::Group> g,
              const std::vector<Code>& hidden, u64 order_bound, Rng& rng) {
  const auto inst = bb::make_instance(g, hidden);
  SmallCommutatorOptions opts;
  opts.order_bound = order_bound;
  const auto res = solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*g, res.generators,
                                   inst.planted_generators))
      << g->name();
}

TEST(SmallCommutator, ExtraspecialHiddenCentre) {
  Rng rng(1);
  for (const u64 p : {3ULL, 5ULL}) {
    auto h = std::make_shared<grp::HeisenbergGroup>(p, 1);
    run_case(h, {h->central_generator()}, p, rng);
  }
}

TEST(SmallCommutator, ExtraspecialNonNormalSubgroups) {
  Rng rng(2);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  // <(1,0,0)>: order 3, not normal.
  run_case(h, {h->make({1}, {0}, 0)}, 3, rng);
  // <(0,1,0)> likewise.
  run_case(h, {h->make({0}, {1}, 0)}, 3, rng);
  // <(1,1,0)>.
  run_case(h, {h->make({1}, {1}, 0)}, 3, rng);
}

TEST(SmallCommutator, ExtraspecialLargerSubgroups) {
  Rng rng(3);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  // <(1,0,0), centre>: order 9, normal.
  run_case(h, {h->make({1}, {0}, 0), h->central_generator()}, 9, rng);
  // Trivial and full.
  run_case(h, {}, 3, rng);
  run_case(h, h->generators(), 27, rng);
}

TEST(SmallCommutator, RandomSubgroupsSweep) {
  Rng rng(4);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Code> gens;
    const int k = 1 + static_cast<int>(rng.below(2));
    for (int i = 0; i < k; ++i)
      gens.push_back(grp::random_word_element(*h, h->generators(), rng));
    run_case(h, gens, 27, rng);
  }
}

TEST(SmallCommutator, DihedralSmallN) {
  // D_4: |G'| = 2; every subgroup is findable.
  Rng rng(5);
  auto d = std::make_shared<grp::DihedralGroup>(4);
  run_case(d, {d->make(0, true)}, 8, rng);              // <y>
  run_case(d, {d->make(1, true)}, 8, rng);              // <xy>
  run_case(d, {d->make(2, false)}, 8, rng);             // centre
  run_case(d, {d->make(1, false)}, 8, rng);             // rotations
  run_case(d, {d->make(2, false), d->make(0, true)}, 8, rng);
}

TEST(SmallCommutator, HigherRankExtraspecial) {
  // Heis(2, 2): order 2^5, |G'| = 2.
  Rng rng(6);
  auto h = std::make_shared<grp::HeisenbergGroup>(2, 2);
  run_case(h, {h->make({1, 0}, {0, 1}, 0)}, 4, rng);
  run_case(h, {h->make({1, 1}, {0, 0}, 1)}, 4, rng);
  run_case(h, {h->central_generator()}, 2, rng);
}

TEST(SmallCommutator, ReportsStructuralSizes) {
  Rng rng(7);
  auto h = std::make_shared<grp::HeisenbergGroup>(5, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  SmallCommutatorOptions opts;
  opts.order_bound = 5;
  const auto res = solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
  EXPECT_EQ(res.gprime_order, 5u);
  EXPECT_EQ(res.h_cap_gprime_order, 5u);  // centre hidden: H ∩ G' = G'
}

TEST(SmallCommutator, ClassicalQueriesScaleWithGPrimeNotG) {
  Rng rng(8);
  auto h = std::make_shared<grp::HeisenbergGroup>(5, 1);  // |G| = 125
  const auto inst = bb::make_instance(h, {h->make({1}, {0}, 0)});
  inst.counter->reset();
  SmallCommutatorOptions opts;
  opts.order_bound = 5;
  (void)solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
  // Classical f-queries should be O(|G'| * polylog) << |G| * |G'|.
  EXPECT_LT(inst.counter->classical_queries, 100u);
}

}  // namespace
}  // namespace nahsp::hsp
