// Unit tests for the common substrate: RNG, bit utilities, checks,
// alias-table sampler.
#include <gtest/gtest.h>

#include <set>

#include "nahsp/common/alias.h"
#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"
#include "nahsp/common/rng.h"
#include "nahsp/common/timer.h"

namespace nahsp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 7 degrees of freedom; 0.001 quantile ~ 24.3.
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(3);
  Rng child = a.split();
  bool differs = false;
  for (int i = 0; i < 16; ++i)
    if (a() != child()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Bits, BitsFor) {
  EXPECT_EQ(bits_for(0), 0);
  EXPECT_EQ(bits_for(1), 0);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
  EXPECT_EQ(bits_for(std::uint64_t{1} << 63), 63);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, ParityAndDot) {
  EXPECT_EQ(parity64(0), 0);
  EXPECT_EQ(parity64(1), 1);
  EXPECT_EQ(parity64(0b1011), 1);
  EXPECT_EQ(parity64(0b1001), 0);
  EXPECT_EQ(dot2(0b101, 0b110), 1);  // overlap = bit2 -> parity 1
  EXPECT_EQ(dot2(0b101, 0b101), 0);  // two overlaps -> parity 0
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(NAHSP_REQUIRE(false, "boom"), std::invalid_argument);
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(NAHSP_CHECK(false, "bug"), internal_error);
}

TEST(Check, OracleCheckThrowsOracleError) {
  EXPECT_THROW(NAHSP_ORACLE_CHECK(false, "promise"), oracle_error);
}

TEST(AliasTable, NormalisesWeights) {
  AliasTable t({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t.size(), 4u);
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sum += t.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(t.probability(3), 0.4, 1e-12);
}

TEST(AliasTable, MatchesWeightsStatistically) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(17);
  constexpr int kDraws = 100000;
  int counts[4] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];
  double chi2 = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double expected = kDraws * w[i] / 10.0;
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  // 3 degrees of freedom; 0.001 quantile ~ 16.3.
  EXPECT_LT(chi2, 16.3);
}

TEST(AliasTable, ZeroWeightNeverDrawn) {
  AliasTable t({0.5, 0.0, 0.5});
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTable, SingleCategory) {
  AliasTable t({5.0});
  Rng rng(29);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, DeterministicFromSeed) {
  AliasTable t({1.0, 1.0, 2.0});
  Rng a(31), b(31);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(t.sample(a), t.sample(b));
}

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(AliasTable({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(AliasTable, RejectsOverflowingTotal) {
  // Every weight finite, but the sum overflows to infinity: must be a
  // clean precondition failure, not NaN-poisoned columns.
  EXPECT_THROW(AliasTable({1e308, 1e308, 1e308}), std::invalid_argument);
}

TEST(AliasTable, ZeroPaddedSingleMassIsExact) {
  // One live column surrounded by zero padding: exact point mass, no
  // rounding residue on the dead columns.
  AliasTable t({0.0, 3.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t.probability(1), 1.0);
  EXPECT_DOUBLE_EQ(t.probability(0), 0.0);
  EXPECT_DOUBLE_EQ(t.probability(3), 0.0);
  Rng rng(37);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(t.sample(rng), 1u);
}

TEST(AliasTable, SingleCategoryIsExactAndKeepsTheDrawStream) {
  // n = 1 takes the exact early path, but sample() must still consume
  // the same two Rng values as every other draw — downstream replay
  // sequences depend on the draw-stream width, not the table size.
  AliasTable t({0.25});
  EXPECT_DOUBLE_EQ(t.probability(0), 1.0);
  Rng a(41), b(41);
  EXPECT_EQ(t.sample(a), 0u);
  (void)b.below(1);      // the two draws sample() makes
  (void)b.uniform01();
  EXPECT_EQ(a(), b());   // streams still aligned afterwards
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, FormatDuration) {
  EXPECT_NE(format_duration(1e-8).find("ns"), std::string::npos);
  EXPECT_NE(format_duration(1e-5).find("us"), std::string::npos);
  EXPECT_NE(format_duration(1e-2).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(2.0).find("s"), std::string::npos);
}

}  // namespace
}  // namespace nahsp
