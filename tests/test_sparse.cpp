// Sparse coset-support engine: container semantics (SparseAmpMap /
// SparseState), the SparseCosetSampler build (support, degenerate
// hidden subgroups, structural hiding verification, budgets, query
// accounting), and the make_coset_sampler factory that routes the
// hsp-layer solvers onto a backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <set>

#include "nahsp/common/check.h"
#include "nahsp/common/rng.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/sparse.h"
#include "test_seeds.h"

namespace nahsp::qs {
namespace {

using la::AbVec;

// ---- SparseAmpMap ----------------------------------------------------

TEST(SparseAmpMap, InsertFindAndGrowth) {
  SparseAmpMap m;  // starts at the minimum capacity; must grow below
  for (u64 k = 0; k < 1000; ++k) m.at_or_insert(k * 7919, k) = k;
  EXPECT_EQ(m.size(), 1000u);
  for (u64 k = 0; k < 1000; ++k) {
    const u64* v = m.find(k * 7919);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(m.find(1), nullptr);
}

TEST(SparseAmpMap, AtOrInsertKeepsExistingValue) {
  SparseAmpMap m;
  m.at_or_insert(42, 5);
  EXPECT_EQ(m.at_or_insert(42, 99), 5u);  // init ignored when present
  ++m.at_or_insert(42, 0);
  EXPECT_EQ(*m.find(42), 6u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SparseAmpMap, ForEachVisitsEveryPairOnce) {
  SparseAmpMap m;
  for (u64 k = 10; k < 20; ++k) m.at_or_insert(k, k * k);
  std::set<u64> seen;
  m.for_each([&](u64 key, u64 val) {
    EXPECT_EQ(val, key * key);
    EXPECT_TRUE(seen.insert(key).second) << "key visited twice";
  });
  EXPECT_EQ(seen.size(), 10u);
}

// ---- SparseState -----------------------------------------------------

TEST(SparseState, AddAccumulatesAndMissingIsZero) {
  SparseState st({4, 4});
  st.add(3, 0.5, 0.25);
  st.add(3, 0.5, -0.25);
  EXPECT_EQ(st.nnz(), 1u);
  EXPECT_EQ(st.amp(3), (std::complex<double>{1.0, 0.0}));
  EXPECT_EQ(st.amp(7), (std::complex<double>{0.0, 0.0}));
}

TEST(SparseState, NormAndNormalize) {
  SparseState st({8});
  st.add(1, 3.0, 0.0);
  st.add(5, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(st.norm(), 25.0);
  st.normalize();
  EXPECT_NEAR(st.norm(), 1.0, 1e-12);
  EXPECT_NEAR(st.amp(1).real(), 0.6, 1e-12);
  EXPECT_NEAR(st.amp(5).imag(), 0.8, 1e-12);
}

TEST(SparseState, NormalizeZeroStateIsAnInvariantFailure) {
  SparseState st({8});
  EXPECT_THROW(st.normalize(), internal_error);
}

TEST(SparseState, EntriesAreSortedByKey) {
  SparseState st({64});
  for (const u64 k : {47u, 3u, 29u, 11u}) {
    st.add(k, static_cast<double>(k), 0.0);
  }
  const auto e = st.entries();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_TRUE(std::is_sorted(e.begin(), e.end(), [](auto& a, auto& b) {
    return a.first < b.first;
  }));
  EXPECT_EQ(e.front().first, 3u);
  EXPECT_EQ(e.back().first, 47u);
}

TEST(SparseState, GrowthPreservesAmplitudes) {
  SparseState st({1u << 16});
  for (u64 k = 0; k < 500; ++k) st.add(k * 131, 1.0, -1.0);
  EXPECT_EQ(st.nnz(), 500u);
  for (u64 k = 0; k < 500; ++k) {
    EXPECT_EQ(st.amp(k * 131), (std::complex<double>{1.0, -1.0})) << k;
  }
}

TEST(SparseState, KeyPermutationRelabelsAndKeepsAmplitudes) {
  SparseState st({16});
  st.add(2, 0.5, 0.0);
  st.add(9, 0.0, 0.5);
  st.apply_key_permutation([](u64 k) { return (k + 3) % 16; });
  EXPECT_EQ(st.nnz(), 2u);
  EXPECT_EQ(st.amp(5), (std::complex<double>{0.5, 0.0}));
  EXPECT_EQ(st.amp(12), (std::complex<double>{0.0, 0.5}));
  EXPECT_EQ(st.amp(2), (std::complex<double>{0.0, 0.0}));
}

TEST(SparseState, KeyPermutationRejectsCollision) {
  SparseState st({16});
  st.add(1, 0.5, 0.0);
  st.add(2, 0.5, 0.0);
  EXPECT_THROW(st.apply_key_permutation([](u64) { return u64{7}; }),
               std::invalid_argument);
}

// ---- SparseCosetSampler ----------------------------------------------

// f(x) = x mod q hides <q> in Z_n (q | n): the canonical hiding family.
LabelFn mod_label(u64 q) {
  return [q](const AbVec& x) { return x[0] % q; };
}

TEST(SparseSampler, SamplesLandOnPerpAndCacheReportsShape) {
  // Z_24, H = <6> (order 4), H^perp = <4> (6 points).
  SparseCosetSampler s({24}, mod_label(6), nullptr);
  EXPECT_EQ(s.backend_name(), "sparse");
  EXPECT_FALSE(s.distribution_cached());
  Rng rng(test_seeds::kSparseUnit);
  for (int i = 0; i < 50; ++i) {
    const AbVec y = s.sample_character(rng);
    EXPECT_EQ(y[0] % 4, 0u) << "outside H^perp";
  }
  EXPECT_TRUE(s.distribution_cached());
  EXPECT_EQ(s.subgroup_order(), 4u);
  EXPECT_EQ(s.support_size(), 6u);
  const auto support = s.cached_support();
  ASSERT_EQ(support.size(), 6u);
  EXPECT_TRUE(std::is_sorted(support.begin(), support.end()));
}

TEST(SparseSampler, MultiCellSupportMatchesCongruenceKernel) {
  const std::vector<u64> mods{6, 4};
  const std::vector<AbVec> h{{2, 0}, {0, 2}};  // order 6 in Z6 x Z4
  LabelFn f = [](const AbVec& x) { return (x[0] % 2) * 4 + (x[1] % 2); };
  SparseCosetSampler s(mods, f, nullptr);
  Rng rng(test_seeds::kSparseUnit + 1);
  (void)s.sample_characters(rng, 32);
  EXPECT_EQ(s.subgroup_order(), 6u);
  auto expected =
      la::abelian_enumerate(la::congruence_kernel(h, mods), mods);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(s.cached_support(), expected);
}

TEST(SparseSampler, WholeGroupHiddenIsAPointMassAtZero) {
  // |H| = |A|: constant label. Every outcome is the trivial character.
  SparseCosetSampler s({6, 4}, [](const AbVec&) { return u64{7}; }, nullptr);
  Rng rng(test_seeds::kSparseUnit + 2);
  for (const AbVec& y : s.sample_characters(rng, 40)) {
    EXPECT_EQ(y, (AbVec{0, 0}));
  }
  EXPECT_EQ(s.subgroup_order(), 24u);
  EXPECT_EQ(s.support_size(), 1u);
  EXPECT_EQ(s.cached_support(), (std::vector<AbVec>{{0, 0}}));
}

TEST(SparseSampler, TrivialSubgroupServesClosedFormUniform) {
  // |H| = 1: injective label. Closed-form uniform draws, no table.
  const std::vector<u64> mods{5, 3};
  LabelFn f = [](const AbVec& x) { return x[0] * 3 + x[1]; };
  SparseCosetSampler s(mods, f, nullptr);
  Rng rng(test_seeds::kSparseUnit + 3);
  std::set<AbVec> seen;
  for (const AbVec& y : s.sample_characters(rng, 300)) {
    ASSERT_EQ(y.size(), 2u);
    EXPECT_LT(y[0], 5u);
    EXPECT_LT(y[1], 3u);
    seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 15u);  // 300 draws cover all 15 characters whp
  EXPECT_EQ(s.subgroup_order(), 1u);
  EXPECT_EQ(s.support_size(), 15u);      // reported, not materialised
  EXPECT_TRUE(s.cached_support().empty());  // documented uniform-mode gap
  EXPECT_TRUE(s.distribution_cached());
}

TEST(SparseSampler, NonSubgroupIdentityClassRaisesOracleError) {
  // Class of 0 under x mod 3 on Z_8 is {0, 3, 6}; <3> = Z_8, not a
  // subgroup of size 3 — the structural hiding check must fire.
  SparseCosetSampler s({8}, mod_label(3), nullptr);
  Rng rng(test_seeds::kSparseUnit + 4);
  EXPECT_THROW((void)s.sample_character(rng), oracle_error);
}

TEST(SparseSampler, UnequalClassSizesRaiseOracleError) {
  // Class of 0 is {0} (a subgroup), but the other class has 7 members.
  SparseCosetSampler s({8}, [](const AbVec& x) { return x[0] == 0 ? 0u : 1u; },
                       nullptr);
  Rng rng(test_seeds::kSparseUnit + 5);
  EXPECT_THROW((void)s.sample_character(rng), oracle_error);
}

TEST(SparseSampler, DomainBudgetIsTimeBoundedAt2Pow30) {
  // 2^30 exactly fits; one factor of 2 more is rejected at construction.
  EXPECT_NO_THROW(SparseCosetSampler({u64{1} << 30}, mod_label(2), nullptr));
  EXPECT_THROW(SparseCosetSampler({2, u64{1} << 30}, mod_label(2), nullptr),
               std::invalid_argument);
  EXPECT_THROW(SparseCosetSampler({u64{1} << 31}, mod_label(2), nullptr),
               std::invalid_argument);
}

TEST(SparseSampler, CountsQueriesLikeTheDenseBackends) {
  bb::QueryCounter counter;
  SparseCosetSampler s({24}, mod_label(6), &counter);
  Rng rng(test_seeds::kSparseUnit + 6);
  (void)s.sample_characters(rng, 17);
  EXPECT_EQ(counter.quantum_queries, 17u);
  EXPECT_EQ(counter.sim_basis_evals, 24u);  // one label sweep
  (void)s.sample_characters(rng, 5);
  (void)s.sample_character(rng);
  EXPECT_EQ(counter.quantum_queries, 23u);
  EXPECT_EQ(counter.sim_basis_evals, 24u);  // never re-swept
  EXPECT_TRUE(s.sample_characters(rng, 0).empty());
  EXPECT_EQ(counter.quantum_queries, 23u);
}

TEST(SparseSampler, ReplaysExactlyFromASeed) {
  SparseCosetSampler a({24}, mod_label(6), nullptr);
  SparseCosetSampler b({24}, mod_label(6), nullptr);
  Rng ra(test_seeds::kSparseUnit + 7), rb(test_seeds::kSparseUnit + 7);
  EXPECT_EQ(a.sample_characters(ra, 12), b.sample_characters(rb, 12));
  EXPECT_EQ(a.sample_character(ra), b.sample_character(rb));
}

// ---- make_coset_sampler factory --------------------------------------

TEST(SamplerFactory, ParseAndNameRoundTrip) {
  for (const auto b :
       {SamplerBackend::kAuto, SamplerBackend::kMixedRadix,
        SamplerBackend::kQubit, SamplerBackend::kSparse,
        SamplerBackend::kAnalytic}) {
    const auto parsed = parse_sampler_backend(sampler_backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(parse_sampler_backend("dense").has_value());
  EXPECT_FALSE(parse_sampler_backend("").has_value());
}

TEST(SamplerFactory, ExplicitChoicesConstructTheNamedBackend) {
  const std::vector<u64> mods{8};
  SamplerChoice c;
  c.backend = SamplerBackend::kMixedRadix;
  EXPECT_EQ(make_coset_sampler(c, mods, mod_label(4), nullptr)->backend_name(),
            "mixed-radix");
  c.backend = SamplerBackend::kQubit;
  EXPECT_EQ(make_coset_sampler(c, mods, mod_label(4), nullptr)->backend_name(),
            "qubit-circuit");
  c.backend = SamplerBackend::kSparse;
  EXPECT_EQ(make_coset_sampler(c, mods, mod_label(4), nullptr)->backend_name(),
            "sparse");
}

TEST(SamplerFactory, AutoPrefersDenseOnSmallDomains) {
  EXPECT_EQ(make_coset_sampler({}, {24}, mod_label(6), nullptr)->backend_name(),
            "mixed-radix");
}

TEST(SamplerFactory, AutoRoutesLargeSubgroupHintsToSparse) {
  SamplerChoice c;
  c.subgroup_order_hint = 64;
  EXPECT_EQ(
      make_coset_sampler(c, {256}, mod_label(4), nullptr)->backend_name(),
      "sparse");
}

TEST(SamplerFactory, AutoIsSparsePastTheDenseBudget) {
  // 2^28 exceeds the dense 2^26 amplitude budget but fits the sparse
  // sweep budget; construction must succeed without a dense allocation.
  const auto s =
      make_coset_sampler({}, {u64{1} << 28}, mod_label(2), nullptr);
  EXPECT_EQ(s->backend_name(), "sparse");
}

TEST(SamplerFactory, AnalyticIsRejected) {
  SamplerChoice c;
  c.backend = SamplerBackend::kAnalytic;
  EXPECT_THROW((void)make_coset_sampler(c, {8}, mod_label(4), nullptr),
               std::invalid_argument);
}

// ---- The acceptance boundary the sparse engine exists for ------------

TEST(SparseSampler, SolvesWhereTheQubitBackendRejects) {
  // Z_2^16 with |H| = 2 (H = <(1,...,1)>): the coset label function has
  // 2^15 distinct values, so the qubit backend needs 16 input + 16
  // label qubits — past kMaxSimQubits = 26, rejected at the first draw.
  // The sparse engine holds |H| + |A|/|H| entries and solves it.
  const std::vector<u64> mods(16, 2);
  const auto flat = [](const AbVec& x) {
    u64 idx = 0;
    for (const u64 xi : x) idx = idx * 2 + xi;
    return idx;
  };
  LabelFn coset_id = [flat](const AbVec& x) {
    AbVec comp(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) comp[i] = 1 - x[i];
    return std::min(flat(x), flat(comp));
  };

  QubitCosetSampler dense(mods, coset_id, nullptr);
  Rng rq(test_seeds::kSparseUnit + 8);
  EXPECT_THROW((void)dense.sample_character(rq), std::invalid_argument);

  SparseCosetSampler sparse(mods, coset_id, nullptr);
  Rng rs(test_seeds::kSparseUnit + 9);
  const auto res = hsp::solve_abelian_hsp(sparse, rs);
  EXPECT_EQ(res.subgroup_order, 2u);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, {AbVec(16, 1)},
                                         mods));
  EXPECT_EQ(sparse.subgroup_order(), 2u);
  EXPECT_EQ(sparse.support_size(), 32768u);
}

}  // namespace
}  // namespace nahsp::qs
