// Scenario-spec parser: round-trips, typed getters, and the strict
// diagnostics (unknown keys, duplicates, malformed numbers, ranges).
#include <gtest/gtest.h>

#include <sstream>

#include "nahsp/common/spec.h"

namespace nahsp {
namespace {

TEST(SpecParse, TokensRoundTrip) {
  const ScenarioSpec spec =
      parse_scenario_spec({"wreath", "k=4", "hidden=2", "seed=7"});
  EXPECT_EQ(spec.scenario, "wreath");
  EXPECT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(to_string(spec), "wreath k=4 hidden=2 seed=7");
  // parse(to_string(parse(x))) is the identity on the rendering.
  EXPECT_EQ(to_string(parse_scenario_line(to_string(spec))),
            to_string(spec));
}

TEST(SpecParse, BareNameIsAValidSpec) {
  const ScenarioSpec spec = parse_scenario_line("dihedral");
  EXPECT_EQ(spec.scenario, "dihedral");
  EXPECT_TRUE(spec.params.empty());
}

TEST(SpecParse, CommentsAndWhitespace) {
  const ScenarioSpec spec =
      parse_scenario_line("  shor   modulus=33  # trailing comment");
  EXPECT_EQ(spec.scenario, "shor");
  EXPECT_TRUE(spec.params.has("modulus"));
  EXPECT_FALSE(spec.params.has("comment"));
}

TEST(SpecParse, RejectsMalformedTokens) {
  EXPECT_THROW(parse_scenario_spec({}), std::invalid_argument);
  // First token must be a scenario name, not key=value.
  EXPECT_THROW(parse_scenario_spec({"k=4"}), std::invalid_argument);
  // Later tokens must be key=value.
  EXPECT_THROW(parse_scenario_spec({"wreath", "k4"}), std::invalid_argument);
  // Keys must be identifiers; values must be non-empty.
  EXPECT_THROW(parse_scenario_spec({"wreath", "2k=4"}), std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec({"wreath", "=4"}), std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec({"wreath", "k="}), std::invalid_argument);
  // Duplicate keys are rejected rather than last-wins.
  EXPECT_THROW(parse_scenario_spec({"wreath", "k=4", "k=5"}),
               std::invalid_argument);
}

TEST(SpecParse, U64LiteralGrammar) {
  EXPECT_EQ(parse_spec_u64("0"), 0u);
  EXPECT_EQ(parse_spec_u64("12345"), 12345u);
  EXPECT_EQ(parse_spec_u64("0x10"), 16u);
  EXPECT_EQ(parse_spec_u64("0XfF"), 255u);
  EXPECT_EQ(parse_spec_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(parse_spec_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_spec_u64("-1"), std::invalid_argument);
  EXPECT_THROW(parse_spec_u64("+1"), std::invalid_argument);
  EXPECT_THROW(parse_spec_u64("12x"), std::invalid_argument);
  EXPECT_THROW(parse_spec_u64("0x"), std::invalid_argument);
  EXPECT_THROW(parse_spec_u64("18446744073709551616"),  // 2^64
               std::invalid_argument);
}

TEST(SpecParse, U64RejectionsNameTheirCause) {
  // Every rejection carries a distinct diagnostic: these messages reach
  // users verbatim (CLI errors, serve spec_error responses), so "what
  // exactly was wrong with the literal" is part of the contract.
  struct Case {
    const char* text;
    const char* why;
  };
  const Case cases[] = {
      {"", "empty"},
      {" 1", "contains whitespace"},
      {"1 ", "contains whitespace"},
      {"1\t2", "contains whitespace"},
      {"+1", "sign characters are not accepted"},
      {"-1", "sign characters are not accepted"},
      {"+0x10", "sign characters are not accepted"},
      {"18446744073709551616", "overflows the 64-bit unsigned range"},
      {"0x10000000000000000", "overflows the 64-bit unsigned range"},
      {"99999999999999999999999", "overflows the 64-bit unsigned range"},
      {"abc", "expected decimal digits"},
      {"0xg1", "expected hex digits after 0x"},
      {"12x", "trailing characters after the digits"},
      {"0x12g", "trailing characters after the digits"},
      {"1.5", "trailing characters after the digits"},
  };
  for (const Case& c : cases) {
    try {
      (void)parse_spec_u64(c.text);
      FAIL() << "accepted '" << c.text << "'";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("not an unsigned integer"), std::string::npos)
          << "'" << c.text << "' -> " << msg;
      EXPECT_NE(msg.find(c.why), std::string::npos)
          << "'" << c.text << "' -> " << msg;
    }
  }
}

TEST(SpecMapTyped, GetU64KeepsTheLiteralCause) {
  // get_u64 wraps parse_spec_u64 failures with the key name but must
  // not flatten the specific cause.
  ScenarioSpec spec = parse_scenario_line("x n=+7");
  try {
    (void)spec.params.get_u64("n", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'n'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sign characters are not accepted"),
              std::string::npos)
        << msg;
  }
}

TEST(SpecMapTyped, GetU64DefaultsAndRanges) {
  ScenarioSpec spec = parse_scenario_line("x n=12");
  EXPECT_EQ(spec.params.get_u64("n", 5, 2, 100), 12u);
  EXPECT_EQ(spec.params.get_u64("absent", 5, 2, 100), 5u);
  // Range violations name the key and the range.
  spec = parse_scenario_line("x n=1");
  try {
    (void)spec.params.get_u64("n", 5, 2, 100);
    FAIL() << "expected range error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'n'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[2, 100]"), std::string::npos);
  }
  // Non-numeric values fail with the offending text.
  spec = parse_scenario_line("x n=abc");
  EXPECT_THROW((void)spec.params.get_u64("n", 5), std::invalid_argument);
}

TEST(SpecMapTyped, GetString) {
  ScenarioSpec spec = parse_scenario_line("x mode=fast");
  EXPECT_EQ(spec.params.get_string("mode", "slow"), "fast");
  EXPECT_EQ(spec.params.get_string("absent", "slow"), "slow");
}

TEST(SpecMapConsumption, UnknownKeysAreReported) {
  ScenarioSpec spec = parse_scenario_line("x n=12 typo=1");
  (void)spec.params.get_u64("n", 0);
  EXPECT_EQ(spec.params.unconsumed_keys(),
            std::vector<std::string>{"typo"});
  try {
    spec.params.require_all_consumed("scenario 'x'", {"n", "k"});
    FAIL() << "expected unknown-key error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'typo'"), std::string::npos);
    EXPECT_NE(msg.find("scenario 'x'"), std::string::npos);
    EXPECT_NE(msg.find(" n"), std::string::npos) << msg;
  }
  // After consuming everything the check passes.
  (void)spec.params.get_u64("typo", 0);
  EXPECT_NO_THROW(spec.params.require_all_consumed("scenario 'x'", {}));
}

TEST(SpecFile, StreamParsesLinesSkipsCommentsNamesLineNumbers) {
  std::istringstream in(
      "# fleet\n"
      "\n"
      "dihedral n=24 k=4\n"
      "   # indented comment\n"
      "wreath k=3  # inline\n");
  const auto specs = parse_scenario_stream(in, "fleet.scn");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].scenario, "dihedral");
  EXPECT_EQ(specs[1].scenario, "wreath");

  std::istringstream bad(
      "dihedral n=24\n"
      "oops=1\n");
  try {
    (void)parse_scenario_stream(bad, "fleet.scn");
    FAIL() << "expected parse error with line number";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fleet.scn:2"), std::string::npos)
        << e.what();
  }
}

TEST(SpecFile, MissingFileFails) {
  EXPECT_THROW(parse_scenario_file("/nonexistent/specs.scn"),
               std::invalid_argument);
}

}  // namespace
}  // namespace nahsp
