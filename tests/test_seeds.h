// Central registry of the fixed seeds used by randomized tests.
//
// Every randomized test seeds nahsp::Rng from a constant named here so a
// fuzz or integration failure replays exactly — grep the seed name, not
// an ad-hoc literal. The statistical (chi-square) tests additionally
// honour the NAHSP_STAT_SEED environment variable: scripts/check.sh pins
// it, and a reported flake is reproduced by exporting the same value.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace nahsp::test_seeds {

// test_fuzz.cpp — the zoo derives a per-case stream from this base plus
// the case-label hash, so cases stay independent and individually
// replayable.
inline constexpr std::uint64_t kFuzzZooBase = 0xf0022;
inline constexpr std::uint64_t kFuzzFactorOrderQuotient = 99;
inline constexpr std::uint64_t kFuzzFactorOrderHeisenberg = 100;
inline constexpr std::uint64_t kFuzzFactorOrderCosetLabel = 101;

// test_sampler_batched.cpp — default seed for the chi-square
// backend-equivalence suite (ctest label `stat`).
inline constexpr std::uint64_t kStatDefault = 20260730;

// test_sparse.cpp — base seed for the sparse-engine unit tests (each
// test offsets it so draw streams stay independent).
inline constexpr std::uint64_t kSparseUnit = 0x5a125e01;

// test_parallel_determinism.cpp — pinned seeds of the serial-reference
// scenarios. The expected outputs hardcoded in that test were captured
// from the pre-threading serial code path under exactly these seeds; a
// changed value there means the n=1 path no longer reproduces the
// historical serial semantics.
inline constexpr std::uint64_t kParMrScalar = 11;
inline constexpr std::uint64_t kParMrBatched = 12;
inline constexpr std::uint64_t kParQubitScalar = 13;
inline constexpr std::uint64_t kParQubitBatched = 14;
inline constexpr std::uint64_t kParStateVector = 15;
inline constexpr std::uint64_t kParSolve = 16;
// Sparse-engine fidelity seeds (the sparse backend is PR 6; its
// expected outputs were captured from the initial implementation at
// parallelism 1 and lock the n=1 == n=k contract from here on).
inline constexpr std::uint64_t kParSparseScalar = 17;
inline constexpr std::uint64_t kParSparseBatched = 18;
// Base seed for the solve_hsp_batch thread-count-invariance checks
// (each instance receives SplitRng(kParBatchBase).stream(i)).
inline constexpr std::uint64_t kParBatchBase = 0x5eed0001;

// test_scenario.cpp — pinned seed under which every registered scenario
// family must solve to its planted subgroup (the same guarantee `nahsp
// selftest` and the CI golden reports rely on; the CLI's default seed
// is 1, pinned independently in tests/golden/).
inline constexpr std::uint64_t kScenarioRegistry = 0x5ce9a201;

/// Seed for the statistical tests: NAHSP_STAT_SEED when set (decimal),
/// otherwise kStatDefault.
inline std::uint64_t stat_seed() {
  if (const char* env = std::getenv("NAHSP_STAT_SEED")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 10);
    if (end != env) return v;
  }
  return kStatDefault;
}

}  // namespace nahsp::test_seeds
