// Central registry of the fixed seeds used by randomized tests.
//
// Every randomized test seeds nahsp::Rng from a constant named here so a
// fuzz or integration failure replays exactly — grep the seed name, not
// an ad-hoc literal. The statistical (chi-square) tests additionally
// honour the NAHSP_STAT_SEED environment variable: scripts/check.sh pins
// it, and a reported flake is reproduced by exporting the same value.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace nahsp::test_seeds {

// test_fuzz.cpp — the zoo derives a per-case stream from this base plus
// the case-label hash, so cases stay independent and individually
// replayable.
inline constexpr std::uint64_t kFuzzZooBase = 0xf0022;
inline constexpr std::uint64_t kFuzzFactorOrderQuotient = 99;
inline constexpr std::uint64_t kFuzzFactorOrderHeisenberg = 100;
inline constexpr std::uint64_t kFuzzFactorOrderCosetLabel = 101;

// test_sampler_batched.cpp — default seed for the chi-square
// backend-equivalence suite (ctest label `stat`).
inline constexpr std::uint64_t kStatDefault = 20260730;

/// Seed for the statistical tests: NAHSP_STAT_SEED when set (decimal),
/// otherwise kStatDefault.
inline std::uint64_t stat_seed() {
  if (const char* env = std::getenv("NAHSP_STAT_SEED")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 10);
    if (end != env) return v;
  }
  return kStatDefault;
}

}  // namespace nahsp::test_seeds
