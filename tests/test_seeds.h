// Central registry of the fixed seeds used by randomized tests.
//
// Every randomized test seeds nahsp::Rng from a constant named here so a
// fuzz or integration failure replays exactly — grep the seed name, not
// an ad-hoc literal. The statistical (chi-square) tests additionally
// honour the NAHSP_STAT_SEED environment variable: scripts/check.sh pins
// it, and a reported flake is reproduced by exporting the same value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace nahsp::test_seeds {

// test_fuzz.cpp — the zoo derives a per-case stream from this base plus
// the case-label hash, so cases stay independent and individually
// replayable.
inline constexpr std::uint64_t kFuzzZooBase = 0xf0022;
inline constexpr std::uint64_t kFuzzFactorOrderQuotient = 99;
inline constexpr std::uint64_t kFuzzFactorOrderHeisenberg = 100;
inline constexpr std::uint64_t kFuzzFactorOrderCosetLabel = 101;

// test_sampler_batched.cpp — default seed for the chi-square
// backend-equivalence suite (ctest label `stat`).
inline constexpr std::uint64_t kStatDefault = 20260730;

// test_sparse.cpp — base seed for the sparse-engine unit tests (each
// test offsets it so draw streams stay independent).
inline constexpr std::uint64_t kSparseUnit = 0x5a125e01;

// test_parallel_determinism.cpp — pinned seeds of the serial-reference
// scenarios. The expected outputs hardcoded in that test were captured
// from the pre-threading serial code path under exactly these seeds; a
// changed value there means the n=1 path no longer reproduces the
// historical serial semantics.
inline constexpr std::uint64_t kParMrScalar = 11;
inline constexpr std::uint64_t kParMrBatched = 12;
inline constexpr std::uint64_t kParQubitScalar = 13;
inline constexpr std::uint64_t kParQubitBatched = 14;
inline constexpr std::uint64_t kParStateVector = 15;
inline constexpr std::uint64_t kParSolve = 16;
// Sparse-engine fidelity seeds (the sparse backend is PR 6; its
// expected outputs were captured from the initial implementation at
// parallelism 1 and lock the n=1 == n=k contract from here on).
inline constexpr std::uint64_t kParSparseScalar = 17;
inline constexpr std::uint64_t kParSparseBatched = 18;
// Base seed for the solve_hsp_batch thread-count-invariance checks
// (each instance receives SplitRng(kParBatchBase).stream(i)).
inline constexpr std::uint64_t kParBatchBase = 0x5eed0001;

// test_scenario.cpp — pinned seed under which every registered scenario
// family must solve to its planted subgroup (the same guarantee `nahsp
// selftest` and the CI golden reports rely on; the CLI's default seed
// is 1, pinned independently in tests/golden/).
inline constexpr std::uint64_t kScenarioRegistry = 0x5ce9a201;

// Generator fleet (src/hsp/generator.h). A generated instance is a pure
// function of its gen_seed, so these constants pin entire instance
// populations, not just solver draws:
//  - kGenFuzzSpec seeds the spec-string fuzzer in test_fuzz.cpp (random
//    in-range parameter draws for the generator-backed families);
//  - kGenPropertyBase seeds the property-suite solver Rng streams
//    (tests/property/), with gen_seeds swept 1..stress_seed_count();
//  - kGenAdversarial seeds the adversarial oracle-error matrix.
inline constexpr std::uint64_t kGenFuzzSpec = 0xf0023;
inline constexpr std::uint64_t kGenPropertyBase = 0x9e900001;
inline constexpr std::uint64_t kGenAdversarial = 0xad7e0001;

/// Number of generator seeds each property-suite sweep covers per
/// family: NAHSP_STRESS_SEEDS when set (decimal), otherwise `def`.
/// The CI stress job raises it; the default keeps the acceptance floor
/// of 50 planted instances per generated family.
inline std::size_t stress_seed_count(std::size_t def = 50) {
  if (const char* env = std::getenv("NAHSP_STRESS_SEEDS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return def;
}

/// Seed for the statistical tests: NAHSP_STAT_SEED when set (decimal),
/// otherwise kStatDefault.
inline std::uint64_t stat_seed() {
  if (const char* env = std::getenv("NAHSP_STAT_SEED")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 10);
    if (end != env) return v;
  }
  return kStatDefault;
}

}  // namespace nahsp::test_seeds
