// Tests for the mixed-radix register simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nahsp/common/rng.h"
#include "nahsp/qsim/mixedradix.h"

namespace nahsp::qs {
namespace {

constexpr double kTol = 1e-9;

TEST(MixedRadix, IndexDigitsRoundTrip) {
  MixedRadixState st({3, 4, 5});
  EXPECT_EQ(st.dim(), 60u);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(st.index_of(st.digits_of(i)), i);
  }
  EXPECT_EQ(st.index_of({1, 2, 3}), 1u * 20 + 2u * 5 + 3u);
}

TEST(MixedRadix, UniformNorm) {
  MixedRadixState st = MixedRadixState::uniform({4, 9});
  EXPECT_NEAR(st.norm2(), 1.0, kTol);
  EXPECT_NEAR(std::abs(st.amp(7)), 1.0 / 6.0, kTol);
}

TEST(MixedRadix, QftCellMatchesExplicitDft) {
  // QFT of basis state |x> over Z_n: amp(y) = e^{2 pi i x y / n}/sqrt(n).
  for (const u64 n : {2ULL, 3ULL, 5ULL, 6ULL, 7ULL, 8ULL, 12ULL, 16ULL,
                      17ULL, 32ULL}) {
    for (u64 x = 0; x < std::min<u64>(n, 5); ++x) {
      MixedRadixState st({n});
      st.set_amp(0, 0.0);
      st.set_amp(x, 1.0);
      st.qft_cell(0);
      for (u64 y = 0; y < n; ++y) {
        const double ang = 2.0 * std::numbers::pi * static_cast<double>(x) *
                           static_cast<double>(y) / static_cast<double>(n);
        const cplx expect =
            std::polar(1.0 / std::sqrt(static_cast<double>(n)), ang);
        EXPECT_NEAR(std::abs(st.amp(y) - expect), 0.0, 1e-8)
            << "n=" << n << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(MixedRadix, QftPow2FastPathMatchesDenseFallback) {
  // Cross-check the radix-2 FFT path against a dimension just below the
  // fast-path threshold by embedding Z_4 (dense) x Z_16 (FFT).
  Rng rng(3);
  MixedRadixState st({4, 16});
  for (std::size_t i = 0; i < st.dim(); ++i)
    st.set_amp(i, cplx{rng.uniform01() - 0.5, rng.uniform01() - 0.5});
  // Normalise.
  const double n2 = st.norm2();
  for (std::size_t i = 0; i < st.dim(); ++i)
    st.set_amp(i, st.amp(i) / std::sqrt(n2));
  MixedRadixState ref = st;
  st.qft_cell(1);  // 16: FFT path
  // Dense reference for cell 1.
  for (u64 a = 0; a < 4; ++a) {
    std::vector<cplx> in(16), out(16);
    for (u64 x = 0; x < 16; ++x) in[x] = ref.amp(ref.index_of({a, x}));
    for (u64 y = 0; y < 16; ++y) {
      cplx acc{0, 0};
      for (u64 x = 0; x < 16; ++x) {
        acc += std::polar(1.0, 2.0 * std::numbers::pi * double(x * y % 16) /
                                   16.0) *
               in[x];
      }
      out[y] = acc / 4.0;
    }
    for (u64 y = 0; y < 16; ++y)
      EXPECT_NEAR(std::abs(st.amp(st.index_of({a, y})) - out[y]), 0.0, 1e-8);
  }
}

TEST(MixedRadix, QftUnitary) {
  MixedRadixState st = MixedRadixState::uniform({3, 8});
  st.qft_all();
  EXPECT_NEAR(st.norm2(), 1.0, kTol);
  // QFT of uniform = |0,...,0>.
  EXPECT_NEAR(std::abs(st.amp(0)), 1.0, 1e-8);
}

TEST(MixedRadix, QftInverseRoundTrip) {
  Rng rng(5);
  MixedRadixState st({5, 6});
  for (std::size_t i = 0; i < st.dim(); ++i)
    st.set_amp(i, cplx{rng.uniform01() - 0.5, rng.uniform01() - 0.5});
  const double n2 = st.norm2();
  for (std::size_t i = 0; i < st.dim(); ++i)
    st.set_amp(i, st.amp(i) / std::sqrt(n2));
  MixedRadixState before = st;
  st.qft_all();
  st.qft_all(/*inverse=*/true);
  double dist = 0.0;
  for (std::size_t i = 0; i < st.dim(); ++i)
    dist += std::norm(st.amp(i) - before.amp(i));
  EXPECT_LT(std::sqrt(dist), 1e-8);
}

TEST(MixedRadix, CollapseByLabelProjects) {
  Rng rng(7);
  MixedRadixState st = MixedRadixState::uniform({12});
  std::vector<u64> labels(12);
  for (u64 i = 0; i < 12; ++i) labels[i] = i % 3;  // cosets of <3>
  const u64 chosen = st.collapse_by_label(labels, rng);
  EXPECT_LT(chosen, 3u);
  EXPECT_NEAR(st.norm2(), 1.0, kTol);
  for (u64 i = 0; i < 12; ++i) {
    if (labels[i] == chosen)
      EXPECT_NEAR(std::abs(st.amp(i)), 0.5, kTol);
    else
      EXPECT_NEAR(std::abs(st.amp(i)), 0.0, kTol);
  }
}

TEST(MixedRadix, CollapseChoosesLabelsWithCorrectFrequencies) {
  Rng rng(9);
  std::vector<u64> labels{0, 0, 0, 1};  // P(0)=3/4
  int zeros = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    MixedRadixState st = MixedRadixState::uniform({4});
    if (st.collapse_by_label(labels, rng) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / kTrials, 0.75, 0.02);
}

TEST(MixedRadix, SampleFollowsDistribution) {
  Rng rng(11);
  MixedRadixState st({2});
  st.set_amp(0, std::sqrt(0.9));
  st.set_amp(1, std::sqrt(0.1));
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) ones += static_cast<int>(st.sample(rng)[0]);
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.1, 0.01);
}

TEST(MixedRadix, PeriodFindingEndToEnd) {
  // f(k) = k mod 4 over Z_16: after collapse + QFT, outcomes are
  // multiples of 4 only.
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    MixedRadixState st = MixedRadixState::uniform({16});
    std::vector<u64> labels(16);
    for (u64 i = 0; i < 16; ++i) labels[i] = i % 4;
    st.collapse_by_label(labels, rng);
    st.qft_all();
    const u64 y = st.sample(rng)[0];
    EXPECT_EQ(y % 4, 0u);
  }
}

TEST(MixedRadix, BudgetGuard) {
  EXPECT_THROW(MixedRadixState({1u << 27}), std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::qs
