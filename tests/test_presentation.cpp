// Tests for factor-group presentation machinery (Abelian relators and
// Schreier generators).
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/presentation.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(FactorAbelianCheck, DetectsAbelianFactors) {
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  // G/Z(G) is Abelian.
  EXPECT_TRUE(factor_group_is_abelian(*inst.bb, label));
  // G itself (trivial hidden subgroup) is not.
  const auto triv = bb::make_instance(h, {});
  auto label2 = [&triv](Code c) { return triv.f->eval_uncounted(c); };
  EXPECT_FALSE(factor_group_is_abelian(*triv.bb, label2));
}

TEST(AbelianRelators, HeisenbergModCentre) {
  Rng rng(1);
  auto h = std::make_shared<grp::HeisenbergGroup>(5, 1);
  const auto inst = bb::make_instance(h, {h->central_generator()});
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  AbelianFactorOptions opts;
  opts.order_bound = 5;
  const auto relators = abelian_factor_relators(*inst.bb, label, rng, opts);
  ASSERT_FALSE(relators.empty());
  // All relators lie in the centre, and their normal closure is it.
  const auto centre = grp::enumerate_subgroup(*h, {h->central_generator()});
  for (const Code w : relators)
    EXPECT_TRUE(std::binary_search(centre.begin(), centre.end(), w));
  const auto closure = grp::normal_closure(*h, relators);
  EXPECT_TRUE(grp::same_subgroup(*h, closure, {h->central_generator()}));
}

TEST(AbelianRelators, DihedralModRotations) {
  Rng rng(2);
  auto d = std::make_shared<grp::DihedralGroup>(9);
  const auto inst = bb::make_instance(d, {d->make(1, false)});
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  AbelianFactorOptions opts;
  opts.order_bound = 18;
  const auto relators = abelian_factor_relators(*inst.bb, label, rng, opts);
  const auto closure = grp::normal_closure(*d, relators);
  EXPECT_TRUE(grp::same_subgroup(*d, closure, {d->make(1, false)}));
}

TEST(SchreierGenerators, S4ModV4) {
  auto s4 = grp::symmetric_group(4);
  const Code v1 = s4->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}}));
  const Code v2 = s4->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}));
  const auto inst = bb::make_perm_instance(s4, {v1, v2});
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  const auto gens = schreier_generators(*inst.bb, label);
  EXPECT_TRUE(grp::same_subgroup(*s4, gens, {v1, v2}));
}

TEST(SchreierGenerators, S4ModA4) {
  auto s4 = grp::symmetric_group(4);
  std::vector<Code> a4;
  for (int i = 2; i < 4; ++i)
    a4.push_back(s4->encode(grp::perm_from_cycles(4, {{0, 1, i}})));
  const auto inst = bb::make_perm_instance(s4, a4);
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  const auto gens = schreier_generators(*inst.bb, label);
  EXPECT_TRUE(grp::same_subgroup(*s4, gens, a4));
}

TEST(SchreierGenerators, NonNormalSubgroupAlsoGenerated) {
  // Schreier's lemma needs only a subgroup, not normality: the
  // left-multiplication BFS generates any H whose left cosets the labels
  // separate. H = <y> in D_6 is not normal.
  auto d = std::make_shared<grp::DihedralGroup>(6);
  const auto inst = bb::make_instance(d, {d->make(0, true)});
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  const auto gens = schreier_generators(*inst.bb, label);
  EXPECT_TRUE(grp::same_subgroup(*d, gens, {d->make(0, true)}));
}

TEST(SchreierGenerators, RotationSubgroupOfDihedral) {
  auto d = std::make_shared<grp::DihedralGroup>(6);
  const auto inst = bb::make_instance(d, {d->make(1, false)});  // index 2
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  const auto gens = schreier_generators(*inst.bb, label);
  EXPECT_TRUE(grp::same_subgroup(*d, gens, {d->make(1, false)}));
}

TEST(SchreierGenerators, CapEnforced) {
  auto s4 = grp::symmetric_group(4);
  const auto inst = bb::make_perm_instance(s4, {});  // trivial H: 24 cosets
  auto label = [&inst](Code c) { return inst.f->eval_uncounted(c); };
  SchreierOptions opts;
  opts.factor_cap = 4;
  EXPECT_THROW(schreier_generators(*inst.bb, label, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace nahsp::hsp
