// Edge-case coverage across module boundaries: degenerate inputs that
// production users hit first (identity generators, duplicate
// generators, 1-cells in moduli, boundary encodings).
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/linalg/congruence.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(EdgeCases, ModuliWithOneCells) {
  // Z_1 factors are legal and must be transparent.
  const std::vector<u64> mods{1, 6, 1, 4};
  const std::vector<la::AbVec> h{{0, 3, 0, 2}};
  Rng rng(1);
  qs::AnalyticCosetSampler sampler(mods, h, nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, h, mods));
}

TEST(EdgeCases, CongruenceKernelAllOnes) {
  const std::vector<u64> mods{1, 1};
  const auto gens = la::congruence_kernel({}, mods);
  EXPECT_EQ(la::abelian_subgroup_order(gens, mods), 1u);
}

TEST(EdgeCases, DuplicateAndIdentityNGenerators) {
  // Theorem 13 with a redundant N-generating set: duplicates and the
  // identity must not break the Z_2^m homomorphism.
  Rng rng(2);
  auto w = grp::wreath_z2k_z2(2);
  std::vector<Code> n_gens = w->normal_subgroup_generators();
  n_gens.push_back(w->id());        // identity generator
  n_gens.push_back(n_gens.front()); // duplicate
  const auto inst = bb::make_instance(w, {w->make(0b0110, 1)});
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = 2;
  opts.n_membership = [w](Code c) { return w->rot_of(c) == 0; };
  opts.coset_label = [w](Code c) { return w->rot_of(c); };
  const auto res =
      solve_hsp_elem_abelian2(*inst.bb, n_gens, *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*w, res.generators,
                                   inst.planted_generators));
}

TEST(EdgeCases, TrivialAmbientGroup) {
  auto z1 = std::make_shared<grp::CyclicGroup>(1);
  EXPECT_EQ(z1->order(), 1u);
  EXPECT_TRUE(z1->generators().empty());
  EXPECT_EQ(grp::enumerate_group(*z1).size(), 1u);
}

TEST(EdgeCases, PermRankAtHighDegreeBoundary) {
  // Degree 20 is the documented ceiling (20! < 2^62).
  grp::Perm p = grp::perm_identity(20);
  std::reverse(p.begin(), p.end());
  const std::uint64_t r = grp::perm_rank(p);  // largest rank = 20! - 1
  EXPECT_EQ(grp::perm_unrank(20, r), p);
  std::uint64_t fact = 1;
  for (int i = 2; i <= 20; ++i) fact *= i;
  EXPECT_EQ(r, fact - 1);
}

TEST(EdgeCases, GF2MatIdentityActionDegenerates) {
  // T = I, m = 1: the semidirect product collapses to Z_2^k.
  auto g = std::make_shared<grp::GF2SemidirectCyclic>(
      3, grp::GF2Mat::identity(3), 1);
  EXPECT_EQ(g->order(), 8u);
  EXPECT_TRUE(grp::is_abelian(*g));
  Rng rng(3);
  const auto inst = bb::make_instance(g, {g->make(0b101, 0)});
  ElemAbelian2Options opts;
  opts.n_membership = [g](Code c) { return g->rot_of(c) == 0; };
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*g, res.generators,
                                   inst.planted_generators));
}

TEST(EdgeCases, HidingFunctionOfWholeGroupIsConstant) {
  auto z = std::make_shared<grp::CyclicGroup>(12);
  const auto inst = bb::make_instance(z, z->generators());
  const auto l0 = inst.f->eval_uncounted(0);
  for (Code c = 1; c < 12; ++c) {
    EXPECT_EQ(inst.f->eval_uncounted(c), l0);
  }
}

TEST(EdgeCases, SamplerOnSizeOneDomain) {
  // |A| = 1: the only character is 0.
  qs::LabelFn label = [](const la::AbVec&) { return 0u; };
  qs::MixedRadixCosetSampler sampler({1}, label, nullptr);
  Rng rng(4);
  EXPECT_EQ(sampler.sample_character(rng), la::AbVec{0});
}

TEST(EdgeCases, AbelianSolverOnSizeOneDomain) {
  qs::LabelFn label = [](const la::AbVec&) { return 0u; };
  qs::MixedRadixCosetSampler sampler({1}, label, nullptr);
  Rng rng(5);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_EQ(res.subgroup_order, 1u);
}

}  // namespace
}  // namespace nahsp::hsp
