// Edge-case coverage across module boundaries: degenerate inputs that
// production users hit first (identity generators, duplicate
// generators, 1-cells in moduli, boundary encodings).
#include <gtest/gtest.h>

#include <initializer_list>
#include <set>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sparse.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(EdgeCases, ModuliWithOneCells) {
  // Z_1 factors are legal and must be transparent.
  const std::vector<u64> mods{1, 6, 1, 4};
  const std::vector<la::AbVec> h{{0, 3, 0, 2}};
  Rng rng(1);
  qs::AnalyticCosetSampler sampler(mods, h, nullptr);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_TRUE(la::abelian_subgroup_equal(res.generators, h, mods));
}

TEST(EdgeCases, CongruenceKernelAllOnes) {
  const std::vector<u64> mods{1, 1};
  const auto gens = la::congruence_kernel({}, mods);
  EXPECT_EQ(la::abelian_subgroup_order(gens, mods), 1u);
}

TEST(EdgeCases, DuplicateAndIdentityNGenerators) {
  // Theorem 13 with a redundant N-generating set: duplicates and the
  // identity must not break the Z_2^m homomorphism.
  Rng rng(2);
  auto w = grp::wreath_z2k_z2(2);
  std::vector<Code> n_gens = w->normal_subgroup_generators();
  n_gens.push_back(w->id());        // identity generator
  n_gens.push_back(n_gens.front()); // duplicate
  const auto inst = bb::make_instance(w, {w->make(0b0110, 1)});
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = 2;
  opts.n_membership = [w](Code c) { return w->rot_of(c) == 0; };
  opts.coset_label = [w](Code c) { return w->rot_of(c); };
  const auto res =
      solve_hsp_elem_abelian2(*inst.bb, n_gens, *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*w, res.generators,
                                   inst.planted_generators));
}

TEST(EdgeCases, TrivialAmbientGroup) {
  auto z1 = std::make_shared<grp::CyclicGroup>(1);
  EXPECT_EQ(z1->order(), 1u);
  EXPECT_TRUE(z1->generators().empty());
  EXPECT_EQ(grp::enumerate_group(*z1).size(), 1u);
}

TEST(EdgeCases, PermRankAtHighDegreeBoundary) {
  // Degree 20 is the documented ceiling (20! < 2^62).
  grp::Perm p = grp::perm_identity(20);
  std::reverse(p.begin(), p.end());
  const std::uint64_t r = grp::perm_rank(p);  // largest rank = 20! - 1
  EXPECT_EQ(grp::perm_unrank(20, r), p);
  std::uint64_t fact = 1;
  for (int i = 2; i <= 20; ++i) fact *= i;
  EXPECT_EQ(r, fact - 1);
}

TEST(EdgeCases, GF2MatIdentityActionDegenerates) {
  // T = I, m = 1: the semidirect product collapses to Z_2^k.
  auto g = std::make_shared<grp::GF2SemidirectCyclic>(
      3, grp::GF2Mat::identity(3), 1);
  EXPECT_EQ(g->order(), 8u);
  EXPECT_TRUE(grp::is_abelian(*g));
  Rng rng(3);
  const auto inst = bb::make_instance(g, {g->make(0b101, 0)});
  ElemAbelian2Options opts;
  opts.n_membership = [g](Code c) { return g->rot_of(c) == 0; };
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*g, res.generators,
                                   inst.planted_generators));
}

TEST(EdgeCases, HidingFunctionOfWholeGroupIsConstant) {
  auto z = std::make_shared<grp::CyclicGroup>(12);
  const auto inst = bb::make_instance(z, z->generators());
  const auto l0 = inst.f->eval_uncounted(0);
  for (Code c = 1; c < 12; ++c) {
    EXPECT_EQ(inst.f->eval_uncounted(c), l0);
  }
}

TEST(EdgeCases, SamplerOnSizeOneDomain) {
  // |A| = 1: the only character is 0.
  qs::LabelFn label = [](const la::AbVec&) { return 0u; };
  qs::MixedRadixCosetSampler sampler({1}, label, nullptr);
  Rng rng(4);
  EXPECT_EQ(sampler.sample_character(rng), la::AbVec{0});
}

// ---- Degenerate hidden subgroups, adversarially, on every backend ----
// |H| = |A| (constant label): the outcome law is the point mass at the
// trivial character. |H| = 1 (injective label): exactly uniform over
// the whole character group. Both must hold for scalar AND batched
// draws — historically the batched cache path diverged first.

TEST(EdgeCases, WholeGroupHiddenIsPointMassOnEveryBackend) {
  const std::vector<u64> mods{8};
  qs::LabelFn constant = [](const la::AbVec&) { return u64{42}; };
  qs::MixedRadixCosetSampler mr(mods, constant, nullptr);
  qs::QubitCosetSampler qb(mods, constant, nullptr);
  qs::SparseCosetSampler sp(mods, constant, nullptr);
  Rng rng(6);
  for (qs::CosetSampler* s :
       std::initializer_list<qs::CosetSampler*>{&mr, &qb, &sp}) {
    EXPECT_EQ(s->sample_character(rng), la::AbVec{0}) << s->backend_name();
    for (const la::AbVec& y : s->sample_characters(rng, 32)) {
      EXPECT_EQ(y, la::AbVec{0}) << s->backend_name();
    }
    EXPECT_EQ(s->cached_support(), std::vector<la::AbVec>{{0}})
        << s->backend_name();
  }
}

TEST(EdgeCases, TrivialSubgroupIsExactlyUniformOnEveryBackend) {
  const std::vector<u64> mods{8};
  qs::LabelFn injective = [](const la::AbVec& x) { return x[0]; };
  qs::MixedRadixCosetSampler mr(mods, injective, nullptr);
  qs::QubitCosetSampler qb(mods, injective, nullptr);
  qs::SparseCosetSampler sp(mods, injective, nullptr);
  Rng rng(7);
  for (qs::CosetSampler* s :
       std::initializer_list<qs::CosetSampler*>{&mr, &qb, &sp}) {
    std::set<u64> seen;
    for (const la::AbVec& y : s->sample_characters(rng, 200)) {
      ASSERT_LT(y[0], 8u) << s->backend_name();
      seen.insert(y[0]);
    }
    // 200 draws from an exactly uniform law over 8 points miss one with
    // probability < 8 * (7/8)^200 ~ 1e-11.
    EXPECT_EQ(seen.size(), 8u) << s->backend_name();
  }
}

// ---- Qubit-budget boundaries (shift-overflow sweep regression) -------
// The budget guards must fire as exceptions at the declared boundary,
// before any multi-GB allocation — and stay exact at 2^26, where a
// 32-bit `1 << bits` expression would already have overflowed.

TEST(EdgeCases, MixedRadixDomainBoundaryAt2Pow26) {
  qs::LabelFn label = [](const la::AbVec& x) { return x[0] & 1; };
  // Construction validates the domain without allocating it.
  EXPECT_NO_THROW(qs::MixedRadixCosetSampler({u64{1} << 26}, label, nullptr));
  EXPECT_THROW(qs::MixedRadixCosetSampler({u64{1} << 27}, label, nullptr),
               std::invalid_argument);
  EXPECT_THROW(qs::MixedRadixCosetSampler({u64{1} << 26, 2}, label, nullptr),
               std::invalid_argument);
}

TEST(EdgeCases, QubitRegisterBoundaryAtConstruction) {
  qs::LabelFn label = [](const la::AbVec& x) { return x[0] & 1; };
  // in_bits + at least one ancilla qubit must fit kMaxSimQubits = 26.
  EXPECT_NO_THROW(qs::QubitCosetSampler({u64{1} << 25}, label, nullptr));
  EXPECT_THROW(qs::QubitCosetSampler({u64{1} << 26}, label, nullptr),
               std::invalid_argument);
}

TEST(EdgeCases, QubitLabelBudgetFiresMidSweepNotAfterIt) {
  // 2^16 inputs with an injective label: 2^16 distinct labels exceed
  // the 2^(26-16) ancilla budget. The guard fires during the label
  // sweep (after ~2^10 distinct labels), so the failure costs KBs, not
  // the full dense map.
  qs::QubitCosetSampler s({u64{1} << 16}, [](const la::AbVec& x) {
    return x[0];
  }, nullptr);
  Rng rng(8);
  EXPECT_THROW((void)s.sample_character(rng), std::invalid_argument);
}

TEST(EdgeCases, AbelianSolverOnSizeOneDomain) {
  qs::LabelFn label = [](const la::AbVec&) { return 0u; };
  qs::MixedRadixCosetSampler sampler({1}, label, nullptr);
  Rng rng(5);
  const auto res = solve_abelian_hsp(sampler, rng);
  EXPECT_EQ(res.subgroup_order, 1u);
}

}  // namespace
}  // namespace nahsp::hsp
