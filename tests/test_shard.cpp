// Shard-merge determinism: a fleet partitioned over any shard count and
// run at any fan-out width must merge back to exactly the report a
// single-process solve_hsp_batch produces — per-item generators, query
// counters, error taxonomy, and verified flags all bit-identical. Also
// locks the fingerprint partition's stability properties, the
// BatchOptions::on_item streaming hook, and SIGKILL fault injection
// (crash_after) with checkpoint-preserving resume, exercised through a
// forked child so the kill never touches the test runner.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/shard.h"
#include "nahsp/hsp/solve.h"

namespace nahsp::hsp {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "nahsp_shard_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A fleet covering all three dispatch routes plus one deterministic
// failure (the qubit backend rejects the non-power-of-two |G| = 3^k
// abelian group), so merge equality is tested for the error fields too.
const std::vector<std::string>& fleet_specs() {
  static const std::vector<std::string> specs = {
      "dihedral n=8",  "elem_abelian2",          "quaternion",
      "gf2affine",     "abelian backend=qubit",  "symmetric",
      "dihedral n=12", "elem_abelian2",  // duplicate of index 1
  };
  return specs;
}

std::vector<BuiltScenario> build_fleet() {
  std::vector<BuiltScenario> fleet;
  for (const std::string& spec : fleet_specs())
    fleet.push_back(build_scenario(spec));
  return fleet;
}

constexpr std::uint64_t kSeed = 11;

// The single-process reference: plain solve_hsp_batch plus the CLI's
// verification pass. Builds its own fleet — instances carry shared
// QueryCounters, so a fleet that already ran would double every count.
struct Reference {
  BatchReport report;
  std::vector<bool> verified;
};

Reference reference_run(int threads) {
  const std::vector<BuiltScenario> fleet = build_fleet();
  std::vector<bb::HspInstance> instances;
  BatchOptions opts;
  opts.base_seed = kSeed;
  opts.threads = threads;
  for (const BuiltScenario& b : fleet) {
    instances.push_back(b.instance);
    opts.per_instance.push_back(b.options);
  }
  Reference ref;
  ref.report = solve_hsp_batch(instances, opts);
  ref.verified.assign(fleet.size(), false);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (!ref.report.items[i].success) continue;
    ref.verified[i] = verify_same_subgroup(
        *fleet[i].instance.group, ref.report.items[i].solution.generators,
        fleet[i].instance.planted_generators);
  }
  return ref;
}

void expect_items_identical(const BatchItemReport& a,
                            const BatchItemReport& b) {
  EXPECT_EQ(a.success, b.success);
  if (a.success && b.success) {
    EXPECT_EQ(a.solution.method, b.solution.method);
    EXPECT_EQ(a.solution.generators, b.solution.generators);
  }
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.error_kind, b.error_kind);
  EXPECT_EQ(a.queries.group_ops, b.queries.group_ops);
  EXPECT_EQ(a.queries.classical_queries, b.queries.classical_queries);
  EXPECT_EQ(a.queries.quantum_queries, b.queries.quantum_queries);
  EXPECT_EQ(a.queries.sim_basis_evals, b.queries.sim_basis_evals);
}

// ------------------------------------------------- merge determinism

class ShardMerge : public ::testing::TestWithParam<
                       std::tuple<std::size_t, int>> {};

TEST_P(ShardMerge, MergedReportMatchesSingleProcessRun) {
  const auto [num_shards, width] = GetParam();
  const std::vector<BuiltScenario> fleet = build_fleet();
  const Reference ref = reference_run(width);

  const std::string dir =
      temp_dir("merge_" + std::to_string(num_shards) + "_" +
               std::to_string(width));
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardRunOptions opts;
    opts.shard = s;
    opts.num_shards = num_shards;
    opts.base_seed = kSeed;
    opts.threads = width;
    opts.checkpoint_dir = dir;
    (void)run_shard(fleet, opts);
  }

  const ShardPlan plan = plan_shards(fleet, num_shards);
  const MergedBatch merged = merge_checkpoints(fleet, plan, dir, nullptr);
  ASSERT_TRUE(merged.complete());
  ASSERT_EQ(merged.report.items.size(), ref.report.items.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i) + " (" + fleet_specs()[i] +
                 ")");
    expect_items_identical(merged.report.items[i], ref.report.items[i]);
    EXPECT_EQ(merged.verified[i], ref.verified[i]);
  }
  EXPECT_EQ(merged.report.solved, ref.report.solved);
  EXPECT_EQ(merged.report.total_queries.group_ops,
            ref.report.total_queries.group_ops);
  EXPECT_EQ(merged.report.total_queries.quantum_queries,
            ref.report.total_queries.quantum_queries);
  // The failing item must have merged as a failure, not been dropped.
  EXPECT_FALSE(merged.report.items[4].success);
  EXPECT_EQ(merged.report.items[4].error_kind, "invalid_argument");
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByWidth, ShardMerge,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) + "_width" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- partition contract

TEST(ShardPlan, PartitionIsAFunctionOfFingerprintNotListOrder) {
  const std::vector<BuiltScenario> fleet = build_fleet();
  const ShardPlan plan = plan_shards(fleet, 4);
  ASSERT_EQ(plan.shard_of_item.size(), fleet.size());

  // Reversing the fleet must assign every instance the same shard.
  std::vector<BuiltScenario> reversed;
  for (auto it = fleet_specs().rbegin(); it != fleet_specs().rend(); ++it)
    reversed.push_back(build_scenario(*it));
  const ShardPlan rplan = plan_shards(reversed, 4);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(plan.shard_of_item[i],
              rplan.shard_of_item[fleet.size() - 1 - i])
        << "spec " << fleet_specs()[i];
  }

  // Duplicate instances (equal fingerprints) always co-locate.
  EXPECT_EQ(plan.fingerprints[1], plan.fingerprints[7]);
  EXPECT_EQ(plan.shard_of_item[1], plan.shard_of_item[7]);

  // items_of_shard is the inverse mapping, ascending and exhaustive.
  std::size_t total = 0;
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    for (std::size_t k = 0; k < plan.items_of_shard[s].size(); ++k) {
      const std::size_t g = plan.items_of_shard[s][k];
      EXPECT_EQ(plan.shard_of_item[g], s);
      if (k > 0) {
        EXPECT_LT(plan.items_of_shard[s][k - 1], g);
      }
    }
    total += plan.items_of_shard[s].size();
  }
  EXPECT_EQ(total, fleet.size());
}

// ------------------------------------------------------ streaming hook

TEST(BatchOnItem, FiresOncePerInstanceWithFinalReports) {
  const std::vector<BuiltScenario> fleet = build_fleet();
  std::vector<bb::HspInstance> instances;
  BatchOptions opts;
  opts.base_seed = kSeed;
  opts.threads = 4;
  for (const BuiltScenario& b : fleet) {
    instances.push_back(b.instance);
    opts.per_instance.push_back(b.options);
  }
  std::mutex mu;
  std::map<std::size_t, BatchItemReport> streamed;
  opts.on_item = [&](std::size_t index, const BatchItemReport& item) {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(streamed.count(index), 0u);  // exactly once per instance
    streamed[index] = item;
  };
  const BatchReport report = solve_hsp_batch(instances, opts);
  ASSERT_EQ(streamed.size(), fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i));
    expect_items_identical(streamed.at(i), report.items[i]);
  }
}

// ------------------------------------------------------ fault injection

TEST(ShardCrash, SigkillAfterKItemsLeavesKDurableRecordsThenResumes) {
  const std::vector<BuiltScenario> fleet = build_fleet();
  const std::string dir = temp_dir("crash");
  ShardRunOptions opts;
  opts.shard = 0;
  opts.num_shards = 1;
  opts.base_seed = kSeed;
  // Width 1 gives the batch a private, freshly spawned pool: the forked
  // child must not touch the global pool, whose worker threads do not
  // survive fork().
  opts.threads = 1;
  opts.checkpoint_dir = dir;

  // The kill happens in a forked child: run_shard raises SIGKILL on the
  // worker the instant the second record's fdatasync returns.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    opts.crash_after = 2;
    (void)run_shard(fleet, opts);
    _exit(0);  // unreachable: the hook kills the process first
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const std::string path = dir + "/" + shard_checkpoint_filename(0, 1);
  const ShardCheckpoint durable = load_checkpoint_file(path, nullptr);
  EXPECT_EQ(durable.records.size(), 2u);

  // Resume in-process: the two durable items are reused, the rest run,
  // and the merged result equals the uninterrupted reference.
  const ShardRunResult resumed = run_shard(fleet, opts);
  EXPECT_EQ(resumed.reused, 2u);
  EXPECT_EQ(resumed.ran, fleet.size() - 2u);

  const Reference ref = reference_run(1);
  const ShardPlan plan = plan_shards(fleet, 1);
  const MergedBatch merged = merge_checkpoints(fleet, plan, dir, nullptr);
  ASSERT_TRUE(merged.complete());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i));
    expect_items_identical(merged.report.items[i], ref.report.items[i]);
    EXPECT_EQ(merged.verified[i], ref.verified[i]);
  }
}

}  // namespace
}  // namespace nahsp::hsp
