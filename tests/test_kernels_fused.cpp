// Equivalence suite for the fused-kernel statevector engine.
//
// The engine rewrote every amplitude kernel (pair-representative
// iteration, fused QFT stages, table-driven oracles, parallel
// measurement builds); this file locks it to its oracles:
//  - pair/quad gate kernels vs a dense full-sweep reference applied
//    per gate (random circuits),
//  - the fused QFT engine vs the legacy gate-by-gate ladder across
//    registers, inverses, and approx cutoffs (max |delta amp| <= 1e-12),
//  - table-driven oracles vs their std::function twins (bitwise),
//  - measurement builds across thread widths (bitwise),
//  - a pinned-seed end-to-end sampler run under both engines.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "nahsp/common/parallel.h"
#include "nahsp/common/rng.h"
#include "nahsp/qsim/qft.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {
namespace {

double max_amp_delta(const StateVector& a, const StateVector& b) {
  double m = 0.0;
  for (u64 i = 0; i < a.dim(); ++i)
    m = std::max(m, std::abs(a.amp(i) - b.amp(i)));
  return m;
}

StateVector random_state(int n, Rng& rng) {
  StateVector sv(n);
  double norm = 0.0;
  std::vector<cplx> amps(sv.dim());
  for (auto& a : amps) {
    a = cplx{rng.uniform01() - 0.5, rng.uniform01() - 0.5};
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (u64 i = 0; i < sv.dim(); ++i) sv.set_amp(i, amps[i] * s);
  return sv;
}

// ---------------------------------------------------------------------
// Pair/quad gate kernels vs a dense reference that sweeps all 2^n
// indices per gate (the pre-fusion kernel shape).
// ---------------------------------------------------------------------

struct DenseReference {
  std::vector<cplx> a;

  explicit DenseReference(const StateVector& sv)
      : a(sv.amplitudes()) {}

  void h(int q) {
    const u64 bit = u64{1} << q;
    const double s = 1.0 / std::numbers::sqrt2;
    for (u64 i = 0; i < a.size(); ++i) {
      if (i & bit) continue;
      const cplx a0 = a[i], a1 = a[i | bit];
      a[i] = (a0 + a1) * s;
      a[i | bit] = (a0 - a1) * s;
    }
  }
  void x(int q) {
    const u64 bit = u64{1} << q;
    for (u64 i = 0; i < a.size(); ++i)
      if (!(i & bit)) std::swap(a[i], a[i | bit]);
  }
  void phase(int q, double theta) {
    const u64 bit = u64{1} << q;
    const cplx w = std::polar(1.0, theta);
    for (u64 i = 0; i < a.size(); ++i)
      if (i & bit) a[i] *= w;
  }
  void cphase(int c, int t, double theta) {
    const u64 mask = (u64{1} << c) | (u64{1} << t);
    const cplx w = std::polar(1.0, theta);
    for (u64 i = 0; i < a.size(); ++i)
      if ((i & mask) == mask) a[i] *= w;
  }
  void cnot(int c, int t) {
    const u64 cbit = u64{1} << c, tbit = u64{1} << t;
    for (u64 i = 0; i < a.size(); ++i)
      if ((i & cbit) && !(i & tbit)) std::swap(a[i], a[i | tbit]);
  }
  void swap_q(int p, int q) {
    const u64 pbit = u64{1} << p, qbit = u64{1} << q;
    for (u64 i = 0; i < a.size(); ++i)
      if ((i & pbit) && !(i & qbit)) std::swap(a[i], a[(i & ~pbit) | qbit]);
  }

  double max_delta(const StateVector& sv) const {
    double m = 0.0;
    for (u64 i = 0; i < a.size(); ++i)
      m = std::max(m, std::abs(a[i] - sv.amp(i)));
    return m;
  }
};

TEST(PairKernels, RandomCircuitsMatchDenseReference) {
  Rng rng(20260501);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.below(4));  // 3..6 qubits
    StateVector sv = random_state(n, rng);
    DenseReference ref(sv);
    for (int step = 0; step < 40; ++step) {
      const int q = static_cast<int>(rng.below(static_cast<u64>(n)));
      int r = static_cast<int>(rng.below(static_cast<u64>(n)));
      if (r == q) r = (r + 1) % n;
      const double theta = (rng.uniform01() - 0.5) * 4.0 * std::numbers::pi;
      switch (rng.below(6)) {
        case 0: sv.apply_h(q); ref.h(q); break;
        case 1: sv.apply_x(q); ref.x(q); break;
        case 2: sv.apply_phase(q, theta); ref.phase(q, theta); break;
        case 3: sv.apply_cphase(q, r, theta); ref.cphase(q, r, theta); break;
        case 4: sv.apply_cnot(q, r); ref.cnot(q, r); break;
        default: sv.apply_swap(q, r); ref.swap_q(q, r); break;
      }
    }
    EXPECT_LE(ref.max_delta(sv), 1e-12) << "trial " << trial;
  }
}

TEST(PairKernels, ChunkedRegimeMatchesDenseReference) {
  // 16 qubits = 2^16 amplitudes: several grain-sized chunks, so the
  // pair/quad sweeps genuinely split. High and low qubit indices land
  // pairs within and across chunk boundaries.
  Rng rng(20260502);
  StateVector sv = random_state(16, rng);
  DenseReference ref(sv);
  for (const int q : {0, 7, 15}) {
    sv.apply_h(q);
    ref.h(q);
  }
  sv.apply_cnot(15, 0);
  ref.cnot(15, 0);
  sv.apply_cphase(3, 14, 1.25);
  ref.cphase(3, 14, 1.25);
  sv.apply_swap(1, 13);
  ref.swap_q(1, 13);
  EXPECT_LE(ref.max_delta(sv), 1e-12);
}

// ---------------------------------------------------------------------
// Fused QFT engine vs the legacy gate ladder.
// ---------------------------------------------------------------------

TEST(FusedQft, MatchesGateLadderOnRandomStates) {
  Rng rng(20260503);
  for (int bits = 1; bits <= 10; ++bits) {
    StateVector fused = random_state(bits, rng);
    StateVector gates = fused;
    apply_qft_fused(fused, 0, bits);
    apply_qft_gates(gates, 0, bits);
    EXPECT_LE(max_amp_delta(fused, gates), 1e-12) << "bits=" << bits;
  }
}

TEST(FusedQft, InverseMatchesGateLadder) {
  Rng rng(20260504);
  for (int bits = 1; bits <= 10; ++bits) {
    StateVector fused = random_state(bits, rng);
    StateVector gates = fused;
    apply_inverse_qft_fused(fused, 0, bits);
    apply_inverse_qft_gates(gates, 0, bits);
    EXPECT_LE(max_amp_delta(fused, gates), 1e-12) << "bits=" << bits;
  }
}

TEST(FusedQft, SubRegisterMatchesGateLadder) {
  Rng rng(20260505);
  StateVector fused = random_state(9, rng);
  StateVector gates = fused;
  apply_qft_fused(fused, 2, 5);
  apply_qft_gates(gates, 2, 5);
  EXPECT_LE(max_amp_delta(fused, gates), 1e-12);
  apply_inverse_qft_fused(fused, 3, 4);
  apply_inverse_qft_gates(gates, 3, 4);
  EXPECT_LE(max_amp_delta(fused, gates), 1e-12);
}

TEST(FusedQft, ApproxCutoffMatchesGateLadder) {
  Rng rng(20260506);
  for (const int cutoff : {1, 2, 3, 5, 7, 9}) {
    StateVector fused = random_state(8, rng);
    StateVector gates = fused;
    apply_qft_fused(fused, 0, 8, cutoff);
    apply_qft_gates(gates, 0, 8, cutoff);
    EXPECT_LE(max_amp_delta(fused, gates), 1e-12) << "cutoff=" << cutoff;
    apply_inverse_qft_fused(fused, 0, 8, cutoff);
    apply_inverse_qft_gates(gates, 0, 8, cutoff);
    EXPECT_LE(max_amp_delta(fused, gates), 1e-12) << "cutoff=" << cutoff;
  }
}

TEST(FusedQft, RoundTripIsIdentity) {
  Rng rng(20260507);
  StateVector sv = random_state(9, rng);
  const StateVector before = sv;
  apply_qft_fused(sv, 0, 9);
  apply_inverse_qft_fused(sv, 0, 9);
  EXPECT_LE(max_amp_delta(sv, before), 1e-9);
}

TEST(FusedQft, ChunkedRegimeMatchesGateLadder) {
  // 2^17 amplitudes: the fused stage, reversal, and ladder sweeps all
  // run genuinely chunked over the pool.
  Rng rng(20260508);
  StateVector fused = random_state(17, rng);
  StateVector gates = fused;
  apply_qft_fused(fused, 0, 17);
  apply_qft_gates(gates, 0, 17);
  EXPECT_LE(max_amp_delta(fused, gates), 1e-12);
}

TEST(FusedQft, EngineFlagSelectsImplementation) {
  const QftEngine before = qft_engine();
  Rng rng(20260509);
  const StateVector init = random_state(7, rng);

  set_qft_engine(QftEngine::kGates);
  StateVector via_dispatch = init;
  apply_qft(via_dispatch, 0, 7);
  StateVector direct = init;
  apply_qft_gates(direct, 0, 7);
  EXPECT_EQ(via_dispatch.amplitudes(), direct.amplitudes());

  set_qft_engine(QftEngine::kFused);
  StateVector via_dispatch2 = init;
  apply_qft(via_dispatch2, 0, 7);
  StateVector direct2 = init;
  apply_qft_fused(direct2, 0, 7);
  EXPECT_EQ(via_dispatch2.amplitudes(), direct2.amplitudes());

  set_qft_engine(before);
}

TEST(FusedQft, ReverseQubitOrderMatchesSwapNetwork) {
  Rng rng(20260510);
  for (const int bits : {1, 2, 5, 6}) {
    StateVector a = random_state(8, rng);
    StateVector b = a;
    a.reverse_qubit_order(1, bits);
    for (int i = 0; i < bits / 2; ++i) b.apply_swap(1 + i, 1 + bits - 1 - i);
    EXPECT_EQ(a.amplitudes(), b.amplitudes()) << "bits=" << bits;
  }
}

// ---------------------------------------------------------------------
// Table-driven oracles vs their std::function twins (bitwise: the
// kernels perform identical arithmetic).
// ---------------------------------------------------------------------

TEST(OracleTables, XorTableMatchesFunctionBitwise) {
  Rng rng(20260511);
  StateVector via_fn = random_state(10, rng);
  StateVector via_table = via_fn;
  const auto f = [](u64 x) { return (x * 5 + 3) % 16; };
  std::vector<u64> table(std::size_t{1} << 6);
  for (u64 x = 0; x < table.size(); ++x) table[x] = f(x);
  via_fn.apply_xor_function(0, 6, 6, 4, f);
  via_table.apply_xor_function(0, 6, 6, 4, table);
  EXPECT_EQ(via_fn.amplitudes(), via_table.amplitudes());
}

TEST(OracleTables, XorTableIsInvolution) {
  Rng rng(20260512);
  StateVector sv = random_state(8, rng);
  const StateVector before = sv;
  std::vector<u64> table(std::size_t{1} << 4);
  for (u64 x = 0; x < table.size(); ++x) table[x] = (x * x + 1) % 16;
  sv.apply_xor_function(0, 4, 4, 4, table);
  sv.apply_xor_function(0, 4, 4, 4, table);
  EXPECT_EQ(sv.amplitudes(), before.amplitudes());
}

TEST(OracleTables, XorTableSizeMismatchThrows) {
  StateVector sv(4);
  EXPECT_THROW(sv.apply_xor_function(0, 2, 2, 2, std::vector<u64>{0, 1}),
               std::invalid_argument);
}

TEST(OracleTables, PermutationTableMatchesFunctionBitwise) {
  Rng rng(20260513);
  StateVector via_fn = random_state(9, rng);
  StateVector via_table = via_fn;
  const u64 n = via_fn.dim();
  const auto pi = [n](u64 s) { return (s + 37) % n; };
  std::vector<u64> table(n);
  for (u64 s = 0; s < n; ++s) table[s] = pi(s);
  via_fn.apply_permutation(pi);
  via_table.apply_permutation(table);
  EXPECT_EQ(via_fn.amplitudes(), via_table.amplitudes());
}

TEST(OracleTables, PermutationTableSizeMismatchThrows) {
  StateVector sv(4);
  EXPECT_THROW(sv.apply_permutation(std::vector<u64>{0, 1, 2}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Parallel measurement builds: identical outcomes and post-states at
// every thread width, for aligned and offset registers.
// ---------------------------------------------------------------------

TEST(ParallelMeasure, MeasureRangeIsWidthInvariant) {
  for (const int lo : {0, 5, 11}) {
    const int before = parallelism();
    std::vector<u64> outcomes;
    std::vector<std::vector<cplx>> states;
    for (const int width : {1, 4}) {
      set_parallelism(width);
      StateVector sv(16);
      for (int q = 0; q < 16; ++q) sv.apply_h(q);
      sv.apply_xor_function(0, 5, 5, 5, [](u64 x) { return x * 7; });
      Rng rng(991);
      outcomes.push_back(sv.measure_range(lo, 5, rng));
      states.push_back(sv.amplitudes());
    }
    set_parallelism(before);
    EXPECT_EQ(outcomes[0], outcomes[1]) << "lo=" << lo;
    EXPECT_EQ(states[0], states[1]) << "lo=" << lo;
  }
}

TEST(ParallelMeasure, MarginalHistogramMatchesRangeProbability) {
  Rng rng(20260514);
  StateVector sv = random_state(15, rng);
  // Measure with a pinned target and cross-check the collapsed
  // outcome's probability against range_probability.
  Rng mrng(7);
  StateVector copy = sv;
  const u64 outcome = copy.measure_range(4, 6, mrng);
  const double p = sv.range_probability(4, 6, outcome);
  EXPECT_GT(p, 0.0);
  EXPECT_NEAR(copy.norm2(), 1.0, 1e-9);
}

TEST(ParallelMeasure, SampleIsWidthInvariant) {
  const int before = parallelism();
  std::vector<u64> outcomes;
  for (const int width : {1, 4}) {
    set_parallelism(width);
    StateVector sv(16);
    for (int q = 0; q < 16; ++q) sv.apply_h(q);
    apply_qft(sv, 0, 8);
    Rng rng(1234);
    outcomes.push_back(sv.sample(rng));
  }
  set_parallelism(before);
  EXPECT_EQ(outcomes[0], outcomes[1]);
}

// ---------------------------------------------------------------------
// End-to-end: the qubit sampler's cached distribution under both
// engines produces the same pinned-seed character stream (the engines
// agree to ~1e-15 per amplitude, far below any outcome boundary).
// ---------------------------------------------------------------------

TEST(EndToEnd, QubitSamplerStreamsAgreeAcrossEngines) {
  const QftEngine before = qft_engine();
  std::vector<std::vector<la::AbVec>> streams;
  for (const QftEngine engine : {QftEngine::kFused, QftEngine::kGates}) {
    set_qft_engine(engine);
    QubitCosetSampler s(
        {64}, [](const la::AbVec& x) { return x[0] % 8; }, nullptr);
    Rng rng(424242);
    streams.push_back(s.sample_characters(rng, 32));
  }
  set_qft_engine(before);
  EXPECT_EQ(streams[0], streams[1]);
}

TEST(EndToEnd, QubitScalarRoundsAgreeAcrossEngines) {
  const QftEngine before = qft_engine();
  std::vector<std::vector<la::AbVec>> streams;
  for (const QftEngine engine : {QftEngine::kFused, QftEngine::kGates}) {
    set_qft_engine(engine);
    QubitCosetSampler s(
        {16, 4}, [](const la::AbVec& x) { return (x[0] % 4) * 2 + (x[1] % 2); },
        nullptr);
    Rng rng(31337);
    std::vector<la::AbVec> out;
    for (int i = 0; i < 12; ++i) out.push_back(s.sample_character(rng));
    streams.push_back(out);
  }
  set_qft_engine(before);
  EXPECT_EQ(streams[0], streams[1]);
}

}  // namespace
}  // namespace nahsp::qs
