// Randomized cross-validation: random hidden subgroups across the whole
// group zoo, solved by the applicable paper algorithm and cross-checked
// against the classical brute-force baseline on every instance.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/groups/quaternion.h"
#include "nahsp/groups/quotient.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/solve.h"
#include "test_seeds.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

std::vector<Code> random_subgroup_gens(const grp::Group& g, Rng& rng,
                                       int count) {
  std::vector<Code> gens;
  for (int i = 0; i < count; ++i)
    gens.push_back(grp::random_word_element(g, g.generators(), rng));
  return gens;
}

struct FuzzCase {
  std::string label;
  std::shared_ptr<const grp::Group> group;
  AutoOptions opts;
};

std::vector<FuzzCase> fuzz_zoo() {
  std::vector<FuzzCase> zoo;
  {
    FuzzCase c;
    c.label = "Heis_3_1";
    c.group = std::make_shared<grp::HeisenbergGroup>(3, 1);
    c.opts.order_bound = 27;
    zoo.push_back(std::move(c));
  }
  {
    FuzzCase c;
    c.label = "Heis_2_2";
    c.group = std::make_shared<grp::HeisenbergGroup>(2, 2);
    c.opts.order_bound = 32;
    zoo.push_back(std::move(c));
  }
  {
    FuzzCase c;
    c.label = "Q16";
    c.group = std::make_shared<grp::QuaternionGroup>(16);
    c.opts.order_bound = 16;
    zoo.push_back(std::move(c));
  }
  {
    FuzzCase c;
    c.label = "D8";
    c.group = std::make_shared<grp::DihedralGroup>(8);
    c.opts.order_bound = 16;
    zoo.push_back(std::move(c));
  }
  {
    FuzzCase c;
    c.label = "Wreath2";
    auto w = grp::wreath_z2k_z2(2);
    c.group = w;
    c.opts.order_bound = 2;
    c.opts.elem_abelian_2_subgroup = w->normal_subgroup_generators();
    c.opts.elem_abelian_2_options.n_membership = [w](Code x) {
      return w->rot_of(x) == 0;
    };
    c.opts.elem_abelian_2_options.coset_label = [w](Code x) {
      return w->rot_of(x);
    };
    c.opts.elem_abelian_2_options.assume_cyclic_factor = true;
    c.opts.elem_abelian_2_options.factor_order_bound = 2;
    zoo.push_back(std::move(c));
  }
  {
    FuzzCase c;
    c.label = "PaperMat3";
    auto g = grp::paper_matrix_group(grp::GF2Mat::companion(3, 0b011));
    c.group = g;
    c.opts.elem_abelian_2_subgroup = g->normal_subgroup_generators();
    c.opts.elem_abelian_2_options.n_membership = [g](Code x) {
      return g->rot_of(x) == 0;
    };
    c.opts.elem_abelian_2_options.coset_label = [g](Code x) {
      return g->rot_of(x);
    };
    c.opts.elem_abelian_2_options.assume_cyclic_factor = true;
    c.opts.elem_abelian_2_options.factor_order_bound = 7;
    zoo.push_back(std::move(c));
  }
  return zoo;
}

class Fuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(Fuzz, AutoSolveMatchesBruteForceOnRandomSubgroups) {
  const FuzzCase& c = GetParam();
  Rng rng(test_seeds::kFuzzZooBase + std::hash<std::string>{}(c.label));
  for (int trial = 0; trial < 6; ++trial) {
    const int ngens = 1 + static_cast<int>(rng.below(2));
    const auto planted = random_subgroup_gens(*c.group, rng, ngens);
    const auto inst = bb::make_instance(c.group, planted);
    ASSERT_TRUE(validate_hiding_promise(*c.group, *inst.f, planted))
        << c.label;
    const auto quantum = solve_hsp(*inst.bb, *inst.f, rng, c.opts);
    const auto brute = classical_bruteforce_hsp(*inst.bb, *inst.f);
    EXPECT_TRUE(verify_same_subgroup(*c.group, quantum.generators, brute))
        << c.label << " trial " << trial << " via "
        << method_name(quantum.method);
    EXPECT_TRUE(
        verify_same_subgroup(*c.group, quantum.generators, planted))
        << c.label << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, Fuzz, ::testing::ValuesIn(fuzz_zoo()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.label;
    });

// Spec-string fuzz over the generator-backed scenario families: draw
// every declared parameter uniformly from its declared range, render the
// spec exactly as a user would type it, and require the built instance
// to (a) rebuild identically (construction determinism) and (b) solve to
// its planted subgroup. The adversarial family is exercised separately
// (its modes 2/3 break the hiding promise on purpose); here we fuzz the
// honest generator families.
TEST(FuzzGeneratorSpecs, RandomInRangeSpecsBuildDeterministicallyAndSolve) {
  Rng rng(test_seeds::kGenFuzzSpec);
  const char* families[] = {"random_abelian", "random_normal", "tower"};
  for (const char* name : families) {
    const ScenarioFamily& fam = scenario_family_or_throw(name);
    for (int trial = 0; trial < 4; ++trial) {
      std::string spec = fam.name;
      for (const ScenarioParam& p : fam.params) {
        const u64 span = p.max - p.min + 1;  // 0 means the full u64 range
        const u64 v = span == 0 ? rng() : p.min + rng.below(span);
        spec += " " + p.key + "=" + std::to_string(v);
      }
      SCOPED_TRACE(spec);
      BuiltScenario built = build_scenario(spec);
      BuiltScenario again = build_scenario(spec);
      ASSERT_EQ(built.group_order, again.group_order);
      ASSERT_EQ(built.instance.planted_generators,
                again.instance.planted_generators);
      Rng solver(test_seeds::kGenFuzzSpec + 1 + trial);
      const auto result =
          solve_hsp(*built.instance.bb, *built.instance.f, solver,
                    built.options);
      EXPECT_TRUE(verify_same_subgroup(*built.instance.group,
                                       result.generators,
                                       built.instance.planted_generators))
          << "via " << method_name(result.method);
    }
  }
}

TEST(FuzzFactorOrder, MatchesQuotientBruteForce) {
  // Theorem 10 order finding vs direct factor-group iteration, across
  // random elements and several (group, N) pairs.
  Rng rng(test_seeds::kFuzzFactorOrderQuotient);
  // D_24 mod <x^8> (order-3 normal subgroup; factor D_8-like of order 16).
  auto d = std::make_shared<grp::DihedralGroup>(24);
  const auto inst = bb::make_instance(d, {});
  const std::vector<Code> n_gens{d->make(8, false)};
  auto in_n = [d](Code c) {
    return !d->reflection_of(c) && d->rotation_of(c) % 8 == 0;
  };
  auto view = std::make_shared<grp::QuotientView>(d, in_n);
  FactorOrderOptions opts;
  opts.order_bound = 48;
  for (int trial = 0; trial < 12; ++trial) {
    const Code x = grp::random_word_element(*d, d->generators(), rng);
    const u64 expect = view->element_order_bruteforce(x);
    EXPECT_EQ(find_factor_order(*inst.bb, n_gens, x, rng, opts), expect)
        << grp::perm_to_string({});  // context string unused; keep x info
  }
}

TEST(FuzzFactorOrder, HeisenbergModCentre) {
  Rng rng(test_seeds::kFuzzFactorOrderHeisenberg);
  auto h = std::make_shared<grp::HeisenbergGroup>(5, 1);
  const auto inst = bb::make_instance(h, {});
  const std::vector<Code> n_gens{h->central_generator()};
  FactorOrderOptions opts;
  opts.order_bound = 5;
  for (int trial = 0; trial < 8; ++trial) {
    const Code x = grp::random_word_element(*h, h->generators(), rng);
    // G/Z is elementary Abelian of exponent 5: order is 1 or 5.
    const bool central = h->a_digit(x, 0) == 0 && h->b_digit(x, 0) == 0;
    EXPECT_EQ(find_factor_order(*inst.bb, n_gens, x, rng, opts),
              central ? 1u : 5u);
  }
}

TEST(FuzzFactorOrder, FastCosetLabelOverrideAgrees) {
  Rng rng(test_seeds::kFuzzFactorOrderCosetLabel);
  auto w = grp::wreath_z2k_z2(3);
  const auto inst = bb::make_instance(w, {});
  FactorOrderOptions slow;
  slow.order_bound = 2;
  FactorOrderOptions fast = slow;
  fast.coset_label = [w](Code c) { return w->rot_of(c); };
  for (int trial = 0; trial < 6; ++trial) {
    const Code x = grp::random_word_element(*w, w->generators(), rng);
    EXPECT_EQ(
        find_factor_order(*inst.bb, w->normal_subgroup_generators(), x, rng,
                          slow),
        find_factor_order(*inst.bb, w->normal_subgroup_generators(), x, rng,
                          fast));
  }
}

}  // namespace
}  // namespace nahsp::hsp
