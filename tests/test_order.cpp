// Tests for quantum order finding (Shor circuit + continued fractions,
// and the known-multiple period-finding variant).
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/order.h"
#include "nahsp/numtheory/arith.h"

namespace nahsp::hsp {
namespace {

TEST(ShorOrder, CyclicGroupElements) {
  Rng rng(1);
  auto z = std::make_shared<grp::CyclicGroup>(60);
  const auto inst = bb::make_instance(z, {});
  for (const u64 g : {1ULL, 2ULL, 5ULL, 6ULL, 12ULL, 30ULL, 59ULL}) {
    const u64 expect = 60 / nt::gcd(60, g);
    EXPECT_EQ(find_order_shor(*inst.bb, g, 60, rng), expect) << g;
  }
}

TEST(ShorOrder, IdentityHasOrderOne) {
  Rng rng(2);
  auto z = std::make_shared<grp::CyclicGroup>(15);
  const auto inst = bb::make_instance(z, {});
  EXPECT_EQ(find_order_shor(*inst.bb, 0, 15, rng), 1u);
}

TEST(ShorOrder, DihedralElements) {
  Rng rng(3);
  auto d = std::make_shared<grp::DihedralGroup>(21);
  const auto inst = bb::make_instance(d, {});
  EXPECT_EQ(find_order_shor(*inst.bb, d->make(1, false), 42, rng), 21u);
  EXPECT_EQ(find_order_shor(*inst.bb, d->make(3, false), 42, rng), 7u);
  EXPECT_EQ(find_order_shor(*inst.bb, d->make(5, true), 42, rng), 2u);
}

TEST(ShorOrder, HeisenbergElements) {
  Rng rng(4);
  auto h = std::make_shared<grp::HeisenbergGroup>(5, 1);
  const auto inst = bb::make_instance(h, {});
  // Exponent-p group: every non-identity element has order 5.
  EXPECT_EQ(find_order_shor(*inst.bb, h->central_generator(), 125, rng), 5u);
  EXPECT_EQ(find_order_shor(*inst.bb, h->make({1}, {1}, 2), 125, rng), 5u);
}

TEST(ShorOrder, QubitCircuitBackend) {
  Rng rng(5);
  auto z = std::make_shared<grp::CyclicGroup>(15);
  const auto inst = bb::make_instance(z, {});
  ShorOptions opts;
  opts.use_qubit_circuit = true;
  EXPECT_EQ(find_order_shor(*inst.bb, 1, 15, rng, opts), 15u);
  EXPECT_EQ(find_order_shor(*inst.bb, 5, 15, rng, opts), 3u);
}

TEST(ShorOrder, ApproximateQftStillWorks) {
  Rng rng(6);
  auto z = std::make_shared<grp::CyclicGroup>(12);
  const auto inst = bb::make_instance(z, {});
  ShorOptions opts;
  opts.use_qubit_circuit = true;
  opts.approx_cutoff = 4;  // drop distant rotations
  EXPECT_EQ(find_order_shor(*inst.bb, 1, 12, rng, opts), 12u);
}

TEST(ShorOrder, SweepAgainstBruteForce) {
  Rng rng(7);
  auto z = std::make_shared<grp::CyclicGroup>(100);
  const auto inst = bb::make_instance(z, {});
  for (u64 g = 1; g < 100; g += 7) {
    const u64 brute = z->element_order_bruteforce(g);
    EXPECT_EQ(find_order_shor(*inst.bb, g, 100, rng), brute) << g;
  }
}

TEST(ShorOrder, CountsQuantumQueries) {
  Rng rng(8);
  auto z = std::make_shared<grp::CyclicGroup>(16);
  const auto inst = bb::make_instance(z, {});
  inst.counter->reset();
  (void)find_order_shor(*inst.bb, 1, 16, rng);
  EXPECT_GT(inst.counter->quantum_queries, 0u);
}

TEST(OrderViaMultiple, RecoversDivisors) {
  Rng rng(9);
  // Element of order 6 inside Z_24 (element 4).
  auto z = std::make_shared<grp::CyclicGroup>(24);
  auto power_label = [&z](u64 k) -> u64 { return z->pow(4, k); };
  EXPECT_EQ(find_order_via_multiple(24, power_label, rng, nullptr), 6u);
}

TEST(OrderViaMultiple, OrderOneAndFull) {
  Rng rng(10);
  auto z = std::make_shared<grp::CyclicGroup>(12);
  auto id_label = [&z](u64 k) -> u64 { return z->pow(0, k); };
  EXPECT_EQ(find_order_via_multiple(12, id_label, rng, nullptr), 1u);
  auto gen_label = [&z](u64 k) -> u64 { return z->pow(1, k); };
  EXPECT_EQ(find_order_via_multiple(12, gen_label, rng, nullptr), 12u);
}

TEST(OrderViaMultiple, SecondaryEncoding) {
  Rng rng(11);
  // Order of x modulo <x^4> in Z_12: labels identify cosets of <4>...
  // i.e. k -> (k mod 4) as the coset label of x^k.
  auto power_label = [](u64 k) -> u64 { return k % 4; };
  EXPECT_EQ(find_order_via_multiple(12, power_label, rng, nullptr), 4u);
}

}  // namespace
}  // namespace nahsp::hsp
