// Cross-module integration tests: full theorem pipelines on the paper's
// marquee instances, with promise validation and query accounting.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"
#include "nahsp/hsp/baseline.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"
#include "nahsp/hsp/small_commutator.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(Integration, ExtraspecialPipelineAgreesWithBruteForce) {
  Rng rng(1);
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Code> gens{
        grp::random_word_element(*h, h->generators(), rng)};
    const auto inst = bb::make_instance(h, gens);
    ASSERT_TRUE(validate_hiding_promise(*h, *inst.f, gens));
    SmallCommutatorOptions opts;
    opts.order_bound = 27;
    const auto quantum =
        solve_hsp_small_commutator(*inst.bb, *inst.f, rng, opts);
    const auto brute = classical_bruteforce_hsp(*inst.bb, *inst.f);
    EXPECT_TRUE(verify_same_subgroup(*h, quantum.generators, brute));
  }
}

TEST(Integration, WreathPipelineAgreesWithBruteForce) {
  Rng rng(2);
  auto w = grp::wreath_z2k_z2(2);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Code> gens{
        grp::random_word_element(*w, w->generators(), rng),
        grp::random_word_element(*w, w->generators(), rng)};
    const auto inst = bb::make_instance(w, gens);
    ElemAbelian2Options opts;
    opts.assume_cyclic_factor = true;
    opts.factor_order_bound = 2;
    opts.n_membership = [w](Code c) { return w->rot_of(c) == 0; };
    opts.coset_label = [w](Code c) { return w->rot_of(c); };
    const auto quantum = solve_hsp_elem_abelian2(
        *inst.bb, w->normal_subgroup_generators(), *inst.f, rng, opts);
    const auto brute = classical_bruteforce_hsp(*inst.bb, *inst.f);
    EXPECT_TRUE(verify_same_subgroup(*w, quantum.generators, brute));
  }
}

TEST(Integration, NormalHspOnAllNormalSubgroupsOfS4) {
  Rng rng(3);
  auto s4 = grp::symmetric_group(4);
  // The normal subgroups of S4: 1, V4, A4, S4.
  std::vector<std::vector<Code>> normals;
  normals.push_back({});
  normals.push_back({s4->encode(grp::perm_from_cycles(4, {{0, 1}, {2, 3}})),
                     s4->encode(grp::perm_from_cycles(4, {{0, 2}, {1, 3}}))});
  {
    std::vector<Code> a4;
    for (int i = 2; i < 4; ++i)
      a4.push_back(s4->encode(grp::perm_from_cycles(4, {{0, 1, i}})));
    normals.push_back(a4);
  }
  normals.push_back(s4->generators());
  for (const auto& planted : normals) {
    const auto inst = bb::make_perm_instance(s4, planted);
    NormalHspOptions opts;
    opts.order_bound = 24;
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    EXPECT_TRUE(
        verify_same_subgroup(*s4, res.generators, inst.planted_generators));
  }
}

TEST(Integration, QuantumBeatsClassicalOnQueries) {
  // On the Heisenberg hidden-centre instance the quantum pipeline's
  // classical queries are sublinear in |G| while brute force pays |G|.
  Rng rng(4);
  auto h = std::make_shared<grp::HeisenbergGroup>(7, 1);  // |G| = 343
  const auto quantum_inst = bb::make_instance(h, {h->central_generator()});
  NormalHspOptions opts;
  opts.order_bound = 7;
  (void)find_hidden_normal_subgroup(*quantum_inst.bb, *quantum_inst.f, rng,
                                    opts);
  const auto brute_inst = bb::make_instance(h, {h->central_generator()});
  (void)classical_bruteforce_hsp(*brute_inst.bb, *brute_inst.f);
  EXPECT_LT(quantum_inst.counter->classical_queries,
            brute_inst.counter->classical_queries / 2);
}

TEST(Integration, PaperSection6MatrixExampleEndToEnd) {
  // The motivating example of Section 6 verbatim: one type-(a) matrix
  // (invertible upper-left block) + type-(b) matrices, hidden subgroup
  // mixing both, solved by the cyclic-factor route.
  Rng rng(5);
  const grp::GF2Mat m = grp::GF2Mat::companion(4, 0b0011);  // x^4+x+1
  ASSERT_EQ(m.mat_order(), 15u);
  auto g = grp::paper_matrix_group(m);
  const std::vector<Code> hidden{g->make(0b1001, 5)};  // order-3 coset part
  const auto inst = bb::make_instance(g, hidden);
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = 15;
  opts.n_membership = [g](Code c) { return g->rot_of(c) == 0; };
  opts.coset_label = [g](Code c) { return g->rot_of(c); };
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
  EXPECT_TRUE(
      verify_same_subgroup(*g, res.generators, inst.planted_generators));
}

TEST(Integration, DeterministicGivenSeed) {
  auto h = std::make_shared<grp::HeisenbergGroup>(3, 1);
  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    const auto inst = bb::make_instance(h, {h->central_generator()});
    NormalHspOptions opts;
    opts.order_bound = 3;
    auto res = find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    std::sort(res.generators.begin(), res.generators.end());
    return res.generators;
  };
  EXPECT_EQ(run(77), run(77));
}

}  // namespace
}  // namespace nahsp::hsp
