// Tests for GF(2) linear algebra.
#include <gtest/gtest.h>

#include "nahsp/common/bits.h"
#include "nahsp/common/rng.h"
#include "nahsp/linalg/gf2.h"

namespace nahsp::la {
namespace {

TEST(BitMatrix, RankBasics) {
  BitMatrix m(3, {0b001, 0b010, 0b100});
  EXPECT_EQ(m.rank(), 3);
  BitMatrix dep(3, {0b011, 0b101, 0b110});  // r3 = r1 ^ r2
  EXPECT_EQ(dep.rank(), 2);
  BitMatrix zero(4, {0, 0});
  EXPECT_EQ(zero.rank(), 0);
}

TEST(BitMatrix, RowSpaceMembership) {
  BitMatrix m(4, {0b0011, 0b0101});
  EXPECT_TRUE(m.in_row_space(0b0110));
  EXPECT_TRUE(m.in_row_space(0));
  EXPECT_FALSE(m.in_row_space(0b1000));
}

TEST(BitMatrix, ExtendBasis) {
  BitMatrix m(4);
  EXPECT_TRUE(m.extend_basis(0b0011));
  EXPECT_TRUE(m.extend_basis(0b0101));
  EXPECT_FALSE(m.extend_basis(0b0110));  // dependent
  EXPECT_TRUE(m.extend_basis(0b1000));
  EXPECT_EQ(m.rank(), 3);
  EXPECT_FALSE(m.extend_basis(0));
}

TEST(BitMatrix, NullSpaceOrthogonality) {
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    const int cols = 1 + static_cast<int>(rng.below(16));
    BitMatrix m(cols);
    const int rows = static_cast<int>(rng.below(6));
    const std::uint64_t mask = cols >= 64 ? ~0ULL : (1ULL << cols) - 1;
    for (int r = 0; r < rows; ++r) m.append_row(rng() & mask);
    const auto ns = m.null_space();
    // rank-nullity
    EXPECT_EQ(static_cast<int>(ns.size()), cols - m.rank());
    for (const auto v : ns) {
      for (std::size_t r = 0; r < m.rows(); ++r) {
        EXPECT_EQ(dot2(m.row(r), v), 0);
      }
    }
    // Null-space vectors are independent.
    BitMatrix nb(cols, ns);
    EXPECT_EQ(nb.rank(), static_cast<int>(ns.size()));
  }
}

TEST(BitMatrix, SolveCombination) {
  BitMatrix m(4, {0b0011, 0b0101, 0b1001});
  const auto sol = m.solve_combination(0b0110);
  ASSERT_TRUE(sol.has_value());
  std::uint64_t acc = 0;
  for (int i = 0; i < 3; ++i)
    if ((*sol >> i) & 1) acc ^= m.row(i);
  EXPECT_EQ(acc, 0b0110u);
  // 0b0111 is outside the row space {0000,0011,0101,1001,0110,1010,1100,1111}.
  EXPECT_FALSE(m.solve_combination(0b0111).has_value());
}

TEST(BitMatrix, SolveCombinationRandomised) {
  Rng rng(23);
  for (int trial = 0; trial < 80; ++trial) {
    const int cols = 2 + static_cast<int>(rng.below(20));
    const std::uint64_t mask = (1ULL << cols) - 1;
    BitMatrix m(cols);
    const int rows = 1 + static_cast<int>(rng.below(8));
    for (int r = 0; r < rows; ++r) m.append_row(rng() & mask);
    // A combination of the rows must always be solvable and verify.
    std::uint64_t target = 0;
    const std::uint64_t coeffs = rng() & ((1ULL << rows) - 1);
    for (int i = 0; i < rows; ++i)
      if ((coeffs >> i) & 1) target ^= m.row(i);
    const auto sol = m.solve_combination(target);
    ASSERT_TRUE(sol.has_value());
    std::uint64_t acc = 0;
    for (int i = 0; i < rows; ++i)
      if ((*sol >> i) & 1) acc ^= m.row(i);
    EXPECT_EQ(acc, target);
    // Anything outside the row space must be rejected.
    const std::uint64_t probe = rng() & mask;
    if (!m.in_row_space(probe)) {
      EXPECT_FALSE(m.solve_combination(probe).has_value());
    }
  }
}

}  // namespace
}  // namespace nahsp::la
