// Group-axiom property tests across every concrete group family, plus
// family-specific structure checks.
#include <gtest/gtest.h>

#include <memory>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/cyclic.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/groups/permutation.h"

namespace nahsp::grp {
namespace {

struct GroupCase {
  std::string label;
  std::shared_ptr<const Group> group;
};

std::vector<GroupCase> group_zoo() {
  std::vector<GroupCase> zoo;
  zoo.push_back({"Z_12", std::make_shared<CyclicGroup>(12)});
  zoo.push_back({"Z_1", std::make_shared<CyclicGroup>(1)});
  zoo.push_back({"Z4xZ6", product_of_cyclics({4, 6})});
  zoo.push_back({"Z2^5", elementary_abelian(2, 5)});
  zoo.push_back({"Z3^3", elementary_abelian(3, 3)});
  zoo.push_back({"D_8", std::make_shared<DihedralGroup>(8)});
  zoo.push_back({"D_15", std::make_shared<DihedralGroup>(15)});
  zoo.push_back({"Heis(3,1)", std::make_shared<HeisenbergGroup>(3, 1)});
  zoo.push_back({"Heis(5,1)", std::make_shared<HeisenbergGroup>(5, 1)});
  zoo.push_back({"Heis(2,2)", std::make_shared<HeisenbergGroup>(2, 2)});
  zoo.push_back({"Wreath(2)", wreath_z2k_z2(2)});
  zoo.push_back({"Wreath(3)", wreath_z2k_z2(3)});
  zoo.push_back({"S_4", symmetric_group(4)});
  zoo.push_back({"S_5", symmetric_group(5)});
  zoo.push_back({"A_4", alternating_group(4)});
  {
    // Paper Section 6 family: companion-matrix action of order > 2.
    const GF2Mat m = GF2Mat::companion(3, 0b011);  // x^3 + x + 1, order 7
    zoo.push_back({"PaperMat(3)", paper_matrix_group(m)});
  }
  zoo.push_back({"Semidirect(4,Z2)",
                 std::make_shared<GF2SemidirectCyclic>(
                     4, GF2Mat::block_swap(2), 2)});
  return zoo;
}

class GroupAxioms : public ::testing::TestWithParam<GroupCase> {};

TEST_P(GroupAxioms, IdentityLaws) {
  const Group& g = *GetParam().group;
  Rng rng(1);
  const auto gens = g.generators();
  for (int i = 0; i < 50; ++i) {
    const Code x = random_word_element(g, gens, rng);
    EXPECT_EQ(g.mul(x, g.id()), x);
    EXPECT_EQ(g.mul(g.id(), x), x);
  }
}

TEST_P(GroupAxioms, InverseLaws) {
  const Group& g = *GetParam().group;
  Rng rng(2);
  const auto gens = g.generators();
  for (int i = 0; i < 50; ++i) {
    const Code x = random_word_element(g, gens, rng);
    EXPECT_TRUE(g.is_id(g.mul(x, g.inv(x))));
    EXPECT_TRUE(g.is_id(g.mul(g.inv(x), x)));
    EXPECT_EQ(g.inv(g.inv(x)), x);
  }
}

TEST_P(GroupAxioms, Associativity) {
  const Group& g = *GetParam().group;
  Rng rng(3);
  const auto gens = g.generators();
  for (int i = 0; i < 50; ++i) {
    const Code a = random_word_element(g, gens, rng);
    const Code b = random_word_element(g, gens, rng);
    const Code c = random_word_element(g, gens, rng);
    EXPECT_EQ(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
  }
}

TEST_P(GroupAxioms, GeneratorsGenerateClaimedOrder) {
  const Group& g = *GetParam().group;
  if (g.order() > (1u << 16)) GTEST_SKIP() << "enumeration too large";
  const auto elems = enumerate_group(g);
  EXPECT_EQ(elems.size(), g.order());
  for (const Code x : elems) EXPECT_TRUE(g.is_element(x));
}

TEST_P(GroupAxioms, PowConsistency) {
  const Group& g = *GetParam().group;
  Rng rng(4);
  const auto gens = g.generators();
  for (int i = 0; i < 20; ++i) {
    const Code x = random_word_element(g, gens, rng);
    Code acc = g.id();
    for (int e = 0; e <= 6; ++e) {
      EXPECT_EQ(g.pow(x, e), acc);
      acc = g.mul(acc, x);
    }
  }
}

TEST_P(GroupAxioms, EncodingWidthRespected) {
  const Group& g = *GetParam().group;
  Rng rng(5);
  const auto gens = g.generators();
  const int bits = g.encoding_bits();
  ASSERT_LE(bits, 64);
  for (int i = 0; i < 30; ++i) {
    const Code x = random_word_element(g, gens, rng);
    if (bits < 64) {
      EXPECT_EQ(x >> bits, 0u) << GetParam().label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, GroupAxioms, ::testing::ValuesIn(group_zoo()),
    [](const ::testing::TestParamInfo<GroupCase>& info) {
      std::string s = info.param.label;
      for (char& c : s)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(Cyclic, OrderAndInverse) {
  CyclicGroup z10(10);
  EXPECT_EQ(z10.order(), 10u);
  EXPECT_EQ(z10.mul(7, 8), 5u);
  EXPECT_EQ(z10.inv(3), 7u);
  EXPECT_EQ(z10.inv(0), 0u);
  EXPECT_EQ(z10.element_order_bruteforce(2), 5u);
}

TEST(DirectProduct, ComponentsRoundTrip) {
  auto p = product_of_cyclics({4, 3, 5});
  EXPECT_EQ(p->order(), 60u);
  const Code x = p->pack({3, 2, 4});
  EXPECT_EQ(p->component(x, 0), 3u);
  EXPECT_EQ(p->component(x, 1), 2u);
  EXPECT_EQ(p->component(x, 2), 4u);
  EXPECT_TRUE(p->is_id(p->pow(x, 60)));
}

TEST(Dihedral, RelationsHold) {
  DihedralGroup d(7);
  const Code x = d.make(1, false);
  const Code y = d.make(0, true);
  EXPECT_TRUE(d.is_id(d.pow(x, 7)));
  EXPECT_TRUE(d.is_id(d.mul(y, y)));
  // y x y = x^{-1}
  EXPECT_EQ(d.conj(x, y), d.inv(x));
  EXPECT_EQ(d.order(), 14u);
}

TEST(Dihedral, NonCommutative) {
  DihedralGroup d(5);
  const Code x = d.make(1, false);
  const Code y = d.make(0, true);
  EXPECT_NE(d.mul(x, y), d.mul(y, x));
}

TEST(Heisenberg, CentreEqualsCommutator) {
  HeisenbergGroup h(5, 1);
  EXPECT_EQ(h.order(), 125u);
  const auto centre = center_elements(h);
  EXPECT_EQ(centre.size(), 5u);
  const auto gp = commutator_subgroup(h);
  const auto gp_elems = enumerate_subgroup(h, gp);
  EXPECT_EQ(gp_elems.size(), 5u);
  EXPECT_EQ(std::vector<Code>(centre.begin(), centre.end()), gp_elems);
  // The central generator is central and of order p.
  const Code z = h.central_generator();
  EXPECT_EQ(h.element_order_bruteforce(z), 5u);
  for (const Code g : h.generators()) EXPECT_EQ(h.mul(z, g), h.mul(g, z));
}

TEST(Heisenberg, ExponentPForOddP) {
  HeisenbergGroup h(3, 1);
  for (const Code x : enumerate_group(h)) {
    EXPECT_TRUE(h.is_id(h.pow(x, 3)));
  }
}

TEST(GF2Mat, CompanionOrderAndInverse) {
  const GF2Mat c = GF2Mat::companion(3, 0b011);  // primitive: order 7
  EXPECT_TRUE(c.invertible());
  EXPECT_EQ(c.mat_order(), 7u);
  EXPECT_TRUE(c.mul(c.inverse()) == GF2Mat::identity(3));
  EXPECT_TRUE(c.pow(7) == GF2Mat::identity(3));
  EXPECT_FALSE(c.pow(3) == GF2Mat::identity(3));
}

TEST(GF2Mat, BlockSwapIsInvolution) {
  const GF2Mat s = GF2Mat::block_swap(3);
  EXPECT_TRUE(s.mul(s) == GF2Mat::identity(6));
  EXPECT_EQ(s.matvec(0b000111), 0b111000u);
}

TEST(Wreath, StructureMatchesRoettelerBeth) {
  auto w = wreath_z2k_z2(2);  // Z_2^2 wr Z_2, order 2^5 = 32
  EXPECT_EQ(w->order(), 32u);
  // The swap generator conjugates (u, v) to (v, u).
  const Code swap = w->make(0, 1);
  const Code uv = w->make(0b0001, 0);  // u = 01, v = 00
  const Code vu = w->make(0b0100, 0);  // u = 00, v = 01
  EXPECT_EQ(w->conj(uv, swap), vu);
  // N is normal and elementary Abelian.
  EXPECT_TRUE(is_normal_subgroup(*w, w->normal_subgroup_generators()));
}

TEST(SemidirectCyclic, ActionRelation) {
  const GF2Mat m = GF2Mat::companion(3, 0b011);
  auto g = paper_matrix_group(m);
  EXPECT_EQ(g->m(), 7u);
  EXPECT_EQ(g->order(), 8u * 7u);
  // a (v,0) a^{-1} = (M v, 0) for the cyclic generator a = (0,1).
  const Code a = g->make(0, 1);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(g->conj(g->make(v, 0), a), g->make(m.matvec(v), 0));
  }
  EXPECT_TRUE(is_normal_subgroup(*g, g->normal_subgroup_generators()));
}

TEST(QuotientOfWreath, FactorIsZ2) {
  auto w = wreath_z2k_z2(3);
  // |G/N| = 2 with N = Z_2^{2k}.
  EXPECT_EQ(w->order() / (1u << 6), 2u);
}

}  // namespace
}  // namespace nahsp::grp
