// Tests for the three coset-sampler backends: correctness (samples lie
// in H^perp) and distribution agreement between the statevector circuit
// and the analytic shortcut.
#include <gtest/gtest.h>

#include <map>

#include "nahsp/common/rng.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/sampler.h"

namespace nahsp::qs {
namespace {

// A hiding label function for subgroup H of Z_mods: canonical coset id.
LabelFn coset_label_fn(const std::vector<u64>& mods,
                       const std::vector<la::AbVec>& h_gens) {
  const auto h_elems = la::abelian_enumerate(h_gens, mods);
  return [mods, h_elems](const la::AbVec& x) -> u64 {
    // Minimal element of x + H in mixed-radix order.
    u64 best = ~u64{0};
    for (const la::AbVec& h : h_elems) {
      u64 idx = 0;
      for (std::size_t i = 0; i < mods.size(); ++i)
        idx = idx * mods[i] + (x[i] + h[i]) % mods[i];
      best = std::min(best, idx);
    }
    return best;
  };
}

struct SamplerCase {
  std::string label;
  std::vector<u64> mods;
  std::vector<la::AbVec> h_gens;
};

std::vector<SamplerCase> cases() {
  return {
      {"Z8_sub4", {8}, {{4}}},
      {"Z12_sub3", {12}, {{3}}},
      {"Z4xZ4_diag", {4, 4}, {{1, 1}}},
      {"Z2x2x2_plane", {2, 2, 2}, {{1, 1, 0}, {0, 1, 1}}},
      {"Z6xZ4_mixed", {6, 4}, {{2, 0}, {0, 2}}},
      {"Z9_trivial", {9}, {}},
      {"Z5_full", {5}, {{1}}},
  };
}

class SamplerBackends : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerBackends, MixedRadixSamplesAnnihilateH) {
  const auto& c = GetParam();
  Rng rng(1);
  MixedRadixCosetSampler s(c.mods, coset_label_fn(c.mods, c.h_gens),
                           nullptr);
  const auto h_elems = la::abelian_enumerate(c.h_gens, c.mods);
  for (int t = 0; t < 40; ++t) {
    const la::AbVec y = s.sample_character(rng);
    for (const la::AbVec& h : h_elems)
      EXPECT_TRUE(la::character_annihilates(y, h, c.mods));
  }
}

TEST_P(SamplerBackends, AnalyticSamplesAnnihilateH) {
  const auto& c = GetParam();
  Rng rng(2);
  AnalyticCosetSampler s(c.mods, c.h_gens, nullptr);
  const auto h_elems = la::abelian_enumerate(c.h_gens, c.mods);
  for (int t = 0; t < 40; ++t) {
    const la::AbVec y = s.sample_character(rng);
    for (const la::AbVec& h : h_elems)
      EXPECT_TRUE(la::character_annihilates(y, h, c.mods));
  }
}

TEST_P(SamplerBackends, MixedRadixMatchesAnalyticDistribution) {
  const auto& c = GetParam();
  Rng rng1(3), rng2(4);
  MixedRadixCosetSampler sv(c.mods, coset_label_fn(c.mods, c.h_gens),
                            nullptr);
  AnalyticCosetSampler an(c.mods, c.h_gens, nullptr);
  // Both must be uniform over H^perp; compare empirical frequencies.
  constexpr int kDraws = 3000;
  std::map<la::AbVec, int> freq_sv, freq_an;
  for (int t = 0; t < kDraws; ++t) {
    ++freq_sv[sv.sample_character(rng1)];
    ++freq_an[an.sample_character(rng2)];
  }
  const u64 perp_order = la::abelian_subgroup_order(
      la::congruence_kernel(c.h_gens, c.mods), c.mods);
  EXPECT_EQ(freq_sv.size(), perp_order);
  EXPECT_EQ(freq_an.size(), perp_order);
  const double expected = static_cast<double>(kDraws) / perp_order;
  for (const auto& [y, n] : freq_sv) {
    EXPECT_NEAR(n, expected, 6 * std::sqrt(expected) + 6) << "statevector";
  }
  for (const auto& [y, n] : freq_an) {
    EXPECT_NEAR(n, expected, 6 * std::sqrt(expected) + 6) << "analytic";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SamplerBackends, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<SamplerCase>& info) {
      return info.param.label;
    });

TEST(QubitSampler, MatchesMixedRadixOnPow2Domains) {
  const std::vector<u64> mods{4, 2};
  const std::vector<la::AbVec> h_gens{{2, 1}};
  Rng rng1(5), rng2(6);
  QubitCosetSampler qb(mods, coset_label_fn(mods, h_gens), nullptr);
  MixedRadixCosetSampler mr(mods, coset_label_fn(mods, h_gens), nullptr);
  const auto h_elems = la::abelian_enumerate(h_gens, mods);
  std::map<la::AbVec, int> freq_qb, freq_mr;
  constexpr int kDraws = 2000;
  for (int t = 0; t < kDraws; ++t) {
    const la::AbVec y = qb.sample_character(rng1);
    for (const la::AbVec& h : h_elems)
      ASSERT_TRUE(la::character_annihilates(y, h, mods));
    ++freq_qb[y];
    ++freq_mr[mr.sample_character(rng2)];
  }
  EXPECT_EQ(freq_qb.size(), freq_mr.size());
  for (const auto& [y, n] : freq_qb) {
    ASSERT_TRUE(freq_mr.contains(y));
    EXPECT_NEAR(n, freq_mr[y], 6 * std::sqrt(n) + 10);
  }
}

TEST(QubitSampler, RejectsNonPow2) {
  EXPECT_THROW(QubitCosetSampler({6}, [](const la::AbVec&) { return 0u; },
                                 nullptr),
               std::invalid_argument);
}

TEST(Samplers, QueryAccounting) {
  bb::QueryCounter counter;
  const std::vector<u64> mods{8};
  MixedRadixCosetSampler s(mods, coset_label_fn(mods, {{4}}), &counter);
  Rng rng(7);
  (void)s.sample_character(rng);
  (void)s.sample_character(rng);
  EXPECT_EQ(counter.quantum_queries, 2u);
  EXPECT_EQ(counter.sim_basis_evals, 8u);  // label cache built once
}

TEST(AnalyticSampler, PerpGeneratorsCorrect) {
  const std::vector<u64> mods{8};
  AnalyticCosetSampler s(mods, {{2}}, nullptr);
  // H = <2> (order 4), H^perp = <4> (order 2).
  EXPECT_EQ(la::abelian_subgroup_order(s.perp_generators(), mods), 2u);
}

}  // namespace
}  // namespace nahsp::qs
