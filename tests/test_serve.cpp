// The `nahsp serve` core, tested in-process (no sockets): the strict
// wire-JSON reader, the compact JsonWriter style, the LRU cache, and
// the transport-independent SolverService end to end — admission,
// structured errors, cache replay, drain, and CLI report parity.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nahsp/common/faultpoint.h"
#include "nahsp/common/rng.h"
#include "nahsp/common/spec.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/serve/json_value.h"
#include "nahsp/serve/lru_cache.h"
#include "nahsp/serve/outcome.h"
#include "nahsp/serve/service.h"
#include "report.h"

namespace nahsp::serve {
namespace {

// ------------------------------------------------------------ wire JSON

TEST(WireJson, ParsesScalarsAndStructure) {
  const JsonValue v = parse_json(
      "{\"a\": 1, \"b\": [true, false, null], \"c\": {\"d\": \"x\"}}");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->as_u64(), 1u);
  ASSERT_NE(v.find("b"), nullptr);
  ASSERT_TRUE(v.find("b")->is_array());
  ASSERT_EQ(v.find("b")->array_items.size(), 3u);
  EXPECT_TRUE(v.find("b")->array_items[0].bool_value);
  EXPECT_TRUE(v.find("b")->array_items[2].is_null());
  ASSERT_NE(v.find("c"), nullptr);
  ASSERT_NE(v.find("c")->find("d"), nullptr);
  EXPECT_EQ(v.find("c")->find("d")->string_value, "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(WireJson, KeepsMemberOrderAndRawNumberTokens) {
  const JsonValue v = parse_json("{\"z\": 2.5e1, \"a\": 7}");
  ASSERT_EQ(v.object_members.size(), 2u);
  EXPECT_EQ(v.object_members[0].first, "z");
  EXPECT_EQ(v.object_members[1].first, "a");
  EXPECT_EQ(v.object_members[0].second.number_raw, "2.5e1");
  EXPECT_DOUBLE_EQ(v.object_members[0].second.number_value, 25.0);
}

TEST(WireJson, StringEscapesAndUnicode) {
  const JsonValue v = parse_json(
      "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\", \"e\": \"\\uD83D\\uDE00\"}");
  EXPECT_EQ(v.find("s")->string_value, "a\"b\\c\n\tA");
  // Surrogate pair -> one UTF-8 code point (U+1F600).
  EXPECT_EQ(v.find("e")->string_value, "\xF0\x9F\x98\x80");
}

TEST(WireJson, U64RoundTripsExactly) {
  const JsonValue v = parse_json("{\"n\": 18446744073709551615}");
  EXPECT_EQ(v.find("n")->as_u64(), 18446744073709551615ull);
}

TEST(WireJson, U64RejectsNonIntegers) {
  EXPECT_THROW(parse_json("-1").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("1.5").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("1e3").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("18446744073709551616").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("\"7\"").as_u64(), JsonParseError);
}

TEST(WireJson, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("   "), JsonParseError);
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":}"), JsonParseError);
  EXPECT_THROW(parse_json("[1,]"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(parse_json("tru"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
}

TEST(WireJson, StrictWhereTheStandardAllowsLatitude) {
  // Trailing bytes after the document (a second request on the same
  // line) are a client bug, not a second request.
  EXPECT_THROW(parse_json("{} {}"), JsonParseError);
  EXPECT_NO_THROW(parse_json("{}  \t "));
  // Duplicate keys make the request ambiguous.
  EXPECT_THROW(parse_json("{\"a\":1,\"a\":2}"), JsonParseError);
  // Non-standard number spellings.
  EXPECT_THROW(parse_json("NaN"), JsonParseError);
  EXPECT_THROW(parse_json("Infinity"), JsonParseError);
  EXPECT_THROW(parse_json("01"), JsonParseError);
  // Raw control characters inside strings.
  EXPECT_THROW(parse_json(std::string("\"a\x01") + "b\""), JsonParseError);
  // A lone surrogate is not a code point.
  EXPECT_THROW(parse_json("\"\\uD83D\""), JsonParseError);
}

TEST(WireJson, DepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(parse_json(deep), JsonParseError);
  std::string ok = "1";
  for (int i = 0; i < 16; ++i) ok = "[" + ok + "]";
  EXPECT_NO_THROW(parse_json(ok));
}

TEST(WireJson, ErrorsCarryAByteOffset) {
  try {
    parse_json("{\"a\": nope}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

// --------------------------------------------------------- JSON writer

std::string sample_doc(cli::JsonWriter::Style style) {
  std::ostringstream os;
  cli::JsonWriter w(os, style);
  w.begin_object();
  w.field("name", "x\"y");
  w.field("n", std::uint64_t{7});
  w.key("xs");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.field("ok", true);
  w.field("t", 0.5);
  w.end_object();
  w.finish();
  return os.str();
}

TEST(JsonWriterStyle, CompactIsSingleLine) {
  EXPECT_EQ(sample_doc(cli::JsonWriter::Style::kCompact),
            "{\"name\":\"x\\\"y\",\"n\":7,\"xs\":[1,2],\"ok\":true,"
            "\"t\":0.5}\n");
}

TEST(JsonWriterStyle, CompactIsPrettyMinusWhitespace) {
  // Same token stream: stripping the pretty style's whitespace (none of
  // the sample's strings contain any) must yield the compact bytes.
  std::string pretty = sample_doc(cli::JsonWriter::Style::kPretty);
  std::string stripped;
  for (const char c : pretty) {
    if (c != ' ' && c != '\n') stripped += c;
  }
  EXPECT_EQ(stripped + "\n", sample_doc(cli::JsonWriter::Style::kCompact));
}

TEST(JsonWriterStyle, NonFiniteDoublesBecomeNull) {
  for (const auto style : {cli::JsonWriter::Style::kPretty,
                           cli::JsonWriter::Style::kCompact}) {
    std::ostringstream os;
    cli::JsonWriter w(os, style);
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.end_array();
    const std::string out = os.str();
    EXPECT_EQ(out.find("nan"), std::string::npos) << out;
    EXPECT_EQ(out.find("inf"), std::string::npos) << out;
    // All three non-finite slots emitted as null; the document stays
    // machine-parseable.
    std::size_t nulls = 0, pos = 0;
    while ((pos = out.find("null", pos)) != std::string::npos) {
      ++nulls;
      pos += 4;
    }
    EXPECT_EQ(nulls, 3u) << out;
    EXPECT_NO_THROW(parse_json(out));
  }
}

// ------------------------------------------------------------ LRU cache

TEST(Lru, HitMissAndCounters) {
  LruCache<std::string, int> c(2);
  EXPECT_EQ(c.get("a"), nullptr);
  c.put("a", 1);
  const int* hit = c.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(3, 30);  // evicts 1
  EXPECT_EQ(c.get(1), nullptr);
  ASSERT_NE(c.get(2), nullptr);
  ASSERT_NE(c.get(3), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Lru, GetPromotesAgainstEviction) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_NE(c.get(1), nullptr);  // 1 is now most recent
  c.put(3, 30);                  // evicts 2, not 1
  ASSERT_NE(c.get(1), nullptr);
  EXPECT_EQ(c.get(2), nullptr);
  ASSERT_NE(c.get(3), nullptr);
}

TEST(Lru, PutReplacesInPlace) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(1, 11);
  EXPECT_EQ(c.size(), 1u);
  ASSERT_NE(c.get(1), nullptr);
  EXPECT_EQ(*c.get(1), 11);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(Lru, CapacityZeroDisables) {
  LruCache<int, int> c(0);
  c.put(1, 10);
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.misses(), 1u);
}

// --------------------------------------------------------- SolverService

// Thread-safe response sink: submit_line may answer synchronously on
// this thread or later from the dispatcher thread.
class Collector {
 public:
  SolverService::Responder responder() {
    return [this](std::string line) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        lines_.push_back(std::move(line));
      }
      cv_.notify_all();
    };
  }

  // Blocks until response `index` exists; empty string on timeout
  // (which also fails the test).
  std::string wait_line(std::size_t index) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, std::chrono::seconds(60),
                      [&] { return lines_.size() > index; })) {
      ADD_FAILURE() << "timed out waiting for response " << index;
      return "";
    }
    return lines_[index];
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lk(mu_);
    return lines_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_limit = 16;
  cfg.cache_capacity = 16;
  return cfg;
}

std::string str_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_string()) {
    ADD_FAILURE() << "missing string field '" << key << "'";
    return "";
  }
  return f->string_value;
}

std::string error_code(const JsonValue& v) {
  const JsonValue* e = v.find("error");
  if (e == nullptr) {
    ADD_FAILURE() << "missing 'error' object";
    return "";
  }
  return str_field(*e, "code");
}

TEST(Service, PingEchoesTheClientId) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  svc.submit_line("{\"cmd\": \"ping\", \"id\": 17}", col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v, "schema"), "nahsp-serve/v1");
  EXPECT_EQ(str_field(v, "type"), "pong");
  EXPECT_TRUE(v.find("ok")->bool_value);
  EXPECT_EQ(v.find("id")->as_u64(), 17u);

  svc.submit_line("{\"cmd\": \"ping\", \"id\": \"a\\\"b\"}",
                  col.responder());
  const JsonValue w = parse_json(col.wait_line(1));
  EXPECT_EQ(w.find("id")->string_value, "a\"b");
}

TEST(Service, MalformedInputGetsStructuredErrors) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  svc.submit_line("this is not json", col.responder());
  svc.submit_line("[1, 2]", col.responder());
  svc.submit_line("{\"cmd\": \"ping\", \"extra\": 1}", col.responder());
  svc.submit_line("{\"cmd\": \"frobnicate\"}", col.responder());
  svc.submit_line("{\"cmd\": \"solve\"}", col.responder());
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral n=\"}",
                  col.responder());
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral\", "
                  "\"timeout_ms\": -5}",
                  col.responder());

  const char* expected[] = {"bad_json",   "bad_request", "bad_request",
                            "bad_request", "bad_request", "spec_error",
                            "bad_request"};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    const JsonValue v = parse_json(col.wait_line(i));
    EXPECT_EQ(str_field(v, "type"), "error") << i;
    EXPECT_FALSE(v.find("ok")->bool_value) << i;
    EXPECT_TRUE(v.find("id")->is_null()) << i;
    EXPECT_EQ(error_code(v), expected[i]) << i;
  }
  EXPECT_EQ(svc.stats().jobs_rejected, std::size(expected));
}

TEST(Service, SpecErrorsFromDispatchAreStructuredToo) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  // Unknown family and the reserved `threads` key both resolve on the
  // dispatcher, after admission.
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"nosuchfamily\"}",
                  col.responder());
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral threads=2\"}",
                  col.responder());
  for (std::size_t i = 0; i < 2; ++i) {
    const JsonValue v = parse_json(col.wait_line(i));
    EXPECT_EQ(str_field(v, "type"), "error") << i;
    EXPECT_EQ(error_code(v), "spec_error") << i;
  }
  const JsonValue v = parse_json(col.wait_line(1));
  EXPECT_NE(str_field(*v.find("error"), "message").find("threads"),
            std::string::npos);
}

// The serve report must be byte-identical to a direct CLI-style run of
// the same (spec, seed) — everything up to the wall-clock `seconds`
// field, which is legitimately nondeterministic.
TEST(Service, ExplicitSeedReportMatchesDirectRun) {
  const std::string spec_text = "dihedral seed=1";
  ScenarioSpec spec = parse_scenario_line(spec_text);
  const std::uint64_t seed = spec.params.get_u64("seed", 0);
  hsp::BuiltScenario built = hsp::build_scenario(spec);
  Rng rng(seed);
  const SolveOutcome out = run_scenario(std::move(built), rng);
  ASSERT_TRUE(out.success);
  ASSERT_TRUE(out.verified);
  std::ostringstream os;
  cli::JsonWriter w(os, cli::JsonWriter::Style::kCompact);
  write_solve_report(w, out, seed, /*threads=*/1);
  const std::string direct = os.str();

  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  svc.submit_line(
      "{\"cmd\": \"solve\", \"id\": 1, \"spec\": \"" + spec_text + "\"}",
      col.responder());
  const std::string line = col.wait_line(0);
  const JsonValue v = parse_json(line);
  EXPECT_EQ(str_field(v, "type"), "result");
  EXPECT_TRUE(v.find("ok")->bool_value);
  EXPECT_FALSE(v.find("cached")->bool_value);

  const std::size_t at = line.find(",\"report\":");
  ASSERT_NE(at, std::string::npos);
  // ...,"report":{...}}  ->  {...}
  const std::string served =
      line.substr(at + 10, line.size() - (at + 10) - 1);
  const std::size_t cut = direct.find("\"seconds\":");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_EQ(served.substr(0, cut), direct.substr(0, cut));
}

TEST(Service, RepeatedRequestReplaysFromTheCache) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  const std::string req =
      "{\"cmd\": \"solve\", \"spec\": \"dihedral seed=1\"}";
  svc.submit_line(req, col.responder());
  const std::string first = col.wait_line(0);
  svc.submit_line(req, col.responder());
  const std::string second = col.wait_line(1);

  const JsonValue v1 = parse_json(first);
  const JsonValue v2 = parse_json(second);
  EXPECT_FALSE(v1.find("cached")->bool_value);
  EXPECT_TRUE(v2.find("cached")->bool_value);
  // The replay is the original run's report, byte for byte (including
  // its seconds and its seed).
  EXPECT_EQ(first.substr(first.find(",\"report\":")),
            second.substr(second.find(",\"report\":")));

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.jobs_received, 2u);
  EXPECT_EQ(s.jobs_completed, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_entries, 1u);
}

TEST(Service, SeedlessRequestsReportTheBaseSeedAndShareTheCache) {
  ServiceConfig cfg = small_config();
  cfg.base_seed = 424242;
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(cfg);
  const std::string req = "{\"cmd\": \"solve\", \"spec\": \"dihedral\"}";
  svc.submit_line(req, col.responder());
  const JsonValue v1 = parse_json(col.wait_line(0));
  ASSERT_EQ(str_field(v1, "type"), "result");
  EXPECT_EQ(v1.find("report")->find("seed")->as_u64(), 424242u);
  // The fingerprint excludes the seed, so the repeat is a hit even
  // though each seedless admission draws a fresh RNG stream.
  svc.submit_line(req, col.responder());
  const JsonValue v2 = parse_json(col.wait_line(1));
  EXPECT_TRUE(v2.find("cached")->bool_value);
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(Service, CompletedSolverFailuresAreCached) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  // The qubit backend needs power-of-two moduli; Heisenberg's are 3s.
  // A completed failure is deterministic, so it is cached like a
  // success and replayed with cached:true.
  const std::string req =
      "{\"cmd\": \"solve\", \"spec\": \"heisenberg backend=qubit\"}";
  svc.submit_line(req, col.responder());
  const JsonValue v1 = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v1, "type"), "error");
  EXPECT_EQ(error_code(v1), "spec_error");
  EXPECT_FALSE(v1.find("cached")->bool_value);

  svc.submit_line(req, col.responder());
  const JsonValue v2 = parse_json(col.wait_line(1));
  EXPECT_EQ(error_code(v2), "spec_error");
  EXPECT_TRUE(v2.find("cached")->bool_value);
  EXPECT_EQ(svc.stats().jobs_failed, 2u);
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(Service, QueueLimitRejectsWithQueueFull) {
  ServiceConfig cfg = small_config();
  cfg.queue_limit = 0;  // every admission check sees a "full" queue
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(cfg);
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral\"}",
                  col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(error_code(v), "queue_full");
  EXPECT_EQ(svc.stats().jobs_rejected, 1u);
  EXPECT_EQ(svc.stats().jobs_received, 0u);
}

TEST(Service, DrainRejectsSolvesButAnswersControl) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  svc.begin_drain();
  svc.wait_idle();
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral\"}",
                  col.responder());
  EXPECT_EQ(error_code(parse_json(col.wait_line(0))), "shutting_down");
  svc.submit_line("{\"cmd\": \"ping\"}", col.responder());
  EXPECT_EQ(str_field(parse_json(col.wait_line(1)), "type"), "pong");
}

TEST(Service, ShutdownCommandFlagsTheTransportAndDrains) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  EXPECT_FALSE(svc.shutdown_requested());
  svc.submit_line("{\"cmd\": \"shutdown\", \"id\": 9}", col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v, "type"), "shutdown");
  EXPECT_TRUE(v.find("ok")->bool_value);
  EXPECT_TRUE(svc.shutdown_requested());
  svc.submit_line("{\"cmd\": \"solve\", \"spec\": \"dihedral\"}",
                  col.responder());
  EXPECT_EQ(error_code(parse_json(col.wait_line(1))), "shutting_down");
}

TEST(Service, StatsEndpointReportsTheDocumentedShape) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  svc.submit_line("{\"cmd\": \"stats\"}", col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v, "type"), "stats");
  const JsonValue* s = v.find("stats");
  ASSERT_NE(s, nullptr);
  for (const char* key :
       {"uptime_seconds", "jobs_received", "jobs_completed", "jobs_failed",
        "jobs_rejected", "queue_depth", "in_flight", "workers",
        "queue_limit", "cache"}) {
    EXPECT_NE(s->find(key), nullptr) << key;
  }
  const JsonValue* cache = s->find("cache");
  ASSERT_NE(cache, nullptr);
  for (const char* key :
       {"hits", "misses", "evictions", "entries", "capacity", "hit_rate"}) {
    EXPECT_NE(cache->find(key), nullptr) << key;
  }
  EXPECT_EQ(cache->find("capacity")->as_u64(), 16u);
}

TEST(Service, ConcurrentMixedClientsAllGetAnswers) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  SolverService svc(small_config());
  const std::vector<std::string> requests = {
      "{\"cmd\": \"solve\", \"id\": 0, \"spec\": \"dihedral seed=1\"}",
      "{\"cmd\": \"ping\", \"id\": 1}",
      "{\"cmd\": \"solve\", \"id\": 2, \"spec\": \"dihedral seed=1\"}",
      "garbage",
      "{\"cmd\": \"solve\", \"id\": 4, \"spec\": \"quaternion seed=2\"}",
      "{\"cmd\": \"stats\", \"id\": 5}",
      "{\"cmd\": \"nope\", \"id\": 6}",
      "{\"cmd\": \"solve\", \"id\": 7, \"spec\": \"dihedral seed=3\"}",
  };
  std::vector<std::thread> clients;
  for (const std::string& req : requests) {
    clients.emplace_back(
        [&svc, &col, req] { svc.submit_line(req, col.responder()); });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string line = col.wait_line(i);
    if (line.empty()) continue;
    const JsonValue v = parse_json(line);
    EXPECT_EQ(str_field(v, "schema"), "nahsp-serve/v1") << line;
  }
  svc.wait_idle();
  EXPECT_EQ(col.count(), requests.size());
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.jobs_received, 4u);
  EXPECT_EQ(s.jobs_completed + s.jobs_failed, 4u);
  EXPECT_EQ(s.jobs_rejected, 2u);  // garbage + unknown cmd
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

// ------------------------------------------- budgeted admission + retry

// elem_abelian2 k=12 prices at 48 * 2^12 = 196608 bytes dense; the
// sparse fallback (no subgroup hint) at 4096 + 64 * 2 * 64 = 12288
// bytes. A 100000-byte --max-mem therefore forces the auto backend to
// degrade and permanently sheds an explicit mixed-radix request.
constexpr std::uint64_t kDenseK12 = 196608;
constexpr std::uint64_t kSparseK12 = 12288;

std::uint64_t u64_field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_number()) {
    ADD_FAILURE() << "missing numeric field '" << key << "'";
    return 0;
  }
  return f->as_u64();
}

TEST(Service, OverBudgetRequestIsShedWithTheNumbers) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  ServiceConfig cfg = small_config();
  cfg.max_mem_bytes = 100000;
  SolverService svc(cfg);
  svc.submit_line(
      "{\"cmd\": \"solve\", \"id\": 1,"
      " \"spec\": \"elem_abelian2 k=12 backend=mixed-radix\"}",
      col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v, "type"), "error");
  EXPECT_EQ(error_code(v), "over_budget");
  const JsonValue* e = v.find("error");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(u64_field(*e, "estimated_bytes"), kDenseK12);
  EXPECT_EQ(u64_field(*e, "limit_bytes"), 100000u);
  EXPECT_EQ(u64_field(*e, "available_bytes"), 100000u);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.jobs_shed, 1u);
  EXPECT_EQ(s.jobs_rejected, 1u);
  EXPECT_EQ(s.jobs_received, 0u);  // shed before admission
}

TEST(Service, AutoBackendDegradesUnderBudgetAndSolves) {
  Collector col;  // outlives svc: the dispatcher joins before col dies
  ServiceConfig cfg = small_config();
  cfg.max_mem_bytes = 100000;
  SolverService svc(cfg);
  svc.submit_line(
      "{\"cmd\": \"solve\", \"id\": 2, \"spec\": \"elem_abelian2 k=12\"}",
      col.responder());
  const JsonValue v = parse_json(col.wait_line(0));
  EXPECT_EQ(str_field(v, "type"), "result") << col.wait_line(0);
  EXPECT_TRUE(v.find("ok")->bool_value);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.jobs_shed, 0u);
  EXPECT_EQ(s.jobs_completed, 1u);
}

TEST(Service, LedgerFullShedsTransientlyWithRetryHint) {
  // Park job 1 in the budget-retry backoff (every sampler construction
  // sheds) so it holds its priced bytes while job 2 arrives: the ledger
  // is deterministically full, no race against the solver.
  faultpoint_reset("alloc.sampler:1:1000000");
  {
    Collector col;  // outlives svc: the dispatcher joins before col dies
    ServiceConfig cfg = small_config();
    cfg.workers = 1;
    cfg.retry_attempts = 4;
    cfg.retry_base_ms = 400;
    // Room for exactly one sparse-degraded k=12 job.
    cfg.max_mem_bytes = kSparseK12 + 100;
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 1,"
        " \"spec\": \"elem_abelian2 k=12 seed=1\"}",
        col.responder());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (svc.stats().retries == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(svc.stats().retries, 1u);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 2,"
        " \"spec\": \"elem_abelian2 k=12 seed=2\"}",
        col.responder());
    // Job 1 is still mid-backoff, so job 2's shed answers first.
    const JsonValue shed = parse_json(col.wait_line(0));
    EXPECT_EQ(shed.find("id")->as_u64(), 2u);
    EXPECT_EQ(error_code(shed), "over_budget");
    const JsonValue* e = shed.find("error");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(u64_field(*e, "estimated_bytes"), kSparseK12);
    EXPECT_GT(u64_field(*e, "retry_after_ms"), 0u);
    EXPECT_LT(u64_field(*e, "available_bytes"), kSparseK12);
    EXPECT_EQ(svc.stats().jobs_shed, 1u);
    EXPECT_EQ(svc.stats().priced_pending_bytes, kSparseK12);
    svc.cancel_all();
    const JsonValue v = parse_json(col.wait_line(1));
    EXPECT_EQ(v.find("id")->as_u64(), 1u);
    EXPECT_EQ(error_code(v), "cancelled");
  }
  faultpoint_reset("");
}

TEST(Service, TransientResourceErrorRetriesAndSucceeds) {
  faultpoint_reset("alloc.sampler:1:1");  // first construction only
  {
    Collector col;  // outlives svc: the dispatcher joins before col dies
    ServiceConfig cfg = small_config();
    cfg.retry_attempts = 3;
    cfg.retry_base_ms = 1;
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 3, \"spec\": \"elem_abelian2 seed=3\"}",
        col.responder());
    const JsonValue v = parse_json(col.wait_line(0));
    EXPECT_EQ(str_field(v, "type"), "result") << col.wait_line(0);
    EXPECT_TRUE(v.find("ok")->bool_value);
    EXPECT_GE(svc.stats().retries, 1u);
  }
  faultpoint_reset("");
}

TEST(Service, ExhaustedRetriesReportOverBudget) {
  faultpoint_reset("alloc.sampler:1:1000000");  // every construction
  {
    Collector col;  // outlives svc: the dispatcher joins before col dies
    ServiceConfig cfg = small_config();
    cfg.retry_attempts = 2;
    cfg.retry_base_ms = 1;
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 4, \"spec\": \"elem_abelian2 seed=4\"}",
        col.responder());
    const JsonValue v = parse_json(col.wait_line(0));
    EXPECT_EQ(error_code(v), "over_budget") << col.wait_line(0);
    EXPECT_EQ(svc.stats().retries, 2u);
    EXPECT_EQ(svc.stats().jobs_failed, 1u);
  }
  faultpoint_reset("");
}

// The ISSUE's cancellation race: a token fired while the dispatcher is
// in its budget-retry backoff must report `cancelled`, never
// `over_budget` — and the response line must be bit-identical whether
// the service runs 1 worker or 4.
std::string cancel_during_retry_response(int workers) {
  faultpoint_reset("alloc.sampler:1:1000000");  // every attempt sheds
  std::string line;
  {
    Collector col;  // outlives svc: the dispatcher joins before col dies
    ServiceConfig cfg = small_config();
    cfg.workers = workers;
    cfg.retry_attempts = 4;
    cfg.retry_base_ms = 400;  // backoff dwarfs the failed solve attempt
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 42, \"spec\": \"elem_abelian2 seed=9\"}",
        col.responder());
    // Wait for the first backoff to begin, then cancel into it. The
    // retry loop polls the token in 1 ms slices of a 400 ms sleep, so
    // the cancellation is observed mid-backoff.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (svc.stats().retries == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(svc.stats().retries, 1u);
    svc.cancel_all();
    line = col.wait_line(0);
  }
  faultpoint_reset("");
  return line;
}

TEST(Service, CancelDuringBudgetRetryReportsCancelledBitIdentically) {
  const std::string w1 = cancel_during_retry_response(1);
  const JsonValue v = parse_json(w1);
  EXPECT_EQ(error_code(v), "cancelled");
  EXPECT_EQ(str_field(*v.find("error"), "message"),
            "cancelled during budget retry");
  const std::string w4 = cancel_during_retry_response(4);
  EXPECT_EQ(w1, w4);  // bit-identical at widths 1 and 4
}

// ------------------------------------------------- cache persistence

TEST(Service, CacheSnapshotRoundTripReplaysAcrossRestart) {
  const std::string path =
      ::testing::TempDir() + "nahsp_serve_cache_roundtrip.jsonl";
  std::remove(path.c_str());
  ServiceConfig cfg = small_config();
  cfg.cache_file = path;
  const std::string req =
      "{\"cmd\": \"solve\", \"id\": 1, \"spec\": \"dihedral seed=5\"}";
  std::string first;
  {
    Collector col;
    SolverService svc(cfg);
    svc.submit_line(req, col.responder());
    first = col.wait_line(0);
    EXPECT_EQ(str_field(parse_json(first), "type"), "result");
  }  // dtor drains and snapshots
  {
    Collector col;
    SolverService svc(cfg);
    EXPECT_GE(svc.stats().cache_loaded, 1u);
    svc.submit_line(req, col.responder());
    std::string replay = col.wait_line(0);
    const JsonValue v = parse_json(replay);
    ASSERT_NE(v.find("cached"), nullptr);
    EXPECT_TRUE(v.find("cached")->bool_value);
    // Byte-identical to the original response modulo the cached flag.
    const std::string::size_type at = replay.find("\"cached\":true");
    ASSERT_NE(at, std::string::npos);
    replay.replace(at, 13, "\"cached\":false");
    EXPECT_EQ(replay, first);
  }
  std::remove(path.c_str());
}

TEST(Service, CacheSnapshotWithStaleSchemaIsIgnored) {
  const std::string path =
      ::testing::TempDir() + "nahsp_serve_cache_stale.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\":\"nahsp-serve-cache/v0\"}\n"
        << "{\"fp\":\"x\",\"ok\":true,\"report\":\"{}\"}\n";
  }
  ServiceConfig cfg = small_config();
  cfg.cache_file = path;
  Collector col;
  SolverService svc(cfg);
  EXPECT_EQ(svc.stats().cache_loaded, 0u);
  svc.submit_line(
      "{\"cmd\": \"solve\", \"id\": 1, \"spec\": \"dihedral seed=6\"}",
      col.responder());
  EXPECT_EQ(str_field(parse_json(col.wait_line(0)), "type"), "result");
  std::remove(path.c_str());
}

TEST(Service, CacheSnapshotSkipsTornTail) {
  const std::string path =
      ::testing::TempDir() + "nahsp_serve_cache_torn.jsonl";
  std::remove(path.c_str());
  ServiceConfig cfg = small_config();
  cfg.cache_file = path;
  {
    Collector col;
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 1, \"spec\": \"dihedral seed=7\"}",
        col.responder());
    EXPECT_EQ(str_field(parse_json(col.wait_line(0)), "type"), "result");
  }
  {  // a crash mid-append leaves a partial trailing line
    std::ofstream out(path, std::ios::app);
    out << "{\"fp\":\"torn-entry-with-no-newl";
  }
  Collector col;
  SolverService svc(cfg);
  EXPECT_EQ(svc.stats().cache_loaded, 1u);
  std::remove(path.c_str());
}

TEST(Service, FaultedSnapshotKeepsThePreviousFile) {
  const std::string path =
      ::testing::TempDir() + "nahsp_serve_cache_fault.jsonl";
  std::remove(path.c_str());
  ServiceConfig cfg = small_config();
  cfg.cache_file = path;
  {  // seed a good snapshot with one entry
    Collector col;
    SolverService svc(cfg);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 1, \"spec\": \"dihedral seed=8\"}",
        col.responder());
    EXPECT_EQ(str_field(parse_json(col.wait_line(0)), "type"), "result");
  }
  faultpoint_reset("cache.snapshot:1:1000000");
  {  // this service's shutdown snapshot fails; the old file survives
    Collector col;
    SolverService svc(cfg);
    EXPECT_EQ(svc.stats().cache_loaded, 1u);
    svc.submit_line(
        "{\"cmd\": \"solve\", \"id\": 2, \"spec\": \"quaternion seed=8\"}",
        col.responder());
    EXPECT_EQ(str_field(parse_json(col.wait_line(0)), "type"), "result");
    svc.wait_idle();
  }
  faultpoint_reset("");
  Collector col;
  SolverService svc(cfg);
  EXPECT_EQ(svc.stats().cache_loaded, 1u);  // old snapshot, not two
  EXPECT_EQ(svc.stats().cache_snapshots, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nahsp::serve
