// The resource-budget ledger and the sampler-factory preflight: typed
// errors instead of OOM kills, deterministic degrade decisions, RAII
// reservation accounting, and the fault-point grammar that drives the
// injection harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "nahsp/common/budget.h"
#include "nahsp/common/faultpoint.h"
#include "nahsp/common/rng.h"
#include "nahsp/qsim/sampler.h"
#include "nahsp/qsim/sparse.h"

namespace nahsp {
namespace {

using u64 = std::uint64_t;

// Every test restores the global ledger and disarms fault points so
// ordering never leaks state between tests.
class BudgetTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ResourceBudget::global().set_limit(0);
    faultpoint_reset("");
  }
};

TEST_F(BudgetTest, UnlimitedLedgerAlwaysReserves) {
  ResourceBudget& b = ResourceBudget::global();
  ASSERT_EQ(b.limit(), 0u);
  Reservation r = b.reserve(std::uint64_t{1} << 40, "test");
  EXPECT_TRUE(r.holds());
  EXPECT_EQ(b.reserved(), std::uint64_t{1} << 40);
  EXPECT_EQ(b.available(), UINT64_MAX);
  r.release();
  EXPECT_EQ(b.reserved(), 0u);
}

TEST_F(BudgetTest, ReservationRaiiReturnsBytes) {
  ScopedBudgetLimit limit(1000);
  ResourceBudget& b = ResourceBudget::global();
  {
    const Reservation r = b.reserve(600, "test");
    EXPECT_EQ(b.available(), 400u);
  }
  EXPECT_EQ(b.available(), 1000u);
}

TEST_F(BudgetTest, ReservationMoveTransfersOwnership) {
  ScopedBudgetLimit limit(1000);
  ResourceBudget& b = ResourceBudget::global();
  Reservation a = b.reserve(300, "test");
  Reservation c = std::move(a);
  EXPECT_FALSE(a.holds());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.holds());
  EXPECT_EQ(b.reserved(), 300u);
  c.release();
  EXPECT_EQ(b.reserved(), 0u);
}

TEST_F(BudgetTest, PermanentVersusTransientErrors) {
  ScopedBudgetLimit limit(1000);
  ResourceBudget& b = ResourceBudget::global();
  // Over the limit outright: permanent.
  try {
    (void)b.reserve(2000, "big");
    FAIL() << "reserve over the limit must throw";
  } catch (const resource_error& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.requested_bytes(), 2000u);
    EXPECT_EQ(e.limit_bytes(), 1000u);
  }
  // Fits the limit but not the current headroom: transient.
  const Reservation hold = b.reserve(800, "hold");
  try {
    (void)b.reserve(500, "race");
    FAIL() << "reserve over the headroom must throw";
  } catch (const resource_error& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.available_bytes(), 200u);
  }
}

TEST_F(BudgetTest, TryReserveReturnsEmptyOnFailure) {
  ScopedBudgetLimit limit(100);
  Reservation r = ResourceBudget::global().try_reserve(200);
  EXPECT_FALSE(r.holds());
  Reservation ok = ResourceBudget::global().try_reserve(50);
  EXPECT_TRUE(ok.holds());
}

TEST_F(BudgetTest, ScopedLimitRestoresPrevious) {
  ResourceBudget::global().set_limit(7);
  {
    ScopedBudgetLimit inner(999);
    EXPECT_EQ(ResourceBudget::global().limit(), 999u);
  }
  EXPECT_EQ(ResourceBudget::global().limit(), 7u);
}

// ------------------------------------------------------------ estimates

TEST_F(BudgetTest, DenseEstimateScalesWithDomain) {
  // 48 bytes per amplitude: prob + two scratch states + label cache.
  EXPECT_EQ(qs::MixedRadixCosetSampler::estimate_bytes({4, 4}), 16u * 48u);
  EXPECT_EQ(qs::QubitCosetSampler::estimate_bytes({2, 2, 2}), 8u * 40u);
}

TEST_F(BudgetTest, EstimateSaturatesInsteadOfWrapping) {
  // A domain whose product overflows u64 must price as "infinite".
  const std::vector<u64> huge(11, u64{1} << 62 | 3u);
  EXPECT_EQ(qs::MixedRadixCosetSampler::estimate_bytes(huge), UINT64_MAX);
  EXPECT_EQ(qs::SparseCosetSampler::estimate_bytes(huge), UINT64_MAX);
}

TEST_F(BudgetTest, SparseEstimateUsesHint) {
  // With |H| = 256 over |A| = 2^16: 256 + 65536/256 entries.
  const std::vector<u64> mods{1u << 16};
  const u64 with_hint = qs::SparseCosetSampler::estimate_bytes(mods, 256);
  EXPECT_EQ(with_hint, 4096u + 64u * (256u + 256u));
  // Without a hint the balanced 2*sqrt(|A|) split is assumed — the
  // same value here, since 256 is exactly sqrt(2^16).
  EXPECT_EQ(qs::SparseCosetSampler::estimate_bytes(mods), with_hint);
}

// ---------------------------------------------------------- plan_sampler

TEST_F(BudgetTest, PlanKeepsAutoDenseUnderBudget) {
  ScopedBudgetLimit limit(1u << 20);
  qs::SamplerChoice choice;  // kAuto
  const qs::SamplerPlan plan = qs::plan_sampler(choice, {64});
  EXPECT_EQ(plan.backend, qs::SamplerBackend::kMixedRadix);
  EXPECT_FALSE(plan.degraded);
  EXPECT_FALSE(plan.over_budget);
}

TEST_F(BudgetTest, PlanDegradesAutoDenseToSparse) {
  // Dense on 2^16 costs 48 * 65536 = 3 MiB; sparse ~36 KiB. A 1 MiB
  // limit must degrade the kAuto choice, deterministically.
  ScopedBudgetLimit limit(1u << 20);
  qs::SamplerChoice choice;
  const qs::SamplerPlan plan = qs::plan_sampler(choice, {1u << 16});
  EXPECT_EQ(plan.backend, qs::SamplerBackend::kSparse);
  EXPECT_TRUE(plan.degraded);
  EXPECT_FALSE(plan.over_budget);
}

TEST_F(BudgetTest, PlanNeverDegradesExplicitBackends) {
  ScopedBudgetLimit limit(1u << 20);
  qs::SamplerChoice choice;
  choice.backend = qs::SamplerBackend::kMixedRadix;
  const qs::SamplerPlan plan = qs::plan_sampler(choice, {1u << 16});
  EXPECT_EQ(plan.backend, qs::SamplerBackend::kMixedRadix);
  EXPECT_FALSE(plan.degraded);
  EXPECT_TRUE(plan.over_budget);
}

TEST_F(BudgetTest, PlanOverBudgetWhenNothingFits) {
  ScopedBudgetLimit limit(64);  // nothing fits 64 bytes
  qs::SamplerChoice choice;
  const qs::SamplerPlan plan = qs::plan_sampler(choice, {1u << 16});
  EXPECT_TRUE(plan.over_budget);
}

TEST_F(BudgetTest, PlanDependsOnLimitNotHeadroom) {
  // Degrade decisions must ignore live reservations: same limit, same
  // plan, no matter what is in flight.
  ScopedBudgetLimit limit(1u << 22);
  qs::SamplerChoice choice;
  const qs::SamplerPlan before = qs::plan_sampler(choice, {1u << 16});
  const Reservation hold =
      ResourceBudget::global().reserve((1u << 22) - 16, "hog");
  const qs::SamplerPlan during = qs::plan_sampler(choice, {1u << 16});
  EXPECT_EQ(before.backend, during.backend);
  EXPECT_EQ(before.estimated_bytes, during.estimated_bytes);
  EXPECT_EQ(before.over_budget, during.over_budget);
}

// ------------------------------------------------------ factory preflight

qs::LabelFn parity_label() {
  return [](const la::AbVec& x) { return x[0] % 2; };
}

TEST_F(BudgetTest, FactoryThrowsPermanentForExplicitDenseOverBudget) {
  ScopedBudgetLimit limit(1024);
  qs::SamplerChoice choice;
  choice.backend = qs::SamplerBackend::kMixedRadix;
  try {
    (void)qs::make_coset_sampler(choice, {4096}, parity_label(), nullptr);
    FAIL() << "over-budget explicit dense must throw";
  } catch (const resource_error& e) {
    EXPECT_FALSE(e.transient());
  }
  EXPECT_EQ(ResourceBudget::global().reserved(), 0u);
}

TEST_F(BudgetTest, FactoryReservesForSamplerLifetime) {
  ScopedBudgetLimit limit(1u << 20);
  qs::SamplerChoice choice;
  choice.backend = qs::SamplerBackend::kMixedRadix;
  {
    const auto sampler =
        qs::make_coset_sampler(choice, {16}, parity_label(), nullptr);
    EXPECT_EQ(ResourceBudget::global().reserved(), 16u * 48u);
  }
  EXPECT_EQ(ResourceBudget::global().reserved(), 0u);
}

TEST_F(BudgetTest, FactoryDegradedSamplerStillSolves) {
  // The degraded sparse backend must produce a working sampler for an
  // exactly-hiding label function.
  ScopedBudgetLimit limit(1u << 20);
  qs::SamplerChoice choice;  // kAuto -> dense 2^16 -> degrade to sparse
  const auto sampler = qs::make_coset_sampler(
      choice, {1u << 16},
      [](const la::AbVec& x) { return x[0] % 256; }, nullptr);
  EXPECT_EQ(sampler->backend_name(), "sparse");
  Rng rng(7);
  const la::AbVec ch = sampler->sample_character(rng);
  ASSERT_EQ(ch.size(), 1u);
}

// ----------------------------------------------------------- fault points

TEST_F(BudgetTest, FaultPointFiresOnNthHit) {
  faultpoint_reset("alloc.sampler:2");
  EXPECT_TRUE(faultpoints_armed());
  EXPECT_FALSE(faultpoint_should_fail("alloc.sampler"));  // hit 1
  EXPECT_TRUE(faultpoint_should_fail("alloc.sampler"));   // hit 2 fires
  EXPECT_FALSE(faultpoint_should_fail("alloc.sampler"));  // hit 3
  EXPECT_EQ(faultpoint_hits("alloc.sampler"), 3u);
}

TEST_F(BudgetTest, FaultPointCountSpansConsecutiveHits) {
  faultpoint_reset("ckpt.append:1:2");
  EXPECT_TRUE(faultpoint_should_fail("ckpt.append"));
  EXPECT_TRUE(faultpoint_should_fail("ckpt.append"));
  EXPECT_FALSE(faultpoint_should_fail("ckpt.append"));
}

TEST_F(BudgetTest, FaultPointsDisarmedByDefault) {
  faultpoint_reset("");
  EXPECT_FALSE(faultpoints_armed());
  EXPECT_FALSE(faultpoint_should_fail("alloc.sampler"));
}

TEST_F(BudgetTest, FaultSpecGrammarRejectsGarbage) {
  EXPECT_THROW(faultpoint_reset("alloc.sampler"), std::invalid_argument);
  EXPECT_THROW(faultpoint_reset("alloc.sampler:zero"),
               std::invalid_argument);
  EXPECT_THROW(faultpoint_reset("alloc.sampler:0"), std::invalid_argument);
  EXPECT_THROW(faultpoint_reset(":3"), std::invalid_argument);
}

TEST_F(BudgetTest, FaultSpecParsesMultiplePoints) {
  faultpoint_reset("alloc.sampler:1,ckpt.append:2:3");
  EXPECT_TRUE(faultpoint_should_fail("alloc.sampler"));
  EXPECT_FALSE(faultpoint_should_fail("ckpt.append"));
  EXPECT_TRUE(faultpoint_should_fail("ckpt.append"));
}

TEST_F(BudgetTest, ArmedAllocFaultYieldsTransientResourceError) {
  faultpoint_reset("alloc.sampler:1");
  qs::SamplerChoice choice;
  choice.backend = qs::SamplerBackend::kMixedRadix;
  try {
    (void)qs::make_coset_sampler(choice, {16}, parity_label(), nullptr);
    FAIL() << "armed alloc.sampler must throw";
  } catch (const resource_error& e) {
    EXPECT_TRUE(e.transient());
  }
  // The fault fired once; the retry (second construction) succeeds and
  // the ledger is clean afterwards.
  const auto sampler =
      qs::make_coset_sampler(choice, {16}, parity_label(), nullptr);
  EXPECT_NE(sampler, nullptr);
}

}  // namespace
}  // namespace nahsp
