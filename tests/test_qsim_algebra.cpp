// Gate-algebra property tests: operator identities that must hold on
// arbitrary states, checked on randomized states. These catch sign and
// ordering errors that fixed-vector tests miss.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nahsp/common/rng.h"
#include "nahsp/qsim/qft.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {
namespace {

StateVector random_state(int qubits, Rng& rng) {
  StateVector sv(qubits);
  double norm = 0.0;
  for (u64 i = 0; i < sv.dim(); ++i) {
    const cplx a{rng.uniform01() - 0.5, rng.uniform01() - 0.5};
    sv.set_amp(i, a);
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (u64 i = 0; i < sv.dim(); ++i) sv.set_amp(i, sv.amp(i) * s);
  return sv;
}

double distance(const StateVector& a, const StateVector& b) {
  double d = 0.0;
  for (u64 i = 0; i < a.dim(); ++i) d += std::norm(a.amp(i) - b.amp(i));
  return std::sqrt(d);
}

class GateAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(GateAlgebra, HZH_equals_X) {
  Rng rng(GetParam());
  StateVector a = random_state(5, rng);
  StateVector b = a;
  a.apply_h(2);
  a.apply_z(2);
  a.apply_h(2);
  b.apply_x(2);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, HXH_equals_Z) {
  Rng rng(100 + GetParam());
  StateVector a = random_state(5, rng);
  StateVector b = a;
  a.apply_h(1);
  a.apply_x(1);
  a.apply_h(1);
  b.apply_z(1);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, SwapAsThreeCnots) {
  Rng rng(200 + GetParam());
  StateVector a = random_state(4, rng);
  StateVector b = a;
  a.apply_swap(0, 3);
  b.apply_cnot(0, 3);
  b.apply_cnot(3, 0);
  b.apply_cnot(0, 3);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, PhasesCompose) {
  Rng rng(300 + GetParam());
  StateVector a = random_state(4, rng);
  StateVector b = a;
  a.apply_phase(2, 0.4);
  a.apply_phase(2, 0.9);
  b.apply_phase(2, 1.3);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, CPhaseIsSymmetricInControlAndTarget) {
  Rng rng(400 + GetParam());
  StateVector a = random_state(4, rng);
  StateVector b = a;
  a.apply_cphase(1, 3, 0.77);
  b.apply_cphase(3, 1, 0.77);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, DiagonalGatesCommute) {
  Rng rng(500 + GetParam());
  StateVector a = random_state(5, rng);
  StateVector b = a;
  a.apply_phase(0, 0.3);
  a.apply_cphase(2, 4, 1.1);
  a.apply_z(3);
  b.apply_z(3);
  b.apply_cphase(2, 4, 1.1);
  b.apply_phase(0, 0.3);
  EXPECT_LT(distance(a, b), 1e-10);
}

TEST_P(GateAlgebra, QftDiagonalisesCyclicShift) {
  // QFT|k> is an eigenvector of the shift S|x> = |x+1> with eigenvalue
  // e^{-2 pi i k / N}, so QFT^{-1} S QFT = diag(e^{-2 pi i y / N}):
  // the spectral fact behind period finding.
  Rng rng(600 + GetParam());
  const int bits = 5;
  const u64 n = u64{1} << bits;
  StateVector a = random_state(bits, rng);
  StateVector b = a;
  // a: conjugated shift.
  apply_qft(a, 0, bits);
  a.apply_permutation([n](u64 s) { return (s + 1) % n; });
  apply_inverse_qft(a, 0, bits);
  // b: explicit diagonal.
  for (u64 y = 0; y < n; ++y) {
    const double theta = -2.0 * std::numbers::pi * static_cast<double>(y) /
                         static_cast<double>(n);
    b.set_amp(y, b.amp(y) * std::polar(1.0, theta));
  }
  EXPECT_LT(distance(a, b), 1e-9);
}

TEST_P(GateAlgebra, MeasurementMarginalsConsistent) {
  // Measuring qubit q then the rest == measuring all at once, in
  // distribution. Spot-check via probabilities.
  Rng rng(700 + GetParam());
  StateVector sv = random_state(4, rng);
  for (int q = 0; q < 4; ++q) {
    const double p1 = sv.range_probability(q, 1, 1);
    const double p0 = sv.range_probability(q, 1, 0);
    EXPECT_NEAR(p0 + p1, 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateAlgebra, ::testing::Range(1, 7));

}  // namespace
}  // namespace nahsp::qs
