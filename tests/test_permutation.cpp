// Tests for permutations, Lehmer ranking, and Schreier–Sims.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/permutation.h"

namespace nahsp::grp {
namespace {

TEST(Perm, ComposeAndInverse) {
  const Perm a = perm_from_cycles(4, {{0, 1, 2}});
  const Perm b = perm_from_cycles(4, {{2, 3}});
  // (a*b)(x) = a(b(x)): b fixes 0 -> a(0)=1.
  const Perm ab = perm_compose(a, b);
  EXPECT_EQ(ab[0], 1);
  EXPECT_EQ(ab[2], 3);
  EXPECT_TRUE(perm_is_identity(perm_compose(a, perm_inverse(a))));
  EXPECT_TRUE(perm_is_identity(perm_compose(perm_inverse(b), b)));
}

TEST(Perm, CycleStringRoundtrip) {
  const Perm a = perm_from_cycles(5, {{0, 2, 1}, {3, 4}});
  EXPECT_EQ(perm_to_string(a), "(0 2 1)(3 4)");
  EXPECT_EQ(perm_to_string(perm_identity(5)), "()");
}

TEST(Perm, RankUnrankBijective) {
  for (int d = 1; d <= 5; ++d) {
    std::uint64_t fact = 1;
    for (int i = 2; i <= d; ++i) fact *= i;
    std::vector<bool> seen(fact, false);
    for (std::uint64_t r = 0; r < fact; ++r) {
      const Perm p = perm_unrank(d, r);
      const std::uint64_t back = perm_rank(p);
      EXPECT_EQ(back, r);
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
}

TEST(Perm, RankIdentityIsZero) {
  EXPECT_EQ(perm_rank(perm_identity(7)), 0u);
}

TEST(SchreierSims, SymmetricGroupOrders) {
  for (int d = 2; d <= 7; ++d) {
    std::vector<Perm> gens{perm_from_cycles(d, {{0, 1}})};
    if (d >= 3) {
      std::vector<int> full(d);
      for (int i = 0; i < d; ++i) full[i] = i;
      gens.push_back(perm_from_cycles(d, {full}));
    }
    SchreierSims ss(d, gens);
    std::uint64_t fact = 1;
    for (int i = 2; i <= d; ++i) fact *= i;
    EXPECT_EQ(ss.order(), fact) << "S_" << d;
  }
}

TEST(SchreierSims, AlternatingGroupOrders) {
  for (int d = 3; d <= 7; ++d) {
    std::vector<Perm> gens;
    for (int i = 2; i < d; ++i)
      gens.push_back(perm_from_cycles(d, {{0, 1, i}}));
    SchreierSims ss(d, gens);
    std::uint64_t fact = 1;
    for (int i = 2; i <= d; ++i) fact *= i;
    EXPECT_EQ(ss.order(), fact / 2) << "A_" << d;
  }
}

TEST(SchreierSims, KleinFourInS4) {
  const std::vector<Perm> gens{perm_from_cycles(4, {{0, 1}, {2, 3}}),
                               perm_from_cycles(4, {{0, 2}, {1, 3}})};
  SchreierSims ss(4, gens);
  EXPECT_EQ(ss.order(), 4u);
  EXPECT_TRUE(ss.contains(perm_from_cycles(4, {{0, 3}, {1, 2}})));
  EXPECT_FALSE(ss.contains(perm_from_cycles(4, {{0, 1}})));
}

TEST(SchreierSims, MembershipMatchesEnumeration) {
  Rng rng(31);
  // Dihedral-in-S_5: rotation (0..4), reflection.
  const std::vector<Perm> gens{
      perm_from_cycles(5, {{0, 1, 2, 3, 4}}),
      perm_from_cycles(5, {{1, 4}, {2, 3}}),
  };
  SchreierSims ss(5, gens);
  EXPECT_EQ(ss.order(), 10u);
  auto pg = std::make_shared<PermutationGroup>(5, gens);
  const auto elems = enumerate_group(*pg);
  EXPECT_EQ(elems.size(), 10u);
  int members = 0;
  for (std::uint64_t r = 0; r < 120; ++r) {
    const Perm p = perm_unrank(5, r);
    if (ss.contains(p)) ++members;
  }
  EXPECT_EQ(members, 10);
}

TEST(SchreierSims, MinCosetRepIsCanonicalAndInCoset) {
  Rng rng(37);
  // H = A_4 inside S_4.
  std::vector<Perm> gens;
  for (int i = 2; i < 4; ++i) gens.push_back(perm_from_cycles(4, {{0, 1, i}}));
  SchreierSims h(4, gens);
  // Canonicality: same coset -> same rep; different coset -> different.
  for (std::uint64_t r1 = 0; r1 < 24; ++r1) {
    for (std::uint64_t r2 = 0; r2 < 24; ++r2) {
      const Perm x = perm_unrank(4, r1);
      const Perm y = perm_unrank(4, r2);
      const bool same_coset = h.contains(
          perm_compose(perm_inverse(x), y));
      const bool same_rep =
          perm_rank(h.min_coset_rep(x)) == perm_rank(h.min_coset_rep(y));
      EXPECT_EQ(same_coset, same_rep);
    }
  }
}

TEST(SchreierSims, MinCosetRepStaysInCoset) {
  const std::vector<Perm> gens{perm_from_cycles(6, {{0, 1, 2}}),
                               perm_from_cycles(6, {{3, 4}})};
  SchreierSims h(6, gens);
  Rng rng(41);
  for (int t = 0; t < 100; ++t) {
    const Perm x = perm_unrank(6, rng.below(720));
    const Perm rep = h.min_coset_rep(x);
    // rep must lie in x*H.
    EXPECT_TRUE(h.contains(perm_compose(perm_inverse(x), rep)));
  }
}

TEST(PermutationGroup, GroupInterfaceConsistent) {
  auto s4 = symmetric_group(4);
  EXPECT_EQ(s4->order(), 24u);
  EXPECT_EQ(s4->degree(), 4);
  const Code a = s4->encode(perm_from_cycles(4, {{0, 1}}));
  const Code b = s4->encode(perm_from_cycles(4, {{1, 2}}));
  const Perm ab = s4->decode(s4->mul(a, b));
  EXPECT_EQ(ab, perm_compose(perm_from_cycles(4, {{0, 1}}),
                             perm_from_cycles(4, {{1, 2}})));
}

TEST(PermutationGroup, AlternatingFactory) {
  auto a5 = alternating_group(5);
  EXPECT_EQ(a5->order(), 60u);
  EXPECT_FALSE(a5->is_element(a5->encode(perm_from_cycles(5, {{0, 1}}))));
  EXPECT_TRUE(a5->is_element(a5->encode(perm_from_cycles(5, {{0, 1, 2}}))));
}

}  // namespace
}  // namespace nahsp::grp
