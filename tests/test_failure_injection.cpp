// Failure injection: oracles that break their promises must surface as
// typed errors (oracle_error / retry_exhausted / invalid_argument),
// never as silently wrong answers.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/budget.h"
#include "nahsp/common/check.h"
#include "nahsp/common/faultpoint.h"
#include "nahsp/common/jsonl.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/dihedral.h"
#include "nahsp/groups/heisenberg.h"
#include "nahsp/hsp/abelian.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/normal.h"
#include "nahsp/hsp/order.h"
#include "nahsp/hsp/presentation.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

TEST(FailureInjection, NonHidingOracleFailsPromiseValidation) {
  auto d = std::make_shared<grp::DihedralGroup>(6);
  auto counter = std::make_shared<bb::QueryCounter>();
  // "f" that collides across cosets (parity of the code): not hiding
  // any subgroup of D_6 with the claimed planted generators.
  bb::LambdaHider f([](Code c) { return c & 1; }, counter);
  EXPECT_FALSE(validate_hiding_promise(*d, f, {d->make(2, false)}));
}

TEST(FailureInjection, SchreierDetectsInconsistentLabels) {
  auto d = std::make_shared<grp::DihedralGroup>(6);
  const auto inst = bb::make_instance(d, {});
  // Labels {identity} vs {everything else} are not a coset partition of
  // any subgroup of D_6: the Schreier BFS must produce an element that
  // shares the non-identity label with its transversal representative
  // while their quotient is labelled non-identity -> oracle_error.
  auto label = [d](Code c) -> u64 { return d->is_id(c) ? 0 : 1; };
  EXPECT_THROW((void)schreier_generators(*inst.bb, label), oracle_error);
}

TEST(FailureInjection, AbelianSolverBudgetIsEnforced) {
  // A membership check that never accepts forces the Las Vegas loop to
  // its sample budget.
  // Hides <(2,0)> so the candidate has a generator for the check to
  // reject.
  const std::vector<u64> mods{4, 4};
  qs::LabelFn label = [&](const la::AbVec& x) { return (x[0] & 1) * 4 + x[1]; };
  bb::QueryCounter counter;
  qs::MixedRadixCosetSampler sampler(mods, label, &counter);
  Rng rng(1);
  AbelianHspOptions opts;
  opts.max_samples = 40;
  opts.membership_check = [](const la::AbVec&) { return false; };
  EXPECT_THROW(solve_abelian_hsp(sampler, rng, opts), std::invalid_argument);
}

TEST(FailureInjection, NormalSolverVerifiesItsOutput) {
  // A function hiding a NON-normal subgroup fed to the normal-subgroup
  // solver: the label verification must reject (oracle_error) or the
  // solver must fail loudly — it must not return a wrong subgroup
  // silently. H = <y> in D_6 is not normal.
  Rng rng(2);
  auto d = std::make_shared<grp::DihedralGroup>(6);
  const auto inst = bb::make_instance(d, {d->make(0, true)});
  NormalHspOptions opts;
  opts.order_bound = 12;
  opts.max_attempts = 4;
  try {
    const auto res =
        find_hidden_normal_subgroup(*inst.bb, *inst.f, rng, opts);
    // If it returns, every generator must genuinely lie in H.
    const u64 id_label = inst.f->eval_uncounted(d->id());
    for (const Code n : res.generators) {
      EXPECT_EQ(inst.f->eval_uncounted(n), id_label);
    }
  } catch (const std::exception&) {
    SUCCEED();  // loud failure is acceptable
  }
}

TEST(FailureInjection, OracleErrorCarriesContext) {
  try {
    NAHSP_ORACLE_CHECK(false, "labels are not constant on cosets");
    FAIL();
  } catch (const oracle_error& e) {
    EXPECT_NE(std::string(e.what()).find("cosets"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("oracle promise"),
              std::string::npos);
  }
}

TEST(FailureInjection, RetryBudgetsSurfaceAsRetryExhausted) {
  // Order finding with a label function that lies about periodicity
  // (constant labels make every y == 0; the verify always fails).
  Rng rng(3);
  auto power_label = [](u64) -> u64 { return 7; };
  auto verify = [](u64) { return false; };
  EXPECT_THROW(
      (void)find_order_shor(power_label, verify, 8, rng, nullptr),
      retry_exhausted);
}

TEST(FailureInjection, SimulatorGuardsStateBudget) {
  // Oversized domains are refused up front rather than thrashing.
  qs::LabelFn label = [](const la::AbVec&) { return 0u; };
  EXPECT_THROW(
      qs::MixedRadixCosetSampler({1u << 20, 1u << 20}, label, nullptr),
      std::invalid_argument);
}

// ------------------------------------------------ injected fault points

// Scoped disarm so a failing assertion cannot leak an armed harness
// into later tests.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) { faultpoint_reset(spec); }
  ~FaultGuard() { faultpoint_reset(""); }
};

TEST(FailureInjection, ArmedSamplerFaultIsTransientAndClears) {
  FaultGuard guard("alloc.sampler:1:1");
  const std::vector<u64> mods{3, 3};
  qs::LabelFn label = [](const la::AbVec& x) { return x[0]; };
  try {
    (void)qs::make_coset_sampler({}, mods, label, nullptr);
    FAIL() << "armed fault did not fire";
  } catch (const resource_error& e) {
    EXPECT_TRUE(e.transient());  // a shed allocation, not a hard reject
  }
  // The rule is spent: the same construction now succeeds, and the
  // sampler it returns works.
  const auto sampler = qs::make_coset_sampler({}, mods, label, nullptr);
  Rng rng(7);
  (void)sampler->sample_character(rng);
  EXPECT_EQ(faultpoint_hits("alloc.sampler"), 2u);
}

TEST(FailureInjection, CheckpointAppendFaultLeavesTheFileIntact) {
  const std::string path =
      ::testing::TempDir() + "nahsp_fault_ckpt.jsonl";
  std::remove(path.c_str());
  {
    JsonlWriter w(path);
    w.append("{\"g\":0}");
    FaultGuard guard("ckpt.append:1");
    EXPECT_THROW(w.append("{\"g\":1}"), std::runtime_error);
    // The armed rule is spent; the writer keeps working.
    w.append("{\"g\":2}");
  }
  const JsonlFile r = read_jsonl(path);
  ASSERT_EQ(r.lines.size(), 2u);  // the faulted line was never written
  EXPECT_EQ(r.lines[0], "{\"g\":0}");
  EXPECT_EQ(r.lines[1], "{\"g\":2}");
  EXPECT_FALSE(r.torn_tail);
  std::remove(path.c_str());
}

TEST(FailureInjection, FaultPointsAreDisarmedByAnEmptySpec) {
  faultpoint_reset("ckpt.append:1");
  EXPECT_TRUE(faultpoints_armed());
  faultpoint_reset("");
  EXPECT_FALSE(faultpoints_armed());
  const std::string path =
      ::testing::TempDir() + "nahsp_fault_disarmed.jsonl";
  std::remove(path.c_str());
  JsonlWriter w(path);
  w.append("{\"g\":0}");  // would throw if the rule had leaked
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nahsp::hsp
