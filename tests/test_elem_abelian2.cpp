// End-to-end tests for Theorem 13: HSP with an elementary Abelian normal
// 2-subgroup — the general (small factor) and cyclic-factor routes,
// covering the Rötteler–Beth wreath products and the paper's Section 6
// matrix groups.
#include <gtest/gtest.h>

#include "nahsp/bbox/hiding.h"
#include "nahsp/common/rng.h"
#include "nahsp/groups/algorithms.h"
#include "nahsp/groups/gf2group.h"
#include "nahsp/hsp/elem_abelian2.h"
#include "nahsp/hsp/instance.h"

namespace nahsp::hsp {
namespace {

using grp::Code;

void run_case(std::shared_ptr<const grp::GF2SemidirectCyclic> g,
              const std::vector<Code>& hidden, bool cyclic, Rng& rng) {
  const auto inst = bb::make_instance(g, hidden);
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = cyclic;
  opts.factor_order_bound = g->m();
  // Structure-aware fast oracles (documented substitution; the generic
  // quantum fallbacks are exercised by dedicated tests below).
  opts.n_membership = [g](Code c) { return g->rot_of(c) == 0; };
  opts.coset_label = [g](Code c) { return g->rot_of(c); };
  const auto res =
      solve_hsp_elem_abelian2(*inst.bb, g->normal_subgroup_generators(),
                              *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*g, res.generators,
                                   inst.planted_generators))
      << g->name() << (cyclic ? " cyclic" : " general");
  EXPECT_EQ(res.cyclic_route, cyclic);
}

TEST(ElemAbelian2, WreathProductKnownSubgroups) {
  Rng rng(1);
  auto w = grp::wreath_z2k_z2(2);
  for (const bool cyclic : {false, true}) {
    // H inside N.
    run_case(w, {w->make(0b0101, 0)}, cyclic, rng);
    // H containing the swap.
    run_case(w, {w->make(0, 1)}, cyclic, rng);
    // Mixed: swap-with-offset and a diagonal vector.
    run_case(w, {w->make(0b0110, 1), w->make(0b1111, 0)}, cyclic, rng);
    // Trivial and N itself.
    run_case(w, {}, cyclic, rng);
    run_case(w, w->normal_subgroup_generators(), cyclic, rng);
  }
}

TEST(ElemAbelian2, WreathProductRandomSweep) {
  Rng rng(2);
  for (const int k : {1, 2, 3}) {
    auto w = grp::wreath_z2k_z2(k);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<Code> gens;
      const int c = 1 + static_cast<int>(rng.below(2));
      for (int i = 0; i < c; ++i)
        gens.push_back(grp::random_word_element(*w, w->generators(), rng));
      run_case(w, gens, trial % 2 == 0, rng);
    }
  }
}

TEST(ElemAbelian2, PaperMatrixGroupCyclicFactor) {
  // The Section 6 family: N = Z_2^3, G/N = Z_7 (companion matrix of a
  // primitive cubic). G/N cyclic of odd order exercises the Sylow
  // decomposition with p != 2.
  Rng rng(3);
  auto g = grp::paper_matrix_group(grp::GF2Mat::companion(3, 0b011));
  run_case(g, {g->make(0b001, 0)}, true, rng);         // inside N
  run_case(g, {g->make(0, 1)}, true, rng);             // a complement
  run_case(g, {g->make(0, 1), g->make(0b111, 0)}, true, rng);
  run_case(g, {}, true, rng);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Code> gens{
        grp::random_word_element(*g, g->generators(), rng)};
    run_case(g, gens, true, rng);
  }
}

TEST(ElemAbelian2, CompositeCyclicFactor) {
  // G/N ~= Z_6: action of order 6 on Z_2^4 — two Sylow primes.
  Rng rng(4);
  grp::GF2Mat t(4);
  // Block diag: order-3 companion (x^2+x+1) and a swap (order 2).
  t.set(0, 1, true);
  t.set(1, 0, true);
  t.set(1, 1, true);  // [[0,1],[1,1]] has order 3
  t.set(2, 3, true);
  t.set(3, 2, true);
  auto g = std::make_shared<grp::GF2SemidirectCyclic>(4, t, 6);
  run_case(g, {g->make(0b0011, 0)}, true, rng);
  run_case(g, {g->make(0, 2)}, true, rng);  // order-3 part
  run_case(g, {g->make(0, 3)}, true, rng);  // order-2 part
  run_case(g, {g->make(0b1100, 3)}, true, rng);
  run_case(g, {g->make(0, 1)}, true, rng);  // full cyclic complement
}

TEST(ElemAbelian2, GeneralRouteWithQuantumNMembership) {
  // No structure-aware oracles: the BFS decides membership in N via the
  // quantum constructive-membership test.
  Rng rng(5);
  auto w = grp::wreath_z2k_z2(1);  // order 8
  const auto inst = bb::make_instance(w, {w->make(0b11, 0)});
  ElemAbelian2Options opts;  // defaults: no fast oracles
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, w->normal_subgroup_generators(), *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*w, res.generators,
                                   inst.planted_generators));
}

TEST(ElemAbelian2, CyclicRouteWithEnumeratedCosetLabels) {
  // Cyclic route without the fast coset-label oracle: falls back to
  // min-over-N enumeration.
  Rng rng(6);
  auto w = grp::wreath_z2k_z2(2);
  const auto inst = bb::make_instance(w, {w->make(0b0110, 1)});
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = 2;
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, w->normal_subgroup_generators(), *inst.f, rng, opts);
  EXPECT_TRUE(verify_same_subgroup(*w, res.generators,
                                   inst.planted_generators));
}

TEST(ElemAbelian2, CosetRepCountLogarithmicOnCyclicRoute) {
  Rng rng(7);
  auto g = grp::paper_matrix_group(grp::GF2Mat::companion(3, 0b011));
  const auto inst = bb::make_instance(g, {g->make(0, 1)});
  ElemAbelian2Options opts;
  opts.assume_cyclic_factor = true;
  opts.factor_order_bound = 7;
  opts.n_membership = [g](Code c) { return g->rot_of(c) == 0; };
  opts.coset_label = [g](Code c) { return g->rot_of(c); };
  const auto res = solve_hsp_elem_abelian2(
      *inst.bb, g->normal_subgroup_generators(), *inst.f, rng, opts);
  // |G/N| = 7 (prime): V = {x_7^{7^0}} only -> 1 rep; general route
  // would use 6.
  EXPECT_LE(res.coset_reps_used, 2u);
}

}  // namespace
}  // namespace nahsp::hsp
