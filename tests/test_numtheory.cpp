// Unit and property tests for the number-theory substrate.
#include <gtest/gtest.h>

#include "nahsp/common/rng.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/numtheory/contfrac.h"
#include "nahsp/numtheory/factor.h"

namespace nahsp::nt {
namespace {

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(0, 0), 0u);
  EXPECT_EQ(gcd(0, 7), 7u);
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(17, 13), 1u);
  EXPECT_EQ(gcd(1ULL << 40, 1ULL << 20), 1ULL << 20);
}

TEST(Lcm, BasicsAndOverflowGuard) {
  EXPECT_EQ(lcm(4, 6), 12u);
  EXPECT_EQ(lcm(0, 5), 0u);
  EXPECT_EQ(lcm(7, 7), 7u);
  EXPECT_THROW(lcm(~0ULL, ~0ULL - 1), std::invalid_argument);
}

TEST(ExtGcd, BezoutPropertyRandom) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng.below(1ULL << 32);
    const u64 b = rng.below(1ULL << 32);
    const ExtGcd e = ext_gcd(a, b);
    EXPECT_EQ(e.g, gcd(a, b));
    const i128 lhs = static_cast<i128>(a) * e.x + static_cast<i128>(b) * e.y;
    EXPECT_EQ(lhs, static_cast<i128>(e.g));
  }
}

TEST(MulMod, NoOverflow) {
  const u64 big = ~0ULL - 58;
  EXPECT_EQ(mulmod(big - 1, big - 2, big), 2u);
  EXPECT_EQ(mulmod(0, 123, 7), 0u);
}

TEST(PowMod, MatchesNaive) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const u64 m = 2 + rng.below(1000);
    const u64 a = rng.below(m);
    const u64 e = rng.below(30);
    u64 naive = 1 % m;
    for (u64 k = 0; k < e; ++k) naive = naive * a % m;
    EXPECT_EQ(powmod(a, e, m), naive);
  }
}

TEST(InvMod, InverseWhenCoprime) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const u64 m = 2 + rng.below(100000);
    const u64 a = rng.below(m);
    const auto inv = invmod(a, m);
    if (gcd(a % m, m) == 1) {
      ASSERT_TRUE(inv.has_value());
      EXPECT_EQ(mulmod(a, *inv, m), 1 % m);
    } else {
      EXPECT_FALSE(inv.has_value());
    }
  }
}

TEST(Crt, ConsistentSystems) {
  const auto r = crt(2, 3, 3, 5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 15u);
  EXPECT_EQ(r->first % 3, 2u);
  EXPECT_EQ(r->first % 5, 3u);
}

TEST(Crt, InconsistentSystems) {
  EXPECT_FALSE(crt(1, 4, 2, 4).has_value());
  EXPECT_FALSE(crt(0, 6, 1, 4).has_value());  // both even required
}

TEST(Crt, NonCoprimeConsistent) {
  const auto r = crt(2, 6, 8, 10);  // x = 8 mod 30
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 30u);
  EXPECT_EQ(r->first, 8u);
}

TEST(IsPrime, SmallTable) {
  const bool expect[] = {false, false, true,  true,  false, true,
                         false, true,  false, false, false, true};
  for (u64 n = 0; n < 12; ++n) EXPECT_EQ(is_prime(n), expect[n]) << n;
}

TEST(IsPrime, KnownLargePrimesAndComposites) {
  EXPECT_TRUE(is_prime(2147483647ULL));          // 2^31 - 1
  EXPECT_TRUE(is_prime(67280421310721ULL));      // factor of 2^64+1
  EXPECT_FALSE(is_prime(3215031751ULL));         // strong pseudoprime base 2,3,5,7
  EXPECT_FALSE(is_prime(341550071728321ULL));    // Jaeschke composite
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Factorize, RoundTripRandom) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const u64 n = 1 + rng.below(1ULL << 40);
    u64 prod = 1;
    for (const auto& [p, e] : factorize(n)) {
      EXPECT_TRUE(is_prime(p)) << p;
      for (int k = 0; k < e; ++k) prod *= p;
    }
    EXPECT_EQ(prod, n);
  }
}

TEST(Factorize, SemiPrime) {
  const u64 p = 1000003, q = 1000033;
  const auto f = factorize(p * q);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f.at(p), 1);
  EXPECT_EQ(f.at(q), 1);
}

TEST(MultiplicativeOrder, MatchesBruteForce) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const u64 m = 2 + rng.below(2000);
    const u64 a = rng.below(m);
    if (gcd(a % m, m) != 1) continue;
    const u64 r = multiplicative_order(a, m);
    EXPECT_EQ(powmod(a, r, m), 1 % m);
    // Minimality via brute force.
    u64 x = 1 % m;
    for (u64 k = 1; k < r; ++k) {
      x = mulmod(x, a, m);
      EXPECT_NE(x, 1 % m) << "order not minimal for a=" << a << " m=" << m;
    }
  }
}

TEST(EulerPhi, KnownValues) {
  EXPECT_EQ(euler_phi(1), 1u);
  EXPECT_EQ(euler_phi(2), 1u);
  EXPECT_EQ(euler_phi(9), 6u);
  EXPECT_EQ(euler_phi(10), 4u);
  EXPECT_EQ(euler_phi(97), 96u);
  EXPECT_EQ(euler_phi(360), 96u);
}

TEST(Divisors, Sorted) {
  const auto d = divisors(60);
  const std::vector<u64> expect{1, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60};
  EXPECT_EQ(d, expect);
  EXPECT_EQ(divisors(1), std::vector<u64>{1});
  EXPECT_EQ(divisors(49), (std::vector<u64>{1, 7, 49}));
}

TEST(ContFrac, ExpansionOfKnownRatio) {
  // 415/93 = [4; 2, 6, 7]
  const auto a = cf_expansion(415, 93);
  const std::vector<u64> expect{4, 2, 6, 7};
  EXPECT_EQ(a, expect);
}

TEST(ContFrac, ConvergentsRecoverRatio) {
  const auto cs = convergents(415, 93, 1000);
  ASSERT_FALSE(cs.empty());
  EXPECT_EQ(cs.back().p, 415u);
  EXPECT_EQ(cs.back().q, 93u);
}

TEST(ContFrac, ShorStyleRecovery) {
  // y/Q close to c/r should produce r among convergent denominators when
  // Q >= r^2 — the correctness core of order finding.
  const u64 r = 21, Q = 1u << 10;
  for (u64 c = 1; c < r; ++c) {
    if (gcd(c, r) != 1) continue;
    const u64 y = (c * Q + r / 2) / r;  // nearest integer to cQ/r
    const auto cs = convergents(y, Q, r);
    bool found = false;
    for (const auto& cv : cs)
      if (cv.q == r) found = true;
    EXPECT_TRUE(found) << "c=" << c;
  }
}

TEST(ContFrac, MaxDenominatorRespected) {
  for (const auto& cv : convergents(355, 113, 50)) EXPECT_LE(cv.q, 50u);
}

class PrimeSweep : public ::testing::TestWithParam<u64> {};

TEST_P(PrimeSweep, PhiOfPrimeIsPMinus1) {
  const u64 p = GetParam();
  ASSERT_TRUE(is_prime(p));
  EXPECT_EQ(euler_phi(p), p - 1);
  const auto f = factorize(p);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.begin()->first, p);
}

INSTANTIATE_TEST_SUITE_P(SmallPrimes, PrimeSweep,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 101, 257,
                                           65537, 1000003));

}  // namespace
}  // namespace nahsp::nt
