#!/usr/bin/env python3
"""Unit tests for perf_guard.py's exit-code and soft-fail contract,
its --validate schema mode, and diff_report.py's batch-report schema.

Run directly (python3 scripts/test_perf_guard.py) or via check.sh.
Exercises the guards as subprocesses so the contracts are tested at
the same surface CI uses: argv in, exit code + stderr out.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
GUARD = os.path.join(SCRIPTS, "perf_guard.py")
DIFF = os.path.join(SCRIPTS, "diff_report.py")


def raw(rows):
    """Raw --benchmark_out layout."""
    return {"benchmarks": rows}


def composite(rows):
    """Committed BENCH_prN.json layout."""
    return {"note": "test", "benchmarks": {"suite": {"results": rows}}}


def row(name, t):
    return {"name": name, "real_time": t, "time_unit": "ns"}


class PerfGuardTest(unittest.TestCase):
    def guard(self, base, fresh, *extra):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "base.json")
            fp = os.path.join(d, "fresh.json")
            with open(bp, "w") as f:
                json.dump(base, f)
            with open(fp, "w") as f:
                json.dump(fresh, f)
            return subprocess.run(
                [sys.executable, GUARD, bp, fp, *extra],
                capture_output=True, text=True)

    def test_within_budget_passes(self):
        r = self.guard(raw([row("bm_a", 100.0)]), raw([row("bm_a", 110.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_regression_fails(self):
        r = self.guard(raw([row("bm_a", 100.0)]), raw([row("bm_a", 200.0)]))
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSION", r.stdout)

    def test_composite_baseline_layout(self):
        r = self.guard(composite([row("bm_a", 100.0)]),
                       raw([row("bm_a", 105.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_new_backend_rows_soft_pass(self):
        # The exact situation a new backend's bench rows create: the
        # fresh JSON holds only names the baseline has never seen.
        r = self.guard(raw([row("bm_old", 100.0)]),
                       raw([row("bm_sparse/16", 50.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no baseline row", r.stderr)
        self.assertIn("soft pass", r.stderr)

    def test_missing_metric_named_warning(self):
        base = raw([{"name": "bm_a", "cpu_time": 90.0}])
        r = self.guard(base, raw([row("bm_a", 100.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("lacks metric 'real_time'", r.stderr)

    def test_strict_escalates_warnings(self):
        r = self.guard(raw([row("bm_old", 100.0)]),
                       raw([row("bm_new", 50.0)]), "--strict")
        self.assertEqual(r.returncode, 1)

    def test_bad_layout_is_usage_error(self):
        r = self.guard({"not": "benchmarks"}, raw([row("bm_a", 1.0)]))
        self.assertEqual(r.returncode, 2)
        self.assertIn("unrecognised benchmark JSON layout", r.stderr)

    def test_unreadable_file_is_usage_error(self):
        with tempfile.TemporaryDirectory() as d:
            fp = os.path.join(d, "fresh.json")
            with open(fp, "w") as f:
                json.dump(raw([row("bm_a", 1.0)]), f)
            r = subprocess.run(
                [sys.executable, GUARD,
                 os.path.join(d, "missing.json"), fp],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)

    def test_filter_restricts_matches(self):
        base = raw([row("bm_a", 100.0), row("bm_b", 100.0)])
        fresh = raw([row("bm_a", 105.0), row("bm_b", 500.0)])
        r = self.guard(base, fresh, "--filter", "bm_a")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_missing_fresh_without_validate_is_usage_error(self):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "base.json")
            with open(bp, "w") as f:
                json.dump(raw([row("bm_a", 1.0)]), f)
            r = subprocess.run([sys.executable, GUARD, bp],
                               capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)


def bench_row(name="BM_Solve_dihedral", **overrides):
    """One well-formed BENCH_*.json result row."""
    base = {"name": name, "threads": 1, "iterations": 3,
            "real_time": 12.5, "cpu_time": 12.4, "time_unit": "ms"}
    base.update(overrides)
    return {k: v for k, v in base.items() if v is not None}


def bench_doc(rows=None):
    """The composite document `nahsp bench --out` emits."""
    return {
        "schema": "nahsp-bench/v1",
        "note": "test fixture",
        "benchmarks": {
            "bench_cli_normal": {
                "context": {"num_cpus": 1, "mode": "quick"},
                "results": rows if rows is not None else [bench_row()],
            },
        },
    }


class ValidateTest(unittest.TestCase):
    """perf_guard.py --validate: one subprocess per table case."""

    # (case name, document, expected exit code)
    CASES = [
        ("well_formed", bench_doc(), 0),
        ("raw_list_layout", {"benchmarks": [bench_row()]}, 0),
        ("missing_name", bench_doc([bench_row(name=None)]), 2),
        ("empty_name", bench_doc([bench_row(name="")]), 2),
        ("missing_cpu_time", bench_doc([bench_row(cpu_time=None)]), 2),
        ("zero_iterations", bench_doc([bench_row(iterations=0)]), 2),
        ("bool_iterations", bench_doc([bench_row(iterations=True)]), 2),
        ("string_real_time", bench_doc([bench_row(real_time="fast")]), 2),
        ("missing_time_unit", bench_doc([bench_row(time_unit=None)]), 2),
        ("no_rows_at_all", bench_doc([]), 2),
        ("no_benchmarks_key", {"note": "empty"}, 2),
        ("suite_without_results",
         {"benchmarks": {"suite": {"context": {}}}}, 2),
        ("non_string_note",
         {"note": 7, "benchmarks": [bench_row()]}, 2),
    ]

    def validate(self, doc):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "bench.json")
            with open(p, "w") as f:
                json.dump(doc, f)
            return subprocess.run(
                [sys.executable, GUARD, "--validate", p],
                capture_output=True, text=True)

    def test_table(self):
        for name, doc, expected in self.CASES:
            with self.subTest(case=name):
                r = self.validate(doc)
                self.assertEqual(r.returncode, expected,
                                 f"{name}: {r.stdout}{r.stderr}")

    def test_nonfinite_time_is_rejected(self):
        # json.dump would refuse Infinity with allow_nan=False; write the
        # non-standard token by hand, as a buggy C++ writer would.
        text = json.dumps(bench_doc()).replace("12.5", "Infinity")
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "bench.json")
            with open(p, "w") as f:
                f.write(text)
            r = subprocess.run(
                [sys.executable, GUARD, "--validate", p],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("Infinity", r.stderr)

    def test_two_files_both_validated(self):
        with tempfile.TemporaryDirectory() as d:
            good = os.path.join(d, "good.json")
            bad = os.path.join(d, "bad.json")
            with open(good, "w") as f:
                json.dump(bench_doc(), f)
            with open(bad, "w") as f:
                json.dump(bench_doc([bench_row(time_unit=None)]), f)
            r = subprocess.run(
                [sys.executable, GUARD, "--validate", good, bad],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)
        self.assertIn("good.json validates", r.stdout)
        self.assertIn("bad.json", r.stderr)


def batch_report():
    """A minimal well-formed `nahsp batch --json` document."""
    queries = {"group_ops": 10, "classical_queries": 2,
               "quantum_queries": 3, "sim_basis_evals": 40}
    return {
        "schema": "nahsp-report/v1",
        "command": "batch",
        "file": "examples/fleet.scn",
        "seed": 1,
        "threads": 1,
        "count": 2,
        "solved": 2,
        "verified": 2,
        "items": [
            {"index": i, "scenario": "dihedral", "group": "D_12",
             "success": True, "method": "theorem-8", "error": "",
             "verified": True, "generators": [3], "queries": dict(queries),
             "seconds": 0.5 * i}
            for i in range(2)
        ],
        "total_queries": {k: 2 * v for k, v in queries.items()},
        "seconds": 1.25,
    }


class DiffReportBatchTest(unittest.TestCase):
    """diff_report.py on `command: batch` documents."""

    def diff(self, golden, actual):
        with tempfile.TemporaryDirectory() as d:
            gp = os.path.join(d, "golden.json")
            ap = os.path.join(d, "actual.json")
            with open(gp, "w") as f:
                json.dump(golden, f)
            with open(ap, "w") as f:
                json.dump(actual, f)
            return subprocess.run(
                [sys.executable, DIFF, gp, ap],
                capture_output=True, text=True)

    def test_identical_reports_match(self):
        r = self.diff(batch_report(), batch_report())
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_seconds_volatile_at_both_levels(self):
        other = batch_report()
        other["seconds"] = 99.0
        other["items"][1]["seconds"] = 42.0
        r = self.diff(batch_report(), other)
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_query_count_drift_fails(self):
        other = batch_report()
        other["items"][0]["queries"]["group_ops"] += 1
        r = self.diff(batch_report(), other)
        self.assertEqual(r.returncode, 1)
        self.assertIn("items", r.stdout)

    # (case name, mutation applied to a well-formed report, expected
    # schema-error substring)
    SCHEMA_CASES = [
        ("missing_total_queries",
         lambda d: d.pop("total_queries"), "total_queries"),
        ("count_items_mismatch",
         lambda d: d.update(count=5), "count"),
        ("item_missing_field",
         lambda d: d["items"][0].pop("scenario"), "scenario"),
        ("item_index_out_of_order",
         lambda d: d["items"][0].update(index=7), "fleet order"),
        ("item_generators_non_integer",
         lambda d: d["items"][0].update(generators=["x"]),
         "non-integers"),
        ("unknown_command",
         lambda d: d.update(command="shard"), "command"),
        ("unexpected_field",
         lambda d: d.update(shards=4), "unexpected field"),
    ]

    def test_schema_table(self):
        for name, mutate, needle in self.SCHEMA_CASES:
            with self.subTest(case=name):
                bad = batch_report()
                mutate(bad)
                r = self.diff(batch_report(), bad)
                self.assertEqual(r.returncode, 1, f"{name}: {r.stdout}")
                self.assertIn(needle, r.stdout, name)

    def test_solve_golden_still_validates(self):
        # The solve path must be untouched by the batch-schema split:
        # a committed golden diffed against itself stays green.
        golden = os.path.join(os.path.dirname(SCRIPTS), "tests", "golden",
                              "solve_dihedral.json")
        r = subprocess.run([sys.executable, DIFF, golden, golden],
                           capture_output=True, text=True)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
