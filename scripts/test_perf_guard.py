#!/usr/bin/env python3
"""Unit tests for perf_guard.py's exit-code and soft-fail contract.

Run directly (python3 scripts/test_perf_guard.py) or via check.sh.
Exercises the guard as a subprocess so the contract is tested at the
same surface CI uses: argv in, exit code + stderr out.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

GUARD = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "perf_guard.py")


def raw(rows):
    """Raw --benchmark_out layout."""
    return {"benchmarks": rows}


def composite(rows):
    """Committed BENCH_prN.json layout."""
    return {"note": "test", "benchmarks": {"suite": {"results": rows}}}


def row(name, t):
    return {"name": name, "real_time": t, "time_unit": "ns"}


class PerfGuardTest(unittest.TestCase):
    def guard(self, base, fresh, *extra):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "base.json")
            fp = os.path.join(d, "fresh.json")
            with open(bp, "w") as f:
                json.dump(base, f)
            with open(fp, "w") as f:
                json.dump(fresh, f)
            return subprocess.run(
                [sys.executable, GUARD, bp, fp, *extra],
                capture_output=True, text=True)

    def test_within_budget_passes(self):
        r = self.guard(raw([row("bm_a", 100.0)]), raw([row("bm_a", 110.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_regression_fails(self):
        r = self.guard(raw([row("bm_a", 100.0)]), raw([row("bm_a", 200.0)]))
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSION", r.stdout)

    def test_composite_baseline_layout(self):
        r = self.guard(composite([row("bm_a", 100.0)]),
                       raw([row("bm_a", 105.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_new_backend_rows_soft_pass(self):
        # The exact situation a new backend's bench rows create: the
        # fresh JSON holds only names the baseline has never seen.
        r = self.guard(raw([row("bm_old", 100.0)]),
                       raw([row("bm_sparse/16", 50.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no baseline row", r.stderr)
        self.assertIn("soft pass", r.stderr)

    def test_missing_metric_named_warning(self):
        base = raw([{"name": "bm_a", "cpu_time": 90.0}])
        r = self.guard(base, raw([row("bm_a", 100.0)]))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("lacks metric 'real_time'", r.stderr)

    def test_strict_escalates_warnings(self):
        r = self.guard(raw([row("bm_old", 100.0)]),
                       raw([row("bm_new", 50.0)]), "--strict")
        self.assertEqual(r.returncode, 1)

    def test_bad_layout_is_usage_error(self):
        r = self.guard({"not": "benchmarks"}, raw([row("bm_a", 1.0)]))
        self.assertEqual(r.returncode, 2)
        self.assertIn("unrecognised benchmark JSON layout", r.stderr)

    def test_unreadable_file_is_usage_error(self):
        with tempfile.TemporaryDirectory() as d:
            fp = os.path.join(d, "fresh.json")
            with open(fp, "w") as f:
                json.dump(raw([row("bm_a", 1.0)]), f)
            r = subprocess.run(
                [sys.executable, GUARD,
                 os.path.join(d, "missing.json"), fp],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)

    def test_filter_restricts_matches(self):
        base = raw([row("bm_a", 100.0), row("bm_b", 100.0)])
        fresh = raw([row("bm_a", 105.0), row("bm_b", 500.0)])
        r = self.guard(base, fresh, "--filter", "bm_a")
        self.assertEqual(r.returncode, 0, r.stderr)


if __name__ == "__main__":
    unittest.main()
