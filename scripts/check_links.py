#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Scans the given markdown files (default: README.md, docs/*.md,
examples/README.md) for inline links/images `[text](target)` and
reference definitions `[id]: target`, and verifies that every relative
target exists on disk (anchors are stripped; http/https/mailto links
are not fetched). Exit 0 when every link resolves, 1 otherwise.
"""
import glob
import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def targets_in(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain bracketed shell/CMake text
    # that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    text = re.sub(r"`[^`\n]*`", "", text)
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def main():
    files = sys.argv[1:] or (
        ["README.md"]
        + sorted(glob.glob("docs/*.md"))
        + ["examples/README.md"]
    )
    broken = []
    checked = 0
    for md in files:
        base = os.path.dirname(md)
        for target in targets_in(md):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            checked += 1
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(base, rel))
            if not os.path.exists(resolved):
                broken.append(f"{md}: broken link '{target}' "
                              f"(resolved to {resolved})")
    for line in broken:
        print(line)
    print(f"checked {checked} relative links in {len(files)} files, "
          f"{len(broken)} broken")
    sys.exit(1 if broken else 0)


if __name__ == "__main__":
    main()
