#!/usr/bin/env bash
# Shard smoke suite: the sharded batch driver end to end, through real
# child processes.
#
#   1. `nahsp batch --shards {2,4}` over examples/fleet.scn must produce
#      a merged --stable JSON report byte-identical to the unsharded run.
#   2. A shard SIGKILL'd after its 2nd checkpoint record (NAHSP_CRASH_AFTER
#      fault injection) must leave exactly 2 durable records; `--resume`
#      must reuse them without rewriting a byte and still converge to the
#      byte-identical report.
#   3. A checkpoint file with a torn final line (truncated mid-append)
#      must resume with a warning, re-running only the torn item.
#
# Usage: scripts/shard_smoke.sh [build-dir]        (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
NAHSP="$BUILD_DIR/src/cli/nahsp"
FLEET=examples/fleet.scn
SEED=1
THREADS=2

if [[ ! -x "$NAHSP" ]]; then
  echo "error: $NAHSP not built (configure with -DNAHSP_BUILD_CLI=ON)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run_batch() {  # run_batch OUT.json [extra args...]
  local out="$1"; shift
  "$NAHSP" batch "$FLEET" seed="$SEED" threads="$THREADS" \
    --stable --json "$@" > "$out"
}

run_resume() {  # run_resume OUT.json DIR  (seed comes from the manifest)
  local out="$1" dir="$2"
  "$NAHSP" batch --resume "$dir" threads="$THREADS" \
    --stable --json > "$out"
}

echo "== unsharded reference run =="
run_batch "$WORK/unsharded.json"

echo "== --shards 2 and --shards 4 merge byte-identically =="
for n in 2 4; do
  run_batch "$WORK/sharded$n.json" --shards "$n" \
    --checkpoint-dir "$WORK/ck$n" 2> "$WORK/sharded$n.err"
  cmp "$WORK/unsharded.json" "$WORK/sharded$n.json" \
    || { echo "FAIL: --shards $n report differs from unsharded" >&2; exit 1; }
  echo "  --shards $n: byte-identical"
done

echo "== SIGKILL a shard after 2 durable records =="
CRASH_DIR="$WORK/ckcrash"
crash_status=0
NAHSP_CRASH_AFTER=2 NAHSP_CRASH_SHARD=1 \
  run_batch "$WORK/crashed.json" --shards 2 --checkpoint-dir "$CRASH_DIR" \
  2> "$WORK/crash.err" || crash_status=$?
if [[ "$crash_status" != 1 ]]; then
  echo "FAIL: crashed run exited $crash_status, expected 1" >&2
  cat "$WORK/crash.err" >&2
  exit 1
fi
grep -q "killed by signal" "$WORK/crash.err" \
  || { echo "FAIL: parent did not report the killed child" >&2; exit 1; }
grep -q -- "--resume" "$WORK/crash.err" \
  || { echo "FAIL: crash diagnostics do not advise --resume" >&2; exit 1; }

CKPT="$CRASH_DIR/shard-1-of-2.jsonl"
durable=$(wc -l < "$CKPT")
if [[ "$durable" != 2 ]]; then
  echo "FAIL: expected 2 durable records in $CKPT, found $durable" >&2
  exit 1
fi
cp "$CKPT" "$WORK/durable_before_resume"

echo "== --resume finishes the fleet without re-running durable items =="
run_resume "$WORK/resumed.json" "$CRASH_DIR" 2> "$WORK/resume.err"
cmp "$WORK/unsharded.json" "$WORK/resumed.json" \
  || { echo "FAIL: resumed report differs from unsharded" >&2; exit 1; }
# The records that survived the crash must be byte-unchanged in place —
# resume appends the missing items, it never rewrites durable ones.
head -n 2 "$CKPT" > "$WORK/durable_after_resume"
cmp "$WORK/durable_before_resume" "$WORK/durable_after_resume" \
  || { echo "FAIL: resume rewrote pre-crash checkpoint records" >&2; exit 1; }
grep -q "2 reused" "$WORK/resume.err" \
  || { echo "FAIL: resume did not report the 2 reused records" >&2; exit 1; }

echo "== a second --resume reuses everything =="
run_resume "$WORK/resumed2.json" "$CRASH_DIR" 2> "$WORK/resume2.err"
cmp "$WORK/unsharded.json" "$WORK/resumed2.json" \
  || { echo "FAIL: second resume report differs" >&2; exit 1; }
if grep -Eq "[1-9][0-9]* item\(s\) run" "$WORK/resume2.err"; then
  echo "FAIL: second resume re-ran checkpointed items:" >&2
  cat "$WORK/resume2.err" >&2
  exit 1
fi

echo "== a torn final checkpoint line is skipped with a warning =="
TORN_DIR="$WORK/cktorn"
cp -r "$CRASH_DIR" "$TORN_DIR"
TORN_CKPT="$TORN_DIR/shard-0-of-2.jsonl"
# Chop the trailing newline plus a few bytes off the last record: the
# torn tail a SIGKILL mid-append leaves behind.
size=$(stat -c %s "$TORN_CKPT")
truncate -s $((size - 10)) "$TORN_CKPT"
run_resume "$WORK/torn.json" "$TORN_DIR" 2> "$WORK/torn.err"
grep -qi "torn final line" "$WORK/torn.err" \
  || { echo "FAIL: torn checkpoint line produced no warning" >&2; exit 1; }
cmp "$WORK/unsharded.json" "$WORK/torn.json" \
  || { echo "FAIL: report after torn-line recovery differs" >&2; exit 1; }

echo
echo "== shard smoke passed =="
