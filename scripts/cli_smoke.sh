#!/usr/bin/env bash
# CLI smoke suite: `nahsp selftest`, then one pinned-seed
# `solve --json` per registered scenario diffed (schema-checked,
# volatile fields stripped) against the golden reports in tests/golden/,
# then a `batch` run over the example fleet.
#
# Usage: scripts/cli_smoke.sh [build-dir]        (default: build)
# Regenerating goldens after an intentional report change:
#   scripts/cli_smoke.sh --regen [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

REGEN=0
if [[ "${1:-}" == "--regen" ]]; then REGEN=1; shift; fi
BUILD_DIR="${1:-build}"
NAHSP="$BUILD_DIR/src/cli/nahsp"
GOLDEN_DIR="tests/golden"
OUT_DIR="$BUILD_DIR/cli_smoke"
# The pinned seed of every golden report; threads=1 pins the reported
# pool width (results are width-invariant, the report field is not).
SEED=1

if [[ ! -x "$NAHSP" ]]; then
  echo "error: $NAHSP not built (configure with -DNAHSP_BUILD_CLI=ON)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR" "$GOLDEN_DIR"

echo "== nahsp selftest (seed $SEED) =="
"$NAHSP" selftest seed="$SEED" threads=1

echo
echo "== per-scenario solve --json vs golden reports =="
status=0
for scenario in $("$NAHSP" list --names); do
  out="$OUT_DIR/solve_${scenario}.json"
  golden="$GOLDEN_DIR/solve_${scenario}.json"
  "$NAHSP" solve "$scenario" seed="$SEED" threads=1 --json > "$out"
  if [[ "$REGEN" == 1 ]]; then
    cp "$out" "$golden"
    echo "regenerated $golden"
  elif [[ ! -f "$golden" ]]; then
    echo "MISSING golden $golden (run scripts/cli_smoke.sh --regen)" >&2
    status=1
  else
    python3 scripts/diff_report.py "$golden" "$out" || status=1
  fi
done

echo
echo "== sparse-backend solve vs golden report =="
# One scenario forced onto the sparse engine (backend=sparse spec key):
# pins the factory wiring and the sparse report fields end to end.
out="$OUT_DIR/solve_elem_abelian2_sparse.json"
golden="$GOLDEN_DIR/solve_elem_abelian2_sparse.json"
"$NAHSP" solve elem_abelian2 k=14 hidden=1 backend=sparse \
  seed="$SEED" threads=1 --json > "$out"
if [[ "$REGEN" == 1 ]]; then
  cp "$out" "$golden"
  echo "regenerated $golden"
elif [[ ! -f "$golden" ]]; then
  echo "MISSING golden $golden (run scripts/cli_smoke.sh --regen)" >&2
  status=1
else
  python3 scripts/diff_report.py "$golden" "$out" || status=1
fi

echo
echo "== nahsp batch over examples/fleet.scn =="
"$NAHSP" batch examples/fleet.scn seed="$SEED" threads=1 > /dev/null
echo "batch ok"

if [[ "$status" != 0 ]]; then
  echo "cli smoke FAILED" >&2
  exit "$status"
fi
echo
echo "== cli smoke passed =="
