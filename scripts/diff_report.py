#!/usr/bin/env python3
"""Schema-check and diff a `nahsp solve --json` report against a golden.

Usage: diff_report.py GOLDEN.json ACTUAL.json

Both files must satisfy the nahsp-report/v1 solve schema; then they are
compared field by field with the volatile fields (wall-clock `seconds`)
stripped. Exit 0 on match, 1 on schema violation or mismatch, printing
what differs.
"""
import json
import sys

# field name -> required type(s); nested objects listed separately.
SOLVE_SCHEMA = {
    "schema": str,
    "command": str,
    "scenario": str,
    "group": str,
    "group_order": int,
    "params": dict,
    "seed": int,
    "threads": int,
    "backend": str,
    "success": bool,
    "method": str,
    "error": str,
    "generators": list,
    "planted": list,
    "verified": bool,
    "queries": dict,
    "seconds": (int, float),
}
QUERIES_SCHEMA = {
    "group_ops": int,
    "classical_queries": int,
    "quantum_queries": int,
    "sim_basis_evals": int,
}
# Fields legitimately different between two runs of the same scenario.
VOLATILE = {"seconds"}


def _reject_nonfinite(token):
    # json.loads() accepts the non-standard NaN/Infinity/-Infinity
    # tokens by default. A report containing them is not valid JSON and
    # means the writer emitted a non-finite double — fail loudly.
    raise ValueError(f"non-finite JSON token {token!r} is not allowed "
                     "in a report")


def load_report(path):
    with open(path) as f:
        return json.load(f, parse_constant=_reject_nonfinite)


def check_schema(report, path):
    errors = []
    for key, types in SOLVE_SCHEMA.items():
        if key not in report:
            errors.append(f"{path}: missing required field '{key}'")
        elif not isinstance(report[key], types):
            errors.append(
                f"{path}: field '{key}' has type "
                f"{type(report[key]).__name__}, expected {types}")
    for key in report:
        if key not in SOLVE_SCHEMA:
            errors.append(f"{path}: unexpected field '{key}'")
    if report.get("schema") != "nahsp-report/v1":
        errors.append(f"{path}: schema tag is {report.get('schema')!r}, "
                      "expected 'nahsp-report/v1'")
    if report.get("command") != "solve":
        errors.append(f"{path}: command is {report.get('command')!r}, "
                      "expected 'solve'")
    if report.get("backend") not in (
            "auto", "mixed-radix", "qubit", "sparse", "analytic"):
        errors.append(f"{path}: backend is {report.get('backend')!r}, "
                      "expected a sampler-backend selector")
    queries = report.get("queries")
    if isinstance(queries, dict):
        for key, types in QUERIES_SCHEMA.items():
            if not isinstance(queries.get(key), types):
                errors.append(f"{path}: queries.{key} missing or non-integer")
    for key in ("generators", "planted"):
        if isinstance(report.get(key), list):
            bad = [v for v in report[key] if not isinstance(v, int)]
            if bad:
                errors.append(f"{path}: {key} contains non-integers: {bad}")
    return errors


def strip_volatile(report):
    return {k: v for k, v in report.items() if k not in VOLATILE}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    golden_path, actual_path = sys.argv[1], sys.argv[2]
    try:
        golden = load_report(golden_path)
        actual = load_report(actual_path)
    except ValueError as e:
        print(f"invalid report JSON: {e}")
        sys.exit(1)

    errors = check_schema(golden, golden_path) + check_schema(
        actual, actual_path)
    if errors:
        print("\n".join(errors))
        sys.exit(1)

    golden_cmp, actual_cmp = strip_volatile(golden), strip_volatile(actual)
    if golden_cmp == actual_cmp:
        print(f"ok: {actual_path} matches {golden_path}")
        return
    for key in sorted(set(golden_cmp) | set(actual_cmp)):
        g, a = golden_cmp.get(key), actual_cmp.get(key)
        if g != a:
            print(f"mismatch in '{key}':\n  golden: {g!r}\n  actual: {a!r}")
    sys.exit(1)


if __name__ == "__main__":
    main()
