#!/usr/bin/env python3
"""Schema-check and diff a `nahsp solve`/`batch --json` report.

Usage: diff_report.py GOLDEN.json ACTUAL.json

Both files must satisfy the nahsp-report/v1 schema for their `command`
(solve or batch — the two documents must agree); then they are
compared field by field with the volatile fields (wall-clock `seconds`,
including each batch item's) stripped. Exit 0 on match, 1 on schema
violation or mismatch, printing what differs.
"""
import json
import sys

# field name -> required type(s); nested objects listed separately.
SOLVE_SCHEMA = {
    "schema": str,
    "command": str,
    "scenario": str,
    "group": str,
    "group_order": int,
    "params": dict,
    "seed": int,
    "threads": int,
    "backend": str,
    "success": bool,
    "method": str,
    "error": str,
    "generators": list,
    "planted": list,
    "verified": bool,
    "queries": dict,
    "seconds": (int, float),
}
QUERIES_SCHEMA = {
    "group_ops": int,
    "classical_queries": int,
    "quantum_queries": int,
    "sim_basis_evals": int,
}
# `nahsp batch --json` (sharded or not — the merged report is the same
# document) and its per-item objects.
BATCH_SCHEMA = {
    "schema": str,
    "command": str,
    "file": str,
    "seed": int,
    "threads": int,
    "count": int,
    "solved": int,
    "verified": int,
    "items": list,
    "total_queries": dict,
    "seconds": (int, float),
}
BATCH_ITEM_SCHEMA = {
    "index": int,
    "scenario": str,
    "group": str,
    "success": bool,
    "method": str,
    "error": str,
    "verified": bool,
    "generators": list,
    "queries": dict,
    "seconds": (int, float),
}
# Fields legitimately different between two runs of the same scenario.
VOLATILE = {"seconds"}


def _reject_nonfinite(token):
    # json.loads() accepts the non-standard NaN/Infinity/-Infinity
    # tokens by default. A report containing them is not valid JSON and
    # means the writer emitted a non-finite double — fail loudly.
    raise ValueError(f"non-finite JSON token {token!r} is not allowed "
                     "in a report")


def load_report(path):
    with open(path) as f:
        return json.load(f, parse_constant=_reject_nonfinite)


def _check_fields(obj, schema, where):
    errors = []
    for key, types in schema.items():
        if key not in obj:
            errors.append(f"{where}: missing required field '{key}'")
        elif not isinstance(obj[key], types):
            errors.append(
                f"{where}: field '{key}' has type "
                f"{type(obj[key]).__name__}, expected {types}")
    for key in obj:
        if key not in schema:
            errors.append(f"{where}: unexpected field '{key}'")
    return errors


def _check_queries(obj, where):
    errors = []
    if isinstance(obj, dict):
        for key, types in QUERIES_SCHEMA.items():
            if not isinstance(obj.get(key), types):
                errors.append(f"{where}.{key} missing or non-integer")
    return errors


def _check_codes(obj, key, where):
    if isinstance(obj.get(key), list):
        bad = [v for v in obj[key] if not isinstance(v, int)]
        if bad:
            return [f"{where}: {key} contains non-integers: {bad}"]
    return []


def check_solve_schema(report, path):
    errors = _check_fields(report, SOLVE_SCHEMA, path)
    if report.get("backend") not in (
            "auto", "mixed-radix", "qubit", "sparse", "analytic"):
        errors.append(f"{path}: backend is {report.get('backend')!r}, "
                      "expected a sampler-backend selector")
    errors += _check_queries(report.get("queries"), f"{path}: queries")
    for key in ("generators", "planted"):
        errors += _check_codes(report, key, path)
    return errors


def check_batch_schema(report, path):
    errors = _check_fields(report, BATCH_SCHEMA, path)
    errors += _check_queries(report.get("total_queries"),
                             f"{path}: total_queries")
    items = report.get("items")
    if not isinstance(items, list):
        return errors
    if isinstance(report.get("count"), int) and \
            report["count"] != len(items):
        errors.append(f"{path}: count is {report['count']}, but items "
                      f"holds {len(items)} entries")
    for i, item in enumerate(items):
        where = f"{path}: items[{i}]"
        if not isinstance(item, dict):
            errors.append(f"{where}: not an object")
            continue
        errors += _check_fields(item, BATCH_ITEM_SCHEMA, where)
        errors += _check_queries(item.get("queries"), f"{where}: queries")
        errors += _check_codes(item, "generators", where)
        if item.get("index") != i:
            errors.append(f"{where}: index is {item.get('index')!r}, "
                          f"expected {i} (fleet order)")
    return errors


def check_schema(report, path):
    errors = []
    if report.get("schema") != "nahsp-report/v1":
        errors.append(f"{path}: schema tag is {report.get('schema')!r}, "
                      "expected 'nahsp-report/v1'")
    command = report.get("command")
    if command == "solve":
        errors += check_solve_schema(report, path)
    elif command == "batch":
        errors += check_batch_schema(report, path)
    else:
        errors.append(f"{path}: command is {command!r}, "
                      "expected 'solve' or 'batch'")
    return errors


def strip_volatile(report):
    out = {k: v for k, v in report.items() if k not in VOLATILE}
    if isinstance(out.get("items"), list):  # batch: per-item seconds too
        out["items"] = [strip_volatile(i) if isinstance(i, dict) else i
                        for i in out["items"]]
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    golden_path, actual_path = sys.argv[1], sys.argv[2]
    try:
        golden = load_report(golden_path)
        actual = load_report(actual_path)
    except ValueError as e:
        print(f"invalid report JSON: {e}")
        sys.exit(1)

    errors = check_schema(golden, golden_path) + check_schema(
        actual, actual_path)
    if errors:
        print("\n".join(errors))
        sys.exit(1)

    golden_cmp, actual_cmp = strip_volatile(golden), strip_volatile(actual)
    if golden_cmp == actual_cmp:
        print(f"ok: {actual_path} matches {golden_path}")
        return
    for key in sorted(set(golden_cmp) | set(actual_cmp)):
        g, a = golden_cmp.get(key), actual_cmp.get(key)
        if g != a:
            print(f"mismatch in '{key}':\n  golden: {g!r}\n  actual: {a!r}")
    sys.exit(1)


if __name__ == "__main__":
    main()
