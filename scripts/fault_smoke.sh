#!/usr/bin/env bash
# Fault-injection smoke sweep: arm every registered NAHSP_FAULT point
# (common/faultpoint.h) against the real binaries and prove each firing
# resolves to a typed error or a clean shed — never a crash, a wrong
# answer, or a torn file.
#
#   1. alloc.sampler   — `nahsp solve` exits nonzero with a typed
#                        FAILED line, not a crash.
#   2. ckpt.append     — a sharded batch completes with non-durable
#                        items shed (warning), its report byte-identical
#                        to the unfaulted run, and --resume from the
#                        gappy checkpoint converges to the same bytes.
#   3. cache.snapshot  — a faulted serve shutdown keeps the previous
#                        cache snapshot byte-identical and still exits 0.
#   4. serve.submit    — the armed request gets a structured
#                        internal_error; the daemon answers the next one.
#   5. transport.write — the armed response drops the connection; the
#                        daemon survives and answers a fresh connection.
#   6. restart         — (no fault) a daemon restarted on its snapshot
#                        reports cache.loaded > 0 and replays from cache.
#
# Usage: scripts/fault_smoke.sh [build-dir]        (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
NAHSP="$BUILD_DIR/src/cli/nahsp"
FLEET=examples/fleet.scn

if [[ ! -x "$NAHSP" ]]; then
  echo "error: $NAHSP not built (configure with -DNAHSP_BUILD_CLI=ON)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# req SOCKET LINE — one request, one response line on stdout.
req() {
  python3 - "$1" "$2" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(120)
s.connect(sys.argv[1])
s.sendall(sys.argv[2].encode() + b"\n")
buf = b""
while not buf.endswith(b"\n"):
    chunk = s.recv(1 << 16)
    if not chunk:
        break
    buf += chunk
sys.stdout.write(buf.decode())
EOF
}

wait_socket() {  # wait_socket SOCKET PID
  for _ in $(seq 1 300); do
    kill -0 "$2" 2>/dev/null || { echo "FAIL: daemon died on startup" >&2; exit 1; }
    [[ -S "$1" ]] && python3 -c "
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
try:
    s.connect(sys.argv[1])
except OSError:
    sys.exit(1)
" "$1" && return 0
    sleep 0.1
  done
  echo "FAIL: daemon socket never came up" >&2
  exit 1
}

stop_serve() {  # stop_serve PID LOG — SIGTERM, expect a drained exit 0
  kill -TERM "$1"
  wait "$1" || { echo "FAIL: daemon exited nonzero (see $2)" >&2; cat "$2" >&2; exit 1; }
  SERVE_PID=""
}

field() {  # field JSON_LINE PYEXPR — e.g. field "$line" "v['error']['code']"
  python3 -c "
import json, sys
v = json.loads(sys.argv[1])
print(eval(sys.argv[2]))
" "$1" "$2"
}

echo "== 1. alloc.sampler: typed solver failure, clean nonzero exit =="
set +e
NAHSP_FAULT=alloc.sampler:1:1000000 "$NAHSP" solve elem_abelian2 \
  > "$WORK/alloc.out" 2>&1
status=$?
set -e
[[ $status -eq 1 ]] \
  || { echo "FAIL: expected exit 1, got $status"; cat "$WORK/alloc.out"; exit 1; }
grep -q "injected fault (alloc.sampler)" "$WORK/alloc.out" \
  || { echo "FAIL: failure line does not name the fault"; cat "$WORK/alloc.out"; exit 1; }
echo "  typed failure, exit 1"

echo "== 2. ckpt.append: sharded batch sheds the append, resume converges =="
"$NAHSP" batch "$FLEET" seed=1 threads=2 --stable --json \
  > "$WORK/ref.json"
# The shed appends leave gaps in the checkpoint; the merge refuses to
# fabricate the missing records and directs the caller to --resume.
set +e
NAHSP_FAULT=ckpt.append:2 "$NAHSP" batch "$FLEET" seed=1 threads=2 \
  --stable --json --shards 2 --checkpoint-dir "$WORK/ck" \
  > "$WORK/faulted.json" 2> "$WORK/faulted.err"
status=$?
set -e
[[ $status -ne 0 ]] \
  || { echo "FAIL: gappy checkpoint merged without complaint"; exit 1; }
grep -q "not durable" "$WORK/faulted.err" \
  || { echo "FAIL: shed append was not reported"; cat "$WORK/faulted.err"; exit 1; }
grep -q -- "--resume" "$WORK/faulted.err" \
  || { echo "FAIL: incomplete fleet did not direct to --resume"; cat "$WORK/faulted.err"; exit 1; }
"$NAHSP" batch --resume "$WORK/ck" threads=2 --stable --json \
  > "$WORK/resumed.json" 2> "$WORK/resumed.err"
cmp "$WORK/ref.json" "$WORK/resumed.json" \
  || { echo "FAIL: resumed report differs from the reference"; exit 1; }
echo "  shed appends reported, resume converged byte-identically"

echo "== 3. cache.snapshot: faulted snapshot keeps the previous file =="
CACHE="$WORK/cache.jsonl"
"$NAHSP" serve --socket "$WORK/s3.sock" --workers 1 \
  --cache-file "$CACHE" > "$WORK/s3.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s3.sock" "$SERVE_PID"
line=$(req "$WORK/s3.sock" '{"cmd": "solve", "id": 1, "spec": "dihedral seed=1"}')
[[ "$(field "$line" "v['type']")" == "result" ]] \
  || { echo "FAIL: seed solve failed: $line"; exit 1; }
stop_serve "$SERVE_PID" "$WORK/s3.log"
cp "$CACHE" "$WORK/cache.good"
NAHSP_FAULT=cache.snapshot:1:1000000 "$NAHSP" serve \
  --socket "$WORK/s3b.sock" --workers 1 --cache-file "$CACHE" \
  > "$WORK/s3b.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s3b.sock" "$SERVE_PID"
line=$(req "$WORK/s3b.sock" '{"cmd": "solve", "id": 2, "spec": "quaternion seed=1"}')
[[ "$(field "$line" "v['type']")" == "result" ]] \
  || { echo "FAIL: solve under armed snapshot fault failed: $line"; exit 1; }
stop_serve "$SERVE_PID" "$WORK/s3b.log"
grep -q "keeping the previous snapshot" "$WORK/s3b.log" \
  || { echo "FAIL: faulted snapshot was not reported"; cat "$WORK/s3b.log"; exit 1; }
cmp "$CACHE" "$WORK/cache.good" \
  || { echo "FAIL: faulted snapshot clobbered the previous file"; exit 1; }
echo "  previous snapshot intact, daemon exited 0"

echo "== 4. serve.submit: structured internal_error, daemon survives =="
NAHSP_FAULT=serve.submit:1 "$NAHSP" serve --socket "$WORK/s4.sock" \
  --workers 1 > "$WORK/s4.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s4.sock" "$SERVE_PID"
line=$(req "$WORK/s4.sock" '{"cmd": "ping", "id": 1}')
[[ "$(field "$line" "v['error']['code']")" == "internal_error" ]] \
  || { echo "FAIL: armed submit did not reject internal_error: $line"; exit 1; }
line=$(req "$WORK/s4.sock" '{"cmd": "ping", "id": 2}')
[[ "$(field "$line" "v['type']")" == "pong" ]] \
  || { echo "FAIL: daemon did not answer after the fault: $line"; exit 1; }
stop_serve "$SERVE_PID" "$WORK/s4.log"
echo "  one structured reject, next request answered"

echo "== 5. transport.write: dropped connection, daemon survives =="
NAHSP_FAULT=transport.write:1 "$NAHSP" serve --socket "$WORK/s5.sock" \
  --workers 1 > "$WORK/s5.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s5.sock" "$SERVE_PID"
line=$(req "$WORK/s5.sock" '{"cmd": "ping", "id": 1}' || true)
[[ -z "$line" ]] \
  || { echo "FAIL: armed write should drop the connection, got: $line"; exit 1; }
line=$(req "$WORK/s5.sock" '{"cmd": "ping", "id": 2}')
[[ "$(field "$line" "v['type']")" == "pong" ]] \
  || { echo "FAIL: daemon did not answer a fresh connection: $line"; exit 1; }
stop_serve "$SERVE_PID" "$WORK/s5.log"
echo "  connection dropped cleanly, daemon survived"

echo "== 6. snapshot restart: reload reported, repeat request replays =="
CACHE6="$WORK/cache6.jsonl"
"$NAHSP" serve --socket "$WORK/s6.sock" --workers 1 \
  --cache-file "$CACHE6" > "$WORK/s6.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s6.sock" "$SERVE_PID"
first=$(req "$WORK/s6.sock" '{"cmd": "solve", "id": 1, "spec": "dihedral seed=9"}')
[[ "$(field "$first" "v['type']")" == "result" ]] \
  || { echo "FAIL: warm-up solve failed: $first"; exit 1; }
stop_serve "$SERVE_PID" "$WORK/s6.log"
"$NAHSP" serve --socket "$WORK/s6b.sock" --workers 1 \
  --cache-file "$CACHE6" > "$WORK/s6b.log" 2>&1 &
SERVE_PID=$!
wait_socket "$WORK/s6b.sock" "$SERVE_PID"
stats=$(req "$WORK/s6b.sock" '{"cmd": "stats"}')
loaded=$(field "$stats" "v['stats']['cache']['loaded']")
[[ "$loaded" -ge 1 ]] \
  || { echo "FAIL: restarted daemon loaded no cache entries: $stats"; exit 1; }
replay=$(req "$WORK/s6b.sock" '{"cmd": "solve", "id": 1, "spec": "dihedral seed=9"}')
[[ "$(field "$replay" "v['cached']")" == "True" ]] \
  || { echo "FAIL: repeat request was not a cache hit: $replay"; exit 1; }
stats=$(req "$WORK/s6b.sock" '{"cmd": "stats"}')
rate=$(field "$stats" "v['stats']['cache']['hit_rate']")
python3 -c "import sys; sys.exit(0 if float(sys.argv[1]) > 0 else 1)" "$rate" \
  || { echo "FAIL: hit rate is zero after a snapshot replay: $stats"; exit 1; }
# The replay must be byte-identical to the original response modulo the
# cached flag.
python3 -c "
import sys
first, replay = sys.argv[1], sys.argv[2]
if replay.replace('\"cached\":true', '\"cached\":false', 1) != first:
    sys.exit('FAIL: snapshot replay diverges from the original response')
" "$first" "$replay"
stop_serve "$SERVE_PID" "$WORK/s6b.log"
echo "  cache.loaded=$loaded, replay hit, hit_rate=$rate"

echo "fault smoke passed"
