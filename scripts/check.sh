#!/usr/bin/env bash
# Full local verification: the tier-1 build + ctest (with the slow
# `property` and `shard` labels split into their own stages so each runs
# once), the CLI smoke suite (nahsp selftest + golden solve reports +
# markdown link check), the fault-injection smoke (NAHSP_FAULT sweep +
# snapshot restart), the shard smoke (sharded batch vs unsharded,
# crash + resume), then a Debug + Address/UB-sanitizer build of the same
# suite, then a TSan build of the threading-relevant tests (unit +
# parallel labels) with the pool pinned wide.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: Release build + ctest (property/shard labels run in their own stages) =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest -LE 'property|shard' --output-on-failure -j "$JOBS")

echo "== property suite (ctest -L property) over generator-drawn instances =="
# Group-axiom / instance-invariant checks swept over the planted-instance
# generator's families. NAHSP_STRESS_SEEDS widens the per-family gen_seed
# sweep (default 50); the CI stress job runs the same label raised.
echo "NAHSP_STRESS_SEEDS=${NAHSP_STRESS_SEEDS:-50 (default)}"
(cd build && ctest -L property --output-on-failure -j "$JOBS")

echo "== statistical suite (ctest -L stat) under the pinned seed =="
# The chi-square backend-equivalence tests rerun with an explicit seed so
# any flake is reproducible: export the printed NAHSP_STAT_SEED to replay.
NAHSP_STAT_SEED="${NAHSP_STAT_SEED:-20260730}"
export NAHSP_STAT_SEED
echo "NAHSP_STAT_SEED=${NAHSP_STAT_SEED}"
(cd build && ctest -L stat --output-on-failure -j "$JOBS")

echo "== CLI smoke: selftest + golden solve reports + doc links =="
./scripts/cli_smoke.sh build
python3 scripts/check_links.py

echo "== serve smoke: daemon protocol, cache replay, golden parity, drain =="
python3 scripts/serve_smoke.py build

echo "== fault smoke: NAHSP_FAULT sweep + snapshot restart =="
# Every registered fault point armed against the real binaries: typed
# solver failure, gappy checkpoint + --resume convergence, snapshot
# rollback, structured serve rejects, dropped connections, and a cache
# reload across a daemon restart. CI reruns this sweep under ASan.
./scripts/fault_smoke.sh build

echo "== shard smoke: sharded batch vs unsharded, SIGKILL + resume (ctest -L shard) =="
# scripts/shard_smoke.sh through ctest: --shards {2,4} merged reports
# byte-identical to the unsharded run, crash fault injection + --resume,
# torn-checkpoint recovery. Excluded from tier-1 so the label runs once.
(cd build && ctest -L shard --output-on-failure -j "$JOBS")

echo "== perf_guard exit-code contract (scripts/test_perf_guard.py) =="
python3 scripts/test_perf_guard.py

if [[ "${NAHSP_PERF_GUARD:-0}" == "1" ]]; then
  echo "== perf guard (opt-in: NAHSP_PERF_GUARD=1) =="
  # Small-n bench_e8 run diffed against the committed baseline. Only
  # meaningful on hardware comparable to the baseline machine; tune the
  # threshold with NAHSP_PERF_MAX_REGRESSION (fractional slowdown).
  cmake -B build-bench -S . -DNAHSP_BUILD_BENCH=ON -DNAHSP_BUILD_TESTS=OFF
  cmake --build build-bench -j "$JOBS" --target bench_e8_simulator
  ./build-bench/bench/bench_e8_simulator \
    --benchmark_filter='BM_E8_QftCircuit/1[026]$' \
    --benchmark_out=build-bench/e8_guard.json --benchmark_out_format=json \
    --benchmark_min_time=0.05
  python3 scripts/perf_guard.py BENCH_pr5.json build-bench/e8_guard.json \
    --max-regression "${NAHSP_PERF_MAX_REGRESSION:-0.5}"
fi

echo "== Debug + ASan/UBSan build + ctest =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNAHSP_SANITIZE=ON \
  -DNAHSP_WERROR=ON
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "== TSan build + unit/parallel tests =="
# Races only materialise with real workers, so the pool is pinned wider
# than one thread regardless of the machine's core count.
NAHSP_TSAN_THREADS="${NAHSP_TSAN_THREADS:-4}"
echo "pinned NAHSP_THREADS=${NAHSP_TSAN_THREADS} for the TSan run"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNAHSP_TSAN=ON
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && \
  NAHSP_THREADS="${NAHSP_TSAN_THREADS}" \
  ctest -L 'unit|parallel' --output-on-failure -j "$JOBS")

echo "== all checks passed =="
