#!/usr/bin/env bash
# Full local verification: the exact tier-1 command, then a
# Debug + Address/UB-sanitizer build of the same suite.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: Release build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== Debug + ASan/UBSan build + ctest =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNAHSP_SANITIZE=ON \
  -DNAHSP_WERROR=ON
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "== all checks passed =="
