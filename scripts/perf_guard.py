#!/usr/bin/env python3
"""Diff a fresh Google-Benchmark JSON against a committed baseline.

Usage: perf_guard.py BASELINE.json FRESH.json [options]

BASELINE may be either raw `--benchmark_out` JSON or one of the
repo's composite BENCH_prN.json files ({"benchmarks": {suite:
{"results": [...]}}}); FRESH is raw benchmark output. Benchmarks are
matched by name; for each name present in both, the ratio
fresh/baseline of --key (default real_time) is computed. Exit 1 if any
matched benchmark regressed by more than --max-regression (fractional:
0.30 = 30% slower), 0 otherwise. Unmatched names are reported but never
fail the guard, so adding or renaming benchmarks doesn't break CI.

Cross-machine caveat: absolute times only compare meaningfully on the
hardware that produced the baseline. On other machines (CI smoke) run
with a generous --max-regression; the guard then catches order-of-
magnitude regressions, not percent-level drift.
"""
import argparse
import json
import re
import sys


def flatten(doc):
    """name -> metric dict, for raw or composite benchmark JSON."""
    out = {}
    if "benchmarks" in doc and isinstance(doc["benchmarks"], dict):
        for suite in doc["benchmarks"].values():
            for res in suite.get("results", []):
                if "name" in res:
                    out[res["name"]] = res
    elif "benchmarks" in doc and isinstance(doc["benchmarks"], list):
        for res in doc["benchmarks"]:
            if "name" in res:
                out[res["name"]] = res
    else:
        raise SystemExit("perf_guard: unrecognised benchmark JSON layout")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="fail above this fractional slowdown "
                         "(default 0.30 = 30%%)")
    ap.add_argument("--filter", default=None,
                    help="only guard benchmark names matching this regex")
    ap.add_argument("--key", default="real_time",
                    help="metric to compare (default real_time)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = flatten(json.load(f))
    with open(args.fresh) as f:
        fresh = flatten(json.load(f))

    pattern = re.compile(args.filter) if args.filter else None
    matched, regressions = 0, []
    for name, fres in sorted(fresh.items()):
        if pattern and not pattern.search(name):
            continue
        bres = base.get(name)
        if bres is None or args.key not in bres or args.key not in fres:
            print(f"  (no baseline) {name}")
            continue
        b, f_ = float(bres[args.key]), float(fres[args.key])
        if b <= 0.0:
            continue
        matched += 1
        ratio = f_ / b
        tag = "REGRESSION" if ratio > 1.0 + args.max_regression else "ok"
        print(f"  {tag:>10}  {name}: {b:.3f} -> {f_:.3f} "
              f"({ratio:.2f}x baseline)")
        if tag == "REGRESSION":
            regressions.append((name, ratio))

    if matched == 0:
        print("perf_guard: no benchmarks matched the baseline", file=sys.stderr)
        return 1
    if regressions:
        print(f"perf_guard: {len(regressions)} regression(s) beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"perf_guard: {matched} benchmark(s) within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
