#!/usr/bin/env python3
"""Diff a fresh Google-Benchmark JSON against a committed baseline.

Usage: perf_guard.py BASELINE.json FRESH.json [options]

BASELINE may be either raw `--benchmark_out` JSON or one of the
repo's composite BENCH_prN.json files ({"benchmarks": {suite:
{"results": [...]}}}); FRESH is raw benchmark output. Benchmarks are
matched by name; for each name present in both, the ratio
fresh/baseline of --key (default real_time) is computed.

Soft-fail contract: names present on only one side, rows missing the
metric key, and a run that matches nothing at all are the normal state
of a freshly added benchmark or backend — each is reported as a named
`perf_guard warning:` line and never fails the guard (pass --strict to
turn those warnings into failures).

Exit codes: 0 = no regression (including the zero-matches soft pass);
1 = at least one matched benchmark regressed by more than
--max-regression (fractional: 0.30 = 30% slower), or a warning under
--strict; 2 = unusable input (unreadable file, unrecognised layout).

Cross-machine caveat: absolute times only compare meaningfully on the
hardware that produced the baseline. On other machines (CI smoke) run
with a generous --max-regression; the guard then catches order-of-
magnitude regressions, not percent-level drift.
"""
import argparse
import json
import re
import sys

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def flatten(doc, origin):
    """name -> metric dict, for raw or composite benchmark JSON."""
    out = {}
    if "benchmarks" in doc and isinstance(doc["benchmarks"], dict):
        for suite in doc["benchmarks"].values():
            for res in suite.get("results", []):
                if "name" in res:
                    out[res["name"]] = res
    elif "benchmarks" in doc and isinstance(doc["benchmarks"], list):
        for res in doc["benchmarks"]:
            if "name" in res:
                out[res["name"]] = res
    else:
        raise SystemExit(
            f"perf_guard: unrecognised benchmark JSON layout in {origin}")
    return out


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"perf_guard: cannot read {path}: {e}")
    return flatten(doc, path)


def run(args):
    base = load(args.baseline)
    fresh = load(args.fresh)

    pattern = re.compile(args.filter) if args.filter else None
    matched, regressions, warnings = 0, [], []
    for name, fres in sorted(fresh.items()):
        if pattern and not pattern.search(name):
            continue
        bres = base.get(name)
        if bres is None:
            warnings.append(f"'{name}' has no baseline row (new benchmark?)")
            continue
        if args.key not in bres:
            warnings.append(
                f"'{name}' baseline row lacks metric '{args.key}'")
            continue
        if args.key not in fres:
            warnings.append(f"'{name}' fresh row lacks metric '{args.key}'")
            continue
        b, f_ = float(bres[args.key]), float(fres[args.key])
        if b <= 0.0:
            warnings.append(f"'{name}' baseline {args.key} is non-positive")
            continue
        matched += 1
        ratio = f_ / b
        tag = "REGRESSION" if ratio > 1.0 + args.max_regression else "ok"
        print(f"  {tag:>10}  {name}: {b:.3f} -> {f_:.3f} "
              f"({ratio:.2f}x baseline)")
        if tag == "REGRESSION":
            regressions.append((name, ratio))

    for w in warnings:
        print(f"perf_guard warning: {w}", file=sys.stderr)
    if regressions:
        print(f"perf_guard: {len(regressions)} regression(s) beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return EXIT_REGRESSION
    if args.strict and warnings:
        print(f"perf_guard: --strict escalates {len(warnings)} warning(s)",
              file=sys.stderr)
        return EXIT_REGRESSION
    if matched == 0:
        # Nothing overlapped — e.g. a fresh JSON holding only a new
        # backend's rows. Informative, not a failure.
        print("perf_guard: no benchmarks matched the baseline "
              "(soft pass; see warnings)", file=sys.stderr)
        return EXIT_OK
    print(f"perf_guard: {matched} benchmark(s) within "
          f"{args.max_regression:.0%} of baseline")
    return EXIT_OK


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="fail above this fractional slowdown "
                         "(default 0.30 = 30%%)")
    ap.add_argument("--filter", default=None,
                    help="only guard benchmark names matching this regex")
    ap.add_argument("--key", default="real_time",
                    help="metric to compare (default real_time)")
    ap.add_argument("--strict", action="store_true",
                    help="escalate missing-name/missing-metric warnings "
                         "to exit 1")
    args = ap.parse_args()
    try:
        return run(args)
    except SystemExit as e:
        # Layout / IO failures use the distinct usage exit code.
        if isinstance(e.code, str):
            print(e.code, file=sys.stderr)
            return EXIT_USAGE
        raise


if __name__ == "__main__":
    sys.exit(main())
