#!/usr/bin/env python3
"""Diff a fresh Google-Benchmark JSON against a committed baseline.

Usage: perf_guard.py BASELINE.json FRESH.json [options]
       perf_guard.py --validate FILE.json [FILE2.json]

BASELINE may be either raw `--benchmark_out` JSON or one of the
repo's composite BENCH_prN.json files ({"benchmarks": {suite:
{"results": [...]}}}); FRESH is raw benchmark output. Benchmarks are
matched by name; for each name present in both, the ratio
fresh/baseline of --key (default real_time) is computed.

--validate runs no comparison: it schema-checks each given file
against the BENCH_*.json contract (`nahsp bench` emits it directly) —
every row needs a name, a positive iteration count, finite
real_time/cpu_time, and a time_unit; composite suites need a results
list. Exit 0 when every file validates, 2 on any violation.

Soft-fail contract: names present on only one side, rows missing the
metric key, and a run that matches nothing at all are the normal state
of a freshly added benchmark or backend — each is reported as a named
`perf_guard warning:` line and never fails the guard (pass --strict to
turn those warnings into failures).

Exit codes: 0 = no regression (including the zero-matches soft pass);
1 = at least one matched benchmark regressed by more than
--max-regression (fractional: 0.30 = 30% slower), or a warning under
--strict; 2 = unusable input (unreadable file, unrecognised layout).

Cross-machine caveat: absolute times only compare meaningfully on the
hardware that produced the baseline. On other machines (CI smoke) run
with a generous --max-regression; the guard then catches order-of-
magnitude regressions, not percent-level drift.
"""
import argparse
import json
import re
import sys

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def flatten(doc, origin):
    """name -> metric dict, for raw or composite benchmark JSON."""
    out = {}
    if "benchmarks" in doc and isinstance(doc["benchmarks"], dict):
        for suite in doc["benchmarks"].values():
            for res in suite.get("results", []):
                if "name" in res:
                    out[res["name"]] = res
    elif "benchmarks" in doc and isinstance(doc["benchmarks"], list):
        for res in doc["benchmarks"]:
            if "name" in res:
                out[res["name"]] = res
    else:
        raise SystemExit(
            f"perf_guard: unrecognised benchmark JSON layout in {origin}")
    return out


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"perf_guard: cannot read {path}: {e}")
    return flatten(doc, path)


# Required per-row fields of the BENCH_*.json schema and the predicate
# each must satisfy. Table-driven so scripts/test_perf_guard.py and new
# fields stay one line each.
ROW_FIELDS = {
    "name": lambda v: isinstance(v, str) and v != "",
    "iterations": lambda v: isinstance(v, int) and not isinstance(v, bool)
                  and v > 0,
    "real_time": lambda v: isinstance(v, (int, float))
                 and not isinstance(v, bool),
    "cpu_time": lambda v: isinstance(v, (int, float))
                and not isinstance(v, bool),
    "time_unit": lambda v: isinstance(v, str) and v != "",
}


def _reject_nonfinite(token):
    raise SystemExit(f"non-finite JSON token {token!r}")


def validate_file(path):
    """BENCH_*.json schema check; returns a list of violation strings."""
    try:
        with open(path) as f:
            doc = json.load(f, parse_constant=_reject_nonfinite)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: cannot read: {e}"]
    except SystemExit as e:
        return [f"{path}: {e.code}"]
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    for key in ("note", "hardware_caveat"):
        if key in doc and not isinstance(doc[key], str):
            errors.append(f"{path}: '{key}' must be a string")
    bench = doc.get("benchmarks")
    if isinstance(bench, dict):
        suites = []
        for suite_name, suite in bench.items():
            if not isinstance(suite, dict) or \
                    not isinstance(suite.get("results"), list):
                errors.append(f"{path}: suite '{suite_name}' lacks a "
                              "results list")
                continue
            if "context" in suite and not isinstance(suite["context"], dict):
                errors.append(f"{path}: suite '{suite_name}' context is "
                              "not an object")
            suites.append((suite_name, suite["results"]))
    elif isinstance(bench, list):
        suites = [("<raw>", bench)]
    else:
        return errors + [f"{path}: no 'benchmarks' object or list"]
    rows = 0
    for suite_name, results in suites:
        for i, row in enumerate(results):
            where = f"{path}: suite '{suite_name}' row {i}"
            if not isinstance(row, dict):
                errors.append(f"{where}: not an object")
                continue
            rows += 1
            for key, ok in ROW_FIELDS.items():
                if key not in row:
                    errors.append(f"{where}: missing field '{key}'")
                elif not ok(row[key]):
                    errors.append(
                        f"{where}: field '{key}' = {row[key]!r} invalid")
    if rows == 0:
        errors.append(f"{path}: no benchmark rows at all")
    return errors


def run_validate(paths):
    status = EXIT_OK
    for path in paths:
        errors = validate_file(path)
        if errors:
            for e in errors:
                print(f"perf_guard validate: {e}", file=sys.stderr)
            status = EXIT_USAGE
        else:
            print(f"perf_guard: {path} validates against the "
                  "BENCH_*.json schema")
    return status


def run(args):
    base = load(args.baseline)
    fresh = load(args.fresh)

    pattern = re.compile(args.filter) if args.filter else None
    matched, regressions, warnings = 0, [], []
    for name, fres in sorted(fresh.items()):
        if pattern and not pattern.search(name):
            continue
        bres = base.get(name)
        if bres is None:
            warnings.append(f"'{name}' has no baseline row (new benchmark?)")
            continue
        if args.key not in bres:
            warnings.append(
                f"'{name}' baseline row lacks metric '{args.key}'")
            continue
        if args.key not in fres:
            warnings.append(f"'{name}' fresh row lacks metric '{args.key}'")
            continue
        b, f_ = float(bres[args.key]), float(fres[args.key])
        if b <= 0.0:
            warnings.append(f"'{name}' baseline {args.key} is non-positive")
            continue
        matched += 1
        ratio = f_ / b
        tag = "REGRESSION" if ratio > 1.0 + args.max_regression else "ok"
        print(f"  {tag:>10}  {name}: {b:.3f} -> {f_:.3f} "
              f"({ratio:.2f}x baseline)")
        if tag == "REGRESSION":
            regressions.append((name, ratio))

    for w in warnings:
        print(f"perf_guard warning: {w}", file=sys.stderr)
    if regressions:
        print(f"perf_guard: {len(regressions)} regression(s) beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return EXIT_REGRESSION
    if args.strict and warnings:
        print(f"perf_guard: --strict escalates {len(warnings)} warning(s)",
              file=sys.stderr)
        return EXIT_REGRESSION
    if matched == 0:
        # Nothing overlapped — e.g. a fresh JSON holding only a new
        # backend's rows. Informative, not a failure.
        print("perf_guard: no benchmarks matched the baseline "
              "(soft pass; see warnings)", file=sys.stderr)
        return EXIT_OK
    print(f"perf_guard: {matched} benchmark(s) within "
          f"{args.max_regression:.0%} of baseline")
    return EXIT_OK


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the given file(s) against the "
                         "BENCH_*.json contract instead of comparing")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="fail above this fractional slowdown "
                         "(default 0.30 = 30%%)")
    ap.add_argument("--filter", default=None,
                    help="only guard benchmark names matching this regex")
    ap.add_argument("--key", default="real_time",
                    help="metric to compare (default real_time)")
    ap.add_argument("--strict", action="store_true",
                    help="escalate missing-name/missing-metric warnings "
                         "to exit 1")
    args = ap.parse_args()
    if args.validate:
        return run_validate(
            [args.baseline] + ([args.fresh] if args.fresh else []))
    if args.fresh is None:
        ap.error("FRESH.json is required unless --validate is given")
    try:
        return run(args)
    except SystemExit as e:
        # Layout / IO failures use the distinct usage exit code.
        if isinstance(e.code, str):
            print(e.code, file=sys.stderr)
            return EXIT_USAGE
        raise


if __name__ == "__main__":
    sys.exit(main())
