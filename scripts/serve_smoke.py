#!/usr/bin/env python3
"""End-to-end smoke test for the `nahsp serve` daemon.

Usage: serve_smoke.py [build-dir]        (default: build)

Starts the daemon on a throwaway Unix socket and drives it like a
misbehaving multi-tenant client population:

  1. a concurrent burst of good, malformed, and repeated requests
     (every line must get exactly one structured response, never a
     crash or a dropped connection),
  2. a pinned-seed dihedral solve whose `report` payload is diffed
     against the CLI golden (tests/golden/solve_dihedral.json) through
     scripts/diff_report.py — the daemon and `nahsp solve --json` must
     produce the same report,
  3. a repeat of that request, which must replay from the cross-request
     cache (`cached: true`, nonzero hit rate in `stats`),
  4. an oversized (>1 MiB) line pipelined with a valid request on the
     same connection — one request_too_large error, then the valid
     request's answer (the reader drains the oversized line instead of
     desyncing or dropping the connection),
  5. SIGTERM, which must drain and exit 0,
  6. an over-budget burst against a --max-mem daemon: permanent sheds
     carry the structured sizes, the auto backend degrades and solves,
     the admitted subset's responses are byte-identical to an
     unconstrained daemon's, and the daemon never restarts.
"""
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(REPO, "tests", "golden", "solve_dihedral.json")
DIFF = os.path.join(REPO, "scripts", "diff_report.py")


def fail(msg):
    print(f"serve smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def request(sock_path, line, timeout=120):
    """One request, one response line, over a fresh connection."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    if not buf:
        fail(f"no response for request: {line!r}")
    return buf.decode()


def pipelined(sock_path, payload, expect, timeout=120):
    """Send raw bytes on one connection, read `expect` response lines."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall(payload)
        buf = b""
        while buf.count(b"\n") < expect:
            chunk = s.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    return buf.decode().splitlines()


def wait_for_socket(sock_path, proc, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            fail(f"server exited early with code {proc.returncode}")
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.connect(sock_path)
            return
        except OSError:
            time.sleep(0.05)
    fail("server socket never came up")


def check_envelope(line, context):
    try:
        v = json.loads(line)
    except ValueError as e:
        fail(f"{context}: unparseable response {line!r}: {e}")
    if v.get("schema") != "nahsp-serve/v1":
        fail(f"{context}: bad envelope schema in {line!r}")
    if v.get("type") not in ("result", "error", "stats", "pong", "shutdown"):
        fail(f"{context}: unknown envelope type in {line!r}")
    return v


def main():
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build"
    nahsp = os.path.join(REPO, build_dir, "src", "cli", "nahsp")
    if not os.access(nahsp, os.X_OK):
        fail(f"{nahsp} not built (configure with -DNAHSP_BUILD_CLI=ON)")

    tmp = tempfile.mkdtemp(prefix="nahsp-serve-smoke-")
    sock_path = os.path.join(tmp, "smoke.sock")
    proc = subprocess.Popen(
        [nahsp, "serve", "--socket", sock_path,
         "--workers", "2", "--queue", "32", "--cache", "32"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        run_checks(sock_path, proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    run_budget_checks(nahsp, tmp)


def drain_and_check_exit(proc, name):
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not exit within 60s of SIGTERM")
    if proc.returncode != 0:
        fail(f"{name} exited {proc.returncode} after SIGTERM:\n{out}")


def run_budget_checks(nahsp, tmp):
    """Over-budget burst against a --max-mem daemon (plus an
    unconstrained reference daemon for byte-parity of the admitted
    subset).

    elem_abelian2 k=12 prices at 48 * 2^12 = 196608 bytes dense, 12288
    bytes sparse: under --max-mem 100000 the explicit mixed-radix
    requests can never be admitted (permanent structured shed) while the
    auto backend degrades to sparse and still solves.
    """
    sock_b = os.path.join(tmp, "budget.sock")
    sock_r = os.path.join(tmp, "ref.sock")
    base = ["--workers", "2", "--queue", "32", "--cache", "32"]
    proc_b = subprocess.Popen(
        [nahsp, "serve", "--socket", sock_b] + base
        + ["--max-mem", "100000"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    proc_r = subprocess.Popen(
        [nahsp, "serve", "--socket", sock_r] + base,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        wait_for_socket(sock_b, proc_b)
        wait_for_socket(sock_r, proc_r)
        # Explicit seeds keep every report a pure function of its spec,
        # so burst scheduling cannot perturb the bytes.
        admitted = [
            '{"cmd": "solve", "id": 0, "spec": "dihedral seed=21"}',
            '{"cmd": "solve", "id": 1, "spec": "quaternion seed=22"}',
            '{"cmd": "solve", "id": 2, "spec": "heisenberg seed=23"}',
        ]
        degraded = '{"cmd": "solve", "id": 3, "spec": "elem_abelian2 k=12 seed=24"}'
        shed = [
            '{"cmd": "solve", "id": 4, '
            '"spec": "elem_abelian2 k=12 backend=mixed-radix seed=25"}',
            '{"cmd": "solve", "id": 5, '
            '"spec": "elem_abelian2 k=12 backend=mixed-radix seed=26"}',
        ]
        burst = admitted + [degraded] + shed
        responses = [None] * len(burst)

        def client(i):
            responses[i] = request(sock_b, burst[i])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(burst))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        by_id = {}
        for i, line in enumerate(responses):
            if line is None:
                fail(f"budget burst request {i} got no response")
            by_id[check_envelope(line, f"budget burst {i}")["id"]] = (
                line, json.loads(line))

        # Permanent sheds: structured over_budget with the sizes.
        for rid in (4, 5):
            _, v = by_id[rid]
            err = v.get("error", {})
            if err.get("code") != "over_budget":
                fail(f"id={rid} was not shed over_budget: {v}")
            if err.get("estimated_bytes") != 196608:
                fail(f"id={rid} shed without the estimate: {v}")
            if err.get("limit_bytes") != 100000:
                fail(f"id={rid} shed without the limit: {v}")
        # The auto backend degrades to sparse and still succeeds.
        _, v = by_id[3]
        if v["type"] != "result" or not v["ok"]:
            fail(f"auto backend did not degrade and solve: {v}")
        # Admitted subset: byte-identical to the unconstrained daemon.
        for req_line in admitted:
            rid = json.loads(req_line)["id"]
            line_b, v = by_id[rid]
            if v["type"] != "result" or not v["ok"]:
                fail(f"admitted id={rid} did not succeed under budget: {v}")
            line_r = request(sock_r, req_line)
            # Byte-identical modulo the report's wall-clock field.
            strip = lambda s: re.sub(r'"seconds":[0-9.e-]+', '"seconds":0', s)
            if strip(line_b) != strip(line_r):
                fail(f"admitted id={rid} diverges from the unconstrained "
                     f"daemon:\n  budget: {line_b!r}\n  ref:    {line_r!r}")

        stats = json.loads(request(sock_b, '{"cmd": "stats"}'))["stats"]
        if stats["jobs_shed"] != 2:
            fail(f"expected exactly 2 shed jobs, got {stats}")
        if stats["jobs_completed"] != 4:
            fail(f"expected 4 completed jobs, got {stats}")
        if stats["max_mem_bytes"] != 100000:
            fail(f"stats do not report the budget: {stats}")
        # Zero restarts: both daemons are the original processes and
        # drain cleanly.
        if proc_b.poll() is not None or proc_r.poll() is not None:
            fail("a daemon restarted or died during the budget burst")
        print(f"budget burst: {stats['jobs_completed']} completed, "
              f"{stats['jobs_shed']} shed, admitted subset byte-identical")
        drain_and_check_exit(proc_b, "budget daemon")
        drain_and_check_exit(proc_r, "reference daemon")
    finally:
        for p in (proc_b, proc_r):
            if p.poll() is None:
                p.kill()
                p.wait()


def run_checks(sock_path, proc):
    wait_for_socket(sock_path, proc)

    # --- concurrent burst: good + malformed + repeated requests -------
    requests = [
        '{"cmd": "solve", "id": 0, "spec": "dihedral seed=1"}',
        '{"cmd": "solve", "id": 1, "spec": "dihedral seed=1"}',   # repeat
        '{"cmd": "solve", "id": 2, "spec": "quaternion seed=1"}',
        '{"cmd": "solve", "id": 3, "spec": "heisenberg seed=1"}',
        'this is not json',
        '{"cmd": "frobnicate", "id": 5}',
        '{"cmd": "solve", "id": 6, "spec": "nosuchfamily n=3"}',
        '{"cmd": "ping", "id": 7}',
        '{"cmd": "solve", "id": 8, "spec": "dihedral seed=1"}',   # repeat
        '{"cmd": "solve", "id": 9, "spec": "dihedral threads=4"}',
    ]
    responses = [None] * len(requests)

    def client(i):
        responses[i] = request(sock_path, requests[i])

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(requests))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    by_id = {}
    for i, line in enumerate(responses):
        if line is None:
            fail(f"request {i} got no response")
        v = check_envelope(line, f"request {i}")
        if v.get("id") is not None:
            by_id[v["id"]] = v

    for rid in (0, 1, 2, 3, 8):
        v = by_id.get(rid)
        if v is None or v["type"] != "result" or not v["ok"]:
            fail(f"solve id={rid} did not succeed: {by_id.get(rid)}")
        if not v["report"]["verified"]:
            fail(f"solve id={rid} report is not verified")
    if by_id[5]["type"] != "error" or by_id[5]["error"]["code"] != "bad_request":
        fail(f"unknown cmd not rejected as bad_request: {by_id[5]}")
    if by_id[6]["error"]["code"] != "spec_error":
        fail(f"unknown family not rejected as spec_error: {by_id[6]}")
    if by_id[7]["type"] != "pong":
        fail(f"ping not answered with pong: {by_id[7]}")
    if by_id[9]["error"]["code"] != "spec_error":
        fail(f"threads= spec key not rejected: {by_id[9]}")
    bad_json = [json.loads(r) for r in responses
                if json.loads(r).get("id") is None]
    if not any(v.get("error", {}).get("code") == "bad_json"
               for v in bad_json):
        fail("malformed JSON line did not produce a bad_json error")

    # --- golden parity: the daemon's report == the CLI's report -------
    # A sequential repeat after the burst is guaranteed to be a cache
    # hit; its report replays the original run verbatim.
    line = request(sock_path, '{"cmd": "solve", "id": 100, '
                              '"spec": "dihedral seed=1"}')
    v = check_envelope(line, "golden request")
    if v["type"] != "result":
        fail(f"golden request failed: {line!r}")
    if not v.get("cached"):
        fail("sequential repeat of a solved spec was not a cache hit")
    actual = os.path.join(os.path.dirname(sock_path), "served_report.json")
    with open(actual, "w") as f:
        json.dump(v["report"], f, indent=2)
    diff = subprocess.run(
        [sys.executable, DIFF, GOLDEN, actual], cwd=REPO,
        capture_output=True, text=True)
    sys.stdout.write(diff.stdout)
    if diff.returncode != 0:
        fail(f"served report diverges from {GOLDEN}:\n{diff.stdout}"
             f"{diff.stderr}")

    # --- stats: the cache must have observed hits ---------------------
    v = check_envelope(request(sock_path, '{"cmd": "stats"}'), "stats")
    stats = v["stats"]
    cache = stats["cache"]
    if cache["hits"] < 1 or cache["hit_rate"] <= 0.0:
        fail(f"expected a nonzero cache hit rate, got {cache}")
    if stats["jobs_completed"] < 5:
        fail(f"expected >=5 completed jobs, got {stats}")
    if stats["jobs_rejected"] < 2:
        fail(f"expected >=2 rejected jobs, got {stats}")
    print(f"serve smoke: {stats['jobs_completed']} completed, "
          f"{stats['jobs_failed']} failed, {stats['jobs_rejected']} "
          f"rejected, cache hit rate {cache['hit_rate']:.2f}")

    # --- oversized line: drained, answered, connection keeps working --
    big = (b'{"cmd": "ping", "id": 200, "pad": "' + b"x" * (2 << 20)
           + b'"}\n')
    lines = pipelined(sock_path, big + b'{"cmd": "ping", "id": 201}\n',
                      expect=2)
    if len(lines) != 2:
        fail(f"oversized+valid pipeline got {len(lines)} responses: {lines}")
    v = check_envelope(lines[0], "oversized line")
    if v.get("error", {}).get("code") != "request_too_large":
        fail(f"oversized line not rejected as request_too_large: {lines[0]}")
    v = check_envelope(lines[1], "request after oversized line")
    if v.get("type") != "pong" or v.get("id") != 201:
        fail(f"valid request after an oversized line desynced: {lines[1]}")

    # --- SIGTERM: drain and exit 0 ------------------------------------
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not exit within 60s of SIGTERM")
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode} after SIGTERM:\n{out}")
    if "drained" not in out:
        fail(f"server did not report a drained exit:\n{out}")
    if os.path.exists(sock_path):
        fail("server left its socket behind")
    print("serve smoke passed")


if __name__ == "__main__":
    main()
