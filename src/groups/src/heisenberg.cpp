#include "nahsp/groups/heisenberg.h"

#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

HeisenbergGroup::HeisenbergGroup(std::uint64_t p, int n)
    : p_(p),
      n_(n),
      digit_bits_(bits_for(p) == 0 ? 1 : bits_for(p)),
      digit_mask_((Code{1} << digit_bits_) - 1) {
  NAHSP_REQUIRE(p >= 2, "Heisenberg requires p >= 2");
  NAHSP_REQUIRE(n >= 1, "Heisenberg requires n >= 1");
  NAHSP_REQUIRE(digit_bits_ * (2 * n + 1) <= 64,
                "Heisenberg encoding exceeds 64 bits");
}

std::uint64_t HeisenbergGroup::order() const {
  std::uint64_t o = 1;
  for (int i = 0; i < 2 * n_ + 1; ++i) o *= p_;
  return o;
}

Code HeisenbergGroup::with_digits(
    const std::vector<std::uint64_t>& digits) const {
  Code x = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    x |= digits[i] << (static_cast<int>(i) * digit_bits_);
  }
  return x;
}

Code HeisenbergGroup::make(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b,
                           std::uint64_t c) const {
  NAHSP_REQUIRE(a.size() == static_cast<std::size_t>(n_) &&
                    b.size() == static_cast<std::size_t>(n_),
                "vector length mismatch");
  std::vector<std::uint64_t> digits;
  digits.reserve(2 * n_ + 1);
  for (const auto v : a) {
    NAHSP_REQUIRE(v < p_, "digit out of range");
    digits.push_back(v);
  }
  for (const auto v : b) {
    NAHSP_REQUIRE(v < p_, "digit out of range");
    digits.push_back(v);
  }
  NAHSP_REQUIRE(c < p_, "digit out of range");
  digits.push_back(c);
  return with_digits(digits);
}

Code HeisenbergGroup::mul(Code x, Code y) const {
  std::vector<std::uint64_t> digits(2 * n_ + 1);
  std::uint64_t dot = 0;  // <a1, b2> mod p
  for (int i = 0; i < n_; ++i) {
    digits[i] = (a_digit(x, i) + a_digit(y, i)) % p_;
    digits[n_ + i] = (b_digit(x, i) + b_digit(y, i)) % p_;
    dot = (dot + a_digit(x, i) * b_digit(y, i)) % p_;
  }
  digits[2 * n_] = (c_digit(x) + c_digit(y) + dot) % p_;
  return with_digits(digits);
}

Code HeisenbergGroup::inv(Code x) const {
  // (a,b,c)^{-1} = (-a, -b, -c + <a,b>).
  std::vector<std::uint64_t> digits(2 * n_ + 1);
  std::uint64_t dot = 0;
  for (int i = 0; i < n_; ++i) {
    const std::uint64_t a = a_digit(x, i);
    const std::uint64_t b = b_digit(x, i);
    digits[i] = (p_ - a) % p_;
    digits[n_ + i] = (p_ - b) % p_;
    dot = (dot + a * b) % p_;
  }
  digits[2 * n_] = (p_ - c_digit(x) + dot) % p_;
  return with_digits(digits);
}

std::vector<Code> HeisenbergGroup::generators() const {
  // The a_i and b_i axis elements generate everything (their commutators
  // produce the centre).
  std::vector<Code> gens;
  for (int i = 0; i < 2 * n_; ++i) {
    gens.push_back(Code{1} << (i * digit_bits_));
  }
  return gens;
}

Code HeisenbergGroup::central_generator() const {
  return Code{1} << (2 * n_ * digit_bits_);
}

bool HeisenbergGroup::is_element(Code x) const {
  if ((x >> (digit_bits_ * (2 * n_ + 1))) != 0 &&
      digit_bits_ * (2 * n_ + 1) < 64)
    return false;
  for (int i = 0; i < 2 * n_ + 1; ++i) {
    if (digit(x, i) >= p_) return false;
  }
  return true;
}

std::string HeisenbergGroup::name() const {
  std::ostringstream os;
  os << "Heis(" << p_ << "," << n_ << ")";
  return os.str();
}

}  // namespace nahsp::grp
