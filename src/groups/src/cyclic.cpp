#include "nahsp/groups/cyclic.h"

#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

CyclicGroup::CyclicGroup(std::uint64_t n) : n_(n), bits_(bits_for(n)) {
  NAHSP_REQUIRE(n >= 1, "cyclic group order must be >= 1");
}

Code CyclicGroup::mul(Code a, Code b) const {
  const Code s = a + b;
  return s >= n_ ? s - n_ : s;
}

Code CyclicGroup::inv(Code a) const { return a == 0 ? 0 : n_ - a; }

std::vector<Code> CyclicGroup::generators() const {
  if (n_ == 1) return {};
  return {1};
}

std::string CyclicGroup::name() const {
  std::ostringstream os;
  os << "Z_" << n_;
  return os.str();
}

DirectProduct::DirectProduct(
    std::vector<std::shared_ptr<const Group>> factors)
    : factors_(std::move(factors)) {
  NAHSP_REQUIRE(!factors_.empty(), "direct product needs >= 1 factor");
  for (const auto& f : factors_) {
    NAHSP_REQUIRE(f != nullptr, "null factor");
    shifts_.push_back(total_bits_);
    const int b = f->encoding_bits();
    masks_.push_back(b >= 64 ? ~Code{0} : ((Code{1} << b) - 1));
    total_bits_ += b;
    NAHSP_REQUIRE(total_bits_ <= 64, "product encoding exceeds 64 bits");
    order_ *= f->order();  // callers keep |G| < 2^64 by construction
  }
}

Code DirectProduct::component(Code a, std::size_t i) const {
  return (a >> shifts_[i]) & masks_[i];
}

Code DirectProduct::pack(const std::vector<Code>& components) const {
  NAHSP_REQUIRE(components.size() == factors_.size(),
                "component count mismatch");
  Code a = 0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    NAHSP_REQUIRE((components[i] & ~masks_[i]) == 0,
                  "component exceeds its bit field");
    a |= components[i] << shifts_[i];
  }
  return a;
}

Code DirectProduct::mul(Code a, Code b) const {
  Code out = 0;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    out |= factors_[i]->mul(component(a, i), component(b, i)) << shifts_[i];
  }
  return out;
}

Code DirectProduct::inv(Code a) const {
  Code out = 0;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    out |= factors_[i]->inv(component(a, i)) << shifts_[i];
  }
  return out;
}

Code DirectProduct::id() const {
  Code out = 0;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    out |= factors_[i]->id() << shifts_[i];
  }
  return out;
}

std::vector<Code> DirectProduct::generators() const {
  std::vector<Code> gens;
  const Code e = id();
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    const Code base = e & ~(masks_[i] << shifts_[i]);
    for (const Code g : factors_[i]->generators()) {
      gens.push_back(base | (g << shifts_[i]));
    }
  }
  return gens;
}

bool DirectProduct::is_element(Code a) const {
  if (total_bits_ < 64 && (a >> total_bits_) != 0) return false;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (!factors_[i]->is_element(component(a, i))) return false;
  }
  return true;
}

std::string DirectProduct::name() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (i != 0) os << " x ";
    os << factors_[i]->name();
  }
  return os.str();
}

std::shared_ptr<const DirectProduct> product_of_cyclics(
    const std::vector<std::uint64_t>& orders) {
  std::vector<std::shared_ptr<const Group>> factors;
  factors.reserve(orders.size());
  for (const std::uint64_t n : orders)
    factors.push_back(std::make_shared<CyclicGroup>(n));
  return std::make_shared<DirectProduct>(std::move(factors));
}

std::shared_ptr<const DirectProduct> elementary_abelian(std::uint64_t p,
                                                        int k) {
  NAHSP_REQUIRE(k >= 1, "elementary_abelian requires k >= 1");
  return product_of_cyclics(std::vector<std::uint64_t>(k, p));
}

}  // namespace nahsp::grp
