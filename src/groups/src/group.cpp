#include "nahsp/groups/group.h"

#include "nahsp/common/check.h"

namespace nahsp::grp {

Code Group::pow(Code g, std::uint64_t e) const {
  Code result = id();
  Code base = g;
  while (e != 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

Code Group::conj(Code g, Code h) const { return mul(mul(h, g), inv(h)); }

Code Group::commutator(Code a, Code b) const {
  return mul(mul(a, b), mul(inv(a), inv(b)));
}

std::uint64_t Group::element_order_bruteforce(Code g,
                                              std::uint64_t cap) const {
  Code x = g;
  std::uint64_t k = 1;
  while (!is_id(x)) {
    x = mul(x, g);
    ++k;
    NAHSP_REQUIRE(k <= cap, "element order exceeds brute-force cap");
  }
  return k;
}

}  // namespace nahsp::grp
