#include "nahsp/groups/quotient.h"

#include <sstream>

#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::grp {

QuotientView::QuotientView(std::shared_ptr<const Group> g,
                           std::function<bool(Code)> in_n,
                           std::string display_name)
    : g_(std::move(g)),
      in_n_(std::move(in_n)),
      display_name_(std::move(display_name)) {
  NAHSP_REQUIRE(g_ != nullptr, "null ambient group");
  NAHSP_REQUIRE(in_n_ != nullptr, "null membership oracle");
  NAHSP_CHECK(in_n_(g_->id()), "N must contain the identity");
}

std::uint64_t QuotientView::order() const {
  if (cached_order_ != 0) return cached_order_;
  // Count cosets by enumerating G and counting members of N.
  const std::vector<Code> elems = enumerate_group(*g_);
  std::uint64_t n_size = 0;
  for (const Code x : elems)
    if (in_n_(x)) ++n_size;
  NAHSP_CHECK(n_size > 0 && elems.size() % n_size == 0,
              "|N| must divide |G|");
  cached_order_ = elems.size() / n_size;
  return cached_order_;
}

std::string QuotientView::name() const {
  if (!display_name_.empty()) return display_name_;
  std::ostringstream os;
  os << g_->name() << "/N";
  return os.str();
}

}  // namespace nahsp::grp
