#include "nahsp/groups/permutation.h"

#include <algorithm>
#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

Perm perm_identity(int degree) {
  Perm p(degree);
  for (int i = 0; i < degree; ++i) p[i] = i;
  return p;
}

Perm perm_compose(const Perm& a, const Perm& b) {
  NAHSP_REQUIRE(a.size() == b.size(), "degree mismatch");
  Perm c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[b[i]];
  return c;
}

Perm perm_inverse(const Perm& a) {
  Perm inv(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) inv[a[i]] = static_cast<int>(i);
  return inv;
}

bool perm_is_identity(const Perm& a) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != static_cast<int>(i)) return false;
  return true;
}

std::string perm_to_string(const Perm& a) {
  std::ostringstream os;
  std::vector<bool> seen(a.size(), false);
  bool any = false;
  for (std::size_t start = 0; start < a.size(); ++start) {
    if (seen[start] || a[start] == static_cast<int>(start)) continue;
    any = true;
    os << '(';
    int x = static_cast<int>(start);
    bool first = true;
    do {
      if (!first) os << ' ';
      os << x;
      first = false;
      seen[x] = true;
      x = a[x];
    } while (x != static_cast<int>(start));
    os << ')';
  }
  if (!any) return "()";
  return os.str();
}

Perm perm_from_cycles(int degree,
                      const std::vector<std::vector<int>>& cycles) {
  Perm p = perm_identity(degree);
  for (const auto& cyc : cycles) {
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const int from = cyc[i];
      const int to = cyc[(i + 1) % cyc.size()];
      NAHSP_REQUIRE(from >= 0 && from < degree && to >= 0 && to < degree,
                    "cycle point out of range");
      p[from] = to;
    }
  }
  return p;
}

std::uint64_t perm_rank(const Perm& a) {
  const int d = static_cast<int>(a.size());
  NAHSP_REQUIRE(d <= 20, "perm_rank supports degree <= 20");
  // Lehmer code: count smaller elements to the right, weight by factorial.
  std::uint64_t rank = 0;
  std::uint64_t fact = 1;
  for (int i = d - 2; i >= 0; --i) {
    std::uint64_t smaller = 0;
    for (int j = i + 1; j < d; ++j)
      if (a[j] < a[i]) ++smaller;
    fact *= static_cast<std::uint64_t>(d - 1 - i);
    // fact now equals (d-1-i)!
    rank += smaller * fact;
  }
  return rank;
}

Perm perm_unrank(int degree, std::uint64_t rank) {
  NAHSP_REQUIRE(degree >= 0 && degree <= 20,
                "perm_unrank supports degree <= 20");
  std::vector<std::uint64_t> fact(degree + 1, 1);
  for (int i = 1; i <= degree; ++i)
    fact[i] = fact[i - 1] * static_cast<std::uint64_t>(i);
  NAHSP_REQUIRE(degree == 0 || rank < fact[degree], "rank out of range");
  std::vector<int> pool(degree);
  for (int i = 0; i < degree; ++i) pool[i] = i;
  Perm p(degree);
  for (int i = 0; i < degree; ++i) {
    const std::uint64_t f = fact[degree - 1 - i];
    const std::uint64_t idx = rank / f;
    rank %= f;
    p[i] = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return p;
}

SchreierSims::SchreierSims(int degree, const std::vector<Perm>& generators)
    : degree_(degree) {
  NAHSP_REQUIRE(degree >= 1, "degree must be >= 1");
  const std::size_t levels = degree == 1 ? 1 : degree - 1;
  transversal_.assign(levels, {});
  level_gens_.assign(levels, {});
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    transversal_[lvl].assign(degree, std::nullopt);
    transversal_[lvl][lvl] = perm_identity(degree);  // base point fixed
  }
  for (const Perm& g : generators) {
    NAHSP_REQUIRE(static_cast<int>(g.size()) == degree,
                  "generator degree mismatch");
    extend(g, 0);
  }
}

bool SchreierSims::orbit_add(std::size_t level, int point,
                             const Perm& witness) {
  if (transversal_[level][point].has_value()) return false;
  transversal_[level][point] = witness;
  return true;
}

bool SchreierSims::extend(const Perm& g, std::size_t level) {
  if (perm_is_identity(g)) return false;
  NAHSP_CHECK(level < transversal_.size(), "sift fell off the chain");
  // Strip g against the existing chain starting at `level`.
  Perm h = g;
  std::size_t lvl = level;
  while (lvl < transversal_.size()) {
    const int img = h[static_cast<int>(lvl)];
    if (img == static_cast<int>(lvl)) {
      ++lvl;
      continue;
    }
    if (!transversal_[lvl][img].has_value()) break;  // enlarges orbit
    h = perm_compose(perm_inverse(*transversal_[lvl][img]), h);
  }
  if (perm_is_identity(h)) return false;
  // h's home level is its first moved base point. It joins S^(j) for
  // every j <= home (it fixes the base prefix), so orbits at all those
  // levels must be re-closed.
  std::size_t home = lvl;
  while (home < transversal_.size() &&
         h[static_cast<int>(home)] == static_cast<int>(home))
    ++home;
  NAHSP_CHECK(home < transversal_.size(), "non-identity fixes all points");
  level_gens_[home].push_back(h);
  for (std::size_t l = home + 1; l-- > 0;) close_orbit(l);
  return true;
}

void SchreierSims::close_orbit(std::size_t lvl) {
  // The level-`lvl` stabilizer is generated by every strong generator
  // stored at level >= lvl (those fix the base prefix 0..lvl-1).
  bool changed = true;
  while (changed) {
    changed = false;
    // Re-gather each sweep, by value: recursive extend() calls may add
    // generators and reallocate the per-level vectors.
    std::vector<Perm> gens;
    for (std::size_t j = lvl; j < level_gens_.size(); ++j)
      for (const Perm& s : level_gens_[j]) gens.push_back(s);
    for (int p = 0; p < degree_; ++p) {
      if (!transversal_[lvl][p].has_value()) continue;
      for (const Perm& s : gens) {
        const int q = s[p];
        const Perm witness = perm_compose(s, *transversal_[lvl][p]);
        if (orbit_add(lvl, q, witness)) {
          changed = true;
        } else {
          // Schreier generator u_q^{-1} * s * u_p fixes base point lvl.
          const Perm schreier =
              perm_compose(perm_inverse(*transversal_[lvl][q]), witness);
          if (extend(schreier, lvl + 1)) changed = true;
        }
      }
    }
  }
}

std::uint64_t SchreierSims::order() const {
  std::uint64_t o = 1;
  for (const auto& tv : transversal_) {
    std::uint64_t orbit_size = 0;
    for (const auto& t : tv)
      if (t.has_value()) ++orbit_size;
    o *= orbit_size;
  }
  return o;
}

Perm SchreierSims::sift(const Perm& p) const {
  Perm h = p;
  for (std::size_t lvl = 0; lvl < transversal_.size(); ++lvl) {
    const int img = h[static_cast<int>(lvl)];
    if (img == static_cast<int>(lvl)) continue;
    if (!transversal_[lvl][img].has_value()) return h;
    h = perm_compose(perm_inverse(*transversal_[lvl][img]), h);
  }
  return h;
}

bool SchreierSims::contains(const Perm& p) const {
  NAHSP_REQUIRE(static_cast<int>(p.size()) == degree_, "degree mismatch");
  return perm_is_identity(sift(p));
}

std::vector<int> SchreierSims::orbit(int level) const {
  NAHSP_REQUIRE(level >= 0 &&
                    level < static_cast<int>(transversal_.size()),
                "level out of range");
  std::vector<int> pts;
  for (int p = 0; p < degree_; ++p)
    if (transversal_[level][p].has_value()) pts.push_back(p);
  return pts;
}

Perm SchreierSims::min_coset_rep(const Perm& x) const {
  // Greedy lexicographic minimisation of (x*u)(0), (x*u)(1), ... over
  // u in H, descending the point stabilizer chain: at level l the
  // remaining freedom is u = t * s with t the accumulated transversal
  // product and s in the level-l stabilizer, so (x*t*s)(l) ranges over
  // x(t(orbit_l)).
  Perm acc = perm_identity(degree_);
  Perm x_acc = x;
  for (std::size_t lvl = 0; lvl < transversal_.size(); ++lvl) {
    int best_point = -1;
    int best_image = degree_;
    for (int p = 0; p < degree_; ++p) {
      if (!transversal_[lvl][p].has_value()) continue;
      const int img = x_acc[p];
      if (img < best_image) {
        best_image = img;
        best_point = p;
      }
    }
    NAHSP_CHECK(best_point >= 0, "empty orbit in stabilizer chain");
    const Perm& t = *transversal_[lvl][best_point];
    acc = perm_compose(acc, t);
    x_acc = perm_compose(x_acc, t);
  }
  return x_acc;
}

PermutationGroup::PermutationGroup(int degree, std::vector<Perm> generators,
                                   std::string display_name)
    : degree_(degree),
      gen_perms_(std::move(generators)),
      bsgs_(degree, gen_perms_),
      display_name_(std::move(display_name)) {
  NAHSP_REQUIRE(degree >= 1 && degree <= 20, "degree must be in [1, 20]");
  std::uint64_t fact = 1;
  for (int i = 2; i <= degree; ++i) fact *= static_cast<std::uint64_t>(i);
  bits_ = bits_for(fact);
  if (bits_ == 0) bits_ = 1;
}

Code PermutationGroup::mul(Code a, Code b) const {
  return perm_rank(perm_compose(decode(a), decode(b)));
}

Code PermutationGroup::inv(Code a) const {
  return perm_rank(perm_inverse(decode(a)));
}

Code PermutationGroup::id() const {
  return perm_rank(perm_identity(degree_));
}

std::vector<Code> PermutationGroup::generators() const {
  std::vector<Code> gens;
  gens.reserve(gen_perms_.size());
  for (const Perm& p : gen_perms_) gens.push_back(perm_rank(p));
  return gens;
}

std::uint64_t PermutationGroup::order() const { return bsgs_.order(); }

bool PermutationGroup::is_element(Code a) const {
  std::uint64_t fact = 1;
  for (int i = 2; i <= degree_; ++i) fact *= static_cast<std::uint64_t>(i);
  if (a >= fact) return false;
  return bsgs_.contains(decode(a));
}

std::string PermutationGroup::name() const {
  if (!display_name_.empty()) return display_name_;
  std::ostringstream os;
  os << "PermGroup(deg=" << degree_ << ", |G|=" << order() << ")";
  return os.str();
}

std::shared_ptr<const PermutationGroup> symmetric_group(int degree) {
  NAHSP_REQUIRE(degree >= 1, "degree must be >= 1");
  std::vector<Perm> gens;
  if (degree >= 2) {
    gens.push_back(perm_from_cycles(degree, {{0, 1}}));
    if (degree >= 3) {
      std::vector<int> full(degree);
      for (int i = 0; i < degree; ++i) full[i] = i;
      gens.push_back(perm_from_cycles(degree, {full}));
    }
  }
  std::ostringstream os;
  os << "S_" << degree;
  return std::make_shared<PermutationGroup>(degree, gens, os.str());
}

std::shared_ptr<const PermutationGroup> alternating_group(int degree) {
  NAHSP_REQUIRE(degree >= 3, "alternating group needs degree >= 3");
  std::vector<Perm> gens;
  // 3-cycles (0 1 2), (0 1 3), ..., (0 1 d-1) generate A_d.
  for (int i = 2; i < degree; ++i)
    gens.push_back(perm_from_cycles(degree, {{0, 1, i}}));
  std::ostringstream os;
  os << "A_" << degree;
  return std::make_shared<PermutationGroup>(degree, gens, os.str());
}

std::shared_ptr<const PermutationGroup> iterated_wreath_z2(int depth) {
  NAHSP_REQUIRE(depth >= 1 && depth <= 4,
                "iterated wreath depth must be in [1, 4] (degree <= 16)");
  const int degree = 1 << depth;
  // Level-l generator: XOR bit l-1 on the first 2^l points, i.e. swap
  // the two half-blocks of the leading 2^l-point block. These d
  // permutations generate the Sylow 2-subgroup of S_{2^d}, the iterated
  // wreath product Z_2 wr ... wr Z_2 of order 2^(2^d - 1).
  std::vector<Perm> gens;
  for (int l = 1; l <= depth; ++l) {
    Perm p(degree);
    for (int i = 0; i < degree; ++i) p[i] = i < (1 << l) ? i ^ (1 << (l - 1)) : i;
    gens.push_back(std::move(p));
  }
  std::ostringstream os;
  os << "W_2^(" << depth << ")";
  return std::make_shared<PermutationGroup>(degree, gens, os.str());
}

}  // namespace nahsp::grp
