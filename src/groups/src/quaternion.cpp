#include "nahsp/groups/quaternion.h"

#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

QuaternionGroup::QuaternionGroup(std::uint64_t order) : n_(order / 2) {
  NAHSP_REQUIRE(order >= 8 && is_pow2(order),
                "generalized quaternion order must be a power of two >= 8");
  abits_ = bits_for(n_);
  amask_ = (Code{1} << abits_) - 1;
}

Code QuaternionGroup::make(std::uint64_t i, bool j) const {
  NAHSP_REQUIRE(i < n_, "a-exponent out of range");
  return i | (static_cast<Code>(j) << abits_);
}

Code QuaternionGroup::mul(Code x, Code y) const {
  const std::uint64_t i1 = a_exp(x);
  const std::uint64_t i2 = a_exp(y);
  const bool j1 = b_exp(x);
  const bool j2 = b_exp(y);
  // (a^{i1} b^{j1})(a^{i2} b^{j2}):
  //   b a^i = a^{-i} b, and b^2 = a^{n/2}.
  std::uint64_t i = j1 ? (i1 + n_ - i2 % n_) % n_ : (i1 + i2) % n_;
  if (j1 && j2) i = (i + n_ / 2) % n_;  // fold b^2 into <a>
  return make(i, j1 != j2);
}

Code QuaternionGroup::inv(Code x) const {
  const std::uint64_t i = a_exp(x);
  if (!b_exp(x)) return make(i == 0 ? 0 : n_ - i, false);
  // (a^i b)^{-1} = b^{-1} a^{-i} = a^{n/2} b a^{-i} = a^{i + n/2} b.
  return make((i + n_ / 2) % n_, true);
}

std::vector<Code> QuaternionGroup::generators() const {
  return {make(1, false), make(0, true)};
}

int QuaternionGroup::encoding_bits() const { return abits_ + 1; }

bool QuaternionGroup::is_element(Code x) const {
  return a_exp(x) < n_ && (x >> (abits_ + 1)) == 0;
}

std::string QuaternionGroup::name() const {
  std::ostringstream os;
  os << "Q_" << 2 * n_;
  return os.str();
}

}  // namespace nahsp::grp
