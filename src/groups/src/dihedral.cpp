#include "nahsp/groups/dihedral.h"

#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

DihedralGroup::DihedralGroup(std::uint64_t n)
    : n_(n),
      rot_bits_(bits_for(n) == 0 ? 1 : bits_for(n)),
      rot_mask_((Code{1} << rot_bits_) - 1) {
  NAHSP_REQUIRE(n >= 1, "dihedral parameter must be >= 1");
  NAHSP_REQUIRE(rot_bits_ + 1 <= 64, "dihedral encoding exceeds 64 bits");
}

Code DihedralGroup::make(std::uint64_t r, bool s) const {
  NAHSP_REQUIRE(r < n_, "rotation exponent out of range");
  return r | (static_cast<Code>(s) << rot_bits_);
}

Code DihedralGroup::mul(Code a, Code b) const {
  const std::uint64_t r1 = rotation_of(a);
  const std::uint64_t r2 = rotation_of(b);
  const bool s1 = reflection_of(a);
  const bool s2 = reflection_of(b);
  // (x^{r1} y^{s1})(x^{r2} y^{s2}) = x^{r1 + (-1)^{s1} r2} y^{s1 xor s2}
  const std::uint64_t r =
      s1 ? (r1 + n_ - r2 % n_) % n_ : (r1 + r2) % n_;
  return make(r, s1 != s2);
}

Code DihedralGroup::inv(Code a) const {
  const std::uint64_t r = rotation_of(a);
  const bool s = reflection_of(a);
  // (x^r)^{-1} = x^{n-r}; reflections are involutions.
  return s ? a : make(r == 0 ? 0 : n_ - r, false);
}

std::vector<Code> DihedralGroup::generators() const {
  std::vector<Code> gens;
  if (n_ > 1) gens.push_back(make(1, false));
  gens.push_back(make(0, true));
  return gens;
}

bool DihedralGroup::is_element(Code a) const {
  return rotation_of(a) < n_ && (a >> (rot_bits_ + 1)) == 0;
}

std::string DihedralGroup::name() const {
  std::ostringstream os;
  os << "D_" << n_;
  return os.str();
}

}  // namespace nahsp::grp
