#include "nahsp/groups/algorithms.h"

#include <algorithm>
#include <deque>

#include "nahsp/common/check.h"

namespace nahsp::grp {

std::vector<Code> enumerate_subgroup(const Group& g,
                                     const std::vector<Code>& gens,
                                     std::size_t cap) {
  std::unordered_set<Code> seen;
  std::deque<Code> frontier;
  seen.insert(g.id());
  frontier.push_back(g.id());
  // Close under right-multiplication by generators and their inverses.
  std::vector<Code> step = gens;
  for (const Code x : gens) step.push_back(g.inv(x));
  while (!frontier.empty()) {
    const Code cur = frontier.front();
    frontier.pop_front();
    for (const Code s : step) {
      const Code nxt = g.mul(cur, s);
      if (seen.insert(nxt).second) {
        NAHSP_REQUIRE(seen.size() <= cap,
                      "subgroup enumeration exceeded cap");
        frontier.push_back(nxt);
      }
    }
  }
  std::vector<Code> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Code> enumerate_group(const Group& g, std::size_t cap) {
  return enumerate_subgroup(g, g.generators(), cap);
}

bool subgroup_contains(const Group& g, const std::vector<Code>& gens,
                       Code x, std::size_t cap) {
  const std::vector<Code> elems = enumerate_subgroup(g, gens, cap);
  return std::binary_search(elems.begin(), elems.end(), x);
}

bool same_subgroup(const Group& g, const std::vector<Code>& a,
                   const std::vector<Code>& b, std::size_t cap) {
  return enumerate_subgroup(g, a, cap) == enumerate_subgroup(g, b, cap);
}

std::vector<Code> normal_closure(const Group& g, const std::vector<Code>& s,
                                 std::size_t cap) {
  // Incremental generating set: add conjugates that fall outside the
  // current closure. Membership is by enumeration, so the routine is
  // polynomial in the closure size — the regime Theorems 8/11 allow.
  std::vector<Code> closure_gens;
  std::unordered_set<Code> have;  // current closure's element set
  have.insert(g.id());
  auto add_if_new = [&](Code x) {
    if (have.contains(x)) return;
    closure_gens.push_back(x);
    const std::vector<Code> elems =
        enumerate_subgroup(g, closure_gens, cap);
    have = std::unordered_set<Code>(elems.begin(), elems.end());
  };
  for (const Code x : s) add_if_new(x);

  const std::vector<Code> group_gens = g.generators();
  // Fixed-point loop: conjugate everything currently in the generating
  // set by all group generators until no new element appears.
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Code> snapshot = closure_gens;
    for (const Code x : snapshot) {
      for (const Code y : group_gens) {
        const Code c1 = g.conj(x, y);
        if (!have.contains(c1)) {
          add_if_new(c1);
          changed = true;
        }
        const Code c2 = g.conj(x, g.inv(y));
        if (!have.contains(c2)) {
          add_if_new(c2);
          changed = true;
        }
      }
    }
  }
  return closure_gens;
}

std::vector<Code> commutator_subgroup(const Group& g, std::size_t cap) {
  const std::vector<Code> gens = g.generators();
  std::vector<Code> comms;
  for (const Code a : gens)
    for (const Code b : gens) {
      const Code c = g.commutator(a, b);
      if (!g.is_id(c)) comms.push_back(c);
    }
  return normal_closure(g, comms, cap);
}

std::vector<std::vector<Code>> derived_series_elements(const Group& g,
                                                       std::size_t cap) {
  std::vector<std::vector<Code>> series;
  series.push_back(enumerate_group(g, cap));
  std::vector<Code> current_gens = g.generators();
  for (int depth = 0; depth < 64; ++depth) {
    if (series.back().size() == 1) return series;
    // Commutators of the current term's generators, then normal closure
    // inside the current term (which is normal in G, so closing under
    // G-conjugation is also correct and simpler).
    std::vector<Code> comms;
    for (const Code a : current_gens)
      for (const Code b : current_gens) {
        const Code c = g.commutator(a, b);
        if (!g.is_id(c)) comms.push_back(c);
      }
    if (comms.empty()) {
      series.push_back({g.id()});
      return series;
    }
    current_gens = normal_closure(g, comms, cap);
    series.push_back(enumerate_subgroup(g, current_gens, cap));
  }
  throw internal_error("derived series did not terminate: non-solvable group?");
}

bool is_abelian(const Group& g) {
  const std::vector<Code> gens = g.generators();
  for (std::size_t i = 0; i < gens.size(); ++i)
    for (std::size_t j = i + 1; j < gens.size(); ++j) {
      if (g.mul(gens[i], gens[j]) != g.mul(gens[j], gens[i])) return false;
    }
  return true;
}

bool is_normal_subgroup(const Group& g, const std::vector<Code>& subgroup_gens,
                        std::size_t cap) {
  const std::vector<Code> elems = enumerate_subgroup(g, subgroup_gens, cap);
  for (const Code h : subgroup_gens) {
    for (const Code y : g.generators()) {
      if (!std::binary_search(elems.begin(), elems.end(), g.conj(h, y)))
        return false;
      if (!std::binary_search(elems.begin(), elems.end(),
                              g.conj(h, g.inv(y))))
        return false;
    }
  }
  return true;
}

std::vector<Code> center_elements(const Group& g, std::size_t cap) {
  const std::vector<Code> elems = enumerate_group(g, cap);
  const std::vector<Code> gens = g.generators();
  std::vector<Code> out;
  for (const Code x : elems) {
    bool central = true;
    for (const Code y : gens) {
      if (g.mul(x, y) != g.mul(y, x)) {
        central = false;
        break;
      }
    }
    if (central) out.push_back(x);
  }
  return out;
}

Code random_word_element(const Group& g, const std::vector<Code>& gens,
                         Rng& rng, int word_len) {
  if (gens.empty()) return g.id();
  Code x = g.id();
  for (int i = 0; i < word_len; ++i) {
    const Code s = gens[rng.below(gens.size())];
    x = rng.coin() ? g.mul(x, s) : g.mul(x, g.inv(s));
  }
  return x;
}

}  // namespace nahsp::grp
