#include "nahsp/groups/gf2group.h"

#include <sstream>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"

namespace nahsp::grp {

GF2Mat GF2Mat::identity(int k) {
  GF2Mat m(k);
  for (int i = 0; i < k; ++i) m.rows_[i] = 1ULL << i;
  return m;
}

GF2Mat GF2Mat::permutation(const std::vector<int>& perm) {
  GF2Mat m(static_cast<int>(perm.size()));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    NAHSP_REQUIRE(perm[i] >= 0 && perm[i] < static_cast<int>(perm.size()),
                  "permutation entry out of range");
    m.rows_[i] = 1ULL << perm[i];
  }
  return m;
}

GF2Mat GF2Mat::block_swap(int b) {
  std::vector<int> perm(2 * b);
  for (int i = 0; i < b; ++i) {
    perm[i] = b + i;
    perm[b + i] = i;
  }
  return permutation(perm);
}

GF2Mat GF2Mat::companion(int k, std::uint64_t coeff_mask) {
  GF2Mat m(k);
  // Columns shift: e_i -> e_{i+1}; e_{k-1} -> coefficient vector.
  // With our matvec convention y_i = <row_i, x>:
  //   row 0 = coeff bit 0 on column k-1
  // Simpler: build by setting entries. A e_j = e_{j+1} for j<k-1,
  // A e_{k-1} = sum over set coeff bits of e_i.
  for (int j = 0; j + 1 < k; ++j) m.set(j + 1, j, true);
  for (int i = 0; i < k; ++i) {
    if ((coeff_mask >> i) & 1) m.set(i, k - 1, true);
  }
  return m;
}

void GF2Mat::set(int r, int c, bool v) {
  NAHSP_REQUIRE(r >= 0 && r < k_ && c >= 0 && c < k_, "index out of range");
  if (v)
    rows_[r] |= 1ULL << c;
  else
    rows_[r] &= ~(1ULL << c);
}

std::uint64_t GF2Mat::matvec(std::uint64_t x) const {
  std::uint64_t y = 0;
  for (int i = 0; i < k_; ++i) {
    y |= static_cast<std::uint64_t>(dot2(rows_[i], x)) << i;
  }
  return y;
}

GF2Mat GF2Mat::mul(const GF2Mat& other) const {
  NAHSP_REQUIRE(k_ == other.k_, "dimension mismatch");
  GF2Mat out(k_);
  // (AB)_{ij} = <row_i(A), col_j(B)>; compute row_i(AB) = row_i(A) * B
  // as an xor of B's rows selected by row_i(A)'s bits.
  for (int i = 0; i < k_; ++i) {
    std::uint64_t acc = 0;
    std::uint64_t bits = rows_[i];
    while (bits != 0) {
      const int j = std::countr_zero(bits);
      bits &= bits - 1;
      acc ^= other.rows_[j];
    }
    out.rows_[i] = acc;
  }
  return out;
}

GF2Mat GF2Mat::pow(std::uint64_t e) const {
  GF2Mat result = identity(k_);
  GF2Mat base = *this;
  while (e != 0) {
    if (e & 1) result = result.mul(base);
    base = base.mul(base);
    e >>= 1;
  }
  return result;
}

bool GF2Mat::invertible() const {
  std::vector<std::uint64_t> work = rows_;
  int rank = 0;
  for (int col = 0; col < k_; ++col) {
    int piv = rank;
    while (piv < k_ && !((work[piv] >> col) & 1)) ++piv;
    if (piv == k_) return false;
    std::swap(work[rank], work[piv]);
    for (int r = 0; r < k_; ++r) {
      if (r != rank && ((work[r] >> col) & 1)) work[r] ^= work[rank];
    }
    ++rank;
  }
  return rank == k_;
}

GF2Mat GF2Mat::inverse() const {
  // Gauss-Jordan on [A | I].
  std::vector<std::uint64_t> a = rows_;
  std::vector<std::uint64_t> inv(k_);
  for (int i = 0; i < k_; ++i) inv[i] = 1ULL << i;
  int rank = 0;
  for (int col = 0; col < k_; ++col) {
    int piv = rank;
    while (piv < k_ && !((a[piv] >> col) & 1)) ++piv;
    NAHSP_REQUIRE(piv < k_, "matrix not invertible");
    std::swap(a[rank], a[piv]);
    std::swap(inv[rank], inv[piv]);
    for (int r = 0; r < k_; ++r) {
      if (r != rank && ((a[r] >> col) & 1)) {
        a[r] ^= a[rank];
        inv[r] ^= inv[rank];
      }
    }
    ++rank;
  }
  GF2Mat out(k_);
  out.rows_ = inv;
  return out;
}

bool GF2Mat::operator==(const GF2Mat& other) const {
  return k_ == other.k_ && rows_ == other.rows_;
}

std::uint64_t GF2Mat::mat_order(std::uint64_t cap) const {
  NAHSP_REQUIRE(invertible(), "order of a singular matrix");
  const GF2Mat ident = identity(k_);
  GF2Mat x = *this;
  std::uint64_t t = 1;
  while (!(x == ident)) {
    x = x.mul(*this);
    ++t;
    NAHSP_REQUIRE(t <= cap, "matrix order exceeds cap");
  }
  return t;
}

GF2SemidirectCyclic::GF2SemidirectCyclic(int k, GF2Mat t, std::uint64_t m)
    : k_(k), m_(m), vmask_((k >= 64 ? ~Code{0} : (Code{1} << k) - 1)) {
  NAHSP_REQUIRE(k >= 1 && k <= 32, "k must be in [1, 32]");
  NAHSP_REQUIRE(m >= 1, "m must be >= 1");
  NAHSP_REQUIRE(t.dim() == k, "action dimension mismatch");
  NAHSP_REQUIRE(t.invertible(), "action matrix must be invertible");
  NAHSP_REQUIRE(t.pow(m) == GF2Mat::identity(k),
                "action matrix order must divide m");
  NAHSP_REQUIRE(k + bits_for(m) <= 64, "encoding exceeds 64 bits");
  pow_.reserve(m);
  GF2Mat acc = GF2Mat::identity(k);
  for (std::uint64_t j = 0; j < m; ++j) {
    pow_.push_back(acc);
    acc = acc.mul(t);
  }
}

Code GF2SemidirectCyclic::make(std::uint64_t v, std::uint64_t j) const {
  NAHSP_REQUIRE((v & ~vmask_) == 0, "vector part out of range");
  NAHSP_REQUIRE(j < m_, "cyclic part out of range");
  return v | (j << k_);
}

Code GF2SemidirectCyclic::mul(Code a, Code b) const {
  const std::uint64_t j1 = rot_of(a);
  const std::uint64_t j2 = rot_of(b);
  const std::uint64_t v = vec_of(a) ^ pow_[j1].matvec(vec_of(b));
  std::uint64_t j = j1 + j2;
  if (j >= m_) j -= m_;
  return v | (j << k_);
}

Code GF2SemidirectCyclic::inv(Code a) const {
  const std::uint64_t j = rot_of(a);
  const std::uint64_t jinv = j == 0 ? 0 : m_ - j;
  // (v, j)^{-1} = (T^{-j} v, -j); T^{-j} = T^{m-j}.
  return pow_[jinv].matvec(vec_of(a)) | (jinv << k_);
}

std::vector<Code> GF2SemidirectCyclic::generators() const {
  std::vector<Code> gens;
  if (m_ > 1) gens.push_back(make(0, 1));
  for (int i = 0; i < k_; ++i) gens.push_back(make(1ULL << i, 0));
  return gens;
}

int GF2SemidirectCyclic::encoding_bits() const {
  return k_ + (bits_for(m_) == 0 ? 1 : bits_for(m_));
}

std::uint64_t GF2SemidirectCyclic::order() const {
  return (std::uint64_t{1} << k_) * m_;
}

bool GF2SemidirectCyclic::is_element(Code a) const {
  return rot_of(a) < m_;
}

std::string GF2SemidirectCyclic::name() const {
  std::ostringstream os;
  os << "Z2^" << k_ << " x| Z_" << m_;
  return os.str();
}

std::vector<Code> GF2SemidirectCyclic::normal_subgroup_generators() const {
  std::vector<Code> gens;
  for (int i = 0; i < k_; ++i) gens.push_back(make(1ULL << i, 0));
  return gens;
}

std::shared_ptr<const GF2SemidirectCyclic> wreath_z2k_z2(int k) {
  NAHSP_REQUIRE(k >= 1 && 2 * k <= 32, "wreath block size out of range");
  return std::make_shared<GF2SemidirectCyclic>(2 * k, GF2Mat::block_swap(k),
                                               2);
}

std::shared_ptr<const GF2SemidirectCyclic> paper_matrix_group(
    const GF2Mat& m_block) {
  const std::uint64_t m = m_block.mat_order();
  return std::make_shared<GF2SemidirectCyclic>(m_block.dim(), m_block, m);
}

}  // namespace nahsp::grp
