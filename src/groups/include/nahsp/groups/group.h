// Abstract finite group over 64-bit element codes.
//
// This mirrors the paper's black-box group model (Babai–Szemerédi): group
// elements are opaque bit strings of a fixed encoding length n (here
// n <= 64), and the group is accessed only through the multiplication /
// inversion oracles plus a generator list. Concrete groups (cyclic,
// dihedral, permutation, GF(2)-matrix, ...) implement the interface; the
// HSP solvers only ever see the `bbox::BlackBoxGroup` facade wrapped
// around it, which additionally counts oracle calls.
//
// Encodings are unique for every concrete group in this library; the
// non-unique-encoding case of the paper (factor groups G/N) is modelled
// by grp::QuotientView (see quotient.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// \brief The abstract finite-group interface over 64-bit element
/// codes, mirroring the Babai–Szemerédi black-box group model.

namespace nahsp::grp {

/// Element code: an at-most-64-bit string naming one group element.
using Code = std::uint64_t;

/// Abstract finite group. All operations are total on valid element
/// codes; behaviour on invalid codes is unspecified (as in the black-box
/// model, where the box may behave arbitrarily on non-elements).
class Group {
 public:
  virtual ~Group() = default;

  /// Product a*b.
  virtual Code mul(Code a, Code b) const = 0;

  /// Inverse a^{-1}.
  virtual Code inv(Code a) const = 0;

  /// The identity element's code.
  virtual Code id() const = 0;

  /// Identity test. For unique encodings this is code equality; quotient
  /// views override it (non-unique encodings need an identity oracle).
  virtual bool is_id(Code a) const { return a == id(); }

  /// The defining generator list (input to every algorithm).
  virtual std::vector<Code> generators() const = 0;

  /// Encoding length in bits: all valid codes are < 2^encoding_bits().
  virtual int encoding_bits() const = 0;

  /// Group order. Concrete groups know it; it is used by instance
  /// builders and tests, never by the HSP solvers themselves.
  virtual std::uint64_t order() const = 0;

  /// Validity test for a code (used by tests and the simulators).
  virtual bool is_element(Code a) const = 0;

  /// Short human-readable name, e.g. "D_12" or "Heis(5,1)".
  virtual std::string name() const = 0;

  // ----- derived operations (implemented on top of the oracles) -----

  /// g^e by square-and-multiply (e >= 0).
  Code pow(Code g, std::uint64_t e) const;

  /// Conjugate h g h^{-1}.
  Code conj(Code g, Code h) const;

  /// Commutator [a,b] = a b a^{-1} b^{-1}.
  Code commutator(Code a, Code b) const;

  /// Order of a single element by brute-force iteration (reference /
  /// test helper; the quantum algorithms use hsp::find_order instead).
  std::uint64_t element_order_bruteforce(Code g,
                                         std::uint64_t cap = 1u << 22) const;
};

}  // namespace nahsp::grp
