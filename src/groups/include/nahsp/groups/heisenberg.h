// Extraspecial-type p-groups: the Heisenberg groups H(p, n) of order
// p^{2n+1}.
//
// Elements are triples (a, b, c) with a, b in Z_p^n and c in Z_p, and
//   (a1,b1,c1) * (a2,b2,c2) = (a1+a2, b1+b2, c1+c2 + <a1,b2>).
// For n = 1 and odd p this is the extraspecial group of order p^3 and
// exponent p: its centre equals its commutator subgroup, both of order p,
// and G/G' is elementary Abelian — exactly the family of the paper's
// Corollary 12 (HSP solvable in time poly(input + p) via Theorem 11).
#pragma once

#include "nahsp/groups/group.h"

/// \file
/// \brief Heisenberg groups H(p, n) of order p^{2n+1} — the
/// extraspecial family of the paper's Corollary 12 (n = 1, odd p).

namespace nahsp::grp {

/// Heisenberg group H(p, n) with mixed-radix code
/// (a_0..a_{n-1}, b_0..b_{n-1}, c), each digit < p, packed in bit fields.
class HeisenbergGroup final : public Group {
 public:
  HeisenbergGroup(std::uint64_t p, int n);

  Code mul(Code a, Code b) const override;
  Code inv(Code a) const override;
  Code id() const override { return 0; }
  std::vector<Code> generators() const override;
  int encoding_bits() const override { return digit_bits_ * (2 * n_ + 1); }
  std::uint64_t order() const override;
  bool is_element(Code a) const override;
  std::string name() const override;

  /// \brief The prime modulus p.
  std::uint64_t p() const { return p_; }
  /// \brief The rank n (a and b have n digits each).
  int n() const { return n_; }

  /// \brief Packs (a, b, c); a and b must have length n, entries < p.
  Code make(const std::vector<std::uint64_t>& a,
            const std::vector<std::uint64_t>& b, std::uint64_t c) const;

  /// \brief The centre generator (0, 0, 1); the centre is its span and
  /// equals the commutator subgroup.
  Code central_generator() const;

  /// \brief Digit a_i of x = (a, b, c).
  std::uint64_t a_digit(Code x, int i) const { return digit(x, i); }
  /// \brief Digit b_i of x = (a, b, c).
  std::uint64_t b_digit(Code x, int i) const { return digit(x, n_ + i); }
  /// \brief Central digit c of x = (a, b, c).
  std::uint64_t c_digit(Code x) const { return digit(x, 2 * n_); }

 private:
  std::uint64_t digit(Code x, int idx) const {
    return (x >> (idx * digit_bits_)) & digit_mask_;
  }
  Code with_digits(const std::vector<std::uint64_t>& digits) const;

  std::uint64_t p_;
  int n_;
  int digit_bits_;
  Code digit_mask_;
};

}  // namespace nahsp::grp
