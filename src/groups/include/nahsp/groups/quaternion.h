// Generalized quaternion groups Q_{2^k} (k >= 3), order 2^k.
//
//   Q = < a, b | a^{2^{k-1}} = 1, b^2 = a^{2^{k-2}}, b a b^{-1} = a^{-1} >
//
// Q_8 is extra-special; every Q_{2^k} has commutator subgroup <a^2> of
// order 2^{k-2} and centre {1, a^{2^{k-2}}} — so small instances are
// natural Theorem 11 targets, and they exercise the b^2 != 1 twist that
// dihedral groups lack.
#pragma once

#include "nahsp/groups/group.h"

/// \file
/// \brief Generalized quaternion groups Q_{2^k} — natural Theorem 11
/// targets exercising the b^2 != 1 twist dihedral groups lack.

namespace nahsp::grp {

/// Q_{2^k}: element a^i b^j (0 <= i < 2^{k-1}, j in {0,1}) encoded as
/// i | (j << (k-1)).
class QuaternionGroup final : public Group {
 public:
  /// `order` must be a power of two >= 8.
  explicit QuaternionGroup(std::uint64_t order);

  Code mul(Code x, Code y) const override;
  Code inv(Code x) const override;
  Code id() const override { return 0; }
  std::vector<Code> generators() const override;
  int encoding_bits() const override;
  std::uint64_t order() const override { return 2 * n_; }
  bool is_element(Code x) const override;
  std::string name() const override;

  /// \brief Encodes a^i b^j.
  Code make(std::uint64_t i, bool j) const;
  /// \brief Exponent i of x = a^i b^j.
  std::uint64_t a_exp(Code x) const { return x & amask_; }
  /// \brief Exponent j of x = a^i b^j.
  bool b_exp(Code x) const { return (x >> abits_) & 1; }

  /// \brief The central involution a^{n/2} (= b^2).
  Code central_involution() const { return make(n_ / 2, false); }

 private:
  std::uint64_t n_;  // order of <a> = 2^{k-1}
  int abits_;
  Code amask_;
};

}  // namespace nahsp::grp
