// Non-unique encodings: a view of G/N using G's codes.
//
// The paper's black-box model explicitly allows non-unique encodings with
// an identity-test oracle ("typical examples ... are factor groups G/N of
// matrix groups"). QuotientView realises exactly that: elements of G/N
// are represented by arbitrary members of their coset, multiplication is
// G's multiplication, and is_id consults a membership oracle for N.
#pragma once

#include <functional>
#include <memory>

#include "nahsp/groups/group.h"

/// \file
/// \brief Non-unique encodings: a view of the factor group G/N reusing
/// G's codes, with an identity oracle deciding membership in N.

namespace nahsp::grp {

/// G/N with G's (unique) encoding reused as a non-unique encoding of the
/// factor group; `in_n` is the membership oracle for the normal subgroup.
class QuotientView final : public Group {
 public:
  QuotientView(std::shared_ptr<const Group> g,
               std::function<bool(Code)> in_n, std::string display_name = {});

  Code mul(Code a, Code b) const override { return g_->mul(a, b); }
  Code inv(Code a) const override { return g_->inv(a); }
  Code id() const override { return g_->id(); }
  bool is_id(Code a) const override { return in_n_(a); }
  std::vector<Code> generators() const override { return g_->generators(); }
  int encoding_bits() const override { return g_->encoding_bits(); }
  /// Order of the *factor* group; computed lazily by coset counting.
  std::uint64_t order() const override;
  bool is_element(Code a) const override { return g_->is_element(a); }
  std::string name() const override;

  /// \brief The ambient group G whose codes this view reuses.
  const Group& ambient() const { return *g_; }

 private:
  std::shared_ptr<const Group> g_;
  std::function<bool(Code)> in_n_;
  std::string display_name_;
  mutable std::uint64_t cached_order_ = 0;
};

}  // namespace nahsp::grp
