// Cyclic groups, direct products, and elementary Abelian groups.
//
// These are both the Abelian substrate of the paper's Theorem 3 solver
// and the building blocks the non-Abelian constructions hang off
// (wreath products, semidirect products, Heisenberg groups).
#pragma once

#include <memory>

#include "nahsp/groups/group.h"

/// \file
/// \brief Cyclic groups, direct products, and elementary Abelian
/// groups — the Abelian substrate of Theorem 3 and the building blocks
/// of the non-Abelian constructions.

namespace nahsp::grp {

/// Z_n with codes 0..n-1 and addition mod n. Generator: 1.
class CyclicGroup final : public Group {
 public:
  explicit CyclicGroup(std::uint64_t n);

  Code mul(Code a, Code b) const override;
  Code inv(Code a) const override;
  Code id() const override { return 0; }
  std::vector<Code> generators() const override;
  int encoding_bits() const override { return bits_; }
  std::uint64_t order() const override { return n_; }
  bool is_element(Code a) const override { return a < n_; }
  std::string name() const override;

  /// \brief The modulus n.
  std::uint64_t modulus() const { return n_; }

 private:
  std::uint64_t n_;
  int bits_;
};

/// Direct product G_1 x ... x G_k, each factor's code packed into its own
/// bit field. Generators: the embedded generators of every factor.
class DirectProduct final : public Group {
 public:
  explicit DirectProduct(std::vector<std::shared_ptr<const Group>> factors);

  Code mul(Code a, Code b) const override;
  Code inv(Code a) const override;
  Code id() const override;
  std::vector<Code> generators() const override;
  int encoding_bits() const override { return total_bits_; }
  std::uint64_t order() const override { return order_; }
  bool is_element(Code a) const override;
  std::string name() const override;

  /// \brief Number of direct factors.
  std::size_t factor_count() const { return factors_.size(); }
  /// \brief The i-th direct factor.
  const Group& factor(std::size_t i) const { return *factors_[i]; }

  /// Extracts factor i's component of a packed code.
  Code component(Code a, std::size_t i) const;
  /// Packs per-factor components into a product code.
  Code pack(const std::vector<Code>& components) const;

 private:
  std::vector<std::shared_ptr<const Group>> factors_;
  std::vector<int> shifts_;
  std::vector<Code> masks_;
  int total_bits_ = 0;
  std::uint64_t order_ = 1;
};

/// Z_{s1} x ... x Z_{sr} as a product of cyclic groups.
std::shared_ptr<const DirectProduct> product_of_cyclics(
    const std::vector<std::uint64_t>& orders);

/// Elementary Abelian group Z_p^k.
std::shared_ptr<const DirectProduct> elementary_abelian(std::uint64_t p,
                                                        int k);

}  // namespace nahsp::grp
