// Dihedral group D_n of order 2n.
//
// Appears in the paper's introduction via Ettinger–Høyer: their dihedral
// HSP algorithm is query-efficient but needs exponential post-processing.
// We implement D_n both as a worked example of a hidden *normal* subgroup
// (the rotation subgroup and its subgroups) and as the substrate of the
// Ettinger–Høyer baseline in hsp/baseline.h.
#pragma once

#include "nahsp/groups/group.h"

/// \file
/// \brief Dihedral group D_n of order 2n — the hidden-normal-subgroup
/// worked example and the substrate of the Ettinger–Høyer baseline.

namespace nahsp::grp {

/// D_n = < x, y | x^n = y^2 = 1, y x y = x^{-1} >, order 2n.
/// Element x^r y^s is encoded as r | (s << bits_for(n)).
class DihedralGroup final : public Group {
 public:
  explicit DihedralGroup(std::uint64_t n);

  Code mul(Code a, Code b) const override;
  Code inv(Code a) const override;
  Code id() const override { return 0; }
  std::vector<Code> generators() const override;
  int encoding_bits() const override { return rot_bits_ + 1; }
  std::uint64_t order() const override { return 2 * n_; }
  bool is_element(Code a) const override;
  std::string name() const override;

  /// \brief The rotation order n (|D_n| = 2n).
  std::uint64_t n() const { return n_; }

  /// \brief Encodes x^r y^s.
  Code make(std::uint64_t r, bool s) const;
  /// \brief Rotation exponent r of a = x^r y^s.
  std::uint64_t rotation_of(Code a) const { return a & rot_mask_; }
  /// \brief Reflection bit s of a = x^r y^s.
  bool reflection_of(Code a) const { return (a >> rot_bits_) & 1; }

 private:
  std::uint64_t n_;
  int rot_bits_;
  Code rot_mask_;
};

}  // namespace nahsp::grp
