// Integer factorisation: trial division for small factors plus Brent's
// variant of Pollard rho for the rest.
//
// Role in the reproduction: the paper assumes Shor's factoring /
// discrete-log algorithms as available oracles (Theorem 4 hypotheses).
// At simulator-friendly sizes we actually run quantum order finding
// (see hsp/order.h); for everything larger these classical routines are
// the exact stand-in — they produce the same outputs the quantum oracle
// would, which is all downstream code observes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "nahsp/common/rng.h"

/// \file
/// \brief Integer factorisation (trial division + Brent–Pollard rho) —
/// the classical stand-in for the paper's assumed Shor oracles.

namespace nahsp::nt {

using u64 = std::uint64_t;

/// Prime factorisation of n >= 1 as {prime -> exponent}. factorize(1) = {}.
std::map<u64, int> factorize(u64 n, Rng& rng);

/// Convenience overload with a fixed internal seed (factorisation is
/// deterministic in output regardless of seed).
std::map<u64, int> factorize(u64 n);

/// Distinct prime divisors, ascending.
std::vector<u64> prime_divisors(u64 n);

/// Smallest prime factor of n >= 2.
u64 smallest_prime_factor(u64 n);

}  // namespace nahsp::nt
