// Elementary modular arithmetic used throughout the HSP algorithms:
// gcd/lcm, extended gcd, modular exponentiation and inverse, CRT,
// Miller–Rabin primality, and multiplicative order.
//
// All routines are exact on 64-bit inputs; products are carried out in
// __int128 / unsigned __int128 where overflow would otherwise occur.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file
/// \brief Exact 64-bit modular arithmetic: gcd/ext-gcd, powmod, CRT,
/// Miller–Rabin, multiplicative order, totient, divisors.

namespace nahsp::nt {

using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

/// Greatest common divisor; gcd(0,0) == 0.
u64 gcd(u64 a, u64 b);

/// Least common multiple. Requires the result to fit in 64 bits.
u64 lcm(u64 a, u64 b);

/// Extended gcd: returns g = gcd(a,b) and Bezout coefficients (x, y)
/// with a*x + b*y == g (as signed 128-bit to avoid overflow).
struct ExtGcd {
  u64 g;
  i128 x;
  i128 y;
};
ExtGcd ext_gcd(u64 a, u64 b);

/// (a * b) mod m without overflow.
u64 mulmod(u64 a, u64 b, u64 m);

/// (a ^ e) mod m. Requires m > 0. pow(0,0) convention: returns 1 mod m.
u64 powmod(u64 a, u64 e, u64 m);

/// Modular inverse of a modulo m, if gcd(a, m) == 1.
std::optional<u64> invmod(u64 a, u64 m);

/// Chinese remainder theorem for two congruences x ≡ r1 (mod m1),
/// x ≡ r2 (mod m2). Returns (x, lcm(m1,m2)) or nullopt if inconsistent.
std::optional<std::pair<u64, u64>> crt(u64 r1, u64 m1, u64 r2, u64 m2);

/// Deterministic Miller–Rabin for 64-bit integers.
bool is_prime(u64 n);

/// Multiplicative order of a modulo m (requires gcd(a,m)==1), computed
/// classically from the factorisation of the group exponent. Used as the
/// exact reference against the quantum order-finding circuit.
u64 multiplicative_order(u64 a, u64 m);

/// Euler totient via factorisation.
u64 euler_phi(u64 n);

/// All divisors of n, sorted ascending.
std::vector<u64> divisors(u64 n);

}  // namespace nahsp::nt
