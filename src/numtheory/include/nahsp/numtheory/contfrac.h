// Continued-fraction expansion and convergents, used by the classical
// post-processing of Shor's order-finding algorithm: a measurement y out
// of Q = 2^t is expanded as y/Q and the convergents p/q are candidate
// (multiples of) 1/order.
#pragma once

#include <cstdint>
#include <vector>

/// \file
/// \brief Continued-fraction expansion and convergents — the classical
/// post-processing of Shor's order-finding measurements.

namespace nahsp::nt {

using u64 = std::uint64_t;

/// One convergent p/q of a continued fraction expansion.
struct Convergent {
  u64 p;
  u64 q;
};

/// Continued-fraction expansion of num/den (den > 0): the quotient
/// sequence [a0; a1, a2, ...].
std::vector<u64> cf_expansion(u64 num, u64 den);

/// All convergents of num/den in order of increasing denominator.
/// Convergents with denominator exceeding `max_den` are omitted.
std::vector<Convergent> convergents(u64 num, u64 den, u64 max_den);

}  // namespace nahsp::nt
