#include "nahsp/numtheory/factor.h"

#include <algorithm>

#include "nahsp/common/check.h"
#include "nahsp/numtheory/arith.h"

namespace nahsp::nt {

namespace {

// Brent's cycle-finding variant of Pollard rho. Returns a nontrivial
// factor of composite n (n must not be prime).
u64 pollard_brent(u64 n, Rng& rng) {
  if ((n & 1) == 0) return 2;
  for (;;) {
    const u64 c = rng.between(1, n - 1);
    u64 x = rng.below(n);
    u64 y = x;
    u64 q = 1;
    u64 g = 1;
    u64 xs = x;
    const int m = 128;
    int r = 1;
    while (g == 1) {
      x = y;
      for (int i = 0; i < r; ++i) y = (mulmod(y, y, n) + c) % n;
      int k = 0;
      while (k < r && g == 1) {
        xs = y;
        const int lim = std::min(m, r - k);
        for (int i = 0; i < lim; ++i) {
          y = (mulmod(y, y, n) + c) % n;
          q = mulmod(q, x > y ? x - y : y - x, n);
        }
        g = gcd(q, n);
        k += m;
      }
      r <<= 1;
    }
    if (g == n) {
      // Backtrack one step at a time.
      g = 1;
      u64 ys = xs;
      while (g == 1) {
        ys = (mulmod(ys, ys, n) + c) % n;
        g = gcd(x > ys ? x - ys : ys - x, n);
      }
    }
    if (g != n) return g;
    // Degenerate cycle: retry with a fresh constant.
  }
}

void factor_rec(u64 n, Rng& rng, std::map<u64, int>& out) {
  if (n == 1) return;
  if (is_prime(n)) {
    ++out[n];
    return;
  }
  const u64 d = pollard_brent(n, rng);
  factor_rec(d, rng, out);
  factor_rec(n / d, rng, out);
}

}  // namespace

std::map<u64, int> factorize(u64 n, Rng& rng) {
  NAHSP_REQUIRE(n >= 1, "factorize requires n >= 1");
  std::map<u64, int> out;
  // Strip small primes first; Pollard rho handles the remainder.
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL}) {
    while (n % p == 0) {
      ++out[p];
      n /= p;
    }
  }
  factor_rec(n, rng, out);
  return out;
}

std::map<u64, int> factorize(u64 n) {
  Rng rng(0xfac70fac70fac701ULL);
  return factorize(n, rng);
}

std::vector<u64> prime_divisors(u64 n) {
  std::vector<u64> out;
  for (const auto& [p, e] : factorize(n)) {
    (void)e;
    out.push_back(p);
  }
  return out;
}

u64 smallest_prime_factor(u64 n) {
  NAHSP_REQUIRE(n >= 2, "smallest_prime_factor requires n >= 2");
  const auto f = factorize(n);
  return f.begin()->first;
}

}  // namespace nahsp::nt
