#include "nahsp/numtheory/arith.h"

#include <algorithm>

#include "nahsp/common/check.h"
#include "nahsp/numtheory/factor.h"

namespace nahsp::nt {

u64 gcd(u64 a, u64 b) {
  while (b != 0) {
    a %= b;
    std::swap(a, b);
  }
  return a;
}

u64 lcm(u64 a, u64 b) {
  if (a == 0 || b == 0) return 0;
  const u64 g = gcd(a, b);
  const u128 r = static_cast<u128>(a / g) * b;
  NAHSP_REQUIRE(r <= ~static_cast<u64>(0), "lcm overflows 64 bits");
  return static_cast<u64>(r);
}

ExtGcd ext_gcd(u64 a, u64 b) {
  // Iterative extended Euclid with signed 128-bit coefficients.
  i128 x0 = 1, x1 = 0, y0 = 0, y1 = 1;
  u64 r0 = a, r1 = b;
  while (r1 != 0) {
    const u64 q = r0 / r1;
    const u64 r2 = r0 % r1;
    r0 = r1;
    r1 = r2;
    const i128 x2 = x0 - static_cast<i128>(q) * x1;
    x0 = x1;
    x1 = x2;
    const i128 y2 = y0 - static_cast<i128>(q) * y1;
    y0 = y1;
    y1 = y2;
  }
  return ExtGcd{r0, x0, y0};
}

u64 mulmod(u64 a, u64 b, u64 m) {
  NAHSP_REQUIRE(m > 0, "mulmod requires positive modulus");
  return static_cast<u64>(static_cast<u128>(a % m) * (b % m) % m);
}

u64 powmod(u64 a, u64 e, u64 m) {
  NAHSP_REQUIRE(m > 0, "powmod requires positive modulus");
  if (m == 1) return 0;
  u64 base = a % m;
  u64 result = 1;
  while (e != 0) {
    if (e & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    e >>= 1;
  }
  return result;
}

std::optional<u64> invmod(u64 a, u64 m) {
  NAHSP_REQUIRE(m > 0, "invmod requires positive modulus");
  const ExtGcd e = ext_gcd(a % m, m);
  if (e.g != 1) return std::nullopt;
  i128 x = e.x % static_cast<i128>(m);
  if (x < 0) x += m;
  return static_cast<u64>(x);
}

std::optional<std::pair<u64, u64>> crt(u64 r1, u64 m1, u64 r2, u64 m2) {
  NAHSP_REQUIRE(m1 > 0 && m2 > 0, "crt requires positive moduli");
  // Solve r1 + m1*k ≡ r2 (mod m2).
  const ExtGcd e = ext_gcd(m1 % m2, m2);
  const u64 g = e.g == 0 ? m2 : e.g;
  const u64 diff_mod = ((r2 % m2) + m2 - (r1 % m2)) % m2;
  if (diff_mod % g != 0) return std::nullopt;
  const u64 m2g = m2 / g;
  i128 k = (e.x % static_cast<i128>(m2g)) * static_cast<i128>((diff_mod / g) % m2g) %
           static_cast<i128>(m2g);
  if (k < 0) k += m2g;
  const u64 l = lcm(m1, m2);
  const u64 x = (r1 % l + mulmod(m1 % l, static_cast<u64>(k), l)) % l;
  return std::make_pair(x, l);
}

namespace {
bool miller_rabin_witness(u64 n, u64 a, u64 d, int r) {
  u64 x = powmod(a % n, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // a witnesses compositeness
}
}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all 64-bit integers
  // (Sinclair / Jaeschke-style bases).
  for (u64 a :
       {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL, 1795265022ULL}) {
    if (a % n == 0) continue;
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

u64 multiplicative_order(u64 a, u64 m) {
  NAHSP_REQUIRE(m > 1, "multiplicative_order requires modulus > 1");
  NAHSP_REQUIRE(gcd(a % m, m) == 1, "element must be a unit mod m");
  // Start from the group order phi(m) and strip primes while the power
  // still fixes 1.
  u64 order = euler_phi(m);
  for (const auto& [p, e] : factorize(order)) {
    (void)e;
    while (order % p == 0 && powmod(a, order / p, m) == 1) order /= p;
  }
  return order;
}

u64 euler_phi(u64 n) {
  NAHSP_REQUIRE(n >= 1, "euler_phi requires n >= 1");
  u64 result = n;
  for (const auto& [p, e] : factorize(n)) {
    (void)e;
    result -= result / p;
  }
  return result;
}

std::vector<u64> divisors(u64 n) {
  NAHSP_REQUIRE(n >= 1, "divisors requires n >= 1");
  std::vector<u64> divs{1};
  for (const auto& [p, e] : factorize(n)) {
    const std::size_t base = divs.size();
    u64 pe = 1;
    for (int i = 1; i <= e; ++i) {
      pe *= p;
      for (std::size_t j = 0; j < base; ++j) divs.push_back(divs[j] * pe);
    }
  }
  std::sort(divs.begin(), divs.end());
  return divs;
}

}  // namespace nahsp::nt
