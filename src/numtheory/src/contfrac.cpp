#include "nahsp/numtheory/contfrac.h"

#include "nahsp/common/check.h"

namespace nahsp::nt {

namespace {
using u128 = unsigned __int128;
}

std::vector<u64> cf_expansion(u64 num, u64 den) {
  NAHSP_REQUIRE(den > 0, "cf_expansion requires positive denominator");
  std::vector<u64> quotients;
  while (den != 0) {
    quotients.push_back(num / den);
    const u64 r = num % den;
    num = den;
    den = r;
  }
  return quotients;
}

std::vector<Convergent> convergents(u64 num, u64 den, u64 max_den) {
  const std::vector<u64> a = cf_expansion(num, den);
  std::vector<Convergent> out;
  // Standard recurrence: p_k = a_k p_{k-1} + p_{k-2}, same for q.
  u64 p_prev = 1, p_prev2 = 0;
  u64 q_prev = 0, q_prev2 = 1;
  for (const u64 ak : a) {
    // Guard overflow: convergent denominators grow at least like
    // Fibonacci, so 64-bit overflow means we are far past any useful
    // denominator anyway.
    const u128 p = static_cast<u128>(ak) * p_prev + p_prev2;
    const u128 q = static_cast<u128>(ak) * q_prev + q_prev2;
    if (q > max_den || p > ~static_cast<u64>(0)) break;
    p_prev2 = p_prev;
    p_prev = static_cast<u64>(p);
    q_prev2 = q_prev;
    q_prev = static_cast<u64>(q);
    out.push_back(Convergent{p_prev, q_prev});
  }
  return out;
}

}  // namespace nahsp::nt
