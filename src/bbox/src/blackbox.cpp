#include "nahsp/bbox/blackbox.h"

#include <sstream>

#include "nahsp/common/check.h"

namespace nahsp::bb {

BlackBoxGroup::BlackBoxGroup(std::shared_ptr<const grp::Group> g,
                             std::shared_ptr<QueryCounter> counter)
    : g_(std::move(g)), counter_(std::move(counter)) {
  NAHSP_REQUIRE(g_ != nullptr, "null group");
  NAHSP_REQUIRE(counter_ != nullptr, "null counter");
}

Code BlackBoxGroup::mul(Code a, Code b) const {
  ++counter_->group_ops;
  return g_->mul(a, b);
}

Code BlackBoxGroup::inv(Code a) const {
  ++counter_->group_ops;
  return g_->inv(a);
}

std::string BlackBoxGroup::name() const {
  std::ostringstream os;
  os << "blackbox(" << g_->encoding_bits() << " bits)";
  return os.str();
}

std::uint64_t BlackBoxGroup::order() const {
  throw internal_error(
      "BlackBoxGroup::order(): the black-box model does not expose the "
      "group order; use the quantum order-finding algorithms instead");
}

}  // namespace nahsp::bb
