#include "nahsp/bbox/hiding.h"

#include <algorithm>

#include "nahsp/common/check.h"
#include "nahsp/groups/algorithms.h"

namespace nahsp::bb {

HidingFunction::HidingFunction(std::shared_ptr<QueryCounter> counter)
    : counter_(std::move(counter)) {
  NAHSP_REQUIRE(counter_ != nullptr, "null counter");
}

std::uint64_t HidingFunction::eval(Code g) const {
  ++counter_->classical_queries;
  return eval_uncounted(g);
}

EnumerationHider::EnumerationHider(std::shared_ptr<const grp::Group> g,
                                   std::vector<Code> subgroup_gens,
                                   std::shared_ptr<QueryCounter> counter,
                                   std::size_t cap)
    : HidingFunction(std::move(counter)), g_(std::move(g)) {
  NAHSP_REQUIRE(g_ != nullptr, "null group");
  h_elems_ = grp::enumerate_subgroup(*g_, subgroup_gens, cap);
}

std::uint64_t EnumerationHider::eval_uncounted(Code x) const {
  const auto it = memo_.find(x);
  if (it != memo_.end()) return it->second;
  Code best = ~Code{0};
  for (const Code h : h_elems_) {
    best = std::min(best, g_->mul(x, h));
  }
  memo_.emplace(x, best);
  return best;
}

PermCosetHider::PermCosetHider(
    std::shared_ptr<const grp::PermutationGroup> g,
    const std::vector<Code>& subgroup_gens,
    std::shared_ptr<QueryCounter> counter)
    : HidingFunction(std::move(counter)), g_(std::move(g)) {
  NAHSP_REQUIRE(g_ != nullptr, "null group");
  std::vector<grp::Perm> gens;
  gens.reserve(subgroup_gens.size());
  for (const Code c : subgroup_gens) gens.push_back(g_->decode(c));
  h_chain_ = std::make_unique<grp::SchreierSims>(g_->degree(), gens);
}

std::uint64_t PermCosetHider::eval_uncounted(Code x) const {
  const auto it = memo_.find(x);
  if (it != memo_.end()) return it->second;
  const std::uint64_t label =
      grp::perm_rank(h_chain_->min_coset_rep(g_->decode(x)));
  memo_.emplace(x, label);
  return label;
}

LambdaHider::LambdaHider(std::function<std::uint64_t(Code)> fn,
                         std::shared_ptr<QueryCounter> counter)
    : HidingFunction(std::move(counter)), fn_(std::move(fn)) {
  NAHSP_REQUIRE(fn_ != nullptr, "null label function");
}

HspInstance make_instance(std::shared_ptr<const grp::Group> g,
                          std::vector<Code> hidden_subgroup_gens,
                          std::size_t cap) {
  HspInstance inst;
  inst.group = std::move(g);
  inst.counter = std::make_shared<QueryCounter>();
  inst.bb = std::make_shared<BlackBoxGroup>(inst.group, inst.counter);
  inst.f = std::make_shared<EnumerationHider>(
      inst.group, hidden_subgroup_gens, inst.counter, cap);
  inst.planted_generators = std::move(hidden_subgroup_gens);
  return inst;
}

HspInstance make_perm_instance(
    std::shared_ptr<const grp::PermutationGroup> g,
    std::vector<Code> hidden_subgroup_gens) {
  HspInstance inst;
  inst.group = g;
  inst.counter = std::make_shared<QueryCounter>();
  inst.bb = std::make_shared<BlackBoxGroup>(inst.group, inst.counter);
  inst.f = std::make_shared<PermCosetHider>(g, hidden_subgroup_gens,
                                            inst.counter);
  inst.planted_generators = std::move(hidden_subgroup_gens);
  return inst;
}

}  // namespace nahsp::bb
