// Hiding functions: oracles f : G -> labels that are constant on left
// cosets of a subgroup H and distinct across cosets.
//
// Instance builders plant a subgroup H and realise f by canonical coset
// labelling. Two labelling strategies are provided:
//   - EnumerationHider: label(x) = min over h in H of code(x*h); general,
//     costs |H| group operations per fresh query (memoised).
//   - PermCosetHider: canonical minimal coset representative via a
//     Schreier–Sims chain; polynomial in the degree even for huge H.
// Both produce *opaque* labels: solvers may compare labels for equality
// but must not interpret them.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/groups/permutation.h"

/// \file
/// \brief Hiding functions (coset-labelling oracles) and the planted
/// problem-instance builders shared by tests, examples, the scenario
/// registry, and benchmarks.

namespace nahsp::bb {

/// Oracle f hiding a subgroup. eval() counts one classical query;
/// eval_uncounted() is used by the simulators, which account a whole
/// superposition application as one quantum query themselves.
class HidingFunction {
 public:
  virtual ~HidingFunction() = default;

  /// Label of g's coset (classical query).
  std::uint64_t eval(Code g) const;

  /// Label of g's coset without touching the classical-query counter
  /// (for simulator-internal batch evaluation).
  virtual std::uint64_t eval_uncounted(Code g) const = 0;

  /// \brief The instance's shared oracle-call counters.
  QueryCounter& counter() const { return *counter_; }

 protected:
  explicit HidingFunction(std::shared_ptr<QueryCounter> counter);
  std::shared_ptr<QueryCounter> counter_;
};

/// f built by explicit enumeration of the planted subgroup H:
/// label(x) = min_{h in H} code(x*h). Memoised per element.
class EnumerationHider final : public HidingFunction {
 public:
  EnumerationHider(std::shared_ptr<const grp::Group> g,
                   std::vector<Code> subgroup_gens,
                   std::shared_ptr<QueryCounter> counter,
                   std::size_t cap = 1u << 22);

  std::uint64_t eval_uncounted(Code g) const override;

  /// \brief All elements of the planted subgroup H (enumerated once at
  /// construction).
  const std::vector<Code>& subgroup_elements() const { return h_elems_; }

 private:
  std::shared_ptr<const grp::Group> g_;
  std::vector<Code> h_elems_;
  mutable std::unordered_map<Code, std::uint64_t> memo_;
};

/// f for permutation groups via Schreier–Sims minimal coset
/// representatives: label(x) = rank(min of x*H). Polynomial in degree.
class PermCosetHider final : public HidingFunction {
 public:
  PermCosetHider(std::shared_ptr<const grp::PermutationGroup> g,
                 const std::vector<Code>& subgroup_gens,
                 std::shared_ptr<QueryCounter> counter);

  std::uint64_t eval_uncounted(Code g) const override;

 private:
  std::shared_ptr<const grp::PermutationGroup> g_;
  std::unique_ptr<grp::SchreierSims> h_chain_;
  mutable std::unordered_map<Code, std::uint64_t> memo_;
};

/// Arbitrary label function wrapped as a HidingFunction (used for the
/// derived oracles the theorems construct: F(x) = {f(xg)}, secondary
/// encodings, etc.).
class LambdaHider final : public HidingFunction {
 public:
  LambdaHider(std::function<std::uint64_t(Code)> fn,
              std::shared_ptr<QueryCounter> counter);

  std::uint64_t eval_uncounted(Code g) const override { return fn_(g); }

 private:
  std::function<std::uint64_t(Code)> fn_;
};

/// A complete HSP problem instance: black-box group, hiding oracle,
/// shared counters, and (for verification only) the planted truth.
struct HspInstance {
  std::shared_ptr<const grp::Group> group;
  std::shared_ptr<QueryCounter> counter;
  std::shared_ptr<BlackBoxGroup> bb;
  std::shared_ptr<HidingFunction> f;
  std::vector<Code> planted_generators;  // ground truth, tests only
};

/// Builds an instance with an EnumerationHider (general groups).
HspInstance make_instance(std::shared_ptr<const grp::Group> g,
                          std::vector<Code> hidden_subgroup_gens,
                          std::size_t cap = 1u << 22);

/// Builds an instance with a PermCosetHider (permutation groups).
HspInstance make_perm_instance(std::shared_ptr<const grp::PermutationGroup> g,
                               std::vector<Code> hidden_subgroup_gens);

}  // namespace nahsp::bb
