// The black-box access layer the HSP solvers see.
//
// Solvers receive a BlackBoxGroup (multiplication/inversion/identity
// oracles + generators + encoding length — nothing else) and a
// HidingFunction. Every oracle call is counted so experiments can report
// query complexity:
//   - group_ops:        U_G / U_G^{-1} invocations,
//   - classical_queries: f evaluated on a single (classical) argument,
//   - quantum_queries:   f applied once to a superposition,
//   - sim_basis_evals:   per-basis-state evaluations the *simulator*
//                        performs to realise one superposition query
//                        (simulation overhead, not algorithm cost).
//
// BlackBoxGroup derives from grp::Group so the classical group
// algorithms (normal closure, enumeration, ...) run against the counted
// facade — but order() is deliberately unavailable: a black box does not
// reveal the group order (that is what the quantum algorithms compute).
#pragma once

#include <memory>

#include "nahsp/groups/group.h"

/// \file
/// \brief The counted black-box access layer the HSP solvers see:
/// oracle facade + per-instance query accounting.

namespace nahsp::bb {

using grp::Code;

/// Shared oracle-call counters for one problem instance.
struct QueryCounter {
  std::uint64_t group_ops = 0;          ///< U_G / U_G^{-1} invocations
  std::uint64_t classical_queries = 0;  ///< single-argument f evaluations
  std::uint64_t quantum_queries = 0;    ///< superposition applications of f
  /// Per-basis-state evaluations the simulator performs to realise one
  /// superposition query (simulation overhead, not algorithm cost).
  std::uint64_t sim_basis_evals = 0;

  /// \brief Zeroes every counter.
  void reset() { *this = QueryCounter{}; }
};

/// The group oracle facade (counts every U_G / U_G^{-1} call).
class BlackBoxGroup final : public grp::Group {
 public:
  BlackBoxGroup(std::shared_ptr<const grp::Group> g,
                std::shared_ptr<QueryCounter> counter);

  Code mul(Code a, Code b) const override;
  Code inv(Code a) const override;
  Code id() const override { return g_->id(); }
  bool is_id(Code a) const override { return g_->is_id(a); }
  std::vector<Code> generators() const override { return g_->generators(); }
  int encoding_bits() const override { return g_->encoding_bits(); }
  bool is_element(Code a) const override { return g_->is_element(a); }
  std::string name() const override;

  /// A black box does not expose the group order; throws internal_error.
  std::uint64_t order() const override;

  /// \brief The instance's shared oracle-call counters.
  QueryCounter& counter() const { return *counter_; }

  /// \brief Escape hatch for tests and instance builders only (checking
  /// results against ground truth); solver code must not call this.
  const grp::Group& underlying_for_verification() const { return *g_; }

 private:
  std::shared_ptr<const grp::Group> g_;
  std::shared_ptr<QueryCounter> counter_;
};

}  // namespace nahsp::bb
