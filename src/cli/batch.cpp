#include "batch.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "nahsp/common/spec.h"
#include "nahsp/common/timer.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/shard.h"
#include "nahsp/serve/outcome.h"
#include "report.h"

namespace nahsp::cli {
namespace {

using serve::write_codes;
using serve::write_queries;

// ------------------------------------------------------------- arguments

// Everything `nahsp batch` accepts beyond the spec file. The three
// sharding flags select a mode:
//   (none)            single-process solve_hsp_batch (the classic path)
//   --shards N        parent: partition, spawn N children, merge
//   --shard i/N       child: run one slice, write checkpoints, no report
//   --resume DIR      parent again, fleet rebuilt from DIR/manifest.json
struct BatchArgs {
  std::string file;            // .scn path ("" in child/resume modes)
  std::uint64_t seed = 1;
  std::uint64_t threads = 0;
  bool seed_given = false;
  std::size_t shards = 0;      // --shards N (parent)
  bool child = false;          // --shard i/N
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  std::string checkpoint_dir;  // --checkpoint-dir
  std::string resume_dir;      // --resume
  // Zero every wall-clock field in the report. Sharded and unsharded
  // runs of the same fleet are then byte-identical — the property the
  // shard-merge pin in ctest compares with cmp(1).
  bool stable = false;
};

std::size_t parse_count(const std::string& text, const std::string& flag) {
  std::uint64_t v = 0;
  try {
    v = parse_spec_u64(text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("batch: " + flag + ": " + e.what());
  }
  if (v < 1 || v > 4096)
    throw std::invalid_argument("batch: " + flag +
                                " must be between 1 and 4096");
  return static_cast<std::size_t>(v);
}

BatchArgs parse_batch_args(const std::vector<std::string>& args) {
  BatchArgs out;
  SpecMap cli;
  const auto next_value = [&](std::size_t& i,
                              const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument("batch: " + flag + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--shards") {
      out.shards = parse_count(next_value(i, arg), arg);
    } else if (arg == "--shard") {
      const std::string& spec = next_value(i, arg);
      const auto slash = spec.find('/');
      if (slash == std::string::npos)
        throw std::invalid_argument(
            "batch: --shard takes i/N (e.g. --shard 0/4)");
      out.child = true;
      out.shard_count = parse_count(spec.substr(slash + 1), "--shard N");
      std::uint64_t idx = 0;
      try {
        idx = parse_spec_u64(spec.substr(0, slash));
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("batch: --shard i: ") +
                                    e.what());
      }
      if (idx >= out.shard_count)
        throw std::invalid_argument("batch: --shard index must be < N");
      out.shard_index = static_cast<std::size_t>(idx);
    } else if (arg == "--checkpoint-dir") {
      out.checkpoint_dir = next_value(i, arg);
    } else if (arg == "--resume") {
      out.resume_dir = next_value(i, arg);
    } else if (arg == "--stable") {
      out.stable = true;
    } else if (arg.rfind("--", 0) == 0) {
      throw std::invalid_argument(
          "batch: unknown option '" + arg +
          "' (accepted: --shards, --shard, --checkpoint-dir, --resume, "
          "--stable)");
    } else if (arg.find('=') != std::string::npos) {
      const auto eq = arg.find('=');
      cli.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (out.file.empty()) {
      out.file = arg;
    } else {
      throw std::invalid_argument("batch: unexpected argument '" + arg +
                                  "' (spec file already given: '" +
                                  out.file + "')");
    }
  }
  out.seed_given = cli.has("seed");
  out.seed = cli.get_u64("seed", 1);
  out.threads = cli.get_u64("threads", 0, 0, 256);
  cli.require_all_consumed("nahsp batch", {"seed", "threads"});

  if (out.shards > 0 && out.child)
    throw std::invalid_argument("batch: --shards and --shard are exclusive");
  if (!out.resume_dir.empty() &&
      (out.shards > 0 || out.child || !out.file.empty()))
    throw std::invalid_argument(
        "batch: --resume takes only the checkpoint directory (fleet, "
        "seed, and shard count come from its manifest)");
  if (!out.resume_dir.empty() && out.seed_given)
    throw std::invalid_argument(
        "batch: --resume reuses the manifest seed; drop seed=");
  if (out.child && out.checkpoint_dir.empty())
    throw std::invalid_argument("batch: --shard needs --checkpoint-dir");
  if (out.child && !out.file.empty())
    throw std::invalid_argument(
        "batch: --shard rebuilds the fleet from the checkpoint "
        "manifest; drop the spec file");
  if (out.file.empty() && out.shards > 0)
    throw std::invalid_argument("batch: --shards needs a .scn spec file");
  if (out.file.empty() && !out.child && out.resume_dir.empty())
    throw std::invalid_argument("batch needs a .scn spec file");
  return out;
}

// ----------------------------------------------------------------- fleet

// A fleet plus the canonical spec lines that rebuild it. Canonical
// lines (to_string of the parsed spec) go into the shard manifest:
// scenario construction is deterministic, so a resume rebuilds the
// exact same instances from them.
struct Fleet {
  std::vector<std::string> spec_lines;
  std::vector<hsp::BuiltScenario> built;
};

Fleet build_fleet(const std::vector<ScenarioSpec>& specs) {
  Fleet fleet;
  for (const ScenarioSpec& spec : specs) {
    fleet.spec_lines.push_back(to_string(spec));
    fleet.built.push_back(hsp::build_scenario(spec));
  }
  return fleet;
}

Fleet fleet_from_file(const std::string& path) {
  const std::vector<ScenarioSpec> specs = parse_scenario_file(path);
  if (specs.empty())
    throw std::invalid_argument("spec error: '" + path +
                                "' contains no scenario specs");
  return build_fleet(specs);
}

Fleet fleet_from_manifest(const hsp::ShardManifest& manifest) {
  std::vector<ScenarioSpec> specs;
  for (const std::string& line : manifest.spec_lines)
    specs.push_back(parse_scenario_line(line));
  if (specs.empty())
    throw std::invalid_argument(
        "batch: checkpoint manifest lists an empty fleet");
  return build_fleet(specs);
}

// ---------------------------------------------------------------- report

// One assembled batch result, however it was produced — directly by
// solve_hsp_batch or merged back out of shard checkpoints. Both paths
// feed the same two emitters below, which is what makes the sharded
// JSON byte-identical to the unsharded JSON (under --stable).
struct BatchResult {
  std::string file;
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;
  hsp::BatchReport report;
  std::vector<hsp::BuiltScenario>* built = nullptr;
  std::vector<bool> verified;
  std::size_t verified_count = 0;
  bool stable = false;
};

void write_batch_json(std::ostream& os, const BatchResult& r) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "nahsp-report/v1");
  w.field("command", "batch");
  w.field("file", r.file);
  w.field("seed", r.seed);
  w.field("threads", r.threads);
  w.field("count", static_cast<std::uint64_t>(r.report.items.size()));
  w.field("solved", static_cast<std::uint64_t>(r.report.solved));
  w.field("verified", static_cast<std::uint64_t>(r.verified_count));
  w.key("items");
  w.begin_array();
  for (std::size_t i = 0; i < r.report.items.size(); ++i) {
    const hsp::BatchItemReport& item = r.report.items[i];
    const hsp::BuiltScenario& built = (*r.built)[i];
    w.begin_object();
    w.field("index", static_cast<std::uint64_t>(i));
    w.field("scenario", built.family);
    w.field("group", built.group_name);
    w.field("success", item.success);
    w.field("method",
            item.success ? hsp::method_name(item.solution.method) : "");
    w.field("error", item.error);
    w.field("verified", static_cast<bool>(r.verified[i]));
    w.key("generators");
    write_codes(w, item.success ? item.solution.generators
                                : std::vector<grp::Code>{});
    w.key("queries");
    write_queries(w, item.queries);
    w.field("seconds", r.stable ? 0.0 : item.seconds);
    w.end_object();
  }
  w.end_array();
  w.key("total_queries");
  write_queries(w, r.report.total_queries);
  w.field("seconds", r.stable ? 0.0 : r.report.seconds);
  w.end_object();
  w.finish();
}

void print_batch_text(const BatchResult& r) {
  std::printf("batch %s: %zu instances, %zu solved, %zu verified (%s)\n\n",
              r.file.c_str(), r.report.items.size(), r.report.solved,
              r.verified_count,
              format_duration(r.stable ? 0.0 : r.report.seconds).c_str());
  for (std::size_t i = 0; i < r.report.items.size(); ++i) {
    const hsp::BatchItemReport& item = r.report.items[i];
    const hsp::BuiltScenario& built = (*r.built)[i];
    if (item.success) {
      std::printf("  [%zu] %-5s %-13s %-48s %llu quantum queries\n", i,
                  r.verified[i] ? "ok" : "WRONG", built.family.c_str(),
                  hsp::method_name(item.solution.method),
                  static_cast<unsigned long long>(
                      item.queries.quantum_queries));
    } else {
      std::printf("  [%zu] FAIL  %-13s %s\n", i, built.family.c_str(),
                  item.error.c_str());
    }
  }
  const bb::QueryCounter& q = r.report.total_queries;
  std::printf(
      "\naggregate: %llu quantum / %llu classical queries, %llu group "
      "ops\n",
      static_cast<unsigned long long>(q.quantum_queries),
      static_cast<unsigned long long>(q.classical_queries),
      static_cast<unsigned long long>(q.group_ops));
}

int emit_batch_result(const BatchResult& r, bool json) {
  if (json)
    write_batch_json(std::cout, r);
  else
    print_batch_text(r);
  return r.verified_count == r.report.items.size() ? 0 : 1;
}

// ------------------------------------------------------ unsharded batch

int run_unsharded(const BatchArgs& a, bool json) {
  Fleet fleet = fleet_from_file(a.file);

  std::vector<bb::HspInstance> instances;
  hsp::BatchOptions opts;
  opts.base_seed = a.seed;
  opts.threads = static_cast<int>(a.threads);
  for (const hsp::BuiltScenario& b : fleet.built) {
    instances.push_back(b.instance);
    opts.per_instance.push_back(b.options);
  }

  BatchResult r;
  r.file = a.file;
  r.seed = a.seed;
  r.threads = a.threads;
  r.stable = a.stable;
  r.report = hsp::solve_hsp_batch(instances, opts);
  r.built = &fleet.built;
  r.verified.assign(r.report.items.size(), false);
  for (std::size_t i = 0; i < r.report.items.size(); ++i) {
    if (!r.report.items[i].success) continue;
    r.verified[i] = hsp::verify_same_subgroup(
        *fleet.built[i].instance.group,
        r.report.items[i].solution.generators,
        fleet.built[i].instance.planted_generators);
    if (r.verified[i]) ++r.verified_count;
  }
  return emit_batch_result(r, json);
}

// ----------------------------------------------------------- child mode

int run_child(const BatchArgs& a) {
  const hsp::ShardManifest manifest =
      hsp::load_shard_manifest(a.checkpoint_dir);
  if (manifest.num_shards != a.shard_count)
    throw std::invalid_argument(
        "batch: --shard N (" + std::to_string(a.shard_count) +
        ") does not match the manifest (" +
        std::to_string(manifest.num_shards) + " shards)");
  Fleet fleet = fleet_from_manifest(manifest);

  hsp::ShardRunOptions opts;
  opts.shard = a.shard_index;
  opts.num_shards = a.shard_count;
  opts.base_seed = manifest.base_seed;
  opts.threads = static_cast<int>(a.threads);
  opts.checkpoint_dir = a.checkpoint_dir;
  opts.log = &std::cerr;
  const hsp::ShardRunResult res = hsp::run_shard(fleet.built, opts);
  std::fprintf(stderr, "shard %zu/%zu: %zu item(s) run, %zu reused\n",
               a.shard_index, a.shard_count, res.ran, res.reused);
  return 0;
}

// ---------------------------------------------------------- parent mode

void spawn_and_wait_children(const std::string& dir, std::size_t num_shards,
                             const std::vector<std::size_t>& shards_to_run,
                             std::uint64_t threads) {
  const std::string threads_kv = "threads=" + std::to_string(threads);
  std::vector<pid_t> pids;
  for (const std::size_t s : shards_to_run) {
    const std::string shard_spec =
        std::to_string(s) + "/" + std::to_string(num_shards);
    // argv[0] is cosmetic; /proc/self/exe re-runs this very binary, so
    // parent and children are always the same build.
    std::vector<std::string> argv_s = {"nahsp",    "batch",
                                       "--shard",  shard_spec,
                                       "--checkpoint-dir", dir,
                                       threads_kv};
    std::vector<char*> argv;
    for (std::string& arg : argv_s) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0)
      throw std::runtime_error(std::string("batch: fork failed: ") +
                               std::strerror(errno));
    if (pid == 0) {
      execv("/proc/self/exe", argv.data());
      // Only reached when exec itself failed; _exit, not exit — this
      // child shares the parent's stdio buffers.
      std::fprintf(stderr, "batch: exec failed: %s\n", std::strerror(errno));
      _exit(127);
    }
    pids.push_back(pid);
  }
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const std::size_t s = shards_to_run[i];
    int status = 0;
    // EINTR-safe: a signal delivered to the parent (e.g. a forwarded
    // SIGTERM a child already handled) must not abandon live children.
    pid_t r = -1;
    do {
      r = waitpid(pids[i], &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r < 0)
      throw std::runtime_error(std::string("batch: waitpid failed: ") +
                               std::strerror(errno));
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr,
                   "batch: shard %zu (pid %ld) killed by signal %d; its "
                   "checkpointed items are durable\n",
                   s, static_cast<long>(pids[i]), WTERMSIG(status));
    } else if (WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "batch: shard %zu (pid %ld) exited with %d\n", s,
                   static_cast<long>(pids[i]), WEXITSTATUS(status));
    }
  }
}

// Shared by --shards (fresh or idempotent re-run) and --resume: the
// manifest already exists and matches, children run, checkpoints merge.
int run_sharded(Fleet& fleet, const hsp::ShardManifest& manifest,
                const std::string& dir, std::uint64_t threads, bool stable,
                bool json) {
  const Timer total;
  // Plan BEFORE spawning: with more shards than instances the
  // fingerprint partition leaves some shards empty, and forking a child
  // per empty shard is pure overhead — warn and skip those children
  // (merge_checkpoints tolerates their absent checkpoint files).
  const hsp::ShardPlan plan =
      hsp::plan_shards(fleet.built, manifest.num_shards);
  std::vector<std::size_t> shards_to_run;
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    if (!plan.items_of_shard[s].empty()) shards_to_run.push_back(s);
  }
  if (shards_to_run.size() < plan.num_shards) {
    std::fprintf(stderr,
                 "batch: --shards %zu over a fleet of %zu instance(s) "
                 "leaves %zu shard(s) empty; skipping their child "
                 "processes (consider fewer shards)\n",
                 plan.num_shards, fleet.built.size(),
                 plan.num_shards - shards_to_run.size());
  }
  spawn_and_wait_children(dir, manifest.num_shards, shards_to_run, threads);

  hsp::MergedBatch merged =
      hsp::merge_checkpoints(fleet.built, plan, dir, &std::cerr);
  if (!merged.complete()) {
    std::fprintf(stderr,
                 "batch: incomplete fleet: %zu of %zu item(s) have no "
                 "checkpoint record (first missing index %zu); re-run "
                 "`nahsp batch --resume %s` to finish\n",
                 merged.missing.size(), fleet.built.size(),
                 merged.missing.front(), dir.c_str());
    return 1;
  }

  BatchResult r;
  r.file = manifest.source;
  r.seed = manifest.base_seed;
  r.threads = threads;
  r.stable = stable;
  r.report = std::move(merged.report);
  r.report.seconds = total.seconds();
  r.built = &fleet.built;
  r.verified = std::move(merged.verified);
  r.verified_count = merged.verified_count;
  return emit_batch_result(r, json);
}

int run_parent(const BatchArgs& a, bool json) {
  const std::string dir =
      a.checkpoint_dir.empty() ? a.file + ".ckpt" : a.checkpoint_dir;
  Fleet fleet = fleet_from_file(a.file);

  std::filesystem::create_directories(dir);
  hsp::ShardManifest manifest;
  if (std::filesystem::exists(dir + "/manifest.json")) {
    // Idempotent re-run over an existing checkpoint directory: children
    // skip recorded successes, so this IS a resume — but only for the
    // identical fleet/seed/partition; anything else would silently mix
    // two different runs' records.
    manifest = hsp::load_shard_manifest(dir);
    if (manifest.num_shards != a.shards || manifest.base_seed != a.seed ||
        manifest.spec_lines != fleet.spec_lines)
      throw std::invalid_argument(
          "batch: checkpoint directory '" + dir +
          "' belongs to a different run (fleet, seed, or shard count "
          "changed); use a fresh --checkpoint-dir or `nahsp batch "
          "--resume " + dir + "`");
  } else {
    manifest.num_shards = a.shards;
    manifest.base_seed = a.seed;
    manifest.source = a.file;
    manifest.spec_lines = fleet.spec_lines;
    hsp::write_shard_manifest(dir, manifest);
  }
  return run_sharded(fleet, manifest, dir, a.threads, a.stable, json);
}

int run_resume(const BatchArgs& a, bool json) {
  const hsp::ShardManifest manifest =
      hsp::load_shard_manifest(a.resume_dir);
  Fleet fleet = fleet_from_manifest(manifest);
  return run_sharded(fleet, manifest, a.resume_dir, a.threads, a.stable,
                     json);
}

}  // namespace

int cmd_batch(const std::vector<std::string>& args, bool json) {
  const BatchArgs a = parse_batch_args(args);
  if (a.child) return run_child(a);
  if (!a.resume_dir.empty()) return run_resume(a, json);
  if (a.shards > 0) return run_parent(a, json);
  return run_unsharded(a, json);
}

}  // namespace nahsp::cli
