#include "bench.h"

#include <ctime>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nahsp/common/timer.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/hsp/solve.h"
#include "report.h"

namespace nahsp::cli {
namespace {

// ------------------------------------------------------------ the table

// One benchmark: a pinned scenario spec solved end to end (build is
// setup, only the solve is timed). Names are globally unique —
// perf_guard.py flattens every suite into one name -> row map.
struct BenchCase {
  const char* name;  ///< row name, e.g. "BM_Solve_dihedral"
  const char* spec;  ///< scenario spec line, seed pinned separately
};

struct BenchSuite {
  const char* name;  ///< suite key in the composite JSON
  const char* doc;   ///< one-line description (suite context)
  std::vector<BenchCase> cases;
};

// The four suites mirror the standalone bench_e* binaries' coverage
// tiers: abelian structure (e1), hidden-normal (e4), qubit simulator
// (e8), sparse backend (e12) — but drive the full dispatcher through
// the scenario registry, so they track what `nahsp solve` users see.
const std::vector<BenchSuite>& bench_suites() {
  static const std::vector<BenchSuite> suites = {
      {"bench_cli_abelian",
       "abelian-structure solves (Theorem 11 ladder, e1 tier)",
       {
           {"BM_Solve_abelian", "abelian"},
           {"BM_Solve_random_abelian", "random_abelian"},
           {"BM_Solve_shor", "shor"},
       }},
      {"bench_cli_normal",
       "hidden-normal-subgroup solves (Theorem 8 route, e4 tier)",
       {
           {"BM_Solve_dihedral", "dihedral"},
           {"BM_Solve_random_normal", "random_normal"},
       }},
      {"bench_cli_qft",
       "Theorem 13 solves on the qubit simulator backend (e8 tier)",
       {
           {"BM_Solve_elem_abelian2_qubit", "elem_abelian2 backend=qubit"},
           {"BM_Solve_wreath", "wreath"},
       }},
      {"bench_cli_sparse",
       "solves pinned to the sparse coset-support backend (e12 tier)",
       {
           {"BM_Solve_elem_abelian2_sparse",
            "elem_abelian2 backend=sparse"},
           {"BM_Solve_gf2affine_sparse", "gf2affine backend=sparse"},
       }},
  };
  return suites;
}

// ------------------------------------------------------------ the runner

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct BenchRow {
  std::string name;
  std::uint64_t iterations = 0;
  double real_time_ms = 0.0;  ///< mean per iteration
  double cpu_time_ms = 0.0;   ///< mean per iteration
};

constexpr std::uint64_t kBenchSeed = 1;

BenchRow run_case(const BenchCase& bc, bool quick) {
  // Build outside the timed region; construction is deterministic and
  // the interesting cost is the solve. One untimed warm-up iteration
  // absorbs first-touch effects (lazy registries, allocator warm-up).
  {
    hsp::BuiltScenario built = hsp::build_scenario(bc.spec);
    Rng rng(kBenchSeed);
    (void)hsp::solve_hsp(*built.instance.bb, *built.instance.f, rng,
                         built.options);
  }
  // Quick mode is the CI smoke budget: one timed iteration, enough for
  // schema validation and order-of-magnitude regression catching. Full
  // mode accumulates iterations until the case has at least min_time
  // on the clock, like --benchmark_min_time.
  const double min_seconds = quick ? 0.0 : 0.25;
  const std::uint64_t max_iterations = quick ? 1 : 200;
  double real_total = 0.0;
  double cpu_total = 0.0;
  std::uint64_t iterations = 0;
  while (iterations < 1 ||
         (iterations < max_iterations && real_total < min_seconds)) {
    hsp::BuiltScenario built = hsp::build_scenario(bc.spec);
    Rng rng(kBenchSeed);
    const double cpu0 = process_cpu_seconds();
    const Timer t;
    (void)hsp::solve_hsp(*built.instance.bb, *built.instance.f, rng,
                         built.options);
    real_total += t.seconds();
    cpu_total += process_cpu_seconds() - cpu0;
    ++iterations;
  }
  BenchRow row;
  row.name = bc.name;
  row.iterations = iterations;
  row.real_time_ms = real_total * 1e3 / static_cast<double>(iterations);
  row.cpu_time_ms = cpu_total * 1e3 / static_cast<double>(iterations);
  return row;
}

// ----------------------------------------------------------- the report

void write_bench_json(std::ostream& os, const std::string& note,
                      const std::string& caveat, bool quick,
                      const std::vector<const BenchSuite*>& suites,
                      const std::vector<std::vector<BenchRow>>& rows) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "nahsp-bench/v1");
  w.field("note", note);
  if (!caveat.empty()) w.field("hardware_caveat", caveat);
  w.key("benchmarks");
  w.begin_object();
  for (std::size_t s = 0; s < suites.size(); ++s) {
    w.key(suites[s]->name);
    w.begin_object();
    w.key("context");
    w.begin_object();
    w.field("num_cpus", static_cast<std::uint64_t>(
                            std::thread::hardware_concurrency()));
    w.field("mode", quick ? "quick" : "full");
    w.field("doc", suites[s]->doc);
    w.end_object();
    w.key("results");
    w.begin_array();
    for (const BenchRow& row : rows[s]) {
      w.begin_object();
      w.field("name", row.name);
      w.field("threads", std::uint64_t{1});
      w.field("iterations", row.iterations);
      w.field("real_time", row.real_time_ms);
      w.field("cpu_time", row.cpu_time_ms);
      w.field("time_unit", "ms");
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.finish();
}

}  // namespace

int cmd_bench(const std::vector<std::string>& args) {
  bool quick = false;
  std::string suite_filter;
  std::string out_path;
  std::string note;
  std::string caveat;
  const auto next_value = [&](std::size_t& i,
                              const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument("bench: " + flag + " needs a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--suite") {
      suite_filter = next_value(i, arg);
    } else if (arg == "--out") {
      out_path = next_value(i, arg);
    } else if (arg == "--note") {
      note = next_value(i, arg);
    } else if (arg == "--caveat") {
      caveat = next_value(i, arg);
    } else {
      throw std::invalid_argument(
          "bench: unknown option '" + arg +
          "' (accepted: --quick, --suite NAME, --out PATH, --note TEXT, "
          "--caveat TEXT)");
    }
  }

  std::vector<const BenchSuite*> selected;
  for (const BenchSuite& suite : bench_suites())
    if (suite_filter.empty() || suite_filter == suite.name)
      selected.push_back(&suite);
  if (selected.empty()) {
    std::string names;
    for (const BenchSuite& suite : bench_suites())
      names += std::string(names.empty() ? "" : ", ") + suite.name;
    throw std::invalid_argument("bench: unknown suite '" + suite_filter +
                                "' (suites: " + names + ")");
  }
  if (note.empty())
    note = std::string("generated by `nahsp bench") +
           (quick ? " --quick" : "") +
           "`: end-to-end scenario solves, dispatcher included";

  std::vector<std::vector<BenchRow>> rows;
  for (const BenchSuite* suite : selected) {
    std::fprintf(stderr, "bench: %s (%zu case(s))\n", suite->name,
                 suite->cases.size());
    rows.emplace_back();
    for (const BenchCase& bc : suite->cases) rows.back().push_back(
        run_case(bc, quick));
  }

  if (out_path.empty()) {
    write_bench_json(std::cout, note, caveat, quick, selected, rows);
  } else {
    std::ofstream out(out_path);
    if (!out)
      throw std::invalid_argument("bench: cannot write '" + out_path + "'");
    write_bench_json(out, note, caveat, quick, selected, rows);
  }
  return 0;
}

}  // namespace nahsp::cli
