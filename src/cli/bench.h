// `nahsp bench`: named end-to-end benchmark suites emitting the repo's
// composite BENCH_*.json schema directly — no Google-Benchmark binary
// or jq assembly step in the loop. scripts/perf_guard.py consumes the
// output both as a baseline and as the fresh side of a comparison (and
// schema-checks it via --validate).
#pragma once

#include <string>
#include <vector>

namespace nahsp::cli {

/// \brief `nahsp bench` entry point. `args` is everything after the
/// command word.
int cmd_bench(const std::vector<std::string>& args);

}  // namespace nahsp::cli
