// `nahsp batch`: the fleet front end — single-process fan-out plus the
// sharded, checkpointed multi-process mode (--shards/--shard/--resume).
// See docs/MANUAL.md ("Batch runs" and "Sharded fleets") for the
// command surface; the partition/checkpoint/merge machinery lives in
// nahsp::hsp (hsp/shard.h).
#pragma once

#include <string>
#include <vector>

namespace nahsp::cli {

/// \brief `nahsp batch` entry point. `args` is everything after the
/// command word (--json already stripped by main).
int cmd_batch(const std::vector<std::string>& args, bool json);

}  // namespace nahsp::cli
