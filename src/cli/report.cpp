#include "report.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nahsp::cli {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent(std::size_t depth) {
  if (style_ == Style::kCompact) return;
  for (std::size_t i = 0; i < depth; ++i) os_ << "  ";
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (style_ == Style::kCompact) {
    if (top.count > 0) os_ << ",";
  } else {
    os_ << (top.count > 0 ? ",\n" : "\n");
    indent(stack_.size());
  }
  ++top.count;
}

void JsonWriter::begin_object() {
  prefix();
  os_ << "{";
  stack_.push_back(Level{false, 0});
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().is_array)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0 && style_ != Style::kCompact) {
    os_ << "\n";
    indent(stack_.size());
  }
  os_ << "}";
}

void JsonWriter::begin_array() {
  prefix();
  os_ << "[";
  stack_.push_back(Level{true, 0});
}

void JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().is_array)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0 && style_ != Style::kCompact) {
    os_ << "\n";
    indent(stack_.size());
  }
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back().is_array)
    throw std::logic_error("JsonWriter: key outside an object");
  prefix();
  os_ << '"' << json_escape(k)
      << (style_ == Style::kCompact ? "\":" : "\": ");
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  prefix();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(std::uint64_t v) {
  prefix();
  os_ << v;
}

void JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  prefix();
  // JSON has no NaN/Infinity literals; "%.9g" would print `nan`/`inf`
  // and yield an unparseable document. Emit null for non-finite values.
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
}

void JsonWriter::finish() {
  if (!stack_.empty())
    throw std::logic_error("JsonWriter: finish with open containers");
  os_ << "\n";
}

}  // namespace nahsp::cli
