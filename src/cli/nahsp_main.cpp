// The `nahsp` command-line driver: run any registered scenario without
// writing C++.
//
// Subcommands (see docs/MANUAL.md for the full walkthrough):
//   nahsp list [--json | --names]        scenario catalogue
//   nahsp describe <scenario> [--json]   parameters, ranges, theorem
//   nahsp solve <scenario> [key=value ...] [--json]
//   nahsp batch <file.scn> [key=value ...] [--json]  (see batch.h for
//       the sharded mode: --shards/--shard/--resume/--stable)
//   nahsp selftest [key=value ...] [--json]
//   nahsp bench [--quick --suite NAME --out PATH ...]  (see bench.h)
//   nahsp serve [--socket PATH | --port N] [--workers N ...]
//
// Reserved spec keys consumed by the driver itself (everything else
// goes to the scenario registry): `seed` (default 1) pins the solver
// Rng / batch base seed; `threads` resizes the global pool (solve,
// selftest) or sets the batch fan-out width. The registry additionally
// reserves `gprime_cap`, `order_bound`, and `backend` (coset-sampler
// selection: auto, mixed-radix, qubit, sparse) for every family.
//
// Exit codes: 0 = solved and verified; 1 = a solve failed or a result
// did not match the planted subgroup; 2 = usage or spec error.
#include <cstdio>
#include <exception>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "nahsp/common/parallel.h"
#include "nahsp/common/spec.h"
#include "nahsp/common/timer.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/serve/outcome.h"
#include "nahsp/serve/server.h"
#include "batch.h"
#include "bench.h"
#include "report.h"

namespace nahsp::cli {
namespace {

// The outcome model and report writer are shared with the daemon
// (nahsp::serve) so CLI reports and serve responses stay
// byte-identical.
using serve::SolveOutcome;
using serve::run_scenario;
using serve::write_queries;
using serve::write_solve_report;

constexpr std::uint64_t kDefaultSeed = 1;

constexpr const char* kUsage = R"(usage: nahsp <command> [args] [--json]

commands:
  list                      all registered scenario families
                            (--names: bare names only, one per line)
  describe <scenario>       parameters, ranges, and defaults of one family
  solve <scenario> [k=v..]  build + solve one scenario, verify the result
  batch <file.scn> [k=v..]  fan a spec file through solve_hsp_batch
  selftest [k=v..]          solve every family at defaults, verify each
  bench [options]           named benchmark suites -> BENCH_*.json schema
  serve [options]           long-running solver daemon (JSON lines over a
                            socket; see docs/MANUAL.md, "The serve daemon")

batch options: --shards N (partition by instance fingerprint, run N
  checkpointed child processes, merge), --checkpoint-dir DIR (default
  <file>.ckpt), --resume DIR (finish an interrupted sharded run),
  --stable (zero wall-clock fields -> byte-reproducible reports),
  --shard i/N (internal: run one shard slice in-process)
bench options: --quick (1 iteration per case, CI smoke budget),
  --suite NAME, --out PATH, --note TEXT, --caveat TEXT
serve options: --socket PATH (default /tmp/nahsp.sock) | --port N (TCP
  127.0.0.1, 0 = ephemeral), --workers N, --queue N, --cache N,
  --timeout-ms N (0 = unlimited), --seed N (stream base seed),
  --max-mem BYTES[K|M|G] (priced admission budget, 0 = off),
  --retries N / --retry-base-ms N (transient-shed backoff),
  --cache-file PATH (crash-safe cache snapshot), --snapshot-every N

reserved keys: seed=<u64> (default 1), threads=<n> (0 = global pool),
               backend=<auto|mixed-radix|qubit|sparse> (coset sampler)
every other key=value is a scenario parameter (see `nahsp describe`).
exit codes: 0 solved+verified, 1 solve/verify failure, 2 usage error
)";

std::string codes_to_text(const std::vector<grp::Code>& codes) {
  std::string out = "[";
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(codes[i]);
  }
  return out + "]";
}

// Reserved driver-level options shared by `batch` and `selftest`:
// key=value tokens restricted to the reserved keys.
struct ReservedOptions {
  std::uint64_t seed = kDefaultSeed;
  std::uint64_t threads = 0;
};

ReservedOptions parse_reserved_options(const std::vector<std::string>& tokens,
                                       const std::string& context) {
  SpecMap cli;
  for (const std::string& tok : tokens) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("spec error: " + context + " option '" +
                                  tok + "' is not of the form key=value");
    cli.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  ReservedOptions opts;
  opts.seed = cli.get_u64("seed", kDefaultSeed);
  opts.threads = cli.get_u64("threads", 0, 0, 256);
  cli.require_all_consumed(context, {"seed", "threads"});
  return opts;
}

void print_solve_text(const SolveOutcome& out, std::uint64_t seed) {
  std::printf("scenario   : %s (%s, |G| = %llu)\n",
              out.scenario.family.c_str(), out.scenario.group_name.c_str(),
              static_cast<unsigned long long>(out.scenario.group_order));
  std::printf("params     :");
  for (const auto& [key, value] : out.scenario.params)
    std::printf(" %s=%llu", key.c_str(),
                static_cast<unsigned long long>(value));
  std::printf("\nseed       : %llu\n",
              static_cast<unsigned long long>(seed));
  if (out.success) {
    std::printf("method     : %s\n", out.method.c_str());
    std::printf("generators : %s\n", codes_to_text(out.generators).c_str());
    std::printf("planted    : %s\n",
                codes_to_text(out.scenario.instance.planted_generators)
                    .c_str());
    std::printf("verified   : %s\n", out.verified ? "YES" : "NO");
  } else {
    std::printf("FAILED     : %s\n", out.error.c_str());
  }
  const bb::QueryCounter& q = out.queries;
  std::printf(
      "queries    : %llu quantum, %llu classical, %llu group ops, "
      "%llu sim basis evals\n",
      static_cast<unsigned long long>(q.quantum_queries),
      static_cast<unsigned long long>(q.classical_queries),
      static_cast<unsigned long long>(q.group_ops),
      static_cast<unsigned long long>(q.sim_basis_evals));
  std::printf("time       : %s\n", format_duration(out.seconds).c_str());
}

// ------------------------------------------------------------------- list

int cmd_list(bool json, bool names_only) {
  const auto& registry = hsp::scenario_registry();
  if (names_only) {
    for (const auto& fam : registry) std::printf("%s\n", fam.name.c_str());
    return 0;
  }
  if (json) {
    JsonWriter w(std::cout);
    w.begin_object();
    w.field("schema", "nahsp-report/v1");
    w.field("command", "list");
    w.field("count", static_cast<std::uint64_t>(registry.size()));
    w.key("scenarios");
    w.begin_array();
    for (const auto& fam : registry) {
      w.begin_object();
      w.field("name", fam.name);
      w.field("theorem", fam.theorem);
      w.field("summary", fam.summary);
      w.key("params");
      w.begin_array();
      for (const auto& p : fam.params) w.value(p.key);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish();
    return 0;
  }
  std::printf("%zu registered scenario families:\n\n", registry.size());
  for (const auto& fam : registry) {
    std::printf("  %-14s %s\n", fam.name.c_str(), fam.theorem.c_str());
    std::printf("  %-14s %s\n", "", fam.summary.c_str());
    std::printf("  %-14s params:", "");
    for (const auto& p : fam.params)
      std::printf(" %s=%llu", p.key.c_str(),
                  static_cast<unsigned long long>(p.def));
    std::printf("\n\n");
  }
  std::printf("run `nahsp describe <name>` for parameter ranges and docs.\n");
  return 0;
}

// --------------------------------------------------------------- describe

int cmd_describe(const std::string& name, bool json) {
  const hsp::ScenarioFamily& fam = hsp::scenario_family_or_throw(name);
  if (json) {
    JsonWriter w(std::cout);
    w.begin_object();
    w.field("schema", "nahsp-report/v1");
    w.field("command", "describe");
    w.field("name", fam.name);
    w.field("theorem", fam.theorem);
    w.field("summary", fam.summary);
    w.key("params");
    w.begin_array();
    for (const auto& p : fam.params) {
      w.begin_object();
      w.field("key", p.key);
      w.field("default", p.def);
      w.field("min", p.min);
      w.field("max", p.max);
      w.field("doc", p.doc);
      w.end_object();
    }
    w.end_array();
    w.key("reserved");
    w.begin_array();
    w.value("seed");
    w.value("threads");
    w.value("gprime_cap");
    w.value("order_bound");
    w.value("backend");
    w.end_array();
    w.end_object();
    w.finish();
    return 0;
  }
  std::printf("%s — %s\n", fam.name.c_str(), fam.summary.c_str());
  std::printf("exercises  : %s\n\n", fam.theorem.c_str());
  std::printf("parameters (key=default, range):\n");
  for (const auto& p : fam.params)
    std::printf("  %-12s = %-8llu [%llu, %llu]  %s\n", p.key.c_str(),
                static_cast<unsigned long long>(p.def),
                static_cast<unsigned long long>(p.min),
                static_cast<unsigned long long>(p.max), p.doc.c_str());
  std::printf(
      "\nreserved keys: seed (Rng seed, default 1), threads (pool width),\n"
      "               gprime_cap, order_bound (dispatcher knobs),\n"
      "               backend (coset sampler: auto, mixed-radix, qubit, "
      "sparse)\n");
  std::printf("example    : nahsp solve %s seed=7 --json\n", fam.name.c_str());
  return 0;
}

// ------------------------------------------------------------------ solve

int cmd_solve(const std::vector<std::string>& tokens, bool json) {
  ScenarioSpec spec = parse_scenario_spec(tokens);
  const std::uint64_t seed = spec.params.get_u64("seed", kDefaultSeed);
  const std::uint64_t threads = spec.params.get_u64("threads", 0, 0, 256);
  if (threads != 0) set_parallelism(static_cast<int>(threads));

  hsp::BuiltScenario built = hsp::build_scenario(spec);
  Rng rng(seed);
  const SolveOutcome out = run_scenario(std::move(built), rng);

  if (json) {
    JsonWriter w(std::cout);
    write_solve_report(w, out, seed,
                       threads != 0 ? threads
                                    : static_cast<std::uint64_t>(
                                          parallelism()));
    w.finish();
  } else {
    print_solve_text(out, seed);
  }
  return out.success && out.verified ? 0 : 1;
}

// --------------------------------------------------------------- selftest

int cmd_selftest(const std::vector<std::string>& tokens, bool json) {
  const auto [seed, threads] =
      parse_reserved_options(tokens, "nahsp selftest");
  if (threads != 0) set_parallelism(static_cast<int>(threads));

  const Timer total;
  std::vector<SolveOutcome> outcomes;
  for (const hsp::ScenarioFamily& fam : hsp::scenario_registry()) {
    ScenarioSpec spec;
    spec.scenario = fam.name;
    Rng rng(seed);
    outcomes.push_back(run_scenario(hsp::build_scenario(spec), rng));
  }
  bool all_ok = true;
  for (const SolveOutcome& out : outcomes)
    all_ok = all_ok && out.success && out.verified;

  if (json) {
    JsonWriter w(std::cout);
    w.begin_object();
    w.field("schema", "nahsp-report/v1");
    w.field("command", "selftest");
    w.field("seed", seed);
    w.field("count", static_cast<std::uint64_t>(outcomes.size()));
    w.field("all_verified", all_ok);
    w.key("results");
    w.begin_array();
    for (const SolveOutcome& out : outcomes) {
      w.begin_object();
      w.field("scenario", out.scenario.family);
      w.field("group", out.scenario.group_name);
      w.field("success", out.success);
      w.field("method", out.method);
      w.field("error", out.error);
      w.field("verified", out.verified);
      w.key("queries");
      write_queries(w, out.queries);
      w.field("seconds", out.seconds);
      w.end_object();
    }
    w.end_array();
    w.field("seconds", total.seconds());
    w.end_object();
    w.finish();
  } else {
    std::printf("selftest: %zu scenarios at defaults, seed %llu\n\n",
                outcomes.size(), static_cast<unsigned long long>(seed));
    for (const SolveOutcome& out : outcomes) {
      if (out.success) {
        std::printf("  %-5s %-14s %-48s %llu quantum queries, %s\n",
                    out.verified ? "ok" : "WRONG",
                    out.scenario.family.c_str(), out.method.c_str(),
                    static_cast<unsigned long long>(
                        out.queries.quantum_queries),
                    format_duration(out.seconds).c_str());
      } else {
        std::printf("  FAIL  %-14s %s\n", out.scenario.family.c_str(),
                    out.error.c_str());
      }
    }
    std::printf("\n%s (%s)\n",
                all_ok ? "all scenarios verified" : "FAILURES detected",
                format_duration(total.seconds()).c_str());
  }
  return all_ok ? 0 : 1;
}

// ------------------------------------------------------------------ serve

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/nahsp.sock";
  const auto next_value = [&](std::size_t& i,
                              const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument("serve: " + flag + " needs a value");
    return args[++i];
  };
  const auto next_u64 = [&](std::size_t& i, const std::string& flag,
                            std::uint64_t max) {
    const std::string& text = next_value(i, flag);
    std::uint64_t v = 0;
    try {
      v = parse_spec_u64(text);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("serve: " + flag + ": " + e.what());
    }
    if (v > max)
      throw std::invalid_argument("serve: " + flag + " must be <= " +
                                  std::to_string(max));
    return v;
  };
  // Byte count with an optional K/M/G suffix (powers of 1024).
  const auto next_bytes = [&](std::size_t& i, const std::string& flag) {
    std::string text = next_value(i, flag);
    std::uint64_t scale = 1;
    if (!text.empty()) {
      const char suffix = text.back();
      if (suffix == 'K' || suffix == 'k') scale = std::uint64_t{1} << 10;
      if (suffix == 'M' || suffix == 'm') scale = std::uint64_t{1} << 20;
      if (suffix == 'G' || suffix == 'g') scale = std::uint64_t{1} << 30;
      if (scale != 1) text.pop_back();
    }
    std::uint64_t v = 0;
    try {
      v = parse_spec_u64(text);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("serve: " + flag + ": " + e.what());
    }
    if (v > std::numeric_limits<std::uint64_t>::max() / scale)
      throw std::invalid_argument("serve: " + flag + " overflows");
    return v * scale;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--socket") {
      cfg.socket_path = next_value(i, arg);
      cfg.tcp_port = -1;
    } else if (arg == "--port") {
      cfg.tcp_port = static_cast<int>(next_u64(i, arg, 65535));
    } else if (arg == "--workers") {
      cfg.service.workers =
          static_cast<int>(next_u64(i, arg, 256));
      if (cfg.service.workers < 1)
        throw std::invalid_argument("serve: --workers must be >= 1");
    } else if (arg == "--queue") {
      cfg.service.queue_limit =
          static_cast<std::size_t>(next_u64(i, arg, 1u << 20));
      if (cfg.service.queue_limit < 1)
        throw std::invalid_argument("serve: --queue must be >= 1");
    } else if (arg == "--cache") {
      cfg.service.cache_capacity =
          static_cast<std::size_t>(next_u64(i, arg, 1u << 20));
    } else if (arg == "--timeout-ms") {
      cfg.service.default_timeout_ms =
          next_u64(i, arg, std::uint64_t{1} << 40);
    } else if (arg == "--seed") {
      cfg.service.base_seed =
          next_u64(i, arg, std::numeric_limits<std::uint64_t>::max());
    } else if (arg == "--max-mem") {
      cfg.service.max_mem_bytes = next_bytes(i, arg);
    } else if (arg == "--retries") {
      cfg.service.retry_attempts = static_cast<int>(next_u64(i, arg, 16));
    } else if (arg == "--retry-base-ms") {
      cfg.service.retry_base_ms = next_u64(i, arg, std::uint64_t{1} << 20);
    } else if (arg == "--cache-file") {
      cfg.service.cache_file = next_value(i, arg);
    } else if (arg == "--snapshot-every") {
      cfg.service.snapshot_every = next_u64(i, arg, std::uint64_t{1} << 32);
    } else {
      throw std::invalid_argument(
          "serve: unknown option '" + arg +
          "' (accepted: --socket, --port, --workers, --queue, --cache, "
          "--timeout-ms, --seed, --max-mem, --retries, --retry-base-ms, "
          "--cache-file, --snapshot-every)");
    }
  }
  return serve::run_server(cfg);
}

}  // namespace
}  // namespace nahsp::cli

int main(int argc, char** argv) {
  using namespace nahsp::cli;
  bool json = false;
  bool names_only = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--names") {
      names_only = true;
    } else if (arg == "--help" || arg == "-h" ||
               (arg == "help" && i == 1)) {
      // Bare "help" counts only as the command word — `nahsp describe
      // help` must reach the normal unknown-scenario diagnostics.
      std::printf("%s", kUsage);
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  try {
    if (command == "list") return cmd_list(json, names_only);
    if (command == "describe") {
      if (rest.size() != 1)
        throw std::invalid_argument("describe takes exactly one scenario name");
      return cmd_describe(rest.front(), json);
    }
    if (command == "solve") {
      if (rest.empty())
        throw std::invalid_argument(
            "solve needs a scenario name (see `nahsp list`)");
      return cmd_solve(rest, json);
    }
    if (command == "batch") return cmd_batch(rest, json);
    if (command == "selftest") return cmd_selftest(rest, json);
    if (command == "bench") return cmd_bench(rest);
    if (command == "serve") return cmd_serve(rest);
    std::fprintf(stderr, "nahsp: unknown command '%s'\n\n%s",
                 command.c_str(), kUsage);
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "nahsp: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nahsp: unexpected error: %s\n", e.what());
    return 1;
  }
}
