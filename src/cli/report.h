// Minimal streaming JSON writer for the `nahsp` driver's machine-
// readable reports and the `nahsp serve` wire protocol.
//
// Keys are emitted in call order and the formatting (2-space indent,
// "\n" line ends, %.9g doubles) is fixed, so two runs that compute the
// same report produce byte-identical output — the property the CI
// golden-report diff relies on. Style::kCompact drops all whitespace
// for single-line output (the newline-delimited serve protocol); the
// token stream is otherwise identical. No external JSON dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace nahsp::cli {

/// \brief Streaming JSON writer with explicit begin/end nesting and
/// full string escaping. Misuse (value without key inside an object,
/// unbalanced end) is a programming error and asserted via exceptions.
class JsonWriter {
 public:
  /// \brief Output style: kPretty (2-space indent, one field per line)
  /// or kCompact (no whitespace — single-line wire output).
  enum class Style { kPretty, kCompact };

  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty)
      : os_(os), style_(style) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// \brief Emits the key of the next value inside an object.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::uint64_t v);
  void value(bool v);
  /// \brief Doubles print as %.9g (shortest stable round-trip for the
  /// report's wall-clock fields). Non-finite values (NaN, ±inf) have no
  /// JSON representation and are emitted as `null` — "%.9g" would print
  /// `nan`/`inf` and corrupt the document.
  void value(double v);

  /// \brief key + value in one call.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// \brief Terminates the document with a trailing newline (both
  /// styles: the serve protocol is newline-delimited).
  void finish();

 private:
  void prefix();
  void indent(std::size_t depth);

  struct Level {
    bool is_array = false;
    std::size_t count = 0;
  };
  std::ostream& os_;
  Style style_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

/// \brief JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

}  // namespace nahsp::cli
