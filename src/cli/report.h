// Forwarder: the streaming JSON writer moved to nahsp/common/json.h so
// the hsp layer's batch checkpoints can use it (see that header for
// the formatting contract). This header keeps the historical
// nahsp::cli spellings working for the CLI and serve layers.
#pragma once

#include "nahsp/common/json.h"

namespace nahsp::cli {

using JsonWriter = ::nahsp::JsonWriter;
using ::nahsp::json_escape;

}  // namespace nahsp::cli
