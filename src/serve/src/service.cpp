#include "nahsp/serve/service.h"

#include <algorithm>
#include <sstream>

#include "nahsp/common/spec.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/serve/json_value.h"
#include "nahsp/serve/outcome.h"
#include "report.h"

namespace nahsp::serve {

namespace {

// ------------------------------------------------------------ envelopes
//
// Envelopes are assembled by hand (json_escape on every interpolated
// string) rather than through JsonWriter because two payloads — the
// echoed client `id` and a cached report — are pre-serialized JSON that
// must be spliced in verbatim. Field order is fixed: schema, type, id,
// ok, then the type-specific payload.

std::string envelope_prefix(const char* type, const std::string& id_json,
                            bool ok) {
  std::string s = "{\"schema\":\"nahsp-serve/v1\",\"type\":\"";
  s += type;
  s += "\",\"id\":";
  s += id_json.empty() ? "null" : id_json;
  s += ",\"ok\":";
  s += ok ? "true" : "false";
  return s;
}

std::string error_line(const std::string& id_json, const std::string& code,
                       const std::string& message, bool cached = false) {
  std::string s = envelope_prefix("error", id_json, false);
  s += ",\"cached\":";
  s += cached ? "true" : "false";
  s += ",\"error\":{\"code\":\"";
  s += cli::json_escape(code);
  s += "\",\"message\":\"";
  s += cli::json_escape(message);
  s += "\"}}";
  return s;
}

std::string result_line(const std::string& id_json,
                        const std::string& report_json, bool cached) {
  std::string s = envelope_prefix("result", id_json, true);
  s += ",\"cached\":";
  s += cached ? "true" : "false";
  s += ",\"report\":";
  s += report_json;
  s += "}";
  return s;
}

// The solve report, serialized compact for the single-line wire format.
// Identical token stream to `nahsp solve --json` — the smoke test
// re-indents it and diffs against the CLI goldens.
std::string report_json_for(const SolveOutcome& out, std::uint64_t seed,
                            std::uint64_t threads) {
  std::ostringstream os;
  cli::JsonWriter w(os, cli::JsonWriter::Style::kCompact);
  write_solve_report(w, out, seed, threads);
  return os.str();
}

// Maps the batch driver's failure taxonomy onto wire error codes; the
// token's reason distinguishes a per-request timeout from a shutdown
// cancellation.
std::string error_code_for(const std::string& error_kind,
                           const CancelToken& token) {
  if (error_kind == "oracle_error") return "oracle_error";
  if (error_kind == "retry_exhausted") return "retry_exhausted";
  if (error_kind == "invalid_argument") return "spec_error";
  if (error_kind == "cancelled") {
    return token.reason() == CancelToken::Reason::kDeadline ? "timeout"
                                                            : "cancelled";
  }
  return "solver_error";
}

}  // namespace

SolverService::SolverService(const ServiceConfig& cfg)
    : cfg_(cfg),
      cache_(cfg.cache_capacity),
      streams_(cfg.base_seed),
      dispatcher_([this] { dispatcher_main(); }) {}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

void SolverService::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
}

void SolverService::cancel_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Job& job : queue_) job.token->cancel(CancelToken::Reason::kShutdown);
  for (const auto& token : in_flight_tokens_)
    token->cancel(CancelToken::Reason::kShutdown);
}

bool SolverService::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && in_flight_ == 0;
}

void SolverService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s;
  s.uptime_seconds = uptime_.seconds();
  s.jobs_received = jobs_received_;
  s.jobs_completed = jobs_completed_;
  s.jobs_failed = jobs_failed_;
  s.jobs_rejected = jobs_rejected_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.queue_depth = queue_.size();
  s.in_flight = in_flight_;
  return s;
}

void SolverService::submit_line(const std::string& line, Responder respond) {
  std::string id_json;  // best-effort echo, filled once the id parses
  const auto reject = [&](const std::string& code, const std::string& msg) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_rejected_;
    }
    // `respond` may have been moved into the job already (late failures
    // only); a responder must never be invoked twice anyway.
    if (respond) respond(error_line(id_json, code, msg));
  };

  try {
    const JsonValue req = parse_json(line);
    if (!req.is_object())
      return reject("bad_request", "request must be a JSON object");
    if (const JsonValue* id = req.find("id")) {
      if (id->is_string()) {
        id_json = '"' + cli::json_escape(id->string_value) + '"';
      } else if (id->is_number()) {
        id_json = id->number_raw;
      } else {
        return reject("bad_request", "field 'id' must be a string or number");
      }
    }
    for (const auto& [key, value] : req.object_members) {
      if (key != "cmd" && key != "id" && key != "spec" &&
          key != "timeout_ms")
        return reject("bad_request", "unknown field '" + key +
                                         "' (accepted: cmd, id, spec, "
                                         "timeout_ms)");
    }
    const JsonValue* cmd = req.find("cmd");
    if (cmd == nullptr || !cmd->is_string())
      return reject("bad_request", "field 'cmd' (string) is required");

    if (cmd->string_value == "ping") {
      respond(envelope_prefix("pong", id_json, true) + "}");
      return;
    }
    if (cmd->string_value == "stats") {
      const ServiceStats s = stats();
      std::ostringstream os;
      cli::JsonWriter w(os, cli::JsonWriter::Style::kCompact);
      w.begin_object();
      w.field("uptime_seconds", s.uptime_seconds);
      w.field("jobs_received", s.jobs_received);
      w.field("jobs_completed", s.jobs_completed);
      w.field("jobs_failed", s.jobs_failed);
      w.field("jobs_rejected", s.jobs_rejected);
      w.field("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
      w.field("in_flight", static_cast<std::uint64_t>(s.in_flight));
      w.field("workers", static_cast<std::uint64_t>(cfg_.workers));
      w.field("queue_limit", static_cast<std::uint64_t>(cfg_.queue_limit));
      w.key("cache");
      w.begin_object();
      w.field("hits", s.cache_hits);
      w.field("misses", s.cache_misses);
      w.field("evictions", s.cache_evictions);
      w.field("entries", static_cast<std::uint64_t>(s.cache_entries));
      w.field("capacity", static_cast<std::uint64_t>(cfg_.cache_capacity));
      const std::uint64_t lookups = s.cache_hits + s.cache_misses;
      w.field("hit_rate",
              lookups == 0
                  ? 0.0
                  : static_cast<double>(s.cache_hits) /
                        static_cast<double>(lookups));
      w.end_object();
      w.end_object();
      respond(envelope_prefix("stats", id_json, true) + ",\"stats\":" +
              os.str() + "}");
      return;
    }
    if (cmd->string_value == "shutdown") {
      shutdown_requested_.store(true, std::memory_order_release);
      begin_drain();
      respond(envelope_prefix("shutdown", id_json, true) + "}");
      return;
    }
    if (cmd->string_value != "solve")
      return reject("bad_request", "unknown cmd '" + cmd->string_value +
                                       "' (accepted: solve, ping, stats, "
                                       "shutdown)");

    const JsonValue* spec = req.find("spec");
    if (spec == nullptr || !spec->is_string() || spec->string_value.empty())
      return reject("bad_request",
                    "solve requires a non-empty 'spec' string "
                    "(\"family key=value ...\")");
    std::uint64_t timeout_ms = cfg_.default_timeout_ms;
    if (const JsonValue* t = req.find("timeout_ms")) {
      try {
        timeout_ms = t->as_u64();
      } catch (const JsonParseError& e) {
        return reject("bad_request",
                      std::string("field 'timeout_ms': ") + e.what());
      }
    }
    // Admission-time spec sanity: tokenization and key-grammar errors
    // are cheap to catch here; family resolution and construction run
    // on the dispatcher. The spec text travels with the job.
    try {
      (void)parse_scenario_line(spec->string_value);
    } catch (const std::invalid_argument& e) {
      return reject("spec_error", e.what());
    }

    Job job;
    job.spec_line = spec->string_value;
    job.id_json = id_json;
    job.timeout_ms = timeout_ms;
    job.token = std::make_shared<CancelToken>();
    job.respond = std::move(respond);
    bool queue_full = false;
    bool shutting_down = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (draining_) {
        ++jobs_rejected_;
        shutting_down = true;
      } else if (queue_.size() >= cfg_.queue_limit) {
        ++jobs_rejected_;
        queue_full = true;
      } else {
        job.stream_index = next_stream_index_++;
        ++jobs_received_;
        queue_.push_back(std::move(job));
      }
    }
    // On rejection the job was not moved into the queue, so its
    // responder is still ours to call.
    if (shutting_down) {
      job.respond(error_line(id_json, "shutting_down",
                             "server is draining; not accepting jobs"));
      return;
    }
    if (queue_full) {
      job.respond(error_line(id_json, "queue_full",
                             "admission queue is full (" +
                                 std::to_string(cfg_.queue_limit) +
                                 " jobs); retry later"));
      return;
    }
    queue_cv_.notify_one();
  } catch (const JsonParseError& e) {
    reject("bad_json", e.what());
  } catch (const std::exception& e) {
    // Nothing a client sends may crash the daemon.
    reject("internal_error", std::string("unexpected error: ") + e.what());
  }
}

void SolverService::dispatcher_main() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Micro-batch: up to `workers` jobs, so the batch fan-out is
      // fully used without making any response wait on more co-batched
      // work than necessary.
      const std::size_t take = std::min(
          queue_.size(),
          static_cast<std::size_t>(std::max(cfg_.workers, 1)));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        in_flight_tokens_.push_back(batch.back().token);
      }
      in_flight_ = batch.size();
    }
    run_batch(std::move(batch));
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ = 0;
      in_flight_tokens_.clear();
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void SolverService::run_batch(std::vector<Job>&& jobs) {
  // Per-job dispatch-time state for the jobs that reach the solver.
  struct Prepared {
    std::size_t job_index;
    hsp::BuiltScenario built;
    std::uint64_t report_seed;
    std::string fingerprint;
  };
  std::vector<Prepared> ready;
  std::vector<Rng> rngs;

  const auto fail = [&](const Job& job, const std::string& code,
                        const std::string& msg, bool cached = false) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_failed_;
    }
    job.respond(error_line(job.id_json, code, msg, cached));
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Job& job = jobs[j];
    if (job.token->cancelled()) {
      // cancel_all() fired while the job sat in the queue.
      fail(job, "cancelled", "cancelled before dispatch: server shutdown");
      continue;
    }
    hsp::BuiltScenario built;
    bool explicit_seed = false;
    std::uint64_t seed = 0;
    try {
      ScenarioSpec spec = parse_scenario_line(job.spec_line);
      if (spec.params.has("threads"))
        throw std::invalid_argument(
            "spec error: key 'threads' is not accepted by serve (the "
            "server fixes its own solver width)");
      explicit_seed = spec.params.has("seed");
      seed = spec.params.get_u64("seed", 0);
      built = hsp::build_scenario(spec);
    } catch (const std::invalid_argument& e) {
      fail(job, "spec_error", e.what());
      continue;
    } catch (const std::exception& e) {
      fail(job, "solver_error", e.what());
      continue;
    }

    // Instance fingerprint (hsp::scenario_fingerprint): everything that
    // determines the constructed instance and the solve configuration
    // except the seed — scenario construction is deterministic, so
    // equal fingerprints name equal planted instances. The same key
    // partitions fleets in the shard layer.
    std::string fp = hsp::scenario_fingerprint(built);

    bool cache_hit = false;
    CacheEntry entry;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (const CacheEntry* hit = cache_.get(fp)) {
        cache_hit = true;
        entry = *hit;
        if (entry.ok) ++jobs_completed_; else ++jobs_failed_;
      }
    }
    if (cache_hit) {
      // Replay the original run's response, marked cached.
      if (entry.ok) {
        job.respond(result_line(job.id_json, entry.report_json,
                                /*cached=*/true));
      } else {
        job.respond(error_line(job.id_json, entry.error_code,
                               entry.error_message, /*cached=*/true));
      }
      continue;
    }

    ready.push_back(Prepared{j, std::move(built), 0, std::move(fp)});
    Prepared& prep = ready.back();
    if (explicit_seed) {
      prep.report_seed = seed;
      rngs.push_back(Rng(seed));
    } else {
      prep.report_seed = cfg_.base_seed;
      rngs.push_back(streams_.stream(
          static_cast<std::size_t>(job.stream_index)));
    }
    // The request's wall-clock budget starts now, not at admission.
    if (job.timeout_ms > 0) job.token->set_timeout_ms(job.timeout_ms);
  }
  if (ready.empty()) return;

  std::vector<bb::HspInstance> instances;
  hsp::BatchOptions bopts;
  bopts.threads = std::max(cfg_.workers, 1);
  bopts.per_instance_rng = std::move(rngs);
  instances.reserve(ready.size());
  for (const Prepared& prep : ready) {
    instances.push_back(prep.built.instance);
    hsp::AutoOptions auto_opts = prep.built.options;
    auto_opts.cancel = jobs[prep.job_index].token;
    bopts.per_instance.push_back(std::move(auto_opts));
  }

  const hsp::BatchReport report = hsp::solve_hsp_batch(instances, bopts);

  for (std::size_t k = 0; k < ready.size(); ++k) {
    Prepared& prep = ready[k];
    const Job& job = jobs[prep.job_index];
    const hsp::BatchItemReport& item = report.items[k];
    SolveOutcome out =
        outcome_from_batch_item(std::move(prep.built), item);
    if (out.success) {
      // Kernels run serially inside batch tasks (the pool's nested-
      // region guard), so every request's solve is a width-1 run — the
      // report says so regardless of the batch fan-out.
      const std::string report_json =
          report_json_for(out, prep.report_seed, /*threads=*/1);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++jobs_completed_;
        cache_.put(prep.fingerprint,
                   CacheEntry{true, report_json, "", ""});
      }
      job.respond(result_line(job.id_json, report_json, /*cached=*/false));
    } else {
      const std::string code = error_code_for(out.error_kind, *job.token);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++jobs_failed_;
        // Completed failures are as deterministic as successes; timed
        // out or cancelled runs are circumstantial and never cached.
        if (out.error_kind != "cancelled")
          cache_.put(prep.fingerprint,
                     CacheEntry{false, "", code, out.error});
      }
      job.respond(error_line(job.id_json, code, out.error));
    }
  }
}

}  // namespace nahsp::serve
