#include "nahsp/serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "nahsp/common/faultpoint.h"
#include "nahsp/common/jsonl.h"
#include "nahsp/common/spec.h"
#include "nahsp/hsp/instance.h"
#include "nahsp/hsp/scenario.h"
#include "nahsp/serve/json_value.h"
#include "nahsp/serve/outcome.h"
#include "report.h"

namespace nahsp::serve {

namespace {

// ------------------------------------------------------------ envelopes
//
// Envelopes are assembled by hand (json_escape on every interpolated
// string) rather than through JsonWriter because two payloads — the
// echoed client `id` and a cached report — are pre-serialized JSON that
// must be spliced in verbatim. Field order is fixed: schema, type, id,
// ok, then the type-specific payload.

std::string envelope_prefix(const char* type, const std::string& id_json,
                            bool ok) {
  std::string s = "{\"schema\":\"nahsp-serve/v1\",\"type\":\"";
  s += type;
  s += "\",\"id\":";
  s += id_json.empty() ? "null" : id_json;
  s += ",\"ok\":";
  s += ok ? "true" : "false";
  return s;
}

// `extra_fields` is spliced verbatim into the error object (leading
// comma included) — the over_budget rejects use it for their
// estimated/available byte counts and retry hint.
std::string error_line(const std::string& id_json, const std::string& code,
                       const std::string& message, bool cached = false,
                       const std::string& extra_fields = "") {
  std::string s = envelope_prefix("error", id_json, false);
  s += ",\"cached\":";
  s += cached ? "true" : "false";
  s += ",\"error\":{\"code\":\"";
  s += cli::json_escape(code);
  s += "\",\"message\":\"";
  s += cli::json_escape(message);
  s += "\"";
  s += extra_fields;
  s += "}}";
  return s;
}

std::string result_line(const std::string& id_json,
                        const std::string& report_json, bool cached) {
  std::string s = envelope_prefix("result", id_json, true);
  s += ",\"cached\":";
  s += cached ? "true" : "false";
  s += ",\"report\":";
  s += report_json;
  s += "}";
  return s;
}

// The solve report, serialized compact for the single-line wire format.
// Identical token stream to `nahsp solve --json` — the smoke test
// re-indents it and diffs against the CLI goldens.
std::string report_json_for(const SolveOutcome& out, std::uint64_t seed,
                            std::uint64_t threads) {
  std::ostringstream os;
  cli::JsonWriter w(os, cli::JsonWriter::Style::kCompact);
  write_solve_report(w, out, seed, threads);
  return os.str();
}

// Maps the batch driver's failure taxonomy onto wire error codes; the
// token's reason distinguishes a per-request timeout from a shutdown
// cancellation.
std::string error_code_for(const std::string& error_kind,
                           const CancelToken& token) {
  if (error_kind == "oracle_error") return "oracle_error";
  if (error_kind == "retry_exhausted") return "retry_exhausted";
  if (error_kind == "invalid_argument") return "spec_error";
  if (error_kind == "resource_error") return "over_budget";
  if (error_kind == "cancelled") {
    return token.reason() == CancelToken::Reason::kDeadline ? "timeout"
                                                            : "cancelled";
  }
  return "solver_error";
}

// ------------------------------------------------- cache persistence
//
// Snapshot file: JSONL (common/jsonl.h torn-tail semantics), line 0 a
// schema header, then one line per entry oldest-first, so replaying
// through put() rebuilds both the entries and their recency. Reports
// are stored as escaped JSON strings and replayed byte-identically.

constexpr const char* kCacheSchema = "nahsp-serve-cache/v1";

std::string cache_header_json() {
  return std::string("{\"schema\":\"") + kCacheSchema + "\"}";
}

std::string cache_entry_json(const std::string& fingerprint, bool ok,
                             const std::string& report_json,
                             const std::string& error_code,
                             const std::string& error_message) {
  std::string s = "{\"fp\":\"" + cli::json_escape(fingerprint) +
                  "\",\"ok\":";
  s += ok ? "true" : "false";
  if (ok) {
    s += ",\"report\":\"" + cli::json_escape(report_json) + "\"";
  } else {
    s += ",\"code\":\"" + cli::json_escape(error_code) +
         "\",\"message\":\"" + cli::json_escape(error_message) + "\"";
  }
  s += "}";
  return s;
}

}  // namespace

SolverService::SolverService(const ServiceConfig& cfg)
    : cfg_(cfg),
      cache_(cfg.cache_capacity),
      streams_(cfg.base_seed),
      dispatcher_([this] { dispatcher_main(); }) {
  if (cfg_.max_mem_bytes > 0) {
    budget_limit_ = std::make_unique<ScopedBudgetLimit>(cfg_.max_mem_bytes);
  }
  if (!cfg_.cache_file.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    cache_loaded_ = load_cache_snapshot_locked();
  }
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
  // Drain snapshot: the dispatcher has retired every job by now, so
  // this persists the final cache (the SIGTERM drain path destroys the
  // service before the process exits).
  if (!cfg_.cache_file.empty()) snapshot_cache();
  // budget_limit_ (destroyed after this body) restores the prior
  // global limit only once no solver work can reserve against it.
}

std::size_t SolverService::load_cache_snapshot_locked() {
  const JsonlFile file = read_jsonl(cfg_.cache_file);
  if (file.torn_tail) {
    std::fprintf(stderr,
                 "nahsp serve: cache snapshot '%s' has a torn final line "
                 "(crashed writer?); skipping it\n",
                 cfg_.cache_file.c_str());
  }
  if (file.lines.empty()) return 0;
  try {
    const JsonValue header = parse_json(file.lines[0]);
    const JsonValue* schema =
        header.is_object() ? header.find("schema") : nullptr;
    if (schema == nullptr || !schema->is_string() ||
        schema->string_value != kCacheSchema) {
      std::fprintf(stderr,
                   "nahsp serve: cache snapshot '%s' has an unknown "
                   "schema; starting with an empty cache\n",
                   cfg_.cache_file.c_str());
      return 0;
    }
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "nahsp serve: cache snapshot '%s' header is not JSON; "
                 "starting with an empty cache\n",
                 cfg_.cache_file.c_str());
    return 0;
  }
  std::size_t loaded = 0;
  for (std::size_t i = 1; i < file.lines.size(); ++i) {
    try {
      const JsonValue v = parse_json(file.lines[i]);
      const JsonValue* fp = v.is_object() ? v.find("fp") : nullptr;
      const JsonValue* ok = v.is_object() ? v.find("ok") : nullptr;
      if (fp == nullptr || !fp->is_string() || ok == nullptr ||
          !ok->is_bool())
        throw JsonParseError("cache entry missing fp/ok");
      CacheEntry entry;
      entry.ok = ok->bool_value;
      if (entry.ok) {
        const JsonValue* report = v.find("report");
        if (report == nullptr || !report->is_string() ||
            report->string_value.empty())
          throw JsonParseError("cache entry missing report");
        entry.report_json = report->string_value;
      } else {
        const JsonValue* code = v.find("code");
        const JsonValue* message = v.find("message");
        if (code == nullptr || !code->is_string() || message == nullptr ||
            !message->is_string())
          throw JsonParseError("cache entry missing code/message");
        entry.error_code = code->string_value;
        entry.error_message = message->string_value;
      }
      cache_.put(fp->string_value, std::move(entry));
      ++loaded;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "nahsp serve: cache snapshot '%s' line %zu is "
                   "malformed (%s); skipping it\n",
                   cfg_.cache_file.c_str(), i + 1, e.what());
    }
  }
  return loaded;
}

void SolverService::snapshot_cache() {
  // Collect under the lock, write outside it — the I/O thread must not
  // stall on fsync while we persist.
  std::vector<std::string> lines;
  lines.push_back(cache_header_json());
  {
    std::lock_guard<std::mutex> lk(mu_);
    cache_.for_each_oldest_first(
        [&](const std::string& fp, const CacheEntry& e) {
          lines.push_back(cache_entry_json(fp, e.ok, e.report_json,
                                           e.error_code, e.error_message));
        });
  }
  const std::string tmp = cfg_.cache_file + ".tmp";
  try {
    std::remove(tmp.c_str());  // a previous failed snapshot's leftovers
    {
      JsonlWriter writer(tmp);
      for (const std::string& line : lines) writer.append(line);
      // Fault point at the snapshot boundary: firing after the writes
      // but before the rename proves an interrupted snapshot never
      // replaces (or tears) the previous good file.
      if (faultpoint_should_fail("cache.snapshot"))
        throw std::runtime_error("injected fault (cache.snapshot) on '" +
                                 tmp + "'");
    }
    if (std::rename(tmp.c_str(), cfg_.cache_file.c_str()) != 0)
      throw std::runtime_error("rename to '" + cfg_.cache_file +
                               "' failed");
    std::lock_guard<std::mutex> lk(mu_);
    ++cache_snapshots_;
  } catch (const std::exception& e) {
    std::remove(tmp.c_str());
    std::fprintf(stderr,
                 "nahsp serve: cache snapshot failed (%s); keeping the "
                 "previous snapshot\n",
                 e.what());
  }
}

void SolverService::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
}

void SolverService::cancel_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Job& job : queue_) job.token->cancel(CancelToken::Reason::kShutdown);
  for (const auto& token : in_flight_tokens_)
    token->cancel(CancelToken::Reason::kShutdown);
}

bool SolverService::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && in_flight_ == 0;
}

void SolverService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s;
  s.uptime_seconds = uptime_.seconds();
  s.jobs_received = jobs_received_;
  s.jobs_completed = jobs_completed_;
  s.jobs_failed = jobs_failed_;
  s.jobs_rejected = jobs_rejected_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.queue_depth = queue_.size();
  s.in_flight = in_flight_;
  s.jobs_shed = jobs_shed_;
  s.retries = retries_;
  s.priced_pending_bytes = priced_pending_;
  s.cache_loaded = cache_loaded_;
  s.cache_snapshots = cache_snapshots_;
  return s;
}

void SolverService::submit_line(const std::string& line, Responder respond) {
  std::string id_json;  // best-effort echo, filled once the id parses
  const auto reject = [&](const std::string& code, const std::string& msg) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_rejected_;
    }
    // `respond` may have been moved into the job already (late failures
    // only); a responder must never be invoked twice anyway.
    if (respond) respond(error_line(id_json, code, msg));
  };

  try {
    // Fault point at the admission boundary: an armed fault resolves to
    // a structured internal_error reject through the catch below — the
    // connection and the daemon survive.
    if (faultpoint_should_fail("serve.submit"))
      throw std::runtime_error("injected fault (serve.submit)");
    const JsonValue req = parse_json(line);
    if (!req.is_object())
      return reject("bad_request", "request must be a JSON object");
    if (const JsonValue* id = req.find("id")) {
      if (id->is_string()) {
        id_json = '"' + cli::json_escape(id->string_value) + '"';
      } else if (id->is_number()) {
        id_json = id->number_raw;
      } else {
        return reject("bad_request", "field 'id' must be a string or number");
      }
    }
    for (const auto& [key, value] : req.object_members) {
      if (key != "cmd" && key != "id" && key != "spec" &&
          key != "timeout_ms")
        return reject("bad_request", "unknown field '" + key +
                                         "' (accepted: cmd, id, spec, "
                                         "timeout_ms)");
    }
    const JsonValue* cmd = req.find("cmd");
    if (cmd == nullptr || !cmd->is_string())
      return reject("bad_request", "field 'cmd' (string) is required");

    if (cmd->string_value == "ping") {
      respond(envelope_prefix("pong", id_json, true) + "}");
      return;
    }
    if (cmd->string_value == "stats") {
      const ServiceStats s = stats();
      std::ostringstream os;
      cli::JsonWriter w(os, cli::JsonWriter::Style::kCompact);
      w.begin_object();
      w.field("uptime_seconds", s.uptime_seconds);
      w.field("jobs_received", s.jobs_received);
      w.field("jobs_completed", s.jobs_completed);
      w.field("jobs_failed", s.jobs_failed);
      w.field("jobs_rejected", s.jobs_rejected);
      w.field("jobs_shed", s.jobs_shed);
      w.field("retries", s.retries);
      w.field("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
      w.field("in_flight", static_cast<std::uint64_t>(s.in_flight));
      w.field("workers", static_cast<std::uint64_t>(cfg_.workers));
      w.field("queue_limit", static_cast<std::uint64_t>(cfg_.queue_limit));
      w.field("max_mem_bytes", cfg_.max_mem_bytes);
      w.field("priced_pending_bytes", s.priced_pending_bytes);
      w.key("cache");
      w.begin_object();
      w.field("hits", s.cache_hits);
      w.field("misses", s.cache_misses);
      w.field("evictions", s.cache_evictions);
      w.field("entries", static_cast<std::uint64_t>(s.cache_entries));
      w.field("capacity", static_cast<std::uint64_t>(cfg_.cache_capacity));
      w.field("loaded", s.cache_loaded);
      w.field("snapshots", s.cache_snapshots);
      const std::uint64_t lookups = s.cache_hits + s.cache_misses;
      w.field("hit_rate",
              lookups == 0
                  ? 0.0
                  : static_cast<double>(s.cache_hits) /
                        static_cast<double>(lookups));
      w.end_object();
      w.end_object();
      respond(envelope_prefix("stats", id_json, true) + ",\"stats\":" +
              os.str() + "}");
      return;
    }
    if (cmd->string_value == "shutdown") {
      shutdown_requested_.store(true, std::memory_order_release);
      begin_drain();
      respond(envelope_prefix("shutdown", id_json, true) + "}");
      return;
    }
    if (cmd->string_value != "solve")
      return reject("bad_request", "unknown cmd '" + cmd->string_value +
                                       "' (accepted: solve, ping, stats, "
                                       "shutdown)");

    const JsonValue* spec = req.find("spec");
    if (spec == nullptr || !spec->is_string() || spec->string_value.empty())
      return reject("bad_request",
                    "solve requires a non-empty 'spec' string "
                    "(\"family key=value ...\")");
    std::uint64_t timeout_ms = cfg_.default_timeout_ms;
    if (const JsonValue* t = req.find("timeout_ms")) {
      try {
        timeout_ms = t->as_u64();
      } catch (const JsonParseError& e) {
        return reject("bad_request",
                      std::string("field 'timeout_ms': ") + e.what());
      }
    }
    // Admission-time spec sanity: tokenization and key-grammar errors
    // are cheap to catch here; family resolution and construction run
    // on the dispatcher. The spec text travels with the job.
    try {
      (void)parse_scenario_line(spec->string_value);
    } catch (const std::invalid_argument& e) {
      return reject("spec_error", e.what());
    }

    // Priced admission (--max-mem): estimate the request's peak sampler
    // footprint by building the scenario here and discarding it — the
    // dispatcher rebuilds, so a request whose CONSTRUCTION fails is
    // still admitted and fails at dispatch with the usual accounting.
    // A request whose ESTIMATE can never fit the budget is shed now,
    // before any solver work, with the numbers on the wire.
    std::uint64_t priced_bytes = 0;
    if (cfg_.max_mem_bytes > 0) {
      bool priced = false;
      qs::SamplerPlan plan;
      try {
        // Parse and consume the serve-level seed key first, exactly as
        // the dispatcher's prepare stage does — build_scenario rejects
        // keys it does not own.
        ScenarioSpec sspec = parse_scenario_line(spec->string_value);
        (void)sspec.params.get_u64("seed", 0);
        plan = hsp::estimate_scenario_bytes(hsp::build_scenario(sspec));
        priced = true;
      } catch (const std::exception&) {
      }
      if (priced && plan.over_budget) {
        std::uint64_t available = 0;
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++jobs_rejected_;
          ++jobs_shed_;
          available = cfg_.max_mem_bytes -
                      std::min(priced_pending_, cfg_.max_mem_bytes);
        }
        respond(error_line(
            id_json, "over_budget",
            "request needs ~" + std::to_string(plan.estimated_bytes) +
                " bytes, over the " + std::to_string(cfg_.max_mem_bytes) +
                "-byte --max-mem budget; it can never be admitted",
            /*cached=*/false,
            ",\"estimated_bytes\":" + std::to_string(plan.estimated_bytes) +
                ",\"available_bytes\":" + std::to_string(available) +
                ",\"limit_bytes\":" + std::to_string(cfg_.max_mem_bytes)));
        return;
      }
      if (priced) priced_bytes = plan.estimated_bytes;
    }

    Job job;
    job.spec_line = spec->string_value;
    job.id_json = id_json;
    job.timeout_ms = timeout_ms;
    job.priced_bytes = priced_bytes;
    job.token = std::make_shared<CancelToken>();
    job.respond = std::move(respond);
    bool queue_full = false;
    bool shutting_down = false;
    bool over_budget = false;
    std::uint64_t available = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (draining_) {
        ++jobs_rejected_;
        shutting_down = true;
      } else if (queue_.size() >= cfg_.queue_limit) {
        ++jobs_rejected_;
        queue_full = true;
      } else if (job.priced_bytes > 0 &&
                 priced_pending_ + job.priced_bytes > cfg_.max_mem_bytes) {
        // Transient shed: the request fits the budget alone, but the
        // ledger of queued + in-flight work doesn't have the headroom.
        ++jobs_rejected_;
        ++jobs_shed_;
        available = cfg_.max_mem_bytes -
                    std::min(priced_pending_, cfg_.max_mem_bytes);
        over_budget = true;
      } else {
        job.stream_index = next_stream_index_++;
        priced_pending_ += job.priced_bytes;
        ++jobs_received_;
        queue_.push_back(std::move(job));
      }
    }
    // On rejection the job was not moved into the queue, so its
    // responder is still ours to call.
    if (shutting_down) {
      job.respond(error_line(id_json, "shutting_down",
                             "server is draining; not accepting jobs"));
      return;
    }
    if (queue_full) {
      job.respond(error_line(id_json, "queue_full",
                             "admission queue is full (" +
                                 std::to_string(cfg_.queue_limit) +
                                 " jobs); retry later"));
      return;
    }
    if (over_budget) {
      const std::uint64_t retry_after_ms =
          cfg_.retry_base_ms << std::max(cfg_.retry_attempts, 1);
      job.respond(error_line(
          id_json, "over_budget",
          "priced admission ledger is full (" +
              std::to_string(job.priced_bytes) + " bytes requested, " +
              std::to_string(available) + " available); retry later",
          /*cached=*/false,
          ",\"estimated_bytes\":" + std::to_string(job.priced_bytes) +
              ",\"available_bytes\":" + std::to_string(available) +
              ",\"retry_after_ms\":" + std::to_string(retry_after_ms)));
      return;
    }
    queue_cv_.notify_one();
  } catch (const JsonParseError& e) {
    reject("bad_json", e.what());
  } catch (const std::exception& e) {
    // Nothing a client sends may crash the daemon.
    reject("internal_error", std::string("unexpected error: ") + e.what());
  }
}

void SolverService::dispatcher_main() {
  for (;;) {
    std::vector<Job> batch;
    std::uint64_t batch_priced = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Micro-batch: up to `workers` jobs, so the batch fan-out is
      // fully used without making any response wait on more co-batched
      // work than necessary.
      const std::size_t take = std::min(
          queue_.size(),
          static_cast<std::size_t>(std::max(cfg_.workers, 1)));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        in_flight_tokens_.push_back(batch.back().token);
        batch_priced += batch.back().priced_bytes;
      }
      in_flight_ = batch.size();
    }
    const std::size_t batch_size = batch.size();
    run_batch(std::move(batch));
    bool do_snapshot = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ = 0;
      in_flight_tokens_.clear();
      // Every job in the batch has been answered; return its admission
      // price to the ledger so new submissions can be admitted.
      priced_pending_ -= std::min(batch_priced, priced_pending_);
      if (queue_.empty()) idle_cv_.notify_all();
    }
    if (!cfg_.cache_file.empty() && cfg_.snapshot_every > 0) {
      jobs_since_snapshot_ += batch_size;
      if (jobs_since_snapshot_ >= cfg_.snapshot_every) {
        jobs_since_snapshot_ = 0;
        do_snapshot = true;
      }
    }
    if (do_snapshot) snapshot_cache();
  }
}

void SolverService::run_batch(std::vector<Job>&& jobs) {
  // Per-job dispatch-time state for the jobs that reach the solver.
  struct Prepared {
    std::size_t job_index;
    hsp::BuiltScenario built;
    std::uint64_t report_seed;
    std::string fingerprint;
    bool explicit_seed = false;
    std::uint64_t seed = 0;
  };
  std::vector<Prepared> ready;
  std::vector<Rng> rngs;

  const auto fail = [&](const Job& job, const std::string& code,
                        const std::string& msg, bool cached = false) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_failed_;
    }
    job.respond(error_line(job.id_json, code, msg, cached));
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Job& job = jobs[j];
    if (job.token->cancelled()) {
      // cancel_all() fired while the job sat in the queue.
      fail(job, "cancelled", "cancelled before dispatch: server shutdown");
      continue;
    }
    hsp::BuiltScenario built;
    bool explicit_seed = false;
    std::uint64_t seed = 0;
    try {
      ScenarioSpec spec = parse_scenario_line(job.spec_line);
      if (spec.params.has("threads"))
        throw std::invalid_argument(
            "spec error: key 'threads' is not accepted by serve (the "
            "server fixes its own solver width)");
      explicit_seed = spec.params.has("seed");
      seed = spec.params.get_u64("seed", 0);
      built = hsp::build_scenario(spec);
    } catch (const std::invalid_argument& e) {
      fail(job, "spec_error", e.what());
      continue;
    } catch (const std::exception& e) {
      fail(job, "solver_error", e.what());
      continue;
    }

    // Instance fingerprint (hsp::scenario_fingerprint): everything that
    // determines the constructed instance and the solve configuration
    // except the seed — scenario construction is deterministic, so
    // equal fingerprints name equal planted instances. The same key
    // partitions fleets in the shard layer.
    std::string fp = hsp::scenario_fingerprint(built);

    bool cache_hit = false;
    CacheEntry entry;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (const CacheEntry* hit = cache_.get(fp)) {
        cache_hit = true;
        entry = *hit;
        if (entry.ok) ++jobs_completed_; else ++jobs_failed_;
      }
    }
    if (cache_hit) {
      // Replay the original run's response, marked cached.
      if (entry.ok) {
        job.respond(result_line(job.id_json, entry.report_json,
                                /*cached=*/true));
      } else {
        job.respond(error_line(job.id_json, entry.error_code,
                               entry.error_message, /*cached=*/true));
      }
      continue;
    }

    ready.push_back(Prepared{j, std::move(built), 0, std::move(fp),
                             explicit_seed, seed});
    Prepared& prep = ready.back();
    if (explicit_seed) {
      prep.report_seed = seed;
      rngs.push_back(Rng(seed));
    } else {
      prep.report_seed = cfg_.base_seed;
      rngs.push_back(streams_.stream(
          static_cast<std::size_t>(job.stream_index)));
    }
    // The request's wall-clock budget starts now, not at admission.
    if (job.timeout_ms > 0) job.token->set_timeout_ms(job.timeout_ms);
  }
  if (ready.empty()) return;

  std::vector<bb::HspInstance> instances;
  hsp::BatchOptions bopts;
  bopts.threads = std::max(cfg_.workers, 1);
  bopts.per_instance_rng = std::move(rngs);
  instances.reserve(ready.size());
  for (const Prepared& prep : ready) {
    instances.push_back(prep.built.instance);
    hsp::AutoOptions auto_opts = prep.built.options;
    auto_opts.cancel = jobs[prep.job_index].token;
    bopts.per_instance.push_back(std::move(auto_opts));
  }

  const hsp::BatchReport report = hsp::solve_hsp_batch(instances, bopts);

  const auto deliver = [&](const Job& job, const std::string& fingerprint,
                           SolveOutcome&& out, std::uint64_t report_seed) {
    if (out.success) {
      // Kernels run serially inside batch tasks (the pool's nested-
      // region guard), so every request's solve is a width-1 run — the
      // report says so regardless of the batch fan-out.
      const std::string report_json =
          report_json_for(out, report_seed, /*threads=*/1);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++jobs_completed_;
        cache_.put(fingerprint, CacheEntry{true, report_json, "", ""});
      }
      job.respond(result_line(job.id_json, report_json, /*cached=*/false));
    } else {
      const std::string code = error_code_for(out.error_kind, *job.token);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++jobs_failed_;
        // Completed failures are as deterministic as successes; timed
        // out, cancelled, or budget-starved runs are circumstantial
        // and never cached.
        if (out.error_kind != "cancelled" &&
            out.error_kind != "resource_error")
          cache_.put(fingerprint, CacheEntry{false, "", code, out.error});
      }
      job.respond(error_line(job.id_json, code, out.error));
    }
  };

  // Jobs whose solve raised a resource_error (a budget reservation
  // race or an injected allocation fault) are held back for the
  // backoff-retry pass below instead of bouncing the failure.
  struct RetryItem {
    std::size_t job_index;
    bool explicit_seed;
    std::uint64_t seed;
    std::uint64_t report_seed;
    std::string fingerprint;
    std::string last_error;
  };
  std::vector<RetryItem> retry_items;

  for (std::size_t k = 0; k < ready.size(); ++k) {
    Prepared& prep = ready[k];
    const Job& job = jobs[prep.job_index];
    const hsp::BatchItemReport& item = report.items[k];
    if (!item.success && item.error_kind == "resource_error" &&
        cfg_.retry_attempts > 0) {
      retry_items.push_back(RetryItem{prep.job_index, prep.explicit_seed,
                                      prep.seed, prep.report_seed,
                                      std::move(prep.fingerprint),
                                      item.error});
      continue;
    }
    deliver(job, prep.fingerprint,
            outcome_from_batch_item(std::move(prep.built), item),
            prep.report_seed);
  }

  // Bounded exponential-backoff retry: attempt k sleeps
  // retry_base_ms << (k-1), re-runs the solve as a width-1 batch with
  // a freshly derived RNG (stream(i) is a pure function of (base_seed,
  // i), so the retry draws exactly the randomness the first attempt
  // did), and stops on any non-resource outcome. Cancellation always
  // wins: a token fired during backoff reports `cancelled` (or
  // `timeout`), never `over_budget`.
  for (RetryItem& r : retry_items) {
    const Job& job = jobs[r.job_index];
    bool resolved = false;
    bool cancelled = job.token->cancelled();
    for (int attempt = 1;
         attempt <= cfg_.retry_attempts && !resolved && !cancelled;
         ++attempt) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++retries_;
      }
      // Sliced sleep so a cancellation mid-backoff is seen promptly.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(cfg_.retry_base_ms << (attempt - 1));
      while (std::chrono::steady_clock::now() < deadline) {
        if (job.token->cancelled()) {
          cancelled = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (cancelled) break;
      try {
        // Same route as the prepare stage: parse, consume the serve-
        // level seed key, then build — so scenario construction sees
        // exactly the keys it saw at dispatch.
        ScenarioSpec spec = parse_scenario_line(job.spec_line);
        (void)spec.params.get_u64("seed", 0);
        hsp::BuiltScenario built = hsp::build_scenario(spec);
        std::vector<bb::HspInstance> retry_instances{built.instance};
        hsp::BatchOptions ropts;
        ropts.threads = 1;
        ropts.per_instance_rng.push_back(
            r.explicit_seed
                ? Rng(r.seed)
                : streams_.stream(
                      static_cast<std::size_t>(job.stream_index)));
        hsp::AutoOptions auto_opts = built.options;
        auto_opts.cancel = job.token;
        ropts.per_instance.push_back(std::move(auto_opts));
        const hsp::BatchReport retry_report =
            hsp::solve_hsp_batch(retry_instances, ropts);
        const hsp::BatchItemReport& item = retry_report.items[0];
        if (!item.success && item.error_kind == "resource_error") {
          r.last_error = item.error;
          continue;
        }
        deliver(job, r.fingerprint,
                outcome_from_batch_item(std::move(built), item),
                r.report_seed);
        resolved = true;
      } catch (const std::exception& e) {
        // The scenario built at dispatch; a rebuild failure here is
        // unexpected — surface it instead of spinning.
        fail(job, "solver_error", e.what());
        resolved = true;
      }
    }
    if (resolved) continue;
    if (cancelled || job.token->cancelled()) {
      fail(job, error_code_for("cancelled", *job.token),
           "cancelled during budget retry");
    } else {
      fail(job, "over_budget", r.last_error);
    }
  }
}

}  // namespace nahsp::serve
