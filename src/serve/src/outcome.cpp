#include "nahsp/serve/outcome.h"

#include "nahsp/common/timer.h"
#include "nahsp/hsp/instance.h"

namespace nahsp::serve {

SolveOutcome run_scenario(hsp::BuiltScenario&& built, Rng& rng) {
  SolveOutcome out;
  out.scenario = std::move(built);
  const Timer t;
  try {
    const hsp::HspSolution sol = hsp::solve_hsp(
        *out.scenario.instance.bb, *out.scenario.instance.f, rng,
        out.scenario.options);
    out.success = true;
    out.method = hsp::method_name(sol.method);
    out.generators = sol.generators;
    out.verified = hsp::verify_same_subgroup(
        *out.scenario.instance.group, sol.generators,
        out.scenario.instance.planted_generators);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.seconds = t.seconds();
  out.queries = *out.scenario.instance.counter;
  return out;
}

SolveOutcome outcome_from_batch_item(hsp::BuiltScenario&& built,
                                     const hsp::BatchItemReport& item) {
  SolveOutcome out;
  out.scenario = std::move(built);
  out.success = item.success;
  out.error = item.error;
  out.error_kind = item.error_kind;
  out.queries = item.queries;
  out.seconds = item.seconds;
  if (item.success) {
    out.method = hsp::method_name(item.solution.method);
    out.generators = item.solution.generators;
    out.verified = hsp::verify_same_subgroup(
        *out.scenario.instance.group, out.generators,
        out.scenario.instance.planted_generators);
  }
  return out;
}

void write_queries(cli::JsonWriter& w, const bb::QueryCounter& q) {
  w.begin_object();
  w.field("group_ops", q.group_ops);
  w.field("classical_queries", q.classical_queries);
  w.field("quantum_queries", q.quantum_queries);
  w.field("sim_basis_evals", q.sim_basis_evals);
  w.end_object();
}

void write_codes(cli::JsonWriter& w, const std::vector<grp::Code>& codes) {
  w.begin_array();
  for (const grp::Code c : codes) w.value(static_cast<std::uint64_t>(c));
  w.end_array();
}

void write_solve_report(cli::JsonWriter& w, const SolveOutcome& out,
                        std::uint64_t seed, std::uint64_t threads) {
  w.begin_object();
  w.field("schema", "nahsp-report/v1");
  w.field("command", "solve");
  w.field("scenario", out.scenario.family);
  w.field("group", out.scenario.group_name);
  w.field("group_order", out.scenario.group_order);
  w.key("params");
  w.begin_object();
  for (const auto& [key, value] : out.scenario.params) w.field(key, value);
  w.end_object();
  w.field("seed", seed);
  w.field("threads", threads);
  w.field("backend",
          qs::sampler_backend_name(out.scenario.options.sampler.backend));
  w.field("success", out.success);
  w.field("method", out.method);
  w.field("error", out.error);
  w.key("generators");
  write_codes(w, out.generators);
  w.key("planted");
  write_codes(w, out.scenario.instance.planted_generators);
  w.field("verified", out.verified);
  w.key("queries");
  write_queries(w, out.queries);
  w.field("seconds", out.seconds);
  w.end_object();
}

}  // namespace nahsp::serve
