#include "nahsp/serve/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "nahsp/common/faultpoint.h"

namespace nahsp::serve {

namespace {

// ----------------------------------------------------------- self-pipe
//
// The signal handler must be async-signal-safe, so it only writes one
// byte; the poll loop owns all actual shutdown logic. File-scope state
// is unavoidable here (signal handlers take no context pointer).

int g_signal_pipe_write = -1;

void on_shutdown_signal(int /*signo*/) {
  const char byte = 1;
  // Best effort: if the pipe is full a previous signal is already
  // pending, which is just as good.
  [[maybe_unused]] const ssize_t n =
      write(g_signal_pipe_write, &byte, 1);
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_cloexec(int fd) {
  const int flags = fcntl(fd, F_GETFD, 0);
  return flags >= 0 && fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

[[nodiscard]] int fail(const char* what) {
  std::fprintf(stderr, "nahsp serve: %s: %s\n", what,
               std::strerror(errno));
  return 1;
}

// Creates the Unix-domain listener, replacing a stale socket file (one
// whose connect() is refused — the previous server died without
// unlinking).
int listen_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "nahsp serve: socket path too long: %s\n",
                 path.c_str());
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  // Stale-socket probe.
  const int probe = socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    if (connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      close(probe);
      std::fprintf(stderr,
                   "nahsp serve: %s: another server is listening\n",
                   path.c_str());
      return -1;
    }
    close(probe);
    if (errno == ECONNREFUSED) unlink(path.c_str());
  }

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "nahsp serve: socket: %s\n",
                 std::strerror(errno));
    return -1;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(fd, 64) != 0) {
    std::fprintf(stderr, "nahsp serve: %s: %s\n", path.c_str(),
                 std::strerror(errno));
    close(fd);
    return -1;
  }
  return fd;
}

// Loopback TCP listener; port 0 asks the kernel for an ephemeral port.
// Returns the fd and fills `bound_port` with the actual port.
int listen_tcp(int port, int* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(fd, 64) != 0) {
    close(fd);
    return -1;
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    close(fd);
    return -1;
  }
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

struct Connection {
  std::uint64_t id = 0;
  std::string inbuf;
  std::string outbuf;
  /// Set once the connection must close after its outbuf drains.
  bool close_after_flush = false;
  /// Swallowing an oversized line: bytes are discarded through its
  /// terminating newline, then ONE request_too_large error is sent and
  /// normal parsing resumes — later pipelined requests stay in sync.
  bool discarding = false;
};

// Structured reject for a line beyond max_line_bytes (newline included:
// it goes straight onto the wire).
constexpr const char kTooLargeLine[] =
    "{\"schema\":\"nahsp-serve/v1\",\"type\":\"error\","
    "\"id\":null,\"ok\":false,\"cached\":false,\"error\":"
    "{\"code\":\"request_too_large\",\"message\":\"request "
    "line exceeds the size limit\"}}\n";

// Responses finished on the dispatcher thread, waiting for the I/O
// thread to pick them up after a wake-pipe byte.
struct CompletionQueue {
  std::mutex mu;
  std::deque<std::pair<std::uint64_t, std::string>> lines;  // (conn id, line)
  int wake_write_fd = -1;

  void push(std::uint64_t conn_id, std::string line) {
    {
      std::lock_guard<std::mutex> lk(mu);
      lines.emplace_back(conn_id, std::move(line));
    }
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(wake_write_fd, &byte, 1);
  }
};

void drain_pipe(int fd) {
  char buf[256];
  while (read(fd, buf, sizeof buf) > 0) {
  }
}

}  // namespace

int run_server(const ServerConfig& cfg) {
  // Listener.
  int listener = -1;
  std::string endpoint;
  if (cfg.tcp_port >= 0) {
    int port = 0;
    listener = listen_tcp(cfg.tcp_port, &port);
    if (listener < 0) return fail("cannot listen on 127.0.0.1");
    endpoint = "tcp://127.0.0.1:" + std::to_string(port);
  } else {
    listener = listen_unix(cfg.socket_path);
    if (listener < 0) return 1;  // listen_unix printed the cause
    endpoint = "unix:" + cfg.socket_path;
  }
  set_nonblocking(listener);
  set_cloexec(listener);

  // Self-pipe for signals, wake pipe for completions.
  int sig_pipe[2] = {-1, -1};
  int wake_pipe[2] = {-1, -1};
  if (pipe(sig_pipe) != 0 || pipe(wake_pipe) != 0)
    return fail("cannot create pipes");
  for (const int fd : {sig_pipe[0], sig_pipe[1], wake_pipe[0],
                       wake_pipe[1]}) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }
  g_signal_pipe_write = sig_pipe[1];

  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a dying client must not kill the daemon

  CompletionQueue completions;
  completions.wake_write_fd = wake_pipe[1];

  SolverService service(cfg.service);

  std::map<int, Connection> conns;          // fd -> connection
  std::map<std::uint64_t, int> conn_fds;    // conn id -> fd
  std::uint64_t next_conn_id = 1;
  bool draining = false;
  int signals_seen = 0;

  std::printf("nahsp serve: listening on %s (workers=%d queue=%zu "
              "cache=%zu)\n",
              endpoint.c_str(), cfg.service.workers,
              cfg.service.queue_limit, cfg.service.cache_capacity);
  std::fflush(stdout);

  const auto close_conn = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    conn_fds.erase(it->second.id);
    conns.erase(it);
    close(fd);
  };

  const auto begin_drain = [&] {
    if (draining) return;
    draining = true;
    service.begin_drain();
    if (listener >= 0) {
      close(listener);
      listener = -1;
    }
  };

  for (;;) {
    // Exit test: draining, solver idle, no pending completions, every
    // response flushed.
    if (draining && service.idle()) {
      bool pending = false;
      {
        std::lock_guard<std::mutex> lk(completions.mu);
        pending = !completions.lines.empty();
      }
      for (const auto& [fd, conn] : conns)
        pending = pending || !conn.outbuf.empty();
      if (!pending) break;
    }

    std::vector<pollfd> fds;
    fds.push_back(pollfd{sig_pipe[0], POLLIN, 0});
    fds.push_back(pollfd{wake_pipe[0], POLLIN, 0});
    if (listener >= 0) fds.push_back(pollfd{listener, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      short events = POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
    }

    // Bounded wait while draining: the dispatcher's last completion
    // wake can land between the exit test above and this poll (the
    // service goes idle moments after pushing its final response), and
    // with no connections left nothing else would ever wake us — so
    // re-run the exit test on a short tick instead of blocking forever.
    if (poll(fds.data(), fds.size(), draining ? 50 : -1) < 0) {
      if (errno == EINTR) continue;
      return fail("poll");
    }

    std::size_t idx = 0;
    // Signal pipe.
    if (fds[idx].revents & POLLIN) {
      drain_pipe(sig_pipe[0]);
      ++signals_seen;
      begin_drain();
      if (signals_seen >= 2) service.cancel_all();
    }
    ++idx;

    // Completion wake pipe: move finished responses into out-buffers.
    if (fds[idx].revents & POLLIN) drain_pipe(wake_pipe[0]);
    ++idx;
    {
      std::deque<std::pair<std::uint64_t, std::string>> ready;
      {
        std::lock_guard<std::mutex> lk(completions.mu);
        ready.swap(completions.lines);
      }
      for (auto& [conn_id, line] : ready) {
        const auto it = conn_fds.find(conn_id);
        if (it == conn_fds.end()) continue;  // client already left
        Connection& conn = conns[it->second];
        conn.outbuf += line;
        conn.outbuf += '\n';
      }
    }

    // Listener.
    if (listener >= 0) {
      if (fds[idx].revents & POLLIN) {
        for (;;) {
          const int cfd = accept(listener, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          set_cloexec(cfd);
          Connection conn;
          conn.id = next_conn_id++;
          conn_fds[conn.id] = cfd;
          conns[cfd] = std::move(conn);
        }
      }
      ++idx;
    }

    // Clients.
    std::vector<int> dead;
    for (; idx < fds.size(); ++idx) {
      const int fd = fds[idx].fd;
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      Connection& conn = it->second;

      if (fds[idx].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with unread data still delivers POLLIN first on
        // Linux; by the time only HUP remains the peer is gone.
        if ((fds[idx].revents & POLLIN) == 0) {
          dead.push_back(fd);
          continue;
        }
      }

      if (fds[idx].revents & POLLIN) {
        char buf[4096];
        for (;;) {
          const ssize_t n = read(fd, buf, sizeof buf);
          if (n > 0) {
            conn.inbuf.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            dead.push_back(fd);
          }
          break;  // n < 0: EAGAIN (done) or error (caught on next poll)
        }
        // Process complete lines. Oversized lines are DRAINED, never
        // fatal: the whole line (however it arrives) is consumed
        // through its newline before the one request_too_large error is
        // queued, so pipelined requests behind it stay in sync.
        std::size_t start = 0;
        if (conn.discarding) {
          const std::size_t nl = conn.inbuf.find('\n');
          if (nl == std::string::npos) {
            conn.inbuf.clear();  // still mid-line; keep swallowing
          } else {
            conn.outbuf += kTooLargeLine;
            conn.discarding = false;
            start = nl + 1;
          }
        }
        if (!conn.discarding) {
          for (;;) {
            const std::size_t nl = conn.inbuf.find('\n', start);
            if (nl == std::string::npos) break;
            std::string line = conn.inbuf.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            if (line.size() > cfg.max_line_bytes) {
              // Fully received and consumed; reject it and move on.
              conn.outbuf += kTooLargeLine;
              continue;
            }
            const std::uint64_t conn_id = conn.id;
            service.submit_line(
                line, [&completions, conn_id](std::string response) {
                  completions.push(conn_id, std::move(response));
                });
          }
          conn.inbuf.erase(0, start);
          // A fragment beyond the limit can never be a valid line;
          // switch to discard mode until its newline shows up.
          if (conn.inbuf.size() > cfg.max_line_bytes) {
            conn.discarding = true;
            conn.inbuf.clear();
          }
        }
      }

      if ((fds[idx].revents & POLLOUT) && !conn.outbuf.empty()) {
        // Fault point at the transport boundary: an armed fault is a
        // dead peer — the connection closes cleanly, the daemon and
        // every other connection keep serving.
        if (faultpoint_should_fail("transport.write")) {
          dead.push_back(fd);
          continue;
        }
        const ssize_t n =
            write(fd, conn.outbuf.data(), conn.outbuf.size());
        if (n > 0) {
          conn.outbuf.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          dead.push_back(fd);
          continue;
        }
      }
      if (conn.close_after_flush && conn.outbuf.empty())
        dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);

    // Completion lines may have landed for connections that were
    // polled before the lines arrived; also a client `shutdown`
    // command flips this flag from the I/O thread itself.
    if (service.shutdown_requested()) begin_drain();
  }

  // Flush wave is done; tear down.
  for (const auto& [fd, conn] : conns) close(fd);
  if (listener >= 0) close(listener);
  close(sig_pipe[0]);
  close(sig_pipe[1]);
  close(wake_pipe[0]);
  close(wake_pipe[1]);
  g_signal_pipe_write = -1;
  if (cfg.tcp_port < 0) unlink(cfg.socket_path.c_str());
  std::printf("nahsp serve: drained, exiting\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace nahsp::serve
