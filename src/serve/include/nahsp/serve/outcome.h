// The solve-outcome model shared by the `nahsp` CLI and the `nahsp
// serve` daemon.
//
// Both front ends run the same pipeline — build_scenario, solve_hsp,
// verify against the planted truth, report — and their JSON reports
// must be byte-identical for the same (scenario, seed): the CI golden
// diff and the serve smoke test both compare a daemon response's
// `report` object against the goldens produced by `nahsp solve --json`.
// Centralising SolveOutcome and write_solve_report here is what makes
// that guarantee structural instead of a copy-paste discipline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nahsp/hsp/scenario.h"
#include "report.h"

namespace nahsp::serve {

/// \brief One solved scenario, ready for reporting: the built scenario
/// plus everything the solve produced.
struct SolveOutcome {
  hsp::BuiltScenario scenario;
  bool success = false;
  bool verified = false;
  std::string method;
  std::string error;
  /// Failure classification (solve_hsp_batch taxonomy: "oracle_error",
  /// "retry_exhausted", "cancelled", ...); empty on success and on the
  /// CLI's direct-solve path, which has no use for it.
  std::string error_kind;
  std::vector<grp::Code> generators;
  bb::QueryCounter queries;
  double seconds = 0.0;
};

/// \brief Runs the solver on a built scenario and verifies the result
/// against the planted subgroup. Failures are captured in the outcome,
/// never thrown. (The CLI's solve/selftest path.)
SolveOutcome run_scenario(hsp::BuiltScenario&& built, Rng& rng);

/// \brief Assembles an outcome from one solve_hsp_batch item — the
/// daemon's path, where the batch driver already ran and classified the
/// solve. Verification against the planted subgroup happens here.
SolveOutcome outcome_from_batch_item(hsp::BuiltScenario&& built,
                                     const hsp::BatchItemReport& item);

/// \brief Writes a QueryCounter as the report's `queries` object.
void write_queries(cli::JsonWriter& w, const bb::QueryCounter& q);

/// \brief Writes a generator list as a JSON array of codes.
void write_codes(cli::JsonWriter& w, const std::vector<grp::Code>& codes);

/// \brief Writes the full nahsp-report/v1 solve report. Field order is
/// frozen (scripts/diff_report.py rejects any deviation); both the CLI
/// `solve --json` output and the daemon's `report` payload come from
/// this one function.
void write_solve_report(cli::JsonWriter& w, const SolveOutcome& out,
                        std::uint64_t seed, std::uint64_t threads);

}  // namespace nahsp::serve
