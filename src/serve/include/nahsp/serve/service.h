// SolverService: the transport-independent core of `nahsp serve`.
//
// The service owns the request lifecycle between "one line of client
// bytes" and "one line of response bytes":
//
//   submit_line() — called on the transport's I/O thread. Parses the
//     envelope (strict JSON), answers control commands (ping, stats,
//     shutdown) synchronously, and admits solve jobs to a bounded
//     queue — or rejects them with a structured error (bad_json,
//     bad_request, queue_full, shutting_down). Admission is cheap; no
//     solver work happens on the I/O thread.
//
//   dispatcher thread — drains the queue in micro-batches and runs
//     each batch through hsp::solve_hsp_batch, which fans the
//     instances across a pool of `workers` threads. Each request gets
//     its own CancelToken (armed with the request's timeout at
//     dispatch) and its own RNG: `seed=` in the spec reproduces the
//     CLI run bit-for-bit; without it the request draws the next
//     SplitRng(base_seed) stream, so concurrent jobs never share
//     randomness. Responses are handed to the per-request Responder,
//     which may be called from the dispatcher thread — transports must
//     marshal back to their I/O loop themselves.
//
// Cross-request cache: completed outcomes are stored in an LRU keyed
// by the instance fingerprint — family + canonicalized (resolved)
// params + sampler backend + dispatcher budgets, seed excluded —
// because scenario construction is deterministic: the same fingerprint
// names the same planted instance. A hit replays the original run's
// full report (its seed, its query counts) with `"cached": true` in
// the envelope. Timed-out and cancelled runs are never cached; a
// completed solver failure (e.g. oracle_error) is, since it is as
// deterministic as a success.
//
// Every malformed input maps to an error response, never an exception
// out of submit_line and never a crash.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nahsp/common/budget.h"
#include "nahsp/common/cancel.h"
#include "nahsp/common/rng.h"
#include "nahsp/common/timer.h"
#include "nahsp/serve/lru_cache.h"

namespace nahsp::serve {

/// \brief Tuning for a SolverService instance.
struct ServiceConfig {
  /// Solver fan-out width per micro-batch (hsp::BatchOptions::threads).
  int workers = 2;
  /// Admission-queue bound; a full queue rejects with `queue_full`.
  std::size_t queue_limit = 64;
  /// LRU capacity in entries; 0 disables the cache.
  std::size_t cache_capacity = 128;
  /// Default per-request wall-clock budget in ms; 0 = unlimited. A
  /// request's `timeout_ms` field overrides it. The clock starts at
  /// dispatch (queue wait does not count against the budget).
  std::uint64_t default_timeout_ms = 0;
  /// Base seed for the per-request SplitRng streams handed to requests
  /// that do not pin `seed=` themselves.
  std::uint64_t base_seed = 0x5e12e5eedULL;
  /// Byte budget for priced admission (`nahsp serve --max-mem`). When
  /// nonzero the service installs it as the global ResourceBudget limit
  /// for its lifetime (restoring the prior limit on destruction — run
  /// one budgeted service per process), prices every solve request at
  /// submit time via hsp::estimate_scenario_bytes, and sheds with a
  /// structured `over_budget` error when the priced ledger of queued +
  /// in-flight work would exceed it. 0 (the default) disables pricing
  /// entirely; admission behaves exactly as before.
  std::uint64_t max_mem_bytes = 0;
  /// Dispatcher-side retry budget for solves that fail with a TRANSIENT
  /// resource_error (a reservation race); 0 disables retries.
  int retry_attempts = 3;
  /// First backoff delay; retry k sleeps retry_base_ms << (k-1).
  std::uint64_t retry_base_ms = 10;
  /// Path for the crash-safe cache snapshot (JSONL, schema
  /// "nahsp-serve-cache/v1"); "" disables persistence. Loaded on
  /// construction (a stale schema or torn tail degrades to an empty or
  /// truncated cache, never a failed start), rewritten atomically
  /// (tmp + rename) on destruction and periodically while serving.
  std::string cache_file;
  /// Snapshot the cache after every N dispatched jobs (when cache_file
  /// is set); the drain snapshot always runs regardless.
  std::uint64_t snapshot_every = 32;
};

/// \brief Counters for the `stats` endpoint. All cumulative since
/// service start except queue_depth / in_flight (instantaneous).
struct ServiceStats {
  double uptime_seconds = 0.0;
  std::uint64_t jobs_received = 0;   ///< solve jobs admitted to the queue
  std::uint64_t jobs_completed = 0;  ///< solve ran to completion (ok)
  std::uint64_t jobs_failed = 0;     ///< solver/timeout/spec failures
  std::uint64_t jobs_rejected = 0;   ///< bad_json/bad_request/queue_full/...
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  std::uint64_t jobs_shed = 0;     ///< over_budget admission rejects
  std::uint64_t retries = 0;       ///< dispatcher backoff retries run
  std::uint64_t priced_pending_bytes = 0;  ///< ledgered queued+in-flight
  std::uint64_t cache_loaded = 0;  ///< entries reloaded from a snapshot
  std::uint64_t cache_snapshots = 0;  ///< snapshots written successfully
};

/// \brief The daemon core. Construction starts the dispatcher thread;
/// destruction drains and joins it.
class SolverService {
 public:
  /// Delivers one complete response line (no trailing newline). May be
  /// invoked from the I/O thread (synchronous rejections, control
  /// commands, cache hits) or from the dispatcher thread (solve
  /// results) — implementations must be safe for both.
  using Responder = std::function<void(std::string line)>;

  explicit SolverService(const ServiceConfig& cfg);
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// \brief Handles one request line end-to-end (see file comment).
  void submit_line(const std::string& line, Responder respond);

  /// \brief Stops admitting new solve jobs (they get `shutting_down`);
  /// queued and in-flight jobs still run to completion.
  void begin_drain();

  /// \brief Fires every queued and in-flight request's CancelToken with
  /// Reason::kShutdown — the fast path for a second SIGTERM. Queued
  /// jobs are answered `cancelled` without running.
  void cancel_all();

  /// \brief True once the queue is empty and no batch is in flight.
  bool idle() const;

  /// \brief Blocks until idle() (drain support for transports).
  void wait_idle();

  /// \brief True once a client issued the `shutdown` command; the
  /// transport polls this to begin its own drain.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;

 private:
  struct Job {
    std::string spec_line;   // "family key=value ..." (already non-empty)
    std::string id_json;     // client id, serialized token ("" = absent)
    std::uint64_t timeout_ms = 0;
    std::uint64_t stream_index = 0;  // admission order, names the RNG stream
    std::uint64_t priced_bytes = 0;  // admission price held in the ledger
    std::shared_ptr<CancelToken> token;
    Responder respond;
  };

  /// Cached response payload: either a full report (result envelope) or
  /// a structured solver error.
  struct CacheEntry {
    bool ok = false;
    std::string report_json;  // compact, iff ok
    std::string error_code;   // iff !ok
    std::string error_message;
  };

  void dispatcher_main();
  void run_batch(std::vector<Job>&& jobs);
  /// Rewrites the cache snapshot (tmp + rename); failures (including an
  /// armed `cache.snapshot` fault point) keep the previous snapshot.
  void snapshot_cache();
  /// Loads cfg_.cache_file under mu_; returns entries restored.
  std::size_t load_cache_snapshot_locked();

  ServiceConfig cfg_;
  Timer uptime_;
  /// Installs cfg_.max_mem_bytes as the global budget limit for the
  /// service's lifetime (nullptr when pricing is off).
  std::unique_ptr<ScopedBudgetLimit> budget_limit_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // dispatcher wakes on work/stop
  std::condition_variable idle_cv_;   // wait_idle wakes on quiescence
  std::deque<Job> queue_;
  std::vector<std::shared_ptr<CancelToken>> in_flight_tokens_;
  bool draining_ = false;
  bool stop_ = false;
  std::size_t in_flight_ = 0;
  std::uint64_t next_stream_index_ = 0;
  std::uint64_t jobs_received_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t priced_pending_ = 0;  // bytes ledgered (queued + in flight)
  std::uint64_t cache_loaded_ = 0;
  std::uint64_t cache_snapshots_ = 0;
  std::uint64_t jobs_since_snapshot_ = 0;  // dispatcher-thread only
  LruCache<std::string, CacheEntry> cache_;
  std::atomic<bool> shutdown_requested_{false};

  /// Per-request RNG streams for seedless requests; dispatcher-thread
  /// only (the stream cache grows incrementally, one jump per request).
  SplitRng streams_;

  std::thread dispatcher_;
};

}  // namespace nahsp::serve
