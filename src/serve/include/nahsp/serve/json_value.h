// Strict, minimal JSON reader for the `nahsp serve` wire protocol.
//
// The daemon accepts one JSON object per line from untrusted clients,
// so the parser is deliberately strict where the standard allows
// latitude and where leniency would hide client bugs: duplicate object
// keys are rejected (a request meaning is ambiguous otherwise), the
// non-standard NaN/Infinity tokens are rejected, nesting depth is
// capped, and trailing bytes after the document are an error. Numbers
// keep their raw source text so integer fields can be read back exactly
// (no double round-trip for u64 seeds).
//
// This is a reader only — responses are produced by cli::JsonWriter.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nahsp::serve {

/// \brief Thrown on malformed input; the message carries a byte offset
/// ("at byte N") so clients can locate the defect in their request.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief One parsed JSON value (tree-owning, no sharing).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers: both the parsed double and the raw token ("17", "-2.5e3")
  /// — as_u64() re-parses the token so 64-bit integers survive exactly.
  double number_value = 0.0;
  std::string number_raw;
  std::string string_value;
  std::vector<JsonValue> array_items;
  /// Object members in document order (duplicates rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> object_members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// \brief Member lookup on an object; nullptr when absent (or when
  /// this value is not an object).
  const JsonValue* find(std::string_view key) const;

  /// \brief The value as an exact u64. Throws JsonParseError unless
  /// this is a number whose raw token is a plain non-negative decimal
  /// integer in range (rejects "-1", "1.5", "1e3", 2^64).
  std::uint64_t as_u64() const;
};

/// \brief Parses exactly one JSON document from `text` (trailing
/// whitespace allowed, anything else is an error). Throws
/// JsonParseError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace nahsp::serve
