// Forwarder: the strict wire-JSON reader moved to nahsp/common/json.h
// so the hsp layer's checkpoint reload can parse records through the
// same code path (see that header for the strictness contract). This
// header keeps the historical nahsp::serve spellings working.
#pragma once

#include "nahsp/common/json.h"

namespace nahsp::serve {

using JsonParseError = ::nahsp::JsonParseError;
using JsonValue = ::nahsp::JsonValue;
using ::nahsp::parse_json;

}  // namespace nahsp::serve
