// The `nahsp serve` transport: a poll()-based, single-threaded I/O loop
// in front of SolverService.
//
// One listener (Unix-domain socket by default, loopback TCP with
// --port), N client connections, newline-delimited requests in,
// newline-delimited responses out. The I/O thread never runs solver
// work — it parses lines, hands them to the service, and flushes
// responses; solve results come back from the dispatcher thread through
// a completion queue plus a wake pipe that makes poll() return.
//
// Signals: SIGINT/SIGTERM write one byte to a self-pipe (the only
// async-signal-safe thing the handler does). The first signal starts a
// graceful drain — stop accepting, answer the queue, flush, exit 0.
// A second signal cancels in-flight solves (their tokens fire with
// Reason::kShutdown) and exits as soon as the responses are flushed.
#pragma once

#include <cstdint>
#include <string>

#include "nahsp/serve/service.h"

namespace nahsp::serve {

/// \brief Transport configuration for run_server.
struct ServerConfig {
  /// Unix-domain socket path; used unless tcp_port >= 0. A stale socket
  /// file from a dead server is detected (connect refused) and removed.
  std::string socket_path;
  /// When >= 0: listen on 127.0.0.1:tcp_port instead (0 picks an
  /// ephemeral port; the chosen port is in the startup line).
  int tcp_port = -1;
  /// Hard per-line bound; longer requests are answered with a
  /// request_too_large error and the connection is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Solver-side tuning, forwarded to SolverService.
  ServiceConfig service;
};

/// \brief Runs the daemon until a signal or a client `shutdown`
/// command, then drains and returns the process exit code (0 on a clean
/// drain, 1 on a transport-level failure such as an unusable socket).
/// Prints one startup line — "nahsp serve: listening on ..." — to
/// stdout once the listener is ready.
int run_server(const ServerConfig& cfg);

}  // namespace nahsp::serve
