// Bounded least-recently-used cache used by the `nahsp serve` daemon to
// answer repeated instances without re-running the solver.
//
// Classic list + hash-index layout: the list holds (key, value) pairs
// in recency order (front = most recent), the map points each key at
// its list node, so get/put are O(1) with one splice per touch. The
// cache also keeps the hit/miss/eviction counters the daemon's `stats`
// endpoint reports — they belong here because a cache whose
// effectiveness can't be observed can't be sized.
//
// Not thread-safe by itself; the service serializes access under its
// own mutex (one lock for cache + stats keeps the counters coherent
// with the entries they describe).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace nahsp::serve {

/// \brief O(1) LRU map with observability counters. Capacity 0 disables
/// the cache entirely (every get misses, put is a no-op) — the daemon's
/// `--cache 0` switch.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// \brief Looks `key` up; a hit promotes the entry to most-recent and
  /// returns a pointer valid until the next put(). Counts hit or miss.
  const Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    items_.splice(items_.begin(), items_, it->second);
    ++hits_;
    return &it->second->second;
  }

  /// \brief Inserts or replaces `key`, making it most-recent; evicts
  /// the least-recent entry when over capacity.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(key, items_.begin());
    if (items_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
      ++evictions_;
    }
  }

  /// \brief Visits every entry oldest-first (reverse recency). This is
  /// the order a persistence layer writes a snapshot in, so replaying
  /// it through put() rebuilds both the entries and their recency.
  template <typename Fn>
  void for_each_oldest_first(Fn&& fn) const {
    for (auto it = items_.rbegin(); it != items_.rend(); ++it)
      fn(it->first, it->second);
  }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> items_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nahsp::serve
