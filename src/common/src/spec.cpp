#include "nahsp/common/spec.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nahsp {

namespace {

[[noreturn]] void spec_fail(const std::string& msg) {
  throw std::invalid_argument("spec error: " + msg);
}

bool valid_key(std::string_view key) {
  if (key.empty()) return false;
  const auto head = static_cast<unsigned char>(key[0]);
  if (!std::isalpha(head) && key[0] != '_') return false;
  for (const char c : key.substr(1)) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

std::vector<std::string> split_tokens(std::string_view line) {
  // `#` comments run to the end of the line.
  if (const auto hash = line.find('#'); hash != std::string_view::npos)
    line = line.substr(0, hash);
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

void SpecMap::set(std::string key, std::string value) {
  if (!valid_key(key))
    spec_fail("invalid key '" + key +
              "' (keys match [A-Za-z_][A-Za-z0-9_]*)");
  if (find(key) != nullptr) spec_fail("duplicate key '" + key + "'");
  if (value.empty()) spec_fail("key '" + key + "' has an empty value");
  entries_.push_back(Entry{std::move(key), std::move(value), false});
}

const SpecMap::Entry* SpecMap::find(std::string_view key) const {
  for (const Entry& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

bool SpecMap::has(std::string_view key) const { return find(key) != nullptr; }

std::uint64_t SpecMap::get_u64(std::string_view key, std::uint64_t def,
                               std::uint64_t min, std::uint64_t max) {
  std::uint64_t value = def;
  if (const Entry* e = find(key); e != nullptr) {
    e->consumed = true;
    try {
      value = parse_spec_u64(e->value);
    } catch (const std::invalid_argument& cause) {
      // Keep parse_spec_u64's specific cause (sign, whitespace,
      // overflow, trailing junk) — the generic "not an unsigned
      // integer" hid what was actually wrong with the literal.
      spec_fail("key '" + std::string(key) + "': " + cause.what());
    }
  }
  if (value < min || value > max) {
    std::ostringstream os;
    os << "key '" << key << "': value " << value << " out of range ["
       << min << ", " << max << "]";
    spec_fail(os.str());
  }
  return value;
}

std::string SpecMap::get_string(std::string_view key, std::string def) {
  if (const Entry* e = find(key); e != nullptr) {
    e->consumed = true;
    return e->value;
  }
  return def;
}

std::vector<std::string> SpecMap::unconsumed_keys() const {
  std::vector<std::string> keys;
  for (const Entry& e : entries_)
    if (!e.consumed) keys.push_back(e.key);
  return keys;
}

void SpecMap::require_all_consumed(
    std::string_view context,
    const std::vector<std::string>& known_keys) const {
  const auto stray = unconsumed_keys();
  if (stray.empty()) return;
  std::ostringstream os;
  os << "unknown key" << (stray.size() > 1 ? "s" : "") << " for " << context
     << ":";
  for (const std::string& k : stray) os << " '" << k << "'";
  os << "; accepted keys:";
  if (known_keys.empty()) os << " (none)";
  for (const std::string& k : known_keys) os << " " << k;
  spec_fail(os.str());
}

std::vector<std::pair<std::string, std::string>> SpecMap::entries() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.key, e.value);
  return out;
}

namespace {

[[noreturn]] void u64_fail(std::string_view text, std::string_view why) {
  throw std::invalid_argument("not an unsigned integer: '" +
                              std::string(text) + "' (" + std::string(why) +
                              ")");
}

}  // namespace

std::uint64_t parse_spec_u64(std::string_view text) {
  // Each rejection names its cause: callers surface these messages
  // verbatim (CLI diagnostics, serve error responses), and "value out
  // of range" reads very differently from "stray space in value".
  if (text.empty()) u64_fail(text, "empty");
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)))
      u64_fail(text, "contains whitespace");
  }
  // from_chars already rejects '+' and (for unsigned) '-', but the
  // generic message would blame the "digits"; call out the sign.
  if (text[0] == '+' || text[0] == '-')
    u64_fail(text, "sign characters are not accepted");
  int base = 10;
  std::string_view digits = text;
  if (digits.size() > 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    base = 16;
    digits = digits.substr(2);
  }
  std::uint64_t value = 0;
  const auto* end = digits.data() + digits.size();
  const auto [ptr, ec] = std::from_chars(digits.data(), end, value, base);
  if (ec == std::errc::result_out_of_range)
    u64_fail(text, "overflows the 64-bit unsigned range");
  if (ec != std::errc{})
    u64_fail(text, base == 16 ? "expected hex digits after 0x"
                              : "expected decimal digits");
  // A partial parse ("12x", "0x12g") must not silently truncate.
  if (ptr != end) u64_fail(text, "trailing characters after the digits");
  return value;
}

ScenarioSpec parse_scenario_spec(const std::vector<std::string>& tokens) {
  if (tokens.empty()) spec_fail("empty spec (expected: <scenario> [key=value ...])");
  ScenarioSpec spec;
  spec.scenario = tokens.front();
  if (spec.scenario.find('=') != std::string::npos)
    spec_fail("first token '" + spec.scenario +
              "' looks like key=value; a spec starts with the scenario name");
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      spec_fail("token '" + tok + "' is not of the form key=value");
    spec.params.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return spec;
}

ScenarioSpec parse_scenario_line(std::string_view line) {
  return parse_scenario_spec(split_tokens(line));
}

std::vector<ScenarioSpec> parse_scenario_stream(std::istream& in,
                                                std::string_view source_name) {
  std::vector<ScenarioSpec> specs;
  std::string line;
  for (int line_no = 1; std::getline(in, line); ++line_no) {
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;  // blank or comment-only line
    try {
      specs.push_back(parse_scenario_spec(tokens));
    } catch (const std::invalid_argument& e) {
      std::ostringstream os;
      os << source_name << ":" << line_no << ": " << e.what();
      throw std::invalid_argument(os.str());
    }
  }
  return specs;
}

std::vector<ScenarioSpec> parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) spec_fail("cannot open scenario file '" + path + "'");
  return parse_scenario_stream(in, path);
}

std::string to_string(const ScenarioSpec& spec) {
  std::string out = spec.scenario;
  for (const auto& [key, value] : spec.params.entries()) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

}  // namespace nahsp
