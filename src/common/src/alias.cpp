#include "nahsp/common/alias.h"

#include <cmath>

#include "nahsp/common/check.h"

namespace nahsp {

AliasTable::AliasTable(const std::vector<double>& weights) {
  NAHSP_REQUIRE(!weights.empty(), "alias table needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    NAHSP_REQUIRE(std::isfinite(w) && w >= 0.0,
                  "alias weights must be finite and non-negative");
    total += w;
  }
  NAHSP_REQUIRE(std::isfinite(total),
                "alias weights must have a finite total");
  NAHSP_REQUIRE(total > 0.0, "alias weights must not all be zero");

  const std::size_t n = weights.size();

  // One weight: the distribution is a point mass. Handled exactly (no
  // scaled division, no stacks) — the single column is always full.
  if (n == 1) {
    prob_.assign(1, 1.0);
    alias_.assign(1, 0);
    return;
  }

  // Vose's method: split the columns into under- and over-full relative
  // to the uniform height 1/n, then pair each under-full column with an
  // over-full donor.
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = i;

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] / total * static_cast<double>(n);

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    const std::size_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Rounding leftovers on either stack are full columns.
  for (const std::size_t i : small) prob_[i] = 1.0;
  for (const std::size_t i : large) prob_[i] = 1.0;
}

double AliasTable::probability(std::size_t i) const {
  // Column i contributes prob_[i]/n; every column aliased to i
  // contributes its leftover (1 - prob_[j])/n.
  double p = prob_[i];
  for (std::size_t j = 0; j < alias_.size(); ++j) {
    if (alias_[j] == i && j != i) p += 1.0 - prob_[j];
  }
  return p / static_cast<double>(prob_.size());
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = rng.below(prob_.size());
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

}  // namespace nahsp
