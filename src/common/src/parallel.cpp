#include "nahsp/common/parallel.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "nahsp/common/check.h"

namespace nahsp {

namespace {

// Set while a thread (worker or submitter) is executing pool chunks;
// parallel regions opened under it run inline instead of re-entering
// the pool.
thread_local bool t_in_worker = false;

}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::TaskScope::TaskScope() : prev_(t_in_worker) {
  t_in_worker = true;
}

ThreadPool::TaskScope::~TaskScope() { t_in_worker = prev_; }

ThreadPool::ThreadPool(int threads) : n_(threads) {
  NAHSP_REQUIRE(threads >= 1 && threads <= 256,
                "thread count must be in [1, 256]");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

// Claims and executes chunks of `job` until none remain or a chunk has
// failed. Exceptions are recorded once; later chunks are abandoned.
void ThreadPool::run_chunks(Job& job) {
  TaskScope scope;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n_chunks) return;
    if (!job.failed.load(std::memory_order_relaxed)) {
      const std::size_t lo = job.begin + i * job.grain;
      const std::size_t hi = std::min(lo + job.grain, job.end);
      try {
        (*job.body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.error_mutex);
        if (!job.failed.exchange(true, std::memory_order_relaxed)) {
          job.error = std::current_exception();
        }
      }
    }
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(job_mutex_);
      job_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      if (job != nullptr) ++in_flight_;  // pointer + count move together
    }
    if (job == nullptr) continue;  // job already drained
    run_chunks(*job);
    {
      std::lock_guard<std::mutex> lk(job_mutex_);
      --in_flight_;
    }
    done_cv_.notify_one();
  }
}

// Multi-chunk submission: the template fast paths in the header have
// already peeled off width-1 / single-chunk / nested execution.
void ThreadPool::dispatch(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t range = end - begin;
  std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.n_chunks = (range + grain - 1) / grain;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    job_ = &job;
    ++generation_;
  }
  job_cv_.notify_all();
  run_chunks(job);  // the submitter is worker number n
  {
    // Retract the job so no further worker can pick it up, then wait for
    // every worker that already holds the pointer to leave run_chunks —
    // only then is the stack-allocated Job safe to destroy.
    std::unique_lock<std::mutex> lk(job_mutex_);
    job_ = nullptr;
    done_cv_.wait(lk, [&] {
      return in_flight_ == 0 &&
             job.completed.load(std::memory_order_acquire) == job.n_chunks;
    });
  }
  if (job.failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(job.error);
  }
}

namespace {

int hardware_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(std::min(hw, 256u)) : 1;
}

int default_parallelism() {
  const char* env = std::getenv("NAHSP_THREADS");
  if (env == nullptr) return hardware_parallelism();
  // Strict parse: digits only (no sign, no whitespace, no trailing
  // junk — "4x" must not silently run with 4 threads), value in
  // [1, 256] like set_parallelism. Anything else warns once on stderr
  // and falls back to the hardware default instead of being ignored.
  const std::string_view s(env);
  bool digits_only = !s.empty();
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) digits_only = false;
  }
  long v = 0;
  if (digits_only) {
    char* end = nullptr;
    errno = 0;
    v = std::strtol(env, &end, 10);
    if (errno == ERANGE) v = 0;  // out of long's range -> invalid
  }
  if (!digits_only || v < 1 || v > 256) {
    const int fallback = hardware_parallelism();
    std::fprintf(stderr,
                 "nahsp: warning: ignoring NAHSP_THREADS=\"%s\" (expected "
                 "an integer in [1, 256]); using %d\n",
                 env, fallback);
    return fallback;
  }
  return static_cast<int>(v);
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(default_parallelism());
  return pool;
}

}  // namespace

ThreadPool& global_pool() { return *global_pool_slot(); }

int parallelism() { return global_pool().size(); }

void set_parallelism(int n) {
  NAHSP_REQUIRE(n >= 1 && n <= 256, "thread count must be in [1, 256]");
  auto& slot = global_pool_slot();
  if (slot->size() == n) return;
  slot = std::make_unique<ThreadPool>(n);
}

}  // namespace nahsp
