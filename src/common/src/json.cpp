#include "nahsp/common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nahsp {
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent(std::size_t depth) {
  if (style_ == Style::kCompact) return;
  for (std::size_t i = 0; i < depth; ++i) os_ << "  ";
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (style_ == Style::kCompact) {
    if (top.count > 0) os_ << ",";
  } else {
    os_ << (top.count > 0 ? ",\n" : "\n");
    indent(stack_.size());
  }
  ++top.count;
}

void JsonWriter::begin_object() {
  prefix();
  os_ << "{";
  stack_.push_back(Level{false, 0});
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().is_array)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0 && style_ != Style::kCompact) {
    os_ << "\n";
    indent(stack_.size());
  }
  os_ << "}";
}

void JsonWriter::begin_array() {
  prefix();
  os_ << "[";
  stack_.push_back(Level{true, 0});
}

void JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().is_array)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0 && style_ != Style::kCompact) {
    os_ << "\n";
    indent(stack_.size());
  }
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back().is_array)
    throw std::logic_error("JsonWriter: key outside an object");
  prefix();
  os_ << '"' << json_escape(k)
      << (style_ == Style::kCompact ? "\":" : "\": ");
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  prefix();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(std::uint64_t v) {
  prefix();
  os_ << v;
}

void JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  prefix();
  // JSON has no NaN/Infinity literals; "%.9g" would print `nan`/`inf`
  // and yield an unparseable document. Emit null for non-finite values.
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
}

void JsonWriter::finish() {
  if (!stack_.empty())
    throw std::logic_error("JsonWriter: finish with open containers");
  os_ << "\n";
}

// ------------------------------------------------------------- reader
namespace {

// Recursive-descent parser over a string_view with explicit position
// tracking for diagnostics. Depth is capped: the daemon parses client
// bytes, and unbounded nesting is a stack-overflow vector.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError(msg + " at byte " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string_value = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        // NaN / Infinity land here too: not JSON, rejected like any
        // other stray token.
        fail("unexpected character");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (v.find(key) != nullptr)
        fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      v.object_members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("invalid number");
    // Leading zeros are not JSON ("01").
    if (peek() == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
      fail("leading zero in number");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("digits required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("digits required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_raw = std::string(text_.substr(start, pos_ - start));
    v.number_value = std::strtod(v.number_raw.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object_members)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber)
    throw JsonParseError("expected an unsigned integer");
  std::uint64_t value = 0;
  const char* begin = number_raw.data();
  const char* end = begin + number_raw.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  // Any non-digit in the raw token ("-1", "1.5", "1e3") leaves ptr
  // short of the end; out-of-range sets the error code.
  if (ec != std::errc{} || ptr != end)
    throw JsonParseError("expected an unsigned 64-bit integer, got '" +
                         number_raw + "'");
  return value;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace nahsp
