#include "nahsp/common/rng.h"

#include "nahsp/common/check.h"

namespace nahsp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  NAHSP_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire-style rejection via threshold keeps the distribution exact.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  NAHSP_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  return lo + below(span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

void Rng::jump() {
  // Standard xoshiro256** jump polynomial (Blackman & Vigna): advances
  // the state by exactly 2^128 calls of operator().
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::split() {
  Rng child(0);
  for (auto& w : child.s_) w = (*this)();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace nahsp
