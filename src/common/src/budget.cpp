#include "nahsp/common/budget.h"

#include <sstream>

namespace nahsp {

ResourceBudget& ResourceBudget::global() {
  static ResourceBudget ledger;
  return ledger;
}

Reservation ResourceBudget::reserve(std::uint64_t bytes,
                                    const std::string& what) {
  std::uint64_t limit = 0;
  std::uint64_t available = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (limit_ == 0 || bytes <= available_locked()) {
      reserved_ += bytes;
      return Reservation(this, bytes);
    }
    limit = limit_;
    available = available_locked();
  }
  const bool transient = bytes <= limit;
  std::ostringstream os;
  os << "resource budget exceeded for " << what << ": " << bytes
     << " bytes requested, " << available << " available of a " << limit
     << "-byte limit"
     << (transient ? " (transient: concurrent reservations hold the "
                     "headroom; retry later)"
                   : " (permanent: the request can never fit this limit)");
  throw resource_error(os.str(), bytes, limit, available, transient);
}

Reservation ResourceBudget::try_reserve(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (limit_ != 0 && bytes > available_locked()) return Reservation();
  reserved_ += bytes;
  return Reservation(this, bytes);
}

}  // namespace nahsp
