#include "nahsp/common/jsonl.h"

#include "nahsp/common/faultpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nahsp {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("jsonl: " + std::string(what) + " '" + path +
                           "': " + std::strerror(errno));
}

// Sync the directory entry so a freshly created file survives a crash.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return;  // best effort: not all filesystems allow it
  (void)::fsync(dfd);
  ::close(dfd);
}

}  // namespace

JsonlWriter::JsonlWriter(const std::string& path) : path_(path) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  // O_RDWR (not O_WRONLY): opening must be able to read the tail back
  // to detect and discard a torn final line before the first append.
  fd_ = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) fail(path_, "cannot open");
  if (!existed) fsync_parent_dir(path_);
  discard_torn_tail();
}

// If the file does not end in '\n', a previous writer died mid-append.
// Truncate back to the last complete line so the next append starts a
// fresh record instead of concatenating onto the torn bytes (which
// would corrupt an otherwise-parseable line). Readers already skip the
// torn tail, so discarding it loses nothing durable.
void JsonlWriter::discard_torn_tail() {
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) fail(path_, "cannot seek in");
  if (size == 0) return;
  char last = '\0';
  if (::pread(fd_, &last, 1, size - 1) != 1) fail(path_, "cannot read");
  if (last == '\n') return;
  // Scan backwards in chunks for the last newline; torn tails are at
  // most one record long, so this terminates almost immediately.
  off_t keep = 0;  // bytes to keep: position just past the last '\n'
  char buf[4096];
  for (off_t end = size; end > 0 && keep == 0;) {
    const off_t start =
        end > static_cast<off_t>(sizeof(buf)) ? end - sizeof(buf) : 0;
    const ssize_t n = ::pread(fd_, buf, end - start, start);
    if (n < 0) fail(path_, "cannot read");
    for (ssize_t i = n - 1; i >= 0; --i) {
      if (buf[i] == '\n') {
        keep = start + i + 1;
        break;
      }
    }
    end = start;
  }
  if (::ftruncate(fd_, keep) != 0) fail(path_, "cannot truncate");
  if (::fdatasync(fd_) != 0) fail(path_, "fdatasync failed on");
}

JsonlWriter::~JsonlWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JsonlWriter::append(std::string_view line) {
  if (line.find('\n') != std::string_view::npos)
    throw std::invalid_argument("jsonl: record must not contain a newline");
  // Fault point BEFORE the write: the record is either fully durable or
  // entirely absent, exactly like a crash between appends. Callers see
  // the same std::runtime_error a real write failure raises.
  if (faultpoint_should_fail("ckpt.append"))
    throw std::runtime_error("jsonl: injected fault (ckpt.append) on '" +
                             path_ + "'");
  std::string buf(line);
  buf += '\n';
  // O_APPEND makes each write land at the current end of file; loop for
  // short writes and EINTR so the record is complete before the sync.
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, "write failed on");
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd_) != 0) fail(path_, "fdatasync failed on");
}

JsonlFile read_jsonl(const std::string& path) {
  JsonlFile out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;  // absent file == no records
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      out.torn_tail = true;
      out.torn_text = text.substr(pos);
      break;
    }
    out.lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

}  // namespace nahsp
