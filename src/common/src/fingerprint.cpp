#include "nahsp/common/fingerprint.h"

#include <stdexcept>

namespace nahsp {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t shard_of(std::string_view fingerprint, std::size_t num_shards) {
  if (num_shards == 0)
    throw std::invalid_argument("shard_of: num_shards must be >= 1");
  return static_cast<std::size_t>(fnv1a64(fingerprint) % num_shards);
}

}  // namespace nahsp
