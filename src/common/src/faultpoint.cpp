#include "nahsp/common/faultpoint.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace nahsp {

namespace detail {
std::atomic<bool> g_faultpoints_armed{false};
}  // namespace detail

namespace {

struct FaultRule {
  std::uint64_t nth = 1;    // 1-based hit index of the first failure
  std::uint64_t count = 1;  // consecutive failing hits from `nth`
  std::uint64_t hits = 0;   // traversals recorded since arming
};

std::mutex g_mu;
std::unordered_map<std::string, FaultRule> g_rules;

std::uint64_t parse_count(const std::string& text, const std::string& spec) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("NAHSP_FAULT: malformed count in '" + spec +
                                "' (grammar: point:nth[:count],...)");
  const std::uint64_t v = std::strtoull(text.c_str(), nullptr, 10);
  if (v == 0)
    throw std::invalid_argument("NAHSP_FAULT: counts must be >= 1 in '" +
                                spec + "'");
  return v;
}

// Parses the spec into g_rules (caller holds g_mu).
void load_spec_locked(const std::string& spec) {
  g_rules.clear();
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t c1 = item.find(':');
    if (c1 == std::string::npos || c1 == 0)
      throw std::invalid_argument("NAHSP_FAULT: malformed rule '" + item +
                                  "' (grammar: point:nth[:count],...)");
    FaultRule rule;
    const std::size_t c2 = item.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      rule.nth = parse_count(item.substr(c1 + 1), item);
    } else {
      rule.nth = parse_count(item.substr(c1 + 1, c2 - c1 - 1), item);
      rule.count = parse_count(item.substr(c2 + 1), item);
    }
    g_rules[item.substr(0, c1)] = rule;
  }
  detail::g_faultpoints_armed.store(!g_rules.empty(),
                                    std::memory_order_relaxed);
}

// Arms from NAHSP_FAULT at program start — the armed flag must be set
// before the first call-site guard runs, and guards only reach the
// parser once the flag is up. A malformed value cannot throw from a
// static initializer, so it disarms with a diagnostic instead.
struct EnvArm {
  EnvArm() {
    const char* env = std::getenv("NAHSP_FAULT");
    if (env == nullptr || env[0] == '\0') return;
    std::lock_guard<std::mutex> lk(g_mu);
    try {
      load_spec_locked(env);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "warning: %s; fault injection disarmed\n",
                   e.what());
      g_rules.clear();
      detail::g_faultpoints_armed.store(false, std::memory_order_relaxed);
    }
  }
} g_env_arm;

}  // namespace

namespace detail {

bool faultpoint_check(const char* name) {
  std::lock_guard<std::mutex> lk(g_mu);
  const auto it = g_rules.find(name);
  if (it == g_rules.end()) return false;
  FaultRule& rule = it->second;
  ++rule.hits;
  return rule.hits >= rule.nth && rule.hits < rule.nth + rule.count;
}

}  // namespace detail

void faultpoint_reset(const std::string& spec) {
  std::lock_guard<std::mutex> lk(g_mu);
  load_spec_locked(spec);
}

std::uint64_t faultpoint_hits(const std::string& name) {
  std::lock_guard<std::mutex> lk(g_mu);
  const auto it = g_rules.find(name);
  return it == g_rules.end() ? 0 : it->second.hits;
}

}  // namespace nahsp
