// Canonical instance fingerprints and the stable shard hash.
//
// A fingerprint is a deterministic one-line rendering of everything
// that identifies a piece of work: "head|k1=v1|k2=v2|...". Two layers
// key off it — the `nahsp serve` cross-request LRU cache (equal
// fingerprints name equal planted instances, so a cached report can be
// replayed) and the sharded batch driver (a fleet item's shard is a
// pure function of its fingerprint, so adding or removing unrelated
// fleet lines never reshuffles where existing work runs or which
// checkpoint records still apply).
//
// The shard hash is FNV-1a over the fingerprint bytes. It is part of
// the checkpoint compatibility surface: changing it strands existing
// checkpoint directories (records would be looked up under the wrong
// shard), so treat it as frozen.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace nahsp {

/// \brief Builds a canonical "head|k=v|k=v" fingerprint string.
/// Append order is significant and must be deterministic at the call
/// site (e.g. declaration order of scenario parameters).
class Fingerprint {
 public:
  explicit Fingerprint(std::string_view head) : text_(head) {}

  void add(std::string_view key, std::string_view value) {
    text_ += '|';
    text_ += key;
    text_ += '=';
    text_ += value;
  }
  void add(std::string_view key, std::uint64_t value) {
    add(key, std::to_string(value));
  }

  const std::string& str() const { return text_; }

 private:
  std::string text_;
};

/// \brief 64-bit FNV-1a over `s` (offset basis 14695981039346656037,
/// prime 1099511628211).
std::uint64_t fnv1a64(std::string_view s);

/// \brief Stable shard assignment: fnv1a64(fingerprint) % num_shards.
/// Requires num_shards >= 1.
std::size_t shard_of(std::string_view fingerprint, std::size_t num_shards);

}  // namespace nahsp
