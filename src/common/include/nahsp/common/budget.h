// Process-wide resource budget: a byte ledger the allocation-heavy
// subsystems consult BEFORE allocating, so an over-budget request is a
// typed error (or a backend degrade) instead of an OOM kill.
//
// Design contract (docs/ARCHITECTURE.md, "The budget ledger"):
//  - One global ledger (`ResourceBudget::global()`), limit 0 = unlimited
//    (the default — nothing changes for callers that never set it).
//  - `reserve(bytes, what)` either returns an RAII Reservation or throws
//    `resource_error`. The error distinguishes PERMANENT (the request
//    can never fit: bytes > limit) from TRANSIENT (bytes <= limit but
//    concurrent reservations hold the headroom right now) so callers
//    can retry the latter and fail fast on the former.
//  - Determinism: admission decisions that must be reproducible (e.g.
//    the sampler factory's dense->sparse degrade) depend only on the
//    static `limit()`, never on the instantaneous `available()` — two
//    runs with the same limit make the same choices regardless of what
//    else is in flight. Only reserve() observes concurrency, and its
//    failure is typed transient so the serve dispatcher can retry it.
//  - Thread-safe; a Reservation may be released from any thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace nahsp {

/// \brief Typed failure of a resource-budget preflight or reservation.
/// Carries the numbers a structured reject needs on the wire.
class resource_error : public std::runtime_error {
 public:
  resource_error(const std::string& what, std::uint64_t requested,
                 std::uint64_t limit, std::uint64_t available,
                 bool transient)
      : std::runtime_error(what),
        requested_(requested),
        limit_(limit),
        available_(available),
        transient_(transient) {}

  std::uint64_t requested_bytes() const { return requested_; }
  std::uint64_t limit_bytes() const { return limit_; }
  std::uint64_t available_bytes() const { return available_; }
  /// True when the request fits the limit but not the current headroom
  /// (concurrent reservations) — retrying later can succeed. False
  /// means the request can never fit this limit.
  bool transient() const { return transient_; }

 private:
  std::uint64_t requested_ = 0;
  std::uint64_t limit_ = 0;
  std::uint64_t available_ = 0;
  bool transient_ = false;
};

class ResourceBudget;

/// \brief RAII hold on budget bytes. Movable, not copyable; releasing
/// (destruction or release()) returns the bytes to the ledger. A
/// default-constructed Reservation holds nothing.
class Reservation {
 public:
  Reservation() = default;
  Reservation(Reservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  Reservation& operator=(Reservation&& other) noexcept {
    if (this != &other) {
      release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  ~Reservation() { release(); }

  void release();
  std::uint64_t bytes() const { return bytes_; }
  bool holds() const { return budget_ != nullptr; }

 private:
  friend class ResourceBudget;
  Reservation(ResourceBudget* budget, std::uint64_t bytes)
      : budget_(budget), bytes_(bytes) {}

  ResourceBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// \brief Thread-safe byte ledger (see file comment for the contract).
class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// The process-wide ledger every subsystem shares.
  static ResourceBudget& global();

  /// Sets the byte limit; 0 = unlimited. Existing reservations are
  /// unaffected (they release against the ledger normally).
  void set_limit(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    limit_ = bytes;
  }

  std::uint64_t limit() const {
    std::lock_guard<std::mutex> lk(mu_);
    return limit_;
  }

  std::uint64_t reserved() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reserved_;
  }

  /// Headroom right now: limit - reserved (saturating). Unlimited
  /// ledgers report UINT64_MAX.
  std::uint64_t available() const {
    std::lock_guard<std::mutex> lk(mu_);
    return available_locked();
  }

  /// \brief Reserves `bytes` or throws resource_error (transient iff
  /// bytes <= limit). `what` names the allocation in the error text.
  /// On an unlimited ledger the reservation always succeeds (and is
  /// still tracked, so `reserved()` stays observable).
  Reservation reserve(std::uint64_t bytes, const std::string& what);

  /// \brief Non-throwing variant: an empty Reservation on failure.
  Reservation try_reserve(std::uint64_t bytes);

 private:
  friend class Reservation;
  std::uint64_t available_locked() const {
    if (limit_ == 0) return UINT64_MAX;
    return limit_ > reserved_ ? limit_ - reserved_ : 0;
  }
  void release_bytes(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    reserved_ = reserved_ > bytes ? reserved_ - bytes : 0;
  }

  mutable std::mutex mu_;
  std::uint64_t limit_ = 0;     // 0 = unlimited
  std::uint64_t reserved_ = 0;  // sum of live reservations
};

inline void Reservation::release() {
  if (budget_ != nullptr) {
    budget_->release_bytes(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }
}

/// \brief Test / scope helper: sets the global limit on construction,
/// restores the previous limit on destruction.
class ScopedBudgetLimit {
 public:
  explicit ScopedBudgetLimit(std::uint64_t bytes)
      : previous_(ResourceBudget::global().limit()) {
    ResourceBudget::global().set_limit(bytes);
  }
  ~ScopedBudgetLimit() { ResourceBudget::global().set_limit(previous_); }
  ScopedBudgetLimit(const ScopedBudgetLimit&) = delete;
  ScopedBudgetLimit& operator=(const ScopedBudgetLimit&) = delete;

 private:
  std::uint64_t previous_;
};

}  // namespace nahsp
