// Declarative scenario specs: "name key=value key=value ...".
//
// A spec names a registered scenario family plus parameter overrides,
// e.g. "wreath k=4 hidden=2 seed=7". Specs come from CLI argv tokens or
// from a `.scn` file (one spec per line, `#` comments). The parser is
// deliberately strict — malformed tokens, duplicate keys, bad numbers,
// and out-of-range values all fail with a diagnostic naming the
// offending token — because specs are the one user-facing input surface
// of the `nahsp` driver and silent defaulting would hide typos.
//
// Consumption protocol: every typed getter marks its key consumed, and
// `require_all_consumed` turns leftovers into an "unknown key" error
// listing what *would* have been accepted. The CLI consumes its
// reserved keys (seed, threads), the scenario registry consumes the
// family parameters, and anything still unclaimed is a user error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace nahsp {

/// \brief Ordered key=value map with typed, range-checked, consumption-
/// tracked getters. All failures throw std::invalid_argument with a
/// message naming the key.
class SpecMap {
 public:
  /// \brief Inserts a key=value pair. Keys must match
  /// [A-Za-z_][A-Za-z0-9_]*; duplicates are rejected.
  void set(std::string key, std::string value);

  bool has(std::string_view key) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief Value of `key` as a u64 (decimal or 0x-hex), or `def` when
  /// absent. The value must lie in [min, max]; the key is marked
  /// consumed either way.
  std::uint64_t get_u64(
      std::string_view key, std::uint64_t def, std::uint64_t min = 0,
      std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

  /// \brief Raw string value of `key`, or `def` when absent; marks the
  /// key consumed.
  std::string get_string(std::string_view key, std::string def);

  /// \brief Keys set but never fetched by a getter, in insertion order.
  std::vector<std::string> unconsumed_keys() const;

  /// \brief Throws std::invalid_argument if any key is unconsumed,
  /// naming the stray keys, the `context` (e.g. "scenario 'wreath'"),
  /// and the keys that would have been accepted.
  void require_all_consumed(std::string_view context,
                            const std::vector<std::string>& known_keys) const;

  /// \brief All entries as (key, value) pairs in insertion order
  /// (rendering / round-trip support).
  std::vector<std::pair<std::string, std::string>> entries() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    mutable bool consumed = false;
  };
  const Entry* find(std::string_view key) const;

  std::vector<Entry> entries_;
};

/// \brief One parsed scenario spec: a family name plus overrides.
struct ScenarioSpec {
  std::string scenario;
  SpecMap params;
};

/// \brief Parses a u64 literal (decimal or 0x-hex); rejects sign
/// characters, trailing junk, and overflow.
std::uint64_t parse_spec_u64(std::string_view text);

/// \brief Parses one spec from pre-split tokens: the first token is the
/// scenario name (must not contain '='), the rest are key=value pairs.
ScenarioSpec parse_scenario_spec(const std::vector<std::string>& tokens);

/// \brief Parses one spec from a whitespace-separated line; `#` starts
/// a comment running to the end of the line.
ScenarioSpec parse_scenario_line(std::string_view line);

/// \brief Parses a `.scn` stream: one spec per non-empty, non-comment
/// line. `source_name` labels diagnostics ("fleet.scn:3: ...").
std::vector<ScenarioSpec> parse_scenario_stream(
    std::istream& in, std::string_view source_name = "<spec>");

/// \brief Parses a `.scn` file from disk (see parse_scenario_stream).
std::vector<ScenarioSpec> parse_scenario_file(const std::string& path);

/// \brief Canonical one-line rendering "name k1=v1 k2=v2" (insertion
/// order); parse_scenario_line(to_string(s)) round-trips.
std::string to_string(const ScenarioSpec& spec);

}  // namespace nahsp
