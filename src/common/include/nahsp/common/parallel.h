// The parallel execution layer shared by every nahsp kernel.
//
// One fixed-size fork-join ThreadPool replaces the former per-kernel
// OpenMP pragmas, so scheduling policy (grain, nesting, thread count)
// lives in exactly one place. Design constraints, in order:
//
//  1. Determinism. Chunk *layout* depends only on (range, grain), never
//     on the worker count, and reductions combine per-chunk partials in
//     chunk-index order — so every result is bitwise identical at any
//     thread count. At width 1 element-wise loops run as one plain
//     serial call; chunked reductions keep the same fixed summation
//     tree at every width (it differs from a single-accumulator serial
//     sum only in floating-point association, never across widths).
//     The pinned-seed suite in tests/test_parallel_determinism.cpp
//     locks the observable outputs of the width-1 path to the
//     pre-threading serial implementation.
//  2. No nested oversubscription. A parallel_for issued from inside a
//     pool task runs inline on the calling worker; the batch solve
//     driver fans instances out across the pool and each instance's
//     kernels then run serially within their worker.
//  3. Exceptions propagate. The first exception thrown by any chunk is
//     rethrown on the calling thread after the region joins; remaining
//     chunks are abandoned (best effort).
//
// The global pool is sized from the NAHSP_THREADS environment variable
// at first use (default: hardware concurrency) and can be resized with
// set_parallelism(n). Resizing is not thread-safe against concurrent
// parallel regions — call it from the main thread between regions.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "nahsp/common/check.h"

namespace nahsp {

/// \brief Default parallel grain for amplitude-sized work, in elements.
///
/// Ranges at or below it run as one serial chunk; every qsim kernel
/// derives its chunk layout from this single constant so the layouts —
/// and therefore all reductions — stay aligned and thread-count
/// independent.
inline constexpr std::size_t kDefaultGrain = std::size_t{1} << 14;

/// \brief Grain for pair-indexed kernels (one iteration touches the two
/// amplitudes of a bit-split pair), sized so a chunk spans the same
/// kDefaultGrain amplitudes of traffic as the element-indexed kernels.
/// Keeping every qsim loop's chunk volume tied to the one constant keeps
/// the serial-below-grain threshold uniform across kernels.
inline constexpr std::size_t kPairGrain = kDefaultGrain / 2;

/// \brief Grain for quad-indexed kernels (one iteration reconstructs an
/// index with two distinguished bits), same chunk volume as above.
inline constexpr std::size_t kQuadGrain = kDefaultGrain / 4;

/// \brief Fixed-size fork-join worker pool with grain-controlled
/// parallel_for and deterministic reductions.
///
/// One loop ("job") runs at a time; concurrent submissions from
/// different threads serialise on an internal mutex. The submitting
/// thread participates in chunk execution, so a pool of size n applies
/// n threads total (n-1 background workers plus the caller).
class ThreadPool {
 public:
  /// \brief Spawns a pool applying `threads` threads to each loop
  /// (`threads - 1` background workers). Requires threads in [1, 256].
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Threads applied to each parallel region (workers + caller).
  int size() const { return n_; }

  /// \brief Runs `body(lo, hi)` over disjoint subranges covering
  /// [begin, end).
  ///
  /// The range is cut into ceil((end-begin)/grain) chunks of `grain`
  /// elements (last chunk short); the layout depends only on the range
  /// and grain, never on the worker count. Runs inline — one direct
  /// body call over the whole range, no allocation, no type erasure —
  /// when the pool has one thread, the range fits in a single chunk, or
  /// the caller is itself a pool worker (nested regions never
  /// oversubscribe).
  ///
  /// \param begin  First index of the iteration range.
  /// \param end    One past the last index.
  /// \param grain  Target elements per chunk; >= 1.
  /// \param body   Callback invoked as body(lo, hi) with begin <= lo <
  ///               hi <= end; must be safe to run concurrently on
  ///               disjoint subranges.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Body&& body) {
    NAHSP_REQUIRE(grain >= 1, "grain must be >= 1");
    if (begin >= end) return;
    // Serial fast path: one thread, a single chunk, or a nested region.
    if (n_ == 1 || end - begin <= grain || in_worker()) {
      body(begin, end);
      return;
    }
    // std::ref keeps the type-erased wrapper allocation-free (a
    // reference_wrapper always fits the small-buffer optimisation).
    const std::function<void(std::size_t, std::size_t)> fn = std::ref(body);
    dispatch(begin, end, grain, fn);
  }

  /// \brief Deterministic sum-reduction: returns the sum of
  /// `chunk_sum(lo, hi)` over the same chunk layout as parallel_for.
  ///
  /// Partials are combined in chunk-index order, so the floating-point
  /// result is bitwise identical for every thread count (including 1);
  /// single-chunk ranges reduce to one plain serial call.
  template <typename ChunkSum>
  double reduce(std::size_t begin, std::size_t end, std::size_t grain,
                ChunkSum&& chunk_sum) {
    NAHSP_REQUIRE(grain >= 1, "grain must be >= 1");
    if (begin >= end) return 0.0;
    const std::size_t range = end - begin;
    const std::size_t n_chunks = (range + grain - 1) / grain;
    if (n_chunks == 1) return chunk_sum(begin, end);
    // The chunk layout (and therefore the summation tree) is fixed by
    // (range, grain) alone: partials are filled by whichever thread
    // claims the chunk but always combined in chunk-index order.
    std::vector<double> partials(n_chunks, 0.0);
    parallel_for(0, n_chunks, 1, [&](std::size_t clo, std::size_t chi) {
      for (std::size_t i = clo; i < chi; ++i) {
        const std::size_t lo = begin + i * grain;
        const std::size_t hi = std::min(lo + grain, end);
        partials[i] = chunk_sum(lo, hi);
      }
    });
    double total = 0.0;
    for (const double p : partials) total += p;
    return total;
  }

  /// \brief True while the calling thread is executing a pool task
  /// (used as the nested-region guard).
  static bool in_worker();

  /// \brief RAII guard marking the current thread as inside a pool
  /// task, so parallel regions opened under it run inline.
  ///
  /// The pool applies it automatically around every chunk it runs; use
  /// it directly when a task executes through a serial fast path (one
  /// thread, or a single chunk) but must still honour the "kernels run
  /// serially inside tasks" contract — solve_hsp_batch wraps each
  /// instance in one so a width-1 batch never fans kernels out on the
  /// global pool.
  class TaskScope {
   public:
    TaskScope();
    ~TaskScope();
    TaskScope(const TaskScope&) = delete;
    TaskScope& operator=(const TaskScope&) = delete;

   private:
    bool prev_;
  };

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first failure; guarded by error_mutex
    std::mutex error_mutex;
  };

  // The multi-chunk submission path behind the template fast path.
  void dispatch(std::size_t begin, std::size_t end, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& body);
  void worker_loop();
  static void run_chunks(Job& job);

  int n_;
  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;  // one job at a time

  std::mutex job_mutex_;  // guards job_/generation_/stop_ handoff
  std::condition_variable job_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;  // submitter waits for completion
  Job* job_ = nullptr;
  std::size_t in_flight_ = 0;  // workers currently inside run_chunks
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// \brief The process-wide pool used by the qsim kernels and the batch
/// solve driver. Sized from NAHSP_THREADS at first use (default:
/// hardware concurrency).
ThreadPool& global_pool();

/// \brief Thread count of the global pool.
int parallelism();

/// \brief Resizes the global pool to n threads (n = 1 runs everything
/// serially on the calling thread). Not safe against concurrently
/// running parallel regions.
void set_parallelism(int n);

/// \brief parallel_for on the global pool (see ThreadPool::parallel_for).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  global_pool().parallel_for(begin, end, grain, std::forward<Body>(body));
}

/// \brief Deterministic reduction on the global pool (see
/// ThreadPool::reduce).
template <typename ChunkSum>
double parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                       ChunkSum&& chunk_sum) {
  return global_pool().reduce(begin, end, grain,
                              std::forward<ChunkSum>(chunk_sum));
}

}  // namespace nahsp
