// The repo's one JSON layer: a streaming writer and a strict reader.
//
// Both halves started life higher up the stack — the writer in the
// `nahsp` CLI (report.h), the reader in the serve daemon's wire
// protocol (json_value.h) — and moved here so the hsp layer's batch
// checkpoints can serialize and reload records through exactly the
// code paths the CLI reports and the daemon wire format use. The
// original headers remain as thin forwarders.
//
// Writer: keys are emitted in call order and the formatting (2-space
// indent, "\n" line ends, %.9g doubles) is fixed, so two runs that
// compute the same report produce byte-identical output — the property
// the CI golden-report diff and the shard-merge byte-identity test
// rely on. Style::kCompact drops all whitespace for single-line output
// (the newline-delimited serve protocol and the checkpoint JSONL
// records); the token stream is otherwise identical.
//
// Reader: deliberately strict where the standard allows latitude and
// where leniency would hide bugs — duplicate object keys rejected,
// non-standard NaN/Infinity tokens rejected, nesting depth capped,
// trailing bytes after the document an error. Numbers keep their raw
// source text so integer fields read back exactly (no double
// round-trip for u64 seeds).
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nahsp {

/// \brief Streaming JSON writer with explicit begin/end nesting and
/// full string escaping. Misuse (value without key inside an object,
/// unbalanced end) is a programming error and asserted via exceptions.
class JsonWriter {
 public:
  /// \brief Output style: kPretty (2-space indent, one field per line)
  /// or kCompact (no whitespace — single-line wire output).
  enum class Style { kPretty, kCompact };

  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty)
      : os_(os), style_(style) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// \brief Emits the key of the next value inside an object.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::uint64_t v);
  void value(bool v);
  /// \brief Doubles print as %.9g (shortest stable round-trip for the
  /// report's wall-clock fields). Non-finite values (NaN, ±inf) have no
  /// JSON representation and are emitted as `null` — "%.9g" would print
  /// `nan`/`inf` and corrupt the document.
  void value(double v);

  /// \brief key + value in one call.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// \brief Terminates the document with a trailing newline (both
  /// styles: the serve protocol and the checkpoint files are
  /// newline-delimited).
  void finish();

 private:
  void prefix();
  void indent(std::size_t depth);

  struct Level {
    bool is_array = false;
    std::size_t count = 0;
  };
  std::ostream& os_;
  Style style_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

/// \brief JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// \brief Thrown on malformed input; the message carries a byte offset
/// ("at byte N") so callers can locate the defect in the document.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief One parsed JSON value (tree-owning, no sharing).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers: both the parsed double and the raw token ("17", "-2.5e3")
  /// — as_u64() re-parses the token so 64-bit integers survive exactly.
  double number_value = 0.0;
  std::string number_raw;
  std::string string_value;
  std::vector<JsonValue> array_items;
  /// Object members in document order (duplicates rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> object_members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// \brief Member lookup on an object; nullptr when absent (or when
  /// this value is not an object).
  const JsonValue* find(std::string_view key) const;

  /// \brief The value as an exact u64. Throws JsonParseError unless
  /// this is a number whose raw token is a plain non-negative decimal
  /// integer in range (rejects "-1", "1.5", "1e3", 2^64).
  std::uint64_t as_u64() const;
};

/// \brief Parses exactly one JSON document from `text` (trailing
/// whitespace allowed, anything else is an error). Throws
/// JsonParseError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace nahsp
