// Error handling for nahsp.
//
// Conventions (C++ Core Guidelines I.6/I.8 style):
//  - NAHSP_REQUIRE  — precondition on public API arguments; throws
//    std::invalid_argument so callers can distinguish contract violations.
//  - NAHSP_CHECK    — internal invariant / postcondition; throws
//    nahsp::internal_error (these indicate a bug in the library).
//  - NAHSP_ORACLE_CHECK — violation of an oracle promise (e.g. a hiding
//    function that is not constant on cosets); throws nahsp::oracle_error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nahsp {

/// Thrown when an internal invariant fails; indicates a library bug.
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a user-supplied oracle violates its promise
/// (e.g. a "hiding" function that is not constant on cosets).
class oracle_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a randomized (Las Vegas) procedure exceeds its retry budget.
class retry_exhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw internal_error(os.str());
}

[[noreturn]] inline void fail_oracle(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "oracle promise violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw oracle_error(os.str());
}
}  // namespace detail

}  // namespace nahsp

#define NAHSP_REQUIRE(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::nahsp::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define NAHSP_CHECK(expr, msg)                                      \
  do {                                                              \
    if (!(expr))                                                    \
      ::nahsp::detail::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define NAHSP_ORACLE_CHECK(expr, msg)                                \
  do {                                                               \
    if (!(expr))                                                     \
      ::nahsp::detail::fail_oracle(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
