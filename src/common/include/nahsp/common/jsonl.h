// Append-only, crash-durable JSONL files — the checkpoint substrate of
// the sharded batch driver.
//
// Durability contract (see docs/ARCHITECTURE.md, "The shard layer"):
//   - append() writes one complete line (payload + '\n') with a single
//     write(2) loop and then fdatasync()s the file, so a record that
//     append() returned for survives a crash of the writing process.
//   - The directory entry is fsync'd once at file creation, so a
//     freshly created checkpoint file itself survives a crash.
//   - A process killed mid-write leaves at most one torn final line
//     (no trailing newline). read_jsonl() returns only complete lines
//     and reports the torn tail separately — reloading a checkpoint
//     after a SIGKILL skips the tail with a warning instead of
//     aborting — and reopening the file for appending truncates the
//     torn tail away, so a resumed run's appends never concatenate
//     onto torn bytes.
//
// The payload must not contain '\n' (compact JSON from JsonWriter
// satisfies this by construction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nahsp {

/// \brief Append-only line writer with per-line fsync. All failures
/// (open, write, sync) throw std::runtime_error naming the path.
class JsonlWriter {
 public:
  /// \brief Opens `path` for appending, creating it (and syncing its
  /// directory entry) if absent. A torn final line left by a crashed
  /// writer (no trailing newline) is truncated away so the next
  /// append starts a fresh record rather than extending the torn one.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// \brief Appends `line` + '\n' and fdatasync()s. `line` must not
  /// contain a newline.
  void append(std::string_view line);

  const std::string& path() const { return path_; }

 private:
  void discard_torn_tail();

  int fd_ = -1;
  std::string path_;
};

/// \brief One loaded JSONL file: every newline-terminated line, plus
/// whether a torn (unterminated) tail was present and skipped.
struct JsonlFile {
  std::vector<std::string> lines;
  bool torn_tail = false;
  std::string torn_text;  ///< the skipped partial tail, for diagnostics
};

/// \brief Reads `path`, splitting on '\n'. A missing file yields an
/// empty JsonlFile (not an error — a shard that never started has no
/// checkpoint). Unterminated trailing bytes become the torn tail.
JsonlFile read_jsonl(const std::string& path);

}  // namespace nahsp
