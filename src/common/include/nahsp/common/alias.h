// Walker/Vose alias table: O(1) draws from a fixed finite discrete
// distribution after O(n) setup.
//
// This is the answer-side half of the batched coset-sampling engine:
// the statevector samplers compute their exact post-QFT outcome
// distribution once per instance and then serve every further round as
// one alias-table draw (two Rng calls), instead of re-running the
// prepare -> oracle -> QFT pipeline. It is equally usable for any other
// fixed categorical distribution.
#pragma once

#include <cstddef>
#include <vector>

#include "nahsp/common/rng.h"

namespace nahsp {

/// Immutable discrete distribution over {0, ..., n-1} with O(1) sampling.
class AliasTable {
 public:
  /// Builds the table from non-negative, finite weights (not necessarily
  /// normalised). Requires at least one strictly positive weight.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t size() const { return prob_.size(); }

  /// Draws an index with probability weights[i] / sum(weights).
  /// Consumes exactly two Rng values per draw, so sequences are
  /// reproducible from the seed.
  std::size_t sample(Rng& rng) const;

  /// Normalised probability of index i, reconstructed from the table
  /// (O(size); for tests and diagnostics only — the table itself keeps
  /// no copy of the input, its two arrays are the whole footprint).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // acceptance threshold per column
  std::vector<std::size_t> alias_;  // fallback index per column
};

}  // namespace nahsp
