// Small bit-manipulation helpers shared by the simulators and the
// GF(2) group encodings.
#pragma once

#include <bit>
#include <cstdint>

namespace nahsp {

/// Number of bits needed to represent values in [0, n), i.e. ceil(log2 n);
/// bits_for(0) == bits_for(1) == 0.
constexpr int bits_for(std::uint64_t n) {
  if (n <= 1) return 0;
  return 64 - std::countl_zero(n - 1);
}

/// True iff n is a power of two (n >= 1).
constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Parity (0/1) of the number of set bits.
constexpr int parity64(std::uint64_t x) { return std::popcount(x) & 1; }

/// Extracts bit `i` of `x`.
constexpr std::uint64_t bit_of(std::uint64_t x, int i) { return (x >> i) & 1u; }

/// GF(2) dot product of two bit-vectors packed in 64-bit words.
constexpr int dot2(std::uint64_t a, std::uint64_t b) { return parity64(a & b); }

}  // namespace nahsp
