// Cooperative cancellation and deadlines for long-running solves.
//
// A CancelToken is shared between an owner (the `nahsp serve` daemon, a
// batch driver, any caller that may want to abandon a solve) and the
// solver running on another thread. The owner calls cancel() — or sets
// a deadline up front — and the solver polls cancel_checkpoint() at its
// round-loop boundaries, which throws OperationCancelled once the token
// has fired. Cancellation is cooperative: a checkpoint is consulted
// between solver rounds (coset-sampling top-ups, order-finding rounds,
// Las Vegas attempts), never mid-kernel, so the latency of a cancel is
// bounded by the longest single round, not by the whole solve.
//
// Plumbing is by scope, not by argument: solve_hsp installs the token
// from AutoOptions::cancel into a thread-local slot (ScopedCancelToken)
// for the duration of the call, and the subroutine round loops poll the
// slot via cancel_checkpoint(). The slot is thread-local, so parallel
// batch instances each see exactly their own token (an instance runs
// wholly on one pool worker; its nested kernels run inline on the same
// thread under the pool's nested-region guard).
//
// Thread-safety: cancel() may be called from any thread at any time
// (first reason wins); set_deadline() must happen before the token is
// shared with the solver.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace nahsp {

/// \brief Thrown by cancel_checkpoint() / CancelToken::check() once the
/// token has fired. Derives from std::runtime_error, so the batch
/// driver records it per item like any other solver failure.
class OperationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief One-shot cancellation flag with an optional deadline.
class CancelToken {
 public:
  /// Why the token fired; the first cause wins and is stable afterwards.
  enum class Reason : int {
    kNone = 0,      ///< not fired
    kCancelled = 1, ///< explicit cancel() by the owner
    kDeadline = 2,  ///< deadline passed
    kShutdown = 3,  ///< owner is shutting down
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Fires the token (idempotent; the first reason wins). Safe
  /// from any thread.
  void cancel(Reason r = Reason::kCancelled) const {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  /// \brief Arms a wall-clock deadline; checkpoints past it fire the
  /// token with Reason::kDeadline. Call before sharing the token.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// \brief Arms a deadline `timeout_ms` milliseconds from now
  /// (convenience for per-request timeouts).
  void set_timeout_ms(std::uint64_t timeout_ms) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(timeout_ms));
  }

  /// \brief True once the token has fired (explicitly or via a
  /// checkpoint that observed the deadline). Does not consult the
  /// clock — only check() promotes an expired deadline into a firing.
  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) != 0;
  }

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_acquire));
  }

  /// \brief Stable one-word cause ("cancelled", "deadline exceeded",
  /// "server shutdown"); "none" before the token fires.
  const char* reason_text() const {
    switch (reason()) {
      case Reason::kNone: return "none";
      case Reason::kCancelled: return "cancelled";
      case Reason::kDeadline: return "deadline exceeded";
      case Reason::kShutdown: return "server shutdown";
    }
    return "none";
  }

  /// \brief Checkpoint: promotes an expired deadline into a firing,
  /// then throws OperationCancelled if the token has fired.
  void check() const {
    if (!cancelled() && has_deadline_ &&
        std::chrono::steady_clock::now() > deadline_) {
      cancel(Reason::kDeadline);
    }
    if (cancelled()) {
      throw OperationCancelled(std::string("cancelled: ") + reason_text());
    }
  }

 private:
  // mutable: cancel() is const so a shared_ptr<const CancelToken> held
  // by options structs can still be fired by checkpoints.
  mutable std::atomic<int> reason_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

namespace detail {
inline thread_local const CancelToken* t_cancel_token = nullptr;
}  // namespace detail

/// \brief Token currently installed on this thread (nullptr when none).
inline const CancelToken* current_cancel_token() {
  return detail::t_cancel_token;
}

/// \brief RAII installation of a token into the thread-local slot
/// polled by cancel_checkpoint(). A nullptr token is a no-op install
/// (the previous token, if any, stays active).
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const CancelToken* token)
      : prev_(detail::t_cancel_token) {
    if (token != nullptr) detail::t_cancel_token = token;
  }
  ~ScopedCancelToken() { detail::t_cancel_token = prev_; }
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  const CancelToken* prev_;
};

/// \brief Polls the installed token; throws OperationCancelled once it
/// has fired (or its deadline has passed). No-op when no token is
/// installed — solver round loops call this unconditionally.
inline void cancel_checkpoint() {
  if (const CancelToken* t = detail::t_cancel_token) t->check();
}

}  // namespace nahsp
