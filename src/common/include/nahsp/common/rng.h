// Deterministic, fast pseudo-random number generation.
//
// All randomized algorithms in nahsp take an explicit Rng& so that every
// test and benchmark is reproducible from a seed. The generator is
// xoshiro256** (Blackman & Vigna), which is small, fast, and has 256 bits
// of state — more than enough for Las Vegas group algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace nahsp {

/// \brief xoshiro256** PRNG; satisfies
/// std::uniform_random_bit_generator.
///
/// Every randomized algorithm in nahsp takes an explicit Rng& so runs
/// replay from a seed. For parallel code, derive one stream per task
/// with SplitRng (never share one Rng between threads).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// \brief Seeds the four 64-bit state words from `seed` via
  /// SplitMix64, guaranteeing a non-zero state for any seed.
  /// \param seed Any 64-bit value; equal seeds give equal sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// \brief Next 64 random bits.
  result_type operator()();

  /// \brief Uniform integer in [0, bound) by unbiased rejection
  /// sampling.
  /// \param bound Exclusive upper bound; must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// \brief Uniform double in [0, 1) (53 high bits).
  double uniform01();

  /// \brief Fair coin.
  bool coin() { return ((*this)() >> 63) != 0; }

  /// \brief Derives an independent child generator by drawing four
  /// words from this one.
  ///
  /// The child depends on the parent's current position, so prefer
  /// SplitRng / jump() when streams must be reproducible independently
  /// of how much randomness the parent has already consumed.
  Rng split();

  /// \brief Advances the state by 2^128 steps of operator() in O(1)
  /// (the xoshiro256** jump polynomial).
  ///
  /// Partitions one seed's sequence into non-overlapping streams of
  /// 2^128 values each: jumping k times lands at the start of stream k.
  /// Unlike split() (whose children depend on how many values the
  /// parent has already produced), jump() is a pure function of the
  /// state, which is what makes SplitRng streams reproducible.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// \brief Deterministic per-task stream derivation for parallel code.
///
/// stream(i) is the base generator jumped i+1 times: every stream is
/// a disjoint 2^128-value window of the same xoshiro256** sequence,
/// and stream i is a function of (seed, i) only — independent of
/// thread scheduling, so a parallel run is bit-reproducible and equal
/// to the serial run task by task. The batch solve driver assigns
/// stream(i) to instance i; any parallel Las Vegas loop can do the
/// same with its task index.
class SplitRng {
 public:
  /// \brief Stream factory over the sequence seeded by `seed`.
  explicit SplitRng(std::uint64_t seed) : next_(seed) {
    next_.jump();
    cache_.push_back(next_);
  }

  /// \brief The i-th independent stream (cached; extending the cache
  /// costs one jump per new stream).
  Rng stream(std::size_t i) {
    while (cache_.size() <= i) {
      next_.jump();
      cache_.push_back(next_);
    }
    return cache_[i];
  }

 private:
  Rng next_;                // the seed generator jumped cache_.size() times
  std::vector<Rng> cache_;  // cache_[i] = seed generator jumped i+1 times
};

}  // namespace nahsp
