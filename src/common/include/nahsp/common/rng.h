// Deterministic, fast pseudo-random number generation.
//
// All randomized algorithms in nahsp take an explicit Rng& so that every
// test and benchmark is reproducible from a seed. The generator is
// xoshiro256** (Blackman & Vigna), which is small, fast, and has 256 bits
// of state — more than enough for Las Vegas group algorithms.
#pragma once

#include <cstdint>
#include <limits>

namespace nahsp {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64,
  /// guaranteeing a non-zero state for any seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses rejection sampling (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fair coin.
  bool coin() { return ((*this)() >> 63) != 0; }

  /// Derives an independent child generator (for parallel streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace nahsp
