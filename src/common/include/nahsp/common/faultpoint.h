// Deterministic fault injection: named fault points planted at the
// boundaries where real systems fail (allocation, checkpoint writes,
// cache snapshots, transport I/O), armed from the environment so a
// smoke sweep can prove every failure path yields a typed error or a
// clean shed — never a crash, a wrong answer, or a torn file.
//
// Grammar (NAHSP_FAULT):
//   point:nth[:count][,point:nth[:count]...]
// The named point fires on its `nth` hit (1-based) and for `count`
// consecutive hits after that (default 1); all other hits pass. Example:
//   NAHSP_FAULT=ckpt.append:3        # third checkpoint append fails
//   NAHSP_FAULT=alloc.sampler:1:2    # first two sampler builds fail
//
// Zero cost when unarmed: call sites guard on one relaxed atomic load
// (`faultpoints_armed()`), so production binaries with no NAHSP_FAULT
// pay a single predictable branch per point.
//
// What a firing point DOES is the call site's choice — each site raises
// the same typed error its real failure mode would (resource_error at
// allocation, std::runtime_error at a checkpoint write), so the
// downstream handling exercised is exactly the production path.
//
// Registered points (scripts/fault_smoke.sh sweeps them all):
//   alloc.sampler   — make_coset_sampler, before backend construction
//   ckpt.append     — JsonlWriter::append, before the write
//   cache.snapshot  — serve report-cache snapshot, before the tmp write
//   serve.submit    — SolverService::submit_line entry
//   transport.write — serve poll-loop response write
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace nahsp {

namespace detail {
extern std::atomic<bool> g_faultpoints_armed;
bool faultpoint_check(const char* name);
}  // namespace detail

/// \brief True when any fault point is armed (relaxed load; the fast
/// guard every call site checks first).
inline bool faultpoints_armed() {
  return detail::g_faultpoints_armed.load(std::memory_order_relaxed);
}

/// \brief Counts one hit of `name` and reports whether the armed rule
/// says this hit fails. Always false when nothing is armed. The hit is
/// counted even when the point does not fire, so `nth` addresses the
/// n-th traversal of the call site.
inline bool faultpoint_should_fail(const char* name) {
  if (!faultpoints_armed()) return false;
  return detail::faultpoint_check(name);
}

/// \brief Re-arms the harness from `spec` (the NAHSP_FAULT grammar),
/// discarding previous rules and hit counts. An empty spec disarms.
/// Throws std::invalid_argument on a malformed spec. Tests use this to
/// arm points without touching the environment; the environment
/// variable is read once, lazily, on the first hit check.
void faultpoint_reset(const std::string& spec);

/// \brief Total hits recorded for `name` since the last reset (0 when
/// the point is not armed — unarmed hits are not counted).
std::uint64_t faultpoint_hits(const std::string& name);

}  // namespace nahsp
