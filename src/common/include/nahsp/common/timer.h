// Wall-clock timing helpers for benchmarks and examples.
#pragma once

#include <chrono>
#include <string>

namespace nahsp {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Elapsed seconds since construction or last reset().
  double seconds() const;

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats a duration like "12.3 ms" / "1.2 s" for human-readable logs.
std::string format_duration(double seconds);

}  // namespace nahsp
