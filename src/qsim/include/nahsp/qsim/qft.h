// Quantum Fourier transform circuits on the qubit statevector.
//
// Exact QFT uses the standard H + controlled-phase ladder with final
// qubit reversal. The approximate QFT drops controlled rotations smaller
// than 2*pi / 2^(cutoff+1); the paper notes the approximate transform
// suffices for the HSP, and experiment E8 measures how aggressive the
// cutoff can be before period finding degrades.
//
// Two engines compute the same transform (docs/ARCHITECTURE.md "The
// kernel engine"):
//  - fused (default): one fused stage sweep per target qubit — the
//    Hadamard and the stage's whole accumulated controlled-phase ramp
//    in a single pass from a precomputed twiddle table — plus one
//    bit-reversal sweep: bits + 1 sweeps total instead of the ladder's
//    bits + bits(bits-1)/2 + bits/2.
//  - gates: the legacy gate-by-gate ladder, kept as the test oracle for
//    the fused engine (equal up to ~1e-15 per amplitude, locked by
//    tests/test_kernels_fused.cpp).
// Select with set_qft_engine() or the NAHSP_QFT_ENGINE environment
// variable ("fused" | "gates", read at first use).
#pragma once

#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {

/// \brief Which implementation apply_qft/apply_inverse_qft dispatch to.
enum class QftEngine {
  kFused,  ///< Fused per-target stage sweeps (default).
  kGates,  ///< Legacy gate-by-gate ladder (the test oracle).
};

/// \brief Currently selected engine (NAHSP_QFT_ENGINE at first use,
/// default fused).
QftEngine qft_engine();

/// \brief Selects the engine for subsequent apply_qft calls. Not
/// thread-safe against concurrent QFT applications.
void set_qft_engine(QftEngine engine);

/// \brief QFT on qubits [lo, lo+bits): |x> -> (1/sqrt(2^bits)) sum_y
/// exp(2*pi*i*x*y / 2^bits) |y>, with bit lo the least significant.
/// \param sv           Target state (gates run over the ThreadPool).
/// \param lo           First qubit of the register.
/// \param bits         Register width.
/// \param approx_cutoff 0 applies all rotations (exact QFT); c > 0
///        drops controlled rotations between qubits more than c
///        positions apart (the paper's approximate QFT).
void apply_qft(StateVector& sv, int lo, int bits, int approx_cutoff = 0);

/// \brief Inverse of apply_qft with the same cutoff.
void apply_inverse_qft(StateVector& sv, int lo, int bits,
                       int approx_cutoff = 0);

/// \brief Fused-engine QFT regardless of the selected engine: bits
/// fused stage sweeps + one bit-reversal sweep.
void apply_qft_fused(StateVector& sv, int lo, int bits,
                     int approx_cutoff = 0);

/// \brief Inverse of apply_qft_fused.
void apply_inverse_qft_fused(StateVector& sv, int lo, int bits,
                             int approx_cutoff = 0);

/// \brief Legacy gate-by-gate QFT regardless of the selected engine
/// (one std::polar per distinct rotation angle, hoisted out of the
/// per-gate chain). The fused engine's test oracle.
void apply_qft_gates(StateVector& sv, int lo, int bits,
                     int approx_cutoff = 0);

/// \brief Inverse of apply_qft_gates.
void apply_inverse_qft_gates(StateVector& sv, int lo, int bits,
                             int approx_cutoff = 0);

/// \brief Dense reference DFT on the same register (O(4^bits); used
/// by tests to validate the gate ladder and by small experiments).
/// \param inverse Apply the conjugate transform.
void apply_dft_reference(StateVector& sv, int lo, int bits,
                         bool inverse = false);

}  // namespace nahsp::qs
