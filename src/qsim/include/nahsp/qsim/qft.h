// Quantum Fourier transform circuits on the qubit statevector.
//
// Exact QFT uses the standard H + controlled-phase ladder with final
// qubit reversal. The approximate QFT drops controlled rotations smaller
// than 2*pi / 2^(cutoff+1); the paper notes the approximate transform
// suffices for the HSP, and experiment E8 measures how aggressive the
// cutoff can be before period finding degrades.
#pragma once

#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {

/// \brief QFT on qubits [lo, lo+bits): |x> -> (1/sqrt(2^bits)) sum_y
/// exp(2*pi*i*x*y / 2^bits) |y>, with bit lo the least significant.
/// \param sv           Target state (gates run over the ThreadPool).
/// \param lo           First qubit of the register.
/// \param bits         Register width.
/// \param approx_cutoff 0 applies all rotations (exact QFT); c > 0
///        drops controlled rotations between qubits more than c
///        positions apart (the paper's approximate QFT).
void apply_qft(StateVector& sv, int lo, int bits, int approx_cutoff = 0);

/// \brief Inverse of apply_qft with the same cutoff.
void apply_inverse_qft(StateVector& sv, int lo, int bits,
                       int approx_cutoff = 0);

/// \brief Dense reference DFT on the same register (O(4^bits); used
/// by tests to validate the gate ladder and by small experiments).
/// \param inverse Apply the conjugate transform.
void apply_dft_reference(StateVector& sv, int lo, int bits,
                         bool inverse = false);

}  // namespace nahsp::qs
