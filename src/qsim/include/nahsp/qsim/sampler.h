// Coset samplers: one run of the standard Abelian-HSP circuit
//   |0>|0>  -H->  sum_x |x>|0>  -f->  sum_x |x>|f(x)>
//   -measure ancilla->  uniform over one coset  -QFT->  -measure-> y
// returns a character y uniform over H^perp (paper Lemma 9).
//
// Three interchangeable backends (ablation in experiments E1/E8):
//  - MixedRadixCosetSampler: exact mixed-radix statevector simulation of
//    the circuit above (exact QFT per cell). Faithful for any moduli.
//  - QubitCosetSampler: gate-level qubit simulation with the H +
//    controlled-phase QFT ladder (optionally the approximate QFT);
//    requires every modulus to be a power of two.
//  - AnalyticCosetSampler: samples H^perp directly using the *planted*
//    subgroup. The circuit's outcome distribution is exactly uniform on
//    H^perp, so this backend is distribution-identical (property-tested
//    against the statevector backends) while scaling past simulator
//    memory. It is the documented large-instance substitution.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/mixedradix.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {

/// Label function over the domain A = Z_{d0} x ...: digit tuple -> label.
using LabelFn = std::function<u64(const la::AbVec&)>;

/// One-run-of-the-circuit character source.
class CosetSampler {
 public:
  virtual ~CosetSampler() = default;

  /// Runs the circuit once; returns the measured character y
  /// (componentwise, y_i in [0, d_i)).
  virtual la::AbVec sample_character(Rng& rng) = 0;

  virtual std::string backend_name() const = 0;

  const std::vector<u64>& moduli() const { return moduli_; }

 protected:
  explicit CosetSampler(std::vector<u64> moduli)
      : moduli_(std::move(moduli)) {}
  std::vector<u64> moduli_;
};

/// Exact mixed-radix statevector backend. Evaluates f over the whole
/// domain once (cached; each circuit run still counts one quantum query).
class MixedRadixCosetSampler final : public CosetSampler {
 public:
  MixedRadixCosetSampler(std::vector<u64> moduli, LabelFn f,
                         bb::QueryCounter* counter);

  la::AbVec sample_character(Rng& rng) override;
  std::string backend_name() const override { return "mixed-radix"; }

 private:
  void ensure_labels();

  LabelFn f_;
  bb::QueryCounter* counter_;
  std::vector<u64> label_cache_;
  bool labels_ready_ = false;
};

/// Gate-level qubit backend (power-of-two moduli only). approx_cutoff
/// as in apply_qft: 0 = exact ladder, c > 0 drops far rotations.
class QubitCosetSampler final : public CosetSampler {
 public:
  QubitCosetSampler(std::vector<u64> moduli, LabelFn f,
                    bb::QueryCounter* counter, int approx_cutoff = 0);

  la::AbVec sample_character(Rng& rng) override;
  std::string backend_name() const override { return "qubit-circuit"; }

 private:
  void ensure_labels();

  LabelFn f_;
  bb::QueryCounter* counter_;
  int approx_cutoff_;
  std::vector<int> cell_bits_;
  int in_bits_ = 0;
  int out_bits_ = 0;
  std::vector<u64> dense_labels_;  // domain index -> dense label id
  bool labels_ready_ = false;
};

/// Distribution-exact shortcut: uniform over H^perp computed from the
/// planted generators. No statevector; scales to any |A|.
class AnalyticCosetSampler final : public CosetSampler {
 public:
  AnalyticCosetSampler(std::vector<u64> moduli,
                       std::vector<la::AbVec> hidden_generators,
                       bb::QueryCounter* counter);

  la::AbVec sample_character(Rng& rng) override;
  std::string backend_name() const override { return "analytic"; }

  const std::vector<la::AbVec>& perp_generators() const {
    return perp_gens_;
  }

 private:
  bb::QueryCounter* counter_;
  std::vector<la::AbVec> perp_gens_;
  u64 exponent_;  // lcm of the moduli
};

}  // namespace nahsp::qs
