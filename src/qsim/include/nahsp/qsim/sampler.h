// Coset samplers: one run of the standard Abelian-HSP circuit
//   |0>|0>  -H->  sum_x |x>|0>  -f->  sum_x |x>|f(x)>
//   -measure ancilla->  uniform over one coset  -QFT->  -measure-> y
// returns a character y uniform over H^perp (paper Lemma 9).
//
// Three interchangeable backends (ablation in experiments E1/E8):
//  - MixedRadixCosetSampler: exact mixed-radix statevector simulation of
//    the circuit above (exact QFT per cell). Faithful for any moduli.
//  - QubitCosetSampler: gate-level qubit simulation with the H +
//    controlled-phase QFT ladder (optionally the approximate QFT);
//    requires every modulus to be a power of two.
//  - AnalyticCosetSampler: samples H^perp directly using the *planted*
//    subgroup. The circuit's outcome distribution is exactly uniform on
//    H^perp, so this backend is distribution-identical (property-tested
//    against the statevector backends) while scaling past simulator
//    memory. It is the documented large-instance substitution.
//
// Batched sampling and the cached-distribution contract
// -----------------------------------------------------
// The circuit's outcome distribution is a *fixed* property of one
// problem instance, so re-running the full prepare -> oracle -> QFT
// pipeline for every round only re-derives the same distribution. The
// batched entry point `sample_characters(rng, k)` lets the statevector
// backends compute the exact post-QFT outcome distribution ONCE, cache
// it, and answer every further round as one AliasTable draw (O(1), two
// Rng values per character):
//  - QubitCosetSampler simulates the circuit once with the ancilla
//    measurement deferred (it commutes with the input-register QFT) and
//    marginalises the joint state — the cached distribution is exact for
//    any approx_cutoff, at the cost of about one scalar round.
//  - MixedRadixCosetSampler derives the distribution from the label
//    classes: P(y) = (1/|A|^2) sum_labels |sum_{x in class} chi_y(x)|^2,
//    computed per class either by collision counting (small classes) or
//    by one indicator-DFT (large classes). Because this setup can cost
//    several scalar rounds on instances with many cosets, the cache is
//    built adaptively: batched draws fall back to the scalar circuit
//    until the cumulative batched demand exceeds the estimated setup
//    cost, so one-shot instances never regress. Entries below 1e-12
//    total probability are dropped from the cached support (true
//    outcome probabilities are never that small on supported domains).
// Accounting contract: one batched draw counts exactly one quantum
// query (a batch of k increments QueryCounter::quantum_queries by k);
// sim_basis_evals only ever counts the one-time label sweep. Determinism
// contract: for a fixed seed and an identical sequence of sample calls,
// the returned character sequence is identical run to run (both the
// scalar circuit and the alias path consume the Rng deterministically).
// Scalar `sample_character` keeps full-circuit semantics until a cache
// exists; once built, it serves from the cache too (the distribution is
// identical by construction, chi-square-tested in test_sampler_batched).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/common/alias.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/mixedradix.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {

/// Label function over the domain A = Z_{d0} x ...: digit tuple -> label.
using LabelFn = std::function<u64(const la::AbVec&)>;

/// One-run-of-the-circuit character source.
class CosetSampler {
 public:
  virtual ~CosetSampler() = default;

  /// Runs the circuit once; returns the measured character y
  /// (componentwise, y_i in [0, d_i)).
  virtual la::AbVec sample_character(Rng& rng) = 0;

  /// Runs the circuit k times; returns the k measured characters in draw
  /// order. Counts exactly k quantum queries. The base implementation
  /// loops the scalar path; the statevector backends serve batches from
  /// their cached outcome distribution (see the header comment).
  virtual std::vector<la::AbVec> sample_characters(Rng& rng, std::size_t k);

  virtual std::string backend_name() const = 0;

  const std::vector<u64>& moduli() const { return moduli_; }

 protected:
  explicit CosetSampler(std::vector<u64> moduli)
      : moduli_(std::move(moduli)) {}
  std::vector<u64> moduli_;
};

/// Exact mixed-radix statevector backend. Evaluates f over the whole
/// domain once (cached; each circuit run still counts one quantum query).
class MixedRadixCosetSampler final : public CosetSampler {
 public:
  MixedRadixCosetSampler(std::vector<u64> moduli, LabelFn f,
                         bb::QueryCounter* counter);

  la::AbVec sample_character(Rng& rng) override;
  std::vector<la::AbVec> sample_characters(Rng& rng,
                                           std::size_t k) override;
  std::string backend_name() const override { return "mixed-radix"; }

  /// True once the cached outcome distribution is live (diagnostics).
  bool distribution_cached() const { return dist_ != nullptr; }

 private:
  void ensure_labels();
  double setup_rounds_estimate();
  void build_distribution();
  la::AbVec draw_cached(Rng& rng);

  LabelFn f_;
  bb::QueryCounter* counter_;
  std::vector<u64> label_cache_;
  bool labels_ready_ = false;

  // Cached-distribution engine (see header comment).
  std::vector<std::size_t> support_;   // flat domain indices with mass
  std::unique_ptr<AliasTable> dist_;   // distribution over support_
  double setup_rounds_ = -1.0;         // estimated cache cost, in rounds
  std::size_t uncached_batch_draws_ = 0;
};

/// Gate-level qubit backend (power-of-two moduli only). approx_cutoff
/// as in apply_qft: 0 = exact ladder, c > 0 drops far rotations.
class QubitCosetSampler final : public CosetSampler {
 public:
  QubitCosetSampler(std::vector<u64> moduli, LabelFn f,
                    bb::QueryCounter* counter, int approx_cutoff = 0);

  la::AbVec sample_character(Rng& rng) override;
  std::vector<la::AbVec> sample_characters(Rng& rng,
                                           std::size_t k) override;
  std::string backend_name() const override { return "qubit-circuit"; }

  bool distribution_cached() const { return dist_ != nullptr; }

 private:
  void ensure_labels();
  void ensure_distribution();
  la::AbVec decode_register(u64 y) const;

  LabelFn f_;
  bb::QueryCounter* counter_;
  int approx_cutoff_;
  std::vector<int> cell_bits_;
  int in_bits_ = 0;
  int out_bits_ = 0;
  std::vector<u64> dense_labels_;  // domain index -> dense label id
  bool labels_ready_ = false;

  std::vector<u64> support_;          // input-register outcomes with mass
  std::unique_ptr<AliasTable> dist_;  // distribution over support_
};

/// Distribution-exact shortcut: uniform over H^perp computed from the
/// planted generators. No statevector; scales to any |A|. Already O(1)
/// per draw, so batches use the base-class loop.
class AnalyticCosetSampler final : public CosetSampler {
 public:
  AnalyticCosetSampler(std::vector<u64> moduli,
                       std::vector<la::AbVec> hidden_generators,
                       bb::QueryCounter* counter);

  la::AbVec sample_character(Rng& rng) override;
  std::string backend_name() const override { return "analytic"; }

  const std::vector<la::AbVec>& perp_generators() const {
    return perp_gens_;
  }

 private:
  bb::QueryCounter* counter_;
  std::vector<la::AbVec> perp_gens_;
  u64 exponent_;  // lcm of the moduli
};

}  // namespace nahsp::qs
