// Coset samplers: one run of the standard Abelian-HSP circuit
//   |0>|0>  -H->  sum_x |x>|0>  -f->  sum_x |x>|f(x)>
//   -measure ancilla->  uniform over one coset  -QFT->  -measure-> y
// returns a character y uniform over H^perp (paper Lemma 9).
//
// Four interchangeable backends (ablation in experiments E1/E8):
//  - MixedRadixCosetSampler: exact mixed-radix statevector simulation of
//    the circuit above (exact QFT per cell). Faithful for any moduli.
//  - QubitCosetSampler: gate-level qubit simulation with the H +
//    controlled-phase QFT ladder (optionally the approximate QFT);
//    requires every modulus to be a power of two.
//  - SparseCosetSampler (sparse.h): sparse coset-support engine — hash
//    statevector over only the |H| nonzero amplitudes, exact
//    distribution via a sparse-support DFT on the |A|/|H| points of
//    H^perp. Exact for genuinely hiding label functions (verified);
//    scales past the dense amplitude budget.
//  - AnalyticCosetSampler: samples H^perp directly using the *planted*
//    subgroup. The circuit's outcome distribution is exactly uniform on
//    H^perp, so this backend is distribution-identical (property-tested
//    against the statevector backends) while scaling past simulator
//    memory. It is the documented large-instance substitution.
//
// `make_coset_sampler` (factory.cpp) picks between them from a
// `SamplerChoice` — explicit backend or the kAuto heuristic — and is
// the construction path every hsp-layer solver uses.
//
// Batched sampling: `sample_characters(rng, k)` lets the statevector
// backends compute the exact post-QFT outcome distribution once, cache
// it, and answer every further round as one AliasTable draw. The full
// caching / accounting / determinism contract — what gets cached when,
// what counts as a quantum query, and why sequences replay exactly —
// lives in docs/ARCHITECTURE.md ("The coset-sampler contract");
// tests/test_sampler_batched.cpp is its chi-square equivalence suite.
//
// Threading: the distribution builds schedule over the common
// ThreadPool; the user LabelFn is only ever evaluated serially (the
// one-time label sweep), so memoising hiding functions need no locks.
// A sampler instance must not be shared between threads.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nahsp/bbox/blackbox.h"
#include "nahsp/common/alias.h"
#include "nahsp/common/budget.h"
#include "nahsp/linalg/congruence.h"
#include "nahsp/qsim/mixedradix.h"
#include "nahsp/qsim/statevector.h"

namespace nahsp::qs {

/// Label function over the domain A = Z_{d0} x ...: digit tuple -> label.
using LabelFn = std::function<u64(const la::AbVec&)>;

/// \brief One-run-of-the-circuit character source (abstract base of
/// the four backends).
class CosetSampler {
 public:
  virtual ~CosetSampler() = default;

  /// \brief Runs the circuit once; returns the measured character y
  /// (componentwise, y_i in [0, d_i)). Counts one quantum query.
  virtual la::AbVec sample_character(Rng& rng) = 0;

  /// \brief Runs the circuit k times; returns the k measured
  /// characters in draw order. Counts exactly k quantum queries.
  ///
  /// The base implementation loops the scalar path; the statevector
  /// backends serve batches from their cached outcome distribution
  /// (contract in docs/ARCHITECTURE.md).
  virtual std::vector<la::AbVec> sample_characters(Rng& rng, std::size_t k);

  virtual std::string backend_name() const = 0;

  /// \brief Support of the cached outcome distribution, decoded to
  /// characters, in the backend's canonical order. Empty when no
  /// distribution is cached (or the backend never caches one) — call
  /// after a batched draw. Diagnostics / equivalence testing only.
  virtual std::vector<la::AbVec> cached_support() const { return {}; }

  const std::vector<u64>& moduli() const { return moduli_; }

  /// \brief Attaches the budget reservation that covers this sampler's
  /// peak footprint; released when the sampler is destroyed. Set by
  /// make_coset_sampler — direct constructions carry no reservation.
  void adopt_reservation(Reservation r) { reservation_ = std::move(r); }

 protected:
  explicit CosetSampler(std::vector<u64> moduli)
      : moduli_(std::move(moduli)) {}
  std::vector<u64> moduli_;
  Reservation reservation_;
};

/// \brief Exact mixed-radix statevector backend (any moduli).
///
/// Evaluates f over the whole domain once (cached; each circuit run
/// still counts one quantum query). Batches build the cached outcome
/// distribution adaptively.
class MixedRadixCosetSampler final : public CosetSampler {
 public:
  MixedRadixCosetSampler(std::vector<u64> moduli, LabelFn f,
                         bb::QueryCounter* counter);

  /// \brief Peak-footprint preflight, in bytes, for this backend over
  /// the given domain: label cache + outcome-probability vector + the
  /// two mixed-radix states the distribution build holds live at once.
  /// Saturates to UINT64_MAX when the domain product overflows.
  static u64 estimate_bytes(const std::vector<u64>& moduli);

  la::AbVec sample_character(Rng& rng) override;
  std::vector<la::AbVec> sample_characters(Rng& rng,
                                           std::size_t k) override;
  std::string backend_name() const override { return "mixed-radix"; }
  std::vector<la::AbVec> cached_support() const override;

  /// True once the cached outcome distribution is live (diagnostics).
  bool distribution_cached() const { return dist_ != nullptr; }

 private:
  void ensure_labels();
  double setup_rounds_estimate();
  void build_distribution();
  la::AbVec draw_cached(Rng& rng);

  LabelFn f_;
  bb::QueryCounter* counter_;
  std::vector<u64> label_cache_;
  bool labels_ready_ = false;

  // Cached-distribution engine (see header comment).
  std::vector<std::size_t> support_;   // flat domain indices with mass
  std::unique_ptr<AliasTable> dist_;   // distribution over support_
  double setup_rounds_ = -1.0;         // estimated cache cost, in rounds
  std::size_t uncached_batch_draws_ = 0;
};

/// \brief Gate-level qubit backend (power-of-two moduli only).
///
/// approx_cutoff as in apply_qft: 0 = exact ladder, c > 0 drops far
/// rotations. Batches cache unconditionally (one deferred-measurement
/// run).
class QubitCosetSampler final : public CosetSampler {
 public:
  QubitCosetSampler(std::vector<u64> moduli, LabelFn f,
                    bb::QueryCounter* counter, int approx_cutoff = 0);

  /// \brief Peak-footprint preflight, in bytes: dense label table plus
  /// the (in + out)-qubit statevector at the minimum one ancilla bit —
  /// a lower bound (out_bits is only known after the label sweep), but
  /// already the right order for admission decisions. Saturates.
  static u64 estimate_bytes(const std::vector<u64>& moduli);

  la::AbVec sample_character(Rng& rng) override;
  std::vector<la::AbVec> sample_characters(Rng& rng,
                                           std::size_t k) override;
  std::string backend_name() const override { return "qubit-circuit"; }
  std::vector<la::AbVec> cached_support() const override;

  bool distribution_cached() const { return dist_ != nullptr; }

 private:
  void ensure_labels();
  void ensure_distribution();
  la::AbVec decode_register(u64 y) const;

  LabelFn f_;
  bb::QueryCounter* counter_;
  int approx_cutoff_;
  std::vector<int> cell_bits_;
  int in_bits_ = 0;
  int out_bits_ = 0;
  std::vector<u64> dense_labels_;  // domain index -> dense label id
  std::size_t n_labels_ = 0;       // distinct labels seen by the sweep
  bool labels_ready_ = false;

  std::vector<u64> support_;          // input-register outcomes with mass
  std::unique_ptr<AliasTable> dist_;  // distribution over support_
};

/// \brief Distribution-exact shortcut: uniform over H^perp computed
/// from the planted generators.
///
/// No statevector; scales to any |A|. Already O(1) per draw, so
/// batches use the base-class loop.
class AnalyticCosetSampler final : public CosetSampler {
 public:
  AnalyticCosetSampler(std::vector<u64> moduli,
                       std::vector<la::AbVec> hidden_generators,
                       bb::QueryCounter* counter);

  /// \brief Peak-footprint preflight, in bytes: only the H^perp basis
  /// (at most rank(moduli) generators) — no statevector ever exists.
  static u64 estimate_bytes(const std::vector<u64>& moduli);

  la::AbVec sample_character(Rng& rng) override;
  std::string backend_name() const override { return "analytic"; }

  const std::vector<la::AbVec>& perp_generators() const {
    return perp_gens_;
  }

 private:
  bb::QueryCounter* counter_;
  std::vector<la::AbVec> perp_gens_;
  u64 exponent_;  // lcm of the moduli
};

/// \brief Backend selector for `make_coset_sampler`.
enum class SamplerBackend {
  kAuto,        ///< heuristic: see make_coset_sampler
  kMixedRadix,  ///< MixedRadixCosetSampler
  kQubit,       ///< QubitCosetSampler (power-of-two moduli only)
  kSparse,      ///< SparseCosetSampler
  kAnalytic,    ///< needs planted generators; rejected by the factory
};

/// Parses a backend spec value ("auto", "mixed-radix", "qubit",
/// "sparse", "analytic"); std::nullopt on anything else.
std::optional<SamplerBackend> parse_sampler_backend(const std::string& s);

/// Spec-file / CLI name of a backend selector (inverse of parsing).
std::string sampler_backend_name(SamplerBackend b);

/// \brief How the hsp-layer solvers ask for a sampler. Defaults
/// reproduce the pre-factory behaviour (mixed-radix everywhere).
struct SamplerChoice {
  SamplerBackend backend = SamplerBackend::kAuto;
  /// Approximate-QFT cutoff, forwarded to QubitCosetSampler.
  int qubit_approx_cutoff = 0;
  /// Optional |H| lower bound known to the caller (e.g. from planted
  /// instance parameters); steers kAuto toward the sparse engine when
  /// the coset support is far below the dense amplitude count.
  u64 subgroup_order_hint = 0;
};

/// \brief What the factory will build for a choice, after the kAuto
/// heuristic AND the resource-budget preflight have both spoken.
struct SamplerPlan {
  SamplerBackend backend = SamplerBackend::kMixedRadix;  ///< concrete
  u64 estimated_bytes = 0;  ///< the backend's estimate_bytes preflight
  /// True when the budget limit pushed an auto-chosen dense backend to
  /// the sparse engine (the estimate above is then the sparse one).
  bool degraded = false;
  /// True when even the planned backend's estimate exceeds the global
  /// budget LIMIT — make_coset_sampler would throw a permanent
  /// resource_error. Admission layers use this to shed before queueing.
  bool over_budget = false;
};

/// \brief Resolves a choice against the kAuto heuristic and the global
/// ResourceBudget LIMIT (never the instantaneous headroom, so the plan
/// is deterministic under concurrency). An auto-chosen dense backend
/// whose estimate exceeds the limit degrades to sparse when the sparse
/// estimate fits and the domain is within the sparse sweep budget;
/// explicit backend requests never degrade. Never throws.
SamplerPlan plan_sampler(const SamplerChoice& choice,
                         const std::vector<u64>& moduli);

/// \brief Constructs the chosen oracle-driven backend over the given
/// domain. kAuto picks: sparse when the subgroup-order hint promises a
/// small support on a budget-fitting domain, mixed-radix when the
/// domain fits the dense budget, sparse otherwise (sole engine past
/// 2^26 amplitudes). kAnalytic is planted-information based and cannot
/// be built from a label function — the factory rejects it.
///
/// Resource budget: the plan's estimate is reserved against
/// ResourceBudget::global() BEFORE any allocation; the reservation
/// lives as long as the sampler. An over-limit plan throws a permanent
/// resource_error, a reservation race (estimate fits the limit but
/// concurrent holders own the headroom) a transient one.
std::unique_ptr<CosetSampler> make_coset_sampler(
    const SamplerChoice& choice, std::vector<u64> moduli, LabelFn f,
    bb::QueryCounter* counter);

}  // namespace nahsp::qs
