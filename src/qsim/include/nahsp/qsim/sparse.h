// Sparse coset-support statevector engine.
//
// The standard-circuit coset state has exactly |H| nonzero amplitudes
// (one coset of the hidden subgroup) and its post-QFT distribution is
// supported on the |A|/|H| points of H^perp — yet the dense backends
// allocate and sweep all prod(m_i) amplitudes. SparseCosetSampler
// stores only what the math requires:
//
//  - SparseAmpMap / SparseState: open-addressing hash containers in
//    structure-of-arrays layout (separate key / re / im arrays, one
//    metadata byte per slot), storing only nonzero amplitudes. Oracles
//    act as key permutations; no dense array ever exists.
//  - One serial O(|A|) label sweep discovers the class of the identity
//    (= H when f exactly hides a subgroup), maintaining an incremental
//    canonical basis of H and per-label class counts. The hiding
//    promise is verified structurally (class-of-identity closed as a
//    subgroup, all classes the same size, #classes * |H| = |A|) and a
//    violation raises oracle_error — the sparse engine is only exact
//    for genuinely hiding label functions, unlike the dense backends.
//  - The exact post-QFT distribution comes from a sparse-support DFT:
//    H^perp is enumerated (|A|/|H| points) and the coset state's
//    character sum is evaluated at those points only, in one
//    ThreadPool-parallel pass whose chunk layout depends only on the
//    support size (n=1 bit-identical to serial; the per-point inner
//    sums iterate the coset state in ascending key order).
//
// The distribution feeds the same cached AliasTable path the dense
// backends use, so every batched solver loop gets the sparse engine for
// free. Memory is O(|H| + |A|/|H|) instead of O(|A|); the |A| cost
// survives only as the one-time label sweep (time, not memory), so the
// domain cap is time-bounded (2^30) rather than the dense engines'
// 2^26 amplitude budget.
#pragma once

#include <complex>
#include <cstddef>
#include <utility>
#include <vector>

#include "nahsp/qsim/sampler.h"

namespace nahsp::qs {

/// \brief Open-addressing u64 -> u64 hash map in SoA layout (separate
/// key / value / occupancy arrays). Power-of-two capacity, linear
/// probing, grow at 70% load. Deterministic: layout is a pure function
/// of the insertion sequence.
class SparseAmpMap {
 public:
  explicit SparseAmpMap(std::size_t expected = 0);

  /// Value slot for `key`, inserted as `init` when absent.
  u64& at_or_insert(u64 key, u64 init);
  /// Pointer to the value for `key`, or nullptr when absent.
  const u64* find(u64 key) const;
  std::size_t size() const { return size_; }

  /// Visits every (key, value) pair in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (used_[s]) fn(keys_[s], vals_[s]);
    }
  }

 private:
  std::size_t slot_of(u64 key) const;
  void grow();

  std::vector<u64> keys_;
  std::vector<u64> vals_;
  std::vector<unsigned char> used_;
  std::size_t size_ = 0;
};

/// \brief Sparse statevector over the mixed-radix domain: only nonzero
/// amplitudes are stored, as an open-addressing hash set of flat domain
/// indices with SoA amplitude arrays (separate re / im).
class SparseState {
 public:
  explicit SparseState(std::vector<u64> moduli, std::size_t expected = 0);

  /// Adds (re, im) to the amplitude at `index`, creating the entry if
  /// needed (entries are never erased; exact zeros simply keep a slot).
  void add(u64 index, double re, double im);
  /// Amplitude at `index` (zero when no entry exists).
  std::complex<double> amp(u64 index) const;
  /// Number of stored (possibly zero) amplitudes.
  std::size_t nnz() const { return size_; }
  /// Sum of |amplitude|^2 over the stored entries.
  double norm() const;
  /// Scales every stored amplitude by 1/sqrt(norm()).
  void normalize();

  /// Relabels every stored key through `perm` (an injective map on the
  /// stored keys) — an oracle applied as a key permutation. Rebuilds
  /// the table; amplitudes are untouched.
  void apply_key_permutation(const std::function<u64(u64)>& perm);

  /// Stored entries as (index, amplitude), sorted by index — the
  /// canonical iteration order for deterministic reductions.
  std::vector<std::pair<u64, std::complex<double>>> entries() const;

  const std::vector<u64>& moduli() const { return moduli_; }

 private:
  std::size_t slot_of(u64 key) const;
  void grow();

  std::vector<u64> moduli_;
  std::vector<u64> keys_;
  std::vector<double> re_, im_;
  std::vector<unsigned char> used_;
  std::size_t size_ = 0;
};

/// \brief Fourth coset-sampler backend: sparse coset-support engine.
///
/// Requires the label function to exactly hide a subgroup H of the
/// domain (verified during the build; violations raise oracle_error).
/// The exact outcome distribution — uniform on H^perp — is computed by
/// a sparse-support DFT and cached on first use; every draw (scalar or
/// batched) is then one AliasTable draw. Degenerate hidden subgroups
/// are handled explicitly: |H| = |A| yields the point mass at 0 and
/// |H| = 1 yields closed-form uniform draws over the whole character
/// group (no table, no support enumeration).
class SparseCosetSampler final : public CosetSampler {
 public:
  SparseCosetSampler(std::vector<u64> moduli, LabelFn f,
                     bb::QueryCounter* counter);

  /// \brief Peak-footprint preflight, in bytes: O(|H| + |A|/|H|)
  /// entries. With a caller-vouched |H| lower bound the two terms are
  /// evaluated exactly; without one the balanced worst case 2*sqrt(|A|)
  /// is assumed (the entry count any |H| splits into at most). The |A|
  /// label sweep costs time, not memory, so it does not appear here.
  static u64 estimate_bytes(const std::vector<u64>& moduli,
                            u64 subgroup_order_hint = 0);

  la::AbVec sample_character(Rng& rng) override;
  std::vector<la::AbVec> sample_characters(Rng& rng,
                                           std::size_t k) override;
  std::string backend_name() const override { return "sparse"; }
  std::vector<la::AbVec> cached_support() const override;

  /// True once the cached outcome distribution is live (diagnostics).
  bool distribution_cached() const {
    return dist_ != nullptr || uniform_mode_;
  }
  /// |H| recovered by the label sweep (0 before the first draw).
  u64 subgroup_order() const { return h_order_; }
  /// Support size of the cached distribution (0 before the first draw;
  /// |A| in uniform mode, reported without materialising it).
  std::size_t support_size() const;

 private:
  void ensure_distribution();
  la::AbVec draw(Rng& rng);

  LabelFn f_;
  bb::QueryCounter* counter_;
  u64 domain_ = 0;            // |A|
  u64 h_order_ = 0;           // |H| once built
  bool uniform_mode_ = false; // |H| = 1: closed-form uniform draws
  bool built_ = false;

  std::vector<la::AbVec> support_points_;  // enumerated H^perp
  std::vector<std::size_t> support_;       // indices kept by compression
  std::unique_ptr<AliasTable> dist_;       // distribution over support_
};

}  // namespace nahsp::qs
