// Gate-level qubit statevector simulator.
//
// This is the "hardware" substitute for the paper's quantum Turing
// machine: a dense complex statevector with one- and two-qubit gates,
// classical-function oracles, and projective measurement. Amplitude
// kernels schedule over the common ThreadPool above a grain of 2^14
// amplitudes (the simulator is the hot loop of every end-to-end
// experiment); results are bitwise identical at any thread count, and
// a single StateVector must not be mutated from two threads.
//
// Kernel engine (docs/ARCHITECTURE.md "The kernel engine"): gate
// kernels iterate pair representatives directly — 2^(n-1) low/high
// bit-split indices instead of a branchy sweep over all 2^n — and the
// fused QFT stage applies a Hadamard together with the stage's whole
// accumulated controlled-phase ramp in one pass from a precomputed
// twiddle table. Classical oracles take dense lookup tables so the hot
// loop never pays a std::function indirect call.
//
// Qubit convention: qubit q corresponds to bit q of the basis index
// (qubit 0 is the least significant bit).
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "nahsp/common/rng.h"

namespace nahsp::qs {

using cplx = std::complex<double>;
using u64 = std::uint64_t;

/// \brief Dense statevector on n qubits (2^n amplitudes).
///
/// Gate kernels run over the common ThreadPool (serial below 2^14
/// amplitudes); set_parallelism / NAHSP_THREADS controls the width.
class StateVector {
 public:
  /// \brief The all-zeros basis state |0...0>.
  /// \param n_qubits Register width; must be in [1, 28].
  explicit StateVector(int n_qubits);

  /// \brief Uniform superposition over all basis states.
  static StateVector uniform(int n_qubits);

  /// \brief Basis state |value>.
  static StateVector basis(int n_qubits, u64 value);

  int qubits() const { return n_; }
  std::size_t dim() const { return amps_.size(); }

  cplx amp(u64 basis_state) const { return amps_[basis_state]; }
  void set_amp(u64 basis_state, cplx a) { amps_[basis_state] = a; }

  // ----- gates -----
  void apply_h(int q);
  void apply_x(int q);
  void apply_z(int q);
  /// diag(1, e^{i theta}) on qubit q.
  void apply_phase(int q, double theta);
  /// diag(1, w) on qubit q with the phase factor precomputed by the
  /// caller (|w| must be 1) — lets circuit drivers pay one std::polar
  /// per distinct angle instead of one per gate application.
  void apply_phase(int q, cplx w);
  /// Controlled phase: multiplies amplitudes with both bits set.
  void apply_cphase(int c, int t, double theta);
  /// Controlled phase with a precomputed factor (|w| must be 1).
  void apply_cphase(int c, int t, cplx w);
  void apply_cnot(int c, int t);
  void apply_swap(int a, int b);

  /// \brief Fused QFT stage: Hadamard on qubit lo+i combined with the
  /// stage's full controlled-phase ramp in one pair sweep.
  ///
  /// Equivalent to H(lo+i) followed by CP(lo+j, lo+i, ±pi/2^(i-j)) for
  /// every j < i with i-j <= approx_cutoff (all j when the cutoff is 0)
  /// — the exact gate ladder of one apply_qft target — but the ramp
  /// phase exp(±i*pi*L/2^i), L the low i register bits, comes from a
  /// precomputed two-level twiddle table instead of i-1 extra sweeps.
  /// `inverse` conjugates the angles and applies the ramp before the
  /// Hadamard (the inverse-QFT gate order).
  void apply_fused_qft_stage(int lo, int i, int approx_cutoff,
                             bool inverse);

  /// \brief Reverses the qubit order of register [lo, lo+bits) in a
  /// single sweep (the QFT's final bit-reversal, replacing bits/2
  /// pairwise swap passes).
  void reverse_qubit_order(int lo, int bits);

  /// \brief Reversible classical oracle |s> -> |pi(s)>.
  /// \param pi Must be a bijection on [0, 2^n); it is evaluated
  ///           concurrently by the kernel and must be thread-safe.
  void apply_permutation(const std::function<u64(u64)>& pi);

  /// \brief Table-driven permutation oracle: `table[s]` is pi(s).
  /// Same semantics as the function overload with no per-amplitude
  /// indirect call; `table.size()` must equal dim().
  void apply_permutation(const std::vector<u64>& table);

  /// \brief XOR oracle: |x>|y> -> |x>|y xor f(x)> where x occupies
  /// [in_lo, in_lo+in_bits) and y occupies [out_lo, out_lo+out_bits).
  /// \param f Classical function; its value is masked to out_bits. It
  ///          is evaluated concurrently by the kernel and must be
  ///          thread-safe (the samplers pass their cached label table
  ///          to the vector overload instead).
  void apply_xor_function(int in_lo, int in_bits, int out_lo, int out_bits,
                          const std::function<u64(u64)>& f);

  /// \brief Table-driven XOR oracle: `table[x]` is f(x), evaluated once
  /// by the caller (the samplers cache it across batched rounds).
  /// `table.size()` must equal 2^in_bits.
  void apply_xor_function(int in_lo, int in_bits, int out_lo, int out_bits,
                          const std::vector<u64>& table);

  // ----- measurement -----
  /// \brief Squared norm (should stay 1 up to rounding; tested
  /// invariant). Deterministic fixed-chunk reduction: the value is
  /// identical at every thread count.
  double norm2() const;

  /// \brief Samples a full-basis measurement outcome without
  /// collapsing. The prefix scan runs over per-chunk partial norms
  /// (fixed chunk layout), so the outcome is thread-count independent.
  u64 sample(Rng& rng) const;

  /// \brief Measures qubits [lo, lo+bits), collapses the state, and
  /// returns the outcome. The marginal histogram is built outcome-major
  /// over the ThreadPool; each outcome sums its strided support in
  /// ascending index order — the exact addition order of a serial
  /// interleaved sweep — so the histogram is bitwise identical at every
  /// thread count.
  u64 measure_range(int lo, int bits, Rng& rng);

  /// \brief Probability of measuring `value` on qubits [lo, lo+bits).
  double range_probability(int lo, int bits, u64 value) const;

  const std::vector<cplx>& amplitudes() const { return amps_; }

 private:
  void check_qubit(int q) const;

  int n_;
  std::vector<cplx> amps_;
};

}  // namespace nahsp::qs
