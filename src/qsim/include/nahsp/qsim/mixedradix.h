// Mixed-radix register statevector: the natural simulator for the
// Abelian HSP circuit over A = Z_{s1} x ... x Z_{sr}.
//
// The paper's algorithm (Lemma 9) needs the exact QFT over arbitrary
// cyclic factors Z_s; on qubit hardware one approximates it, but a
// simulator can apply the exact per-cell DFT directly. The state is a
// dense vector over prod(s_i) mixed-radix digits; cell transforms cost
// O(D * s_i) (O(D log s_i) on power-of-two cells) and schedule over the
// common ThreadPool across the D / s_i independent fibres — results are
// bitwise identical at any thread count. Power-of-two cells share one
// precomputed twiddle-table set per transform, and a cell spanning the
// whole state (the Shor Z_{2^t} shape) parallelises across the
// butterflies of each FFT stage instead of across fibres (see
// docs/ARCHITECTURE.md "The kernel engine").
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "nahsp/common/rng.h"

namespace nahsp::qs {

using cplx = std::complex<double>;
using u64 = std::uint64_t;

/// \brief Dense state over Z_{d0} x Z_{d1} x ... (row-major, last
/// cell fastest).
///
/// Kernels run over the common ThreadPool; a single state must not be
/// mutated from two threads.
class MixedRadixState {
 public:
  /// |0, 0, ..., 0>.
  explicit MixedRadixState(std::vector<u64> dims);

  /// Uniform superposition over the whole domain.
  static MixedRadixState uniform(std::vector<u64> dims);

  std::size_t dim() const { return amps_.size(); }
  const std::vector<u64>& dims() const { return dims_; }

  cplx amp(std::size_t i) const { return amps_[i]; }
  void set_amp(std::size_t i, cplx a) { amps_[i] = a; }

  /// Flat index of a digit tuple and back.
  std::size_t index_of(const std::vector<u64>& digits) const;
  std::vector<u64> digits_of(std::size_t index) const;

  /// \brief Exact QFT on one cell: |x_c> -> (1/sqrt(d_c)) sum_y
  /// exp(+-2 pi i x_c y / d_c)|y>.
  /// \param cell    Cell index into dims().
  /// \param inverse Apply the conjugate transform.
  void qft_cell(std::size_t cell, bool inverse = false);

  /// \brief QFT on every cell (the Abelian QFT over the product
  /// group).
  void qft_all(bool inverse = false);

  /// Simulates measuring an ancilla register holding `labels[i]` for
  /// basis state i (one oracle application in superposition): draws a
  /// label with probability proportional to the total weight of its
  /// preimage, collapses onto that preimage, renormalises, and returns
  /// the measured label.
  u64 collapse_by_label(const std::vector<u64>& labels, Rng& rng);

  /// Full measurement: samples a basis state (no collapse), as digits.
  std::vector<u64> sample(Rng& rng) const;

  double norm2() const;

 private:
  std::vector<u64> dims_;
  std::vector<std::size_t> strides_;
  std::vector<cplx> amps_;
};

}  // namespace nahsp::qs
