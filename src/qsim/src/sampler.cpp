#include "nahsp/qsim/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/qsim/qft.h"
#include "sampler_detail.h"

namespace nahsp::qs {

// The dense-backend constants and the shared distribution-build helpers
// (domain guard, index decode, support compression) live in
// sampler_detail.h, shared with the sparse engine.
using detail::compress_distribution;
using detail::dense_domain_size;
using detail::digits_of_index;
using detail::kGrain;
using detail::kMaxSimQubits;

namespace {

// Per-element cost factor of qft_all on this domain (the radix-2 fast
// path costs ~log d_c per cell, the dense transform d_c).
double qft_cost_estimate(const std::vector<u64>& moduli, std::size_t d) {
  double cost = 0.0;
  for (const u64 m : moduli) {
    const double per_cell =
        (is_pow2(m) && m >= 8) ? static_cast<double>(bits_for(m))
                               : static_cast<double>(m);
    cost += static_cast<double>(d) * per_cell;
  }
  return cost;
}

}  // namespace

std::vector<la::AbVec> CosetSampler::sample_characters(Rng& rng,
                                                       std::size_t k) {
  std::vector<la::AbVec> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(sample_character(rng));
  return out;
}

// Per-element dense footprint: label cache (8) + probability vector (8)
// + two complex-double mixed-radix states live at once during the
// distribution build (2 x 16) = 48 bytes per domain element.
u64 MixedRadixCosetSampler::estimate_bytes(const std::vector<u64>& moduli) {
  return detail::saturating_mul(detail::saturating_domain(moduli), 48);
}

// Dense label table (8) + the (in + out)-qubit statevector at the
// one-ancilla minimum (16 x 2) = 40 bytes per domain element. A lower
// bound: out_bits can exceed 1, but never past the qubit budget the
// constructor enforces anyway.
u64 QubitCosetSampler::estimate_bytes(const std::vector<u64>& moduli) {
  return detail::saturating_mul(detail::saturating_domain(moduli), 40);
}

u64 AnalyticCosetSampler::estimate_bytes(const std::vector<u64>& moduli) {
  // At most rank(moduli) perp generators of rank(moduli) digits each.
  const u64 r = static_cast<u64>(moduli.size());
  return 4096 + detail::saturating_mul(detail::saturating_mul(r, r), 8);
}

MixedRadixCosetSampler::MixedRadixCosetSampler(std::vector<u64> moduli,
                                               LabelFn f,
                                               bb::QueryCounter* counter)
    : CosetSampler(std::move(moduli)), f_(std::move(f)), counter_(counter) {
  NAHSP_REQUIRE(f_ != nullptr, "null label function");
  (void)dense_domain_size(moduli_);
}

void MixedRadixCosetSampler::ensure_labels() {
  if (labels_ready_) return;
  const std::size_t d = dense_domain_size(moduli_);
  label_cache_.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    label_cache_[i] = f_(digits_of_index(i, moduli_));
  }
  if (counter_ != nullptr) counter_->sim_basis_evals += d;
  labels_ready_ = true;
}

// Estimated one-time cost of build_distribution, in units of one scalar
// circuit round — the adaptive threshold for switching to the cache.
double MixedRadixCosetSampler::setup_rounds_estimate() {
  ensure_labels();
  const std::size_t d = label_cache_.size();
  std::unordered_map<u64, std::size_t> class_sizes;
  for (const u64 lab : label_cache_) ++class_sizes[lab];
  const double qft_cost = qft_cost_estimate(moduli_, d);
  const double round_cost = 2.0 * static_cast<double>(d) + qft_cost;
  double setup = qft_cost;  // the final collision transform
  for (const auto& [lab, s] : class_sizes) {
    (void)lab;
    const double sd = static_cast<double>(s);
    setup += std::min(sd * sd, qft_cost);
  }
  return setup / round_cost;
}

// Exact outcome distribution of the circuit, for ANY label function:
//   P(y) = (1/|A|^2) * sum_labels |sum_{x: f(x)=label} chi_y(x)|^2.
// Each label class contributes either through the collision function
// c(z) = #{(x, x') in S^2 : x - x' = z} (one character transform of c at
// the end covers all such classes) or, when |S|^2 would exceed one
// transform, through the DFT of its normalised indicator directly.
void MixedRadixCosetSampler::build_distribution() {
  if (dist_) return;
  ensure_labels();
  const std::size_t d = label_cache_.size();
  const std::size_t r = moduli_.size();
  std::vector<std::size_t> strides(r, 1);
  for (std::size_t i = r; i-- > 1;) strides[i - 1] = strides[i] * moduli_[i];

  std::unordered_map<u64, std::size_t> class_of;
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < d; ++i) {
    const auto [it, fresh] = class_of.emplace(label_cache_[i], classes.size());
    if (fresh) classes.emplace_back();
    classes[it->second].push_back(i);
  }

  // Degenerate label structures, exact in closed form. For a hiding f
  // these are the |H| = |A| and |H| = 1 hidden subgroups; the closed
  // forms below hold for ANY label function with this class structure
  // (one class: the coset state is uniform over A, so the QFT collapses
  // to the trivial character; all-singleton classes: the coset state is
  // one basis vector, so the outcome is exactly uniform). Skipping the
  // transforms avoids both their rounding noise and their memory.
  if (classes.size() == 1) {
    support_.assign(1, 0);
    dist_ = std::make_unique<AliasTable>(std::vector<double>{1.0});
    return;
  }
  if (classes.size() == d) {
    support_.resize(d);
    for (std::size_t y = 0; y < d; ++y) support_[y] = y;
    dist_ = std::make_unique<AliasTable>(
        std::vector<double>(d, 1.0 / static_cast<double>(d)));
    return;
  }

  std::vector<double> prob(d, 0.0);
  std::optional<MixedRadixState> collisions;
  for (const auto& members : classes) {
    const std::size_t s = members.size();
    if (s * s <= d) {
      // Collision route: cheaper than a transform for small classes.
      if (!collisions) {
        collisions.emplace(moduli_);
        collisions->set_amp(0, 0.0);
      }
      std::vector<la::AbVec> digs;
      digs.reserve(s);
      for (const std::size_t idx : members)
        digs.push_back(digits_of_index(idx, moduli_));
      for (std::size_t a = 0; a < s; ++a) {
        for (std::size_t b = 0; b < s; ++b) {
          std::size_t z = 0;
          for (std::size_t i = 0; i < r; ++i)
            z += ((digs[a][i] + moduli_[i] - digs[b][i]) % moduli_[i]) *
                 strides[i];
          collisions->set_amp(z, collisions->amp(z) + 1.0);
        }
      }
    } else {
      // Indicator-DFT route: P(y | this class) directly.
      MixedRadixState st(moduli_);
      st.set_amp(0, 0.0);
      const double a = 1.0 / std::sqrt(static_cast<double>(s));
      for (const std::size_t idx : members) st.set_amp(idx, a);
      st.qft_all();
      const double w = static_cast<double>(s) / static_cast<double>(d);
      parallel_for(0, d, kGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t y = lo; y < hi; ++y)
          prob[y] += w * std::norm(st.amp(y));
      });
    }
  }
  if (collisions) {
    collisions->qft_all();
    // c is symmetric (c(z) = c(-z)), so its transform is real:
    // contribution(y) = (1/d^2) sum_z c(z) chi_y(z) = amp(y) * sqrt(d)/d^2.
    const double scale = std::sqrt(static_cast<double>(d)) /
                         (static_cast<double>(d) * static_cast<double>(d));
    parallel_for(0, d, kGrain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t y = lo; y < hi; ++y)
        prob[y] += scale * collisions->amp(y).real();
    });
  }

  dist_ = compress_distribution(prob, support_);
}

la::AbVec MixedRadixCosetSampler::draw_cached(Rng& rng) {
  return digits_of_index(support_[dist_->sample(rng)], moduli_);
}

std::vector<la::AbVec> MixedRadixCosetSampler::cached_support() const {
  std::vector<la::AbVec> out;
  if (!dist_) return out;
  out.reserve(support_.size());
  for (const std::size_t s : support_)
    out.push_back(digits_of_index(s, moduli_));
  return out;
}

la::AbVec MixedRadixCosetSampler::sample_character(Rng& rng) {
  if (counter_ != nullptr) ++counter_->quantum_queries;
  if (dist_) return draw_cached(rng);
  ensure_labels();
  MixedRadixState st = MixedRadixState::uniform(moduli_);
  st.collapse_by_label(label_cache_, rng);
  st.qft_all();
  return st.sample(rng);
}

std::vector<la::AbVec> MixedRadixCosetSampler::sample_characters(
    Rng& rng, std::size_t k) {
  std::vector<la::AbVec> out;
  out.reserve(k);
  if (k == 0) return out;
  if (!dist_) {
    if (setup_rounds_ < 0.0) setup_rounds_ = setup_rounds_estimate();
    // Build the cache once the cumulative batched demand has caught up
    // with its estimated cost; until then the scalar circuit is cheaper.
    if (static_cast<double>(uncached_batch_draws_) +
            static_cast<double>(k) >=
        setup_rounds_) {
      build_distribution();
    } else {
      uncached_batch_draws_ += k;
    }
  }
  if (dist_) {
    if (counter_ != nullptr) counter_->quantum_queries += k;
    for (std::size_t i = 0; i < k; ++i) out.push_back(draw_cached(rng));
  } else {
    // sample_character counts one quantum query per draw itself.
    for (std::size_t i = 0; i < k; ++i) out.push_back(sample_character(rng));
  }
  return out;
}

QubitCosetSampler::QubitCosetSampler(std::vector<u64> moduli, LabelFn f,
                                     bb::QueryCounter* counter,
                                     int approx_cutoff)
    : CosetSampler(std::move(moduli)),
      f_(std::move(f)),
      counter_(counter),
      approx_cutoff_(approx_cutoff) {
  NAHSP_REQUIRE(f_ != nullptr, "null label function");
  for (const u64 m : moduli_) {
    NAHSP_REQUIRE(is_pow2(m), "qubit backend needs power-of-two moduli");
    cell_bits_.push_back(bits_for(m));
    in_bits_ += bits_for(m);
  }
  NAHSP_REQUIRE(in_bits_ >= 1, "empty domain");
  // out_bits_ is only known once the labels are evaluated (it never
  // exceeds in_bits_); the exact in+out check happens in ensure_labels.
  NAHSP_REQUIRE(in_bits_ + 1 <= kMaxSimQubits, "qubit budget exceeded");
}

void QubitCosetSampler::ensure_labels() {
  if (labels_ready_) return;
  const std::size_t d = std::size_t{1} << in_bits_;
  // Fail as soon as the label count is provably over budget, not after
  // the full 2^in_bits sweep has filled a multi-GB map.
  const std::size_t max_labels = std::size_t{1}
                                 << (kMaxSimQubits - in_bits_);
  dense_labels_.resize(d);
  std::unordered_map<u64, u64> dense;
  for (std::size_t i = 0; i < d; ++i) {
    // Unpack the qubit-register index into digits (cell 0 occupies the
    // least significant bits).
    la::AbVec digits(moduli_.size());
    std::size_t rest = i;
    for (std::size_t c = 0; c < moduli_.size(); ++c) {
      digits[c] = rest & (moduli_[c] - 1);
      rest >>= cell_bits_[c];
    }
    const u64 lab = f_(digits);
    const auto [it, fresh] = dense.emplace(lab, dense.size());
    dense_labels_[i] = it->second;
    (void)fresh;
    NAHSP_REQUIRE(dense.size() <= max_labels, "qubit budget exceeded");
  }
  n_labels_ = dense.size();
  out_bits_ = bits_for(dense.size());
  if (out_bits_ == 0) out_bits_ = 1;
  NAHSP_REQUIRE(in_bits_ + out_bits_ <= kMaxSimQubits,
                "qubit budget exceeded");
  if (counter_ != nullptr) counter_->sim_basis_evals += d;
  labels_ready_ = true;
}

la::AbVec QubitCosetSampler::decode_register(u64 y) const {
  la::AbVec digits(moduli_.size());
  u64 rest = y;
  for (std::size_t c = 0; c < moduli_.size(); ++c) {
    digits[c] = rest & (moduli_[c] - 1);
    rest >>= cell_bits_[c];
  }
  return digits;
}

// Exact joint outcome distribution from ONE deferred-measurement run:
// the ancilla measurement commutes with the input-register QFT, so the
// circuit is simulated without collapsing and the ancilla marginalised
// out at the end. Faithful to the gate-level circuit for any
// approx_cutoff, at roughly the cost of a single scalar round.
void QubitCosetSampler::ensure_distribution() {
  if (dist_) return;
  ensure_labels();
  const std::size_t din_sz = std::size_t{1} << in_bits_;
  // Degenerate label structures, exact in closed form — but ONLY for
  // the exact QFT ladder: with approx_cutoff > 0 the cached
  // distribution must stay faithful to the approximate gate-level
  // circuit, which is neither an exact point mass nor exactly uniform.
  if (approx_cutoff_ == 0) {
    if (n_labels_ == 1) {
      // Constant label: the coset state is uniform over the register,
      // so the exact QFT collapses to the trivial character.
      support_.assign(1, 0);
      dist_ = std::make_unique<AliasTable>(std::vector<double>{1.0});
      return;
    }
    if (n_labels_ == din_sz) {
      // Injective label: one-point coset states; exactly uniform.
      support_.resize(din_sz);
      for (std::size_t y = 0; y < din_sz; ++y) support_[y] = y;
      dist_ = std::make_unique<AliasTable>(
          std::vector<double>(din_sz, 1.0 / static_cast<double>(din_sz)));
      return;
    }
  }
  StateVector sv(in_bits_ + out_bits_);
  for (int q = 0; q < in_bits_; ++q) sv.apply_h(q);
  // Table overload: the cached label sweep doubles as the oracle's
  // dense lookup table, so the kernel pays no indirect call per
  // amplitude (batched rounds reuse the same cache).
  sv.apply_xor_function(0, in_bits_, in_bits_, out_bits_, dense_labels_);
  int lo = 0;
  for (std::size_t c = 0; c < moduli_.size(); ++c) {
    apply_qft(sv, lo, cell_bits_[c], approx_cutoff_);
    lo += cell_bits_[c];
  }
  const u64 din = u64{1} << in_bits_;
  std::vector<double> prob(din, 0.0);
  const std::size_t n_anc = sv.dim() / din;
  // Marginalise the ancilla out bucket-wise: chunk c owns prob[y] for y
  // in its subrange, and each bucket sums its ancilla blocks in
  // ascending index order — the exact per-bucket order of the serial
  // interleaved sweep, so the cached distribution is bitwise identical
  // at any thread count.
  const std::size_t grain =
      std::max<std::size_t>(1, kGrain / std::max<std::size_t>(1, n_anc));
  parallel_for(0, din, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t y = lo; y < hi; ++y) {
      double s = 0.0;
      for (std::size_t a = 0; a < n_anc; ++a)
        s += std::norm(sv.amp(a * din + y));
      prob[y] = s;
    }
  });
  dist_ = compress_distribution(prob, support_);
}

std::vector<la::AbVec> QubitCosetSampler::cached_support() const {
  std::vector<la::AbVec> out;
  if (!dist_) return out;
  out.reserve(support_.size());
  for (const u64 s : support_) out.push_back(decode_register(s));
  return out;
}

la::AbVec QubitCosetSampler::sample_character(Rng& rng) {
  if (counter_ != nullptr) ++counter_->quantum_queries;
  if (dist_) return decode_register(support_[dist_->sample(rng)]);
  ensure_labels();
  StateVector sv(in_bits_ + out_bits_);
  for (int q = 0; q < in_bits_; ++q) sv.apply_h(q);
  sv.apply_xor_function(0, in_bits_, in_bits_, out_bits_, dense_labels_);
  sv.measure_range(in_bits_, out_bits_, rng);
  // Gate-level QFT over each cyclic factor: cell c occupies its own
  // contiguous qubit block and carries an independent QFT over Z_{2^b}.
  int lo = 0;
  for (std::size_t c = 0; c < moduli_.size(); ++c) {
    apply_qft(sv, lo, cell_bits_[c], approx_cutoff_);
    lo += cell_bits_[c];
  }
  const u64 y = sv.measure_range(0, in_bits_, rng);
  return decode_register(y);
}

std::vector<la::AbVec> QubitCosetSampler::sample_characters(Rng& rng,
                                                            std::size_t k) {
  std::vector<la::AbVec> out;
  out.reserve(k);
  if (k == 0) return out;
  // One deferred-measurement run never costs more than one scalar round,
  // so the qubit backend caches unconditionally on the first batch.
  ensure_distribution();
  if (counter_ != nullptr) counter_->quantum_queries += k;
  for (std::size_t i = 0; i < k; ++i)
    out.push_back(decode_register(support_[dist_->sample(rng)]));
  return out;
}

AnalyticCosetSampler::AnalyticCosetSampler(
    std::vector<u64> moduli, std::vector<la::AbVec> hidden_generators,
    bb::QueryCounter* counter)
    : CosetSampler(std::move(moduli)), counter_(counter) {
  // H^perp = { y : y annihilates every generator of H } — the same
  // congruence system as the decoding step, with roles swapped (the
  // pairing sum_i x_i y_i L/s_i is symmetric in x and y).
  perp_gens_ = la::congruence_kernel(hidden_generators, moduli_);
  exponent_ = 1;
  for (const u64 m : moduli_) exponent_ = nt::lcm(exponent_, m);
}

la::AbVec AnalyticCosetSampler::sample_character(Rng& rng) {
  if (counter_ != nullptr) ++counter_->quantum_queries;
  // Uniform over the subgroup generated by perp_gens_: a random Z_L
  // combination is the image of uniform input under a surjective
  // homomorphism Z_L^k -> H^perp, hence uniform.
  la::AbVec y(moduli_.size(), 0);
  for (const la::AbVec& g : perp_gens_) {
    const u64 c = rng.below(exponent_);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = (y[i] + nt::mulmod(c, g[i], moduli_[i])) % moduli_[i];
    }
  }
  return y;
}

}  // namespace nahsp::qs
