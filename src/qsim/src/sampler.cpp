#include "nahsp/qsim/sampler.h"

#include <unordered_map>

#include "nahsp/common/bits.h"
#include "nahsp/common/check.h"
#include "nahsp/numtheory/arith.h"
#include "nahsp/qsim/qft.h"

namespace nahsp::qs {

namespace {

// Hard cap on simulated state size: at most 2^kMaxSimQubits amplitudes
// (1 GiB of complex doubles), for both backends.
constexpr int kMaxSimQubits = 26;

std::size_t domain_size(const std::vector<u64>& moduli) {
  std::size_t d = 1;
  for (const u64 m : moduli) {
    NAHSP_REQUIRE(m >= 1, "modulus must be >= 1");
    NAHSP_REQUIRE(d <= (std::size_t{1} << kMaxSimQubits) / m,
                  "domain exceeds simulator budget");
    d *= m;
  }
  return d;
}

la::AbVec digits_of_index(std::size_t idx, const std::vector<u64>& moduli) {
  la::AbVec digits(moduli.size());
  for (std::size_t i = moduli.size(); i-- > 0;) {
    digits[i] = idx % moduli[i];
    idx /= moduli[i];
  }
  return digits;
}

}  // namespace

MixedRadixCosetSampler::MixedRadixCosetSampler(std::vector<u64> moduli,
                                               LabelFn f,
                                               bb::QueryCounter* counter)
    : CosetSampler(std::move(moduli)), f_(std::move(f)), counter_(counter) {
  NAHSP_REQUIRE(f_ != nullptr, "null label function");
  (void)domain_size(moduli_);
}

void MixedRadixCosetSampler::ensure_labels() {
  if (labels_ready_) return;
  const std::size_t d = domain_size(moduli_);
  label_cache_.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    label_cache_[i] = f_(digits_of_index(i, moduli_));
  }
  if (counter_ != nullptr) counter_->sim_basis_evals += d;
  labels_ready_ = true;
}

la::AbVec MixedRadixCosetSampler::sample_character(Rng& rng) {
  ensure_labels();
  if (counter_ != nullptr) ++counter_->quantum_queries;
  MixedRadixState st = MixedRadixState::uniform(moduli_);
  st.collapse_by_label(label_cache_, rng);
  st.qft_all();
  return st.sample(rng);
}

QubitCosetSampler::QubitCosetSampler(std::vector<u64> moduli, LabelFn f,
                                     bb::QueryCounter* counter,
                                     int approx_cutoff)
    : CosetSampler(std::move(moduli)),
      f_(std::move(f)),
      counter_(counter),
      approx_cutoff_(approx_cutoff) {
  NAHSP_REQUIRE(f_ != nullptr, "null label function");
  for (const u64 m : moduli_) {
    NAHSP_REQUIRE(is_pow2(m), "qubit backend needs power-of-two moduli");
    cell_bits_.push_back(bits_for(m));
    in_bits_ += bits_for(m);
  }
  NAHSP_REQUIRE(in_bits_ >= 1, "empty domain");
  // out_bits_ is only known once the labels are evaluated (it never
  // exceeds in_bits_); the exact in+out check happens in ensure_labels.
  NAHSP_REQUIRE(in_bits_ + 1 <= kMaxSimQubits, "qubit budget exceeded");
}

void QubitCosetSampler::ensure_labels() {
  if (labels_ready_) return;
  const std::size_t d = std::size_t{1} << in_bits_;
  // Fail as soon as the label count is provably over budget, not after
  // the full 2^in_bits sweep has filled a multi-GB map.
  const std::size_t max_labels = std::size_t{1}
                                 << (kMaxSimQubits - in_bits_);
  dense_labels_.resize(d);
  std::unordered_map<u64, u64> dense;
  for (std::size_t i = 0; i < d; ++i) {
    // Unpack the qubit-register index into digits (cell 0 occupies the
    // least significant bits).
    la::AbVec digits(moduli_.size());
    std::size_t rest = i;
    for (std::size_t c = 0; c < moduli_.size(); ++c) {
      digits[c] = rest & (moduli_[c] - 1);
      rest >>= cell_bits_[c];
    }
    const u64 lab = f_(digits);
    const auto [it, fresh] = dense.emplace(lab, dense.size());
    dense_labels_[i] = it->second;
    (void)fresh;
    NAHSP_REQUIRE(dense.size() <= max_labels, "qubit budget exceeded");
  }
  out_bits_ = bits_for(dense.size());
  if (out_bits_ == 0) out_bits_ = 1;
  NAHSP_REQUIRE(in_bits_ + out_bits_ <= kMaxSimQubits,
                "qubit budget exceeded");
  if (counter_ != nullptr) counter_->sim_basis_evals += d;
  labels_ready_ = true;
}

la::AbVec QubitCosetSampler::sample_character(Rng& rng) {
  ensure_labels();
  if (counter_ != nullptr) ++counter_->quantum_queries;
  StateVector sv(in_bits_ + out_bits_);
  for (int q = 0; q < in_bits_; ++q) sv.apply_h(q);
  sv.apply_xor_function(0, in_bits_, in_bits_, out_bits_,
                        [this](u64 x) { return dense_labels_[x]; });
  sv.measure_range(in_bits_, out_bits_, rng);
  // Gate-level QFT over each cyclic factor: cell c occupies its own
  // contiguous qubit block and carries an independent QFT over Z_{2^b}.
  int lo = 0;
  for (std::size_t c = 0; c < moduli_.size(); ++c) {
    apply_qft(sv, lo, cell_bits_[c], approx_cutoff_);
    lo += cell_bits_[c];
  }
  const u64 y = sv.measure_range(0, in_bits_, rng);
  la::AbVec digits(moduli_.size());
  u64 rest = y;
  for (std::size_t c = 0; c < moduli_.size(); ++c) {
    digits[c] = rest & (moduli_[c] - 1);
    rest >>= cell_bits_[c];
  }
  return digits;
}

AnalyticCosetSampler::AnalyticCosetSampler(
    std::vector<u64> moduli, std::vector<la::AbVec> hidden_generators,
    bb::QueryCounter* counter)
    : CosetSampler(std::move(moduli)), counter_(counter) {
  // H^perp = { y : y annihilates every generator of H } — the same
  // congruence system as the decoding step, with roles swapped (the
  // pairing sum_i x_i y_i L/s_i is symmetric in x and y).
  perp_gens_ = la::congruence_kernel(hidden_generators, moduli_);
  exponent_ = 1;
  for (const u64 m : moduli_) exponent_ = nt::lcm(exponent_, m);
}

la::AbVec AnalyticCosetSampler::sample_character(Rng& rng) {
  if (counter_ != nullptr) ++counter_->quantum_queries;
  // Uniform over the subgroup generated by perp_gens_: a random Z_L
  // combination is the image of uniform input under a surjective
  // homomorphism Z_L^k -> H^perp, hence uniform.
  la::AbVec y(moduli_.size(), 0);
  for (const la::AbVec& g : perp_gens_) {
    const u64 c = rng.below(exponent_);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = (y[i] + nt::mulmod(c, g[i], moduli_[i])) % moduli_[i];
    }
  }
  return y;
}

}  // namespace nahsp::qs
