// Backend factory: the one construction path the hsp-layer solvers use
// to obtain an oracle-driven coset sampler (sampler.h for the choice
// contract).
#include "nahsp/qsim/sampler.h"

#include "nahsp/common/budget.h"
#include "nahsp/common/check.h"
#include "nahsp/common/faultpoint.h"
#include "nahsp/qsim/sparse.h"
#include "sampler_detail.h"

namespace nahsp::qs {

namespace {

// Domain size capped at `cap` (returns cap + 1 on overflow) — lets the
// heuristic compare against budgets without tripping the constructors'
// hard REQUIREs.
std::size_t capped_domain(const std::vector<u64>& moduli, std::size_t cap) {
  std::size_t d = 1;
  for (const u64 m : moduli) {
    if (m == 0) return cap + 1;
    if (d > cap / m) return cap + 1;
    d *= m;
  }
  return d;
}

// kAuto: sparse when the caller vouches for a subgroup of order >= 64
// (support <= |A|/64, so the sparse build beats the dense sweep's
// memory) on a sweep-budget domain; otherwise dense mixed-radix while
// it fits, sparse beyond that.
SamplerBackend auto_backend(const SamplerChoice& choice,
                            const std::vector<u64>& moduli) {
  const std::size_t dense_cap = std::size_t{1} << detail::kMaxSimQubits;
  const std::size_t sparse_cap = std::size_t{1} << 30;
  const std::size_t d = capped_domain(moduli, sparse_cap);
  if (choice.subgroup_order_hint >= 64 && d <= sparse_cap) {
    return SamplerBackend::kSparse;
  }
  if (d <= dense_cap) return SamplerBackend::kMixedRadix;
  return SamplerBackend::kSparse;
}

}  // namespace

std::optional<SamplerBackend> parse_sampler_backend(const std::string& s) {
  if (s == "auto") return SamplerBackend::kAuto;
  if (s == "mixed-radix") return SamplerBackend::kMixedRadix;
  if (s == "qubit") return SamplerBackend::kQubit;
  if (s == "sparse") return SamplerBackend::kSparse;
  if (s == "analytic") return SamplerBackend::kAnalytic;
  return std::nullopt;
}

std::string sampler_backend_name(SamplerBackend b) {
  switch (b) {
    case SamplerBackend::kAuto: return "auto";
    case SamplerBackend::kMixedRadix: return "mixed-radix";
    case SamplerBackend::kQubit: return "qubit";
    case SamplerBackend::kSparse: return "sparse";
    case SamplerBackend::kAnalytic: return "analytic";
  }
  NAHSP_REQUIRE(false, "unknown sampler backend");
}

SamplerPlan plan_sampler(const SamplerChoice& choice,
                         const std::vector<u64>& moduli) {
  SamplerPlan plan;
  plan.backend = choice.backend == SamplerBackend::kAuto
                     ? auto_backend(choice, moduli)
                     : choice.backend;
  switch (plan.backend) {
    case SamplerBackend::kMixedRadix:
      plan.estimated_bytes = MixedRadixCosetSampler::estimate_bytes(moduli);
      break;
    case SamplerBackend::kQubit:
      plan.estimated_bytes = QubitCosetSampler::estimate_bytes(moduli);
      break;
    case SamplerBackend::kSparse:
      plan.estimated_bytes = SparseCosetSampler::estimate_bytes(
          moduli, choice.subgroup_order_hint);
      break;
    default:
      plan.estimated_bytes = AnalyticCosetSampler::estimate_bytes(moduli);
      break;
  }
  // Budget preflight against the LIMIT only — never the instantaneous
  // headroom, so the backend choice (and with it the scenario
  // fingerprint and every golden report) is a pure function of
  // (choice, moduli, limit) no matter what else is in flight.
  const u64 limit = ResourceBudget::global().limit();
  if (limit == 0 || plan.estimated_bytes <= limit) return plan;
  const bool auto_dense = choice.backend == SamplerBackend::kAuto &&
                          plan.backend == SamplerBackend::kMixedRadix;
  if (auto_dense) {
    const std::size_t sparse_cap = std::size_t{1} << 30;
    const u64 sparse_bytes = SparseCosetSampler::estimate_bytes(
        moduli, choice.subgroup_order_hint);
    if (capped_domain(moduli, sparse_cap) <= sparse_cap &&
        sparse_bytes <= limit) {
      plan.backend = SamplerBackend::kSparse;
      plan.estimated_bytes = sparse_bytes;
      plan.degraded = true;
      return plan;
    }
  }
  plan.over_budget = true;
  return plan;
}

std::unique_ptr<CosetSampler> make_coset_sampler(
    const SamplerChoice& choice, std::vector<u64> moduli, LabelFn f,
    bb::QueryCounter* counter) {
  const SamplerPlan plan = plan_sampler(choice, moduli);
  ResourceBudget& budget = ResourceBudget::global();
  if (plan.over_budget) {
    throw resource_error(
        "coset sampler (" + sampler_backend_name(plan.backend) +
            ") needs ~" + std::to_string(plan.estimated_bytes) +
            " bytes, over the " + std::to_string(budget.limit()) +
            "-byte budget limit",
        plan.estimated_bytes, budget.limit(), budget.available(),
        /*transient=*/false);
  }
  // Fault point at the allocation boundary: a firing point raises the
  // same transient resource_error a reservation race would, before any
  // backend state exists.
  if (faultpoint_should_fail("alloc.sampler")) {
    throw resource_error("injected fault (alloc.sampler) building a " +
                             sampler_backend_name(plan.backend) + " sampler",
                         plan.estimated_bytes, budget.limit(),
                         budget.available(), /*transient=*/true);
  }
  // Reserve the estimate BEFORE construction; the sampler carries the
  // reservation for its lifetime. Throws transient resource_error when
  // concurrent reservations hold the headroom right now.
  Reservation reservation =
      budget.reserve(plan.estimated_bytes, "coset sampler");
  std::unique_ptr<CosetSampler> sampler;
  switch (plan.backend) {
    case SamplerBackend::kMixedRadix:
      sampler = std::make_unique<MixedRadixCosetSampler>(
          std::move(moduli), std::move(f), counter);
      break;
    case SamplerBackend::kQubit:
      sampler = std::make_unique<QubitCosetSampler>(
          std::move(moduli), std::move(f), counter,
          choice.qubit_approx_cutoff);
      break;
    case SamplerBackend::kSparse:
      sampler = std::make_unique<SparseCosetSampler>(std::move(moduli),
                                                     std::move(f), counter);
      break;
    default:
      NAHSP_REQUIRE(false,
                    "analytic backend needs planted generators and cannot "
                    "be built from a label function");
  }
  sampler->adopt_reservation(std::move(reservation));
  return sampler;
}

}  // namespace nahsp::qs
