// Backend factory: the one construction path the hsp-layer solvers use
// to obtain an oracle-driven coset sampler (sampler.h for the choice
// contract).
#include "nahsp/qsim/sampler.h"

#include "nahsp/common/check.h"
#include "nahsp/qsim/sparse.h"
#include "sampler_detail.h"

namespace nahsp::qs {

namespace {

// Domain size capped at `cap` (returns cap + 1 on overflow) — lets the
// heuristic compare against budgets without tripping the constructors'
// hard REQUIREs.
std::size_t capped_domain(const std::vector<u64>& moduli, std::size_t cap) {
  std::size_t d = 1;
  for (const u64 m : moduli) {
    if (m == 0) return cap + 1;
    if (d > cap / m) return cap + 1;
    d *= m;
  }
  return d;
}

// kAuto: sparse when the caller vouches for a subgroup of order >= 64
// (support <= |A|/64, so the sparse build beats the dense sweep's
// memory) on a sweep-budget domain; otherwise dense mixed-radix while
// it fits, sparse beyond that.
SamplerBackend auto_backend(const SamplerChoice& choice,
                            const std::vector<u64>& moduli) {
  const std::size_t dense_cap = std::size_t{1} << detail::kMaxSimQubits;
  const std::size_t sparse_cap = std::size_t{1} << 30;
  const std::size_t d = capped_domain(moduli, sparse_cap);
  if (choice.subgroup_order_hint >= 64 && d <= sparse_cap) {
    return SamplerBackend::kSparse;
  }
  if (d <= dense_cap) return SamplerBackend::kMixedRadix;
  return SamplerBackend::kSparse;
}

}  // namespace

std::optional<SamplerBackend> parse_sampler_backend(const std::string& s) {
  if (s == "auto") return SamplerBackend::kAuto;
  if (s == "mixed-radix") return SamplerBackend::kMixedRadix;
  if (s == "qubit") return SamplerBackend::kQubit;
  if (s == "sparse") return SamplerBackend::kSparse;
  if (s == "analytic") return SamplerBackend::kAnalytic;
  return std::nullopt;
}

std::string sampler_backend_name(SamplerBackend b) {
  switch (b) {
    case SamplerBackend::kAuto: return "auto";
    case SamplerBackend::kMixedRadix: return "mixed-radix";
    case SamplerBackend::kQubit: return "qubit";
    case SamplerBackend::kSparse: return "sparse";
    case SamplerBackend::kAnalytic: return "analytic";
  }
  NAHSP_REQUIRE(false, "unknown sampler backend");
}

std::unique_ptr<CosetSampler> make_coset_sampler(
    const SamplerChoice& choice, std::vector<u64> moduli, LabelFn f,
    bb::QueryCounter* counter) {
  SamplerBackend b = choice.backend;
  if (b == SamplerBackend::kAuto) b = auto_backend(choice, moduli);
  switch (b) {
    case SamplerBackend::kMixedRadix:
      return std::make_unique<MixedRadixCosetSampler>(std::move(moduli),
                                                      std::move(f), counter);
    case SamplerBackend::kQubit:
      return std::make_unique<QubitCosetSampler>(std::move(moduli),
                                                 std::move(f), counter,
                                                 choice.qubit_approx_cutoff);
    case SamplerBackend::kSparse:
      return std::make_unique<SparseCosetSampler>(std::move(moduli),
                                                  std::move(f), counter);
    default:
      break;
  }
  NAHSP_REQUIRE(false,
                "analytic backend needs planted generators and cannot be "
                "built from a label function");
}

}  // namespace nahsp::qs
