// Internal helpers shared by the qsim amplitude kernels (statevector
// and mixed-radix): bit-split pair-index reconstruction, table-driven
// bit reversal, and the chunked measurement prefix scan. Not installed;
// include from src/qsim/src only.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <vector>

#include "nahsp/common/parallel.h"

namespace nahsp::qs::detail {

// Maps k in [0, 2^(n-1)) onto the indices with one distinguished bit
// clear, preserving order: the bits of k below the distinguished
// position stay in place and the rest shift up by one. `low_mask` is
// (1 << position) - 1.
inline std::uint64_t insert_zero(std::uint64_t k, std::uint64_t low_mask) {
  return ((k & ~low_mask) << 1) | (k & low_mask);
}

// Reverses the low `bits` bits of a value via two half-width tables (a
// full table at 2^26 register values would be larger than the state
// itself; the halves cost O(2^(bits/2)) to build).
class BitReverser {
 public:
  explicit BitReverser(int bits)
      : lo_bits_(bits / 2),
        hi_bits_(bits - bits / 2),
        lo_rev_(table(lo_bits_)),
        hi_rev_(table(hi_bits_)) {}

  std::uint64_t operator()(std::uint64_t v) const {
    const std::uint64_t low = v & ((std::uint64_t{1} << lo_bits_) - 1);
    const std::uint64_t high = v >> lo_bits_;
    return (lo_rev_[low] << hi_bits_) | hi_rev_[high];
  }

 private:
  static std::vector<std::uint64_t> table(int w) {
    std::vector<std::uint64_t> t(std::size_t{1} << w, 0);
    for (std::size_t v = 0; v < t.size(); ++v) {
      std::uint64_t r = 0;
      for (int b = 0; b < w; ++b)
        if (v & (std::uint64_t{1} << b)) r |= std::uint64_t{1} << (w - 1 - b);
      t[v] = r;
    }
    return t;
  }

  int lo_bits_, hi_bits_;
  std::vector<std::uint64_t> lo_rev_, hi_rev_;
};

// Locates the first flat index whose cumulative |amp|^2 reaches
// `target` (a full-basis measurement draw). Per-chunk partial norms
// replace the serial O(dim) prefix scan; the chunk layout is fixed by
// (dim, grain), so the outcome is identical at every thread count.
inline std::size_t sample_flat_index(
    const std::vector<std::complex<double>>& amps, double target,
    std::size_t grain) {
  const std::size_t dim = amps.size();
  const std::size_t n_chunks = (dim + grain - 1) / grain;
  std::vector<double> partial(n_chunks, 0.0);
  parallel_for(0, n_chunks, 1, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t c = clo; c < chi; ++c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(lo + grain, dim);
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i) s += std::norm(amps[i]);
      partial[c] = s;
    }
  });
  double acc = 0.0;
  std::size_t c = 0;
  for (; c < n_chunks; ++c) {
    if (acc + partial[c] >= target) break;
    acc += partial[c];
  }
  if (c == n_chunks) return dim - 1;  // numeric guard
  // Scan to the end from the chosen chunk: guards against the
  // per-element fold crossing the target an ulp later than the
  // chunk-sum test predicted.
  for (std::size_t i = c * grain; i < dim; ++i) {
    acc += std::norm(amps[i]);
    if (acc >= target) return i;
  }
  return dim - 1;  // numeric guard
}

}  // namespace nahsp::qs::detail
