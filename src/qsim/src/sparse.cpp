#include "nahsp/qsim/sparse.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "sampler_detail.h"

namespace nahsp::qs {

namespace {

// Time-bounded domain cap for the sparse engine: the one-time label
// sweep is O(|A|) evaluations but allocates nothing dense, so the cap
// is about sweep time, not memory (the dense engines stop at 2^26).
constexpr int kMaxSparseDomainBits = 30;

// Cap on every sparse container the build materialises: coset-state
// entries (|H|), label classes (|A|/|H|), and enumerated support
// points. 2^26 entries keeps the build within the dense engines'
// memory envelope even in the worst case.
constexpr std::size_t kMaxSparseEntries = std::size_t{1} << 26;

std::size_t sparse_domain_size(const std::vector<u64>& moduli) {
  std::size_t d = 1;
  for (const u64 m : moduli) {
    NAHSP_REQUIRE(m >= 1, "modulus must be >= 1");
    NAHSP_REQUIRE(d <= (std::size_t{1} << kMaxSparseDomainBits) / m,
                  "domain exceeds the sparse sweep budget");
    d *= m;
  }
  return d;
}

// SplitMix64 finaliser: a full-avalanche mix so consecutive flat
// indices (the common key pattern) spread across the table.
std::size_t hash_u64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

std::size_t table_capacity_for(std::size_t expected) {
  std::size_t cap = 16;
  // Grow until the expected load stays under ~70%.
  while (cap * 7 < expected * 10) cap <<= 1;
  return cap;
}

}  // namespace

// ---------------------------------------------------------------------
// SparseAmpMap
// ---------------------------------------------------------------------

SparseAmpMap::SparseAmpMap(std::size_t expected) {
  const std::size_t cap = table_capacity_for(expected);
  keys_.assign(cap, 0);
  vals_.assign(cap, 0);
  used_.assign(cap, 0);
}

std::size_t SparseAmpMap::slot_of(u64 key) const {
  const std::size_t mask = keys_.size() - 1;
  std::size_t s = hash_u64(key) & mask;
  while (used_[s] && keys_[s] != key) s = (s + 1) & mask;
  return s;
}

void SparseAmpMap::grow() {
  SparseAmpMap bigger(keys_.size() * 2);  // capacity_for doubles past load
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (used_[s]) bigger.at_or_insert(keys_[s], vals_[s]);
  }
  *this = std::move(bigger);
}

u64& SparseAmpMap::at_or_insert(u64 key, u64 init) {
  if ((size_ + 1) * 10 > keys_.size() * 7) grow();
  const std::size_t s = slot_of(key);
  if (!used_[s]) {
    used_[s] = 1;
    keys_[s] = key;
    vals_[s] = init;
    ++size_;
  }
  return vals_[s];
}

const u64* SparseAmpMap::find(u64 key) const {
  const std::size_t s = slot_of(key);
  return used_[s] ? &vals_[s] : nullptr;
}

// ---------------------------------------------------------------------
// SparseState
// ---------------------------------------------------------------------

SparseState::SparseState(std::vector<u64> moduli, std::size_t expected)
    : moduli_(std::move(moduli)) {
  const std::size_t cap = table_capacity_for(expected);
  keys_.assign(cap, 0);
  re_.assign(cap, 0.0);
  im_.assign(cap, 0.0);
  used_.assign(cap, 0);
}

std::size_t SparseState::slot_of(u64 key) const {
  const std::size_t mask = keys_.size() - 1;
  std::size_t s = hash_u64(key) & mask;
  while (used_[s] && keys_[s] != key) s = (s + 1) & mask;
  return s;
}

void SparseState::grow() {
  SparseState bigger(moduli_, keys_.size() * 2);
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (used_[s]) bigger.add(keys_[s], re_[s], im_[s]);
  }
  keys_ = std::move(bigger.keys_);
  re_ = std::move(bigger.re_);
  im_ = std::move(bigger.im_);
  used_ = std::move(bigger.used_);
  size_ = bigger.size_;
}

void SparseState::add(u64 index, double re, double im) {
  if ((size_ + 1) * 10 > keys_.size() * 7) grow();
  const std::size_t s = slot_of(index);
  if (!used_[s]) {
    used_[s] = 1;
    keys_[s] = index;
    re_[s] = re;
    im_[s] = im;
    ++size_;
  } else {
    re_[s] += re;
    im_[s] += im;
  }
}

std::complex<double> SparseState::amp(u64 index) const {
  const std::size_t s = slot_of(index);
  if (!used_[s]) return {0.0, 0.0};
  return {re_[s], im_[s]};
}

double SparseState::norm() const {
  double n = 0.0;
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (used_[s]) n += re_[s] * re_[s] + im_[s] * im_[s];
  }
  return n;
}

void SparseState::normalize() {
  const double n = norm();
  NAHSP_CHECK(n > 0.0, "cannot normalize the zero sparse state");
  const double inv = 1.0 / std::sqrt(n);
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (used_[s]) {
      re_[s] *= inv;
      im_[s] *= inv;
    }
  }
}

void SparseState::apply_key_permutation(
    const std::function<u64(u64)>& perm) {
  SparseState mapped(moduli_, size_);
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (!used_[s]) continue;
    const u64 to = perm(keys_[s]);
    const std::size_t before = mapped.size_;
    mapped.add(to, re_[s], im_[s]);
    NAHSP_REQUIRE(mapped.size_ == before + 1,
                  "key permutation must be injective on the stored keys");
  }
  keys_ = std::move(mapped.keys_);
  re_ = std::move(mapped.re_);
  im_ = std::move(mapped.im_);
  used_ = std::move(mapped.used_);
  size_ = mapped.size_;
}

std::vector<std::pair<u64, std::complex<double>>> SparseState::entries()
    const {
  std::vector<std::pair<u64, std::complex<double>>> out;
  out.reserve(size_);
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (used_[s]) out.emplace_back(keys_[s], std::complex<double>{re_[s], im_[s]});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// ---------------------------------------------------------------------
// SparseCosetSampler
// ---------------------------------------------------------------------

// O(|H| + |A|/|H|) entries across the coset-state map, class counts,
// and the enumerated support points. 64 bytes per entry covers the SoA
// hash slots (key + re + im + metadata at the 70% load target) and the
// AbVec support points. The |A| label sweep is time, not memory.
u64 SparseCosetSampler::estimate_bytes(const std::vector<u64>& moduli,
                                       u64 subgroup_order_hint) {
  const u64 d = detail::saturating_domain(moduli);
  u64 entries = 0;
  if (subgroup_order_hint > 0) {
    entries =
        detail::saturating_add(subgroup_order_hint, d / subgroup_order_hint);
  } else if (d == UINT64_MAX) {
    entries = UINT64_MAX;
  } else {
    // Unknown |H|: price the balanced split (|H| = sqrt(|A|), the
    // minimum of |H| + |A|/|H|). A heuristic, not a bound — a skewed
    // split costs more, which the reserve() at build time still tracks
    // via this same figure; kMaxSparseEntries hard-caps the true cost.
    entries = 2 * static_cast<u64>(
                      std::ceil(std::sqrt(static_cast<double>(d))));
  }
  return detail::saturating_add(4096, detail::saturating_mul(entries, 64));
}

SparseCosetSampler::SparseCosetSampler(std::vector<u64> moduli, LabelFn f,
                                       bb::QueryCounter* counter)
    : CosetSampler(std::move(moduli)), f_(std::move(f)), counter_(counter) {
  NAHSP_REQUIRE(f_ != nullptr, "null label function");
  domain_ = sparse_domain_size(moduli_);
}

// One serial O(|A|) label sweep, then a sparse-support DFT.
//
// The sweep collects the label class of the identity while maintaining
// an incremental generating set for it: a member outside the span of
// the current generators is absorbed and the span re-enumerated into a
// hash set (O(1) membership for the rest of the sweep; at most
// log2 |H| absorptions happen). When f exactly hides a subgroup H the
// collected class IS H; three structural checks certify this and raise
// oracle_error otherwise:
//   1. span == collected class (the class is closed, i.e. a subgroup);
//   2. every label class has exactly |H| members;
//   3. #classes * |H| == |A|.
void SparseCosetSampler::ensure_distribution() {
  if (built_) return;
  const std::size_t r = moduli_.size();
  std::vector<std::size_t> strides(r, 1);
  for (std::size_t i = r; i-- > 1;) strides[i - 1] = strides[i] * moduli_[i];

  SparseAmpMap class_counts(64);
  std::vector<u64> h_members;       // ascending flat indices
  std::vector<la::AbVec> h_basis;   // incremental generating set of H
  SparseAmpMap h_span(16);          // flat indices of <h_basis>
  h_span.at_or_insert(0, 1);

  la::AbVec digits(r, 0);
  u64 lab0 = 0;
  for (std::size_t i = 0; i < domain_; ++i) {
    const u64 lab = f_(digits);
    if (i == 0) lab0 = lab;
    ++class_counts.at_or_insert(lab, 0);
    NAHSP_REQUIRE(class_counts.size() <= kMaxSparseEntries,
                  "sparse label-class budget exceeded");
    if (lab == lab0) {
      NAHSP_REQUIRE(h_members.size() < kMaxSparseEntries,
                    "sparse coset-state budget exceeded");
      h_members.push_back(i);
      if (h_span.find(i) == nullptr) {
        h_basis.push_back(digits);
        const auto span =
            la::abelian_enumerate(h_basis, moduli_, kMaxSparseEntries);
        h_span = SparseAmpMap(span.size());
        for (const la::AbVec& v : span) {
          std::size_t flat = 0;
          for (std::size_t j = 0; j < r; ++j) flat += v[j] * strides[j];
          h_span.at_or_insert(flat, 1);
        }
      }
    }
    // Odometer increment (cell r-1 fastest), no divisions per element.
    for (std::size_t j = r; j-- > 0;) {
      if (++digits[j] < moduli_[j]) break;
      digits[j] = 0;
    }
  }
  if (counter_ != nullptr) counter_->sim_basis_evals += domain_;

  h_order_ = h_members.size();
  NAHSP_ORACLE_CHECK(h_span.size() == h_order_,
                     "label class of the identity is not a subgroup");
  NAHSP_ORACLE_CHECK(class_counts.size() * h_order_ == domain_,
                     "label classes do not partition into |A|/|H| cosets");
  bool equal_sizes = true;
  class_counts.for_each([&](u64 /*lab*/, u64 count) {
    equal_sizes = equal_sizes && (count == h_order_);
  });
  NAHSP_ORACLE_CHECK(equal_sizes,
                     "label classes are not all of size |H|");

  // Degenerate hidden subgroups, handled in closed form.
  if (h_order_ == domain_) {
    // |H| = |A|: the coset state is the uniform superposition and the
    // outcome collapses to the point mass at the trivial character.
    support_points_.assign(1, la::AbVec(r, 0));
    std::vector<double> prob{1.0};
    dist_ = detail::compress_distribution(prob, support_);
    built_ = true;
    return;
  }
  if (h_order_ == 1) {
    // |H| = 1: the coset state is a single basis vector, so the outcome
    // is exactly uniform over the whole character group. Served in
    // closed form — materialising |A| support points would defeat the
    // sparse representation.
    uniform_mode_ = true;
    built_ = true;
    return;
  }

  // The coset superposition, straight from the collected coset
  // representatives: |H| entries of 1/sqrt(|H|), nothing dense.
  SparseState coset(moduli_, h_order_);
  const double a = 1.0 / std::sqrt(static_cast<double>(h_order_));
  for (const u64 idx : h_members) coset.add(idx, a, 0.0);
  const auto coset_entries = coset.entries();  // ascending key order

  // Enumerate the support: H^perp has exactly |A|/|H| points.
  const std::size_t n_support = domain_ / h_order_;
  NAHSP_REQUIRE(n_support <= kMaxSparseEntries,
                "sparse support budget exceeded");
  const auto perp_gens = la::congruence_kernel(h_basis, moduli_);
  support_points_ =
      la::abelian_enumerate(perp_gens, moduli_, kMaxSparseEntries);
  NAHSP_CHECK(support_points_.size() == n_support,
              "H^perp enumeration does not match |A|/|H|");
  std::sort(support_points_.begin(), support_points_.end());

  // Sparse-support DFT: evaluate the coset state's character sum at the
  // support points only. P(y) = |sum_x psi(x) chi_y(x)|^2 / |A|.
  // Chunk layout depends only on (support size, grain) and each
  // point's inner sum runs serially in ascending key order, so the
  // distribution is bit-identical at every thread count. The grain
  // shrinks with |H| so one chunk stays near the shared kernel grain
  // in amplitude operations.
  std::vector<double> prob(n_support, 0.0);
  const std::size_t grain = std::max<std::size_t>(
      1, detail::kGrain / std::max<std::size_t>(1, h_order_));
  const double dd = static_cast<double>(domain_);
  parallel_for(0, n_support, grain, [&](std::size_t lo, std::size_t hi) {
    la::AbVec x(r);
    for (std::size_t s = lo; s < hi; ++s) {
      const la::AbVec& y = support_points_[s];
      double sre = 0.0, sim = 0.0;
      for (const auto& [key, ampl] : coset_entries) {
        u64 rest = key;
        double frac = 0.0;
        for (std::size_t j = r; j-- > 0;) {
          const u64 xj = rest % moduli_[j];
          rest /= moduli_[j];
          frac += static_cast<double>((xj * y[j]) % moduli_[j]) /
                  static_cast<double>(moduli_[j]);
        }
        const double ang = 2.0 * std::numbers::pi * frac;
        const double c = std::cos(ang), sn = std::sin(ang);
        sre += ampl.real() * c - ampl.imag() * sn;
        sim += ampl.real() * sn + ampl.imag() * c;
      }
      prob[s] = (sre * sre + sim * sim) / dd;
    }
  });
  dist_ = detail::compress_distribution(prob, support_);
  built_ = true;
}

la::AbVec SparseCosetSampler::draw(Rng& rng) {
  if (uniform_mode_) {
    la::AbVec y(moduli_.size());
    for (std::size_t j = 0; j < moduli_.size(); ++j)
      y[j] = rng.below(moduli_[j]);
    return y;
  }
  return support_points_[support_[dist_->sample(rng)]];
}

la::AbVec SparseCosetSampler::sample_character(Rng& rng) {
  if (counter_ != nullptr) ++counter_->quantum_queries;
  ensure_distribution();
  return draw(rng);
}

std::vector<la::AbVec> SparseCosetSampler::sample_characters(
    Rng& rng, std::size_t k) {
  std::vector<la::AbVec> out;
  out.reserve(k);
  if (k == 0) return out;
  ensure_distribution();
  if (counter_ != nullptr) counter_->quantum_queries += k;
  for (std::size_t i = 0; i < k; ++i) out.push_back(draw(rng));
  return out;
}

std::vector<la::AbVec> SparseCosetSampler::cached_support() const {
  // Empty in uniform mode (the support is all of the character group;
  // materialising it would defeat the sparse representation).
  std::vector<la::AbVec> out;
  out.reserve(support_.size());
  for (const std::size_t s : support_) out.push_back(support_points_[s]);
  return out;
}

std::size_t SparseCosetSampler::support_size() const {
  if (uniform_mode_) return static_cast<std::size_t>(domain_);
  return support_.size();
}

}  // namespace nahsp::qs
