#include "nahsp/qsim/statevector.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "sweep_detail.h"

namespace nahsp::qs {

using detail::insert_zero;

namespace {
// Below this many amplitudes fork/join overhead dominates; the kernels
// stay serial (one chunk). Doubles as the parallel_for grain, so the
// chunk layout — and every reduction — is identical at any thread count.
// Pair/quad kernels use kPairGrain/kQuadGrain, which cover the same
// amplitude volume per chunk (see common/parallel.h).
constexpr std::size_t kGrain = kDefaultGrain;
}  // namespace

StateVector::StateVector(int n_qubits) : n_(n_qubits) {
  NAHSP_REQUIRE(n_qubits >= 1 && n_qubits <= 28,
                "qubit count must be in [1, 28]");
  amps_.assign(std::size_t{1} << n_qubits, cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

StateVector StateVector::uniform(int n_qubits) {
  StateVector sv(n_qubits);
  const double a = 1.0 / std::sqrt(static_cast<double>(sv.dim()));
  parallel_for(0, sv.dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sv.amps_[i] = a;
  });
  return sv;
}

StateVector StateVector::basis(int n_qubits, u64 value) {
  StateVector sv(n_qubits);
  NAHSP_REQUIRE(value < sv.dim(), "basis value out of range");
  sv.amps_[0] = 0.0;
  sv.amps_[value] = 1.0;
  return sv;
}

void StateVector::check_qubit(int q) const {
  NAHSP_REQUIRE(q >= 0 && q < n_, "qubit index out of range");
}

// Every kernel below iterates pair (or quad) representatives directly:
// k runs over 2^(n-1) (2^(n-2)) values and the acted-on indices are
// reconstructed by re-inserting the distinguished bit(s), so there is
// no branch per amplitude and no skipped-half traversal. Chunks own
// disjoint representative ranges, hence disjoint amplitude pairs.

void StateVector::apply_h(int q) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  const u64 low = bit - 1;
  const double s = 1.0 / std::numbers::sqrt2;
  // Butterflies run on the component doubles (the std::complex
  // array-access guarantee): identical arithmetic, but GCC compiles the
  // aggregate complex loads/stores to ~5x slower code.
  double* d = reinterpret_cast<double*>(amps_.data());
  parallel_for(0, dim() / 2, kPairGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   const std::size_t p0 = 2 * insert_zero(k, low);
                   const std::size_t p1 = p0 + 2 * bit;
                   const double r0 = d[p0], c0 = d[p0 + 1];
                   const double r1 = d[p1], c1 = d[p1 + 1];
                   d[p0] = (r0 + r1) * s;
                   d[p0 + 1] = (c0 + c1) * s;
                   d[p1] = (r0 - r1) * s;
                   d[p1 + 1] = (c0 - c1) * s;
                 }
               });
}

void StateVector::apply_x(int q) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  const u64 low = bit - 1;
  parallel_for(0, dim() / 2, kPairGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   const u64 i0 = insert_zero(k, low);
                   std::swap(amps_[i0], amps_[i0 | bit]);
                 }
               });
}

void StateVector::apply_z(int q) { apply_phase(q, std::numbers::pi); }

void StateVector::apply_phase(int q, double theta) {
  apply_phase(q, std::polar(1.0, theta));
}

void StateVector::apply_phase(int q, cplx w) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  const u64 low = bit - 1;
  parallel_for(0, dim() / 2, kPairGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   amps_[insert_zero(k, low) | bit] *= w;
                 }
               });
}

void StateVector::apply_cphase(int c, int t, double theta) {
  apply_cphase(c, t, std::polar(1.0, theta));
}

void StateVector::apply_cphase(int c, int t, cplx w) {
  check_qubit(c);
  check_qubit(t);
  NAHSP_REQUIRE(c != t, "control equals target");
  const int p = std::min(c, t);
  const int q = std::max(c, t);
  const u64 mask = (u64{1} << c) | (u64{1} << t);
  const u64 plow = (u64{1} << p) - 1;
  const u64 qlow = (u64{1} << q) - 1;
  parallel_for(0, dim() / 4, kQuadGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   amps_[insert_zero(insert_zero(k, plow), qlow) | mask] *= w;
                 }
               });
}

void StateVector::apply_cnot(int c, int t) {
  check_qubit(c);
  check_qubit(t);
  NAHSP_REQUIRE(c != t, "control equals target");
  const u64 cbit = u64{1} << c;
  const u64 tbit = u64{1} << t;
  const int p = std::min(c, t);
  const int q = std::max(c, t);
  const u64 plow = (u64{1} << p) - 1;
  const u64 qlow = (u64{1} << q) - 1;
  parallel_for(0, dim() / 4, kQuadGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   const u64 i0 =
                       (insert_zero(insert_zero(k, plow), qlow)) | cbit;
                   std::swap(amps_[i0], amps_[i0 | tbit]);
                 }
               });
}

void StateVector::apply_swap(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return;
  const u64 abit = u64{1} << a;
  const u64 bbit = u64{1} << b;
  const int p = std::min(a, b);
  const int q = std::max(a, b);
  const u64 plow = (u64{1} << p) - 1;
  const u64 qlow = (u64{1} << q) - 1;
  parallel_for(0, dim() / 4, kQuadGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t k = lo; k < hi; ++k) {
                   // One iteration per {01, 10} pair.
                   const u64 base = insert_zero(insert_zero(k, plow), qlow);
                   std::swap(amps_[base | abit], amps_[base | bbit]);
                 }
               });
}

void StateVector::apply_fused_qft_stage(int lo, int i, int approx_cutoff,
                                        bool inverse) {
  NAHSP_REQUIRE(lo >= 0 && i >= 0 && lo + i < n_,
                "fused stage target out of range");
  const int target = lo + i;
  const u64 bit = u64{1} << target;
  const u64 low = bit - 1;
  // Controls more than approx_cutoff positions below the target are
  // dropped (cutoff 0 keeps them all): the ramp then depends only on
  // register bits [drop, i), i.e. on L >> drop.
  const int drop =
      (approx_cutoff > 0 && i > approx_cutoff) ? i - approx_cutoff : 0;
  const int ramp_bits = i - drop;
  const double sign = inverse ? -1.0 : 1.0;
  const double unit =
      sign * std::numbers::pi / static_cast<double>(u64{1} << ramp_bits);
  // Two-level twiddle table: w(t) = w_lo[t & split_mask] * w_hi[t >>
  // split]. Both halves are direct std::polar evaluations (no recurrence
  // error) and cost O(2^(ramp_bits/2)) setup instead of a full 2^ramp
  // table — which at 26 ramp bits would outweigh the state itself.
  const int split = ramp_bits / 2;
  const u64 split_mask = (u64{1} << split) - 1;
  std::vector<cplx> w_lo(std::size_t{1} << split);
  std::vector<cplx> w_hi(std::size_t{1} << (ramp_bits - split));
  for (std::size_t t = 0; t < w_lo.size(); ++t)
    w_lo[t] = std::polar(1.0, unit * static_cast<double>(t));
  for (std::size_t t = 0; t < w_hi.size(); ++t)
    w_hi[t] = std::polar(1.0, unit * static_cast<double>(t << split));
  const u64 ramp_mask = (u64{1} << i) - 1;
  const double s = 1.0 / std::numbers::sqrt2;
  // Raw-double butterflies (see apply_h); the ramp multiply expands to
  // the same complex-product formula the operators would apply.
  double* d = reinterpret_cast<double*>(amps_.data());
  parallel_for(0, dim() / 2, kPairGrain,
               [&](std::size_t plo, std::size_t phi) {
                 for (std::size_t k = plo; k < phi; ++k) {
                   const u64 i0 = insert_zero(k, low);
                   const u64 t = ((i0 >> lo) & ramp_mask) >> drop;
                   const cplx w = w_lo[t & split_mask] * w_hi[t >> split];
                   const double wr = w.real(), wi = w.imag();
                   const std::size_t p0 = 2 * i0;
                   const std::size_t p1 = p0 + 2 * bit;
                   const double r0 = d[p0], c0 = d[p0 + 1];
                   const double r1 = d[p1], c1 = d[p1 + 1];
                   if (inverse) {
                     // Inverse gate order: ramp first, then Hadamard.
                     const double br = r1 * wr - c1 * wi;
                     const double bc = r1 * wi + c1 * wr;
                     d[p0] = (r0 + br) * s;
                     d[p0 + 1] = (c0 + bc) * s;
                     d[p1] = (r0 - br) * s;
                     d[p1 + 1] = (c0 - bc) * s;
                   } else {
                     const double br = (r0 - r1) * s;
                     const double bc = (c0 - c1) * s;
                     d[p0] = (r0 + r1) * s;
                     d[p0 + 1] = (c0 + c1) * s;
                     d[p1] = br * wr - bc * wi;
                     d[p1 + 1] = br * wi + bc * wr;
                   }
                 }
               });
}

void StateVector::reverse_qubit_order(int lo, int bits) {
  NAHSP_REQUIRE(lo >= 0 && bits >= 1 && lo + bits <= n_,
                "register out of range");
  if (bits == 1) return;
  const detail::BitReverser rev(bits);
  const u64 mask = (u64{1} << bits) - 1;
  const u64 reg_mask = mask << lo;
  // Each {r, rev(r)} pair is swapped by the chunk holding its smaller
  // member; reversal is an involution, so pairs never share an index
  // and writes stay disjoint across chunks.
  parallel_for(0, dim(), kGrain, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t idx = clo; idx < chi; ++idx) {
      const u64 r = (idx >> lo) & mask;
      const u64 rr = rev(r);
      if (rr > r) {
        const u64 partner = (idx & ~reg_mask) | (rr << lo);
        std::swap(amps_[idx], amps_[partner]);
      }
    }
  });
}

void StateVector::apply_permutation(const std::function<u64(u64)>& pi) {
  std::vector<cplx> next(dim(), cplx{0.0, 0.0});
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const u64 j = pi(i);
      next[j] = amps_[i];  // pi is a bijection: writes are disjoint
    }
  });
  amps_ = std::move(next);
}

void StateVector::apply_permutation(const std::vector<u64>& table) {
  NAHSP_REQUIRE(table.size() == dim(), "permutation table size mismatch");
  std::vector<cplx> next(dim(), cplx{0.0, 0.0});
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      next[table[i]] = amps_[i];  // bijection: writes are disjoint
    }
  });
  amps_ = std::move(next);
}

namespace {
void check_xor_registers(int n, int in_lo, int in_bits, int out_lo,
                         int out_bits) {
  NAHSP_REQUIRE(in_lo >= 0 && in_bits >= 1 && in_lo + in_bits <= n,
                "input register out of range");
  NAHSP_REQUIRE(out_lo >= 0 && out_bits >= 1 && out_lo + out_bits <= n,
                "output register out of range");
  NAHSP_REQUIRE(in_lo + in_bits <= out_lo || out_lo + out_bits <= in_lo,
                "registers overlap");
}
}  // namespace

void StateVector::apply_xor_function(int in_lo, int in_bits, int out_lo,
                                     int out_bits,
                                     const std::function<u64(u64)>& f) {
  check_xor_registers(n_, in_lo, in_bits, out_lo, out_bits);
  const u64 in_mask = (in_bits >= 64 ? ~u64{0} : (u64{1} << in_bits) - 1);
  const u64 out_mask = (out_bits >= 64 ? ~u64{0} : (u64{1} << out_bits) - 1);
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const u64 x = (i >> in_lo) & in_mask;
      const u64 fx = f(x) & out_mask;
      const u64 j = i ^ (fx << out_lo);
      if (i < j) std::swap(amps_[i], amps_[j]);  // involution: swap once
    }
  });
}

void StateVector::apply_xor_function(int in_lo, int in_bits, int out_lo,
                                     int out_bits,
                                     const std::vector<u64>& table) {
  check_xor_registers(n_, in_lo, in_bits, out_lo, out_bits);
  NAHSP_REQUIRE(table.size() == (std::size_t{1} << in_bits),
                "oracle table size mismatch");
  const u64 in_mask = (u64{1} << in_bits) - 1;
  const u64 out_mask = (out_bits >= 64 ? ~u64{0} : (u64{1} << out_bits) - 1);
  const u64* f = table.data();
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const u64 fx = f[(i >> in_lo) & in_mask] & out_mask;
      const u64 j = i ^ (fx << out_lo);
      if (i < j) std::swap(amps_[i], amps_[j]);  // involution: swap once
    }
  });
}

double StateVector::norm2() const {
  return parallel_reduce(0, dim(), kGrain,
                         [&](std::size_t lo, std::size_t hi) {
                           double s = 0.0;
                           for (std::size_t i = lo; i < hi; ++i)
                             s += std::norm(amps_[i]);
                           return s;
                         });
}

u64 StateVector::sample(Rng& rng) const {
  const double target = rng.uniform01() * norm2();
  return detail::sample_flat_index(amps_, target, kGrain);
}

double StateVector::range_probability(int lo, int bits, u64 value) const {
  NAHSP_REQUIRE(lo >= 0 && bits >= 1 && lo + bits <= n_,
                "register out of range");
  const u64 mask = (bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1);
  return parallel_reduce(0, dim(), kGrain,
                         [&](std::size_t clo, std::size_t chi) {
                           double p = 0.0;
                           for (std::size_t i = clo; i < chi; ++i) {
                             if (((i >> lo) & mask) == value)
                               p += std::norm(amps_[i]);
                           }
                           return p;
                         });
}

u64 StateVector::measure_range(int lo, int bits, Rng& rng) {
  NAHSP_REQUIRE(lo >= 0 && bits >= 1 && lo + bits <= n_,
                "register out of range");
  const u64 mask = (bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1);
  // Sample an outcome from the marginal distribution of the register.
  const double target = rng.uniform01() * norm2();
  const std::size_t n_out = std::size_t{1} << bits;
  std::vector<double> outcome_prob(n_out, 0.0);
  // Outcome-major marginal build: chunks partition the outcome space,
  // and each outcome left-folds its strided support in ascending index
  // order — the exact addition order of the serial interleaved sweep —
  // so the histogram is bitwise identical at any thread count (and to
  // the pre-parallel build). The grain keeps one chunk at ~kGrain
  // amplitudes of traffic regardless of the support size per outcome.
  const std::size_t lo_count = std::size_t{1} << lo;
  const std::size_t hi_count = dim() >> (lo + bits);
  const std::size_t per_outcome = lo_count * hi_count;
  const std::size_t grain = std::max<std::size_t>(1, kGrain / per_outcome);
  parallel_for(0, n_out, grain, [&](std::size_t vlo, std::size_t vhi) {
    for (std::size_t v = vlo; v < vhi; ++v) {
      double s = 0.0;
      for (std::size_t h = 0; h < hi_count; ++h) {
        const u64 base = (static_cast<u64>(h) << (lo + bits)) |
                         (static_cast<u64>(v) << lo);
        for (std::size_t l = 0; l < lo_count; ++l)
          s += std::norm(amps_[base | l]);
      }
      outcome_prob[v] = s;
    }
  });
  u64 outcome = (u64{1} << bits) - 1;
  double acc = 0.0;
  for (std::size_t v = 0; v < outcome_prob.size(); ++v) {
    acc += outcome_prob[v];
    if (acc >= target) {
      outcome = v;
      break;
    }
  }
  // Collapse and renormalise.
  const double p = outcome_prob[outcome];
  NAHSP_CHECK(p > 0.0, "measured a zero-probability outcome");
  const double scale = 1.0 / std::sqrt(p);
  parallel_for(0, dim(), kGrain, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t i = clo; i < chi; ++i) {
      if (((i >> lo) & mask) == outcome)
        amps_[i] *= scale;
      else
        amps_[i] = 0.0;
    }
  });
  return outcome;
}

}  // namespace nahsp::qs
