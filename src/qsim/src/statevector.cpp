#include "nahsp/qsim/statevector.h"

#include <cmath>
#include <numbers>

#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"

namespace nahsp::qs {

namespace {
// Below this many amplitudes fork/join overhead dominates; the kernels
// stay serial (one chunk). Doubles as the parallel_for grain, so the
// chunk layout — and every reduction — is identical at any thread count.
constexpr std::size_t kGrain = kDefaultGrain;
}  // namespace

StateVector::StateVector(int n_qubits) : n_(n_qubits) {
  NAHSP_REQUIRE(n_qubits >= 1 && n_qubits <= 28,
                "qubit count must be in [1, 28]");
  amps_.assign(std::size_t{1} << n_qubits, cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

StateVector StateVector::uniform(int n_qubits) {
  StateVector sv(n_qubits);
  const double a = 1.0 / std::sqrt(static_cast<double>(sv.dim()));
  parallel_for(0, sv.dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sv.amps_[i] = a;
  });
  return sv;
}

StateVector StateVector::basis(int n_qubits, u64 value) {
  StateVector sv(n_qubits);
  NAHSP_REQUIRE(value < sv.dim(), "basis value out of range");
  sv.amps_[0] = 0.0;
  sv.amps_[value] = 1.0;
  return sv;
}

void StateVector::check_qubit(int q) const {
  NAHSP_REQUIRE(q >= 0 && q < n_, "qubit index out of range");
}

// Every pair kernel below iterates the full index range and acts only at
// the pair representative (the index with the distinguishing bit clear),
// so a chunk never touches an index another chunk acts on: the partner
// index is skipped by whichever chunk contains it.

void StateVector::apply_h(int q) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i & bit) continue;
      const cplx a0 = amps_[i];
      const cplx a1 = amps_[i | bit];
      amps_[i] = (a0 + a1) * inv_sqrt2;
      amps_[i | bit] = (a0 - a1) * inv_sqrt2;
    }
  });
}

void StateVector::apply_x(int q) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i & bit) continue;
      std::swap(amps_[i], amps_[i | bit]);
    }
  });
}

void StateVector::apply_z(int q) { apply_phase(q, std::numbers::pi); }

void StateVector::apply_phase(int q, double theta) {
  check_qubit(q);
  const u64 bit = u64{1} << q;
  const cplx w = std::polar(1.0, theta);
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i & bit) amps_[i] *= w;
    }
  });
}

void StateVector::apply_cphase(int c, int t, double theta) {
  check_qubit(c);
  check_qubit(t);
  NAHSP_REQUIRE(c != t, "control equals target");
  const u64 mask = (u64{1} << c) | (u64{1} << t);
  const cplx w = std::polar(1.0, theta);
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if ((i & mask) == mask) amps_[i] *= w;
    }
  });
}

void StateVector::apply_cnot(int c, int t) {
  check_qubit(c);
  check_qubit(t);
  NAHSP_REQUIRE(c != t, "control equals target");
  const u64 cbit = u64{1} << c;
  const u64 tbit = u64{1} << t;
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if ((i & cbit) && !(i & tbit)) std::swap(amps_[i], amps_[i | tbit]);
    }
  });
}

void StateVector::apply_swap(int a, int b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return;
  const u64 abit = u64{1} << a;
  const u64 bbit = u64{1} << b;
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Act once per {01, 10} pair: pick the representative with a=1, b=0.
      if ((i & abit) && !(i & bbit)) {
        std::swap(amps_[i], amps_[(i & ~abit) | bbit]);
      }
    }
  });
}

void StateVector::apply_permutation(const std::function<u64(u64)>& pi) {
  std::vector<cplx> next(dim(), cplx{0.0, 0.0});
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const u64 j = pi(i);
      next[j] = amps_[i];  // pi is a bijection: writes are disjoint
    }
  });
  amps_ = std::move(next);
}

void StateVector::apply_xor_function(int in_lo, int in_bits, int out_lo,
                                     int out_bits,
                                     const std::function<u64(u64)>& f) {
  NAHSP_REQUIRE(in_lo >= 0 && in_bits >= 1 && in_lo + in_bits <= n_,
                "input register out of range");
  NAHSP_REQUIRE(out_lo >= 0 && out_bits >= 1 && out_lo + out_bits <= n_,
                "output register out of range");
  NAHSP_REQUIRE(in_lo + in_bits <= out_lo || out_lo + out_bits <= in_lo,
                "registers overlap");
  const u64 in_mask = (in_bits >= 64 ? ~u64{0} : (u64{1} << in_bits) - 1);
  const u64 out_mask = (out_bits >= 64 ? ~u64{0} : (u64{1} << out_bits) - 1);
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const u64 x = (i >> in_lo) & in_mask;
      const u64 fx = f(x) & out_mask;
      const u64 j = i ^ (fx << out_lo);
      if (i < j) std::swap(amps_[i], amps_[j]);  // involution: swap once
    }
  });
}

double StateVector::norm2() const {
  return parallel_reduce(0, dim(), kGrain,
                         [&](std::size_t lo, std::size_t hi) {
                           double s = 0.0;
                           for (std::size_t i = lo; i < hi; ++i)
                             s += std::norm(amps_[i]);
                           return s;
                         });
}

u64 StateVector::sample(Rng& rng) const {
  const double target = rng.uniform01() * norm2();
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    acc += std::norm(amps_[i]);
    if (acc >= target) return i;
  }
  return dim() - 1;  // numeric guard
}

double StateVector::range_probability(int lo, int bits, u64 value) const {
  NAHSP_REQUIRE(lo >= 0 && bits >= 1 && lo + bits <= n_,
                "register out of range");
  const u64 mask = (bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1);
  return parallel_reduce(0, dim(), kGrain,
                         [&](std::size_t clo, std::size_t chi) {
                           double p = 0.0;
                           for (std::size_t i = clo; i < chi; ++i) {
                             if (((i >> lo) & mask) == value)
                               p += std::norm(amps_[i]);
                           }
                           return p;
                         });
}

u64 StateVector::measure_range(int lo, int bits, Rng& rng) {
  NAHSP_REQUIRE(lo >= 0 && bits >= 1 && lo + bits <= n_,
                "register out of range");
  const u64 mask = (bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1);
  // Sample an outcome from the marginal distribution of the register.
  const double target = rng.uniform01() * norm2();
  std::vector<double> outcome_prob(std::size_t{1} << bits, 0.0);
  for (std::size_t i = 0; i < dim(); ++i) {
    outcome_prob[(i >> lo) & mask] += std::norm(amps_[i]);
  }
  u64 outcome = (u64{1} << bits) - 1;
  double acc = 0.0;
  for (std::size_t v = 0; v < outcome_prob.size(); ++v) {
    acc += outcome_prob[v];
    if (acc >= target) {
      outcome = v;
      break;
    }
  }
  // Collapse and renormalise.
  const double p = outcome_prob[outcome];
  NAHSP_CHECK(p > 0.0, "measured a zero-probability outcome");
  const double scale = 1.0 / std::sqrt(p);
  parallel_for(0, dim(), kGrain, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t i = clo; i < chi; ++i) {
      if (((i >> lo) & mask) == outcome)
        amps_[i] *= scale;
      else
        amps_[i] = 0.0;
    }
  });
  return outcome;
}

}  // namespace nahsp::qs
