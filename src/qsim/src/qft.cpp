#include "nahsp/qsim/qft.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <string>
#include <string_view>

#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"

namespace nahsp::qs {

namespace {

QftEngine initial_engine() {
  const char* e = std::getenv("NAHSP_QFT_ENGINE");
  if (e == nullptr || std::string_view(e) == "fused") {
    return QftEngine::kFused;
  }
  if (std::string_view(e) == "gates") {
    return QftEngine::kGates;
  }
  // A typo must not abort the process from a static initializer (this
  // runs before main in any binary that touches the QFT); warn once on
  // stderr and run the default engine instead.
  std::fprintf(stderr,
               "nahsp: warning: ignoring NAHSP_QFT_ENGINE=\"%s\" (expected "
               "\"fused\" or \"gates\"); using \"fused\"\n",
               e);
  return QftEngine::kFused;
}

QftEngine& engine_ref() {
  static QftEngine engine = initial_engine();
  return engine;
}

// One std::polar per distinct ladder angle per transform: rot[d] is the
// controlled-phase factor for qubits d positions apart.
std::vector<cplx> rotation_table(int bits, double sign) {
  std::vector<cplx> rot(static_cast<std::size_t>(std::max(bits, 1)));
  for (int d = 1; d < bits; ++d) {
    rot[d] = std::polar(
        1.0, sign * std::numbers::pi / static_cast<double>(1ULL << d));
  }
  return rot;
}

}  // namespace

QftEngine qft_engine() { return engine_ref(); }

void set_qft_engine(QftEngine engine) { engine_ref() = engine; }

// Forward gate sequence: for i = bits-1 .. 0: H(i), then CP(j, i) for
// j = i-1 .. 0 with angle pi / 2^(i-j); finally reverse the qubit order.
// The inverse applies the reversal, then the exact reverse gate order
// with conjugated angles (the CPs are diagonal and commute among
// themselves, so only the CP-vs-H ordering matters). The fused engine
// collapses each target's H + CP ramp into one sweep of
// StateVector::apply_fused_qft_stage and the swap network into one
// reverse_qubit_order pass: bits + 1 sweeps total.

void apply_qft_fused(StateVector& sv, int lo, int bits, int approx_cutoff) {
  NAHSP_REQUIRE(bits >= 1 && lo >= 0 && lo + bits <= sv.qubits(),
                "register out of range");
  for (int i = bits - 1; i >= 0; --i) {
    sv.apply_fused_qft_stage(lo, i, approx_cutoff, /*inverse=*/false);
  }
  sv.reverse_qubit_order(lo, bits);
}

void apply_inverse_qft_fused(StateVector& sv, int lo, int bits,
                             int approx_cutoff) {
  NAHSP_REQUIRE(bits >= 1 && lo >= 0 && lo + bits <= sv.qubits(),
                "register out of range");
  sv.reverse_qubit_order(lo, bits);
  for (int i = 0; i < bits; ++i) {
    sv.apply_fused_qft_stage(lo, i, approx_cutoff, /*inverse=*/true);
  }
}

void apply_qft_gates(StateVector& sv, int lo, int bits, int approx_cutoff) {
  NAHSP_REQUIRE(bits >= 1 && lo >= 0 && lo + bits <= sv.qubits(),
                "register out of range");
  const std::vector<cplx> rot = rotation_table(bits, 1.0);
  for (int i = bits - 1; i >= 0; --i) {
    sv.apply_h(lo + i);
    for (int j = i - 1; j >= 0; --j) {
      const int dist = i - j;
      if (approx_cutoff > 0 && dist > approx_cutoff) continue;
      sv.apply_cphase(lo + j, lo + i, rot[dist]);
    }
  }
  for (int i = 0; i < bits / 2; ++i) {
    sv.apply_swap(lo + i, lo + bits - 1 - i);
  }
}

void apply_inverse_qft_gates(StateVector& sv, int lo, int bits,
                             int approx_cutoff) {
  NAHSP_REQUIRE(bits >= 1 && lo >= 0 && lo + bits <= sv.qubits(),
                "register out of range");
  const std::vector<cplx> rot = rotation_table(bits, -1.0);
  for (int i = 0; i < bits / 2; ++i) {
    sv.apply_swap(lo + i, lo + bits - 1 - i);
  }
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < i; ++j) {
      const int dist = i - j;
      if (approx_cutoff > 0 && dist > approx_cutoff) continue;
      sv.apply_cphase(lo + j, lo + i, rot[dist]);
    }
    sv.apply_h(lo + i);
  }
}

void apply_qft(StateVector& sv, int lo, int bits, int approx_cutoff) {
  if (engine_ref() == QftEngine::kFused) {
    apply_qft_fused(sv, lo, bits, approx_cutoff);
  } else {
    apply_qft_gates(sv, lo, bits, approx_cutoff);
  }
}

void apply_inverse_qft(StateVector& sv, int lo, int bits,
                       int approx_cutoff) {
  if (engine_ref() == QftEngine::kFused) {
    apply_inverse_qft_fused(sv, lo, bits, approx_cutoff);
  } else {
    apply_inverse_qft_gates(sv, lo, bits, approx_cutoff);
  }
}

void apply_dft_reference(StateVector& sv, int lo, int bits, bool inverse) {
  NAHSP_REQUIRE(bits >= 1 && lo >= 0 && lo + bits <= sv.qubits(),
                "register out of range");
  const std::size_t n = std::size_t{1} << bits;
  const std::size_t d = sv.dim();
  const u64 mask = n - 1;  // x*y mod n == (x*y) & mask since n = 2^bits
  const double sign = inverse ? -1.0 : 1.0;
  std::vector<cplx> w(n);
  for (std::size_t t = 0; t < n; ++t) {
    w[t] = std::polar(1.0, sign * 2.0 * std::numbers::pi *
                               static_cast<double>(t) /
                               static_cast<double>(n));
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<cplx> next(d, cplx{0.0, 0.0});
  const std::size_t groups = d >> bits;
  // Each group owns a disjoint strided slice of `next`; the grain keeps
  // one chunk at ~64 groups of O(n^2) work each.
  parallel_for(0, groups, 64, [&](std::size_t glo, std::size_t ghi) {
    for (std::size_t g = glo; g < ghi; ++g) {
      const u64 low = static_cast<u64>(g) & ((u64{1} << lo) - 1);
      const u64 high = (static_cast<u64>(g) >> lo) << (lo + bits);
      const u64 base = high | low;
      for (std::size_t y = 0; y < n; ++y) {
        cplx acc{0.0, 0.0};
        for (std::size_t x = 0; x < n; ++x) {
          acc += w[(x * y) & mask] * sv.amp(base | (x << lo));
        }
        next[base | (y << lo)] = acc * scale;
      }
    }
  });
  for (std::size_t i = 0; i < d; ++i) sv.set_amp(i, next[i]);
}

}  // namespace nahsp::qs
