// Internals shared by the statevector coset-sampler backends
// (sampler.cpp, sparse.cpp). Not installed; include only from qsim
// sources.
#pragma once

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "nahsp/common/alias.h"
#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "nahsp/linalg/congruence.h"

namespace nahsp::qs::detail {

// Hard cap on simulated state size for the DENSE backends: at most
// 2^kMaxSimQubits amplitudes (1 GiB of complex doubles).
constexpr int kMaxSimQubits = 26;

// Cached-distribution entries below this total probability are dropped
// (numerical noise from the transforms; genuine outcome probabilities on
// supported domains are orders of magnitude above it).
constexpr double kSupportEps = 1e-12;

// Parallel grain for the distribution-build sweeps (the shared kernel
// grain, so the chunk layout is thread-count independent).
constexpr std::size_t kGrain = kDefaultGrain;

// Product of the moduli, guarded against the dense simulator budget.
// All arithmetic is in std::size_t; the guard fires before the multiply
// that would exceed 2^kMaxSimQubits, so no intermediate can overflow.
inline std::size_t dense_domain_size(const std::vector<u64>& moduli) {
  std::size_t d = 1;
  for (const u64 m : moduli) {
    NAHSP_REQUIRE(m >= 1, "modulus must be >= 1");
    NAHSP_REQUIRE(d <= (std::size_t{1} << kMaxSimQubits) / m,
                  "domain exceeds simulator budget");
    d *= m;
  }
  return d;
}

// Saturating domain product / scale for the estimate_bytes preflights:
// over-limit domains must price as "infinite", never wrap to a small
// number that slips past the budget.
inline u64 saturating_domain(const std::vector<u64>& moduli) {
  u64 d = 1;
  for (const u64 m : moduli) {
    if (m == 0) return UINT64_MAX;
    if (d > UINT64_MAX / m) return UINT64_MAX;
    d *= m;
  }
  return d;
}

inline u64 saturating_mul(u64 a, u64 b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

inline u64 saturating_add(u64 a, u64 b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

inline la::AbVec digits_of_index(std::size_t idx,
                                 const std::vector<u64>& moduli) {
  la::AbVec digits(moduli.size());
  for (std::size_t i = moduli.size(); i-- > 0;) {
    digits[i] = idx % moduli[i];
    idx /= moduli[i];
  }
  return digits;
}

// Shared tail of every backend's distribution build: clamp rounding
// noise, check normalisation, compress to the support above kSupportEps,
// and wrap it in an alias table.
template <typename Index>
std::unique_ptr<AliasTable> compress_distribution(
    std::vector<double>& prob, std::vector<Index>& support) {
  double total = 0.0;
  for (double& p : prob) {
    if (p < 0.0) p = 0.0;  // rounding noise from the transforms
    total += p;
  }
  NAHSP_CHECK(std::abs(total - 1.0) < 1e-6,
              "cached outcome distribution does not normalise");
  support.clear();
  std::vector<double> weights;
  for (std::size_t y = 0; y < prob.size(); ++y) {
    if (prob[y] > kSupportEps) {
      support.push_back(static_cast<Index>(y));
      weights.push_back(prob[y]);
    }
  }
  return std::make_unique<AliasTable>(weights);
}

}  // namespace nahsp::qs::detail
