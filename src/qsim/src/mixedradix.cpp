#include "nahsp/qsim/mixedradix.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "nahsp/common/check.h"
#include "nahsp/common/parallel.h"
#include "sweep_detail.h"

namespace nahsp::qs {

namespace {
// Parallel grain in amplitudes: ranges at or below it run as one serial
// chunk, and the chunk layout is the same at every thread count.
constexpr std::size_t kGrain = kDefaultGrain;

bool is_pow2_size(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Per-stage twiddle tables shared by every fibre of one cell transform:
// stages[s] holds the 2^s roots for butterfly length 2^(s+1). Roots are
// anchored by a direct std::polar every kTwiddleAnchor entries with the
// recurrence w[k] = w[k-1] * w[1] filling between anchors: a full polar
// per root would dominate single-fibre transforms (sincos is ~20x a
// complex multiply), while an unanchored recurrence drifts by O(n) ulps
// — anchoring bounds the drift at kTwiddleAnchor steps and costs one
// polar per anchor per transform, amortised over every fibre.
constexpr std::size_t kTwiddleAnchor = 64;

struct Radix2Twiddles {
  std::vector<std::vector<cplx>> stages;

  Radix2Twiddles(std::size_t n, bool inverse) {
    const double sign = inverse ? -1.0 : 1.0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double ang =
          sign * 2.0 * std::numbers::pi / static_cast<double>(len);
      const cplx step = std::polar(1.0, ang);
      std::vector<cplx> w(len / 2);
      for (std::size_t k = 0; k < w.size(); ++k) {
        w[k] = (k % kTwiddleAnchor == 0)
                   ? std::polar(1.0, ang * static_cast<double>(k))
                   : w[k - 1] * step;
      }
      stages.push_back(std::move(w));
    }
  }
};

// Iterative radix-2 Cooley–Tukey on a contiguous power-of-two buffer
// with the QFT sign convention (forward = e^{+2 pi i / n}); unitary
// scaling is left to the caller. O(n log n) versus the dense O(n^2)
// fallback — essential for the Z_{2^t} domains of Shor order finding.
void fft_pow2(std::vector<cplx>& buf, const Radix2Twiddles& tw) {
  const std::size_t n = buf.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(buf[i], buf[j]);
  }
  // Raw-double butterflies (the std::complex array-access guarantee):
  // identical arithmetic to the operator forms, which GCC compiles to
  // ~5x slower aggregate loads/stores.
  double* d = reinterpret_cast<double*>(buf.data());
  std::size_t s = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++s) {
    const cplx* w = tw.stages[s].data();
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t p = 2 * (i + k);
        const std::size_t q = p + len;  // 2 * (i + k + len / 2)
        const double wr = w[k].real(), wi = w[k].imag();
        const double ur = d[p], uc = d[p + 1];
        const double xr = d[q], xc = d[q + 1];
        const double vr = xr * wr - xc * wi;
        const double vc = xr * wi + xc * wr;
        d[p] = ur + vr;
        d[p + 1] = uc + vc;
        d[q] = ur - vr;
        d[q + 1] = uc - vc;
      }
    }
  }
}

// In-place stage-parallel FFT over the whole (contiguous) state: the
// single-fibre case, where per-fibre parallelism degenerates to one
// serial task. Butterflies within a stage are disjoint, so each stage
// is one parallel pair sweep; the final stage folds in the unitary
// scale, so the arithmetic per element matches the per-fibre route
// (raw butterfly output times scale) bitwise.
void fft_pow2_parallel(std::vector<cplx>& amps, const Radix2Twiddles& tw,
                       double scale) {
  const std::size_t n = amps.size();
  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  const detail::BitReverser rev(bits);
  // Each {i, rev(i)} pair is swapped by the chunk holding its smaller
  // member; reversal is an involution, so writes stay disjoint.
  parallel_for(0, n, kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t j = rev(i);
      if (j > i) std::swap(amps[i], amps[j]);
    }
  });
  double* d = reinterpret_cast<double*>(amps.data());
  std::size_t s = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++s) {
    const cplx* w = tw.stages[s].data();
    const std::size_t half = len / 2;
    const bool last = (len == n);
    parallel_for(0, n / 2, kPairGrain, [&](std::size_t blo,
                                           std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t k = b & (half - 1);
        const std::size_t p = 2 * (((b >> s) << (s + 1)) | k);
        const std::size_t q = p + len;  // partner half elements up
        const double wr = w[k].real(), wi = w[k].imag();
        const double ur = d[p], uc = d[p + 1];
        const double xr = d[q], xc = d[q + 1];
        const double vr = xr * wr - xc * wi;
        const double vc = xr * wi + xc * wr;
        if (last) {
          d[p] = (ur + vr) * scale;
          d[p + 1] = (uc + vc) * scale;
          d[q] = (ur - vr) * scale;
          d[q + 1] = (uc - vc) * scale;
        } else {
          d[p] = ur + vr;
          d[p + 1] = uc + vc;
          d[q] = ur - vr;
          d[q + 1] = uc - vc;
        }
      }
    });
  }
}
}  // namespace

MixedRadixState::MixedRadixState(std::vector<u64> dims)
    : dims_(std::move(dims)) {
  NAHSP_REQUIRE(!dims_.empty(), "need at least one cell");
  std::size_t d = 1;
  strides_.assign(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 0;) {
    NAHSP_REQUIRE(dims_[i] >= 1, "cell dimension must be >= 1");
    strides_[i] = d;
    NAHSP_REQUIRE(d <= (std::size_t{1} << 26) / dims_[i],
                  "state dimension exceeds simulator budget (2^26)");
    d *= dims_[i];
  }
  amps_.assign(d, cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

MixedRadixState MixedRadixState::uniform(std::vector<u64> dims) {
  MixedRadixState st(std::move(dims));
  const double a = 1.0 / std::sqrt(static_cast<double>(st.dim()));
  parallel_for(0, st.dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) st.amps_[i] = a;
  });
  return st;
}

std::size_t MixedRadixState::index_of(const std::vector<u64>& digits) const {
  NAHSP_REQUIRE(digits.size() == dims_.size(), "digit count mismatch");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    NAHSP_REQUIRE(digits[i] < dims_[i], "digit out of range");
    idx += digits[i] * strides_[i];
  }
  return idx;
}

std::vector<u64> MixedRadixState::digits_of(std::size_t index) const {
  std::vector<u64> digits(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    digits[i] = (index / strides_[i]) % dims_[i];
  }
  return digits;
}

void MixedRadixState::qft_cell(std::size_t cell, bool inverse) {
  NAHSP_REQUIRE(cell < dims_.size(), "cell out of range");
  const std::size_t n = dims_[cell];
  if (n == 1) return;
  const std::size_t stride = strides_[cell];
  const double sign = inverse ? -1.0 : 1.0;
  if (is_pow2_size(n) && n >= 8) {
    // Radix-2 fast path: O(D log n) instead of O(D n), with one shared
    // twiddle-table set per transform (one std::polar per distinct
    // root, not a recurrence per fibre).
    const Radix2Twiddles tw(n, inverse);
    const double scale = 1.0 / std::sqrt(static_cast<double>(n));
    const std::size_t groups = dim() / n;
    if (groups == 1) {
      // One fibre spanning the whole state (the Shor Z_{2^t} shape):
      // per-fibre parallelism would run serial, so parallelise across
      // the butterflies of each stage instead. Values are bitwise
      // identical to the per-fibre route — same tables, same butterfly
      // arithmetic.
      fft_pow2_parallel(amps_, tw, scale);
      return;
    }
    // Fibres are disjoint strided slices; the grain is sized so one
    // chunk covers ~kGrain amplitudes and the scratch buffer is
    // allocated once per chunk, not once per fibre.
    const std::size_t grain = std::max<std::size_t>(1, kGrain / n);
    parallel_for(0, groups, grain, [&](std::size_t glo, std::size_t ghi) {
      std::vector<cplx> buf(n);
      for (std::size_t g = glo; g < ghi; ++g) {
        const std::size_t below = g % stride;
        const std::size_t above = g / stride;
        const std::size_t base = above * stride * n + below;
        for (std::size_t x = 0; x < n; ++x) buf[x] = amps_[base + x * stride];
        fft_pow2(buf, tw);
        for (std::size_t y = 0; y < n; ++y)
          amps_[base + y * stride] = buf[y] * scale;
      }
    });
    return;
  }
  std::vector<cplx> w(n);
  for (std::size_t t = 0; t < n; ++t) {
    w[t] = std::polar(1.0, sign * 2.0 * std::numbers::pi *
                               static_cast<double>(t) /
                               static_cast<double>(n));
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  const std::size_t groups = dim() / n;
  const std::size_t grain = std::max<std::size_t>(1, kGrain / n);
  parallel_for(0, groups, grain, [&](std::size_t glo, std::size_t ghi) {
    std::vector<cplx> in(n), out(n);
    for (std::size_t g = glo; g < ghi; ++g) {
      // Fibre base index: split g into (block above the cell, offset
      // below it).
      const std::size_t below = g % stride;
      const std::size_t above = g / stride;
      const std::size_t base = above * stride * n + below;
      for (std::size_t x = 0; x < n; ++x) in[x] = amps_[base + x * stride];
      for (std::size_t y = 0; y < n; ++y) {
        cplx acc{0.0, 0.0};
        for (std::size_t x = 0; x < n; ++x) acc += w[(x * y) % n] * in[x];
        out[y] = acc * scale;
      }
      for (std::size_t y = 0; y < n; ++y) amps_[base + y * stride] = out[y];
    }
  });
}

void MixedRadixState::qft_all(bool inverse) {
  for (std::size_t c = 0; c < dims_.size(); ++c) qft_cell(c, inverse);
}

u64 MixedRadixState::collapse_by_label(const std::vector<u64>& labels,
                                       Rng& rng) {
  NAHSP_REQUIRE(labels.size() == dim(), "one label per basis state");
  std::unordered_map<u64, double> weight;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double p = std::norm(amps_[i]);
    if (p > 0.0) weight[labels[i]] += p;
  }
  NAHSP_CHECK(!weight.empty(), "state has no support");
  double total = 0.0;
  for (const auto& [lab, p] : weight) total += p;
  const double target = rng.uniform01() * total;
  double acc = 0.0;
  u64 chosen = weight.begin()->first;
  for (const auto& [lab, p] : weight) {
    acc += p;
    chosen = lab;
    if (acc >= target) break;
  }
  const double scale = 1.0 / std::sqrt(weight[chosen]);
  parallel_for(0, dim(), kGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (labels[i] == chosen)
        amps_[i] *= scale;
      else
        amps_[i] = 0.0;
    }
  });
  return chosen;
}

std::vector<u64> MixedRadixState::sample(Rng& rng) const {
  const double target = rng.uniform01() * norm2();
  return digits_of(detail::sample_flat_index(amps_, target, kGrain));
}

double MixedRadixState::norm2() const {
  return parallel_reduce(0, dim(), kGrain,
                         [&](std::size_t lo, std::size_t hi) {
                           double s = 0.0;
                           for (std::size_t i = lo; i < hi; ++i)
                             s += std::norm(amps_[i]);
                           return s;
                         });
}

}  // namespace nahsp::qs
