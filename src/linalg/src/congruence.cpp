#include "nahsp/linalg/congruence.h"

#include <algorithm>
#include <set>

#include "nahsp/common/check.h"
#include "nahsp/linalg/hermite.h"
#include "nahsp/numtheory/arith.h"

namespace nahsp::la {

namespace {

using u128 = unsigned __int128;

u64 lcm_of(const std::vector<u64>& moduli) {
  u64 l = 1;
  for (const u64 s : moduli) {
    NAHSP_REQUIRE(s >= 1, "moduli must be positive");
    l = nt::lcm(l, s);
  }
  return l;
}

// Lattice basis (rows) spanned by gens plus diag(moduli).
IMat lattice_rows(const std::vector<AbVec>& gens,
                  const std::vector<u64>& moduli) {
  const std::size_t r = moduli.size();
  IMat m(gens.size() + r, r);
  for (std::size_t i = 0; i < gens.size(); ++i) {
    NAHSP_REQUIRE(gens[i].size() == r, "generator length mismatch");
    for (std::size_t j = 0; j < r; ++j) m.at(i, j) = gens[i][j];
  }
  for (std::size_t j = 0; j < r; ++j)
    m.at(gens.size() + j, j) = static_cast<i128>(moduli[j]);
  return m;
}

}  // namespace

std::vector<AbVec> congruence_kernel(const std::vector<AbVec>& samples,
                                     const std::vector<u64>& moduli) {
  const std::size_t r = moduli.size();
  const std::size_t m = samples.size();
  const u64 big_l = lcm_of(moduli);

  // B = [M | L*I_m], kernel rows projected onto the first r coordinates.
  IMat b(m, r + m);
  for (std::size_t j = 0; j < m; ++j) {
    NAHSP_REQUIRE(samples[j].size() == r, "sample length mismatch");
    for (std::size_t i = 0; i < r; ++i) {
      const u64 w = nt::mulmod(samples[j][i] % moduli[i], big_l / moduli[i],
                               big_l);
      b.at(j, i) = static_cast<i128>(w);
    }
    b.at(j, r + j) = static_cast<i128>(big_l);
  }

  const IMat k = kernel(b);
  std::set<AbVec> uniq;
  for (std::size_t row = 0; row < k.rows(); ++row) {
    AbVec x(r);
    bool nonzero = false;
    for (std::size_t i = 0; i < r; ++i) {
      i128 v = k.at(row, i) % static_cast<i128>(moduli[i]);
      if (v < 0) v += static_cast<i128>(moduli[i]);
      x[i] = static_cast<u64>(v);
      nonzero |= (x[i] != 0);
    }
    if (nonzero) uniq.insert(std::move(x));
  }
  return {uniq.begin(), uniq.end()};
}

bool character_annihilates(const AbVec& y, const AbVec& x,
                           const std::vector<u64>& moduli) {
  NAHSP_REQUIRE(y.size() == moduli.size() && x.size() == moduli.size(),
                "vector length mismatch");
  const u64 big_l = lcm_of(moduli);
  u64 acc = 0;
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    const u64 term = nt::mulmod(nt::mulmod(y[i] % moduli[i], x[i] % moduli[i],
                                           big_l),
                                big_l / moduli[i], big_l);
    acc = (acc + term) % big_l;
  }
  return acc == 0;
}

IMat abelian_canonical_basis(const std::vector<AbVec>& gens,
                             const std::vector<u64>& moduli) {
  const RowHnf h = row_hnf(lattice_rows(gens, moduli));
  // The lattice contains diag(moduli), hence has full rank r.
  NAHSP_CHECK(h.rank == moduli.size(), "subgroup lattice must be full rank");
  IMat basis(h.rank, moduli.size());
  for (std::size_t i = 0; i < h.rank; ++i)
    for (std::size_t j = 0; j < moduli.size(); ++j)
      basis.at(i, j) = h.h.at(i, j);
  return basis;
}

bool abelian_contains(const std::vector<AbVec>& gens,
                      const std::vector<u64>& moduli, const AbVec& x) {
  NAHSP_REQUIRE(x.size() == moduli.size(), "element length mismatch");
  const IMat basis = abelian_canonical_basis(gens, moduli);
  // Reduce x against the upper-triangular Hermite basis.
  std::vector<i128> v(x.begin(), x.end());
  std::size_t row = 0;
  for (std::size_t col = 0; col < moduli.size(); ++col) {
    // Find the pivot row for this column (basis is in echelon form).
    if (row < basis.rows() && basis.at(row, col) != 0) {
      const i128 p = basis.at(row, col);
      i128 q = v[col] / p;
      if (v[col] % p != 0 && v[col] < 0) --q;
      for (std::size_t j = col; j < moduli.size(); ++j)
        v[j] -= q * basis.at(row, j);
      ++row;
    }
    if (v[col] != 0) return false;
  }
  return true;
}

u64 abelian_subgroup_order(const std::vector<AbVec>& gens,
                           const std::vector<u64>& moduli) {
  const IMat basis = abelian_canonical_basis(gens, moduli);
  // |H| = |A| / [Z^r : L] with [Z^r : L] = product of HNF pivots.
  u128 ambient = 1;
  for (const u64 s : moduli) ambient *= s;
  u128 index = 1;
  for (std::size_t i = 0; i < basis.rows(); ++i)
    index *= static_cast<u128>(static_cast<u64>(basis.at(i, i)));
  NAHSP_CHECK(index != 0 && ambient % index == 0,
              "lattice index must divide |A|");
  const u128 order = ambient / index;
  NAHSP_CHECK(order <= ~static_cast<u64>(0), "subgroup order overflows");
  return static_cast<u64>(order);
}

bool abelian_subgroup_equal(const std::vector<AbVec>& a,
                            const std::vector<AbVec>& b,
                            const std::vector<u64>& moduli) {
  return abelian_canonical_basis(a, moduli) ==
         abelian_canonical_basis(b, moduli);
}

std::vector<AbVec> abelian_enumerate(const std::vector<AbVec>& gens,
                                     const std::vector<u64>& moduli,
                                     std::size_t limit) {
  const std::size_t r = moduli.size();
  std::set<AbVec> seen;
  std::vector<AbVec> frontier;
  AbVec zero(r, 0);
  seen.insert(zero);
  frontier.push_back(zero);
  while (!frontier.empty()) {
    const AbVec cur = frontier.back();
    frontier.pop_back();
    for (const AbVec& g : gens) {
      NAHSP_REQUIRE(g.size() == r, "generator length mismatch");
      AbVec nxt(r);
      for (std::size_t i = 0; i < r; ++i)
        nxt[i] = (cur[i] + g[i]) % moduli[i];
      if (seen.insert(nxt).second) {
        NAHSP_REQUIRE(seen.size() <= limit,
                      "abelian_enumerate exceeded its element limit");
        frontier.push_back(std::move(nxt));
      }
    }
  }
  return {seen.begin(), seen.end()};
}

}  // namespace nahsp::la
