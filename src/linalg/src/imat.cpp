#include "nahsp/linalg/imat.h"

#include <sstream>

#include "nahsp/common/check.h"

namespace nahsp::la {

namespace {
std::string i128_to_string(i128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 u = neg ? static_cast<unsigned __int128>(-v)
                            : static_cast<unsigned __int128>(v);
  std::string s;
  while (u != 0) {
    s.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) s.push_back('-');
  return {s.rbegin(), s.rend()};
}
}  // namespace

IMat::IMat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

IMat IMat::identity(std::size_t n) {
  IMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IMat IMat::from_rows(const std::vector<std::vector<i64>>& rows) {
  if (rows.empty()) return IMat(0, 0);
  IMat m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    NAHSP_REQUIRE(rows[r].size() == rows[0].size(),
                  "all rows must have equal length");
    for (std::size_t c = 0; c < rows[r].size(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

void IMat::swap_rows(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t c = 0; c < cols_; ++c) std::swap(at(a, c), at(b, c));
}

void IMat::swap_cols(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t r = 0; r < rows_; ++r) std::swap(at(r, a), at(r, b));
}

void IMat::add_row(std::size_t a, std::size_t b, i128 k) {
  for (std::size_t c = 0; c < cols_; ++c) at(a, c) += k * at(b, c);
}

void IMat::add_col(std::size_t a, std::size_t b, i128 k) {
  for (std::size_t r = 0; r < rows_; ++r) at(r, a) += k * at(r, b);
}

void IMat::negate_row(std::size_t r) {
  for (std::size_t c = 0; c < cols_; ++c) at(r, c) = -at(r, c);
}

void IMat::negate_col(std::size_t c) {
  for (std::size_t r = 0; r < rows_; ++r) at(r, c) = -at(r, c);
}

bool IMat::row_is_zero(std::size_t r) const {
  for (std::size_t c = 0; c < cols_; ++c)
    if (at(r, c) != 0) return false;
  return true;
}

IMat IMat::transposed() const {
  IMat t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

IMat IMat::mul(const IMat& other) const {
  NAHSP_REQUIRE(cols_ == other.rows(), "dimension mismatch in IMat::mul");
  IMat out(rows_, other.cols());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const i128 a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols(); ++c)
        out.at(r, c) += a * other.at(k, c);
    }
  return out;
}

bool IMat::operator==(const IMat& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

std::string IMat::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) os << ' ';
      os << i128_to_string(at(r, c));
    }
    os << "]\n";
  }
  return os.str();
}

namespace {

// Determinant modulo a prime via Gaussian elimination in Z_p.
// (Fraction-free Bareiss overflows __int128 on the huge-entry
// transformation matrices Hermite reduction can produce, so
// unimodularity is checked modulo several large primes instead.)
std::uint64_t det_mod_prime(const IMat& m, std::uint64_t p) {
  const std::size_t n = m.rows();
  std::vector<std::vector<std::uint64_t>> a(
      n, std::vector<std::uint64_t>(n));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      i128 v = m.at(r, c) % static_cast<i128>(p);
      if (v < 0) v += static_cast<i128>(p);
      a[r][c] = static_cast<std::uint64_t>(v);
    }
  auto mulp = [p](std::uint64_t x, std::uint64_t y) {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(x) * y % p);
  };
  auto powp = [&](std::uint64_t b, std::uint64_t e) {
    std::uint64_t r = 1;
    while (e) {
      if (e & 1) r = mulp(r, b);
      b = mulp(b, b);
      e >>= 1;
    }
    return r;
  };
  std::uint64_t det = 1;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    while (piv < n && a[piv][k] == 0) ++piv;
    if (piv == n) return 0;
    if (piv != k) {
      std::swap(a[piv], a[k]);
      det = p - det;  // sign flip
    }
    det = mulp(det, a[k][k]);
    const std::uint64_t inv = powp(a[k][k], p - 2);  // Fermat
    for (std::size_t i = k + 1; i < n; ++i) {
      if (a[i][k] == 0) continue;
      const std::uint64_t f = mulp(a[i][k], inv);
      for (std::size_t j = k; j < n; ++j) {
        const std::uint64_t sub = mulp(f, a[k][j]);
        a[i][j] = a[i][j] >= sub ? a[i][j] - sub : a[i][j] + p - sub;
      }
    }
  }
  return det % p;
}

}  // namespace

bool is_unimodular(const IMat& m) {
  if (m.rows() != m.cols()) return false;
  if (m.rows() == 0) return true;  // det of the empty matrix is 1
  // |det| == 1 iff det ≡ ±1 (consistently) modulo several large primes;
  // a non-unit determinant survives all three checks with probability
  // ~2^-180 over the fixed prime set.
  constexpr std::uint64_t primes[] = {2305843009213693951ULL,  // 2^61 - 1
                                      1000000000000000003ULL,
                                      999999999999999989ULL};
  int sign = 0;  // +1 or -1 once fixed
  for (const std::uint64_t p : primes) {
    const std::uint64_t d = det_mod_prime(m, p);
    int s;
    if (d == 1) {
      s = 1;
    } else if (d == p - 1) {
      s = -1;
    } else {
      return false;
    }
    if (sign == 0) sign = s;
    if (s != sign) return false;
  }
  return true;
}

}  // namespace nahsp::la
