#include "nahsp/linalg/hermite.h"

#include "nahsp/common/check.h"

namespace nahsp::la {

RowHnf row_hnf(const IMat& a) {
  RowHnf res{a, IMat::identity(a.rows()), 0};
  IMat& h = res.h;
  IMat& u = res.u;
  const std::size_t m = h.rows();
  const std::size_t n = h.cols();

  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < n && pivot_row < m; ++col) {
    // Euclid out every entry below the pivot candidate in this column.
    for (std::size_t r = pivot_row + 1; r < m; ++r) {
      while (h.at(r, col) != 0) {
        if (h.at(pivot_row, col) == 0) {
          h.swap_rows(pivot_row, r);
          u.swap_rows(pivot_row, r);
          break;
        }
        const i128 q = h.at(r, col) / h.at(pivot_row, col);
        if (q != 0) {
          h.add_row(r, pivot_row, -q);
          u.add_row(r, pivot_row, -q);
        }
        if (h.at(r, col) != 0) {
          h.swap_rows(pivot_row, r);
          u.swap_rows(pivot_row, r);
        }
      }
    }
    if (h.at(pivot_row, col) == 0) continue;  // column already clear
    if (h.at(pivot_row, col) < 0) {
      h.negate_row(pivot_row);
      u.negate_row(pivot_row);
    }
    // Reduce the entries above the pivot into [0, pivot).
    const i128 p = h.at(pivot_row, col);
    for (std::size_t r = 0; r < pivot_row; ++r) {
      i128 q = h.at(r, col) / p;
      // Floor division for negatives so the remainder lands in [0, p).
      if (h.at(r, col) % p != 0 && h.at(r, col) < 0) --q;
      if (q != 0) {
        h.add_row(r, pivot_row, -q);
        u.add_row(r, pivot_row, -q);
      }
    }
    ++pivot_row;
  }
  res.rank = pivot_row;
  return res;
}

IMat left_kernel(const IMat& a) {
  const RowHnf r = row_hnf(a);
  const std::size_t null_dim = a.rows() - r.rank;
  IMat basis(null_dim, a.rows());
  for (std::size_t i = 0; i < null_dim; ++i) {
    NAHSP_CHECK(r.h.row_is_zero(r.rank + i), "non-zero row below HNF rank");
    for (std::size_t j = 0; j < a.rows(); ++j)
      basis.at(i, j) = r.u.at(r.rank + i, j);
  }
  return basis;
}

IMat kernel(const IMat& a) { return left_kernel(a.transposed()); }

}  // namespace nahsp::la
